#include "core/polynomial_set.h"

#include <gtest/gtest.h>

#include "core/polynomial.h"
#include "core/variable.h"

namespace provabs {
namespace {

class PolynomialSetTest : public ::testing::Test {
 protected:
  VariableTable vars_;
  VariableId x_ = vars_.Intern("x");
  VariableId y_ = vars_.Intern("y");
  VariableId z_ = vars_.Intern("z");

  PolynomialSet MakeSet() {
    PolynomialSet set;
    set.Add(Polynomial::FromMonomials(
        {Monomial(1.0, {{x_, 1}}), Monomial(2.0, {{y_, 1}})}));
    set.Add(Polynomial::FromMonomials(
        {Monomial(3.0, {{y_, 1}}), Monomial(4.0, {{z_, 1}})}));
    return set;
  }
};

TEST_F(PolynomialSetTest, EmptySet) {
  PolynomialSet set;
  EXPECT_EQ(set.count(), 0u);
  EXPECT_EQ(set.SizeM(), 0u);
  EXPECT_EQ(set.SizeV(), 0u);
}

TEST_F(PolynomialSetTest, SizeMIsPointwiseSum) {
  // §2.1 Notations: |P|_M = Σ |P|_M — a multiset, so identical monomials
  // in DIFFERENT polynomials both count.
  PolynomialSet set = MakeSet();
  EXPECT_EQ(set.SizeM(), 4u);
}

TEST_F(PolynomialSetTest, MultisetSemanticsKeepDuplicatePolynomials) {
  Polynomial p = Polynomial::FromMonomials({Monomial(1.0, {{x_, 1}})});
  PolynomialSet set;
  set.Add(p);
  set.Add(p);
  EXPECT_EQ(set.count(), 2u);
  EXPECT_EQ(set.SizeM(), 2u);
  EXPECT_EQ(set.SizeV(), 1u);
}

TEST_F(PolynomialSetTest, SizeVIsUnion) {
  // y occurs in both polynomials but counts once.
  PolynomialSet set = MakeSet();
  EXPECT_EQ(set.SizeV(), 3u);
}

TEST_F(PolynomialSetTest, VariablesCollectsAll) {
  auto v = MakeSet().Variables();
  EXPECT_TRUE(v.count(x_));
  EXPECT_TRUE(v.count(y_));
  EXPECT_TRUE(v.count(z_));
  EXPECT_EQ(v.size(), 3u);
}

TEST_F(PolynomialSetTest, MapVariablesIsPointwise) {
  VariableId g = vars_.Intern("g");
  PolynomialSet set = MakeSet();
  PolynomialSet mapped = set.MapVariables(
      [&](VariableId v) { return (v == x_ || v == y_) ? g : v; });
  ASSERT_EQ(mapped.count(), 2u);
  // First polynomial: 1·g + 2·g -> 3·g (one monomial).
  EXPECT_EQ(mapped[0].SizeM(), 1u);
  EXPECT_DOUBLE_EQ(mapped[0].monomials()[0].coefficient(), 3.0);
  // Second polynomial: 3·g + 4·z (no merge).
  EXPECT_EQ(mapped[1].SizeM(), 2u);
  EXPECT_EQ(mapped.SizeV(), 2u);  // {g, z}
}

TEST_F(PolynomialSetTest, MapVariablesWithMinCombine) {
  PolynomialSet set;
  set.Add(Polynomial::FromMonomials(
      {Monomial(5.0, {{x_, 1}}), Monomial(2.0, {{y_, 1}})},
      CoefficientCombine::kMin));
  VariableId g = vars_.Intern("gm");
  PolynomialSet mapped = set.MapVariables(
      [&](VariableId) { return g; }, CoefficientCombine::kMin);
  ASSERT_EQ(mapped[0].SizeM(), 1u);
  EXPECT_DOUBLE_EQ(mapped[0].monomials()[0].coefficient(), 2.0);
}

TEST_F(PolynomialSetTest, ConstructFromVector) {
  std::vector<Polynomial> polys = {
      Polynomial::FromMonomials({Monomial(1.0, {{x_, 1}})})};
  PolynomialSet set(std::move(polys));
  EXPECT_EQ(set.count(), 1u);
  EXPECT_TRUE(set[0].Mentions(x_));
}

}  // namespace
}  // namespace provabs
