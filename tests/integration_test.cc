#include <gtest/gtest.h>

#include <string>

#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "algo/prox_summarizer.h"
#include "common/random.h"
#include "core/valuation.h"
#include "workload/telephony.h"
#include "workload/tpch.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// End-to-end pipeline: generate database -> run provenance query ->
/// build abstraction trees -> compress -> apply hypothetical scenarios.
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_customers = 300;
    config_.num_plans = 32;
    config_.num_months = 12;
    config_.num_zip_codes = 8;
    Rng rng(config_.seed);
    db_ = GenerateTelephony(config_, rng);
    tv_ = MakeTelephonyVars(vars_, config_);
    polys_ = RunTelephonyQuery(db_, tv_);

    forest_.AddTree(BuildUniformTree(vars_, tv_.plan_vars, {4, 2}, "P_"));
    forest_.AddTree(MakeFigure3MonthsTree(vars_, 12));
    ASSERT_TRUE(forest_.Validate().ok());
    ASSERT_TRUE(forest_.CheckCompatible(polys_).ok());
  }

  TelephonyConfig config_;
  Database db_;
  VariableTable vars_;
  TelephonyVars tv_;
  PolynomialSet polys_;
  AbstractionForest forest_;
};

TEST_F(EndToEndTest, PipelineProducesCompressiblePolynomials) {
  EXPECT_GT(polys_.SizeM(), 100u);
  size_t bound = polys_.SizeM() / 2;
  auto result = GreedyMultiTree(polys_, forest_, bound);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adequate);
  PolynomialSet compressed = result->vvs.Apply(forest_, polys_);
  EXPECT_LE(compressed.SizeM(), bound);
}

TEST_F(EndToEndTest, OptimalSingleTreeOnPlansTree) {
  size_t bound = polys_.SizeM() * 3 / 4;
  auto result = OptimalSingleTree(polys_, forest_, 0, bound);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->adequate);
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
}

// The semantic contract of abstraction: a hypothetical scenario that is
// uniform within each chosen group evaluates to the SAME answer on the
// compressed provenance as on the original (what Fig. 10 measures faster).
TEST_F(EndToEndTest, CompressedProvenancePreservesGroupUniformScenarios) {
  size_t bound = polys_.SizeM() / 2;
  auto result = GreedyMultiTree(polys_, forest_, bound);
  ASSERT_TRUE(result.ok());
  PolynomialSet compressed = result->vvs.Apply(forest_, polys_);

  auto subst = result->vvs.SubstitutionMap(forest_);
  Rng rng(99);
  Valuation val;
  // Assign a random value per *group representative*, then propagate to
  // members so the scenario is uniform per group.
  std::unordered_map<VariableId, double> group_value;
  for (const auto& [leaf, rep] : subst) {
    auto [it, inserted] = group_value.emplace(rep, 0.0);
    if (inserted) it->second = rng.UniformReal(0.5, 1.5);
    val.Set(leaf, it->second);
    val.Set(rep, it->second);
  }

  auto original_answers = val.EvaluateAll(polys_);
  auto compressed_answers = val.EvaluateAll(compressed);
  ASSERT_EQ(original_answers.size(), compressed_answers.size());
  for (size_t i = 0; i < original_answers.size(); ++i) {
    EXPECT_NEAR(original_answers[i], compressed_answers[i],
                std::abs(original_answers[i]) * 1e-9 + 1e-9);
  }
}

TEST_F(EndToEndTest, CompressionReducesEvaluationWork) {
  size_t bound = polys_.SizeM() / 3;
  auto result = GreedyMultiTree(polys_, forest_, bound);
  ASSERT_TRUE(result.ok());
  if (!result->adequate) GTEST_SKIP() << "bound unreachable at this scale";
  PolynomialSet compressed = result->vvs.Apply(forest_, polys_);
  EXPECT_LT(compressed.SizeM(), polys_.SizeM());
}

TEST_F(EndToEndTest, AllAlgorithmsAgreeOnAdequacy) {
  size_t bound = polys_.SizeM() * 2 / 3;
  auto greedy = GreedyMultiTree(polys_, forest_, bound);
  auto opt_tree0 = OptimalSingleTree(polys_, forest_, 0, bound);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->adequate);
  // The single tree may or may not reach the bound alone; if it does, its
  // variable loss can't be lower than... (different search spaces — only
  // check its self-consistency here).
  if (opt_tree0.ok()) {
    LossReport recheck = ComputeLossNaive(polys_, forest_, opt_tree0->vvs);
    EXPECT_EQ(recheck.monomial_loss, opt_tree0->loss.monomial_loss);
  }
}

// TPC-H end-to-end with the supplier abstraction tree (the paper's primary
// experimental configuration).
class TpchEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.1;
    Rng rng(3);
    db_ = GenerateTpch(config_, rng);
    tv_ = MakeTpchVars(vars_, 32);
    forest_.AddTree(BuildUniformTree(vars_, tv_.supplier_vars, {4}, "S_"));
    ASSERT_TRUE(forest_.Validate().ok());
  }

  TpchConfig config_;
  Database db_;
  VariableTable vars_;
  TpchVars tv_;
  AbstractionForest forest_;
};

TEST_F(TpchEndToEndTest, Q1CompressesWithSupplierTree) {
  PolynomialSet polys = RunTpchQ1(db_, tv_);
  ASSERT_TRUE(forest_.CheckCompatible(polys).ok());
  size_t bound = polys.SizeM() / 2;
  auto result = OptimalSingleTree(polys, forest_, 0, bound);
  if (!result.ok()) {
    // Maximal compression may exceed half at tiny scales.
    EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
    return;
  }
  EXPECT_TRUE(result->adequate);
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
}

TEST_F(TpchEndToEndTest, Q5OptimalAndGreedyConsistent) {
  PolynomialSet polys = RunTpchQ5(db_, tv_);
  size_t max_ml = ComputeLossNaive(polys, forest_,
                                   ValidVariableSet::AllRoots(forest_))
                      .monomial_loss;
  size_t bound = polys.SizeM() - max_ml / 2;
  auto opt = OptimalSingleTree(polys, forest_, 0, bound);
  auto greedy = GreedyMultiTree(polys, forest_, bound);
  ASSERT_TRUE(opt.ok()) << opt.status().ToString();
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(opt->adequate);
  EXPECT_TRUE(greedy->adequate);
  // Optimal never loses more variables than greedy on a single tree.
  EXPECT_LE(opt->loss.variable_loss, greedy->loss.variable_loss);
}

TEST_F(TpchEndToEndTest, Q10SmallPolynomialsCompressLittle) {
  PolynomialSet polys = RunTpchQ10(db_, tv_);
  size_t max_ml = ComputeLossNaive(polys, forest_,
                                   ValidVariableSet::AllRoots(forest_))
                      .monomial_loss;
  // The paper observes Q10's many tiny polynomials admit only marginal
  // compression (~0.03% there); allow a loose ceiling here.
  EXPECT_LT(static_cast<double>(max_ml),
            0.8 * static_cast<double>(polys.SizeM()));
}

}  // namespace
}  // namespace provabs
