#include "server/wire_protocol.h"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <string>
#include <vector>

#include "io/byte_stream.h"

namespace provabs {
namespace {

// ----------------------------------------------------------- round trips --

TEST(WireProtocolTest, LoadRequestRoundTrip) {
  LoadRequest req;
  req.artifact = "telephony";
  req.polys_bytes = std::string("\x00\x01binary\xFF", 9);
  req.forests = {{"plans", "tree-bytes"}, {"months", ""}};
  auto decoded = DecodeLoadRequest(EncodeLoadRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->artifact, req.artifact);
  EXPECT_EQ(decoded->polys_bytes, req.polys_bytes);
  ASSERT_EQ(decoded->forests.size(), 2u);
  EXPECT_EQ(decoded->forests[0].first, "plans");
  EXPECT_EQ(decoded->forests[0].second, "tree-bytes");
  EXPECT_EQ(decoded->forests[1].first, "months");
}

TEST(WireProtocolTest, AppendRequestRoundTrip) {
  AppendRequest req;
  req.artifact = "telephony";
  req.polys_bytes = std::string("\x00\x02more\xFE", 7);
  auto kind = PeekMessageKind(EncodeAppendRequest(req));
  ASSERT_TRUE(kind.ok());
  EXPECT_EQ(*kind, MessageKind::kAppendRequest);
  auto decoded = DecodeAppendRequest(EncodeAppendRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->artifact, req.artifact);
  EXPECT_EQ(decoded->polys_bytes, req.polys_bytes);
}

TEST(WireProtocolTest, DeltaCountersAndPatchFlagRoundTrip) {
  Response resp;
  resp.stats.loop_wakeups = 5;  // Neighbors must not shift position.
  resp.stats.delta_patched = 21;
  resp.stats.delta_fallback_full = 4;
  resp.generation = 9;
  resp.delta_patched = true;
  resp.dedup_hit = false;
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stats.loop_wakeups, 5u);
  EXPECT_EQ(decoded->stats.delta_patched, 21u);
  EXPECT_EQ(decoded->stats.delta_fallback_full, 4u);
  EXPECT_EQ(decoded->generation, 9u);
  EXPECT_TRUE(decoded->delta_patched);
}

TEST(WireProtocolTest, CompressRequestRoundTrip) {
  CompressRequest req;
  req.artifact = "a";
  req.forest = "f";
  req.algo = "greedy";
  req.bound = 123456789;
  auto decoded = DecodeCompressRequest(EncodeCompressRequest(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->artifact, "a");
  EXPECT_EQ(decoded->forest, "f");
  EXPECT_EQ(decoded->algo, "greedy");
  EXPECT_EQ(decoded->bound, 123456789u);
}

TEST(WireProtocolTest, EvaluateRequestRoundTrip) {
  EvaluateRequest req;
  req.artifact = "a";
  req.assignments = {{"m1", 0.5}, {"plan7", -2.25}};
  req.compressed = true;
  req.forest = "plans";
  req.algo = "opt";
  req.bound = 1500;
  req.eval_backend = "simd_batch";
  auto decoded = DecodeEvaluateRequest(EncodeEvaluateRequest(req));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->assignments.size(), 2u);
  EXPECT_EQ(decoded->assignments[0].first, "m1");
  EXPECT_DOUBLE_EQ(decoded->assignments[0].second, 0.5);
  EXPECT_DOUBLE_EQ(decoded->assignments[1].second, -2.25);
  EXPECT_TRUE(decoded->compressed);
  EXPECT_EQ(decoded->forest, "plans");
  EXPECT_EQ(decoded->bound, 1500u);
  EXPECT_EQ(decoded->eval_backend, "simd_batch");

  // The default is the empty name — registry auto policy server-side.
  auto defaulted = DecodeEvaluateRequest(EncodeEvaluateRequest(EvaluateRequest{}));
  ASSERT_TRUE(defaulted.ok());
  EXPECT_TRUE(defaulted->eval_backend.empty());
}

TEST(WireProtocolTest, EvaluateScenarioProgramRequestRoundTrip) {
  EvaluateScenarioProgramRequest req;
  req.artifact = "telephony";
  req.program = "LET d = SWEEP(0.5 .. 1.0 STEP 0.1); SET PREFIX(plan) = d;";
  req.compressed = true;
  req.forest = "plans";
  req.algo = "greedy";
  req.bound = 4096;
  req.eval_backend = "simd_batch";
  req.shape = ScenarioShape::kTopK;
  req.top_k = 5;
  auto decoded = DecodeEvaluateScenarioProgramRequest(
      EncodeEvaluateScenarioProgramRequest(req));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->artifact, "telephony");
  EXPECT_EQ(decoded->program, req.program);
  EXPECT_TRUE(decoded->compressed);
  EXPECT_EQ(decoded->forest, "plans");
  EXPECT_EQ(decoded->algo, "greedy");
  EXPECT_EQ(decoded->bound, 4096u);
  EXPECT_EQ(decoded->eval_backend, "simd_batch");
  EXPECT_EQ(decoded->shape, ScenarioShape::kTopK);
  EXPECT_EQ(decoded->top_k, 5u);

  // Defaults: uncompressed, values shape, no top-k.
  auto defaulted = DecodeEvaluateScenarioProgramRequest(
      EncodeEvaluateScenarioProgramRequest(EvaluateScenarioProgramRequest{}));
  ASSERT_TRUE(defaulted.ok());
  EXPECT_FALSE(defaulted->compressed);
  EXPECT_EQ(defaulted->shape, ScenarioShape::kValues);
  EXPECT_EQ(defaulted->top_k, 0u);
}

TEST(WireProtocolTest, UnknownScenarioShapeByteRejected) {
  // With top_k = 0 the trailing varint is one byte, so the shape byte sits
  // second-from-last. A future shape (4) must be rejected by THIS decoder,
  // not silently reinterpreted.
  std::string encoded = EncodeEvaluateScenarioProgramRequest(
      EvaluateScenarioProgramRequest{});
  ASSERT_GE(encoded.size(), 2u);
  encoded[encoded.size() - 2] = 4;
  auto decoded = DecodeEvaluateScenarioProgramRequest(encoded);
  ASSERT_FALSE(decoded.ok());
  EXPECT_NE(decoded.status().message().find("unknown scenario result shape"),
            std::string::npos)
      << decoded.status().message();
}

TEST(WireProtocolTest, ScenarioResponseRoundTrip) {
  Response resp;
  resp.request_kind = MessageKind::kEvaluateScenarioProgramRequest;
  resp.scenario_count = 1000;
  resp.program_cache_hit = true;
  resp.scenario_indices = {999, 0, 421};
  resp.objectives = {87.5, -1.25, 0.0};
  resp.values = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  resp.eval_backend = "compiled";
  // The batching/program-cache counters ride the same stats block.
  resp.stats.eval_groups = 17;
  resp.stats.eval_backend_calls = 34;
  resp.stats.program_count = 2;
  resp.stats.program_hits = 9;
  resp.stats.program_misses = 3;

  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_kind,
            MessageKind::kEvaluateScenarioProgramRequest);
  EXPECT_EQ(decoded->scenario_count, 1000u);
  EXPECT_TRUE(decoded->program_cache_hit);
  EXPECT_EQ(decoded->scenario_indices, (std::vector<uint64_t>{999, 0, 421}));
  ASSERT_EQ(decoded->objectives.size(), 3u);
  EXPECT_DOUBLE_EQ(decoded->objectives[0], 87.5);
  EXPECT_DOUBLE_EQ(decoded->objectives[1], -1.25);
  EXPECT_EQ(decoded->values.size(), 6u);
  EXPECT_EQ(decoded->stats.eval_groups, 17u);
  EXPECT_EQ(decoded->stats.eval_backend_calls, 34u);
  EXPECT_EQ(decoded->stats.program_count, 2u);
  EXPECT_EQ(decoded->stats.program_hits, 9u);
  EXPECT_EQ(decoded->stats.program_misses, 3u);
}

TEST(WireProtocolTest, TransportCounterRoundTrip) {
  // The wire-v6 transport counters (event-loop front end) ride the stats
  // block like every other counter and survive a round trip losslessly.
  Response resp;
  resp.request_kind = MessageKind::kInfoRequest;
  resp.stats.active_connections = 64;
  resp.stats.rejected_connections = 7;
  resp.stats.idle_reaped = 3;
  resp.stats.loop_wakeups = 123456789;
  resp.stats.program_misses = 2;  // Neighbors must not shift position.
  resp.stats.eval_batches = 11;

  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stats.active_connections, 64u);
  EXPECT_EQ(decoded->stats.rejected_connections, 7u);
  EXPECT_EQ(decoded->stats.idle_reaped, 3u);
  EXPECT_EQ(decoded->stats.loop_wakeups, 123456789u);
  EXPECT_EQ(decoded->stats.program_misses, 2u);
  EXPECT_EQ(decoded->stats.eval_batches, 11u);
}

TEST(WireProtocolTest, UnavailableAndDeadlineStatusCodesRoundTrip) {
  Response resp;
  resp.request_kind = MessageKind::kInfoRequest;
  resp.code = StatusCode::kUnavailable;
  resp.message = "server at its connection limit (1024); retry later";
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, StatusCode::kUnavailable);
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kUnavailable);
  EXPECT_NE(decoded->message.find("connection limit"), std::string::npos);

  resp.code = StatusCode::kDeadlineExceeded;
  resp.message = "rpc read timed out after 500 ms";
  decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kDeadlineExceeded);
}

TEST(WireProtocolTest, ListBackendsResponseRoundTrip) {
  EXPECT_TRUE(DecodeListBackendsRequest(
                  EncodeListBackendsRequest(ListBackendsRequest{}))
                  .ok());

  Response resp;
  resp.request_kind = MessageKind::kListBackendsRequest;
  resp.backends = {{"compiled", "single-scenario CSR walk", false, true, 1, 1},
                   {"simd_batch", "SoA lanes, AVX2 when available", true,
                    true, 8, 2},
                   {"jit", "per-artifact native code", false, true, 1, 3}};
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->backends.size(), 3u);
  EXPECT_EQ(decoded->backends[0].name, "compiled");
  EXPECT_EQ(decoded->backends[0].summary, "single-scenario CSR walk");
  EXPECT_FALSE(decoded->backends[0].vectorized);
  EXPECT_TRUE(decoded->backends[0].deterministic);
  EXPECT_EQ(decoded->backends[0].preferred_batch, 1u);
  EXPECT_EQ(decoded->backends[0].tier, 1u);
  EXPECT_EQ(decoded->backends[1].name, "simd_batch");
  EXPECT_TRUE(decoded->backends[1].vectorized);
  EXPECT_EQ(decoded->backends[1].preferred_batch, 8u);
  EXPECT_EQ(decoded->backends[1].tier, 2u);
  // Tier shares the flags byte (bits 2-3) with the bool bits; all four
  // combinations of (vectorized, tier) must survive the round trip.
  EXPECT_EQ(decoded->backends[2].name, "jit");
  EXPECT_FALSE(decoded->backends[2].vectorized);
  EXPECT_TRUE(decoded->backends[2].deterministic);
  EXPECT_EQ(decoded->backends[2].tier, 3u);
}

TEST(WireProtocolTest, EvalBackendEchoRoundTrip) {
  Response resp;
  resp.request_kind = MessageKind::kEvaluateRequest;
  resp.values = {2.0};
  resp.eval_backend = "naive";
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->eval_backend, "naive");
}

TEST(WireProtocolTest, InfoTradeoffShutdownRoundTrip) {
  InfoRequest info;
  info.artifact = "x";
  auto info_decoded = DecodeInfoRequest(EncodeInfoRequest(info));
  ASSERT_TRUE(info_decoded.ok());
  EXPECT_EQ(info_decoded->artifact, "x");

  TradeoffRequest tradeoff;
  tradeoff.artifact = "x";
  tradeoff.forest = "plans";
  auto tradeoff_decoded =
      DecodeTradeoffRequest(EncodeTradeoffRequest(tradeoff));
  ASSERT_TRUE(tradeoff_decoded.ok());
  EXPECT_EQ(tradeoff_decoded->forest, "plans");

  EXPECT_TRUE(
      DecodeShutdownRequest(EncodeShutdownRequest(ShutdownRequest{})).ok());

  EXPECT_TRUE(
      DecodeListAlgosRequest(EncodeListAlgosRequest(ListAlgosRequest{}))
          .ok());
}

TEST(WireProtocolTest, ListAlgosResponseRoundTrip) {
  Response resp;
  resp.request_kind = MessageKind::kListAlgosRequest;
  resp.algos = {{"opt", "optimal single-tree DP", true, true, true, true,
                 true},
                {"prox", "pairwise-merge summarizer", true, false, false,
                 false, true},
                {"anneal", "simulated annealing", false, false, false,
                 true, false}};
  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_EQ(decoded->algos.size(), 3u);
  EXPECT_EQ(decoded->algos[0].name, "opt");
  EXPECT_EQ(decoded->algos[0].summary, "optimal single-tree DP");
  EXPECT_TRUE(decoded->algos[0].deterministic);
  EXPECT_TRUE(decoded->algos[0].supports_tradeoff);
  EXPECT_TRUE(decoded->algos[0].exact);
  EXPECT_TRUE(decoded->algos[0].produces_cut);
  EXPECT_TRUE(decoded->algos[0].supports_time_budget);
  EXPECT_EQ(decoded->algos[1].name, "prox");
  EXPECT_TRUE(decoded->algos[1].deterministic);
  EXPECT_FALSE(decoded->algos[1].supports_tradeoff);
  EXPECT_FALSE(decoded->algos[1].exact);
  EXPECT_FALSE(decoded->algos[1].produces_cut);
  EXPECT_TRUE(decoded->algos[1].supports_time_budget);
  EXPECT_EQ(decoded->algos[2].name, "anneal");
  EXPECT_FALSE(decoded->algos[2].deterministic);
  EXPECT_TRUE(decoded->algos[2].produces_cut);
  // A compressor that cannot enforce a wall-clock budget must say so on
  // the wire (flag bit 4), so remote callers reject --budget-ms up front.
  EXPECT_FALSE(decoded->algos[2].supports_time_budget);
}

TEST(WireProtocolTest, ResponseRoundTrip) {
  Response resp;
  resp.request_kind = MessageKind::kCompressRequest;
  resp.code = StatusCode::kInfeasible;
  resp.message = "no adequate VVS";
  resp.stats = {3, 7, 1 << 20, 1 << 26, 10, 4, 2, 5, 40, 15, 6};
  resp.generation = 12;
  resp.poly_count = 89;
  resp.monomial_count = 2400;
  resp.variable_count = 111;
  resp.cache_hit = true;
  resp.dedup_hit = true;
  resp.monomial_loss = 1332;
  resp.variable_loss = 98;
  resp.adequate = true;
  resp.vvs = "{T_root}";
  resp.compressed_monomials = 1068;
  resp.values = {1.5, -2.5, 0.0};
  resp.points = {{2400, 0}, {1068, 98}};

  auto decoded = DecodeResponse(EncodeResponse(resp));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_kind, MessageKind::kCompressRequest);
  EXPECT_EQ(decoded->code, StatusCode::kInfeasible);
  EXPECT_EQ(decoded->message, "no adequate VVS");
  EXPECT_FALSE(decoded->ok());
  EXPECT_EQ(decoded->ToStatus().code(), StatusCode::kInfeasible);
  EXPECT_EQ(decoded->stats.artifact_count, 3u);
  EXPECT_EQ(decoded->stats.eval_requests, 40u);
  EXPECT_EQ(decoded->stats.dedup_hits, 15u);
  EXPECT_EQ(decoded->stats.inflight_waiters, 6u);
  EXPECT_EQ(decoded->generation, 12u);
  EXPECT_EQ(decoded->monomial_count, 2400u);
  EXPECT_TRUE(decoded->cache_hit);
  EXPECT_TRUE(decoded->dedup_hit);
  EXPECT_TRUE(decoded->adequate);
  EXPECT_EQ(decoded->vvs, "{T_root}");
  EXPECT_EQ(decoded->compressed_monomials, 1068u);
  ASSERT_EQ(decoded->values.size(), 3u);
  EXPECT_DOUBLE_EQ(decoded->values[1], -2.5);
  ASSERT_EQ(decoded->points.size(), 2u);
  EXPECT_EQ(decoded->points[1].size_m, 1068u);
  EXPECT_EQ(decoded->points[1].variable_loss, 98u);
}

// ----------------------------------------------------------- robustness --

TEST(WireProtocolTest, PeekMessageKind) {
  EXPECT_EQ(*PeekMessageKind(EncodeShutdownRequest(ShutdownRequest{})),
            MessageKind::kShutdownRequest);
  EXPECT_EQ(*PeekMessageKind(EncodeListAlgosRequest(ListAlgosRequest{})),
            MessageKind::kListAlgosRequest);
  EXPECT_EQ(
      *PeekMessageKind(EncodeListBackendsRequest(ListBackendsRequest{})),
      MessageKind::kListBackendsRequest);
  EXPECT_EQ(*PeekMessageKind(EncodeResponse(Response{})),
            MessageKind::kResponse);
  EXPECT_FALSE(PeekMessageKind("").ok());
  EXPECT_FALSE(PeekMessageKind("XVAB\x01\x10").ok());
  // Current header with an unknown kind byte / an artifact kind (1..4):
  // neither is a protocol message.
  std::string header = {'P', 'V', 'A', 'B', static_cast<char>(kWireVersion)};
  EXPECT_FALSE(PeekMessageKind(header + '\x7F').ok());
  EXPECT_FALSE(PeekMessageKind(header + '\x01').ok());
  // A stale protocol version is rejected by name, not misparsed.
  std::string stale = {'P', 'V', 'A', 'B', '\x01',
                       static_cast<char>(MessageKind::kInfoRequest)};
  EXPECT_FALSE(PeekMessageKind(stale).ok());
  EXPECT_FALSE(DecodeInfoRequest(stale).ok());
}

/// Every strict prefix of a valid message must decode to a clean Status
/// error — never a crash, never a bogus success. This is the wire-level
/// twin of the serializer truncation sweep.
TEST(WireProtocolTest, TruncationSweepAllMessages) {
  LoadRequest load;
  load.artifact = "a";
  load.polys_bytes = "0123456789";
  load.forests = {{"f", "forest-bytes"}};
  EvaluateRequest eval;
  eval.artifact = "a";
  eval.assignments = {{"x", 1.0}};
  eval.eval_backend = "simd_batch";
  Response resp;
  resp.message = "msg";
  resp.values = {1.0, 2.0};
  resp.points = {{10, 1}};
  resp.vvs = "{r}";
  resp.algos = {{"opt", "optimal DP", true, true, true, true}};
  resp.eval_backend = "simd_batch";
  resp.backends = {{"simd_batch", "SoA lanes", true, true, 8, 2}};

  struct Case {
    std::string encoded;
    std::function<bool(std::string_view)> decode_ok;
  };
  std::vector<Case> cases;
  cases.push_back({EncodeLoadRequest(load), [](std::string_view d) {
                     return DecodeLoadRequest(d).ok();
                   }});
  cases.push_back(
      {EncodeCompressRequest(CompressRequest{"a", "f", "opt", 9}),
       [](std::string_view d) { return DecodeCompressRequest(d).ok(); }});
  cases.push_back({EncodeEvaluateRequest(eval), [](std::string_view d) {
                     return DecodeEvaluateRequest(d).ok();
                   }});
  cases.push_back({EncodeInfoRequest(InfoRequest{"a"}),
                   [](std::string_view d) {
                     return DecodeInfoRequest(d).ok();
                   }});
  cases.push_back({EncodeTradeoffRequest(TradeoffRequest{"a", "f"}),
                   [](std::string_view d) {
                     return DecodeTradeoffRequest(d).ok();
                   }});
  cases.push_back({EncodeShutdownRequest(ShutdownRequest{}),
                   [](std::string_view d) {
                     return DecodeShutdownRequest(d).ok();
                   }});
  cases.push_back({EncodeListAlgosRequest(ListAlgosRequest{}),
                   [](std::string_view d) {
                     return DecodeListAlgosRequest(d).ok();
                   }});
  cases.push_back({EncodeListBackendsRequest(ListBackendsRequest{}),
                   [](std::string_view d) {
                     return DecodeListBackendsRequest(d).ok();
                   }});
  EvaluateScenarioProgramRequest scenario;
  scenario.artifact = "a";
  scenario.program = "SET * = 1;";
  scenario.eval_backend = "simd_batch";
  scenario.shape = ScenarioShape::kTopK;
  scenario.top_k = 3;
  cases.push_back({EncodeEvaluateScenarioProgramRequest(scenario),
                   [](std::string_view d) {
                     return DecodeEvaluateScenarioProgramRequest(d).ok();
                   }});
  cases.push_back({EncodeResponse(resp), [](std::string_view d) {
                     return DecodeResponse(d).ok();
                   }});
  Response scenario_resp;
  scenario_resp.request_kind = MessageKind::kEvaluateScenarioProgramRequest;
  scenario_resp.scenario_count = 12;
  scenario_resp.program_cache_hit = true;
  scenario_resp.scenario_indices = {4, 7};
  scenario_resp.objectives = {1.5, 0.25};
  scenario_resp.values = {9.0, 8.0};
  scenario_resp.stats.program_misses = 1;
  cases.push_back({EncodeResponse(scenario_resp), [](std::string_view d) {
                     return DecodeResponse(d).ok();
                   }});

  for (size_t c = 0; c < cases.size(); ++c) {
    const std::string& full = cases[c].encoded;
    ASSERT_TRUE(cases[c].decode_ok(full)) << "case " << c;
    for (size_t len = 0; len < full.size(); ++len) {
      EXPECT_FALSE(cases[c].decode_ok(std::string_view(full).substr(0, len)))
          << "case " << c << " prefix " << len;
    }
  }
}

TEST(WireProtocolTest, HostileElementCountRejectedBeforeAllocation) {
  // A hand-built evaluate request claiming 10^18 assignments must fail the
  // plausibility check, not attempt a monster reserve.
  ByteWriter w;
  w.PutBytes("PVAB", 4);
  w.PutU8(kWireVersion);
  w.PutU8(static_cast<uint8_t>(MessageKind::kEvaluateRequest));
  w.PutString("a");
  w.PutVarint(1'000'000'000'000'000'000ull);
  auto decoded = DecodeEvaluateRequest(std::move(w).Release());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireProtocolTest, WrongKindRejected) {
  std::string compress = EncodeCompressRequest(CompressRequest{});
  EXPECT_FALSE(DecodeLoadRequest(compress).ok());
  EXPECT_FALSE(DecodeResponse(compress).ok());
}

// -------------------------------------------------------------- framing --

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, FrameRoundTrip) {
  std::string payload("hello\x00world", 11);
  ASSERT_TRUE(WriteFrame(fds_[0], payload).ok());
  ASSERT_TRUE(WriteFrame(fds_[0], "").ok());
  auto first = ReadFrame(fds_[1]);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, payload);
  auto second = ReadFrame(fds_[1]);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->size(), 0u);
}

TEST_F(FramingTest, CleanCloseIsNotFound) {
  ::close(fds_[0]);
  fds_[0] = -1;
  auto frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, MidFrameEofIsOutOfRange) {
  // Length prefix promises 100 bytes; only 3 arrive before close.
  char header[4] = {100, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  auto frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kOutOfRange);
}

TEST_F(FramingTest, OversizedLengthPrefixRejected) {
  // 0xFFFFFFFF exceeds kMaxFrameBytes; rejected before any allocation.
  char header[4] = {'\xFF', '\xFF', '\xFF', '\xFF'};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  auto frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace provabs
