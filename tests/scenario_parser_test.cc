#include "scenario/parser.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "scenario/lexer.h"

namespace provabs {
namespace {

using scenario::CaretDiagnostic;
using scenario::DomainKind;
using scenario::ExprKind;
using scenario::Parse;
using scenario::ProgramAst;
using scenario::SelectorKind;

TEST(ScenarioParserTest, ParsesSweepAndGridDeclarations) {
  auto ast = Parse("LET d = SWEEP(0.5 .. 1.0 STEP 0.1);"
                   "LET m = GRID(1, 2, 5)");
  ASSERT_TRUE(ast.ok());
  ASSERT_EQ(ast->params.size(), 2u);
  EXPECT_EQ(ast->params[0].name, "d");
  EXPECT_EQ(ast->params[0].kind, DomainKind::kSweep);
  EXPECT_DOUBLE_EQ(ast->params[0].lo, 0.5);
  EXPECT_DOUBLE_EQ(ast->params[0].hi, 1.0);
  EXPECT_DOUBLE_EQ(ast->params[0].step, 0.1);
  EXPECT_EQ(ast->params[1].kind, DomainKind::kGrid);
  EXPECT_EQ(ast->params[1].values, (std::vector<double>{1, 2, 5}));
}

TEST(ScenarioParserTest, ParsesSelectors) {
  auto ast = Parse("SET * = 1; SET plan3 = 2; SET PREFIX(plan) = 3;"
                   "SET IN(a, b, c) = 4;");
  ASSERT_TRUE(ast.ok());
  ASSERT_EQ(ast->rules.size(), 4u);
  EXPECT_EQ(ast->rules[0].selector.kind, SelectorKind::kAll);
  EXPECT_EQ(ast->rules[1].selector.kind, SelectorKind::kExact);
  EXPECT_EQ(ast->rules[1].selector.names, (std::vector<std::string>{"plan3"}));
  EXPECT_EQ(ast->rules[2].selector.kind, SelectorKind::kPrefix);
  EXPECT_EQ(ast->rules[3].selector.kind, SelectorKind::kSet);
  EXPECT_EQ(ast->rules[3].selector.names,
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ScenarioParserTest, PrecedenceOrBelowAndBelowComparison) {
  // IF a < 1 AND b < 2 OR NOT c THEN x ELSE y — OR at the top.
  auto ast = Parse("LET a = GRID(1); LET b = GRID(1); LET c = GRID(1);"
                   "SET * = IF a < 1 AND b < 2 OR NOT c > 0 THEN a ELSE b;");
  ASSERT_TRUE(ast.ok());
  const scenario::Expr& value = *ast->rules[0].value;
  ASSERT_EQ(value.kind, ExprKind::kIf);
  EXPECT_EQ(value.a->kind, ExprKind::kBinary);
  EXPECT_EQ(value.a->op, scenario::BinaryOp::kOr);
}

TEST(ScenarioParserTest, NegativeNumbersInDomains) {
  auto ast = Parse("LET x = SWEEP(-2 .. -1 STEP 0.5); LET y = GRID(-3, 4)");
  ASSERT_TRUE(ast.ok());
  EXPECT_DOUBLE_EQ(ast->params[0].lo, -2);
  EXPECT_DOUBLE_EQ(ast->params[0].hi, -1);
  EXPECT_EQ(ast->params[1].values, (std::vector<double>{-3, 4}));
}

TEST(ScenarioParserTest, EmptyProgramIsAnError) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("  # only a comment\n").ok());
}

TEST(ScenarioParserTest, StraySemicolonsAreTolerated) {
  EXPECT_TRUE(Parse(";; SET * = 1 ;;").ok());
}

TEST(ScenarioParserTest, ErrorsCarryOffsetsForCarets) {
  size_t offset = 0;
  auto ast = Parse("LET d = SWEEP(1 .. 2 STEP)", &offset);
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("at offset"), std::string::npos);
  std::string caret = CaretDiagnostic("LET d = SWEEP(1 .. 2 STEP)", offset);
  EXPECT_NE(caret.find("line 1"), std::string::npos);
  EXPECT_NE(caret.find('^'), std::string::npos);
}

TEST(ScenarioParserTest, CaretPointsAtTheRightColumn) {
  std::string source = "SET * = 1;\nSET ? = 2;";
  size_t offset = 0;
  auto ast = Parse(source, &offset);
  ASSERT_FALSE(ast.ok());
  std::string caret = CaretDiagnostic(source, offset);
  EXPECT_NE(caret.find("line 2, column 5"), std::string::npos);
}

TEST(ScenarioParserTest, DeepNestingIsAnErrorNotAStackOverflow) {
  std::string source = "SET * = ";
  for (int i = 0; i < 100000; ++i) source += '(';
  source += '1';
  for (int i = 0; i < 100000; ++i) source += ')';
  auto ast = Parse(source);
  ASSERT_FALSE(ast.ok());
  EXPECT_NE(ast.status().message().find("nested"), std::string::npos);
}

// Truncation sweep: every prefix of a valid program must either parse or
// fail with a Status — no hangs, no overreads (caught under ASan in CI).
TEST(ScenarioParserTest, FuzzEveryPrefixOfAValidProgram) {
  const std::string source =
      "LET d = SWEEP(0.5 .. 1.0 STEP 0.25); # discount\n"
      "LET m = GRID(1, 2, 12);"
      "SET PREFIX(plan) = d * m;"
      "SET IN(m1, m2) = IF d < 0.75 THEN 0 ELSE 1;"
      "SET * = 1;";
  for (size_t len = 0; len <= source.size(); ++len) {
    auto ast = Parse(source.substr(0, len));
    if (len == source.size()) {
      EXPECT_TRUE(ast.ok());
    }
  }
}

// Seeded random-token-stream fuzz: glue syntactically valid tokens in
// random order. The parser must always terminate with a value or an error
// whose offset lies inside the input.
TEST(ScenarioParserTest, FuzzRandomTokenStreams) {
  const std::vector<std::string> vocab = {
      "LET",  "SET", "SWEEP", "GRID",  "PREFIX", "IN",  "IF",  "THEN",
      "ELSE", "AND", "OR",    "NOT",   "STEP",   "(",   ")",   ",",
      ";",    "=",   "==",    "!=",    "<",      "<=",  ">",   ">=",
      "..",   "*",   "+",     "-",     "/",      "x",   "y",   "plan1",
      "0.5",  "2",   "1e9",   "'s'",   "#c\n"};
  Rng rng(424242);
  for (int round = 0; round < 3000; ++round) {
    std::string source;
    const int len = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < len; ++i) {
      source += vocab[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vocab.size()) - 1))];
      source += ' ';
    }
    size_t offset = 0;
    auto ast = Parse(source, &offset);
    if (!ast.ok()) {
      EXPECT_LE(offset, source.size());
    }
  }
}

}  // namespace
}  // namespace provabs
