// EvaluateBatcher behavior under the backend registry: ragged concurrent
// batch sizes around the SIMD lane width, backend selection and error
// propagation per request, snapshot-keyed grouping across mid-flight
// Add-invalidation of the compiled form, and the exactly-once dispatch
// contract — on a one-thread pool every (compiled form, backend) group is
// exactly ONE EvaluateBatch call per leader round, observed through a
// counting backend injected via the registry parameter.
//
// The concurrent sections run under TSan in CI (this suite is in the
// thread-sanitizer job's list) to certify the leader/follower protocol
// around the new grouping path.

#include "server/evaluate_batcher.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/evaluation_backend.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "parallel/thread_pool.h"

namespace provabs {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::vector<double> NaiveEvaluateAll(const Valuation& val,
                                     const PolynomialSet& polys) {
  std::vector<double> out;
  out.reserve(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    out.push_back(val.Evaluate(p));
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& which) {
  ASSERT_EQ(expected.size(), actual.size()) << which;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(Bits(expected[i]), Bits(actual[i]))
        << which << ": polynomial " << i;
  }
}

/// A few polynomials over a handful of variables — small enough that the
/// whole set is one chunk on a one-thread pool, rich enough (exponents,
/// shared variables) that slot-mapping mistakes would change bits.
std::shared_ptr<PolynomialSet> MakeSet(Rng& rng, VariableTable& vars,
                                       size_t num_polys, const char* prefix) {
  std::vector<VariableId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(vars.Intern(std::string(prefix) + std::to_string(i)));
  }
  auto polys = std::make_shared<PolynomialSet>();
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = 1 + rng.Uniform(6);
    for (size_t t = 0; t < n_terms; ++t) {
      std::vector<Factor> factors;
      const size_t n_factors = 1 + rng.Uniform(3);
      for (size_t f = 0; f < n_factors; ++f) {
        factors.push_back({ids[rng.Uniform(ids.size())],
                           static_cast<uint32_t>(1 + rng.Uniform(3))});
      }
      terms.emplace_back(rng.UniformReal(-4.0, 4.0), std::move(factors));
    }
    polys->Add(Polynomial::FromMonomials(std::move(terms)));
  }
  return polys;
}

Valuation MakeScenario(Rng& rng, const PolynomialSet& polys) {
  Valuation val;
  for (VariableId v : polys.Variables()) {
    if (rng.Bernoulli(0.7)) val.Set(v, rng.UniformReal(-1.5, 1.5));
  }
  return val;
}

/// Delegates to the compiled scalar walk but counts EvaluateBatch
/// dispatches — the probe for the exactly-once-per-round contract.
class CountingBackend : public EvaluationBackend {
 public:
  const EvaluationBackendInfo& info() const override {
    static const EvaluationBackendInfo kInfo = {
        "counting", "compiled walk that counts dispatches", false, true, 1};
    return kInfo;
  }
  // mutable: DoEvaluateBatch is const on the backend interface.
  mutable std::atomic<uint64_t> calls{0};
  mutable std::atomic<uint64_t> scenarios_seen{0};

 protected:
  void DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                       size_t poly_begin, size_t poly_end,
                       const DenseValuation* const* scenarios,
                       double* const* outs,
                       size_t scenario_count) const override {
    calls.fetch_add(1, std::memory_order_relaxed);
    scenarios_seen.fetch_add(scenario_count, std::memory_order_relaxed);
    for (size_t s = 0; s < scenario_count; ++s) {
      compiled.EvaluateRange(poly_begin, poly_end, *scenarios[s], outs[s]);
    }
  }
};

/// Fires `n` concurrent Evaluate calls at one batcher and bit-checks every
/// result against the naive reference.
void RunConcurrent(EvaluateBatcher& batcher,
                   std::shared_ptr<const PolynomialSet> polys,
                   const std::vector<Valuation>& scenarios,
                   const std::string& backend = "") {
  const size_t n = scenarios.size();
  std::vector<StatusOr<std::vector<double>>> results(
      n, StatusOr<std::vector<double>>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t c = 0; c < n; ++c) {
    threads.emplace_back([&, c] {
      results[c] = batcher.Evaluate(polys, scenarios[c], backend);
    });
  }
  for (auto& t : threads) t.join();
  for (size_t c = 0; c < n; ++c) {
    ASSERT_TRUE(results[c].ok()) << results[c].status().ToString();
    ExpectBitwiseEqual(NaiveEvaluateAll(scenarios[c], *polys), *results[c],
                       "caller " + std::to_string(c));
  }
}

// Ragged concurrency around the simd_batch preferred width (8): single
// request, one under, exactly at, one over, and 10x — every coalescing
// shape from lone leader through full lane groups plus remainders.
TEST(EvaluateBatcherTest, RaggedBatchSizesStayBitwiseCorrect) {
  Rng rng(31000);
  VariableTable vars;
  auto polys = MakeSet(rng, vars, 6, "r");
  ThreadPool pool(4);
  EvaluateBatcher batcher(pool);

  size_t total = 0;
  for (size_t n : {size_t{1}, size_t{7}, size_t{8}, size_t{9}, size_t{80}}) {
    std::vector<Valuation> scenarios;
    for (size_t s = 0; s < n; ++s) scenarios.push_back(MakeScenario(rng, *polys));
    RunConcurrent(batcher, polys, scenarios);
    total += n;
  }

  EvaluateBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_GE(stats.batches, 5u);  // at least one leader round per wave
  EXPECT_LE(stats.batches, stats.requests);
  EXPECT_GE(stats.groups, stats.batches);  // every round forms >= 1 group
  EXPECT_GE(stats.backend_calls, stats.groups);
  EXPECT_GE(stats.max_batch, 1u);
}

// Explicit backend names route per request — requests naming different
// backends coalesce into one round but split into per-backend groups, and
// all of them stay bitwise equal to naive.
TEST(EvaluateBatcherTest, PerRequestBackendSelection) {
  Rng rng(31001);
  VariableTable vars;
  auto polys = MakeSet(rng, vars, 5, "b");
  ThreadPool pool(2);
  EvaluateBatcher batcher(pool);

  for (const char* backend : {"naive", "compiled", "simd_batch", "jit", ""}) {
    std::vector<Valuation> scenarios;
    for (int s = 0; s < 9; ++s) scenarios.push_back(MakeScenario(rng, *polys));
    RunConcurrent(batcher, polys, scenarios, backend);
  }

  // Mixed names from concurrent callers.
  const std::vector<std::string> names = {"naive", "compiled", "simd_batch",
                                          "", "jit", "naive"};
  std::vector<Valuation> scenarios;
  for (size_t s = 0; s < names.size(); ++s) {
    scenarios.push_back(MakeScenario(rng, *polys));
  }
  std::vector<StatusOr<std::vector<double>>> results(
      names.size(), StatusOr<std::vector<double>>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  for (size_t c = 0; c < names.size(); ++c) {
    threads.emplace_back([&, c] {
      results[c] = batcher.Evaluate(polys, scenarios[c], names[c]);
    });
  }
  for (auto& t : threads) t.join();
  for (size_t c = 0; c < names.size(); ++c) {
    ASSERT_TRUE(results[c].ok()) << results[c].status().ToString();
    ExpectBitwiseEqual(NaiveEvaluateAll(scenarios[c], *polys), *results[c],
                       "backend '" + names[c] + "'");
  }
}

TEST(EvaluateBatcherTest, UnknownBackendFailsWithoutPoisoningTheRound) {
  Rng rng(31002);
  VariableTable vars;
  auto polys = MakeSet(rng, vars, 4, "u");
  ThreadPool pool(2);
  EvaluateBatcher batcher(pool);

  // A bad request and good requests race into the same batcher: the bad
  // one gets the registry's name-listing error, the good ones complete.
  Valuation good_val = MakeScenario(rng, *polys);
  StatusOr<std::vector<double>> bad(Status::Internal("unset"));
  StatusOr<std::vector<double>> good(Status::Internal("unset"));
  std::thread t1([&] { bad = batcher.Evaluate(polys, Valuation{}, "turbo"); });
  std::thread t2([&] { good = batcher.Evaluate(polys, good_val); });
  t1.join();
  t2.join();

  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(bad.status().message().find("unknown evaluation backend 'turbo'"),
            std::string::npos)
      << bad.status().message();
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ExpectBitwiseEqual(NaiveEvaluateAll(good_val, *polys), *good, "good");
}

// Mid-flight Add-invalidation: requests materialize against the compiled
// snapshot they saw; a mutation (through a copy sharing storage, and then
// on the live set between waves) produces a NEW snapshot, and the batcher
// groups by snapshot — so stale-but-consistent requests and fresh requests
// coexist in one round, each bitwise correct against its own form, with no
// fingerprint rejections.
TEST(EvaluateBatcherTest, AddInvalidationSplitsGroupsBySnapshot) {
  Rng rng(31003);
  VariableTable vars;
  ThreadPool pool(4);
  EvaluateBatcher batcher(pool);

  auto original = MakeSet(rng, vars, 4, "m");
  original->Compiled();  // warm the cache so the copy shares the snapshot
  auto mutated = std::make_shared<PolynomialSet>(*original);
  ASSERT_EQ(original->Compiled().get(), mutated->Compiled().get());
  mutated->Add(Polynomial::FromMonomials(
      {Monomial(3.5, {{vars.Intern("m0"), 2}, {vars.Intern("fresh"), 1}})}));
  ASSERT_NE(original->Compiled().get(), mutated->Compiled().get());
  ASSERT_NE(original->Compiled()->fingerprint(),
            mutated->Compiled()->fingerprint());

  // Interleaved concurrent requests against both forms.
  constexpr size_t kPerSet = 10;
  std::vector<Valuation> old_scen, new_scen;
  for (size_t s = 0; s < kPerSet; ++s) {
    old_scen.push_back(MakeScenario(rng, *original));
    new_scen.push_back(MakeScenario(rng, *mutated));
  }
  std::vector<StatusOr<std::vector<double>>> old_res(
      kPerSet, StatusOr<std::vector<double>>(Status::Internal("unset")));
  std::vector<StatusOr<std::vector<double>>> new_res(
      kPerSet, StatusOr<std::vector<double>>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  for (size_t c = 0; c < kPerSet; ++c) {
    threads.emplace_back(
        [&, c] { old_res[c] = batcher.Evaluate(original, old_scen[c]); });
    threads.emplace_back(
        [&, c] { new_res[c] = batcher.Evaluate(mutated, new_scen[c]); });
  }
  for (auto& t : threads) t.join();
  for (size_t c = 0; c < kPerSet; ++c) {
    ASSERT_TRUE(old_res[c].ok()) << old_res[c].status().ToString();
    ExpectBitwiseEqual(NaiveEvaluateAll(old_scen[c], *original), *old_res[c],
                       "pre-mutation form");
    ASSERT_TRUE(new_res[c].ok()) << new_res[c].status().ToString();
    ASSERT_EQ(new_res[c]->size(), original->count() + 1);
    ExpectBitwiseEqual(NaiveEvaluateAll(new_scen[c], *mutated), *new_res[c],
                       "post-mutation form");
  }

  // The two forms never merged into one group.
  EXPECT_GE(batcher.stats().groups, 2u);
}

// The dispatch contract the chunking formula guarantees: on a ONE-thread
// pool a group is never split, so with every request in the same (form,
// backend) group there is exactly one EvaluateBatch call per leader round
// — counted by an injected backend, cross-checked against stats.
TEST(EvaluateBatcherTest, ExactlyOneDispatchPerGroupPerRound) {
  Rng rng(31004);
  VariableTable vars;
  auto polys = MakeSet(rng, vars, 7, "c");

  EvaluationBackendRegistry registry;
  ASSERT_TRUE(RegisterBuiltinEvaluationBackends(registry).ok());
  auto counting = std::make_unique<CountingBackend>();
  CountingBackend* counter = counting.get();
  ASSERT_TRUE(registry.Register(std::move(counting)).ok());

  ThreadPool pool(1);
  EvaluateBatcher batcher(pool, &registry);

  constexpr size_t kCallers = 16;
  constexpr int kRounds = 4;
  size_t total = 0;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<Valuation> scenarios;
    for (size_t s = 0; s < kCallers; ++s) {
      scenarios.push_back(MakeScenario(rng, *polys));
    }
    RunConcurrent(batcher, polys, scenarios, "counting");
    total += kCallers;
  }

  EvaluateBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, total);
  EXPECT_EQ(counter->scenarios_seen.load(), total);
  // Single group per round (same form, same backend) and a one-thread pool
  // (single chunk): dispatches == groups == leader rounds.
  EXPECT_EQ(counter->calls.load(), stats.backend_calls);
  EXPECT_EQ(stats.backend_calls, stats.groups);
  EXPECT_EQ(stats.groups, stats.batches);
  EXPECT_LE(stats.batches, stats.requests);
}

// Soak: sustained waves through one batcher — leader handoff, stats
// monotonicity, and bitwise correctness hold over many rounds.
TEST(EvaluateBatcherTest, ManyRoundsSoak) {
  Rng rng(31005);
  VariableTable vars;
  auto polys = MakeSet(rng, vars, 5, "s");
  ThreadPool pool(4);
  EvaluateBatcher batcher(pool);

  constexpr int kWaves = 20;
  constexpr size_t kCallers = 6;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<Valuation> scenarios;
    for (size_t s = 0; s < kCallers; ++s) {
      scenarios.push_back(MakeScenario(rng, *polys));
    }
    RunConcurrent(batcher, polys, scenarios,
                  wave % 2 == 0 ? "" : "simd_batch");
  }
  EXPECT_EQ(batcher.stats().requests, kWaves * kCallers);
}

}  // namespace
}  // namespace provabs
