#include "workload/telephony.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/valuation.h"

namespace provabs {
namespace {

class RunningExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakeRunningExample(vars_);
    polys_ = RunRunningExampleQuery(ex_);
  }

  /// Coefficient of the monomial plan_var·month_var in `p` (0 if absent).
  double CoefficientOf(const Polynomial& p, VariableId plan,
                       VariableId month) {
    for (const Monomial& m : p.monomials()) {
      if (m.Contains(plan) && m.Contains(month)) return m.coefficient();
    }
    return 0.0;
  }

  /// The polynomial mentioning `var` (P1 mentions p1, P2 mentions b1).
  const Polynomial& PolyWith(VariableId var) {
    for (const Polynomial& p : polys_.polynomials()) {
      if (p.Mentions(var)) return p;
    }
    ADD_FAILURE() << "no polynomial mentions the variable";
    return polys_[0];
  }

  VariableTable vars_;
  RunningExample ex_;
  PolynomialSet polys_;
};

TEST_F(RunningExampleTest, TwoZipCodesTwoPolynomials) {
  EXPECT_EQ(polys_.count(), 2u);
  EXPECT_EQ(polys_.SizeM(), 14u);  // 8 + 6 (Example 13)
  EXPECT_EQ(polys_.SizeV(), 9u);
}

// Example 13's P1, coefficient by coefficient. The paper prints 220.8 for
// the p1·m1 term, but Figure 1 has Dur=522 and Price=0.4, so the product is
// 208.8 — we follow the data.
TEST_F(RunningExampleTest, P1CoefficientsMatchFigure1) {
  const Polynomial& p1 = PolyWith(ex_.p1);
  EXPECT_NEAR(CoefficientOf(p1, ex_.p1, ex_.m1), 208.8, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.p1, ex_.m3), 240.0, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.f1, ex_.m1), 127.4, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.f1, ex_.m3), 114.45, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.y1, ex_.m1), 75.9, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.y1, ex_.m3), 72.5, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.v, ex_.m1), 42.0, 1e-9);
  EXPECT_NEAR(CoefficientOf(p1, ex_.v, ex_.m3), 24.2, 1e-9);
}

TEST_F(RunningExampleTest, P2CoefficientsMatchExample13) {
  const Polynomial& p2 = PolyWith(ex_.b1);
  EXPECT_NEAR(CoefficientOf(p2, ex_.b1, ex_.m1), 77.9, 1e-9);
  EXPECT_NEAR(CoefficientOf(p2, ex_.b1, ex_.m3), 80.5, 1e-9);
  EXPECT_NEAR(CoefficientOf(p2, ex_.e, ex_.m1), 52.2, 1e-9);
  EXPECT_NEAR(CoefficientOf(p2, ex_.e, ex_.m3), 56.5, 1e-9);
  EXPECT_NEAR(CoefficientOf(p2, ex_.b2, ex_.m1), 69.7, 1e-9);
  EXPECT_NEAR(CoefficientOf(p2, ex_.b2, ex_.m3), 100.65, 1e-9);
}

TEST_F(RunningExampleTest, NeutralValuationGivesPlainRevenue) {
  // With every parameter at 1, the polynomials evaluate to the unmodified
  // per-zip revenue.
  Valuation val;
  double total = 0;
  for (const Polynomial& p : polys_.polynomials()) {
    total += val.Evaluate(p);
  }
  double expected = 208.8 + 240.0 + 127.4 + 114.45 + 75.9 + 72.5 + 42.0 +
                    24.2 + 77.9 + 80.5 + 52.2 + 56.5 + 69.7 + 100.65;
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST_F(RunningExampleTest, WhatIfScenarioMarchDiscount) {
  // "What if prices drop 20% in March?" — m3 := 0.8 scales exactly the m3
  // terms of both polynomials.
  Valuation val;
  val.Set(ex_.m3, 0.8);
  const Polynomial& p1 = PolyWith(ex_.p1);
  double expected = 208.8 + 127.4 + 75.9 + 42.0 +
                    0.8 * (240.0 + 114.45 + 72.5 + 24.2);
  EXPECT_NEAR(val.Evaluate(p1), expected, 1e-9);
}

TEST_F(RunningExampleTest, WhatIfBusinessPlansRaise) {
  // "+10% on business plans" scales b1, b2 and e terms of P2.
  Valuation val;
  val.Set(ex_.b1, 1.1);
  val.Set(ex_.b2, 1.1);
  val.Set(ex_.e, 1.1);
  const Polynomial& p2 = PolyWith(ex_.b1);
  double expected = 1.1 * (77.9 + 80.5 + 52.2 + 56.5 + 69.7 + 100.65);
  EXPECT_NEAR(val.Evaluate(p2), expected, 1e-9);
}

TEST_F(RunningExampleTest, EveryMonomialHasOnePlanAndOneMonthVariable) {
  for (const Polynomial& p : polys_.polynomials()) {
    for (const Monomial& m : p.monomials()) {
      EXPECT_EQ(m.degree(), 2u);
    }
  }
}

// ------------------------------------------------ synthetic generator ----

class TelephonyGeneratorTest : public ::testing::Test {
 protected:
  TelephonyConfig SmallConfig() {
    TelephonyConfig c;
    c.num_customers = 200;
    c.num_plans = 16;
    c.num_months = 6;
    c.num_zip_codes = 10;
    return c;
  }
};

TEST_F(TelephonyGeneratorTest, GeneratesExpectedCardinalities) {
  TelephonyConfig c = SmallConfig();
  Rng rng(c.seed);
  Database db = GenerateTelephony(c, rng);
  EXPECT_EQ(db.Get("Cust").row_count(), 200u);
  EXPECT_EQ(db.Get("Calls").row_count(), 200u * 6u);
  EXPECT_EQ(db.Get("Plans").row_count(), 16u * 6u);
  EXPECT_TRUE(db.Get("Cust").ValidateRows().ok());
  EXPECT_TRUE(db.Get("Calls").ValidateRows().ok());
  EXPECT_TRUE(db.Get("Plans").ValidateRows().ok());
}

TEST_F(TelephonyGeneratorTest, DeterministicAcrossRuns) {
  TelephonyConfig c = SmallConfig();
  Rng rng1(7);
  Rng rng2(7);
  Database a = GenerateTelephony(c, rng1);
  Database b = GenerateTelephony(c, rng2);
  EXPECT_EQ(a.Get("Calls").rows()[17], b.Get("Calls").rows()[17]);
}

TEST_F(TelephonyGeneratorTest, QueryYieldsOnePolynomialPerZip) {
  TelephonyConfig c = SmallConfig();
  Rng rng(c.seed);
  Database db = GenerateTelephony(c, rng);
  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, c);
  PolynomialSet polys = RunTelephonyQuery(db, tv);
  EXPECT_LE(polys.count(), c.num_zip_codes);
  EXPECT_GT(polys.count(), 0u);
  // Granularity is bounded by the parameter space.
  EXPECT_LE(polys.SizeV(), c.num_plans + c.num_months);
}

TEST_F(TelephonyGeneratorTest, MonomialsPairPlanWithMonth) {
  TelephonyConfig c = SmallConfig();
  Rng rng(c.seed);
  Database db = GenerateTelephony(c, rng);
  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, c);
  PolynomialSet polys = RunTelephonyQuery(db, tv);
  std::unordered_set<VariableId> plan_set(tv.plan_vars.begin(),
                                          tv.plan_vars.end());
  for (const Polynomial& p : polys.polynomials()) {
    for (const Monomial& m : p.monomials()) {
      ASSERT_EQ(m.degree(), 2u);
      // Exactly one factor from the plan space.
      int plan_factors = 0;
      for (const Factor& f : m.factors()) {
        if (plan_set.count(f.var)) ++plan_factors;
      }
      EXPECT_EQ(plan_factors, 1);
    }
  }
}

TEST_F(TelephonyGeneratorTest, ProvenanceSizeGrowsWithCustomers) {
  VariableTable vars;
  TelephonyConfig small = SmallConfig();
  TelephonyConfig big = SmallConfig();
  big.num_customers = 2000;
  Rng r1(1);
  Rng r2(1);
  TelephonyVars tv = MakeTelephonyVars(vars, small);
  size_t m_small =
      RunTelephonyQuery(GenerateTelephony(small, r1), tv).SizeM();
  size_t m_big = RunTelephonyQuery(GenerateTelephony(big, r2), tv).SizeM();
  EXPECT_GT(m_big, m_small);
}

}  // namespace
}  // namespace provabs
