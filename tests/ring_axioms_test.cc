#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/polynomial.h"
#include "core/valuation.h"
#include "core/variable.h"

namespace provabs {
namespace {

/// Property suite: the provenance polynomials form a commutative semiring
/// under Add/Multiply (the algebraic backbone of the semiring framework
/// [36] that §2.1 builds on). Each axiom is checked both structurally
/// (canonical equality) and semantically (evaluation agreement under random
/// valuations).
class RingAxiomsTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(70000 + GetParam());
    for (int i = 0; i < 5; ++i) {
      pool_.push_back(vars_.Intern("v" + std::to_string(i)));
    }
  }

  Polynomial Random(size_t max_terms = 6) {
    std::vector<Monomial> terms;
    size_t n = 1 + rng_->Uniform(max_terms);
    for (size_t t = 0; t < n; ++t) {
      std::vector<Factor> f;
      size_t degree = rng_->Uniform(3);
      for (size_t d = 0; d < degree; ++d) {
        f.push_back({pool_[rng_->Uniform(pool_.size())],
                     static_cast<uint32_t>(1 + rng_->Uniform(2))});
      }
      terms.emplace_back(rng_->UniformReal(-5.0, 5.0), std::move(f));
    }
    return Polynomial::FromMonomials(std::move(terms));
  }

  Valuation RandomValuation() {
    Valuation val;
    for (VariableId v : pool_) val.Set(v, rng_->UniformReal(-2.0, 2.0));
    return val;
  }

  /// Exact structural equality plus evaluation agreement — for axioms
  /// whose two sides compute coefficients through identical operations.
  void ExpectEqual(const Polynomial& a, const Polynomial& b) {
    EXPECT_TRUE(a == b) << "structural mismatch";
    ExpectSameValue(a, b);
  }

  /// Evaluation agreement only — for axioms like (a·b)·c = a·(b·c) whose
  /// sides are equal as polynomials over ℝ but accumulate floating-point
  /// coefficients in different orders (doubles are not associative).
  void ExpectSameValue(const Polynomial& a, const Polynomial& b) {
    for (int trial = 0; trial < 3; ++trial) {
      Valuation val = RandomValuation();
      double va = val.Evaluate(a);
      double vb = val.Evaluate(b);
      EXPECT_NEAR(va, vb, (std::abs(va) + 1.0) * 1e-9);
    }
  }

  VariableTable vars_;
  std::vector<VariableId> pool_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(RingAxiomsTest, AdditionCommutes) {
  Polynomial a = Random();
  Polynomial b = Random();
  ExpectEqual(Add(a, b), Add(b, a));
}

TEST_P(RingAxiomsTest, AdditionAssociates) {
  Polynomial a = Random();
  Polynomial b = Random();
  Polynomial c = Random();
  ExpectEqual(Add(Add(a, b), c), Add(a, Add(b, c)));
}

TEST_P(RingAxiomsTest, MultiplicationCommutes) {
  Polynomial a = Random();
  Polynomial b = Random();
  ExpectEqual(Multiply(a, b), Multiply(b, a));
}

TEST_P(RingAxiomsTest, MultiplicationAssociates) {
  Polynomial a = Random(4);
  Polynomial b = Random(4);
  Polynomial c = Random(4);
  ExpectSameValue(Multiply(Multiply(a, b), c),
                  Multiply(a, Multiply(b, c)));
}

TEST_P(RingAxiomsTest, MultiplicationDistributesOverAddition) {
  Polynomial a = Random(4);
  Polynomial b = Random(4);
  Polynomial c = Random(4);
  ExpectSameValue(Multiply(a, Add(b, c)),
                  Add(Multiply(a, b), Multiply(a, c)));
}

TEST_P(RingAxiomsTest, OneIsMultiplicativeIdentity) {
  Polynomial a = Random();
  ExpectEqual(Multiply(a, OnePolynomial()), a);
  ExpectEqual(Multiply(OnePolynomial(), a), a);
}

TEST_P(RingAxiomsTest, ZeroIsAdditiveIdentityAndAnnihilator) {
  Polynomial a = Random();
  Polynomial zero;
  ExpectEqual(Add(a, zero), a);
  ExpectEqual(Multiply(a, zero), zero);
}

TEST_P(RingAxiomsTest, SubstitutionIsAHomomorphism) {
  // P↓S distributes over + and ·: (a + b)↓S = a↓S + b↓S and
  // (a·b)↓S = a↓S · b↓S — the property that lets abstraction be applied to
  // any intermediate form of the provenance.
  VariableId target = vars_.Intern("G" + std::to_string(GetParam()));
  auto map = [&](VariableId v) {
    return (v == pool_[0] || v == pool_[1]) ? target : v;
  };
  Polynomial a = Random(4);
  Polynomial b = Random(4);
  ExpectEqual(Add(a, b).MapVariables(map),
              Add(a.MapVariables(map), b.MapVariables(map)));
  ExpectEqual(Multiply(a, b).MapVariables(map),
              Multiply(a.MapVariables(map), b.MapVariables(map)));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RingAxiomsTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace provabs
