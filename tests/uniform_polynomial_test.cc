#include "workload/uniform_polynomial.h"

#include <gtest/gtest.h>

#include "abstraction/loss.h"
#include "algo/optimal_single_tree.h"
#include "common/random.h"
#include "workload/vertex_cover.h"

namespace provabs {
namespace {

// The running instance of Example 17: X = 4 metavariables, n = 3,
// I = {(1,2), (1,3), (2,3), (2,4)} (1-based in the paper; 0-based here).
UniformInstance Example17(VariableTable& vars) {
  return MakeUniformInstance(vars, 4, 3, {{0, 1}, {0, 2}, {1, 2}, {1, 3}});
}

TEST(UniformPolynomialTest, Claim18Sizes) {
  VariableTable vars;
  UniformInstance inst = Example17(vars);
  // |P|_M = |I|·n² and |P|_V = |X|·n (Claim 18 / Example 19).
  EXPECT_EQ(inst.polynomial.SizeM(), 4u * 9u);
  EXPECT_EQ(inst.polynomial.SizeV(), 4u * 3u);
}

TEST(UniformPolynomialTest, FlatAbstractionIsCompatible) {
  VariableTable vars;
  UniformInstance inst = Example17(vars);
  EXPECT_TRUE(inst.flat_abstraction.Validate().ok());
  PolynomialSet polys;
  polys.Add(inst.polynomial);
  // Claim 22: the flat abstraction is compatible with P.
  EXPECT_TRUE(inst.flat_abstraction.CheckCompatible(polys).ok());
}

TEST(UniformPolynomialTest, FlatAbstractionShape) {
  VariableTable vars;
  UniformInstance inst = Example17(vars);
  EXPECT_EQ(inst.flat_abstraction.tree_count(), 4u);
  for (size_t t = 0; t < 4; ++t) {
    EXPECT_EQ(inst.flat_abstraction.tree(t).Height(), 1u);
    EXPECT_EQ(inst.flat_abstraction.tree(t).leaves().size(), 3u);
  }
}

// Claim 23 (illustrated by Example 24): abstracting Y = {x(1), x(3)} yields
// per-pair sizes 1 / n / n² and granularity |Y| + (|X|−|Y|)·n.
TEST(UniformPolynomialTest, Claim23PredictionMatchesActual) {
  VariableTable vars;
  UniformInstance inst = Example17(vars);
  std::vector<bool> abstracted = {true, false, true, false};
  auto [pred_m, pred_v] = PredictAbstractedSizes(inst, abstracted);
  // Example 24: P(1,2) -> 3 monomials, P(1,3) -> 1, P(2,3) -> 3,
  // P(2,4) -> 9; variables: 2 metavariables + 2·3 leaves.
  EXPECT_EQ(pred_m, 3u + 1u + 3u + 9u);
  EXPECT_EQ(pred_v, 2u + 6u);

  // Cross-check by actually applying the cut.
  ValidVariableSet vvs;
  for (uint32_t t = 0; t < 4; ++t) {
    if (abstracted[t]) {
      vvs.Add(NodeRef{t, inst.flat_abstraction.tree(t).root()});
    } else {
      for (NodeIndex leaf : inst.flat_abstraction.tree(t).leaves()) {
        vvs.Add(NodeRef{t, leaf});
      }
    }
  }
  ASSERT_TRUE(vvs.Validate(inst.flat_abstraction).ok());
  PolynomialSet polys;
  polys.Add(inst.polynomial);
  PolynomialSet result = vvs.Apply(inst.flat_abstraction, polys);
  EXPECT_EQ(result.SizeM(), pred_m);
  EXPECT_EQ(result.SizeV(), pred_v);
}

// Property: Claim 23's formula agrees with real application for every
// subset Y on random instances.
class Claim23PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Claim23PropertyTest, FormulaMatchesApplication) {
  Rng rng(6600 + GetParam());
  VariableTable vars;
  uint32_t x = 3 + rng.Uniform(3);   // 3..5 metavariables
  uint32_t n = 2 + rng.Uniform(3);   // blowup 2..4
  // Claim 23's granularity formula counts every tree's variables, so it
  // presumes each metavariable occurs in some pair of I (true for the
  // reduction's graphs after trivial cleanup); keep the generator within
  // that regime by chaining all metavariables.
  std::vector<std::pair<uint32_t, uint32_t>> pairs;
  for (uint32_t a = 0; a + 1 < x; ++a) pairs.emplace_back(a, a + 1);
  for (uint32_t a = 0; a < x; ++a) {
    for (uint32_t b = a + 2; b < x; ++b) {
      if (rng.Bernoulli(0.6)) pairs.emplace_back(a, b);
    }
  }
  UniformInstance inst = MakeUniformInstance(vars, x, n, pairs);

  PolynomialSet polys;
  polys.Add(inst.polynomial);
  for (uint64_t mask = 0; mask < (1ull << x); ++mask) {
    std::vector<bool> abstracted(x);
    for (uint32_t a = 0; a < x; ++a) abstracted[a] = (mask >> a) & 1;
    auto [pred_m, pred_v] = PredictAbstractedSizes(inst, abstracted);

    ValidVariableSet vvs;
    for (uint32_t t = 0; t < x; ++t) {
      if (abstracted[t]) {
        vvs.Add(NodeRef{t, inst.flat_abstraction.tree(t).root()});
      } else {
        for (NodeIndex leaf : inst.flat_abstraction.tree(t).leaves()) {
          vvs.Add(NodeRef{t, leaf});
        }
      }
    }
    PolynomialSet result = vvs.Apply(inst.flat_abstraction, polys);
    EXPECT_EQ(result.SizeM(), pred_m) << "mask " << mask;
    EXPECT_EQ(result.SizeV(), pred_v) << "mask " << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, Claim23PropertyTest,
                         ::testing::Range(0, 10));

// Claim 25: abstraction never empties the polynomial (positive
// coefficients cannot cancel).
TEST(UniformPolynomialTest, Claim25PositiveSize) {
  VariableTable vars;
  UniformInstance inst = Example17(vars);
  PolynomialSet polys;
  polys.Add(inst.polynomial);
  ValidVariableSet all_roots =
      ValidVariableSet::AllRoots(inst.flat_abstraction);
  PolynomialSet result = all_roots.Apply(inst.flat_abstraction, polys);
  EXPECT_GT(result.SizeM(), 0u);
}

// ----------------------------------------------- vertex-cover reduction --

TEST(VertexCoverTest, TriangleNeedsTwo) {
  Graph g;
  g.num_vertices = 3;
  g.edges = {{0, 1}, {0, 2}, {1, 2}};
  EXPECT_FALSE(HasVertexCoverOfSize(g, 1));
  EXPECT_TRUE(HasVertexCoverOfSize(g, 2));
  EXPECT_EQ(MinVertexCoverSize(g), 2u);
}

TEST(VertexCoverTest, StarNeedsOne) {
  Graph g;
  g.num_vertices = 5;
  g.edges = {{0, 1}, {0, 2}, {0, 3}, {0, 4}};
  EXPECT_TRUE(HasVertexCoverOfSize(g, 1));
  EXPECT_EQ(MinVertexCoverSize(g), 1u);
}

TEST(VertexCoverTest, IsVertexCoverChecksEdges) {
  Graph g;
  g.num_vertices = 3;
  g.edges = {{0, 1}, {1, 2}};
  EXPECT_TRUE(IsVertexCover(g, {false, true, false}));
  EXPECT_FALSE(IsVertexCover(g, {true, false, false}));
}

// Lemma 29, both directions, validated on exhaustive small graphs: the
// reduction's decision answer equals the exact vertex-cover answer.
class ReductionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionPropertyTest, ReductionAgreesWithExactSolver) {
  Rng rng(8800 + GetParam());
  Graph g = RandomGraph(3 + rng.Uniform(3), 0.5, rng);
  if (g.edges.empty()) g.edges.push_back({0, 1});

  for (uint32_t k = 1; k < g.num_vertices; ++k) {
    VariableTable vars;
    bool via_reduction = HasVertexCoverViaReduction(vars, g, k);
    bool exact = HasVertexCoverOfSize(g, k);
    EXPECT_EQ(via_reduction, exact)
        << "vertices " << g.num_vertices << " edges " << g.edges.size()
        << " k " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ReductionPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace provabs
