#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "common/random.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "sql/planner.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Differential and fuzz suites cutting across modules.

/// The central semantic theorem of the paper, checked end-to-end for every
/// algorithm on random instances: whatever VVS an algorithm picks, a
/// scenario that assigns group-uniform values evaluates IDENTICALLY on the
/// compressed and the original provenance.
class UniformScenarioTest : public ::testing::TestWithParam<int> {};

TEST_P(UniformScenarioTest, AllAlgorithmsPreserveGroupUniformScenarios) {
  Rng rng(40000 + GetParam());
  VariableTable vars;

  const size_t num_trees = 1 + rng.Uniform(2);
  AbstractionForest forest;
  std::vector<std::vector<VariableId>> tree_leaves(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    const size_t n = 4 + rng.Uniform(6);
    for (size_t i = 0; i < n; ++i) {
      tree_leaves[t].push_back(vars.Intern(
          "d" + std::to_string(GetParam()) + "_" + std::to_string(t) + "_" +
          std::to_string(i)));
    }
    forest.AddTree(BuildUniformTree(
        vars, tree_leaves[t], rng.Bernoulli(0.5)
                                  ? std::vector<uint32_t>{2}
                                  : std::vector<uint32_t>{2, 2},
        "DT" + std::to_string(t) + "_"));
  }
  ASSERT_TRUE(forest.Validate().ok());

  PolynomialSet polys;
  for (size_t p = 0; p < 1 + rng.Uniform(3); ++p) {
    std::vector<Monomial> terms;
    for (int m = 0; m < 20; ++m) {
      std::vector<Factor> f;
      for (size_t t = 0; t < num_trees; ++t) {
        if (rng.Bernoulli(0.8)) {
          f.push_back(
              {tree_leaves[t][rng.Uniform(tree_leaves[t].size())], 1});
        }
      }
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  const size_t bound = 1 + polys.SizeM() / 2;
  std::vector<std::pair<std::string, ValidVariableSet>> candidates;
  if (auto greedy = GreedyMultiTree(polys, forest, bound); greedy.ok()) {
    candidates.emplace_back("greedy", greedy->vvs);
  }
  if (auto opt = OptimalSingleTree(polys, forest, 0, bound); opt.ok()) {
    candidates.emplace_back("optimal", opt->vvs);
  }
  if (auto brute = BruteForce(polys, forest, bound); brute.ok()) {
    candidates.emplace_back("brute", brute->vvs);
  }
  ASSERT_FALSE(candidates.empty());

  for (const auto& [name, vvs] : candidates) {
    ASSERT_TRUE(vvs.Validate(forest).ok()) << name;
    PolynomialSet compressed = vvs.Apply(forest, polys);
    auto subst = vvs.SubstitutionMap(forest);
    for (int trial = 0; trial < 5; ++trial) {
      Valuation val;
      std::unordered_map<VariableId, double> group_value;
      for (const auto& [leaf, rep] : subst) {
        auto [it, inserted] = group_value.emplace(rep, 0.0);
        if (inserted) it->second = rng.UniformReal(0.5, 1.5);
        val.Set(leaf, it->second);
        val.Set(rep, it->second);
      }
      for (size_t i = 0; i < polys.count(); ++i) {
        double original = val.Evaluate(polys[i]);
        double abstracted = val.Evaluate(compressed[i]);
        EXPECT_NEAR(original, abstracted, std::abs(original) * 1e-9 + 1e-9)
            << name << " polynomial " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, UniformScenarioTest,
                         ::testing::Range(0, 15));

/// SQL planner vs the hand-built plan on random telephony databases.
class SqlDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SqlDifferentialTest, SqlMatchesHandBuiltPlanOnRandomData) {
  TelephonyConfig config;
  config.num_customers = 40 + 10 * static_cast<size_t>(GetParam());
  config.num_plans = 8;
  config.num_months = 4;
  config.num_zip_codes = 5;
  config.seed = 500 + static_cast<uint64_t>(GetParam());
  Rng rng(config.seed);
  Database db = GenerateTelephony(config, rng);
  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, config);

  PolynomialSet reference = RunTelephonyQuery(db, tv);

  sql::PlanOptions options;
  options.parameters = [&](const Row& row, const Schema& schema)
      -> std::vector<VariableId> {
    int64_t plan = AsInt(row[schema.IndexOf("Cust.Plan")]);
    int64_t mo = AsInt(row[schema.IndexOf("Calls.Mo")]);
    return {tv.plan_vars[static_cast<size_t>(plan)],
            tv.month_vars[static_cast<size_t>(mo - 1)]};
  };
  auto result = sql::ExecuteSql(
      "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
      "FROM Calls, Cust, Plans "
      "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
      "AND Calls.Mo = Plans.Mo GROUP BY Cust.Zip",
      db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  PolynomialSet from_sql = result->ToPolynomialSet();

  ASSERT_EQ(from_sql.count(), reference.count());
  EXPECT_EQ(from_sql.SizeM(), reference.SizeM());
  EXPECT_EQ(from_sql.SizeV(), reference.SizeV());
  for (const Polynomial& p : reference.polynomials()) {
    bool matched = false;
    for (const Polynomial& q : from_sql.polynomials()) {
      if (q == p) matched = true;
    }
    EXPECT_TRUE(matched);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDatabases, SqlDifferentialTest,
                         ::testing::Range(0, 8));

/// Serializer fuzz: random byte corruption must never crash the reader —
/// every flip either parses cleanly or returns a Status error.
class SerializerFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializerFuzzTest, RandomCorruptionNeverCrashes) {
  Rng rng(60000 + GetParam());
  VariableTable vars;
  RunningExample ex = MakeRunningExample(vars);
  PolynomialSet polys = RunRunningExampleQuery(ex);
  std::string data = SerializePolynomialSet(polys, vars);

  for (int flip = 0; flip < 200; ++flip) {
    std::string corrupt = data;
    size_t pos = rng.Uniform(corrupt.size());
    corrupt[pos] = static_cast<char>(rng.Uniform(256));
    VariableTable fresh;
    auto parsed = DeserializePolynomialSet(corrupt, fresh);
    // Either outcome is fine; the process must survive.
    if (parsed.ok()) {
      EXPECT_GE(parsed->count(), 0u);
    }
  }
  for (int truncate = 0; truncate < 50; ++truncate) {
    size_t len = rng.Uniform(data.size());
    VariableTable fresh;
    auto parsed = DeserializePolynomialSet(
        std::string_view(data).substr(0, len), fresh);
    EXPECT_FALSE(parsed.ok());  // A strict prefix can never be complete.
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializerFuzzTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace provabs
