#include "workload/tpch.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "core/valuation.h"

namespace provabs {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.scale_factor = 0.2;  // Small but non-trivial.
    Rng rng(config_.seed);
    db_ = GenerateTpch(config_, rng);
    tv_ = MakeTpchVars(vars_, /*groups=*/32);
  }

  TpchConfig config_;
  Database db_;
  VariableTable vars_;
  TpchVars tv_;
};

TEST_F(TpchTest, GeneratorCardinalities) {
  EXPECT_EQ(db_.Get("REGION").row_count(), 5u);
  EXPECT_EQ(db_.Get("NATION").row_count(), 25u);
  EXPECT_EQ(db_.Get("SUPPLIER").row_count(), config_.NumSuppliers());
  EXPECT_EQ(db_.Get("PART").row_count(), config_.NumParts());
  EXPECT_EQ(db_.Get("CUSTOMER").row_count(), config_.NumCustomers());
  EXPECT_EQ(db_.Get("ORDERS").row_count(), config_.NumOrders());
  EXPECT_EQ(db_.Get("LINEITEM").row_count(), config_.NumLineitems());
}

TEST_F(TpchTest, GeneratorRowsWellTyped) {
  for (const char* t : {"REGION", "NATION", "SUPPLIER", "PART", "CUSTOMER",
                        "ORDERS", "LINEITEM"}) {
    EXPECT_TRUE(db_.Get(t).ValidateRows().ok()) << t;
  }
}

TEST_F(TpchTest, GeneratorDeterministic) {
  Rng r1(9);
  Rng r2(9);
  Database a = GenerateTpch(config_, r1);
  Database b = GenerateTpch(config_, r2);
  EXPECT_EQ(a.Get("LINEITEM").rows()[3], b.Get("LINEITEM").rows()[3]);
}

TEST_F(TpchTest, ScaleFactorScalesTables) {
  TpchConfig big;
  big.scale_factor = 0.4;
  EXPECT_EQ(big.NumLineitems(), 2 * config_.NumLineitems());
}

// --- Q1: few polynomials, each large (the paper's 8 × 11,265 shape). ---

TEST_F(TpchTest, Q1ShapeFewLargePolynomials) {
  PolynomialSet polys = RunTpchQ1(db_, tv_);
  EXPECT_GE(polys.count(), 4u);
  EXPECT_LE(polys.count(), 8u);  // |returnflag| × |linestatus| ≤ 3·2, plus
                                 // headroom for flag-mix choices.
  // Each polynomial is dense in the (s, p) parameter grid.
  EXPECT_GT(polys.SizeM() / polys.count(), 100u);
}

TEST_F(TpchTest, Q1MonomialsPairSupplierAndPartVariables) {
  PolynomialSet polys = RunTpchQ1(db_, tv_);
  std::unordered_set<VariableId> s_set(tv_.supplier_vars.begin(),
                                       tv_.supplier_vars.end());
  std::unordered_set<VariableId> p_set(tv_.part_vars.begin(),
                                       tv_.part_vars.end());
  for (const Polynomial& poly : polys.polynomials()) {
    for (const Monomial& m : poly.monomials()) {
      int s_count = 0;
      int p_count = 0;
      for (const Factor& f : m.factors()) {
        s_count += s_set.count(f.var) > 0 ? 1 : 0;
        p_count += p_set.count(f.var) > 0 ? 1 : 0;
      }
      ASSERT_EQ(s_count, 1);
      ASSERT_EQ(p_count, 1);
    }
  }
}

TEST_F(TpchTest, Q1NeutralValuationEqualsDirectAggregate) {
  PolynomialSet polys = RunTpchQ1(db_, tv_);
  Valuation val;
  double from_provenance = 0;
  for (const Polynomial& p : polys.polynomials()) {
    from_provenance += val.Evaluate(p);
  }
  // Direct SUM over the table.
  const Table& li = db_.Get("LINEITEM");
  size_t price = li.schema().IndexOf("L_EXTENDEDPRICE");
  size_t disc = li.schema().IndexOf("L_DISCOUNT");
  double direct = 0;
  for (const Row& row : li.rows()) {
    direct += AsDouble(row[price]) * (1.0 - AsDouble(row[disc]));
  }
  EXPECT_NEAR(from_provenance, direct, direct * 1e-9);
}

// --- Q5: ~25 nation-level polynomials. ---

TEST_F(TpchTest, Q5ShapeNationPolynomials) {
  PolynomialSet polys = RunTpchQ5(db_, tv_);
  EXPECT_GE(polys.count(), 5u);
  EXPECT_LE(polys.count(), 25u);
}

TEST_F(TpchTest, Q5RespectsNationEquality) {
  // Recompute Q5's total revenue directly from the base tables: only
  // lineitems whose order's customer shares a nation with the supplier
  // contribute. The provenance total under the neutral valuation must
  // match exactly.
  PolynomialSet polys = RunTpchQ5(db_, tv_);
  Valuation val;
  double q5_total = 0;
  for (const Polynomial& p : polys.polynomials()) q5_total += val.Evaluate(p);

  const Table& li = db_.Get("LINEITEM");
  const Table& orders = db_.Get("ORDERS");
  const Table& cust = db_.Get("CUSTOMER");
  const Table& supp = db_.Get("SUPPLIER");
  size_t price = li.schema().IndexOf("L_EXTENDEDPRICE");
  size_t disc = li.schema().IndexOf("L_DISCOUNT");
  size_t okey = li.schema().IndexOf("L_ORDERKEY");
  size_t skey = li.schema().IndexOf("L_SUPPKEY");
  double direct = 0;
  for (const Row& row : li.rows()) {
    const Row& order = orders.rows()[static_cast<size_t>(AsInt(row[okey]))];
    const Row& customer = cust.rows()[static_cast<size_t>(AsInt(order[1]))];
    const Row& supplier = supp.rows()[static_cast<size_t>(AsInt(row[skey]))];
    if (AsInt(customer[1]) != AsInt(supplier[1])) continue;
    direct += AsDouble(row[price]) * (1.0 - AsDouble(row[disc]));
  }
  EXPECT_GT(direct, 0.0);
  EXPECT_NEAR(q5_total, direct, direct * 1e-9);
}

// --- Q10: many small per-customer polynomials. ---

TEST_F(TpchTest, Q10ShapeManySmallPolynomials) {
  PolynomialSet polys = RunTpchQ10(db_, tv_);
  // Roughly one polynomial per customer with returned items.
  EXPECT_GT(polys.count(), 100u);
  double avg = static_cast<double>(polys.SizeM()) /
               static_cast<double>(polys.count());
  EXPECT_LT(avg, 30.0);  // Paper: 15.78 average at its scale.
}

TEST_F(TpchTest, Q10OnlyReturnedItems) {
  PolynomialSet polys = RunTpchQ10(db_, tv_);
  Valuation val;
  double q10_total = 0;
  for (const Polynomial& p : polys.polynomials()) {
    q10_total += val.Evaluate(p);
  }
  const Table& li = db_.Get("LINEITEM");
  size_t price = li.schema().IndexOf("L_EXTENDEDPRICE");
  size_t disc = li.schema().IndexOf("L_DISCOUNT");
  size_t flag = li.schema().IndexOf("L_RETURNFLAG");
  double direct = 0;
  for (const Row& row : li.rows()) {
    if (AsString(row[flag]) != "R") continue;
    direct += AsDouble(row[price]) * (1.0 - AsDouble(row[disc]));
  }
  // Q10 drops lineitems whose order lacks a customer match; with our
  // generator every order has a customer, so totals agree.
  EXPECT_NEAR(q10_total, direct, direct * 1e-9);
}

TEST_F(TpchTest, DispatchMatchesDirectCalls) {
  EXPECT_EQ(RunTpchQuery(TpchQuery::kQ1, db_, tv_).count(),
            RunTpchQ1(db_, tv_).count());
  EXPECT_EQ(RunTpchQuery(TpchQuery::kQ5, db_, tv_).count(),
            RunTpchQ5(db_, tv_).count());
  EXPECT_EQ(RunTpchQuery(TpchQuery::kQ10, db_, tv_).count(),
            RunTpchQ10(db_, tv_).count());
}

TEST_F(TpchTest, VariableSpaceBoundedByGroups) {
  PolynomialSet polys = RunTpchQ1(db_, tv_);
  EXPECT_LE(polys.SizeV(), 2u * 32u);
}

}  // namespace
}  // namespace provabs
