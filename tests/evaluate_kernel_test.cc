// Differential suite for the compiled evaluation kernel
// (core/compiled_polynomial_set.h): naive per-polynomial Evaluate is the
// reference defining the canonical summation order; the compiled kernel,
// the parallel path, and the batched serving path must reproduce it
// BITWISE — floating-point add/mul are not associative, so exact equality
// is only possible if every path performs the identical operation
// sequence. Coverage: exponents > 1, unassigned variables (default 1.0),
// variables assigned but absent from the set, empty polynomials, empty
// sets, and post-abstraction sets (tree cuts and interned prox groups).
//
// The parallel/batched arms run under TSan in CI (evaluate_kernel_test is
// in the thread-sanitizer job's suite list) to certify the lazy
// Compiled() cache and the shared DenseValuation reads.

#include "core/compiled_polynomial_set.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "algo/compressor.h"
#include "common/random.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "parallel/parallel_compress.h"
#include "parallel/thread_pool.h"
#include "server/evaluate_batcher.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Bit pattern of a double, so "identical" means identical IEEE-754 bits
/// (distinguishes -0.0 from 0.0 and would catch NaN-payload drift too).
uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// The reference: per-polynomial naive Evaluate (EvaluateAll itself now
/// routes through the compiled kernel, so the reference must not use it).
std::vector<double> NaiveEvaluateAll(const Valuation& val,
                                     const PolynomialSet& polys) {
  std::vector<double> out;
  out.reserve(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    out.push_back(val.Evaluate(p));
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const char* which) {
  ASSERT_EQ(expected.size(), actual.size()) << which;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(Bits(expected[i]), Bits(actual[i]))
        << which << ": polynomial " << i << " expected " << expected[i]
        << " got " << actual[i];
  }
}

/// Runs every evaluation path against the naive reference.
void RunAllPathsDifferential(const Valuation& val, const PolynomialSet& polys,
                             ThreadPool& pool) {
  const std::vector<double> expected = NaiveEvaluateAll(val, polys);

  ExpectBitwiseEqual(expected, val.EvaluateAll(polys), "EvaluateAll");

  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  const DenseValuation dense = compiled->MaterializeValuation(val);
  ExpectBitwiseEqual(expected, compiled->EvaluateAll(dense),
                     "compiled EvaluateAll");
  for (size_t i = 0; i < polys.count(); ++i) {
    ASSERT_EQ(Bits(expected[i]), Bits(compiled->EvaluateOne(i, dense)))
        << "EvaluateOne " << i;
  }

  ExpectBitwiseEqual(expected, ParallelEvaluateAll(val, polys, pool),
                     "ParallelEvaluateAll");

  EvaluateBatcher batcher(pool);
  auto shared = std::make_shared<PolynomialSet>(polys);
  StatusOr<std::vector<double>> batched = batcher.Evaluate(shared, val);
  ASSERT_TRUE(batched.ok()) << batched.status().ToString();
  ExpectBitwiseEqual(expected, *batched, "EvaluateBatcher");
}

// ------------------------------------------------- structure units ------

TEST(CompiledPolynomialSetTest, CsrLayoutCountsMatchTheSource) {
  VariableTable vars;
  VariableId x = vars.Intern("x");
  VariableId y = vars.Intern("y");
  VariableId z = vars.Intern("z");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({
      Monomial(2.0, {{x, 1}, {y, 2}}),
      Monomial(3.0, {{z, 1}}),
  }));
  polys.Add(Polynomial());  // empty polynomial
  polys.Add(Polynomial::FromMonomials({Monomial(5.0, {{y, 3}})}));

  CompiledPolynomialSet compiled = CompiledPolynomialSet::Compile(polys);
  EXPECT_EQ(compiled.poly_count(), 3u);
  EXPECT_EQ(compiled.monomial_count(), polys.SizeM());
  EXPECT_EQ(compiled.factor_count(), 4u);  // x·y², z, y³
  EXPECT_EQ(compiled.slot_count(), 3u);    // x, y, z
  EXPECT_GT(compiled.ApproxBytes(), 0u);

  // Slot order is first appearance; materialization defaults to 1.0.
  Valuation val;
  val.Set(y, 0.5);
  DenseValuation dense = compiled.MaterializeValuation(val);
  ASSERT_EQ(dense.slot_count(), 3u);
  EXPECT_EQ(compiled.slot_variables()[0], x);
  EXPECT_EQ(dense[0], 1.0);
  EXPECT_EQ(dense[1], 0.5);
  EXPECT_EQ(dense[2], 1.0);

  // x·y² with x=1, y=0.5: 2*1*0.5*0.5 = 0.5; plus z=1: 3. Empty poly: 0.
  EXPECT_EQ(compiled.EvaluateOne(0, dense), 0.5 + 3.0);
  EXPECT_EQ(compiled.EvaluateOne(1, dense), 0.0);
  EXPECT_EQ(compiled.EvaluateOne(2, dense), 5.0 * 0.5 * 0.5 * 0.5);
}

TEST(CompiledPolynomialSetTest, EmptySetCompilesAndEvaluates) {
  PolynomialSet empty;
  auto compiled = empty.Compiled();
  EXPECT_EQ(compiled->poly_count(), 0u);
  EXPECT_EQ(compiled->slot_count(), 0u);
  Valuation val;
  EXPECT_TRUE(val.EvaluateAll(empty).empty());
}

TEST(CompiledPolynomialSetTest, CompiledFormIsCachedAndInvalidatedByAdd) {
  VariableTable vars;
  VariableId x = vars.Intern("x");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{x, 1}})}));

  auto first = polys.Compiled();
  auto second = polys.Compiled();
  EXPECT_EQ(first.get(), second.get());  // cached, not recompiled

  // Copies share the immutable compiled snapshot.
  PolynomialSet copy = polys;
  EXPECT_EQ(copy.Compiled().get(), first.get());

  // Mutation invalidates: the stale snapshot stays valid for its holder,
  // the set recompiles with the new polynomial visible.
  polys.Add(Polynomial::FromMonomials({Monomial(4.0, {{x, 2}})}));
  auto third = polys.Compiled();
  EXPECT_NE(third.get(), first.get());
  EXPECT_EQ(first->poly_count(), 1u);
  EXPECT_EQ(third->poly_count(), 2u);
}

TEST(CompiledPolynomialSetTest, VariablesAssignedButAbsentAreIgnored) {
  VariableTable vars;
  VariableId x = vars.Intern("x");
  VariableId ghost = vars.Intern("ghost");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(7.0, {{x, 1}})}));
  Valuation val;
  val.Set(ghost, 123.0);  // never occurs in the set
  val.Set(x, 2.0);
  std::vector<double> out = val.EvaluateAll(polys);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 14.0);
}

// ------------------------------------------- randomized differential ----

class EvaluateKernelDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(EvaluateKernelDifferentialTest, AllPathsBitwiseIdenticalToNaive) {
  Rng rng(4200 + GetParam());
  ThreadPool pool(4);
  VariableTable vars;

  const size_t num_vars = 3 + rng.Uniform(30);
  std::vector<VariableId> ids;
  for (size_t i = 0; i < num_vars; ++i) {
    ids.push_back(vars.Intern("v" + std::to_string(i)));
  }

  PolynomialSet polys;
  const size_t num_polys = rng.Uniform(9);  // 0 = empty set case
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = rng.Uniform(14);  // 0 = empty polynomial case
    for (size_t t = 0; t < n_terms; ++t) {
      std::vector<Factor> factors;
      const size_t n_factors = rng.Uniform(5);
      for (size_t f = 0; f < n_factors; ++f) {
        factors.push_back(
            {ids[rng.Uniform(ids.size())],
             static_cast<uint32_t>(1 + rng.Uniform(4))});  // exponents 1..4
      }
      terms.emplace_back(rng.UniformReal(-10.0, 10.0), std::move(factors));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }

  // Assign a random subset (some runs assign nothing); also assign a
  // variable outside the set entirely.
  Valuation val;
  for (VariableId id : ids) {
    if (rng.Bernoulli(0.6)) val.Set(id, rng.UniformReal(-2.0, 2.0));
  }
  val.Set(vars.Intern("outside"), 99.0);

  RunAllPathsDifferential(val, polys, pool);
}

INSTANTIATE_TEST_SUITE_P(RandomSets, EvaluateKernelDifferentialTest,
                         ::testing::Range(0, 24));

// Post-abstraction coverage: the compiled kernel must agree with naive on
// sets produced by the compression algorithms — tree cuts substitute
// meta-variables in, and prox's InternGrouping introduces freshly interned
// group variables whose ids are far from the original dense range.
TEST(EvaluateKernelAbstractionTest, CutAndGroupingResultsStayBitwiseEqual) {
  Rng rng(777);
  ThreadPool pool(4);
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 16; ++i) {
    leaves.push_back(vars.Intern("x" + std::to_string(i)));
  }
  VariableId m = vars.Intern("m");

  PolynomialSet polys;
  for (int p = 0; p < 4; ++p) {
    std::vector<Monomial> terms;
    for (int t = 0; t < 20; ++t) {
      std::vector<Factor> f;
      f.push_back({leaves[rng.Uniform(leaves.size())],
                   static_cast<uint32_t>(1 + rng.Uniform(2))});
      if (rng.Bernoulli(0.5)) f.push_back({m, 1});
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }

  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {4, 2}, "EK_"));
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  CompressOptions options;
  options.bound = polys.SizeM() / 2;

  // Tree-cut abstraction (greedy): evaluate the compressed view.
  auto greedy = CompressorRegistry::Default().Find("greedy")->Compress(
      polys, forest, options);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  PolynomialSet cut_view = greedy->Apply(forest, polys);

  // Grouping abstraction (prox) with interned group variables.
  auto prox = CompressorRegistry::Default().Find("prox")->Compress(
      polys, forest, options);
  ASSERT_TRUE(prox.ok()) << prox.status().ToString();
  prox->InternGrouping(vars);
  PolynomialSet group_view = prox->Apply(forest, polys);

  for (const PolynomialSet* view : {&cut_view, &group_view}) {
    Valuation val;
    // Assign over whatever variables survived (meta-variables included).
    for (VariableId v : view->Variables()) {
      if (rng.Bernoulli(0.7)) val.Set(v, rng.UniformReal(0.25, 1.75));
    }
    RunAllPathsDifferential(val, *view, pool);
  }
}

}  // namespace
}  // namespace provabs
