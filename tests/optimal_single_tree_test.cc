#include "algo/optimal_single_tree.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "algo/brute_force.h"
#include "common/random.h"
#include "core/polynomial.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Fixture with the pruned plans tree and the {P1, P2} polynomials of
/// Example 13 (paper's 220.8 typo corrected to 208.8 = 522·0.4).
class Example13Test : public ::testing::Test {
 protected:
  void SetUp() override {
    m1_ = vars_.Intern("m1");
    m3_ = vars_.Intern("m3");
    AbstractionTree full = MakeFigure2PlansTree(vars_);
    polys_ = MakePolys();
    auto pruned = full.PruneToPolynomials(polys_);
    ASSERT_TRUE(pruned.ok());
    forest_.AddTree(std::move(pruned).value());
    ASSERT_TRUE(forest_.Validate().ok());
    ASSERT_TRUE(forest_.CheckCompatible(polys_).ok());
  }

  PolynomialSet MakePolys() {
    auto v = [&](const char* n) { return vars_.Find(n); };
    PolynomialSet polys;
    polys.Add(Polynomial::FromMonomials({
        Monomial(208.8, {{v("p1"), 1}, {m1_, 1}}),
        Monomial(240.0, {{v("p1"), 1}, {m3_, 1}}),
        Monomial(127.4, {{v("f1"), 1}, {m1_, 1}}),
        Monomial(114.45, {{v("f1"), 1}, {m3_, 1}}),
        Monomial(75.9, {{v("y1"), 1}, {m1_, 1}}),
        Monomial(72.5, {{v("y1"), 1}, {m3_, 1}}),
        Monomial(42.0, {{v("v"), 1}, {m1_, 1}}),
        Monomial(24.2, {{v("v"), 1}, {m3_, 1}}),
    }));
    polys.Add(Polynomial::FromMonomials({
        Monomial(77.9, {{v("b1"), 1}, {m1_, 1}}),
        Monomial(80.5, {{v("b1"), 1}, {m3_, 1}}),
        Monomial(52.2, {{v("e"), 1}, {m1_, 1}}),
        Monomial(56.5, {{v("e"), 1}, {m3_, 1}}),
        Monomial(69.7, {{v("b2"), 1}, {m1_, 1}}),
        Monomial(100.65, {{v("b2"), 1}, {m3_, 1}}),
    }));
    return polys;
  }

  VariableTable vars_;
  VariableId m1_, m3_;
  PolynomialSet polys_;
  AbstractionForest forest_;
};

TEST_F(Example13Test, SetupSizes) {
  EXPECT_EQ(polys_.SizeM(), 14u);
  EXPECT_EQ(polys_.SizeV(), 9u);  // 7 plan vars + m1 + m3
}

// Example 13: bound B = 9 gives k = 5; the optimal VVS has monomial loss 6
// and variable loss 3 (the paper derives A_Plans[5] = 3 via {SB, Sp, e, p1}).
TEST_F(Example13Test, PaperExampleBound9) {
  auto result = OptimalSingleTree(polys_, forest_, 0, 9);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->adequate);
  EXPECT_GE(result->loss.monomial_loss, 5u);
  EXPECT_EQ(result->loss.monomial_loss, 6u);
  EXPECT_EQ(result->loss.variable_loss, 3u);
}

TEST_F(Example13Test, Bound9MatchesBruteForce) {
  auto opt = OptimalSingleTree(polys_, forest_, 0, 9);
  auto bf = BruteForce(polys_, forest_, 9);
  ASSERT_TRUE(opt.ok());
  ASSERT_TRUE(bf.ok());
  EXPECT_EQ(opt->loss.variable_loss, bf->loss.variable_loss);
}

TEST_F(Example13Test, TrivialBoundKeepsAllLeaves) {
  // B = |P|_M: no compression required; the optimal VVS loses nothing.
  auto result = OptimalSingleTree(polys_, forest_, 0, 14);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->loss.monomial_loss, 0u);
  EXPECT_EQ(result->loss.variable_loss, 0u);
}

TEST_F(Example13Test, MaximalCompressionUsesRoot) {
  // Grouping all plans leaves both polynomials with (Plans·m1 + Plans·m3):
  // total 4 monomials. Bound 4 is feasible only via the root.
  auto result = OptimalSingleTree(polys_, forest_, 0, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adequate);
  EXPECT_EQ(result->loss.monomial_loss, 10u);
  EXPECT_EQ(result->loss.variable_loss, 6u);  // 7 plan vars -> 1
}

TEST_F(Example13Test, InfeasibleBoundReported) {
  // Even the root cut leaves 4 monomials; B = 3 is infeasible (Example 8's
  // phenomenon, on the plans tree).
  auto result = OptimalSingleTree(polys_, forest_, 0, 3);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInfeasible);
}

TEST_F(Example13Test, ResultIsAValidCut) {
  auto result = OptimalSingleTree(polys_, forest_, 0, 9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
}

TEST_F(Example13Test, DenseArraysGiveSameAnswer) {
  OptimalOptions dense;
  dense.sparse_arrays = false;
  auto sparse_result = OptimalSingleTree(polys_, forest_, 0, 9);
  auto dense_result = OptimalSingleTree(polys_, forest_, 0, 9, dense);
  ASSERT_TRUE(sparse_result.ok());
  ASSERT_TRUE(dense_result.ok());
  EXPECT_EQ(sparse_result->loss.variable_loss,
            dense_result->loss.variable_loss);
}

TEST_F(Example13Test, NoHeight1ShortcutGivesSameAnswer) {
  OptimalOptions no_shortcut;
  no_shortcut.height1_shortcut = false;
  auto a = OptimalSingleTree(polys_, forest_, 0, 9);
  auto b = OptimalSingleTree(polys_, forest_, 0, 9, no_shortcut);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->loss.variable_loss, b->loss.variable_loss);
}

TEST_F(Example13Test, EveryFeasibleBoundMatchesBruteForce) {
  // Sweep all bounds; wherever brute force finds an adequate cut, the DP
  // must find one with identical (minimal) variable loss.
  for (size_t b = 1; b <= polys_.SizeM(); ++b) {
    auto opt = OptimalSingleTree(polys_, forest_, 0, b);
    auto bf = BruteForce(polys_, forest_, b);
    ASSERT_EQ(opt.ok(), bf.ok()) << "bound " << b;
    if (!opt.ok()) continue;
    EXPECT_EQ(opt->loss.variable_loss, bf->loss.variable_loss)
        << "bound " << b;
    EXPECT_TRUE(opt->adequate);
  }
}

TEST_F(Example13Test, RejectsBadTreeIndex) {
  auto result = OptimalSingleTree(polys_, forest_, 7, 9);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(Example13Test, RejectsZeroBound) {
  auto result = OptimalSingleTree(polys_, forest_, 0, 0);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(Example13Test, MultiTreeForestAbstractsOnlyChosenTree) {
  // Add the months tree; the single-tree algorithm over the plans tree must
  // leave m1/m3 untouched while still producing a forest-valid VVS.
  AbstractionForest forest2;
  AbstractionTree plans = forest_.tree(0).PruneToPolynomials(polys_).value();
  forest2.AddTree(std::move(plans));
  forest2.AddTree(MakeFigure3MonthsTree(vars_, 3));
  ASSERT_TRUE(forest2.Validate().ok());

  auto result = OptimalSingleTree(polys_, forest2, 0, 9);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->vvs.Validate(forest2).ok());
  PolynomialSet abstracted = result->vvs.Apply(forest2, polys_);
  EXPECT_TRUE(abstracted.Variables().count(m1_) > 0);
  EXPECT_TRUE(abstracted.Variables().count(m3_) > 0);
}

// Property test: on random single-tree instances the DP matches brute force
// exactly (same feasibility, same optimal variable loss) for every bound.
class OptimalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(OptimalPropertyTest, AgreesWithBruteForceOnRandomInstances) {
  Rng rng(7000 + GetParam());
  VariableTable vars;

  // Interleave the non-tree variable ids with the leaf ids (regression
  // coverage for the residual-hash ordering bug found via TPC-H).
  const size_t num_leaves = 6 + rng.Uniform(7);
  std::vector<VariableId> leaves;
  std::vector<VariableId> others;
  for (size_t i = 0; i < num_leaves; ++i) {
    leaves.push_back(vars.Intern("x" + std::to_string(i)));
    if (i == num_leaves / 2) {
      others.push_back(vars.Intern("u"));
      others.push_back(vars.Intern("w"));
    }
  }

  const std::vector<std::vector<uint32_t>> shapes = {{2}, {3}, {2, 2}};
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves,
                                  shapes[rng.Uniform(shapes.size())], "g"));
  ASSERT_TRUE(forest.Validate().ok());

  PolynomialSet polys;
  const size_t num_polys = 1 + rng.Uniform(3);
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = 5 + rng.Uniform(15);
    for (size_t t = 0; t < n_terms; ++t) {
      std::vector<Factor> f;
      if (rng.Bernoulli(0.85)) {
        f.push_back({leaves[rng.Uniform(leaves.size())], 1});
      }
      if (rng.Bernoulli(0.7)) {
        f.push_back({others[rng.Uniform(others.size())], 1});
      }
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  for (size_t b = 1; b <= polys.SizeM(); b += 1 + rng.Uniform(3)) {
    auto opt = OptimalSingleTree(polys, forest, 0, b);
    auto bf = BruteForce(polys, forest, b);
    ASSERT_EQ(opt.ok(), bf.ok())
        << "bound " << b << ": " << opt.status().ToString() << " vs "
        << bf.status().ToString();
    if (!opt.ok()) {
      EXPECT_EQ(opt.status().code(), StatusCode::kInfeasible);
      continue;
    }
    EXPECT_TRUE(opt->adequate);
    EXPECT_TRUE(opt->vvs.Validate(forest).ok());
    EXPECT_EQ(opt->loss.variable_loss, bf->loss.variable_loss)
        << "bound " << b;
    // The reported loss must equal a from-scratch recount.
    LossReport recheck = ComputeLossNaive(polys, forest, opt->vvs);
    EXPECT_EQ(recheck.monomial_loss, opt->loss.monomial_loss);
    EXPECT_EQ(recheck.variable_loss, opt->loss.variable_loss);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, OptimalPropertyTest,
                         ::testing::Range(0, 25));

// Regression for the single-child Convolve copy: `NodeArray tau =
// *children[0]` used to inherit the child's `use_self` flags, so a unary
// parent's reconstruction emitted the parent where the DP actually scored
// the child's singleton VVS — diverging from the sparse_arrays=false arm,
// whose ConvolveDense never propagates the flag.
TEST(UnaryChainTest, ReconstructEmitsChildNotUnaryParent) {
  VariableTable vars;
  AbstractionTreeBuilder builder(vars);
  NodeIndex root = builder.AddRoot("Root");
  NodeIndex mid = builder.AddChild(root, "Mid");
  builder.AddChild(mid, "a");
  builder.AddChild(mid, "b");
  AbstractionForest forest;
  forest.AddTree(std::move(builder).Build());
  ASSERT_TRUE(forest.Validate().ok());

  VariableId a = vars.Find("a");
  VariableId b = vars.Find("b");
  VariableId m = vars.Intern("m");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({
      Monomial(2.0, {{a, 1}, {m, 1}}),
      Monomial(3.0, {{b, 1}, {m, 1}}),
  }));
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  // Bound 1 forces grouping {a, b}; the DP scores that at Mid's singleton
  // entry, and cutting at Mid or at the unary Root yields identical loss.
  // Both array representations must reconstruct the cut the DP scored: the
  // child {Mid}, never the inherited-flag parent {Root}.
  for (bool sparse : {true, false}) {
    OptimalOptions options;
    options.sparse_arrays = sparse;
    auto result = OptimalSingleTree(polys, forest, 0, 1, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_TRUE(result->adequate);
    EXPECT_EQ(result->loss.monomial_loss, 1u);
    EXPECT_EQ(result->loss.variable_loss, 1u);
    EXPECT_EQ(result->vvs.ToString(forest, vars), "{Mid}")
        << (sparse ? "sparse" : "dense") << " arm";
  }
}

// A deeper unary chain: flags must not accumulate upward through several
// single-child convolution copies either.
TEST(UnaryChainTest, TripleChainStillPicksDeepestScoringNode) {
  VariableTable vars;
  AbstractionTreeBuilder builder(vars);
  NodeIndex top = builder.AddRoot("Top");
  NodeIndex middle = builder.AddChild(top, "Middle");
  NodeIndex low = builder.AddChild(middle, "Low");
  builder.AddChild(low, "x0");
  builder.AddChild(low, "x1");
  builder.AddChild(low, "x2");
  AbstractionForest forest;
  forest.AddTree(std::move(builder).Build());
  ASSERT_TRUE(forest.Validate().ok());

  VariableId m = vars.Intern("m");
  std::vector<Monomial> terms;
  for (int i = 0; i < 3; ++i) {
    terms.emplace_back(
        1.5 + i, std::vector<Factor>{
                     {vars.Find("x" + std::to_string(i)), 1}, {m, 1}});
  }
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(std::move(terms)));
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  for (bool sparse : {true, false}) {
    OptimalOptions options;
    options.sparse_arrays = sparse;
    auto result = OptimalSingleTree(polys, forest, 0, 1, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->vvs.ToString(forest, vars), "{Low}")
        << (sparse ? "sparse" : "dense") << " arm";
  }
}

// Differential: the sparse (hash-map) and dense (vector) ablation arms must
// reconstruct the SAME chosen cut — not merely equal losses — on random
// trees that include unary chains. Reconstruction shares one code path and
// breaks ties canonically, so any divergence means the arrays themselves
// disagree.
class SparseDenseCutTest : public ::testing::TestWithParam<int> {};

TEST_P(SparseDenseCutTest, ChosenCutsAreIdenticalAcrossArms) {
  Rng rng(9100 + GetParam());
  VariableTable vars;

  // Random tree with fanouts in {1, 2, 3} (1 = unary chain link).
  AbstractionTreeBuilder builder(vars);
  int next_meta = 0;
  int next_leaf = 0;
  std::vector<VariableId> leaves;
  std::function<void(NodeIndex, int)> grow = [&](NodeIndex node, int depth) {
    size_t fanout = depth >= 3 ? 0 : rng.Uniform(4);  // 0 = leaf below
    if (depth == 0 && fanout == 0) fanout = 2;        // root stays internal
    if (fanout == 0) {
      // `node` was added as internal; give it leaf children so every
      // internal node has a subtree (a childless internal node would be a
      // leaf whose meta-label occurs in no polynomial — legal but inert).
      fanout = 1 + rng.Uniform(3);
      for (size_t c = 0; c < fanout; ++c) {
        VariableId leaf = vars.Intern("x" + std::to_string(next_leaf++));
        builder.AddChild(node, vars.NameOf(leaf));
        leaves.push_back(leaf);
      }
      return;
    }
    for (size_t c = 0; c < fanout; ++c) {
      NodeIndex child =
          builder.AddChild(node, "M" + std::to_string(next_meta++));
      grow(child, depth + 1);
    }
  };
  NodeIndex root = builder.AddRoot("MRoot");
  grow(root, 0);
  AbstractionForest forest;
  forest.AddTree(std::move(builder).Build());
  ASSERT_TRUE(forest.Validate().ok());
  ASSERT_GE(leaves.size(), 2u);

  VariableId u = vars.Intern("u");
  VariableId w = vars.Intern("w");
  PolynomialSet polys;
  const size_t num_polys = 1 + rng.Uniform(3);
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = 4 + rng.Uniform(12);
    for (size_t t = 0; t < n_terms; ++t) {
      std::vector<Factor> f;
      if (rng.Bernoulli(0.85)) {
        f.push_back({leaves[rng.Uniform(leaves.size())], 1});
      }
      if (rng.Bernoulli(0.6)) f.push_back({rng.Bernoulli(0.5) ? u : w, 1});
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  OptimalOptions sparse;
  sparse.sparse_arrays = true;
  OptimalOptions dense;
  dense.sparse_arrays = false;
  for (size_t b = 1; b <= polys.SizeM(); b += 1 + rng.Uniform(2)) {
    auto rs = OptimalSingleTree(polys, forest, 0, b, sparse);
    auto rd = OptimalSingleTree(polys, forest, 0, b, dense);
    ASSERT_EQ(rs.ok(), rd.ok()) << "bound " << b;
    if (!rs.ok()) continue;
    EXPECT_EQ(rs->loss.monomial_loss, rd->loss.monomial_loss) << "bound " << b;
    EXPECT_EQ(rs->loss.variable_loss, rd->loss.variable_loss) << "bound " << b;
    EXPECT_EQ(rs->vvs.ToString(forest, vars), rd->vvs.ToString(forest, vars))
        << "bound " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTreesWithUnaryChains, SparseDenseCutTest,
                         ::testing::Range(0, 30));

}  // namespace
}  // namespace provabs
