// Randomized incremental-vs-full differential for the delta-aware update
// path (ISSUE 10). Across 30 seeds, every OptimalRecompress that accepts a
// patch must be FIELD-EQUAL to a cold full DP over the grown set — same
// loss, same adequacy, same chosen cut — and the compressed sets the two
// results produce must serialize BYTE-identically. Where the patch is
// declined (delta log truncated, append crossing the cut, headroom
// exhausted, ...) the full DP is authoritative and the differential is
// trivially satisfied; the deterministic tests below pin down that the
// accept and decline paths are both actually exercised.
//
// The add-then-evaluate arm covers the other cache that appends must
// invalidate: the compiled evaluation form (and through it the jit code
// cache, which keys emitted modules on the compiled fingerprint). After an
// Add, EvaluateAll must route through a NEW fingerprint and reproduce the
// naive per-polynomial reference bitwise — a stale module would mis-index.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "algo/optimal_single_tree.h"
#include "common/random.h"
#include "core/compiled_polynomial_set.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Naive per-polynomial reference defining the canonical summation order.
std::vector<double> NaiveEvaluateAll(const Valuation& val,
                                     const PolynomialSet& polys) {
  std::vector<double> out;
  out.reserve(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    out.push_back(val.Evaluate(p));
  }
  return out;
}

std::vector<NodeRef> SortedNodes(const ValidVariableSet& vvs) {
  std::vector<NodeRef> nodes = vvs.nodes();
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

/// Attempts the patch, runs the cold DP, and cross-checks. Returns the
/// result to chain the next stage from (the patched one when it was
/// accepted, so later stages patch on top of patches), and reports whether
/// the patch path answered via `patched_out`.
CompressionResult RecompressAndCompare(const PolynomialSet& polys,
                                       const AbstractionForest& forest,
                                       const VariableTable& vars,
                                       const CompressionResult& prev,
                                       uint64_t from_revision, size_t bound,
                                       bool* patched_out) {
  *patched_out = false;
  PolynomialSetDelta delta = polys.DeltaSince(from_revision);
  RecompressFallback fallback = RecompressFallback::kNone;
  auto patched =
      OptimalRecompress(polys, forest, prev, delta, bound, &fallback);
  auto full = OptimalSingleTree(polys, forest, 0, bound);
  if (patched.status().code() == StatusCode::kInfeasible) {
    // Authoritative infeasibility: the full DP must agree exactly.
    EXPECT_EQ(full.status().code(), StatusCode::kInfeasible);
    CompressionResult roots;
    roots.vvs = ValidVariableSet::AllRoots(forest);
    return roots;
  }
  if (!patched.ok()) {
    // Declined: a fallback reason must have been reported and the caller's
    // full run stands — which may itself be infeasible (the bound stays
    // fixed while the set grows), matching what a fresh request would see.
    EXPECT_EQ(patched.status().code(), StatusCode::kFailedPrecondition)
        << patched.status().ToString();
    EXPECT_NE(fallback, RecompressFallback::kNone);
    if (!full.ok()) {
      EXPECT_EQ(full.status().code(), StatusCode::kInfeasible)
          << full.status().ToString();
      CompressionResult roots;
      roots.vvs = ValidVariableSet::AllRoots(forest);
      return roots;
    }
    return std::move(*full);
  }
  // An accepted patch while the full DP is infeasible would be a real
  // divergence: the patch contract is to return kInfeasible exactly when
  // the full DP would.
  EXPECT_TRUE(full.ok()) << full.status().ToString();
  if (!full.ok()) return CompressionResult{};
  *patched_out = true;
  EXPECT_EQ(fallback, RecompressFallback::kNone);

  // Field equality against the cold run.
  EXPECT_EQ(patched->loss.monomial_loss, full->loss.monomial_loss);
  EXPECT_EQ(patched->loss.variable_loss, full->loss.variable_loss);
  EXPECT_EQ(patched->adequate, full->adequate);
  EXPECT_FALSE(patched->budget_exhausted);
  EXPECT_EQ(SortedNodes(patched->vvs), SortedNodes(full->vvs));

  // Byte identity of the compressed artifacts the two results produce.
  std::string patched_bytes =
      SerializePolynomialSet(patched->Apply(forest, polys), vars);
  std::string full_bytes =
      SerializePolynomialSet(full->Apply(forest, polys), vars);
  EXPECT_EQ(patched_bytes, full_bytes);
  return std::move(*patched);
}

/// Tree compatibility allows at most one variable OF THE TREE per
/// monomial; off-tree variables may ride along freely.
Polynomial RandomPolynomial(Rng& rng, const std::vector<VariableId>& leaves,
                            const std::vector<VariableId>& externals,
                            size_t max_monomials) {
  std::vector<Monomial> terms;
  const size_t m = 1 + rng.Uniform(max_monomials);
  for (size_t i = 0; i < m; ++i) {
    std::vector<Factor> f;
    f.push_back({leaves[rng.Uniform(leaves.size())], 1});
    if (!externals.empty() && rng.Bernoulli(0.4)) {
      f.push_back({externals[rng.Uniform(externals.size())], 1});
    }
    terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
  }
  return Polynomial::FromMonomials(std::move(terms));
}

class IncrementalDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalDifferentialTest, PatchedEqualsFullAcrossUpdateShapes) {
  Rng rng(61000 + GetParam());
  VariableTable vars;

  const size_t num_leaves = 8 + rng.Uniform(9);
  std::vector<VariableId> leaves;
  for (size_t i = 0; i < num_leaves; ++i) {
    leaves.push_back(vars.Intern("inc" + std::to_string(GetParam()) + "_" +
                                 std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves,
                                  rng.Bernoulli(0.5)
                                      ? std::vector<uint32_t>{2, 2}
                                      : std::vector<uint32_t>{3},
                                  "IT" + std::to_string(GetParam()) + "_"));
  ASSERT_TRUE(forest.Validate().ok());

  std::vector<VariableId> externals;
  for (int i = 0; i < 2; ++i) {
    externals.push_back(vars.Intern("ext" + std::to_string(GetParam()) +
                                    "_" + std::to_string(i)));
  }

  PolynomialSet polys;
  const size_t num_polys = 4 + rng.Uniform(4);
  for (size_t p = 0; p < num_polys; ++p) {
    polys.Add(RandomPolynomial(rng, leaves, externals, 8));
  }
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  // Find a feasible bound (bound >= |P|_M always is: the all-leaves cut
  // loses nothing). Half the seeds compress hard (tight bound, more
  // frontier crossings), half stay loose (small k, more accepted patches).
  size_t bound = rng.Bernoulli(0.5)
                     ? 1 + polys.SizeM() / 2
                     : (polys.SizeM() > 8 ? polys.SizeM() - 4
                                          : polys.SizeM());
  auto base = OptimalSingleTree(polys, forest, 0, bound);
  while (!base.ok() &&
         base.status().code() == StatusCode::kInfeasible) {
    bound += 1 + bound / 2;
    base = OptimalSingleTree(polys, forest, 0, bound);
  }
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_NE(base->dp_state, nullptr);
  CompressionResult current = std::move(*base);

  // Stage 1: a single localized add.
  uint64_t rev = polys.revision();
  polys.Add(RandomPolynomial(rng, leaves, externals, 3));
  bool patched = false;
  current = RecompressAndCompare(polys, forest, vars, current, rev, bound,
                                 &patched);

  // Stage 2: a batched add (several polynomials in one delta span).
  rev = polys.revision();
  const size_t batch = 2 + rng.Uniform(3);
  for (size_t i = 0; i < batch; ++i) {
    polys.Add(RandomPolynomial(rng, leaves, externals, 3));
  }
  current = RecompressAndCompare(polys, forest, vars, current, rev, bound,
                                 &patched);

  // Stage 3: an add aimed at the abstracted interior when one exists
  // (crossing the cut frontier — the patch must decline, the full DP
  // stands; RecompressAndCompare asserts both).
  if (current.dp_state != nullptr) {
    const AbstractionTree& tree = forest.tree(0);
    VariableId inner = kInvalidVariable;
    for (const NodeRef& ref : current.vvs.nodes()) {
      const auto& node = tree.node(ref.node);
      if (!node.is_leaf()) {
        inner = tree.node(tree.leaves()[node.leaf_begin]).label;
        break;
      }
    }
    if (inner != kInvalidVariable) {
      rev = polys.revision();
      polys.Add(Polynomial::FromMonomials(
          {Monomial(rng.UniformReal(0.5, 9.5), {{inner, 1}})}));
      current = RecompressAndCompare(polys, forest, vars, current, rev,
                                     bound, &patched);
    }
  }

  // Stage 4: add-then-evaluate. The compiled form (and the jit module
  // keyed on its fingerprint) must be invalidated by the appends: a fresh
  // fingerprint, and registry evaluation bitwise-equal to the naive
  // reference on the grown set.
  Valuation val;
  for (VariableId v : leaves) val.Set(v, rng.UniformReal(0.1, 2.0));
  uint64_t fp_before = polys.Compiled()->fingerprint();
  std::vector<double> warm = val.EvaluateAll(polys);
  std::vector<double> ref = NaiveEvaluateAll(val, polys);
  ASSERT_EQ(warm.size(), ref.size());
  for (size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(Bits(warm[i]), Bits(ref[i])) << "polynomial " << i;
  }
  polys.Add(RandomPolynomial(rng, leaves, externals, 3));
  EXPECT_NE(polys.Compiled()->fingerprint(), fp_before);
  std::vector<double> after = val.EvaluateAll(polys);
  std::vector<double> ref_after = NaiveEvaluateAll(val, polys);
  ASSERT_EQ(after.size(), ref_after.size());
  for (size_t i = 0; i < ref_after.size(); ++i) {
    EXPECT_EQ(Bits(after[i]), Bits(ref_after[i])) << "polynomial " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalDifferentialTest,
                         ::testing::Range(0, 30));

// ------------------------------------------------ deterministic anchors

/// A shape where the patch MUST be accepted: the appended polynomial only
/// touches a leaf the cut kept, so no chosen interior is crossed and the
/// default retain_headroom easily covers the growth.
TEST(IncrementalDeterministicTest, LocalizedAddTakesThePatchPath) {
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(vars.Intern("det" + std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {4, 2}, "DET_"));

  // Every polynomial mentions all eight leaves once, so grouping ONE mid
  // node saves one monomial per polynomial — enough for a bound that only
  // needs a few: the optimal cut abstracts a single pair and keeps the
  // other six leaves chosen as themselves.
  PolynomialSet polys;
  for (int p = 0; p < 6; ++p) {
    std::vector<Monomial> terms;
    for (int m = 0; m < 8; ++m) {
      terms.emplace_back(1.0 + p + 0.25 * m,
                         std::vector<Factor>{{leaves[m], 1}});
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  const size_t bound = polys.SizeM() - 4;
  auto base = OptimalSingleTree(polys, forest, 0, bound);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_NE(base->dp_state, nullptr);

  // Find a leaf the cut kept and append there.
  const AbstractionTree& tree = forest.tree(0);
  VariableId kept = kInvalidVariable;
  for (const NodeRef& ref : base->vvs.nodes()) {
    if (tree.node(ref.node).is_leaf()) {
      kept = tree.node(ref.node).label;
      break;
    }
  }
  ASSERT_NE(kept, kInvalidVariable) << "bound chosen too tight for anchor";

  uint64_t rev = polys.revision();
  polys.Add(Polynomial::FromMonomials({Monomial(2.5, {{kept, 1}})}));
  bool patched = false;
  RecompressAndCompare(polys, forest, vars, *base, rev, bound, &patched);
  EXPECT_TRUE(patched) << "localized add must take the patch path";
}

/// A shape where the patch MUST decline with kCrossesCut: the append lands
/// strictly below a chosen internal node.
TEST(IncrementalDeterministicTest, CrossingAddReportsCrossesCut) {
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(vars.Intern("crx" + std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {4, 2}, "CRX_"));

  PolynomialSet polys;
  for (int p = 0; p < 6; ++p) {
    std::vector<Monomial> terms;
    for (int m = 0; m < 6; ++m) {
      terms.emplace_back(1.0 + m,
                         std::vector<Factor>{{leaves[(p + m) % 8], 1}});
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  const size_t bound = 1 + polys.SizeM() / 2;
  auto base = OptimalSingleTree(polys, forest, 0, bound);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_NE(base->dp_state, nullptr);

  const AbstractionTree& tree = forest.tree(0);
  VariableId inner = kInvalidVariable;
  for (const NodeRef& ref : base->vvs.nodes()) {
    const auto& node = tree.node(ref.node);
    if (!node.is_leaf()) {
      inner = tree.node(tree.leaves()[node.leaf_begin]).label;
      break;
    }
  }
  ASSERT_NE(inner, kInvalidVariable)
      << "halving bound must abstract some interior";

  uint64_t rev = polys.revision();
  polys.Add(Polynomial::FromMonomials({Monomial(2.0, {{inner, 1}})}));
  PolynomialSetDelta delta = polys.DeltaSince(rev);
  RecompressFallback fallback = RecompressFallback::kNone;
  auto patched =
      OptimalRecompress(polys, forest, *base, delta, bound, &fallback);
  EXPECT_FALSE(patched.ok());
  EXPECT_EQ(fallback, RecompressFallback::kCrossesCut);
  EXPECT_STREQ(RecompressFallbackName(fallback), "crosses_cut");
}

/// Exhausting the delta log must decline with kDeltaIncomplete instead of
/// patching against a hole.
TEST(IncrementalDeterministicTest, TruncatedDeltaLogDeclines) {
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 4; ++i) {
    leaves.push_back(vars.Intern("trn" + std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {2}, "TRN_"));

  PolynomialSet polys;
  for (int p = 0; p < 4; ++p) {
    polys.Add(Polynomial::FromMonomials(
        {Monomial(1.0 + p, {{leaves[p % 4], 1}})}));
  }
  auto base = OptimalSingleTree(polys, forest, 0, polys.SizeM());
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_NE(base->dp_state, nullptr);

  uint64_t rev = polys.revision();
  for (size_t i = 0; i < PolynomialSet::kDeltaLogCapacity + 4; ++i) {
    polys.Add(Polynomial::FromMonomials(
        {Monomial(1.0, {{leaves[i % 4], 1}})}));
  }
  PolynomialSetDelta delta = polys.DeltaSince(rev);
  EXPECT_FALSE(delta.complete);
  RecompressFallback fallback = RecompressFallback::kNone;
  auto patched = OptimalRecompress(polys, forest, *base, delta,
                                   polys.SizeM(), &fallback);
  EXPECT_FALSE(patched.ok());
  // The stale bound gate may fire first (|P|_M grew, the bound argument
  // here differs from the retained one) — accept either decline, never a
  // patch.
  EXPECT_NE(fallback, RecompressFallback::kNone);
}

}  // namespace
}  // namespace provabs
