#include "abstraction/loss.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/polynomial.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Generates a random polynomial set over `tree_leaves` (one per monomial)
/// crossed with `other_vars` (0..2 extra factors), so the tree is always
/// compatible.
PolynomialSet RandomCompatiblePolys(Rng& rng,
                                    const std::vector<VariableId>& tree_leaves,
                                    const std::vector<VariableId>& other_vars,
                                    size_t num_polys, size_t monomials_each) {
  PolynomialSet polys;
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    for (size_t m = 0; m < monomials_each; ++m) {
      std::vector<Factor> f;
      if (!tree_leaves.empty() && rng.Bernoulli(0.9)) {
        f.push_back({tree_leaves[rng.Uniform(tree_leaves.size())], 1});
      }
      if (!other_vars.empty() && rng.Bernoulli(0.8)) {
        f.push_back({other_vars[rng.Uniform(other_vars.size())], 1});
      }
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  return polys;
}

class LossTest : public ::testing::Test {
 protected:
  VariableTable vars_;
};

TEST_F(LossTest, NaiveLossOnIdentityCutIsZero) {
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars_));
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}}),
       Monomial(1.0, {{vars_.Find("b2"), 1}})}));
  LossReport r = ComputeLossNaive(polys, forest,
                                  ValidVariableSet::AllLeaves(forest));
  EXPECT_EQ(r.monomial_loss, 0u);
  EXPECT_EQ(r.variable_loss, 0u);
}

TEST_F(LossTest, ResidualIndexSingleLeafNodeHasNoLoss) {
  AbstractionTree tree = MakeFigure2PlansTree(vars_);
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}})}));
  LeafResidualIndex index(polys, tree);
  NodeIndex b1 = tree.FindLabel(vars_.Find("b1"));
  LossReport r = index.NodeLoss(b1);
  EXPECT_EQ(r.monomial_loss, 0u);
  EXPECT_EQ(r.variable_loss, 0u);
}

TEST_F(LossTest, ResidualIndexMatchesExample13SB) {
  // From Example 13: abstracting SB (over b1, b2) merges two monomial pairs
  // of P2 (ML = 2) and loses one variable (VL = 1).
  AbstractionTree tree = MakeFigure2PlansTree(vars_);
  VariableId m1 = vars_.Intern("m1");
  VariableId m3 = vars_.Intern("m3");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({
      Monomial(77.9, {{vars_.Find("b1"), 1}, {m1, 1}}),
      Monomial(80.5, {{vars_.Find("b1"), 1}, {m3, 1}}),
      Monomial(52.2, {{vars_.Find("e"), 1}, {m1, 1}}),
      Monomial(56.5, {{vars_.Find("e"), 1}, {m3, 1}}),
      Monomial(69.7, {{vars_.Find("b2"), 1}, {m1, 1}}),
      Monomial(100.65, {{vars_.Find("b2"), 1}, {m3, 1}}),
  }));
  LeafResidualIndex index(polys, tree);
  NodeIndex sb = tree.FindLabel(vars_.Find("SB"));
  LossReport r = index.NodeLoss(sb);
  EXPECT_EQ(r.monomial_loss, 2u);
  EXPECT_EQ(r.variable_loss, 1u);
}

TEST_F(LossTest, ResidualIndexDoesNotMergeAcrossPolynomials) {
  // b1·m1 in polynomial 1 and b2·m1 in polynomial 2 must NOT merge when
  // grouping SB: monomials of different polynomials are distinct.
  AbstractionTree tree = MakeFigure2PlansTree(vars_);
  VariableId m1 = vars_.Intern("m1");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}, {m1, 1}})}));
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b2"), 1}, {m1, 1}})}));
  LeafResidualIndex index(polys, tree);
  NodeIndex sb = tree.FindLabel(vars_.Find("SB"));
  LossReport r = index.NodeLoss(sb);
  EXPECT_EQ(r.monomial_loss, 0u);
  EXPECT_EQ(r.variable_loss, 1u);
}

TEST_F(LossTest, ResidualIndexRespectsExponents) {
  // b1²·m1 and b2·m1 do not merge under SB (SB² vs SB).
  AbstractionTree tree = MakeFigure2PlansTree(vars_);
  VariableId m1 = vars_.Intern("m1");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 2}, {m1, 1}}),
       Monomial(1.0, {{vars_.Find("b2"), 1}, {m1, 1}})}));
  LeafResidualIndex index(polys, tree);
  NodeIndex sb = tree.FindLabel(vars_.Find("SB"));
  EXPECT_EQ(index.NodeLoss(sb).monomial_loss, 0u);
}

TEST_F(LossTest, ResidualIndexAbsentLeavesAreInactive) {
  AbstractionTree tree = MakeFigure2PlansTree(vars_);
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("f1"), 1}})}));
  LeafResidualIndex index(polys, tree);
  NodeIndex f = tree.FindLabel(vars_.Find("F"));
  // Only f1 occurs: grouping F = {f1, f2} has no present pair to merge.
  LossReport r = index.NodeLoss(f);
  EXPECT_EQ(r.monomial_loss, 0u);
  EXPECT_EQ(r.variable_loss, 0u);
  EXPECT_EQ(index.PresentLeavesBelow(f), 1u);
}

// Regression: residual hashing must be insensitive to where the tree
// variable sorts among the other factors. With interleaved ids (a < m1 <
// b, as TPC-H's alternating s/p interning produces), a·m1 has the tree
// variable first and b·m1 has it last; both monomials must still merge
// under the AB group. The original positional hash missed this.
TEST_F(LossTest, ResidualIndexHandlesInterleavedVariableIds) {
  VariableTable vars;
  VariableId a = vars.Intern("a");       // id 0 — tree leaf
  VariableId m1 = vars.Intern("mm");     // id 1 — non-tree factor
  VariableId b = vars.Intern("b");       // id 2 — tree leaf
  AbstractionTreeBuilder builder(vars);
  NodeIndex root = builder.AddRoot("AB");
  builder.AddChild(root, "a");
  builder.AddChild(root, "b");
  AbstractionTree tree = std::move(builder).Build();

  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{a, 1}, {m1, 1}}), Monomial(2.0, {{b, 1}, {m1, 1}})}));
  LeafResidualIndex index(polys, tree);
  LossReport r = index.NodeLoss(tree.root());
  EXPECT_EQ(r.monomial_loss, 1u);  // a·m1 and b·m1 merge into AB·m1.
  EXPECT_EQ(r.variable_loss, 1u);

  // And the exponent must still distinguish: a²·m1 vs b·m1 do not merge.
  PolynomialSet polys2;
  polys2.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{a, 2}, {m1, 1}}), Monomial(2.0, {{b, 1}, {m1, 1}})}));
  LeafResidualIndex index2(polys2, tree);
  EXPECT_EQ(index2.NodeLoss(tree.root()).monomial_loss, 0u);
}

// Property: for every internal node v of random trees over random
// polynomials, the residual-index NodeLoss equals the loss of the naive
// singleton-cut computation {v} ∪ other-leaves.
class LossPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LossPropertyTest, ResidualIndexAgreesWithNaive) {
  Rng rng(1000 + GetParam());
  VariableTable vars;

  // Intern the non-tree variables in the middle of the leaves so ids
  // interleave (regression coverage for the residual-hash ordering bug).
  std::vector<VariableId> leaves;
  std::vector<VariableId> others;
  const size_t num_leaves = 8 + rng.Uniform(12);
  for (size_t i = 0; i < num_leaves; ++i) {
    leaves.push_back(
        vars.Intern("L" + std::to_string(GetParam()) + "_" +
                    std::to_string(i)));
    if (i == num_leaves / 2) {
      others.push_back(vars.Intern("o1"));
      others.push_back(vars.Intern("o2"));
    }
  }

  const std::vector<std::vector<uint32_t>> shapes = {{2}, {3}, {2, 2}, {2, 3}};
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(
      vars, leaves, shapes[rng.Uniform(shapes.size())],
      "T" + std::to_string(GetParam()) + "_"));
  ASSERT_TRUE(forest.Validate().ok());

  PolynomialSet polys =
      RandomCompatiblePolys(rng, leaves, others, 1 + rng.Uniform(4), 30);
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  const AbstractionTree& tree = forest.tree(0);
  LeafResidualIndex index(polys, tree);
  for (NodeIndex v = 0; v < tree.node_count(); ++v) {
    if (tree.node(v).is_leaf()) continue;
    // Naive: cut = {v} plus every leaf outside v's subtree.
    ValidVariableSet vvs;
    vvs.Add(NodeRef{0, v});
    const auto& node = tree.node(v);
    for (uint32_t i = 0; i < tree.leaves().size(); ++i) {
      if (i >= node.leaf_begin && i < node.leaf_end) continue;
      vvs.Add(NodeRef{0, tree.leaves()[i]});
    }
    ASSERT_TRUE(vvs.Validate(forest).ok());
    LossReport naive = ComputeLossNaive(polys, forest, vvs);
    LossReport indexed = index.NodeLoss(v);
    EXPECT_EQ(indexed.monomial_loss, naive.monomial_loss) << "node " << v;
    EXPECT_EQ(indexed.variable_loss, naive.variable_loss) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, LossPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace provabs
