// Byte-exact encoding tests for the evaluation JIT's x86-64 encoder
// (jit/x86_encoder.h). The encoder's whole value is that its output is
// predictable enough to pin: every instruction form the code generator
// emits is asserted here against hand-assembled bytes (cross-checked with
// a reference assembler), so any encoding regression fails loudly at the
// byte level instead of as a mysterious wrong-bits or crash downstream.
// Displacement-form selection (none / disp8 / disp32, including the rbp
// special case) gets explicit coverage because it is the one place the
// encoder makes a choice.

#include "jit/x86_encoder.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace provabs {
namespace jit {
namespace {

using Bytes = std::vector<uint8_t>;

TEST(X86EncoderTest, XorpdZero) {
  X86Encoder e;
  e.XorpdZero(Xmm::xmm0);
  e.XorpdZero(Xmm::xmm3);
  e.XorpdZero(Xmm::xmm7);
  // 66 0F 57 /r with mod=11 and reg==rm: C0, DB, FF.
  EXPECT_EQ(e.code(), (Bytes{0x66, 0x0F, 0x57, 0xC0,    //
                             0x66, 0x0F, 0x57, 0xDB,    //
                             0x66, 0x0F, 0x57, 0xFF}));
}

TEST(X86EncoderTest, MovsdLoadDisplacementForms) {
  // Zero displacement: mod=00, no disp bytes.
  {
    X86Encoder e;
    e.MovsdLoad(Xmm::xmm1, Gp64::rdi, 0);
    EXPECT_EQ(e.code(), (Bytes{0xF2, 0x0F, 0x10, 0x0F}));
  }
  // disp8 range: mod=01 + one byte, positive and negative.
  {
    X86Encoder e;
    e.MovsdLoad(Xmm::xmm0, Gp64::rdi, 8);
    e.MovsdLoad(Xmm::xmm0, Gp64::rdi, -8);
    e.MovsdLoad(Xmm::xmm0, Gp64::rdi, 127);
    EXPECT_EQ(e.code(), (Bytes{0xF2, 0x0F, 0x10, 0x47, 0x08,    //
                               0xF2, 0x0F, 0x10, 0x47, 0xF8,    //
                               0xF2, 0x0F, 0x10, 0x47, 0x7F}));
  }
  // Beyond disp8: mod=10 + four little-endian bytes.
  {
    X86Encoder e;
    e.MovsdLoad(Xmm::xmm2, Gp64::rsi, 0x100);
    e.MovsdLoad(Xmm::xmm0, Gp64::rdi, 128);
    EXPECT_EQ(e.code(),
              (Bytes{0xF2, 0x0F, 0x10, 0x96, 0x00, 0x01, 0x00, 0x00,    //
                     0xF2, 0x0F, 0x10, 0x87, 0x80, 0x00, 0x00, 0x00}));
  }
  // rbp as base: mod=00 rm=101 would mean RIP-relative, so a zero
  // displacement must be forced into the disp8 form.
  {
    X86Encoder e;
    e.MovsdLoad(Xmm::xmm0, Gp64::rbp, 0);
    EXPECT_EQ(e.code(), (Bytes{0xF2, 0x0F, 0x10, 0x45, 0x00}));
  }
}

TEST(X86EncoderTest, MovsdStore) {
  X86Encoder e;
  e.MovsdStore(Gp64::rdi, 16, Xmm::xmm4);
  e.MovsdStore(Gp64::rsi, 0, Xmm::xmm0);
  EXPECT_EQ(e.code(), (Bytes{0xF2, 0x0F, 0x11, 0x67, 0x10,    //
                             0xF2, 0x0F, 0x11, 0x06}));
}

TEST(X86EncoderTest, MulsdAddsdRegisterForms) {
  X86Encoder e;
  e.Mulsd(Xmm::xmm1, Xmm::xmm2);
  e.Addsd(Xmm::xmm0, Xmm::xmm1);
  e.Mulsd(Xmm::xmm7, Xmm::xmm0);
  EXPECT_EQ(e.code(), (Bytes{0xF2, 0x0F, 0x59, 0xCA,    //
                             0xF2, 0x0F, 0x58, 0xC1,    //
                             0xF2, 0x0F, 0x59, 0xF8}));
}

TEST(X86EncoderTest, CoefficientMaterialization) {
  // mov rax, imm64 embeds the coefficient's IEEE-754 bits little-endian;
  // movq xmm, rax needs the REX.W 66 48 0F 6E form.
  X86Encoder e;
  e.MovRaxImm64(0x3FF0000000000000u);  // 1.0
  e.MovqFromRax(Xmm::xmm1);
  EXPECT_EQ(e.code(), (Bytes{0x48, 0xB8, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                             0xF0, 0x3F,    //
                             0x66, 0x48, 0x0F, 0x6E, 0xC8}));
}

TEST(X86EncoderTest, RetAndBufferHandoff) {
  X86Encoder e;
  e.Ret();
  EXPECT_EQ(e.code(), Bytes{0xC3});
  EXPECT_EQ(e.size(), 1u);
  Bytes taken = e.TakeCode();
  EXPECT_EQ(taken, Bytes{0xC3});
  EXPECT_EQ(e.size(), 0u);
}

TEST(X86EncoderTest, CanonicalMonomialSequence) {
  // The exact shape the code generator emits for one monomial
  // `2.5 * x^2` (x in slot 3) accumulating into xmm0 — pinned end-to-end
  // so generator and encoder cannot drift apart silently.
  X86Encoder e;
  e.MovRaxImm64(0x4004000000000000u);        // term = 2.5
  e.MovqFromRax(Xmm::xmm1);
  e.MovsdLoad(Xmm::xmm2, Gp64::rdi, 3 * 8);  // factor = slots[3]
  e.Mulsd(Xmm::xmm1, Xmm::xmm2);             // term *= factor (exp 1 of 2)
  e.Mulsd(Xmm::xmm1, Xmm::xmm2);             // term *= factor (exp 2 of 2)
  e.Addsd(Xmm::xmm0, Xmm::xmm1);             // total += term
  EXPECT_EQ(e.code(),
            (Bytes{0x48, 0xB8, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04,
                   0x40,                            // mov rax, 2.5
                   0x66, 0x48, 0x0F, 0x6E, 0xC8,    // movq xmm1, rax
                   0xF2, 0x0F, 0x10, 0x57, 0x18,    // movsd xmm2, [rdi+24]
                   0xF2, 0x0F, 0x59, 0xCA,          // mulsd xmm1, xmm2
                   0xF2, 0x0F, 0x59, 0xCA,          // mulsd xmm1, xmm2
                   0xF2, 0x0F, 0x58, 0xC1}));       // addsd xmm0, xmm1
}

}  // namespace
}  // namespace jit
}  // namespace provabs
