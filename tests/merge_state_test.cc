#include "algo/merge_state.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "core/polynomial.h"
#include "core/variable.h"

namespace provabs {
namespace {

class MergeStateTest : public ::testing::Test {
 protected:
  VariableTable vars_;
  VariableId a_ = vars_.Intern("a");
  VariableId b_ = vars_.Intern("b");
  VariableId c_ = vars_.Intern("c");
  VariableId m_ = vars_.Intern("m");
  VariableId g_ = vars_.Intern("G");  // merge target (meta-variable)
};

TEST_F(MergeStateTest, InitialStateMatchesInput) {
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}, {m_, 1}}),
                                       Monomial(2.0, {{b_, 1}, {m_, 1}})}));
  MergeState state(polys);
  EXPECT_EQ(state.CurrentSizeM(), 2u);
  EXPECT_EQ(state.MonomialLoss(), 0u);
  EXPECT_EQ(state.VariableLoss(), 0u);
  EXPECT_TRUE(state.IsActive(a_));
  EXPECT_FALSE(state.IsActive(c_));
  EXPECT_EQ(state.OccurrenceCount(m_), 2u);
}

TEST_F(MergeStateTest, EvaluateGainWithoutApplying) {
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}, {m_, 1}}),
                                       Monomial(2.0, {{b_, 1}, {m_, 1}})}));
  MergeState state(polys);
  EXPECT_EQ(state.EvaluateMergeGain({a_, b_}), 1u);
  // Not applied: state unchanged.
  EXPECT_EQ(state.CurrentSizeM(), 2u);
}

TEST_F(MergeStateTest, ApplyMergeMergesMonomials) {
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}, {m_, 1}}),
                                       Monomial(2.0, {{b_, 1}, {m_, 1}}),
                                       Monomial(3.0, {{c_, 1}, {m_, 1}})}));
  MergeState state(polys);
  EXPECT_EQ(state.ApplyMerge({a_, b_}, g_), 2u);
  EXPECT_EQ(state.CurrentSizeM(), 2u);
  EXPECT_EQ(state.MonomialLoss(), 1u);
  EXPECT_EQ(state.VariableLoss(), 1u);
  EXPECT_FALSE(state.IsActive(a_));
  EXPECT_TRUE(state.IsActive(g_));
  EXPECT_EQ(state.OccurrenceCount(g_), 2u);
}

TEST_F(MergeStateTest, MergesDoNotCrossPolynomials) {
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}, {m_, 1}})}));
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{b_, 1}, {m_, 1}})}));
  MergeState state(polys);
  EXPECT_EQ(state.EvaluateMergeGain({a_, b_}), 0u);
  state.ApplyMerge({a_, b_}, g_);
  EXPECT_EQ(state.CurrentSizeM(), 2u);
}

TEST_F(MergeStateTest, ChainedMergesRenameTarget) {
  // Merge {a, b} -> G, then {G} ∪ {c} -> G2: occurrences must follow.
  VariableId g2 = vars_.Intern("G2");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}, {m_, 1}}),
                                       Monomial(2.0, {{b_, 1}, {m_, 1}}),
                                       Monomial(3.0, {{c_, 1}, {m_, 1}})}));
  MergeState state(polys);
  state.ApplyMerge({a_, b_}, g_);
  EXPECT_EQ(state.EvaluateMergeGain({g_, c_}), 1u);
  state.ApplyMerge({g_, c_}, g2);
  EXPECT_EQ(state.CurrentSizeM(), 1u);
  EXPECT_EQ(state.MonomialLoss(), 2u);
  EXPECT_EQ(state.VariableLoss(), 2u);
  EXPECT_EQ(state.OccurrenceCount(g2), 3u);
}

TEST_F(MergeStateTest, MergeToListedTargetKeepsIdentity) {
  // Merging {a, b} into a (parent label == a leaf label is not typical for
  // trees but the state must handle renaming-to-self).
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}, {m_, 1}}),
                                       Monomial(2.0, {{b_, 1}, {m_, 1}})}));
  MergeState state(polys);
  state.ApplyMerge({a_, b_}, a_);
  EXPECT_EQ(state.CurrentSizeM(), 1u);
  EXPECT_EQ(state.VariableLoss(), 1u);
  EXPECT_TRUE(state.IsActive(a_));
  EXPECT_FALSE(state.IsActive(b_));
}

TEST_F(MergeStateTest, InactiveVariablesIgnored) {
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 1}})}));
  MergeState state(polys);
  EXPECT_EQ(state.ApplyMerge({a_, c_}, g_), 1u);
  EXPECT_EQ(state.VariableLoss(), 0u);  // Only one active var merged.
  EXPECT_EQ(state.MonomialLoss(), 0u);
}

TEST_F(MergeStateTest, ExponentsPreservedThroughMerge) {
  // a²·m and b·m do not merge (G² vs G).
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{a_, 2}, {m_, 1}}),
                                       Monomial(1.0, {{b_, 1}, {m_, 1}})}));
  MergeState state(polys);
  EXPECT_EQ(state.EvaluateMergeGain({a_, b_}), 0u);
  state.ApplyMerge({a_, b_}, g_);
  EXPECT_EQ(state.CurrentSizeM(), 2u);
}

// Property: after any random sequence of merges, CurrentSizeM equals the
// from-scratch |P↓S|_M of the corresponding substitution.
class MergeStatePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MergeStatePropertyTest, IncrementalCountsMatchRecount) {
  Rng rng(5200 + GetParam());
  VariableTable vars;

  std::vector<VariableId> pool;
  for (int i = 0; i < 10; ++i) {
    pool.push_back(vars.Intern("v" + std::to_string(i)));
  }
  VariableId other = vars.Intern("o");

  PolynomialSet polys;
  for (size_t p = 0; p < 1 + rng.Uniform(3); ++p) {
    std::vector<Monomial> terms;
    for (int m = 0; m < 25; ++m) {
      std::vector<Factor> f;
      f.push_back({pool[rng.Uniform(pool.size())], 1});
      if (rng.Bernoulli(0.6)) f.push_back({other, 1});
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }

  MergeState state(polys);
  // Current substitution map for the recount.
  std::unordered_map<VariableId, VariableId> subst;
  std::vector<VariableId> live = pool;

  for (int step = 0; step < 4 && live.size() >= 2; ++step) {
    size_t i = rng.Uniform(live.size());
    size_t j = rng.Uniform(live.size() - 1);
    if (j >= i) ++j;
    VariableId target = vars.Intern("g" + std::to_string(GetParam()) + "_" +
                                    std::to_string(step));
    size_t gain_predicted = state.EvaluateMergeGain({live[i], live[j]});
    size_t before = state.CurrentSizeM();
    state.ApplyMerge({live[i], live[j]}, target);
    EXPECT_EQ(before - state.CurrentSizeM(), gain_predicted);

    for (VariableId orig : pool) {
      VariableId cur = subst.count(orig) ? subst[orig] : orig;
      if (cur == live[i] || cur == live[j]) subst[orig] = target;
    }
    VariableId vi = live[i];
    VariableId vj = live[j];
    live.erase(std::remove(live.begin(), live.end(), vi), live.end());
    live.erase(std::remove(live.begin(), live.end(), vj), live.end());
    live.push_back(target);

    PolynomialSet recount = polys.MapVariables([&](VariableId v) {
      auto it = subst.find(v);
      return it == subst.end() ? v : it->second;
    });
    EXPECT_EQ(state.CurrentSizeM(), recount.SizeM());
    EXPECT_EQ(state.VariableLoss(), polys.SizeV() - recount.SizeV());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MergeStatePropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace provabs
