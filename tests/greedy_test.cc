#include "algo/greedy_multi_tree.h"

#include <gtest/gtest.h>

#include <string>

#include "algo/brute_force.h"
#include "common/random.h"
#include "core/polynomial.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Example 15's setting: the polynomials {P1, P2} of Example 13 and the
/// two-tree forest {Plans (pruned), Year (pruned to m1, m3)}.
class Example15Test : public ::testing::Test {
 protected:
  void SetUp() override {
    m1_ = vars_.Intern("m1");
    m3_ = vars_.Intern("m3");
    // Build the full trees first so the plan variable names are interned
    // before MakePolys() looks them up.
    AbstractionTree plans = MakeFigure2PlansTree(vars_);
    AbstractionTree months = MakeFigure3MonthsTree(vars_, 12);
    polys_ = MakePolys();
    auto pruned_plans = plans.PruneToPolynomials(polys_);
    auto pruned_months = months.PruneToPolynomials(polys_);
    ASSERT_TRUE(pruned_plans.ok());
    ASSERT_TRUE(pruned_months.ok());
    forest_.AddTree(std::move(pruned_plans).value());
    forest_.AddTree(std::move(pruned_months).value());
    ASSERT_TRUE(forest_.Validate().ok());
    ASSERT_TRUE(forest_.CheckCompatible(polys_).ok());
  }

  PolynomialSet MakePolys() {
    auto v = [&](const char* n) { return vars_.Find(n); };
    PolynomialSet polys;
    polys.Add(Polynomial::FromMonomials({
        Monomial(208.8, {{v("p1"), 1}, {m1_, 1}}),
        Monomial(240.0, {{v("p1"), 1}, {m3_, 1}}),
        Monomial(127.4, {{v("f1"), 1}, {m1_, 1}}),
        Monomial(114.45, {{v("f1"), 1}, {m3_, 1}}),
        Monomial(75.9, {{v("y1"), 1}, {m1_, 1}}),
        Monomial(72.5, {{v("y1"), 1}, {m3_, 1}}),
        Monomial(42.0, {{v("v"), 1}, {m1_, 1}}),
        Monomial(24.2, {{v("v"), 1}, {m3_, 1}}),
    }));
    polys.Add(Polynomial::FromMonomials({
        Monomial(77.9, {{v("b1"), 1}, {m1_, 1}}),
        Monomial(80.5, {{v("b1"), 1}, {m3_, 1}}),
        Monomial(52.2, {{v("e"), 1}, {m1_, 1}}),
        Monomial(56.5, {{v("e"), 1}, {m3_, 1}}),
        Monomial(69.7, {{v("b2"), 1}, {m1_, 1}}),
        Monomial(100.65, {{v("b2"), 1}, {m3_, 1}}),
    }));
    return polys;
  }

  VariableTable vars_;
  VariableId m1_, m3_;
  PolynomialSet polys_;
  AbstractionForest forest_;
};

// Example 15: with B = 4 (k = 10) the greedy reaches ML = 11 with VL = 5
// while the optimum is ML = 10, VL = 4 — greedy is adequate but suboptimal.
TEST_F(Example15Test, PaperExampleBound4) {
  auto result = GreedyMultiTree(polys_, forest_, 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->adequate);
  EXPECT_GE(result->loss.monomial_loss, 10u);
  EXPECT_EQ(result->loss.monomial_loss, 11u);
  EXPECT_EQ(result->loss.variable_loss, 5u);
}

TEST_F(Example15Test, OptimumForBound4IsBetter) {
  // The paper notes {q1, Sp, SB, e, p1} is optimal with ML = 10, VL = 4.
  auto bf = BruteForce(polys_, forest_, 4);
  ASSERT_TRUE(bf.ok());
  EXPECT_EQ(bf->loss.monomial_loss, 10u);
  EXPECT_EQ(bf->loss.variable_loss, 4u);
}

TEST_F(Example15Test, GreedyFirstMergePrefersMonthQuarter) {
  // Example 15: SB and q1 tie on VL = 1, but q1's monomial gain (7) beats
  // SB's (2); with the ML tie-break the month merge goes first and a B
  // reachable by that single merge keeps all plan variables intact.
  auto result = GreedyMultiTree(polys_, forest_, 7);  // k = 7 = ML(q1)
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adequate);
  EXPECT_EQ(result->loss.monomial_loss, 7u);
  EXPECT_EQ(result->loss.variable_loss, 1u);
  PolynomialSet abstracted = result->vvs.Apply(forest_, polys_);
  EXPECT_TRUE(abstracted.Variables().count(vars_.Find("b1")) > 0);
  EXPECT_FALSE(abstracted.Variables().count(m1_) > 0);
}

TEST_F(Example15Test, ResultIsValidCut) {
  auto result = GreedyMultiTree(polys_, forest_, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
}

TEST_F(Example15Test, TrivialBoundLosesNothing) {
  auto result = GreedyMultiTree(polys_, forest_, polys_.SizeM());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->loss.monomial_loss, 0u);
  EXPECT_EQ(result->loss.variable_loss, 0u);
}

TEST_F(Example15Test, UnreachableBoundReturnsBestEffort) {
  // Even full abstraction leaves 2 monomials (Plans·Year per polynomial);
  // B = 1 is unreachable; the greedy returns the all-roots VVS.
  auto result = GreedyMultiTree(polys_, forest_, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->adequate);
  EXPECT_EQ(result->vvs.size(), 2u);  // Both roots.
}

TEST_F(Example15Test, MaximalCompressionSizes) {
  auto result = GreedyMultiTree(polys_, forest_, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adequate);
  PolynomialSet abstracted = result->vvs.Apply(forest_, polys_);
  EXPECT_EQ(abstracted.SizeM(), 2u);
  EXPECT_EQ(abstracted.SizeV(), 2u);
}

TEST_F(Example15Test, RejectsZeroBound) {
  auto result = GreedyMultiTree(polys_, forest_, 0);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// Properties of the greedy on random multi-tree instances:
//  - the result is always a valid cut;
//  - it is adequate whenever the bound is reachable at all;
//  - its variable loss is never better than the brute-force optimum.
class GreedyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GreedyPropertyTest, SoundOnRandomForests) {
  Rng rng(9100 + GetParam());
  VariableTable vars;

  const size_t num_trees = 2 + rng.Uniform(2);
  AbstractionForest forest;
  std::vector<std::vector<VariableId>> tree_leaves(num_trees);
  for (size_t t = 0; t < num_trees; ++t) {
    const size_t n = 4 + rng.Uniform(5);
    for (size_t i = 0; i < n; ++i) {
      tree_leaves[t].push_back(vars.Intern(
          "t" + std::to_string(t) + "v" + std::to_string(i)));
    }
    forest.AddTree(BuildUniformTree(vars, tree_leaves[t], {2},
                                    "T" + std::to_string(t) + "_"));
  }
  ASSERT_TRUE(forest.Validate().ok());

  PolynomialSet polys;
  const size_t num_polys = 1 + rng.Uniform(3);
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = 8 + rng.Uniform(12);
    for (size_t m = 0; m < n_terms; ++m) {
      std::vector<Factor> f;
      for (size_t t = 0; t < num_trees; ++t) {
        if (rng.Bernoulli(0.8)) {
          f.push_back(
              {tree_leaves[t][rng.Uniform(tree_leaves[t].size())], 1});
        }
      }
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());

  // Maximal achievable compression = all-roots cut.
  LossReport max_loss = ComputeLossNaive(polys, forest,
                                         ValidVariableSet::AllRoots(forest));

  for (size_t b = 1; b <= polys.SizeM(); b += 1 + rng.Uniform(4)) {
    auto greedy = GreedyMultiTree(polys, forest, b);
    ASSERT_TRUE(greedy.ok());
    EXPECT_TRUE(greedy->vvs.Validate(forest).ok()) << "bound " << b;

    const size_t k = b >= polys.SizeM() ? 0 : polys.SizeM() - b;
    const bool reachable = max_loss.monomial_loss >= k;
    EXPECT_EQ(greedy->adequate, reachable) << "bound " << b;

    auto bf = BruteForce(polys, forest, b);
    if (bf.ok() && greedy->adequate) {
      EXPECT_GE(greedy->loss.variable_loss, bf->loss.variable_loss)
          << "greedy must not beat the optimum, bound " << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, GreedyPropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace provabs
