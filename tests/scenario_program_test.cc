// ScenarioProgram semantics + the cross-backend differential battery.
//
// Semantics half: Compile must get the Cartesian product right (counts,
// mixed-radix decode with the LAST parameter fastest, the float-drift
// tolerance that makes 0.1..1.0 STEP 0.1 ten values), resolve selectors
// first-match-wins against the compiled slot table, default unmatched
// variables to 1.0, and reject ill-typed or ill-formed programs with
// offset-carrying statuses — never a crash (this suite is in the ASan/
// UBSan/TSan CI batteries).
//
// Differential half: an expanded scenario family evaluated through every
// registered backend — naive, compiled, simd_batch, plus a scalar-forced
// and an auto-lane SimdBatchBackend instance — must reproduce per-scenario
// Valuation::EvaluateAll BITWISE (IEEE-754 bit compare, no tolerance):
// exact equality certifies the identical operation sequence, which is what
// makes the serving tier's chunked fan-out indistinguishable from issuing
// each scenario as its own Evaluate request. Coverage includes views
// produced by the compression algorithms: post-cut sets (meta-variables
// substituted in) and prox-grouping views with freshly interned group
// variables.

#include "scenario/program.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "algo/compressor.h"
#include "common/random.h"
#include "core/evaluation_backend.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "core/variable.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

using scenario::ScenarioProgram;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// A tiny fixture set: polynomials over plan1, plan2, m1 so selector tests
/// have real slots to resolve against.
struct Fixture {
  VariableTable vars;
  PolynomialSet polys;
  std::shared_ptr<const CompiledPolynomialSet> compiled;

  Fixture() {
    VariableId plan1 = vars.Intern("plan1");
    VariableId plan2 = vars.Intern("plan2");
    VariableId m1 = vars.Intern("m1");
    polys.Add(Polynomial::FromMonomials(
        {Monomial(2.0, {{plan1, 1}, {m1, 1}}), Monomial(3.0, {{plan2, 2}})}));
    polys.Add(Polynomial::FromMonomials({Monomial(5.0, {{m1, 1}})}));
    compiled = polys.Compiled();
  }

  StatusOr<ScenarioProgram> Compile(const std::string& source,
                                    size_t* offset = nullptr) const {
    return ScenarioProgram::Compile(source, compiled, vars, offset);
  }
};

// ------------------------------------------------ expansion semantics ---

TEST(ScenarioProgramTest, NoParametersIsASingleScenario) {
  Fixture fx;
  auto program = fx.Compile("SET * = 2;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->scenario_count(), 1u);
  EXPECT_EQ(program->param_count(), 0u);
  EXPECT_TRUE(program->ParamValues(0).empty());
}

TEST(ScenarioProgramTest, ScenarioCountIsTheCartesianProduct) {
  Fixture fx;
  auto program = fx.Compile(
      "LET a = GRID(1, 2, 3); LET b = SWEEP(0 .. 1 STEP 0.5); SET * = a * b;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->scenario_count(), 9u);  // 3 grid values x 3 sweep values
}

TEST(ScenarioProgramTest, SweepCountToleratesFloatDrift) {
  // 0.1..1.0 STEP 0.1: (1.0-0.1)/0.1 is 8.999... in binary floating point;
  // the 1e-9 slack must still produce 10 values, computed as lo + i*step.
  Fixture fx;
  auto program = fx.Compile("LET d = SWEEP(0.1 .. 1.0 STEP 0.1); SET * = d;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->scenario_count(), 10u);
  EXPECT_EQ(Bits(program->ParamValues(0)[0]), Bits(0.1));
  EXPECT_EQ(Bits(program->ParamValues(3)[0]), Bits(0.1 + 3 * 0.1));
  EXPECT_EQ(Bits(program->ParamValues(9)[0]), Bits(0.1 + 9 * 0.1));
}

TEST(ScenarioProgramTest, ParamValuesDecodeLastParameterFastest) {
  Fixture fx;
  auto program = fx.Compile(
      "LET hi = GRID(10, 20); LET lo = GRID(1, 2, 3); SET * = hi + lo;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->scenario_count(), 6u);
  // Row-major: lo cycles 1,2,3 while hi holds, then hi advances.
  EXPECT_EQ(program->ParamValues(0), (std::vector<double>{10, 1}));
  EXPECT_EQ(program->ParamValues(1), (std::vector<double>{10, 2}));
  EXPECT_EQ(program->ParamValues(2), (std::vector<double>{10, 3}));
  EXPECT_EQ(program->ParamValues(3), (std::vector<double>{20, 1}));
  EXPECT_EQ(program->ParamValues(5), (std::vector<double>{20, 3}));
}

TEST(ScenarioProgramTest, FirstMatchingRuleWinsAndUnmatchedDefaultToOne) {
  Fixture fx;
  // plan1 matches both the exact rule and the prefix rule; the exact rule
  // is first, so it wins. m1 matches nothing and must default to 1.0.
  auto program = fx.Compile("SET plan1 = 7; SET PREFIX(plan) = 9;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<DenseValuation> out;
  ASSERT_TRUE(program->ExpandChunk(0, 1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  const std::vector<VariableId>& slots = fx.compiled->slot_variables();
  for (uint32_t s = 0; s < slots.size(); ++s) {
    const std::string& name = fx.vars.NameOf(slots[s]);
    const double expected = name == "plan1" ? 7.0 : name == "plan2" ? 9.0 : 1.0;
    EXPECT_EQ(out[0][s], expected) << name;
  }
}

TEST(ScenarioProgramTest, PrefixMatchingZeroVariablesIsAllowed) {
  Fixture fx;
  auto program = fx.Compile("SET PREFIX(nomatch) = 5; SET * = 2;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<DenseValuation> out;
  ASSERT_TRUE(program->ExpandChunk(0, 1, &out).ok());
  for (uint32_t s = 0; s < out[0].slot_count(); ++s) {
    EXPECT_EQ(out[0][s], 2.0);
  }
}

TEST(ScenarioProgramTest, ExpandedValuationsCarryTheCompiledFingerprint) {
  Fixture fx;
  auto program = fx.Compile("SET * = 3;");
  ASSERT_TRUE(program.ok());
  std::vector<DenseValuation> out;
  ASSERT_TRUE(program->ExpandChunk(0, 1, &out).ok());
  EXPECT_EQ(out[0].source_fingerprint(), fx.compiled->fingerprint());
  EXPECT_EQ(program->compiled().get(), fx.compiled.get());
}

TEST(ScenarioProgramTest, ChunkedExpansionEqualsOneShotExpansion) {
  Fixture fx;
  auto program = fx.Compile(
      "LET a = GRID(1, 2, 3, 4, 5); LET b = GRID(0.5, 1.5);"
      "SET PREFIX(plan) = a * b; SET * = a - b;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->scenario_count(), 10u);
  std::vector<DenseValuation> all;
  ASSERT_TRUE(program->ExpandChunk(0, 10, &all).ok());
  // Uneven chunk boundaries: [0,3), [3,7), [7,10).
  std::vector<DenseValuation> chunked;
  for (uint64_t begin : {uint64_t{0}, uint64_t{3}, uint64_t{7}}) {
    const uint64_t end = begin == 0 ? 3 : begin == 3 ? 7 : 10;
    std::vector<DenseValuation> chunk;
    ASSERT_TRUE(program->ExpandChunk(begin, end, &chunk).ok());
    for (auto& d : chunk) chunked.push_back(std::move(d));
  }
  ASSERT_EQ(chunked.size(), all.size());
  for (size_t i = 0; i < all.size(); ++i) {
    for (uint32_t s = 0; s < all[i].slot_count(); ++s) {
      ASSERT_EQ(Bits(all[i][s]), Bits(chunked[i][s])) << i << "/" << s;
    }
  }
}

TEST(ScenarioProgramTest, ExpandChunkRejectsOutOfRange) {
  Fixture fx;
  auto program = fx.Compile("LET a = GRID(1, 2); SET * = a;");
  ASSERT_TRUE(program.ok());
  std::vector<DenseValuation> out;
  EXPECT_EQ(program->ExpandChunk(0, 3, &out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(program->ExpandChunk(2, 1, &out).code(), StatusCode::kOutOfRange);
  EXPECT_TRUE(program->ExpandChunk(2, 2, &out).ok());  // empty is fine
  EXPECT_TRUE(out.empty());
}

TEST(ScenarioProgramTest, ConditionalAndDivisionEvaluate) {
  Fixture fx;
  auto program = fx.Compile(
      "LET d = GRID(2, 8);"
      "SET * = IF d < 4 OR d >= 100 THEN 1 / d ELSE -d;");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<DenseValuation> out;
  ASSERT_TRUE(program->ExpandChunk(0, 2, &out).ok());
  EXPECT_EQ(Bits(out[0][0]), Bits(1.0 / 2.0));
  EXPECT_EQ(Bits(out[1][0]), Bits(-8.0));
}

// ------------------------------------------------ compile-time errors ---

TEST(ScenarioProgramTest, UnknownVariableInExactOrInSelectorFails) {
  Fixture fx;
  size_t offset = 0;
  auto program = fx.Compile("SET nosuchvar = 1;", &offset);
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find(
                "'nosuchvar' does not occur in the evaluated polynomials"),
            std::string::npos)
      << program.status().message();
  EXPECT_GT(offset, 0u);

  auto in_program = fx.Compile("SET IN(plan1, ghost) = 1;");
  ASSERT_FALSE(in_program.ok());
  EXPECT_NE(in_program.status().message().find("'ghost'"), std::string::npos);
}

TEST(ScenarioProgramTest, DuplicateParameterFails) {
  Fixture fx;
  auto program = fx.Compile("LET a = GRID(1); LET a = GRID(2); SET * = a;");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("duplicate parameter 'a'"),
            std::string::npos);
}

TEST(ScenarioProgramTest, SweepValidationErrors) {
  Fixture fx;
  EXPECT_NE(fx.Compile("LET a = SWEEP(0 .. 1 STEP 0); SET * = a;")
                .status()
                .message()
                .find("STEP must be positive"),
            std::string::npos);
  EXPECT_NE(fx.Compile("LET a = SWEEP(2 .. 1 STEP 0.5); SET * = a;")
                .status()
                .message()
                .find("empty"),
            std::string::npos);
  // Note: the lexer has no exponent notation, so spell the huge span out.
  EXPECT_NE(fx.Compile("LET a = SWEEP(0 .. 10000000000 STEP 0.0000001);"
                       "SET * = a;")
                .status()
                .message()
                .find("too many values"),
            std::string::npos);
}

TEST(ScenarioProgramTest, TypeErrorsAreStructuredNotCrashes) {
  Fixture fx;
  size_t offset = 0;
  // A bool where a number is required (rule value).
  auto bool_value = fx.Compile("LET a = GRID(1); SET * = a < 2;", &offset);
  ASSERT_FALSE(bool_value.ok());
  EXPECT_NE(bool_value.status().message().find(
                "rule value must be a number, got bool"),
            std::string::npos);
  // A number where a bool is required (IF condition).
  auto num_cond =
      fx.Compile("LET a = GRID(1); SET * = IF a THEN 1 ELSE 2;");
  ASSERT_FALSE(num_cond.ok());
  EXPECT_NE(num_cond.status().message().find("condition must be bool"),
            std::string::npos);
  // Mixed THEN/ELSE types.
  auto mixed = fx.Compile(
      "LET a = GRID(1); SET * = IF a < 1 THEN 1 ELSE (a < 2);");
  ASSERT_FALSE(mixed.ok());
  // Arithmetic over bools.
  auto bool_add = fx.Compile("LET a = GRID(1); SET * = (a < 1) + 2;");
  ASSERT_FALSE(bool_add.ok());
  EXPECT_NE(bool_add.status().message().find("'+' needs number operands"),
            std::string::npos);
  // NOT over a number; undeclared parameter.
  EXPECT_FALSE(fx.Compile("SET * = IF NOT 3 THEN 1 ELSE 2;").ok());
  auto unknown = fx.Compile("SET * = zzz + 1;");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("declare it with LET"),
            std::string::npos);
}

TEST(ScenarioProgramTest, NullCompiledSetIsRejected) {
  Fixture fx;
  auto program = ScenarioProgram::Compile("SET * = 1;", nullptr, fx.vars);
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScenarioProgramTest, ApproxBytesGrowsWithTheFamily) {
  Fixture fx;
  auto small = fx.Compile("SET * = 1;");
  auto large = fx.Compile(
      "LET a = SWEEP(0 .. 100 STEP 0.125); SET PREFIX(plan) = a;"
      "SET * = IF a < 50 THEN a * 2 ELSE a / 2;");
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(large->ApproxBytes(), small->ApproxBytes());
}

// -------------------------------------- cross-backend differential ------

/// Reference for one expanded scenario: rebuild the sparse Valuation from
/// the dense slot values and run the naive per-polynomial evaluator. This
/// is exactly what a client issuing the scenario as its own Evaluate
/// request would compute.
std::vector<double> ReferenceValues(const PolynomialSet& polys,
                                    const CompiledPolynomialSet& compiled,
                                    const DenseValuation& dense) {
  Valuation val;
  const std::vector<VariableId>& slots = compiled.slot_variables();
  for (uint32_t s = 0; s < slots.size(); ++s) val.Set(slots[s], dense[s]);
  std::vector<double> out;
  out.reserve(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    out.push_back(val.Evaluate(p));
  }
  return out;
}

/// Expands the whole family and checks every backend's batched results
/// against the per-scenario reference AND per-scenario EvaluateAll, bit
/// for bit.
void RunProgramDifferential(const PolynomialSet& polys,
                            const VariableTable& vars,
                            const std::string& source) {
  auto compiled = polys.Compiled();
  auto program = ScenarioProgram::Compile(source, compiled, vars);
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  std::vector<DenseValuation> dense;
  ASSERT_TRUE(program->ExpandChunk(0, program->scenario_count(), &dense).ok());
  const size_t n = dense.size();
  ASSERT_GT(n, 0u);

  std::vector<std::vector<double>> expected;
  expected.reserve(n);
  for (const DenseValuation& d : dense) {
    expected.push_back(ReferenceValues(polys, *compiled, d));
    // EvaluateAll (which routes through the registry's default policy)
    // must agree with the naive per-polynomial loop.
    Valuation val;
    const std::vector<VariableId>& slots = compiled->slot_variables();
    for (uint32_t s = 0; s < slots.size(); ++s) val.Set(slots[s], d[s]);
    std::vector<double> via_all = val.EvaluateAll(polys);
    ASSERT_EQ(via_all.size(), expected.back().size());
    for (size_t p = 0; p < via_all.size(); ++p) {
      ASSERT_EQ(Bits(via_all[p]), Bits(expected.back()[p]))
          << "EvaluateAll poly " << p;
    }
  }

  std::vector<const DenseValuation*> ptrs(n);
  std::vector<std::vector<double>> out(
      n, std::vector<double>(compiled->poly_count()));
  std::vector<double*> out_ptrs(n);
  for (size_t s = 0; s < n; ++s) {
    ptrs[s] = &dense[s];
    out_ptrs[s] = out[s].data();
  }

  auto check = [&](const EvaluationBackend& backend, const std::string& which) {
    for (auto& row : out) std::fill(row.begin(), row.end(), -12345.0);
    Status status = backend.EvaluateBatch(*compiled, 0, compiled->poly_count(),
                                          ptrs.data(), out_ptrs.data(), n);
    ASSERT_TRUE(status.ok()) << which << ": " << status.ToString();
    for (size_t s = 0; s < n; ++s) {
      ASSERT_EQ(out[s].size(), expected[s].size()) << which;
      for (size_t p = 0; p < out[s].size(); ++p) {
        ASSERT_EQ(Bits(out[s][p]), Bits(expected[s][p]))
            << which << ": scenario " << s << " polynomial " << p;
      }
    }
  };

  const EvaluationBackendRegistry& registry =
      EvaluationBackendRegistry::Default();
  for (const std::string& name : registry.Names()) {
    check(*registry.Find(name), "registered '" + name + "'");
  }
  SimdBatchBackend scalar(SimdBatchBackend::Mode::kForceScalar);
  check(scalar, "simd_batch(scalar)");
  SimdBatchBackend auto_lanes(SimdBatchBackend::Mode::kAuto);
  check(auto_lanes,
        auto_lanes.using_avx2() ? "simd_batch(avx2)" : "simd_batch(auto)");
}

// The telephony-flavored program used by the random battery: a discount
// sweep, a multiplier grid, a prefix rule, an IN rule over variables that
// actually occur in the set (exact selectors reject unknown names, so the
// rule is built per-set), a conditional, and a catch-all.
std::string BatteryProgram(const PolynomialSet& polys,
                           const VariableTable& vars) {
  std::string program =
      "LET d = SWEEP(0.5 .. 1.25 STEP 0.25);  # 4 values\n"
      "LET m = GRID(1, 2, 12);\n"
      "SET PREFIX(plan) = d * m;\n";
  std::unordered_set<VariableId> present = polys.Variables();
  std::vector<std::string> names;
  for (VariableId id : present) {
    names.push_back(vars.NameOf(id));
    if (names.size() == 2) break;
  }
  if (!names.empty()) {
    program += "SET IN(" + names[0];
    if (names.size() > 1) program += ", " + names[1];
    program += ") = IF d < 0.75 THEN 0.5 ELSE d + m;\n";
  }
  program += "SET * = 1 - d / 4;";
  return program;
}

TEST(ScenarioProgramDifferentialTest, RandomSetsAcrossAllBackends) {
  Rng rng(77001);
  for (int round = 0; round < 8; ++round) {
    VariableTable vars;
    std::vector<VariableId> ids;
    const size_t num_vars = 4 + rng.Uniform(12);
    for (size_t i = 0; i < num_vars; ++i) {
      // Mix of prefix families so the selectors bite differently each
      // round.
      const char* family = i % 3 == 0 ? "plan" : i % 3 == 1 ? "x" : "m";
      ids.push_back(vars.Intern(family + std::to_string(i)));
    }
    PolynomialSet polys;
    const size_t num_polys = 1 + rng.Uniform(5);
    for (size_t p = 0; p < num_polys; ++p) {
      std::vector<Monomial> terms;
      const size_t n_terms = 1 + rng.Uniform(10);
      for (size_t t = 0; t < n_terms; ++t) {
        std::vector<Factor> factors;
        const size_t n_factors = rng.Uniform(4);
        for (size_t f = 0; f < n_factors; ++f) {
          factors.push_back({ids[rng.Uniform(ids.size())],
                             static_cast<uint32_t>(1 + rng.Uniform(3))});
        }
        terms.emplace_back(rng.UniformReal(-4.0, 4.0), std::move(factors));
      }
      polys.Add(Polynomial::FromMonomials(std::move(terms)));
    }
    RunProgramDifferential(polys, vars, BatteryProgram(polys, vars));
  }
}

// Post-abstraction coverage: the same program expanded against a post-cut
// view (greedy; meta-variables substituted in) and a prox-grouping view
// (freshly interned group variables) must stay bitwise identical across
// backends — the serving tier evaluates scenario programs against exactly
// these compressed views.
TEST(ScenarioProgramDifferentialTest, PostCutAndProxGroupViews) {
  Rng rng(77002);
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 16; ++i) {
    leaves.push_back(vars.Intern("x" + std::to_string(i)));
  }
  VariableId plan = vars.Intern("plan_base");

  PolynomialSet polys;
  for (int p = 0; p < 4; ++p) {
    std::vector<Monomial> terms;
    for (int t = 0; t < 18; ++t) {
      std::vector<Factor> f;
      f.push_back({leaves[rng.Uniform(leaves.size())],
                   static_cast<uint32_t>(1 + rng.Uniform(2))});
      if (rng.Bernoulli(0.5)) f.push_back({plan, 1});
      terms.emplace_back(rng.UniformReal(0.5, 8.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }

  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {4, 2}, "SP_"));
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());
  CompressOptions options;
  options.bound = polys.SizeM() / 2;

  auto greedy = CompressorRegistry::Default().Find("greedy")->Compress(
      polys, forest, options);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  PolynomialSet cut_view = greedy->Apply(forest, polys);

  auto prox = CompressorRegistry::Default().Find("prox")->Compress(
      polys, forest, options);
  ASSERT_TRUE(prox.ok()) << prox.status().ToString();
  prox->InternGrouping(vars);
  PolynomialSet group_view = prox->Apply(forest, polys);

  // The views' variables are meta/group names, so select by prefix plus a
  // catch-all — prefix rules binding zero variables on one view is fine.
  const std::string program =
      "LET d = SWEEP(0.25 .. 1.75 STEP 0.25); LET m = GRID(0.5, 2);"
      "SET PREFIX(SP_) = d; SET PREFIX(plan) = d * m; SET * = m;";
  RunProgramDifferential(cut_view, vars, program);
  RunProgramDifferential(group_view, vars, program);
}

// Acceptance-sized family: >= 1000 scenarios expanded in one program must
// match the per-scenario reference across every backend. Slow-labeled.
TEST(ScenarioProgramDifferentialTest, ThousandScenarioFamilyIsBitwiseExact) {
  VariableTable vars;
  std::vector<VariableId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(vars.Intern("plan" + std::to_string(i)));
  }
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({
      Monomial(1.5, {{ids[0], 1}, {ids[1], 2}}),
      Monomial(-2.0, {{ids[2], 1}}),
      Monomial(0.25, {{ids[3], 1}, {ids[4], 1}, {ids[5], 1}}),
  }));
  polys.Add(Polynomial::FromMonomials({Monomial(4.0, {{ids[1], 3}})}));
  const std::string program =
      "LET a = SWEEP(0.5 .. 1.4 STEP 0.1); LET b = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "LET c = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "SET IN(plan0, plan1) = a; SET PREFIX(plan2) = b; SET * = c;";
  auto compiled = polys.Compiled();
  auto compiled_program =
      scenario::ScenarioProgram::Compile(program, compiled, vars);
  ASSERT_TRUE(compiled_program.ok());
  ASSERT_EQ(compiled_program->scenario_count(), 1000u);
  RunProgramDifferential(polys, vars, program);
}

}  // namespace
}  // namespace provabs
