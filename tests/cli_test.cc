#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace provabs {
namespace {

/// Shell-level smoke tests of the provabs_cli binary: the producer →
/// analyst round trip (generate → info → compress → tradeoff → evaluate).
/// The binary path is resolved relative to the test binary's conventional
/// build layout; the suite is skipped when it is absent (e.g. when tests
/// are run from an install tree).
class CliTest : public ::testing::Test {
 protected:
  /// Locates the CLI binary relative to common test working directories.
  static std::string Binary() {
    static const char* candidates[] = {
        "../tools/provabs_cli",        // ctest from build/tests
        "./tools/provabs_cli",         // manual run from build/
        "./build/tools/provabs_cli",   // manual run from the repo root
    };
    for (const char* c : candidates) {
      FILE* probe = std::fopen(c, "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        return c;
      }
    }
    return "";
  }

  void SetUp() override {
    if (Binary().empty()) {
      GTEST_SKIP() << "provabs_cli binary not found";
    }
    dir_ = ::testing::TempDir();
  }

  int Run(const std::string& args) {
    std::string cmd = Binary() + " " + args + " >/dev/null 2>&1";
    return std::system(cmd.c_str());
  }

  std::string dir_;
};

TEST_F(CliTest, FullProducerAnalystRoundTrip) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/p.bin --forest-out " + dir_ + "/f.bin"),
            0);
  EXPECT_EQ(Run("info --in " + dir_ + "/p.bin"), 0);
  EXPECT_EQ(Run("compress --in " + dir_ + "/p.bin --forest " + dir_ +
                "/f.bin --bound 1500 --algo opt --out " + dir_ +
                "/c.bin --vvs-out " + dir_ + "/v.bin"),
            0);
  EXPECT_EQ(Run("tradeoff --in " + dir_ + "/p.bin --forest " + dir_ +
                "/f.bin"),
            0);
  EXPECT_EQ(Run("evaluate --in " + dir_ + "/c.bin --set m1=0.8"), 0);
}

TEST_F(CliTest, GreedyAlgoSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/p2.bin --forest-out " + dir_ + "/f2.bin --fanouts 4,4"),
            0);
  EXPECT_EQ(Run("compress --in " + dir_ + "/p2.bin --forest " + dir_ +
                "/f2.bin --bound 1500 --algo greedy"),
            0);
}

TEST_F(CliTest, MissingFlagsAreUsageErrors) {
  EXPECT_NE(Run("generate --workload telephony"), 0);
  EXPECT_NE(Run("compress --in nope.bin"), 0);
  EXPECT_NE(Run("frobnicate"), 0);
}

TEST_F(CliTest, MissingFileIsRuntimeError) {
  EXPECT_NE(Run("info --in " + dir_ + "/definitely_missing.bin"), 0);
}

TEST_F(CliTest, UnknownFlagsAreUsageErrors) {
  // A typo must fail loudly, never be silently ignored.
  EXPECT_NE(Run("info --bogus x"), 0);
  EXPECT_NE(Run("generate --workload telephony --out " + dir_ +
                "/t.bin --typo 1"),
            0);
  EXPECT_NE(Run("evaluate --in x.bin stray-word"), 0);
  EXPECT_NE(Run("info --in"), 0);  // flag without a value
}

TEST_F(CliTest, RemotePortIsValidatedStrictly) {
  EXPECT_NE(Run("remote-info --name x"), 0);      // missing --port
  EXPECT_NE(Run("remote-info --port 99999"), 0);  // out of range
  EXPECT_NE(Run("remote-info --port abc"), 0);    // non-numeric
}

TEST_F(CliTest, HelpExitsZero) {
  EXPECT_EQ(Run("--help"), 0);
  EXPECT_EQ(Run("help"), 0);
  EXPECT_EQ(Run("compress --help"), 0);
  EXPECT_EQ(Run("remote-load --help"), 0);
}

TEST_F(CliTest, UnknownWorkloadRejected) {
  EXPECT_NE(Run("generate --workload tpch-q99 --out " + dir_ + "/x.bin"),
            0);
}

}  // namespace
}  // namespace provabs
