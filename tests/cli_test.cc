#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace provabs {
namespace {

/// Shell-level smoke tests of the provabs_cli binary: the producer →
/// analyst round trip (generate → info → compress → tradeoff → evaluate).
/// The binary path is resolved relative to the test binary's conventional
/// build layout; the suite is skipped when it is absent (e.g. when tests
/// are run from an install tree).
class CliTest : public ::testing::Test {
 protected:
  /// Locates the CLI binary relative to common test working directories.
  static std::string Binary() {
    static const char* candidates[] = {
        "../tools/provabs_cli",        // ctest from build/tests
        "./tools/provabs_cli",         // manual run from build/
        "./build/tools/provabs_cli",   // manual run from the repo root
    };
    for (const char* c : candidates) {
      FILE* probe = std::fopen(c, "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        return c;
      }
    }
    return "";
  }

  void SetUp() override {
    if (Binary().empty()) {
      GTEST_SKIP() << "provabs_cli binary not found";
    }
    dir_ = ::testing::TempDir();
  }

  int Run(const std::string& args) {
    std::string cmd = Binary() + " " + args + " >/dev/null 2>&1";
    return std::system(cmd.c_str());
  }

  /// Extracts the process exit code from a std::system wait status.
  static int ExitCode(int status) {
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::string dir_;
};

TEST_F(CliTest, FullProducerAnalystRoundTrip) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/p.bin --forest-out " + dir_ + "/f.bin"),
            0);
  EXPECT_EQ(Run("info --in " + dir_ + "/p.bin"), 0);
  EXPECT_EQ(Run("compress --in " + dir_ + "/p.bin --forest " + dir_ +
                "/f.bin --bound 1500 --algo opt --out " + dir_ +
                "/c.bin --vvs-out " + dir_ + "/v.bin"),
            0);
  EXPECT_EQ(Run("tradeoff --in " + dir_ + "/p.bin --forest " + dir_ +
                "/f.bin"),
            0);
  EXPECT_EQ(Run("evaluate --in " + dir_ + "/c.bin --set m1=0.8"), 0);
}

TEST_F(CliTest, GreedyAlgoSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/p2.bin --forest-out " + dir_ + "/f2.bin --fanouts 4,4"),
            0);
  EXPECT_EQ(Run("compress --in " + dir_ + "/p2.bin --forest " + dir_ +
                "/f2.bin --bound 1500 --algo greedy"),
            0);
}

TEST_F(CliTest, AllRegisteredAlgosSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.01 --out " + dir_ +
                "/p3.bin --forest-out " + dir_ + "/f3.bin --fanouts 2,2"),
            0);
  // Registry-routed: the exhaustive baseline and the Prox competitor run
  // through the same subcommand as the tree algorithms, including writing
  // the compressed artifact (prox representatives are interned before
  // serialization). A generous bound keeps every algorithm fast.
  for (const std::string algo : {"opt", "greedy", "brute", "prox"}) {
    EXPECT_EQ(Run("compress --in " + dir_ + "/p3.bin --forest " + dir_ +
                  "/f3.bin --bound 100000 --algo " + algo + " --out " +
                  dir_ + "/c3-" + algo + ".bin"),
              0)
        << algo;
    EXPECT_EQ(Run("info --in " + dir_ + "/c3-" + algo + ".bin"), 0) << algo;
  }
  // A tighter bound forces prox to actually merge; the written artifact
  // must still deserialize (synthesized group variables get interned).
  EXPECT_EQ(Run("compress --in " + dir_ + "/p3.bin --forest " + dir_ +
                "/f3.bin --bound 200 --algo prox --out " + dir_ +
                "/c3-prox-tight.bin"),
            0);
  EXPECT_EQ(Run("evaluate --in " + dir_ + "/c3-prox-tight.bin"), 0);
  // A grouping algorithm cannot serialize a tree cut; rejected before the
  // algorithm runs.
  EXPECT_EQ(ExitCode(Run("compress --in " + dir_ + "/p3.bin --forest " +
                         dir_ + "/f3.bin --bound 100000 --algo prox "
                         "--vvs-out " +
                         dir_ + "/v3.bin")),
            2);
}

TEST_F(CliTest, EvalBackendSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/pe.bin --forest-out " + dir_ + "/fe.bin"),
            0);
  // Every registered evaluation backend serves the same evaluate command.
  for (const std::string backend : {"naive", "compiled", "simd_batch"}) {
    EXPECT_EQ(Run("evaluate --in " + dir_ + "/pe.bin --set m1=0.8 "
                  "--eval-backend " + backend),
              0)
        << backend;
  }
}

TEST_F(CliTest, UnknownEvalBackendIsUsageError) {
  // Strict registry validation: exit 2 before any file is touched.
  EXPECT_EQ(ExitCode(Run("evaluate --in nope.bin --eval-backend jit")), 2);
  EXPECT_EQ(ExitCode(Run("remote-evaluate --port 1 --name a "
                         "--eval-backend jit")),
            2);
}

TEST_F(CliTest, UnknownAlgoIsUsageError) {
  // Strict registry validation: exit 2 before any file is touched.
  EXPECT_EQ(ExitCode(Run("compress --in nope.bin --forest nope.bin "
                         "--bound 5 --algo quantum")),
            2);
  EXPECT_EQ(ExitCode(Run("remote-compress --port 1 --name a --bound 5 "
                         "--algo quantum")),
            2);
  EXPECT_EQ(ExitCode(Run("remote-evaluate --port 1 --name a --bound 5 "
                         "--algo quantum")),
            2);
}

TEST_F(CliTest, MissingFlagsAreUsageErrors) {
  EXPECT_NE(Run("generate --workload telephony"), 0);
  EXPECT_NE(Run("compress --in nope.bin"), 0);
  EXPECT_NE(Run("frobnicate"), 0);
}

TEST_F(CliTest, MissingFileIsRuntimeError) {
  EXPECT_NE(Run("info --in " + dir_ + "/definitely_missing.bin"), 0);
}

TEST_F(CliTest, UnknownFlagsAreUsageErrors) {
  // A typo must fail loudly, never be silently ignored.
  EXPECT_NE(Run("info --bogus x"), 0);
  EXPECT_NE(Run("generate --workload telephony --out " + dir_ +
                "/t.bin --typo 1"),
            0);
  EXPECT_NE(Run("evaluate --in x.bin stray-word"), 0);
  EXPECT_NE(Run("info --in"), 0);  // flag without a value
}

TEST_F(CliTest, RemotePortIsValidatedStrictly) {
  EXPECT_NE(Run("remote-info --name x"), 0);      // missing --port
  EXPECT_NE(Run("remote-info --port 99999"), 0);  // out of range
  EXPECT_NE(Run("remote-info --port abc"), 0);    // non-numeric
}

TEST_F(CliTest, HelpExitsZero) {
  EXPECT_EQ(Run("--help"), 0);
  EXPECT_EQ(Run("help"), 0);
  EXPECT_EQ(Run("compress --help"), 0);
  EXPECT_EQ(Run("remote-load --help"), 0);
}

TEST_F(CliTest, UnknownWorkloadRejected) {
  EXPECT_NE(Run("generate --workload tpch-q99 --out " + dir_ + "/x.bin"),
            0);
}

}  // namespace
}  // namespace provabs
