#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace provabs {
namespace {

/// Shell-level smoke tests of the provabs_cli binary: the producer →
/// analyst round trip (generate → info → compress → tradeoff → evaluate).
/// The binary path is resolved relative to the test binary's conventional
/// build layout; the suite is skipped when it is absent (e.g. when tests
/// are run from an install tree).
class CliTest : public ::testing::Test {
 protected:
  /// Locates the CLI binary relative to common test working directories.
  static std::string Binary() {
    static const char* candidates[] = {
        "../tools/provabs_cli",        // ctest from build/tests
        "./tools/provabs_cli",         // manual run from build/
        "./build/tools/provabs_cli",   // manual run from the repo root
    };
    for (const char* c : candidates) {
      FILE* probe = std::fopen(c, "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        return c;
      }
    }
    return "";
  }

  void SetUp() override {
    if (Binary().empty()) {
      GTEST_SKIP() << "provabs_cli binary not found";
    }
    // A per-process subdirectory: other suites (server_e2e_test) also spawn
    // the CLI with artifact files in TempDir(), and ctest runs suites in
    // parallel — shared names like p.bin would race.
    dir_ = ::testing::TempDir() + "/cli_test_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
  }

  int Run(const std::string& args) {
    std::string cmd = Binary() + " " + args + " >/dev/null 2>&1";
    return std::system(cmd.c_str());
  }

  /// Extracts the process exit code from a std::system wait status.
  static int ExitCode(int status) {
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  std::string dir_;
};

TEST_F(CliTest, FullProducerAnalystRoundTrip) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/p.bin --forest-out " + dir_ + "/f.bin"),
            0);
  EXPECT_EQ(Run("info --in " + dir_ + "/p.bin"), 0);
  EXPECT_EQ(Run("compress --in " + dir_ + "/p.bin --forest " + dir_ +
                "/f.bin --bound 1500 --algo opt --out " + dir_ +
                "/c.bin --vvs-out " + dir_ + "/v.bin"),
            0);
  EXPECT_EQ(Run("tradeoff --in " + dir_ + "/p.bin --forest " + dir_ +
                "/f.bin"),
            0);
  EXPECT_EQ(Run("evaluate --in " + dir_ + "/c.bin --set m1=0.8"), 0);
}

TEST_F(CliTest, GreedyAlgoSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/p2.bin --forest-out " + dir_ + "/f2.bin --fanouts 4,4"),
            0);
  EXPECT_EQ(Run("compress --in " + dir_ + "/p2.bin --forest " + dir_ +
                "/f2.bin --bound 1500 --algo greedy"),
            0);
}

TEST_F(CliTest, AllRegisteredAlgosSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.01 --out " + dir_ +
                "/p3.bin --forest-out " + dir_ + "/f3.bin --fanouts 2,2"),
            0);
  // Registry-routed: the exhaustive baseline and the Prox competitor run
  // through the same subcommand as the tree algorithms, including writing
  // the compressed artifact (prox representatives are interned before
  // serialization). A generous bound keeps every algorithm fast.
  for (const std::string algo : {"opt", "greedy", "brute", "prox"}) {
    EXPECT_EQ(Run("compress --in " + dir_ + "/p3.bin --forest " + dir_ +
                  "/f3.bin --bound 100000 --algo " + algo + " --out " +
                  dir_ + "/c3-" + algo + ".bin"),
              0)
        << algo;
    EXPECT_EQ(Run("info --in " + dir_ + "/c3-" + algo + ".bin"), 0) << algo;
  }
  // A tighter bound forces prox to actually merge; the written artifact
  // must still deserialize (synthesized group variables get interned).
  EXPECT_EQ(Run("compress --in " + dir_ + "/p3.bin --forest " + dir_ +
                "/f3.bin --bound 200 --algo prox --out " + dir_ +
                "/c3-prox-tight.bin"),
            0);
  EXPECT_EQ(Run("evaluate --in " + dir_ + "/c3-prox-tight.bin"), 0);
  // A grouping algorithm cannot serialize a tree cut; rejected before the
  // algorithm runs.
  EXPECT_EQ(ExitCode(Run("compress --in " + dir_ + "/p3.bin --forest " +
                         dir_ + "/f3.bin --bound 100000 --algo prox "
                         "--vvs-out " +
                         dir_ + "/v3.bin")),
            2);
}

TEST_F(CliTest, EvalBackendSelectable) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/pe.bin --forest-out " + dir_ + "/fe.bin"),
            0);
  // Every registered evaluation backend serves the same evaluate command.
  for (const std::string backend : {"naive", "compiled", "simd_batch", "jit"}) {
    EXPECT_EQ(Run("evaluate --in " + dir_ + "/pe.bin --set m1=0.8 "
                  "--eval-backend " + backend),
              0)
        << backend;
  }
}

TEST_F(CliTest, UnknownEvalBackendIsUsageError) {
  // Strict registry validation: exit 2 before any file is touched.
  EXPECT_EQ(ExitCode(Run("evaluate --in nope.bin --eval-backend turbo")), 2);
  EXPECT_EQ(ExitCode(Run("remote-evaluate --port 1 --name a "
                         "--eval-backend turbo")),
            2);
}

TEST_F(CliTest, UnknownAlgoIsUsageError) {
  // Strict registry validation: exit 2 before any file is touched.
  EXPECT_EQ(ExitCode(Run("compress --in nope.bin --forest nope.bin "
                         "--bound 5 --algo quantum")),
            2);
  EXPECT_EQ(ExitCode(Run("remote-compress --port 1 --name a --bound 5 "
                         "--algo quantum")),
            2);
  EXPECT_EQ(ExitCode(Run("remote-evaluate --port 1 --name a --bound 5 "
                         "--algo quantum")),
            2);
}

TEST_F(CliTest, MissingFlagsAreUsageErrors) {
  EXPECT_NE(Run("generate --workload telephony"), 0);
  EXPECT_NE(Run("compress --in nope.bin"), 0);
  EXPECT_NE(Run("frobnicate"), 0);
}

TEST_F(CliTest, MissingFileIsRuntimeError) {
  EXPECT_NE(Run("info --in " + dir_ + "/definitely_missing.bin"), 0);
}

TEST_F(CliTest, UnknownFlagsAreUsageErrors) {
  // A typo must fail loudly, never be silently ignored.
  EXPECT_NE(Run("info --bogus x"), 0);
  EXPECT_NE(Run("generate --workload telephony --out " + dir_ +
                "/t.bin --typo 1"),
            0);
  EXPECT_NE(Run("evaluate --in x.bin stray-word"), 0);
  EXPECT_NE(Run("info --in"), 0);  // flag without a value
}

TEST_F(CliTest, RemotePortIsValidatedStrictly) {
  EXPECT_NE(Run("remote-info --name x"), 0);      // missing --port
  EXPECT_NE(Run("remote-info --port 99999"), 0);  // out of range
  EXPECT_NE(Run("remote-info --port abc"), 0);    // non-numeric
}

TEST_F(CliTest, HelpExitsZero) {
  EXPECT_EQ(Run("--help"), 0);
  EXPECT_EQ(Run("help"), 0);
  EXPECT_EQ(Run("compress --help"), 0);
  EXPECT_EQ(Run("remote-load --help"), 0);
}

TEST_F(CliTest, ScenarioSubcommandEvaluatesFamilies) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.02 --out " + dir_ +
                "/ps.bin --forest-out " + dir_ + "/fs.bin"),
            0);
  const std::string program =
      "'LET d = GRID(0.5, 1); SET PREFIX(plan) = d; SET * = 1;'";
  EXPECT_EQ(Run("scenario --in " + dir_ + "/ps.bin --expr " + program), 0);
  // Every registered backend and every shape serve the same subcommand.
  for (const std::string backend : {"naive", "compiled", "simd_batch", "jit"}) {
    EXPECT_EQ(Run("scenario --in " + dir_ + "/ps.bin --expr " + program +
                  " --eval-backend " + backend),
              0)
        << backend;
  }
  for (const std::string shape : {"values", "argmin", "argmax"}) {
    EXPECT_EQ(Run("scenario --in " + dir_ + "/ps.bin --expr " + program +
                  " --shape " + shape),
              0)
        << shape;
  }
  EXPECT_EQ(Run("scenario --in " + dir_ + "/ps.bin --expr " + program +
                " --shape topk --top-k 2"),
            0);
  // --expr-file is the other source; the same program from disk.
  std::string expr_file = dir_ + "/prog.scn";
  {
    std::ofstream out(expr_file);
    out << "LET d = GRID(0.5, 1);\nSET PREFIX(plan) = d;\nSET * = 1;\n";
  }
  EXPECT_EQ(Run("scenario --in " + dir_ + "/ps.bin --expr-file " + expr_file),
            0);
}

TEST_F(CliTest, ScenarioParseAndSemanticErrorsAreExit2) {
  ASSERT_EQ(Run("generate --workload telephony --scale 0.01 --out " + dir_ +
                "/pe2.bin"),
            0);
  // Parse error (caret diagnostic on stderr), semantic error (unknown
  // variable), type error: all exit 2, never a crash.
  EXPECT_EQ(ExitCode(Run("scenario --in " + dir_ +
                         "/pe2.bin --expr 'LET d = SWEEP(1 .. 2 STEP)'")),
            2);
  EXPECT_EQ(ExitCode(Run("scenario --in " + dir_ +
                         "/pe2.bin --expr 'SET ghost = 1;'")),
            2);
  EXPECT_EQ(ExitCode(Run("scenario --in " + dir_ +
                         "/pe2.bin --expr 'LET d = GRID(1); SET * = d < 1;'")),
            2);
  // remote-scenario pre-checks syntax locally: exit 2 without a server.
  EXPECT_EQ(ExitCode(Run("remote-scenario --port 1 --name a "
                         "--expr 'LET broken ='")),
            2);
}

TEST_F(CliTest, ScenarioFlagValidation) {
  // Flags are validated before any file is opened, so a missing input
  // artifact never masks the usage error.
  const std::string ok_expr = "--expr 'SET * = 1;'";
  EXPECT_EQ(ExitCode(Run("scenario " + ok_expr)), 2);  // missing --in
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin")), 2);  // no program
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin --expr 'SET * = 1;' "
                         "--expr-file also.scn")),
            2);  // both sources
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin " + ok_expr +
                         " --shape sideways")),
            2);  // unknown shape
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin " + ok_expr +
                         " --shape topk")),
            2);  // topk without --top-k
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin " + ok_expr +
                         " --shape topk --top-k 0")),
            2);  // zero k
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin " + ok_expr +
                         " --shape values --top-k 3")),
            2);  // --top-k outside topk
  EXPECT_EQ(ExitCode(Run("scenario --in nope.bin " + ok_expr +
                         " --eval-backend turbo")),
            2);  // unknown backend
  // remote-scenario shares the validators.
  EXPECT_EQ(ExitCode(Run("remote-scenario --port 1 --name a " + ok_expr +
                         " --shape topk")),
            2);
  EXPECT_EQ(ExitCode(Run("remote-scenario --port 1 --name a " + ok_expr +
                         " --algo opt")),
            2);  // --algo requires --bound
}

TEST_F(CliTest, UnknownWorkloadRejected) {
  EXPECT_NE(Run("generate --workload tpch-q99 --out " + dir_ + "/x.bin"),
            0);
}

}  // namespace
}  // namespace provabs
