// Tests for the executable-memory arena (jit/exec_arena.h): error paths,
// page-granular accounting, the W^X property of the final mapping, and
// actually executing code placed in it. The execution tests assemble tiny
// functions with the project's own encoder, so they double as an
// end-to-end check that encoder bytes really run — independent of the
// code generator's higher-level correctness battery.
//
// Everything that needs a live mapping is gated on ExecMemoryAvailable():
// on a hardened/noexec host the probe is false, Create must refuse, and
// that refusal path is what gets asserted instead.

#include "jit/exec_arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#if defined(__linux__)
#include <fstream>
#include <sstream>
#endif

#include "common/status.h"
#include "jit/x86_encoder.h"

#if PROVABS_JIT_SUPPORTED
#include <unistd.h>
#endif

namespace provabs {
namespace jit {
namespace {

TEST(ExecArenaTest, EmptyBlobIsInvalidArgument) {
  auto arena = ExecArena::Create(nullptr, 0);
  ASSERT_FALSE(arena.ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kInvalidArgument);
}

TEST(ExecArenaTest, UnavailableHostsRefuseRatherThanCrash) {
  if (ExecArena::ExecMemoryAvailable()) {
    GTEST_SKIP() << "host can map executable memory";
  }
  const uint8_t ret = 0xC3;
  auto arena = ExecArena::Create(&ret, 1);
  ASSERT_FALSE(arena.ok());
  EXPECT_EQ(arena.status().code(), StatusCode::kUnavailable);
}

#if PROVABS_JIT_SUPPORTED

TEST(ExecArenaTest, MappedBytesArePageRounded) {
  if (!ExecArena::ExecMemoryAvailable()) GTEST_SKIP() << "no exec memory";
  const long page_raw = sysconf(_SC_PAGESIZE);
  // Clamp inline (not via ASSERT) so the optimizer can see the bound and
  // -Werror=stringop-overflow accepts the page-sized vector fills below.
  const size_t page = page_raw > 0 ? static_cast<size_t>(page_raw) : 4096;

  // A one-byte blob still consumes a whole page.
  const uint8_t ret = 0xC3;
  auto tiny = ExecArena::Create(&ret, 1);
  ASSERT_TRUE(tiny.ok()) << tiny.status().ToString();
  EXPECT_EQ((*tiny)->code_bytes(), 1u);
  EXPECT_EQ((*tiny)->mapped_bytes(), page);

  // One byte past a page boundary rounds up to two pages.
  std::vector<uint8_t> blob(page + 1, 0xC3);
  auto spill = ExecArena::Create(blob.data(), blob.size());
  ASSERT_TRUE(spill.ok()) << spill.status().ToString();
  EXPECT_EQ((*spill)->code_bytes(), page + 1);
  EXPECT_EQ((*spill)->mapped_bytes(), 2 * page);

  // An exact page count does not over-round.
  blob.assign(page, 0xC3);
  auto exact = ExecArena::Create(blob.data(), blob.size());
  ASSERT_TRUE(exact.ok()) << exact.status().ToString();
  EXPECT_EQ((*exact)->mapped_bytes(), page);
}

TEST(ExecArenaTest, ExecutesEncodedFunction) {
  if (!ExecArena::ExecMemoryAvailable()) GTEST_SKIP() << "no exec memory";
  // double fn(const double* slots) { return slots[0] * slots[1] + 2.5; }
  // in the exact instruction vocabulary the code generator uses.
  X86Encoder e;
  e.MovsdLoad(Xmm::xmm0, Gp64::rdi, 0);
  e.MovsdLoad(Xmm::xmm1, Gp64::rdi, 8);
  e.Mulsd(Xmm::xmm0, Xmm::xmm1);
  uint64_t bits;
  const double constant = 2.5;
  std::memcpy(&bits, &constant, sizeof(bits));
  e.MovRaxImm64(bits);
  e.MovqFromRax(Xmm::xmm2);
  e.Addsd(Xmm::xmm0, Xmm::xmm2);
  e.Ret();

  auto arena = ExecArena::Create(e.code().data(), e.size());
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  using EvalFn = double (*)(const double*);
  auto fn = reinterpret_cast<EvalFn>(
      reinterpret_cast<uintptr_t>((*arena)->base()));
  const double slots[] = {3.0, 4.0};
  EXPECT_EQ(fn(slots), 3.0 * 4.0 + 2.5);
  const double negative[] = {-1.5, 2.0};
  EXPECT_EQ(fn(negative), -1.5 * 2.0 + 2.5);
}

#if defined(__linux__)
TEST(ExecArenaTest, FinalMappingIsExecNotWrite) {
  if (!ExecArena::ExecMemoryAvailable()) GTEST_SKIP() << "no exec memory";
  const uint8_t ret = 0xC3;
  auto arena = ExecArena::Create(&ret, 1);
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  const uintptr_t base = reinterpret_cast<uintptr_t>((*arena)->base());

  // Find the region in /proc/self/maps and assert its permissions are
  // exactly r-x: executable, and — the W^X half that matters — NOT
  // writable once callers can see the base pointer.
  std::ifstream maps("/proc/self/maps");
  ASSERT_TRUE(maps.is_open());
  std::string line;
  bool found = false;
  while (std::getline(maps, line)) {
    uintptr_t lo = 0, hi = 0;
    char perms[5] = {0};
    if (std::sscanf(line.c_str(), "%lx-%lx %4s", &lo, &hi, perms) != 3) {
      continue;
    }
    if (base < lo || base >= hi) continue;
    found = true;
    EXPECT_EQ(std::string(perms, 4), "r-xp") << line;
    break;
  }
  EXPECT_TRUE(found) << "arena mapping not present in /proc/self/maps";
}
#endif  // defined(__linux__)

#endif  // PROVABS_JIT_SUPPORTED

}  // namespace
}  // namespace jit
}  // namespace provabs
