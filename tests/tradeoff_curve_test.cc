#include "algo/tradeoff_curve.h"

#include <gtest/gtest.h>

#include <string>

#include "algo/optimal_single_tree.h"
#include "common/random.h"
#include "core/polynomial.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

class TradeoffCurveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    m1_ = vars_.Intern("m1");
    m3_ = vars_.Intern("m3");
    AbstractionTree full = MakeFigure2PlansTree(vars_);
    polys_ = MakePolys();
    auto pruned = full.PruneToPolynomials(polys_);
    ASSERT_TRUE(pruned.ok());
    forest_.AddTree(std::move(pruned).value());
  }

  /// The {P1, P2} polynomials of Example 13.
  PolynomialSet MakePolys() {
    auto v = [&](const char* n) { return vars_.Find(n); };
    PolynomialSet polys;
    polys.Add(Polynomial::FromMonomials({
        Monomial(208.8, {{v("p1"), 1}, {m1_, 1}}),
        Monomial(240.0, {{v("p1"), 1}, {m3_, 1}}),
        Monomial(127.4, {{v("f1"), 1}, {m1_, 1}}),
        Monomial(114.45, {{v("f1"), 1}, {m3_, 1}}),
        Monomial(75.9, {{v("y1"), 1}, {m1_, 1}}),
        Monomial(72.5, {{v("y1"), 1}, {m3_, 1}}),
        Monomial(42.0, {{v("v"), 1}, {m1_, 1}}),
        Monomial(24.2, {{v("v"), 1}, {m3_, 1}}),
    }));
    polys.Add(Polynomial::FromMonomials({
        Monomial(77.9, {{v("b1"), 1}, {m1_, 1}}),
        Monomial(80.5, {{v("b1"), 1}, {m3_, 1}}),
        Monomial(52.2, {{v("e"), 1}, {m1_, 1}}),
        Monomial(56.5, {{v("e"), 1}, {m3_, 1}}),
        Monomial(69.7, {{v("b2"), 1}, {m1_, 1}}),
        Monomial(100.65, {{v("b2"), 1}, {m3_, 1}}),
    }));
    return polys;
  }

  VariableTable vars_;
  VariableId m1_, m3_;
  PolynomialSet polys_;
  AbstractionForest forest_;
};

// The paper's Example 13 derives A_Plans = [0,⊥,1,⊥,2,3] for k ≤ 5; the
// full profile extends it: ML 0→VL 0, 2→1, 4→2, 6→3, 8→4(?), 10→6(root).
TEST_F(TradeoffCurveTest, Example13Curve) {
  auto curve = OptimalTradeoffCurve(polys_, forest_, 0);
  ASSERT_TRUE(curve.ok()) << curve.status().ToString();
  ASSERT_FALSE(curve->empty());

  // Monotone Pareto shape.
  for (size_t i = 1; i < curve->size(); ++i) {
    EXPECT_LT((*curve)[i].size_m, (*curve)[i - 1].size_m);
    EXPECT_GT((*curve)[i].variable_loss, (*curve)[i - 1].variable_loss);
  }
  // Endpoints: zero loss at full size, maximal compression at the root cut
  // (4 monomials, 6 variables lost).
  EXPECT_EQ(curve->front().size_m, 14u);
  EXPECT_EQ(curve->front().variable_loss, 0u);
  EXPECT_EQ(curve->back().size_m, 4u);
  EXPECT_EQ(curve->back().variable_loss, 6u);
  // The Example 13 point: 8 monomials (ML 6) at VL 3.
  bool found = false;
  for (const TradeoffPoint& p : *curve) {
    if (p.size_m == 8) {
      EXPECT_EQ(p.variable_loss, 3u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// Each curve point's variable loss equals the OptimalSingleTree answer for
// that exact bound.
TEST_F(TradeoffCurveTest, CurveAgreesWithPerBoundRuns) {
  auto curve = OptimalTradeoffCurve(polys_, forest_, 0);
  ASSERT_TRUE(curve.ok());
  for (const TradeoffPoint& p : *curve) {
    auto opt = OptimalSingleTree(polys_, forest_, 0, p.size_m);
    ASSERT_TRUE(opt.ok()) << "bound " << p.size_m;
    EXPECT_EQ(opt->loss.variable_loss, p.variable_loss)
        << "bound " << p.size_m;
  }
}

// Bounds strictly between curve points cost as much as the next achievable
// point (the curve is the complete answer set).
TEST_F(TradeoffCurveTest, BoundsBetweenPointsRoundDown) {
  auto curve = OptimalTradeoffCurve(polys_, forest_, 0);
  ASSERT_TRUE(curve.ok());
  ASSERT_GE(curve->size(), 2u);
  for (size_t i = 1; i < curve->size(); ++i) {
    size_t between = ((*curve)[i - 1].size_m + (*curve)[i].size_m) / 2;
    if (between == (*curve)[i - 1].size_m) continue;
    auto opt = OptimalSingleTree(polys_, forest_, 0, between);
    ASSERT_TRUE(opt.ok());
    EXPECT_EQ(opt->loss.variable_loss, (*curve)[i].variable_loss);
  }
}

TEST_F(TradeoffCurveTest, BelowCurveIsInfeasible) {
  auto curve = OptimalTradeoffCurve(polys_, forest_, 0);
  ASSERT_TRUE(curve.ok());
  size_t min_size = curve->back().size_m;
  auto opt = OptimalSingleTree(polys_, forest_, 0, min_size - 1);
  EXPECT_EQ(opt.status().code(), StatusCode::kInfeasible);
}

TEST_F(TradeoffCurveTest, RejectsBadTreeIndex) {
  EXPECT_EQ(OptimalTradeoffCurve(polys_, forest_, 5).status().code(),
            StatusCode::kInvalidArgument);
}

// Property: on random instances the curve matches a sweep of
// OptimalSingleTree over every bound.
class TradeoffPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TradeoffPropertyTest, CurveMatchesBoundSweep) {
  Rng rng(12000 + GetParam());
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 9; ++i) {
    leaves.push_back(vars.Intern("c" + std::to_string(i)));
  }
  VariableId other = vars.Intern("oo");
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {3}, "tc"));

  std::vector<Monomial> terms;
  for (int m = 0; m < 25; ++m) {
    std::vector<Factor> f;
    f.push_back({leaves[rng.Uniform(leaves.size())], 1});
    if (rng.Bernoulli(0.5)) f.push_back({other, 1});
    terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
  }
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(std::move(terms)));

  auto curve = OptimalTradeoffCurve(polys, forest, 0);
  ASSERT_TRUE(curve.ok());
  for (size_t b = curve->back().size_m; b <= polys.SizeM(); ++b) {
    // First curve point with size_m <= b has the minimal loss for bound b
    // (the list is size-descending, loss-ascending).
    size_t expected = SIZE_MAX;
    for (const TradeoffPoint& p : *curve) {
      if (p.size_m <= b) {
        expected = p.variable_loss;
        break;
      }
    }
    auto opt = OptimalSingleTree(polys, forest, 0, b);
    ASSERT_TRUE(opt.ok()) << "bound " << b;
    EXPECT_EQ(opt->loss.variable_loss, expected) << "bound " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TradeoffPropertyTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace provabs
