// Cross-backend differential battery for the evaluation-backend registry
// (core/evaluation_backend.h). Naive per-polynomial Valuation::Evaluate is
// the reference defining the canonical summation order; every registered
// backend — naive, compiled, simd_batch with scalar lanes forced,
// simd_batch with AVX2 lanes when the host has them, the jit with its
// compiled-kernel fallback forced, and the jit's emitted native code where
// executable memory is usable — must reproduce it
// BITWISE (IEEE-754 bit comparison, never tolerance): floating-point
// add/mul are not associative, so exact equality certifies the identical
// operation sequence. Coverage: exponents > 1, unassigned variables
// (default 1.0), variables assigned but absent from the set, empty
// polynomials, empty sets, ragged batch sizes around the SIMD lane width,
// and post-abstraction sets (tree cuts and interned prox-group views).
//
// Also the home of the slot-mapping regression tests: a DenseValuation
// materialized against one compiled form must be rejected (not silently
// mis-indexed) when evaluated under another — the copy-then-Add hazard the
// fingerprint scheme exists for.

#include "core/evaluation_backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algo/compressor.h"
#include "common/random.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "jit/jit_backend.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// The reference: per-polynomial naive Evaluate (Valuation::EvaluateAll
/// itself routes through the registry, so the reference must not use it).
std::vector<double> NaiveEvaluateAll(const Valuation& val,
                                     const PolynomialSet& polys) {
  std::vector<double> out;
  out.reserve(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    out.push_back(val.Evaluate(p));
  }
  return out;
}

void ExpectBitwiseEqual(const std::vector<double>& expected,
                        const std::vector<double>& actual,
                        const std::string& which) {
  ASSERT_EQ(expected.size(), actual.size()) << which;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(Bits(expected[i]), Bits(actual[i]))
        << which << ": polynomial " << i << " expected " << expected[i]
        << " got " << actual[i];
  }
}

/// Runs one backend over the whole scenario batch in a single
/// EvaluateBatch call and bit-compares every scenario against the naive
/// reference.
void RunBackendDifferential(const EvaluationBackend& backend,
                            const PolynomialSet& polys,
                            const std::vector<Valuation>& scenarios,
                            const std::string& which) {
  auto compiled = polys.Compiled();
  const size_t n = scenarios.size();
  std::vector<DenseValuation> dense;
  dense.reserve(n);
  for (const Valuation& val : scenarios) {
    dense.push_back(compiled->MaterializeValuation(val));
  }
  std::vector<const DenseValuation*> dense_ptrs(n);
  std::vector<std::vector<double>> out(
      n, std::vector<double>(compiled->poly_count()));
  std::vector<double*> out_ptrs(n);
  for (size_t s = 0; s < n; ++s) {
    dense_ptrs[s] = &dense[s];
    out_ptrs[s] = out[s].data();
  }
  Status status =
      backend.EvaluateBatch(*compiled, 0, compiled->poly_count(),
                            dense_ptrs.data(), out_ptrs.data(), n);
  ASSERT_TRUE(status.ok()) << which << ": " << status.ToString();
  for (size_t s = 0; s < n; ++s) {
    ExpectBitwiseEqual(NaiveEvaluateAll(scenarios[s], polys), out[s],
                       which + " scenario " + std::to_string(s));
  }
}

/// Every backend instance the battery pins: the four registered built-ins
/// plus forced variants — a scalar-lane simd_batch (so the lane/transpose/
/// remainder logic is covered even when the host would auto-pick AVX2) and
/// a fallback-forced jit (so the compiled-kernel degradation path is
/// covered even where emitted code runs natively; the registered jit
/// instance covers the native path whenever the host permits it and CI's
/// NOJIT-forced run covers the env-knob route through the same fallback).
void RunAllBackendsDifferential(const PolynomialSet& polys,
                                const std::vector<Valuation>& scenarios) {
  const EvaluationBackendRegistry& registry =
      EvaluationBackendRegistry::Default();
  for (const std::string& name : registry.Names()) {
    RunBackendDifferential(*registry.Find(name), polys, scenarios,
                           "registered '" + name + "'");
  }
  SimdBatchBackend scalar(SimdBatchBackend::Mode::kForceScalar);
  EXPECT_FALSE(scalar.using_avx2());
  RunBackendDifferential(scalar, polys, scenarios, "simd_batch(scalar)");
  SimdBatchBackend auto_lanes(SimdBatchBackend::Mode::kAuto);
  RunBackendDifferential(
      auto_lanes, polys, scenarios,
      auto_lanes.using_avx2() ? "simd_batch(avx2)" : "simd_batch(auto)");
  JitBackend jit_fallback(JitBackend::Mode::kForceFallback);
  EXPECT_FALSE(jit_fallback.Available());
  RunBackendDifferential(jit_fallback, polys, scenarios, "jit(fallback)");
  if (polys.count() > 0 && !scenarios.empty()) {
    EXPECT_GT(jit_fallback.stats().fallback_forced, 0u);
  }
  JitBackend jit_auto(JitBackend::Mode::kAuto);
  RunBackendDifferential(jit_auto, polys, scenarios,
                         JitNativeActive() ? "jit(native)" : "jit(nojit)");
}

PolynomialSet MakeRandomSet(Rng& rng, const std::vector<VariableId>& ids) {
  PolynomialSet polys;
  const size_t num_polys = rng.Uniform(9);  // 0 = empty set case
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = rng.Uniform(14);  // 0 = empty polynomial case
    for (size_t t = 0; t < n_terms; ++t) {
      std::vector<Factor> factors;
      const size_t n_factors = rng.Uniform(5);
      for (size_t f = 0; f < n_factors; ++f) {
        factors.push_back(
            {ids[rng.Uniform(ids.size())],
             static_cast<uint32_t>(1 + rng.Uniform(4))});  // exponents 1..4
      }
      terms.emplace_back(rng.UniformReal(-10.0, 10.0), std::move(factors));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  return polys;
}

// --------------------------------------------------- registry units -----

TEST(EvaluationBackendRegistryTest, DefaultRegistersTheBuiltins) {
  const EvaluationBackendRegistry& registry =
      EvaluationBackendRegistry::Default();
  EXPECT_NE(registry.Find("naive"), nullptr);
  EXPECT_NE(registry.Find("compiled"), nullptr);
  EXPECT_NE(registry.Find("simd_batch"), nullptr);
  EXPECT_NE(registry.Find("jit"), nullptr);
  // Names come back sorted, so usage/error text is stable.
  EXPECT_EQ(registry.NamesCsv(), "compiled, jit, naive, simd_batch");

  const EvaluationBackend* simd = registry.Find("simd_batch");
  EXPECT_TRUE(simd->info().vectorized);
  EXPECT_TRUE(simd->info().deterministic);
  EXPECT_GT(simd->info().preferred_batch, 1u);
  EXPECT_FALSE(registry.Find("compiled")->info().vectorized);

  const EvaluationBackend* jit = registry.Find("jit");
  EXPECT_TRUE(jit->info().deterministic);
  EXPECT_FALSE(jit->info().vectorized);  // scalar per scenario, just faster
  EXPECT_EQ(jit->info().preferred_batch, 1u);

  // The documented auto-routing preference order is encoded in the tiers.
  EXPECT_GT(jit->info().tier, simd->info().tier);
  EXPECT_GT(simd->info().tier, registry.Find("compiled")->info().tier);
  EXPECT_GT(registry.Find("compiled")->info().tier,
            registry.Find("naive")->info().tier);

  // Every built-in except jit is unconditionally available; jit's
  // availability is the host's to decide (never true when forced off).
  EXPECT_TRUE(registry.Find("naive")->Available());
  EXPECT_TRUE(registry.Find("compiled")->Available());
  EXPECT_TRUE(registry.Find("simd_batch")->Available());
  EXPECT_EQ(jit->Available(), JitNativeActive());
}

TEST(EvaluationBackendRegistryTest, DuplicateNamesAreRejected) {
  EvaluationBackendRegistry registry;
  ASSERT_TRUE(RegisterBuiltinEvaluationBackends(registry).ok());
  Status dup = registry.Register(std::make_unique<SimdBatchBackend>());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(dup.message().find("'simd_batch' is already registered"),
            std::string::npos)
      << dup.message();
  EXPECT_FALSE(registry.Register(nullptr).ok());
}

TEST(EvaluationBackendRegistryTest, UnknownNameListsTheRegisteredSet) {
  auto resolved = EvaluationBackendRegistry::Default().Resolve("turbo");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(resolved.status().message().find(
                "unknown evaluation backend 'turbo'"),
            std::string::npos)
      << resolved.status().message();
  EXPECT_NE(
      resolved.status().message().find("compiled, jit, naive, simd_batch"),
      std::string::npos)
      << resolved.status().message();
}

TEST(EvaluationBackendRegistryTest, ResolveForBatchAutoPolicy) {
  const EvaluationBackendRegistry& registry =
      EvaluationBackendRegistry::Default();
  const uint32_t width = registry.Find("simd_batch")->info().preferred_batch;

  // Auto routing picks the highest available tier. When the jit can emit
  // native code (executable memory usable, not force-disabled) it wins at
  // every batch size; otherwise routing degrades to the pre-jit policy:
  // compiled below the vectorized width, simd_batch at and beyond it. Both
  // branches are exercised in CI (a NOJIT-forced job runs this same test).
  const bool jit_active = JitNativeActive();
  // Batch 0 makes nothing eligible (every preferred_batch is >= 1), so the
  // auto policy takes its "compiled" fallback no matter what is available.
  {
    auto backend = registry.ResolveForBatch("", 0);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ((*backend)->info().name, "compiled");
  }
  for (size_t batch : {size_t{1}, size_t{width - 1}}) {
    auto backend = registry.ResolveForBatch("", batch);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ((*backend)->info().name, jit_active ? "jit" : "compiled")
        << "batch " << batch;
  }
  for (size_t batch : {size_t{width}, size_t{width + 1}, size_t{10 * width}}) {
    auto backend = registry.ResolveForBatch("", batch);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ((*backend)->info().name, jit_active ? "jit" : "simd_batch")
        << "batch " << batch;
  }
  // An explicit name resolves strictly regardless of batch size — including
  // "jit" when unavailable (it degrades internally rather than failing).
  auto naive = registry.ResolveForBatch("naive", 1000);
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ((*naive)->info().name, "naive");
  auto jit = registry.ResolveForBatch("jit", 1000);
  ASSERT_TRUE(jit.ok());
  EXPECT_EQ((*jit)->info().name, "jit");

  // An empty registry is the only hard failure of the auto policy.
  EvaluationBackendRegistry empty;
  EXPECT_FALSE(empty.ResolveForBatch("", 8).ok());
}

TEST(EvaluationBackendRegistryTest, ForceNojitDegradesAutoRouting) {
  // With PROVABS_EVAL_FORCE_NOJIT set the jit backend reports unavailable
  // and the auto policy lands exactly where it did before the jit existed.
  // A fresh registry keeps the probe independent of Default()'s state.
  const char* saved = getenv("PROVABS_EVAL_FORCE_NOJIT");
  std::string saved_value = saved ? saved : "";
  setenv("PROVABS_EVAL_FORCE_NOJIT", "1", /*overwrite=*/1);

  EvaluationBackendRegistry registry;
  ASSERT_TRUE(RegisterBuiltinEvaluationBackends(registry).ok());
  EXPECT_FALSE(registry.Find("jit")->Available());
  const uint32_t width = registry.Find("simd_batch")->info().preferred_batch;

  auto single = registry.ResolveForBatch("", 1);
  ASSERT_TRUE(single.ok());
  EXPECT_EQ((*single)->info().name, "compiled");
  auto batched = registry.ResolveForBatch("", width);
  ASSERT_TRUE(batched.ok());
  EXPECT_EQ((*batched)->info().name, "simd_batch");

  // Explicit selection still works; the backend degrades internally.
  auto explicit_jit = registry.ResolveForBatch("jit", 1);
  ASSERT_TRUE(explicit_jit.ok());
  EXPECT_EQ((*explicit_jit)->info().name, "jit");

  if (saved) {
    setenv("PROVABS_EVAL_FORCE_NOJIT", saved_value.c_str(), /*overwrite=*/1);
  } else {
    unsetenv("PROVABS_EVAL_FORCE_NOJIT");
  }
}

// ----------------------------------- slot-mapping (fingerprint) guard ---

// The regression the fingerprint scheme exists for: copy a set (copies
// share the compiled snapshot), materialize a valuation, then mutate the
// original and recompile. The stale valuation indexes the OLD slot
// mapping; evaluating it under the new form must fail loudly instead of
// mis-indexing (before the fix this read wrong slots — or out of bounds
// once the new form had more slots).
TEST(EvaluationBackendFingerprintTest, StaleValuationAfterCopyAndAddFails) {
  VariableTable vars;
  VariableId x = vars.Intern("x");
  VariableId y = vars.Intern("y");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(2.0, {{x, 1}})}));

  PolynomialSet copy = polys;
  auto old_form = copy.Compiled();
  Valuation val;
  val.Set(x, 3.0);
  DenseValuation stale = old_form->MaterializeValuation(val);
  EXPECT_EQ(stale.source_fingerprint(), old_form->fingerprint());

  // Mutate the original: its recompiled form has a different slot mapping
  // (y takes slot 0 of the new monomial's factors) and a new fingerprint.
  polys.Add(Polynomial::FromMonomials({Monomial(5.0, {{y, 1}, {x, 1}})}));
  auto new_form = polys.Compiled();
  ASSERT_NE(new_form->fingerprint(), old_form->fingerprint());

  const EvaluationBackend* backend =
      EvaluationBackendRegistry::Default().Find("compiled");
  double out_slot = 0;
  const DenseValuation* scenario = &stale;
  double* out_ptr = &out_slot;
  Status status = backend->EvaluateBatch(*new_form, 0, 1, &scenario,
                                         &out_ptr, 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("different compiled form"),
            std::string::npos)
      << status.message();

  // Against the form it was materialized from, the same valuation is fine
  // — the snapshot outlives the mutation.
  Status ok = backend->EvaluateBatch(*old_form, 0, 1, &scenario, &out_ptr, 1);
  ASSERT_TRUE(ok.ok()) << ok.ToString();
  EXPECT_EQ(out_slot, 6.0);
}

TEST(EvaluationBackendFingerprintTest, CopiesShareTheCompiledSnapshot) {
  VariableTable vars;
  VariableId x = vars.Intern("x");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials({Monomial(1.0, {{x, 2}})}));
  auto form = polys.Compiled();
  DenseValuation dense = form->MaterializeValuation(Valuation{});

  // A copy shares the snapshot, so the valuation stays valid for it.
  PolynomialSet copy = polys;
  auto copy_form = copy.Compiled();
  EXPECT_EQ(copy_form.get(), form.get());
  EXPECT_EQ(copy_form->fingerprint(), dense.source_fingerprint());

  // Identical CONTENT is not enough: an independently compiled twin has
  // its own fingerprint, because only the same snapshot guarantees the
  // same slot mapping.
  PolynomialSet twin;
  twin.Add(Polynomial::FromMonomials({Monomial(1.0, {{x, 2}})}));
  EXPECT_NE(twin.Compiled()->fingerprint(), form->fingerprint());
}

TEST(EvaluationBackendTest, RangeAndPointerValidation) {
  VariableTable vars;
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars.Intern("x"), 1}})}));
  auto compiled = polys.Compiled();
  DenseValuation dense = compiled->MaterializeValuation(Valuation{});
  const DenseValuation* scenario = &dense;
  double out_slot = 0;
  double* out_ptr = &out_slot;
  const EvaluationBackend& backend =
      *EvaluationBackendRegistry::Default().Find("simd_batch");

  EXPECT_EQ(backend.EvaluateBatch(*compiled, 0, 2, &scenario, &out_ptr, 1)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(backend.EvaluateBatch(*compiled, 1, 0, &scenario, &out_ptr, 1)
                .code(),
            StatusCode::kInvalidArgument);
  const DenseValuation* null_scenario = nullptr;
  EXPECT_EQ(
      backend.EvaluateBatch(*compiled, 0, 1, &null_scenario, &out_ptr, 1)
          .code(),
      StatusCode::kInvalidArgument);
  // Empty ranges and empty batches are no-ops, not errors.
  EXPECT_TRUE(
      backend.EvaluateBatch(*compiled, 0, 0, &scenario, &out_ptr, 1).ok());
  EXPECT_TRUE(
      backend.EvaluateBatch(*compiled, 0, 1, nullptr, nullptr, 0).ok());
}

// ------------------------------------------- randomized differential ----

class BackendDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(BackendDifferentialTest, AllBackendsBitwiseIdenticalToNaive) {
  Rng rng(6200 + GetParam());
  VariableTable vars;
  const size_t num_vars = 3 + rng.Uniform(30);
  std::vector<VariableId> ids;
  for (size_t i = 0; i < num_vars; ++i) {
    ids.push_back(vars.Intern("v" + std::to_string(i)));
  }
  PolynomialSet polys = MakeRandomSet(rng, ids);

  // Ragged batch sizes straddling the SIMD lane width (4) and the
  // preferred batch (8): full groups, remainder groups, single scenarios.
  const size_t batch = 1 + rng.Uniform(11);
  std::vector<Valuation> scenarios;
  for (size_t s = 0; s < batch; ++s) {
    Valuation val;
    // A random subset assigned (some scenarios assign nothing), plus a
    // variable outside the set entirely.
    for (VariableId id : ids) {
      if (rng.Bernoulli(0.6)) val.Set(id, rng.UniformReal(-2.0, 2.0));
    }
    val.Set(vars.Intern("outside"), 99.0);
    scenarios.push_back(std::move(val));
  }

  RunAllBackendsDifferential(polys, scenarios);

  // The convenience entry point agrees too, under both auto and explicit
  // routing.
  for (const std::string& name : {std::string(), std::string("simd_batch")}) {
    auto results = EvaluateScenarios(polys, scenarios, name);
    ASSERT_TRUE(results.ok()) << results.status().ToString();
    ASSERT_EQ(results->size(), scenarios.size());
    for (size_t s = 0; s < scenarios.size(); ++s) {
      ExpectBitwiseEqual(NaiveEvaluateAll(scenarios[s], polys), (*results)[s],
                         "EvaluateScenarios('" + name + "')");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSets, BackendDifferentialTest,
                         ::testing::Range(0, 24));

TEST(EvaluateScenariosTest, UnknownBackendFailsListingRegistered) {
  PolynomialSet polys;
  auto results = EvaluateScenarios(polys, {Valuation{}}, "turbo");
  ASSERT_FALSE(results.ok());
  EXPECT_NE(
      results.status().message().find("compiled, jit, naive, simd_batch"),
      std::string::npos);
}

// Post-abstraction coverage: backends must agree with naive on sets
// produced by the compression algorithms — tree cuts substitute
// meta-variables in, and prox's InternGrouping introduces freshly interned
// group variables whose ids are far from the original dense range.
TEST(BackendAbstractionTest, CutAndGroupingViewsStayBitwiseEqual) {
  Rng rng(888);
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 16; ++i) {
    leaves.push_back(vars.Intern("x" + std::to_string(i)));
  }
  VariableId m = vars.Intern("m");

  PolynomialSet polys;
  for (int p = 0; p < 4; ++p) {
    std::vector<Monomial> terms;
    for (int t = 0; t < 20; ++t) {
      std::vector<Factor> f;
      f.push_back({leaves[rng.Uniform(leaves.size())],
                   static_cast<uint32_t>(1 + rng.Uniform(2))});
      if (rng.Bernoulli(0.5)) f.push_back({m, 1});
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }

  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {4, 2}, "EB_"));
  ASSERT_TRUE(forest.CheckCompatible(polys).ok());
  CompressOptions options;
  options.bound = polys.SizeM() / 2;

  auto greedy = CompressorRegistry::Default().Find("greedy")->Compress(
      polys, forest, options);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  PolynomialSet cut_view = greedy->Apply(forest, polys);

  auto prox = CompressorRegistry::Default().Find("prox")->Compress(
      polys, forest, options);
  ASSERT_TRUE(prox.ok()) << prox.status().ToString();
  prox->InternGrouping(vars);
  PolynomialSet group_view = prox->Apply(forest, polys);

  for (const PolynomialSet* view : {&cut_view, &group_view}) {
    std::vector<Valuation> scenarios;
    for (int s = 0; s < 9; ++s) {
      Valuation val;
      for (VariableId v : view->Variables()) {
        if (rng.Bernoulli(0.7)) val.Set(v, rng.UniformReal(0.25, 1.75));
      }
      scenarios.push_back(std::move(val));
    }
    RunAllBackendsDifferential(*view, scenarios);
  }
}

}  // namespace
}  // namespace provabs
