#include "algo/brute_force.h"

#include <gtest/gtest.h>

#include "abstraction/cut_counter.h"
#include "core/polynomial.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

class BruteForceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    m1_ = vars_.Intern("m1");
    forest_.AddTree(MakeFigure2PlansTree(vars_));
    polys_.Add(Polynomial::FromMonomials({
        Monomial(1.0, {{vars_.Find("b1"), 1}, {m1_, 1}}),
        Monomial(2.0, {{vars_.Find("b2"), 1}, {m1_, 1}}),
        Monomial(3.0, {{vars_.Find("e"), 1}, {m1_, 1}}),
        Monomial(4.0, {{vars_.Find("p1"), 1}, {m1_, 1}}),
    }));
  }

  VariableTable vars_;
  VariableId m1_;
  AbstractionForest forest_;
  PolynomialSet polys_;
};

TEST_F(BruteForceTest, FindsOptimumOnSmallInstance) {
  // B = 3 needs one merge; grouping SB = {b1, b2} costs 1 variable, which
  // is minimal.
  auto result = BruteForce(polys_, forest_, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->adequate);
  EXPECT_EQ(result->loss.monomial_loss, 1u);
  EXPECT_EQ(result->loss.variable_loss, 1u);
}

TEST_F(BruteForceTest, ExactBoundZeroLoss) {
  auto result = BruteForce(polys_, forest_, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->loss.monomial_loss, 0u);
  EXPECT_EQ(result->loss.variable_loss, 0u);
}

TEST_F(BruteForceTest, InfeasibleWhenBelowMaxCompression) {
  // Root cut leaves one monomial Plans·m1; B = 1 feasible...
  auto ok = BruteForce(polys_, forest_, 1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->loss.monomial_loss, 3u);
}

TEST_F(BruteForceTest, EnumeratesExactlyTheCutSpace) {
  // The Figure 2 tree has 31 cuts; a cut cap below that must refuse.
  BruteForceOptions opts;
  opts.max_cuts = 30;
  auto result = BruteForce(polys_, forest_, 3, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  opts.max_cuts = 31;
  EXPECT_TRUE(BruteForce(polys_, forest_, 3, opts).ok());
}

TEST_F(BruteForceTest, MultiTreeCartesianProduct) {
  AbstractionForest forest2;
  forest2.AddTree(MakeFigure2PlansTree(vars_));
  forest2.AddTree(MakeFigure3MonthsTree(vars_, 6));
  ASSERT_TRUE(forest2.Validate().ok());
  // 31 cuts × (1 + 2·2) cuts = 155 combinations; just confirm it runs and
  // returns a valid cut.
  auto result = BruteForce(polys_, forest2, 3);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->vvs.Validate(forest2).ok());
}

TEST_F(BruteForceTest, ResultLossIsConsistent) {
  auto result = BruteForce(polys_, forest_, 2);
  ASSERT_TRUE(result.ok());
  LossReport recheck = ComputeLossNaive(polys_, forest_, result->vvs);
  EXPECT_EQ(recheck.monomial_loss, result->loss.monomial_loss);
  EXPECT_EQ(recheck.variable_loss, result->loss.variable_loss);
}

TEST_F(BruteForceTest, RejectsZeroBound) {
  EXPECT_EQ(BruteForce(polys_, forest_, 0).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace provabs
