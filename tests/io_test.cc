#include "io/serializer.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "circuit/factorize.h"
#include "core/valuation.h"
#include "io/byte_stream.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

// -------------------------------------------------------------- streams --

TEST(ByteStreamTest, VarintRoundTrip) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1ull << 32,
                             0xFFFFFFFFFFFFFFFFull};
  for (uint64_t v : values) w.PutVarint(v);
  ByteReader r(w.buffer());
  for (uint64_t v : values) {
    auto got = r.GetVarint();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, v);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteStreamTest, DoubleRoundTrip) {
  ByteWriter w;
  w.PutDouble(3.14159);
  w.PutDouble(-0.0);
  ByteReader r(w.buffer());
  EXPECT_DOUBLE_EQ(*r.GetDouble(), 3.14159);
  EXPECT_DOUBLE_EQ(*r.GetDouble(), -0.0);
}

TEST(ByteStreamTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  ByteReader r(w.buffer());
  EXPECT_EQ(*r.GetString(), "hello");
  EXPECT_EQ(*r.GetString(), "");
}

TEST(ByteStreamTest, TruncationDetected) {
  ByteWriter w;
  w.PutDouble(1.0);
  std::string data = w.buffer().substr(0, 4);
  ByteReader r(data);
  EXPECT_FALSE(r.GetDouble().ok());
}

TEST(ByteStreamTest, TruncatedVarintDetected) {
  std::string data = "\xFF";  // Continuation bit set, nothing follows.
  ByteReader r(data);
  EXPECT_FALSE(r.GetVarint().ok());
}

TEST(ByteStreamTest, OversizedStringDetected) {
  ByteWriter w;
  w.PutVarint(1000);  // Claims 1000 bytes follow...
  w.PutU8('x');       // ...but only one does.
  ByteReader r(w.buffer());
  EXPECT_FALSE(r.GetString().ok());
}

// ---------------------------------------------------------- polynomials --

class SerializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ex_ = MakeRunningExample(vars_);
    polys_ = RunRunningExampleQuery(ex_);
  }

  VariableTable vars_;
  RunningExample ex_;
  PolynomialSet polys_;
};

TEST_F(SerializerTest, PolynomialSetRoundTripSameTable) {
  std::string data = SerializePolynomialSet(polys_, vars_);
  auto parsed = DeserializePolynomialSet(data, vars_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->count(), polys_.count());
  for (size_t i = 0; i < polys_.count(); ++i) {
    EXPECT_TRUE((*parsed)[i] == polys_[i]);
  }
}

TEST_F(SerializerTest, PolynomialSetRoundTripFreshTable) {
  // The reader's variable table assigns different ids; names must carry
  // the identity.
  std::string data = SerializePolynomialSet(polys_, vars_);
  VariableTable fresh;
  fresh.Intern("unrelated0");  // Skew the id space.
  fresh.Intern("unrelated1");
  auto parsed = DeserializePolynomialSet(data, fresh);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->SizeM(), polys_.SizeM());
  EXPECT_EQ(parsed->SizeV(), polys_.SizeV());
  // The p1·m1 coefficient survives the id remap.
  VariableId p1 = fresh.Find("p1");
  VariableId m1 = fresh.Find("m1");
  ASSERT_NE(p1, kInvalidVariable);
  bool found = false;
  for (const Polynomial& p : parsed->polynomials()) {
    for (const Monomial& m : p.monomials()) {
      if (m.Contains(p1) && m.Contains(m1)) {
        EXPECT_NEAR(m.coefficient(), 208.8, 1e-9);
        found = true;
      }
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SerializerTest, EmptySetRoundTrip) {
  PolynomialSet empty;
  std::string data = SerializePolynomialSet(empty, vars_);
  auto parsed = DeserializePolynomialSet(data, vars_);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->count(), 0u);
}

TEST_F(SerializerTest, RejectsBadMagic) {
  std::string data = SerializePolynomialSet(polys_, vars_);
  data[0] = 'X';
  EXPECT_FALSE(DeserializePolynomialSet(data, vars_).ok());
}

TEST_F(SerializerTest, RejectsWrongKind) {
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars_));
  std::string data = SerializeForest(forest, vars_);
  EXPECT_FALSE(DeserializePolynomialSet(data, vars_).ok());
}

TEST_F(SerializerTest, RejectsTruncatedPayload) {
  std::string data = SerializePolynomialSet(polys_, vars_);
  for (size_t cut : {data.size() / 4, data.size() / 2, data.size() - 1}) {
    EXPECT_FALSE(
        DeserializePolynomialSet(std::string_view(data).substr(0, cut),
                                 vars_)
            .ok())
        << "cut at " << cut;
  }
}

// --------------------------------------------------------------- forests --

TEST_F(SerializerTest, ForestRoundTrip) {
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars_));
  forest.AddTree(MakeFigure3MonthsTree(vars_, 12));
  std::string data = SerializeForest(forest, vars_);

  VariableTable fresh;
  auto parsed = DeserializeForest(data, fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->tree_count(), 2u);
  EXPECT_EQ(parsed->tree(0).node_count(), forest.tree(0).node_count());
  EXPECT_EQ(parsed->tree(1).node_count(), forest.tree(1).node_count());
  EXPECT_EQ(parsed->tree(0).leaves().size(),
            forest.tree(0).leaves().size());
  EXPECT_TRUE(parsed->Validate().ok());
  // Structure preserved: SB still has two children named b1, b2.
  NodeRef sb = parsed->FindLabel(fresh.Find("SB"));
  ASSERT_NE(sb.tree, AbstractionForest::kInvalidTreeIndex);
  EXPECT_EQ(parsed->tree(sb.tree).node(sb.node).children.size(), 2u);
}

TEST_F(SerializerTest, ForestRejectsCorruptParentOrder) {
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars_));
  std::string data = SerializeForest(forest, vars_);
  // Flip a byte somewhere in the payload; the reader must error out, not
  // crash. (Exhaustive flip of every byte.)
  for (size_t i = 6; i < data.size(); ++i) {
    std::string corrupt = data;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x80);
    VariableTable fresh;
    auto parsed = DeserializeForest(corrupt, fresh);
    // Either a clean parse (the flip hit a name byte) or a clean error.
    if (parsed.ok()) {
      EXPECT_TRUE(parsed->Validate().ok());
    }
  }
}

// ------------------------------------------------------------------ VVS --

TEST_F(SerializerTest, VvsRoundTrip) {
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars_));
  ValidVariableSet vvs;
  vvs.Add(forest.FindLabel(vars_.Find("Business")));
  vvs.Add(forest.FindLabel(vars_.Find("Special")));
  vvs.Add(forest.FindLabel(vars_.Find("Standard")));
  std::string data = SerializeVvs(vvs, forest, vars_);

  auto parsed = DeserializeVvs(data, forest, vars_);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->size(), 3u);
  EXPECT_TRUE(parsed->Validate(forest).ok());
  EXPECT_EQ(parsed->ToString(forest, vars_), vvs.ToString(forest, vars_));
}

TEST_F(SerializerTest, VvsRejectsUnknownLabel) {
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars_));
  ValidVariableSet vvs;
  vvs.Add(forest.FindLabel(vars_.Find("Plans")));
  std::string data = SerializeVvs(vvs, forest, vars_);

  AbstractionForest other;
  other.AddTree(MakeFigure3MonthsTree(vars_, 12));
  auto parsed = DeserializeVvs(data, other, vars_);
  EXPECT_EQ(parsed.status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------------- files --

TEST_F(SerializerTest, FileRoundTrip) {
  std::string data = SerializePolynomialSet(polys_, vars_);
  std::string path = ::testing::TempDir() + "/provabs_io_test.bin";
  ASSERT_TRUE(WriteFile(path, data).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  std::remove(path.c_str());
}

TEST_F(SerializerTest, ReadMissingFileFails) {
  EXPECT_EQ(ReadFileToString("/nonexistent/provabs").status().code(),
            StatusCode::kNotFound);
}

// -------------------------------------------------------------- circuits --

TEST_F(SerializerTest, CircuitsRoundTrip) {
  std::vector<ProvenanceCircuit> circuits = FactorizeSet(polys_);
  std::string data = SerializeCircuits(circuits, vars_);

  VariableTable fresh;
  auto parsed = DeserializeCircuits(data, fresh);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), circuits.size());
  // Value-identical under a shared scenario (names carry identity).
  Valuation val_old;
  Valuation val_new;
  val_old.Set(vars_.Find("m3"), 0.8);
  val_new.Set(fresh.Find("m3"), 0.8);
  for (size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_TRUE((*parsed)[i].Validate().ok());
    EXPECT_NEAR((*parsed)[i].Evaluate(val_new),
                circuits[i].Evaluate(val_old), 1e-9);
  }
}

TEST_F(SerializerTest, CircuitsRejectCorruptTopology) {
  std::vector<ProvenanceCircuit> circuits = FactorizeSet(polys_);
  std::string data = SerializeCircuits(circuits, vars_);
  // Flip every byte; the reader must return a Status or a valid parse.
  for (size_t i = 6; i < data.size(); ++i) {
    std::string corrupt = data;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x5A);
    VariableTable fresh;
    auto parsed = DeserializeCircuits(corrupt, fresh);
    if (parsed.ok()) {
      for (const ProvenanceCircuit& c : *parsed) {
        EXPECT_TRUE(c.Validate().ok());
      }
    }
  }
}

TEST_F(SerializerTest, EmptyCircuitListRoundTrip) {
  std::string data = SerializeCircuits({}, vars_);
  VariableTable fresh;
  auto parsed = DeserializeCircuits(data, fresh);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

// End-to-end deployment scenario: producer serializes provenance + forest
// + chosen VVS; analyst deserializes into a fresh table and evaluates.
TEST_F(SerializerTest, ProducerAnalystHandoff) {
  AbstractionForest forest;
  auto pruned = MakeFigure2PlansTree(vars_).PruneToPolynomials(polys_);
  ASSERT_TRUE(pruned.ok());
  forest.AddTree(std::move(pruned).value());
  ValidVariableSet roots = ValidVariableSet::AllRoots(forest);
  PolynomialSet compressed = roots.Apply(forest, polys_);

  std::string polys_buf = SerializePolynomialSet(compressed, vars_);
  std::string forest_buf = SerializeForest(forest, vars_);
  std::string vvs_buf = SerializeVvs(roots, forest, vars_);

  // Analyst side: fresh variable table.
  VariableTable analyst;
  auto a_forest = DeserializeForest(forest_buf, analyst);
  ASSERT_TRUE(a_forest.ok());
  auto a_polys = DeserializePolynomialSet(polys_buf, analyst);
  ASSERT_TRUE(a_polys.ok());
  auto a_vvs = DeserializeVvs(vvs_buf, *a_forest, analyst);
  ASSERT_TRUE(a_vvs.ok());
  EXPECT_TRUE(a_vvs->Validate(*a_forest).ok());
  EXPECT_EQ(a_polys->SizeM(), compressed.SizeM());
}

}  // namespace
}  // namespace provabs
