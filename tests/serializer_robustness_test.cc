#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "abstraction/valid_variable_set.h"
#include "circuit/factorize.h"
#include "io/serializer.h"
#include "workload/telephony.h"

namespace provabs {
namespace {

/// Truncation sweep over every artifact serializer: each strict prefix of a
/// valid "PVAB" buffer must come back as a clean Status error — never a
/// crash, never a silent success. The artifact buffers travel over disk AND
/// over the serving wire protocol (LoadRequest embeds them verbatim), so
/// this sweep guards both paths. Run under ASan/UBSan in CI, it also proves
/// no out-of-bounds read hides behind an accepted prefix.
class SerializerRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RunningExample ex = MakeRunningExample(vars_);
    polys_ = RunRunningExampleQuery(ex);
    forest_.AddTree(MakeFigure2PlansTree(vars_));
    polys_bytes_ = SerializePolynomialSet(polys_, vars_);
    forest_bytes_ = SerializeForest(forest_, vars_);
    vvs_bytes_ = SerializeVvs(ValidVariableSet::AllLeaves(forest_), forest_,
                              vars_);
    circuit_bytes_ = SerializeCircuits(FactorizeSet(polys_), vars_);
  }

  /// Asserts the full buffer parses and every strict prefix fails cleanly.
  void Sweep(const std::string& full,
             const std::function<bool(std::string_view)>& parse_ok,
             const char* label) {
    ASSERT_TRUE(parse_ok(full)) << label << ": full buffer must parse";
    for (size_t len = 0; len < full.size(); ++len) {
      EXPECT_FALSE(parse_ok(std::string_view(full).substr(0, len)))
          << label << ": prefix of length " << len << " parsed";
    }
  }

  VariableTable vars_;
  PolynomialSet polys_;
  AbstractionForest forest_;
  std::string polys_bytes_, forest_bytes_, vvs_bytes_, circuit_bytes_;
};

TEST_F(SerializerRobustnessTest, PolynomialSetTruncationSweep) {
  Sweep(
      polys_bytes_,
      [](std::string_view data) {
        VariableTable vars;
        return DeserializePolynomialSet(data, vars).ok();
      },
      "PolynomialSet");
}

TEST_F(SerializerRobustnessTest, ForestTruncationSweep) {
  Sweep(
      forest_bytes_,
      [](std::string_view data) {
        VariableTable vars;
        return DeserializeForest(data, vars).ok();
      },
      "Forest");
}

TEST_F(SerializerRobustnessTest, VvsTruncationSweep) {
  Sweep(
      vvs_bytes_,
      [this](std::string_view data) {
        // A VVS parses against its forest; reuse the shared table so labels
        // resolve (extra interning from failed attempts is harmless).
        return DeserializeVvs(data, forest_, vars_).ok();
      },
      "Vvs");
}

TEST_F(SerializerRobustnessTest, CircuitsTruncationSweep) {
  Sweep(
      circuit_bytes_,
      [](std::string_view data) {
        VariableTable vars;
        return DeserializeCircuits(data, vars).ok();
      },
      "Circuits");
}

TEST_F(SerializerRobustnessTest, KindConfusionRejected) {
  // Feeding a valid buffer of one kind to another kind's deserializer must
  // fail on the kind byte, not misparse the payload.
  VariableTable vars;
  EXPECT_FALSE(DeserializePolynomialSet(forest_bytes_, vars).ok());
  EXPECT_FALSE(DeserializeForest(polys_bytes_, vars).ok());
  EXPECT_FALSE(DeserializeCircuits(vvs_bytes_, vars).ok());
  EXPECT_FALSE(DeserializeVvs(circuit_bytes_, forest_, vars_).ok());
}

TEST_F(SerializerRobustnessTest, SingleByteCorruptionNeverCrashes) {
  // Flipping any one byte may or may not produce a parseable buffer, but it
  // must never crash or trip a sanitizer. (Success is legitimate — e.g. a
  // flipped coefficient bit still yields a structurally valid buffer.)
  std::string mutated = polys_bytes_;
  for (size_t i = 0; i < mutated.size(); ++i) {
    mutated[i] = static_cast<char>(mutated[i] ^ 0x42);
    VariableTable vars;
    (void)DeserializePolynomialSet(mutated, vars);
    mutated[i] = static_cast<char>(mutated[i] ^ 0x42);
  }
}

}  // namespace
}  // namespace provabs
