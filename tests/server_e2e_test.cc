#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/optimal_single_tree.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "server/client.h"
#include "server/provenance_service.h"
#include "server/server.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

// ---------------------------------------------- in-process socket tests --

/// Full load → compress → evaluate round trip over a real loopback socket,
/// but with the server in-process so failures debug cleanly.
TEST(ServerSocketTest, EndToEndRoundTripWithCacheHit) {
  VariableTable vars;
  RunningExample ex = MakeRunningExample(vars);
  PolynomialSet polys = RunRunningExampleQuery(ex);
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars));

  ProvenanceService service;
  Server server(service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = SerializePolynomialSet(polys, vars);
  load.forests = {{"plans", SerializeForest(forest, vars)}};
  auto loaded = client->Load(load);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->ok()) << loaded->message;
  EXPECT_EQ(loaded->poly_count, polys.count());

  CompressRequest compress;
  compress.artifact = "ex";
  compress.forest = "plans";
  compress.bound = polys.SizeM() - 1;
  auto first = client->Compress(compress);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->ok()) << first->message;
  EXPECT_FALSE(first->cache_hit);

  // The acceptance bar: an identical second compress is served from the
  // artifact cache, observable through the response's cache-hit counter.
  auto second = client->Compress(compress);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_GE(second->stats.result_hits, 1u);
  EXPECT_EQ(second->monomial_loss, first->monomial_loss);

  EvaluateRequest eval;
  eval.artifact = "ex";
  eval.assignments = {{"m1", 0.5}};
  auto values = client->Evaluate(eval);
  ASSERT_TRUE(values.ok());
  ASSERT_TRUE(values->ok()) << values->message;
  Valuation val;
  val.Set(vars.Find("m1"), 0.5);
  std::vector<double> expected = val.EvaluateAll(polys);
  ASSERT_EQ(values->values.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(values->values[i], expected[i]);
  }

  // A second concurrent client sees the same resident artifact.
  auto client2 = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client2.ok());
  auto info = client2->Info(InfoRequest{"ex"});
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->ok());
  EXPECT_EQ(info->monomial_count, polys.SizeM());
  EXPECT_EQ(info->stats.artifact_count, 1u);

  auto bye = client->Shutdown(ShutdownRequest{});
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(bye->ok());
  server.Wait();  // Must return: the wire shutdown stops the server.
}

/// Load → compress → append → compress over a real socket: the second
/// compress must be answered by patching the first generation's cached DP
/// state, observable through the per-response flag and the stats counters.
TEST(ServerSocketTest, AppendThenCompressPatchesOverTheWire) {
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(vars.Intern("el" + std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {4, 2}, "E2E_"));
  PolynomialSet polys;
  for (int p = 0; p < 6; ++p) {
    std::vector<Monomial> terms;
    for (int m = 0; m < 8; ++m) {
      terms.emplace_back(1.0 + p + 0.25 * m,
                         std::vector<Factor>{{leaves[m], 1}});
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  const size_t bound = polys.SizeM() - 4;
  auto base = OptimalSingleTree(polys, forest, 0, bound);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  VariableId kept = kInvalidVariable;
  const AbstractionTree& tree = forest.tree(0);
  for (const NodeRef& ref : base->vvs.nodes()) {
    if (tree.node(ref.node).is_leaf()) {
      kept = tree.node(ref.node).label;
      break;
    }
  }
  ASSERT_NE(kept, kInvalidVariable);

  ProvenanceService service;
  Server server(service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  LoadRequest load;
  load.artifact = "inc";
  load.polys_bytes = SerializePolynomialSet(polys, vars);
  load.forests = {{"t", SerializeForest(forest, vars)}};
  auto loaded = client->Load(load);
  ASSERT_TRUE(loaded.ok() && loaded->ok());

  CompressRequest compress;
  compress.artifact = "inc";
  compress.forest = "t";
  compress.algo = "opt";
  compress.bound = bound;
  auto cold = client->Compress(compress);
  ASSERT_TRUE(cold.ok() && cold->ok());
  EXPECT_FALSE(cold->delta_patched);

  PolynomialSet extra;
  extra.Add(Polynomial::FromMonomials({Monomial(2.5, {{kept, 1}})}));
  AppendRequest append;
  append.artifact = "inc";
  append.polys_bytes = SerializePolynomialSet(extra, vars);
  auto appended = client->Append(append);
  ASSERT_TRUE(appended.ok()) << appended.status().ToString();
  ASSERT_TRUE(appended->ok()) << appended->message;
  EXPECT_EQ(appended->poly_count, polys.count() + 1);
  EXPECT_GT(appended->generation, loaded->generation);

  auto patched = client->Compress(compress);
  ASSERT_TRUE(patched.ok() && patched->ok());
  EXPECT_FALSE(patched->cache_hit);
  EXPECT_TRUE(patched->delta_patched);
  EXPECT_EQ(patched->stats.delta_patched, 1u);
  EXPECT_EQ(patched->stats.delta_fallback_full, 0u);

  auto bye = client->Shutdown(ShutdownRequest{});
  ASSERT_TRUE(bye.ok());
  server.Wait();
}

TEST(ServerSocketTest, ServerSurvivesGarbageAndAbruptDisconnect) {
  ProvenanceService service;
  Server server(service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    // Dropping the connection without a request must not wedge the server.
  }
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // An unknown artifact is an application error, not a transport error...
  auto resp = client->Info(InfoRequest{"ghost"});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kNotFound);
  // ...and the connection stays usable afterwards.
  auto stats = client->Info(InfoRequest{});
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->ok());

  client->Shutdown(ShutdownRequest{});
  server.Wait();
}

// ------------------------------------------- event-loop lifecycle tests --

/// Thread count of this process, from /proc/self/status. The event-loop
/// acceptance bar — N idle connections never cost N threads — is only
/// checkable at the OS level.
int ProcessThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return std::atoi(line.c_str() + 8);
    }
  }
  return -1;
}

/// Raw blocking loopback connect, for tests that need a socket the Client
/// abstraction would hide (half-written frames, EOF observation).
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocks up to `timeout_ms` for EOF on `fd`; returns the elapsed
/// milliseconds, or -1 if the peer never closed.
int64_t WaitForEof(int fd, int64_t timeout_ms) {
  auto start = std::chrono::steady_clock::now();
  char buf[256];
  for (;;) {
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (elapsed >= timeout_ms) return -1;
    pollfd p{};
    p.fd = fd;
    p.events = POLLIN;
    int pr = ::poll(&p, 1, static_cast<int>(timeout_ms - elapsed));
    if (pr <= 0) continue;
    ssize_t r = ::read(fd, buf, sizeof(buf));
    if (r == 0) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - start)
          .count();
    }
    if (r < 0 && errno != EINTR && errno != EAGAIN) {
      return std::chrono::duration_cast<std::chrono::milliseconds>(
                 std::chrono::steady_clock::now() - start)
          .count();
    }
  }
}

/// 64 parked connections must cost file descriptors, not threads: the
/// process thread count after opening them equals the count right after
/// Start() (1 loop thread + the fixed worker pool).
TEST(ServerLifecycleTest, IdleConnectionsConsumeNoExtraThreads) {
  ServiceOptions service_options;
  service_options.eval_threads = 1;
  ProvenanceService service(service_options);
  ServerOptions options;
  options.worker_threads = 2;
  Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  // Let the loop + worker threads finish spawning before baselining.
  auto warm = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->Info(InfoRequest{}).ok());
  int baseline = ProcessThreadCount();
  ASSERT_GT(baseline, 0);

  std::vector<Client> idle;
  for (int i = 0; i < 64; ++i) {
    auto c = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(c.ok()) << "connection " << i << ": "
                        << c.status().ToString();
    idle.push_back(std::move(*c));
  }
  // One of them proves the server is actually processing, not just
  // accepting into a backlog.
  auto info = idle.front().Info(InfoRequest{});
  ASSERT_TRUE(info.ok());
  EXPECT_GE(info->stats.active_connections, 65u);  // warm + 64 idle

  EXPECT_EQ(ProcessThreadCount(), baseline)
      << "event-loop server spawned per-connection threads";

  idle.clear();
  server.Shutdown();
  server.Wait();
}

/// A connection that goes silent is closed by the timer wheel within
/// 2 x idle_timeout_ms (the e2e acceptance bound).
TEST(ServerLifecycleTest, IdleClientReapedWithinTwiceTimeout) {
  ProvenanceService service;
  ServerOptions options;
  options.idle_timeout_ms = 400;
  options.worker_threads = 1;
  Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  int64_t elapsed = WaitForEof(fd, 4000);
  ::close(fd);
  ASSERT_GE(elapsed, 0) << "idle connection was never reaped";
  EXPECT_LE(elapsed, 2 * 400) << "reap took longer than 2x idle_timeout_ms";
  EXPECT_GE(server.transport_stats().idle_reaped, 1u);

  // The server keeps serving fresh connections afterwards.
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Info(InfoRequest{});
  ASSERT_TRUE(resp.ok());
  EXPECT_GE(resp->stats.idle_reaped, 1u);

  server.Shutdown();
  server.Wait();
}

/// Connection #(max+1) receives a structured kUnavailable response — not a
/// silent close — and closing an admitted connection frees its slot.
TEST(ServerLifecycleTest, OverLimitConnectionRejectedWithStructuredError) {
  ProvenanceService service;
  ServerOptions options;
  options.max_connections = 2;
  options.worker_threads = 1;
  Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto first = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->Info(InfoRequest{}).ok());
  {
    auto second = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(second.ok());
    ASSERT_TRUE(second->Info(InfoRequest{}).ok());

    auto third = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(third.ok());  // TCP accept succeeds; admission rejects.
    auto resp = third->Info(InfoRequest{});
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_EQ(resp->code, StatusCode::kUnavailable);
    EXPECT_NE(resp->message.find("connection limit"), std::string::npos)
        << resp->message;
    EXPECT_GE(server.transport_stats().rejected_connections, 1u);
  }  // `second` closes here, freeing its slot.

  // Freeing an admitted slot readmits: retry until the loop notices the
  // close (its EOF arrives asynchronously).
  bool readmitted = false;
  for (int i = 0; i < 100 && !readmitted; ++i) {
    auto retry = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(retry.ok());
    auto resp = retry->Info(InfoRequest{});
    readmitted = resp.ok() && resp->ok();
    if (!readmitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(readmitted) << "slot was never freed after client close";

  server.Shutdown();
  server.Wait();
}

/// Slowloris-style abuse: a half-written frame followed by a disconnect,
/// a truncated header, and an absurd frame length must all leave the loop
/// serving other clients.
TEST(ServerLifecycleTest, HalfWrittenFrameAndDisconnectDoNotWedgeLoop) {
  ProvenanceService service;
  ServerOptions options;
  options.worker_threads = 1;
  Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  {
    // Header promising 100 bytes, only 10 delivered, then FIN.
    int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    unsigned char partial[14] = {100, 0, 0, 0, 'x', 'x', 'x', 'x', 'x',
                                 'x',  'x', 'x', 'x', 'x'};
    ASSERT_EQ(::send(fd, partial, sizeof(partial), MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof(partial)));
    ::close(fd);
  }
  {
    // Two bytes of a four-byte header, then FIN.
    int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    unsigned char half_header[2] = {8, 0};
    ASSERT_EQ(::send(fd, half_header, sizeof(half_header), MSG_NOSIGNAL), 2);
    ::close(fd);
  }
  {
    // A length over kMaxFrameBytes is a protocol violation: the server
    // closes the connection rather than buffering toward it.
    int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    unsigned char huge[4] = {0xFF, 0xFF, 0xFF, 0xFF};
    ASSERT_EQ(::send(fd, huge, sizeof(huge), MSG_NOSIGNAL), 4);
    EXPECT_GE(WaitForEof(fd, 2000), 0) << "oversized frame not rejected";
    ::close(fd);
  }

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto resp = client->Info(InfoRequest{});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->ok());

  server.Shutdown();
  server.Wait();
}

/// Shutdown during an in-flight compress drains gracefully: the DP
/// finishes, its response reaches the client, and only then does the
/// server exit.
TEST(ServerLifecycleTest, GracefulDrainCompletesInFlightCompress) {
  VariableTable vars;
  RunningExample ex = MakeRunningExample(vars);
  PolynomialSet polys = RunRunningExampleQuery(ex);
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars));

  std::mutex m;
  std::condition_variable cv;
  bool entered = false;
  bool release = false;
  ServiceOptions service_options;
  service_options.compress_hook = [&](const ArtifactStore::ResultKey&) {
    std::unique_lock<std::mutex> lock(m);
    entered = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  };
  ProvenanceService service(service_options);
  ServerOptions options;
  options.worker_threads = 2;
  options.drain_timeout_ms = 10000;
  Server server(service, options);
  ASSERT_TRUE(server.Start().ok());

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = SerializePolynomialSet(polys, vars);
  load.forests = {{"plans", SerializeForest(forest, vars)}};
  ASSERT_TRUE(client->Load(load).ok());

  StatusOr<Response> compress_result = Status::Internal("not run");
  std::thread requester([&] {
    CompressRequest req;
    req.artifact = "ex";
    req.forest = "plans";
    req.bound = polys.SizeM() - 1;
    compress_result = client->Compress(req);
  });

  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return entered; });
  }
  server.Shutdown();  // Drain begins with the DP still executing.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    std::lock_guard<std::mutex> lock(m);
    release = true;
    cv.notify_all();
  }
  requester.join();
  server.Wait();

  ASSERT_TRUE(compress_result.ok()) << compress_result.status().ToString();
  EXPECT_TRUE(compress_result->ok()) << compress_result->message;
}

// ------------------------------------------------- binary-level smoke ----

/// The CI smoke test: spawns the real `provabs_server` binary on an
/// ephemeral loopback port, drives a generate → remote-load →
/// remote-compress ×2 → remote-evaluate → remote-shutdown session through
/// the real `provabs_cli`, and asserts the second compress reports
/// "cache: hit". Skipped when the binaries are not in the conventional
/// build layout (e.g. running from an install tree).
class ServerBinarySmokeTest : public ::testing::Test {
 protected:
  static std::string FindBinary(const std::string& name) {
    const std::string candidates[] = {
        "../tools/" + name,        // ctest from build/tests
        "./tools/" + name,         // manual run from build/
        "./build/tools/" + name,   // manual run from the repo root
    };
    for (const std::string& c : candidates) {
      std::FILE* probe = std::fopen(c.c_str(), "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        return c;
      }
    }
    return "";
  }

  void SetUp() override {
    cli_ = FindBinary("provabs_cli");
    server_ = FindBinary("provabs_server");
    if (cli_.empty() || server_.empty()) {
      GTEST_SKIP() << "provabs binaries not found";
    }
    // A per-process subdirectory: cli_test writes the same artifact names
    // into TempDir(), and ctest runs suites in parallel.
    dir_ = ::testing::TempDir() + "/server_e2e_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
  }

  /// Runs a CLI command, returns its exit code, captures combined output.
  int RunCli(const std::string& args, std::string* output) {
    std::string out_path = dir_ + "/cli_out.txt";
    int rc = std::system(
        (cli_ + " " + args + " > " + out_path + " 2>&1").c_str());
    std::ifstream in(out_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    *output = buffer.str();
    return rc;
  }

  std::string cli_, server_, dir_;
};

/// Kills the forked server on any exit path (a failed ASSERT must not
/// leave an orphan daemon on the CI runner), unless disarmed by a clean
/// shutdown.
struct ChildGuard {
  pid_t pid;
  bool armed = true;
  ~ChildGuard() {
    if (armed && pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

/// Polls waitpid for up to ~10 s; false if the child is still running (so
/// the caller can fail the test instead of hanging until ctest's timeout).
bool WaitForExit(pid_t pid, int* status) {
  for (int i = 0; i < 200; ++i) {
    pid_t done = ::waitpid(pid, status, WNOHANG);
    if (done == pid) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST_F(ServerBinarySmokeTest, FullRemoteSessionWithCacheHit) {
  std::string out;
  ASSERT_EQ(RunCli("generate --workload telephony --scale 0.02 --out " +
                       dir_ + "/p.bin --forest-out " + dir_ + "/f.bin",
                   &out),
            0)
      << out;

  // Spawn the server with an ephemeral port, discovered via --port-file.
  std::string port_file = dir_ + "/server.port";
  std::string server_log = dir_ + "/server.log";
  std::remove(port_file.c_str());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::FILE* log = std::freopen(server_log.c_str(), "w", stdout);
    (void)log;
    execl(server_.c_str(), "provabs_server", "--port", "0", "--port-file",
          port_file.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  ChildGuard guard{pid};

  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::ifstream in(port_file);
    std::getline(in, port);
  }
  ASSERT_FALSE(port.empty()) << "server did not write its port file";

  std::string remote = "--host 127.0.0.1 --port " + port;
  EXPECT_EQ(RunCli("remote-load " + remote + " --name tel --in " + dir_ +
                       "/p.bin --forest " + dir_ + "/f.bin",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("loaded 'tel'"), std::string::npos) << out;

  std::string compress = "remote-compress " + remote +
                         " --name tel --bound 1500 --algo opt";
  EXPECT_EQ(RunCli(compress, &out), 0) << out;
  EXPECT_NE(out.find("cache: miss"), std::string::npos) << out;

  // The identical request again: answered from the artifact cache.
  EXPECT_EQ(RunCli(compress, &out), 0) << out;
  EXPECT_NE(out.find("cache: hit"), std::string::npos) << out;

  EXPECT_EQ(RunCli("remote-evaluate " + remote +
                       " --name tel --set m1=0.8 --bound 1500",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("polynomial 0:"), std::string::npos) << out;

  // A non-default registry algorithm over the wire: the exhaustive
  // baseline is servable through the same request path as opt/greedy.
  EXPECT_EQ(RunCli("remote-compress " + remote +
                       " --name tel --bound 1500 --algo brute",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("brute:"), std::string::npos) << out;

  // A scenario program answers a whole what-if family in one round trip
  // (wire v5, kind 24); the repeat is served from the program cache.
  std::string scenario =
      "remote-scenario " + remote +
      " --name tel --expr 'LET d = GRID(0.5, 1, 2); SET PREFIX(plan) = d;'";
  EXPECT_EQ(RunCli(scenario, &out), 0) << out;
  EXPECT_NE(out.find("scenario 2:"), std::string::npos) << out;
  EXPECT_NE(out.find("3 scenarios"), std::string::npos) << out;
  EXPECT_NE(out.find("program cache: miss"), std::string::npos) << out;
  EXPECT_EQ(RunCli(scenario + " --shape argmax", &out), 0) << out;
  EXPECT_NE(out.find("objective"), std::string::npos) << out;
  EXPECT_EQ(RunCli(scenario, &out), 0) << out;
  EXPECT_NE(out.find("program cache: hit"), std::string::npos) << out;
  // An ill-typed program is a structured remote error (exit 1, the
  // server's InvalidArgument relayed), not a hang or a crash.
  int bad = RunCli("remote-scenario " + remote +
                       " --name tel --expr 'SET ghost = 1;'",
                   &out);
  ASSERT_TRUE(WIFEXITED(bad)) << out;
  EXPECT_EQ(WEXITSTATUS(bad), 1) << out;
  EXPECT_NE(out.find("ghost"), std::string::npos) << out;

  EXPECT_EQ(RunCli("remote-info " + remote + " --name tel", &out), 0) << out;
  EXPECT_NE(out.find("hits"), std::string::npos) << out;
  // The batching/program-cache counters surface in remote-info.
  EXPECT_NE(out.find("programs:"), std::string::npos) << out;
  EXPECT_NE(out.find("lane groups"), std::string::npos) << out;
  // remote-info surfaces the server's algorithm registry (request 22).
  EXPECT_NE(out.find("algorithms:"), std::string::npos) << out;
  EXPECT_NE(out.find("prox"), std::string::npos) << out;

  EXPECT_EQ(RunCli("remote-shutdown " + remote, &out), 0) << out;

  int status = 0;
  ASSERT_TRUE(WaitForExit(pid, &status))
      << "server did not exit after remote-shutdown";
  guard.armed = false;  // Reaped; nothing left to kill.
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::ifstream log(server_log);
  std::stringstream log_text;
  log_text << log.rdbuf();
  EXPECT_NE(log_text.str().find("shut down cleanly"), std::string::npos)
      << log_text.str();
}

/// The client-deadline acceptance bar: a remote-compress against a
/// SIGSTOPped server exits with a DeadlineExceeded error instead of
/// hanging forever on the dead socket.
TEST_F(ServerBinarySmokeTest, RemoteCompressAgainstStoppedServerTimesOut) {
  std::string port_file = dir_ + "/stopped.port";
  std::remove(port_file.c_str());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    execl(server_.c_str(), "provabs_server", "--port", "0", "--port-file",
          port_file.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  ChildGuard guard{pid};

  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::ifstream in(port_file);
    std::getline(in, port);
  }
  ASSERT_FALSE(port.empty()) << "server did not write its port file";

  // Freeze the server. The kernel still completes TCP handshakes on its
  // listen backlog and buffers the request bytes, so without a deadline
  // the client would block in read() until the process is thawed.
  ASSERT_EQ(::kill(pid, SIGSTOP), 0);

  std::string out;
  auto start = std::chrono::steady_clock::now();
  int rc = RunCli("remote-compress --host 127.0.0.1 --port " + port +
                      " --name tel --bound 1500 --timeout-ms 500",
                  &out);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  ASSERT_TRUE(WIFEXITED(rc)) << out;
  EXPECT_EQ(WEXITSTATUS(rc), 1) << out;
  EXPECT_NE(out.find("DeadlineExceeded"), std::string::npos) << out;
  EXPECT_LT(elapsed, 10000) << "timeout did not bound the RPC";

  ::kill(pid, SIGCONT);  // ChildGuard's SIGKILL needs a running process
}

}  // namespace
}  // namespace provabs
