#include <gtest/gtest.h>

#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/valuation.h"
#include "io/serializer.h"
#include "server/client.h"
#include "server/provenance_service.h"
#include "server/server.h"
#include "workload/telephony.h"

namespace provabs {
namespace {

// ---------------------------------------------- in-process socket tests --

/// Full load → compress → evaluate round trip over a real loopback socket,
/// but with the server in-process so failures debug cleanly.
TEST(ServerSocketTest, EndToEndRoundTripWithCacheHit) {
  VariableTable vars;
  RunningExample ex = MakeRunningExample(vars);
  PolynomialSet polys = RunRunningExampleQuery(ex);
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars));

  ProvenanceService service;
  Server server(service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = SerializePolynomialSet(polys, vars);
  load.forests = {{"plans", SerializeForest(forest, vars)}};
  auto loaded = client->Load(load);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(loaded->ok()) << loaded->message;
  EXPECT_EQ(loaded->poly_count, polys.count());

  CompressRequest compress;
  compress.artifact = "ex";
  compress.forest = "plans";
  compress.bound = polys.SizeM() - 1;
  auto first = client->Compress(compress);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->ok()) << first->message;
  EXPECT_FALSE(first->cache_hit);

  // The acceptance bar: an identical second compress is served from the
  // artifact cache, observable through the response's cache-hit counter.
  auto second = client->Compress(compress);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_GE(second->stats.result_hits, 1u);
  EXPECT_EQ(second->monomial_loss, first->monomial_loss);

  EvaluateRequest eval;
  eval.artifact = "ex";
  eval.assignments = {{"m1", 0.5}};
  auto values = client->Evaluate(eval);
  ASSERT_TRUE(values.ok());
  ASSERT_TRUE(values->ok()) << values->message;
  Valuation val;
  val.Set(vars.Find("m1"), 0.5);
  std::vector<double> expected = val.EvaluateAll(polys);
  ASSERT_EQ(values->values.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(values->values[i], expected[i]);
  }

  // A second concurrent client sees the same resident artifact.
  auto client2 = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client2.ok());
  auto info = client2->Info(InfoRequest{"ex"});
  ASSERT_TRUE(info.ok());
  ASSERT_TRUE(info->ok());
  EXPECT_EQ(info->monomial_count, polys.SizeM());
  EXPECT_EQ(info->stats.artifact_count, 1u);

  auto bye = client->Shutdown(ShutdownRequest{});
  ASSERT_TRUE(bye.ok());
  EXPECT_TRUE(bye->ok());
  server.Wait();  // Must return: the wire shutdown stops the server.
}

TEST(ServerSocketTest, ServerSurvivesGarbageAndAbruptDisconnect) {
  ProvenanceService service;
  Server server(service, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  {
    auto client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    // Dropping the connection without a request must not wedge the server.
  }
  auto client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  // An unknown artifact is an application error, not a transport error...
  auto resp = client->Info(InfoRequest{"ghost"});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->code, StatusCode::kNotFound);
  // ...and the connection stays usable afterwards.
  auto stats = client->Info(InfoRequest{});
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->ok());

  client->Shutdown(ShutdownRequest{});
  server.Wait();
}

// ------------------------------------------------- binary-level smoke ----

/// The CI smoke test: spawns the real `provabs_server` binary on an
/// ephemeral loopback port, drives a generate → remote-load →
/// remote-compress ×2 → remote-evaluate → remote-shutdown session through
/// the real `provabs_cli`, and asserts the second compress reports
/// "cache: hit". Skipped when the binaries are not in the conventional
/// build layout (e.g. running from an install tree).
class ServerBinarySmokeTest : public ::testing::Test {
 protected:
  static std::string FindBinary(const std::string& name) {
    const std::string candidates[] = {
        "../tools/" + name,        // ctest from build/tests
        "./tools/" + name,         // manual run from build/
        "./build/tools/" + name,   // manual run from the repo root
    };
    for (const std::string& c : candidates) {
      std::FILE* probe = std::fopen(c.c_str(), "rb");
      if (probe != nullptr) {
        std::fclose(probe);
        return c;
      }
    }
    return "";
  }

  void SetUp() override {
    cli_ = FindBinary("provabs_cli");
    server_ = FindBinary("provabs_server");
    if (cli_.empty() || server_.empty()) {
      GTEST_SKIP() << "provabs binaries not found";
    }
    // A per-process subdirectory: cli_test writes the same artifact names
    // into TempDir(), and ctest runs suites in parallel.
    dir_ = ::testing::TempDir() + "/server_e2e_" + std::to_string(::getpid());
    ::mkdir(dir_.c_str(), 0755);
  }

  /// Runs a CLI command, returns its exit code, captures combined output.
  int RunCli(const std::string& args, std::string* output) {
    std::string out_path = dir_ + "/cli_out.txt";
    int rc = std::system(
        (cli_ + " " + args + " > " + out_path + " 2>&1").c_str());
    std::ifstream in(out_path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    *output = buffer.str();
    return rc;
  }

  std::string cli_, server_, dir_;
};

/// Kills the forked server on any exit path (a failed ASSERT must not
/// leave an orphan daemon on the CI runner), unless disarmed by a clean
/// shutdown.
struct ChildGuard {
  pid_t pid;
  bool armed = true;
  ~ChildGuard() {
    if (armed && pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
    }
  }
};

/// Polls waitpid for up to ~10 s; false if the child is still running (so
/// the caller can fail the test instead of hanging until ctest's timeout).
bool WaitForExit(pid_t pid, int* status) {
  for (int i = 0; i < 200; ++i) {
    pid_t done = ::waitpid(pid, status, WNOHANG);
    if (done == pid) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

TEST_F(ServerBinarySmokeTest, FullRemoteSessionWithCacheHit) {
  std::string out;
  ASSERT_EQ(RunCli("generate --workload telephony --scale 0.02 --out " +
                       dir_ + "/p.bin --forest-out " + dir_ + "/f.bin",
                   &out),
            0)
      << out;

  // Spawn the server with an ephemeral port, discovered via --port-file.
  std::string port_file = dir_ + "/server.port";
  std::string server_log = dir_ + "/server.log";
  std::remove(port_file.c_str());
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    std::FILE* log = std::freopen(server_log.c_str(), "w", stdout);
    (void)log;
    execl(server_.c_str(), "provabs_server", "--port", "0", "--port-file",
          port_file.c_str(), static_cast<char*>(nullptr));
    std::_Exit(127);  // exec failed
  }
  ChildGuard guard{pid};

  std::string port;
  for (int i = 0; i < 200 && port.empty(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    std::ifstream in(port_file);
    std::getline(in, port);
  }
  ASSERT_FALSE(port.empty()) << "server did not write its port file";

  std::string remote = "--host 127.0.0.1 --port " + port;
  EXPECT_EQ(RunCli("remote-load " + remote + " --name tel --in " + dir_ +
                       "/p.bin --forest " + dir_ + "/f.bin",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("loaded 'tel'"), std::string::npos) << out;

  std::string compress = "remote-compress " + remote +
                         " --name tel --bound 1500 --algo opt";
  EXPECT_EQ(RunCli(compress, &out), 0) << out;
  EXPECT_NE(out.find("cache: miss"), std::string::npos) << out;

  // The identical request again: answered from the artifact cache.
  EXPECT_EQ(RunCli(compress, &out), 0) << out;
  EXPECT_NE(out.find("cache: hit"), std::string::npos) << out;

  EXPECT_EQ(RunCli("remote-evaluate " + remote +
                       " --name tel --set m1=0.8 --bound 1500",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("polynomial 0:"), std::string::npos) << out;

  // A non-default registry algorithm over the wire: the exhaustive
  // baseline is servable through the same request path as opt/greedy.
  EXPECT_EQ(RunCli("remote-compress " + remote +
                       " --name tel --bound 1500 --algo brute",
                   &out),
            0)
      << out;
  EXPECT_NE(out.find("brute:"), std::string::npos) << out;

  // A scenario program answers a whole what-if family in one round trip
  // (wire v5, kind 24); the repeat is served from the program cache.
  std::string scenario =
      "remote-scenario " + remote +
      " --name tel --expr 'LET d = GRID(0.5, 1, 2); SET PREFIX(plan) = d;'";
  EXPECT_EQ(RunCli(scenario, &out), 0) << out;
  EXPECT_NE(out.find("scenario 2:"), std::string::npos) << out;
  EXPECT_NE(out.find("3 scenarios"), std::string::npos) << out;
  EXPECT_NE(out.find("program cache: miss"), std::string::npos) << out;
  EXPECT_EQ(RunCli(scenario + " --shape argmax", &out), 0) << out;
  EXPECT_NE(out.find("objective"), std::string::npos) << out;
  EXPECT_EQ(RunCli(scenario, &out), 0) << out;
  EXPECT_NE(out.find("program cache: hit"), std::string::npos) << out;
  // An ill-typed program is a structured remote error (exit 1, the
  // server's InvalidArgument relayed), not a hang or a crash.
  int bad = RunCli("remote-scenario " + remote +
                       " --name tel --expr 'SET ghost = 1;'",
                   &out);
  ASSERT_TRUE(WIFEXITED(bad)) << out;
  EXPECT_EQ(WEXITSTATUS(bad), 1) << out;
  EXPECT_NE(out.find("ghost"), std::string::npos) << out;

  EXPECT_EQ(RunCli("remote-info " + remote + " --name tel", &out), 0) << out;
  EXPECT_NE(out.find("hits"), std::string::npos) << out;
  // The batching/program-cache counters surface in remote-info.
  EXPECT_NE(out.find("programs:"), std::string::npos) << out;
  EXPECT_NE(out.find("lane groups"), std::string::npos) << out;
  // remote-info surfaces the server's algorithm registry (request 22).
  EXPECT_NE(out.find("algorithms:"), std::string::npos) << out;
  EXPECT_NE(out.find("prox"), std::string::npos) << out;

  EXPECT_EQ(RunCli("remote-shutdown " + remote, &out), 0) << out;

  int status = 0;
  ASSERT_TRUE(WaitForExit(pid, &status))
      << "server did not exit after remote-shutdown";
  guard.armed = false;  // Reaped; nothing left to kill.
  EXPECT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);

  std::ifstream log(server_log);
  std::stringstream log_text;
  log_text << log.rdbuf();
  EXPECT_NE(log_text.str().find("shut down cleanly"), std::string::npos)
      << log_text.str();
}

}  // namespace
}  // namespace provabs
