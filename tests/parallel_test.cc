#include "parallel/parallel_compress.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "algo/brute_force.h"
#include "common/random.h"
#include "parallel/thread_pool.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

// -------------------------------------------------------------- pool ----

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, SingleThreadStillWorks) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturns) {
  ThreadPool pool(3);
  pool.Wait();  // Must not hang.
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> ran{0};
  pool.Submit([&ran] { ran.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  // Far more slow tasks than workers, destroyed immediately: the documented
  // contract is that pending work is drained, not dropped.
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  // The serving layer keeps one pool alive for the process lifetime and
  // pushes work through it round after round (see server/evaluate_batcher).
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int round = 0; round < 100; ++round) {
    pool.ParallelFor(17, [&total](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 1700);
}

TEST(ThreadPoolTest, ConcurrentCallersFromManyThreads) {
  // The concurrent serving path drives one pool from many connection
  // threads at once: interleaved Submit/Wait and whole ParallelFor calls
  // must never drop or double-run a unit (Wait() waits for *all* in-flight
  // tasks, so a caller may over-wait — that is allowed, losing work is
  // not). Run under TSan in CI.
  ThreadPool pool(4);
  constexpr int kCallers = 8;
  constexpr int kRounds = 20;
  std::vector<std::atomic<int>> counts(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        if ((c + round) % 2 == 0) {
          pool.ParallelFor(13, [&, c](size_t) { counts[c].fetch_add(1); });
        } else {
          for (int i = 0; i < 13; ++i) {
            pool.Submit([&, c] { counts[c].fetch_add(1); });
          }
          pool.Wait();
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(counts[c].load(), kRounds * 13) << "caller " << c;
  }
}

// -------------------------------------------------- parallel primitives --

class ParallelCompressTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(5);
    for (int i = 0; i < 16; ++i) {
      leaves_.push_back(vars_.Intern("pl" + std::to_string(i)));
    }
    other_ = vars_.Intern("om");
    forest_.AddTree(BuildUniformTree(vars_, leaves_, {2, 2}, "PP_"));

    std::vector<Monomial> terms;
    for (int m = 0; m < 60; ++m) {
      std::vector<Factor> f;
      f.push_back({leaves_[rng.Uniform(leaves_.size())], 1});
      if (rng.Bernoulli(0.6)) f.push_back({other_, 1});
      terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
    }
    polys_.Add(Polynomial::FromMonomials(std::move(terms)));
  }

  VariableTable vars_;
  std::vector<VariableId> leaves_;
  VariableId other_;
  AbstractionForest forest_;
  PolynomialSet polys_;
};

TEST_F(ParallelCompressTest, NodeLossesMatchResidualIndex) {
  ThreadPool pool(4);
  const AbstractionTree& tree = forest_.tree(0);
  std::vector<LossReport> parallel = ParallelNodeLosses(polys_, tree, pool);
  LeafResidualIndex index(polys_, tree);
  ASSERT_EQ(parallel.size(), tree.node_count());
  for (NodeIndex v = 0; v < tree.node_count(); ++v) {
    EXPECT_EQ(parallel[v].monomial_loss, index.NodeLoss(v).monomial_loss);
    EXPECT_EQ(parallel[v].variable_loss, index.NodeLoss(v).variable_loss);
  }
}

TEST_F(ParallelCompressTest, BruteForceMatchesSerial) {
  ThreadPool pool(4);
  for (size_t bound : {polys_.SizeM() - 1, polys_.SizeM() / 2,
                       polys_.SizeM() * 3 / 4}) {
    auto serial = BruteForce(polys_, forest_, bound);
    auto parallel = ParallelBruteForce(polys_, forest_, bound, pool);
    ASSERT_EQ(serial.ok(), parallel.ok()) << "bound " << bound;
    if (!serial.ok()) continue;
    EXPECT_EQ(serial->loss.variable_loss, parallel->loss.variable_loss)
        << "bound " << bound;
    EXPECT_TRUE(parallel->vvs.Validate(forest_).ok());
    LossReport recheck = ComputeLossNaive(polys_, forest_, parallel->vvs);
    EXPECT_EQ(recheck.variable_loss, parallel->loss.variable_loss);
  }
}

TEST_F(ParallelCompressTest, BruteForceInfeasibleDetected) {
  ThreadPool pool(4);
  auto parallel = ParallelBruteForce(polys_, forest_, 1, pool);
  auto serial = BruteForce(polys_, forest_, 1);
  EXPECT_EQ(parallel.ok(), serial.ok());
  if (!parallel.ok()) {
    EXPECT_EQ(parallel.status().code(), StatusCode::kInfeasible);
  }
}

TEST_F(ParallelCompressTest, BruteForceRespectsCutCap) {
  ThreadPool pool(2);
  BruteForceOptions opts;
  opts.max_cuts = 2;
  EXPECT_EQ(ParallelBruteForce(polys_, forest_, 10, pool, opts)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST_F(ParallelCompressTest, EvaluateAllMatchesSerial) {
  // Use a bigger polynomial set for a meaningful split.
  PolynomialSet many;
  Rng rng(8);
  for (int p = 0; p < 50; ++p) {
    std::vector<Monomial> terms;
    for (int m = 0; m < 10; ++m) {
      terms.emplace_back(
          rng.UniformReal(0.5, 9.5),
          std::vector<Factor>{{leaves_[rng.Uniform(leaves_.size())], 1}});
    }
    many.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  Valuation val;
  for (VariableId v : leaves_) val.Set(v, 0.5 + (v % 7) * 0.1);

  ThreadPool pool(4);
  std::vector<double> parallel = ParallelEvaluateAll(val, many, pool);
  std::vector<double> serial = val.EvaluateAll(many);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(parallel[i], serial[i]);
  }
}

// Thread-count sweep: identical results at every pool size.
class PoolSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(PoolSizeTest, BruteForceDeterministicAcrossPoolSizes) {
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(vars.Intern("q" + std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {2}, "PS_"));
  Rng rng(99);
  std::vector<Monomial> terms;
  for (int m = 0; m < 30; ++m) {
    terms.emplace_back(
        rng.UniformReal(0.5, 9.5),
        std::vector<Factor>{{leaves[rng.Uniform(leaves.size())], 1}});
  }
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(std::move(terms)));

  ThreadPool pool(static_cast<size_t>(GetParam()));
  auto serial = BruteForce(polys, forest, polys.SizeM() / 2);
  auto parallel =
      ParallelBruteForce(polys, forest, polys.SizeM() / 2, pool);
  ASSERT_EQ(serial.ok(), parallel.ok());
  if (serial.ok()) {
    EXPECT_EQ(serial->loss.variable_loss, parallel->loss.variable_loss);
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, PoolSizeTest,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace provabs
