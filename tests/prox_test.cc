#include "algo/prox_summarizer.h"

#include <gtest/gtest.h>

#include <string>

#include "algo/brute_force.h"
#include "common/random.h"
#include "core/polynomial.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

class ProxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    m1_ = vars_.Intern("m1");
    m3_ = vars_.Intern("m3");
    forest_.AddTree(MakeFigure2PlansTree(vars_));
    auto v = [&](const char* n) { return vars_.Find(n); };
    polys_.Add(Polynomial::FromMonomials({
        Monomial(77.9, {{v("b1"), 1}, {m1_, 1}}),
        Monomial(80.5, {{v("b1"), 1}, {m3_, 1}}),
        Monomial(52.2, {{v("e"), 1}, {m1_, 1}}),
        Monomial(56.5, {{v("e"), 1}, {m3_, 1}}),
        Monomial(69.7, {{v("b2"), 1}, {m1_, 1}}),
        Monomial(100.65, {{v("b2"), 1}, {m3_, 1}}),
    }));
  }

  VariableTable vars_;
  VariableId m1_, m3_;
  AbstractionForest forest_;
  PolynomialSet polys_;
};

TEST_F(ProxTest, ReachesBoundWithPairMerges) {
  // B = 4 (k = 2): merging {b1, b2} gains 2 — one pair merge suffices.
  auto result = ProxSummarize(polys_, forest_, 4);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->adequate);
  EXPECT_GE(result->loss.monomial_loss, 2u);
  EXPECT_EQ(result->loss.variable_loss, 1u);
  EXPECT_EQ(result->iterations, 1u);
}

TEST_F(ProxTest, SubstitutionCoversMergedVariables) {
  auto result = ProxSummarize(polys_, forest_, 4);
  ASSERT_TRUE(result.ok());
  // b1 and b2 map to the same fresh group variable.
  auto b1 = result->substitution.find(vars_.Find("b1"));
  auto b2 = result->substitution.find(vars_.Find("b2"));
  ASSERT_NE(b1, result->substitution.end());
  ASSERT_NE(b2, result->substitution.end());
  EXPECT_EQ(b1->second, b2->second);
}

TEST_F(ProxTest, OracleCallsAreQuadratic) {
  // First iteration examines C(3,2) = 3 pairs (b1, b2, e live).
  auto result = ProxSummarize(polys_, forest_, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->oracle_calls, 3u);
}

TEST_F(ProxTest, TrivialBoundDoesNothing) {
  auto result = ProxSummarize(polys_, forest_, polys_.SizeM());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->iterations, 0u);
  EXPECT_EQ(result->loss.monomial_loss, 0u);
}

TEST_F(ProxTest, UnreachableBoundStopsAtFullGrouping) {
  auto result = ProxSummarize(polys_, forest_, 1);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->adequate);  // Two monomials minimum (m1 vs m3).
  EXPECT_EQ(result->iterations, 2u);  // 3 groups -> 1 group.
}

TEST_F(ProxTest, BudgetExhaustionReported) {
  ProxOptions opts;
  opts.max_oracle_calls = 1;
  auto result = ProxSummarize(polys_, forest_, 2, opts);
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ProxTest, RejectsZeroBound) {
  EXPECT_EQ(ProxSummarize(polys_, forest_, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ProxTest, GroupsNeverCrossTrees) {
  AbstractionForest forest2;
  forest2.AddTree(MakeFigure2PlansTree(vars_));
  forest2.AddTree(MakeFigure3MonthsTree(vars_, 3));
  ASSERT_TRUE(forest2.Validate().ok());
  auto result = ProxSummarize(polys_, forest2, 1);
  ASSERT_TRUE(result.ok());
  // Plan variables and month variables must never share a group.
  auto group_of = [&](const char* name) {
    auto it = result->substitution.find(vars_.Find(name));
    return it == result->substitution.end() ? kInvalidVariable : it->second;
  };
  VariableId plan_group = group_of("b1");
  VariableId month_group = group_of("m1");
  if (plan_group != kInvalidVariable && month_group != kInvalidVariable) {
    EXPECT_NE(plan_group, month_group);
  }
}

// Paper §4.3: where Prox converges its quality is good (~96% of optimal)
// but never better than the optimum.
class ProxQualityTest : public ::testing::TestWithParam<int> {};

TEST_P(ProxQualityTest, NeverBeatsOptimumOnRandomInstances) {
  Rng rng(4400 + GetParam());
  VariableTable vars;
  std::vector<VariableId> leaves;
  for (int i = 0; i < 8; ++i) {
    leaves.push_back(vars.Intern("w" + std::to_string(i)));
  }
  VariableId other = vars.Intern("mm");
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, leaves, {2, 2}, "q"));

  std::vector<Monomial> terms;
  for (int m = 0; m < 30; ++m) {
    std::vector<Factor> f;
    f.push_back({leaves[rng.Uniform(leaves.size())], 1});
    if (rng.Bernoulli(0.5)) f.push_back({other, 1});
    terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
  }
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(std::move(terms)));

  const size_t bound = polys.SizeM() / 2 + 1;
  auto prox = ProxSummarize(polys, forest, bound);
  auto bf = BruteForce(polys, forest, bound);
  ASSERT_TRUE(prox.ok());
  if (!bf.ok() || !prox->adequate) return;
  // Prox groupings are unconstrained by cuts, but with a tree oracle they
  // cannot lose fewer variables than the unrestricted-optimal... they CAN
  // beat the cut optimum in principle; assert only adequacy + sane loss.
  EXPECT_GE(prox->loss.monomial_loss,
            polys.SizeM() - bound);
  EXPECT_LE(prox->loss.variable_loss, polys.SizeV());
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ProxQualityTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace provabs
