#include "circuit/circuit.h"

#include <gtest/gtest.h>

#include "abstraction/valid_variable_set.h"
#include "circuit/factorize.h"
#include "common/random.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

class CircuitTest : public ::testing::Test {
 protected:
  VariableTable vars_;
  VariableId x_ = vars_.Intern("x");
  VariableId y_ = vars_.Intern("y");
  VariableId z_ = vars_.Intern("z");
};

TEST_F(CircuitTest, BuildAndEvaluate) {
  // (2 + x) * y
  ProvenanceCircuit c;
  auto two = c.AddConstant(2.0);
  auto x = c.AddVariable(x_);
  auto sum = c.AddSum({two, x});
  auto y = c.AddVariable(y_);
  c.SetOutput(c.AddProduct({sum, y}));
  ASSERT_TRUE(c.Validate().ok());

  Valuation val;
  val.Set(x_, 3.0);
  val.Set(y_, 4.0);
  EXPECT_DOUBLE_EQ(c.Evaluate(val), 20.0);
  EXPECT_EQ(c.ToString(vars_), "((2 + x)*y)");
}

TEST_F(CircuitTest, UnsetVariablesDefaultToOne) {
  ProvenanceCircuit c;
  c.SetOutput(c.AddVariable(x_));
  Valuation empty;
  EXPECT_DOUBLE_EQ(c.Evaluate(empty), 1.0);
}

TEST_F(CircuitTest, ValidateCatchesMissingOutput) {
  ProvenanceCircuit c;
  c.AddConstant(1.0);
  EXPECT_EQ(c.Validate().code(), StatusCode::kFailedPrecondition);
}

TEST_F(CircuitTest, ToPolynomialExpands) {
  // (x + y) * (x + z) -> x^2 + xz + xy + yz.
  ProvenanceCircuit c;
  auto x1 = c.AddVariable(x_);
  auto y = c.AddVariable(y_);
  auto left = c.AddSum({x1, y});
  auto x2 = c.AddVariable(x_);
  auto z = c.AddVariable(z_);
  auto right = c.AddSum({x2, z});
  c.SetOutput(c.AddProduct({left, right}));
  Polynomial p = c.ToPolynomial();
  EXPECT_EQ(p.SizeM(), 4u);
  EXPECT_EQ(p.SizeV(), 3u);
}

TEST_F(CircuitTest, SubstitutionRewritesLeaves) {
  ProvenanceCircuit c;
  auto x = c.AddVariable(x_);
  auto y = c.AddVariable(y_);
  c.SetOutput(c.AddSum({x, y}));
  std::unordered_map<VariableId, VariableId> map{{x_, z_}, {y_, z_}};
  ProvenanceCircuit mapped = c.ApplySubstitution(map);
  Polynomial p = mapped.ToPolynomial();
  EXPECT_EQ(p.SizeM(), 1u);  // z + z = 2z
  EXPECT_DOUBLE_EQ(p.monomials()[0].coefficient(), 2.0);
}

// ------------------------------------------------------- factorization --

TEST_F(CircuitTest, FlatCircuitRoundTrips) {
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(2.0, {{x_, 1}, {y_, 1}}), Monomial(3.0, {{x_, 1}, {z_, 1}}),
       Monomial(4.0, {})});
  ProvenanceCircuit c = FlatCircuit(p);
  ASSERT_TRUE(c.Validate().ok());
  EXPECT_TRUE(c.ToPolynomial() == p);
}

TEST_F(CircuitTest, FactorizeRoundTrips) {
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(2.0, {{x_, 1}, {y_, 1}}), Monomial(3.0, {{x_, 1}, {z_, 1}}),
       Monomial(5.0, {{y_, 1}, {z_, 1}})});
  ProvenanceCircuit c = FactorizePolynomial(p);
  ASSERT_TRUE(c.Validate().ok());
  EXPECT_TRUE(c.ToPolynomial() == p);
}

TEST_F(CircuitTest, FactorizeSharesCommonVariable) {
  // 2xy + 3xz: factoring x gives x*(2y + 3z) — fewer variable leaves than
  // the flat form.
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(2.0, {{x_, 1}, {y_, 1}}), Monomial(3.0, {{x_, 1}, {z_, 1}})});
  ProvenanceCircuit flat = FlatCircuit(p);
  ProvenanceCircuit factored = FactorizePolynomial(p);
  auto count_var_leaves = [&](const ProvenanceCircuit& c) {
    size_t leaves = 0;
    for (ProvenanceCircuit::GateId g = 0; g < c.gate_count(); ++g) {
      if (c.gate(g).kind == ProvenanceCircuit::GateKind::kVariable) {
        ++leaves;
      }
    }
    return leaves;
  };
  EXPECT_EQ(count_var_leaves(flat), 4u);      // x y x z
  EXPECT_EQ(count_var_leaves(factored), 3u);  // x (y z)
  EXPECT_TRUE(factored.ToPolynomial() == p);
}

TEST_F(CircuitTest, FactorizeHandlesExponents) {
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(1.0, {{x_, 2}}), Monomial(1.0, {{x_, 1}, {y_, 1}})});
  ProvenanceCircuit c = FactorizePolynomial(p);
  EXPECT_TRUE(c.ToPolynomial() == p);
}

TEST_F(CircuitTest, EmptyPolynomialFactorizes) {
  Polynomial p;
  ProvenanceCircuit c = FactorizePolynomial(p);
  ASSERT_TRUE(c.Validate().ok());
  Valuation val;
  EXPECT_DOUBLE_EQ(c.Evaluate(val), 0.0);
}

// Lossy abstraction composes with lossless factorization (the §5 "work in
// tandem" goal): abstract first, then factorize; the circuit evaluates
// exactly like the abstracted polynomial.
TEST_F(CircuitTest, AbstractionThenFactorizationPreservesEvaluation) {
  VariableTable vars;
  RunningExample ex = MakeRunningExample(vars);
  PolynomialSet polys = RunRunningExampleQuery(ex);
  AbstractionForest forest;
  auto pruned = MakeFigure2PlansTree(vars).PruneToPolynomials(polys);
  ASSERT_TRUE(pruned.ok());
  forest.AddTree(std::move(pruned).value());
  ValidVariableSet roots = ValidVariableSet::AllRoots(forest);
  PolynomialSet abstracted = roots.Apply(forest, polys);

  std::vector<ProvenanceCircuit> circuits = FactorizeSet(abstracted);
  Valuation val;
  val.Set(vars.Find("Plans"), 0.9);
  val.Set(ex.m3, 0.8);
  for (size_t i = 0; i < abstracted.count(); ++i) {
    EXPECT_NEAR(circuits[i].Evaluate(val), val.Evaluate(abstracted[i]),
                1e-9);
  }
}

// Substituting leaves in an already-factorized circuit equals abstracting
// the polynomial then factorizing, value-wise.
TEST_F(CircuitTest, SubstituteInCircuitMatchesAbstractedPolynomial) {
  VariableTable vars;
  RunningExample ex = MakeRunningExample(vars);
  PolynomialSet polys = RunRunningExampleQuery(ex);
  AbstractionForest forest;
  auto pruned = MakeFigure2PlansTree(vars).PruneToPolynomials(polys);
  ASSERT_TRUE(pruned.ok());
  forest.AddTree(std::move(pruned).value());
  ValidVariableSet roots = ValidVariableSet::AllRoots(forest);
  auto subst = roots.SubstitutionMap(forest);

  Valuation val;
  val.Set(vars.Find("Plans"), 1.2);
  val.Set(ex.m1, 0.7);
  PolynomialSet abstracted = roots.Apply(forest, polys);
  for (size_t i = 0; i < polys.count(); ++i) {
    ProvenanceCircuit factored = FactorizePolynomial(polys[i]);
    ProvenanceCircuit substituted = factored.ApplySubstitution(subst);
    EXPECT_NEAR(substituted.Evaluate(val), val.Evaluate(abstracted[i]),
                1e-6);
  }
}

// Property: factorization is lossless on random polynomials, and shrinks
// (or at worst matches) the flat circuit's variable-leaf count.
class FactorizePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(FactorizePropertyTest, LosslessOnRandomPolynomials) {
  Rng rng(31000 + GetParam());
  VariableTable vars;
  std::vector<VariableId> pool;
  for (int i = 0; i < 8; ++i) {
    pool.push_back(vars.Intern("r" + std::to_string(i)));
  }
  std::vector<Monomial> terms;
  const size_t n_terms = 3 + rng.Uniform(20);
  for (size_t t = 0; t < n_terms; ++t) {
    std::vector<Factor> f;
    size_t degree = 1 + rng.Uniform(3);
    for (size_t d = 0; d < degree; ++d) {
      f.push_back({pool[rng.Uniform(pool.size())],
                   static_cast<uint32_t>(1 + rng.Uniform(2))});
    }
    terms.emplace_back(rng.UniformReal(0.5, 9.5), std::move(f));
  }
  Polynomial p = Polynomial::FromMonomials(std::move(terms));

  ProvenanceCircuit factored = FactorizePolynomial(p);
  ASSERT_TRUE(factored.Validate().ok());
  EXPECT_TRUE(factored.ToPolynomial() == p);

  // Evaluation agreement under random valuations.
  for (int trial = 0; trial < 5; ++trial) {
    Valuation val;
    for (VariableId v : pool) val.Set(v, rng.UniformReal(0.2, 2.0));
    EXPECT_NEAR(factored.Evaluate(val), val.Evaluate(p),
                std::abs(val.Evaluate(p)) * 1e-9 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, FactorizePropertyTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace provabs
