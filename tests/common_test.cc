#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/interner.h"
#include "common/random.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/timer.h"

namespace provabs {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryOk) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, InvalidArgumentCarriesMessage) {
  Status s = Status::InvalidArgument("bad bound");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad bound");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad bound");
}

TEST(StatusTest, InfeasibleCode) {
  Status s = Status::Infeasible("no adequate VVS");
  EXPECT_EQ(s.code(), StatusCode::kInfeasible);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 7; ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("x");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "x");
}

// -------------------------------------------------------------- StatusOr --

TEST(StatusOrTest, ValueRoundTrip) {
  StatusOr<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(StatusOrTest, ErrorPropagates) {
  StatusOr<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrDeathTest, AccessingErrorValueAborts) {
  StatusOr<int> r(Status::Internal("boom"));
  EXPECT_DEATH((void)r.value(), "PROVABS_CHECK");
}

TEST(StatusOrDeathTest, OkStatusRejected) {
  EXPECT_DEATH(StatusOr<int>{Status::OK()}, "PROVABS_CHECK");
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformWithinBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntInclusiveEndpoints) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyFair) {
  Rng rng(17);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.5)) ++heads;
  }
  EXPECT_GT(heads, 4500);
  EXPECT_LT(heads, 5500);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngDeathTest, UniformZeroBoundAborts) {
  Rng rng(1);
  EXPECT_DEATH(rng.Uniform(0), "PROVABS_CHECK");
}

// -------------------------------------------------------------- Interner --

TEST(InternerTest, AssignsDenseIds) {
  StringInterner in;
  EXPECT_EQ(in.Intern("a"), 0u);
  EXPECT_EQ(in.Intern("b"), 1u);
  EXPECT_EQ(in.Intern("c"), 2u);
  EXPECT_EQ(in.size(), 3u);
}

TEST(InternerTest, InternIsIdempotent) {
  StringInterner in;
  uint32_t a = in.Intern("x");
  EXPECT_EQ(in.Intern("x"), a);
  EXPECT_EQ(in.size(), 1u);
}

TEST(InternerTest, FindMissingReturnsSentinel) {
  StringInterner in;
  EXPECT_EQ(in.Find("nope"), StringInterner::kNotFound);
}

TEST(InternerTest, NameRoundTrip) {
  StringInterner in;
  uint32_t id = in.Intern("hello");
  EXPECT_EQ(in.NameOf(id), "hello");
  EXPECT_EQ(in.Find("hello"), id);
}

TEST(InternerTest, ManyStrings) {
  StringInterner in;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.Intern("v" + std::to_string(i)),
              static_cast<uint32_t>(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(in.NameOf(i), "v" + std::to_string(i));
  }
}

// ----------------------------------------------------------------- Timer --

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer t;
  double a = t.ElapsedSeconds();
  double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(TimerTest, ResetRestarts) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sink, 0.0);  // Keeps the busy loop observable.
  t.Reset();
  EXPECT_LT(t.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace provabs
