#include "algo/compressor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algo/brute_force.h"
#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "algo/prox_summarizer.h"
#include "common/random.h"
#include "io/serializer.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

// -------------------------------------------------- registry mechanics --

/// A minimal stub compressor for registration tests.
class StubCompressor : public Compressor {
 public:
  explicit StubCompressor(std::string name) {
    info_.name = std::move(name);
    info_.summary = "stub";
    info_.deterministic = true;
  }

  const CompressorInfo& info() const override { return info_; }

  StatusOr<CompressionResult> Compress(
      const PolynomialSet&, const AbstractionForest&,
      const CompressOptions&) const override {
    return Status::Unimplemented("stub");
  }

 private:
  CompressorInfo info_;
};

TEST(CompressorRegistryTest, DefaultRegistryHasAllFourBuiltins) {
  std::vector<std::string> names = CompressorRegistry::Default().Names();
  ASSERT_EQ(names.size(), 4u);
  // std::map order: sorted.
  EXPECT_EQ(names[0], "brute");
  EXPECT_EQ(names[1], "greedy");
  EXPECT_EQ(names[2], "opt");
  EXPECT_EQ(names[3], "prox");
}

TEST(CompressorRegistryTest, BuiltinCapabilitiesMatchTheAlgorithms) {
  std::vector<CompressorInfo> infos = CompressorRegistry::Default().Infos();
  ASSERT_EQ(infos.size(), 4u);
  // brute: exact, no tradeoff machinery.
  EXPECT_EQ(infos[0].name, "brute");
  EXPECT_TRUE(infos[0].exact);
  EXPECT_FALSE(infos[0].supports_tradeoff);
  EXPECT_TRUE(infos[0].produces_cut);
  // greedy: heuristic.
  EXPECT_EQ(infos[1].name, "greedy");
  EXPECT_FALSE(infos[1].exact);
  EXPECT_TRUE(infos[1].produces_cut);
  // opt: exact and the only one whose DP derives the Pareto frontier.
  EXPECT_EQ(infos[2].name, "opt");
  EXPECT_TRUE(infos[2].exact);
  EXPECT_TRUE(infos[2].supports_tradeoff);
  EXPECT_TRUE(infos[2].produces_cut);
  // prox: competitor heuristic producing a grouping, not a cut.
  EXPECT_EQ(infos[3].name, "prox");
  EXPECT_FALSE(infos[3].exact);
  EXPECT_FALSE(infos[3].produces_cut);
  for (const CompressorInfo& info : infos) {
    EXPECT_TRUE(info.deterministic) << info.name;
    EXPECT_FALSE(info.summary.empty()) << info.name;
    // Every built-in enforces CompressOptions::time_budget_ms (each at its
    // own check granularity); none silently ignores it.
    EXPECT_TRUE(info.supports_time_budget) << info.name;
  }
}

TEST(CompressorRegistryTest, RegistrationAndLookup) {
  CompressorRegistry registry;
  EXPECT_EQ(registry.Find("x"), nullptr);
  ASSERT_TRUE(registry.Register(std::make_unique<StubCompressor>("x")).ok());
  EXPECT_NE(registry.Find("x"), nullptr);
  EXPECT_EQ(registry.Names().size(), 1u);
}

TEST(CompressorRegistryTest, DuplicateNameIsRejected) {
  CompressorRegistry registry;
  ASSERT_TRUE(registry.Register(std::make_unique<StubCompressor>("x")).ok());
  Status dup = registry.Register(std::make_unique<StubCompressor>("x"));
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  // The original registration survives.
  EXPECT_NE(registry.Find("x"), nullptr);
  EXPECT_EQ(registry.Names().size(), 1u);
}

TEST(CompressorRegistryTest, NullAndUnnamedRegistrationsAreRejected) {
  CompressorRegistry registry;
  EXPECT_EQ(registry.Register(nullptr).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register(std::make_unique<StubCompressor>("")).code(),
            StatusCode::kInvalidArgument);
}

TEST(CompressorRegistryTest, UnknownLookupEnumeratesRegisteredNames) {
  auto resolved = CompressorRegistry::Default().Resolve("quantum");
  ASSERT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kInvalidArgument);
  std::string message = resolved.status().message();
  EXPECT_NE(message.find("quantum"), std::string::npos);
  EXPECT_NE(message.find("brute, greedy, opt, prox"), std::string::npos);
}

TEST(CompressorRegistryTest, FreshRegistryWithBuiltinsMatchesDefault) {
  CompressorRegistry registry;
  ASSERT_TRUE(RegisterBuiltinCompressors(registry).ok());
  EXPECT_EQ(registry.Names(), CompressorRegistry::Default().Names());
  // Registering the builtins twice trips duplicate detection.
  EXPECT_FALSE(RegisterBuiltinCompressors(registry).ok());
}

// ---------------------------------------------- adapter equivalence -----

/// Telephony workload fixture shared by the differential tests.
class RegistryDifferentialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelephonyConfig config;
    config.num_customers = 300;
    config.num_plans = 32;
    config.num_months = 12;
    config.num_zip_codes = 8;
    Rng rng(config.seed);
    Database db = GenerateTelephony(config, rng);
    tv_ = MakeTelephonyVars(vars_, config);
    polys_ = RunTelephonyQuery(db, tv_);
    forest_.AddTree(BuildUniformTree(vars_, tv_.plan_vars, {4, 2}, "RD_"));
    ASSERT_TRUE(forest_.Validate().ok());
    ASSERT_TRUE(forest_.CheckCompatible(polys_).ok());
    bound_ = polys_.SizeM() * 3 / 4;
  }

  VariableTable vars_;
  TelephonyVars tv_;
  PolynomialSet polys_;
  AbstractionForest forest_;
  size_t bound_ = 0;
};

/// Registry routing must be a pure indirection: the compressed artifact a
/// registry-routed run produces serializes to the SAME BYTES as the direct
/// algorithm call's. Anything else would make cache entries and shipped
/// artifacts depend on which API layer compressed them.
TEST_F(RegistryDifferentialTest, OptRouteIsByteIdenticalToDirectCall) {
  auto direct = OptimalSingleTree(polys_, forest_, 0, bound_);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  CompressOptions options;
  options.bound = bound_;
  auto routed = CompressorRegistry::Default().Find("opt")->Compress(
      polys_, forest_, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  EXPECT_EQ(routed->loss.monomial_loss, direct->loss.monomial_loss);
  EXPECT_EQ(routed->loss.variable_loss, direct->loss.variable_loss);
  EXPECT_EQ(routed->adequate, direct->adequate);
  EXPECT_EQ(routed->Describe(forest_, vars_),
            direct->vvs.ToString(forest_, vars_));
  EXPECT_EQ(
      SerializePolynomialSet(routed->Apply(forest_, polys_), vars_),
      SerializePolynomialSet(direct->vvs.Apply(forest_, polys_), vars_));
}

TEST_F(RegistryDifferentialTest, GreedyRouteIsByteIdenticalToDirectCall) {
  auto direct = GreedyMultiTree(polys_, forest_, bound_);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();

  CompressOptions options;
  options.bound = bound_;
  auto routed = CompressorRegistry::Default().Find("greedy")->Compress(
      polys_, forest_, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  EXPECT_EQ(routed->loss.monomial_loss, direct->loss.monomial_loss);
  EXPECT_EQ(routed->loss.variable_loss, direct->loss.variable_loss);
  EXPECT_EQ(routed->Describe(forest_, vars_),
            direct->vvs.ToString(forest_, vars_));
  EXPECT_EQ(
      SerializePolynomialSet(routed->Apply(forest_, polys_), vars_),
      SerializePolynomialSet(direct->vvs.Apply(forest_, polys_), vars_));
}

TEST_F(RegistryDifferentialTest, BruteRouteMatchesDirectCall) {
  // A tiny sub-forest keeps the cut space enumerable.
  AbstractionForest small;
  std::vector<VariableId> leaves(tv_.plan_vars.begin(),
                                 tv_.plan_vars.begin() + 8);
  small.AddTree(BuildUniformTree(vars_, leaves, {2, 2}, "RB_"));
  size_t bound = polys_.SizeM() - 1;

  auto direct = BruteForce(polys_, small, bound);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  CompressOptions options;
  options.bound = bound;
  auto routed = CompressorRegistry::Default().Find("brute")->Compress(
      polys_, small, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  // Brute ties may pick different witness cuts; the optimal losses agree.
  EXPECT_EQ(routed->loss.variable_loss, direct->loss.variable_loss);
  EXPECT_TRUE(routed->adequate);
}

TEST_F(RegistryDifferentialTest, ProxRouteMatchesDirectCallAndApplies) {
  AbstractionForest small;
  std::vector<VariableId> leaves(tv_.plan_vars.begin(),
                                 tv_.plan_vars.begin() + 8);
  small.AddTree(BuildUniformTree(vars_, leaves, {2, 2}, "RP_"));
  size_t bound = polys_.SizeM() - 10;

  auto direct = ProxSummarize(polys_, small, bound);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  CompressOptions options;
  options.bound = bound;
  auto routed = CompressorRegistry::Default().Find("prox")->Compress(
      polys_, small, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();

  EXPECT_TRUE(routed->grouping);
  EXPECT_EQ(routed->substitution, direct->substitution);
  EXPECT_EQ(routed->loss.monomial_loss, direct->loss.monomial_loss);
  EXPECT_EQ(routed->adequate, direct->adequate);
  // The unified Apply performs the substitution: same |P↓S|_M as applying
  // the direct substitution by hand.
  PolynomialSet by_hand =
      polys_.MapVariables(SubstitutionFn(direct->substitution));
  EXPECT_EQ(routed->Apply(small, polys_).SizeM(), by_hand.SizeM());
  // Describe renders merged groups deterministically.
  std::string described = routed->Describe(small, vars_);
  EXPECT_EQ(described.front(), '{');
  EXPECT_EQ(described.back(), '}');
}

/// A raw grouping result contains synthesized representatives outside the
/// VariableTable; InternGrouping must make the applied set serializable
/// and round-trippable.
TEST_F(RegistryDifferentialTest, InternGroupingMakesProxSerializable) {
  AbstractionForest small;
  std::vector<VariableId> leaves(tv_.plan_vars.begin(),
                                 tv_.plan_vars.begin() + 8);
  small.AddTree(BuildUniformTree(vars_, leaves, {2, 2}, "RI_"));
  CompressOptions options;
  options.bound = polys_.SizeM() - 10;
  auto routed = CompressorRegistry::Default().Find("prox")->Compress(
      polys_, small, options);
  ASSERT_TRUE(routed.ok()) << routed.status().ToString();
  ASSERT_TRUE(routed->grouping);

  size_t applied_before = routed->Apply(small, polys_).SizeM();
  routed->InternGrouping(vars_);
  PolynomialSet compressed = routed->Apply(small, polys_);
  // Interning renames representatives; it must not change the shape.
  EXPECT_EQ(compressed.SizeM(), applied_before);

  std::string bytes = SerializePolynomialSet(compressed, vars_);
  VariableTable fresh;
  auto decoded = DeserializePolynomialSet(bytes, fresh);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->SizeM(), compressed.SizeM());
  EXPECT_EQ(decoded->count(), compressed.count());
}

// ---------------------------------------------------- time budgets ------

TEST_F(RegistryDifferentialTest, ExpiredDeadlineAbortsBruteAndProx) {
  BruteForceOptions brute;
  brute.deadline = Deadline::AfterMillis(0);
  auto b = BruteForce(polys_, forest_, polys_.SizeM() - 1, brute);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kOutOfRange);

  ProxOptions prox;
  prox.deadline = Deadline::AfterMillis(0);
  auto p = ProxSummarize(polys_, forest_, polys_.SizeM() / 2, prox);
  ASSERT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kOutOfRange);
}

// The polynomial-time algorithms are ANYTIME: they check the deadline in
// their outer loops (opt per DP node, greedy per merge round) and on
// expiry return the best-so-far VALID cut flagged budget_exhausted instead
// of failing. An already-expired deadline is the deterministic probe: the
// returned cut must still be valid and its reported loss exact.
TEST_F(RegistryDifferentialTest, ExpiredDeadlineYieldsAnytimeOptCut) {
  OptimalOptions opt;
  opt.deadline = Deadline::AfterMillis(0);
  auto o = OptimalSingleTree(polys_, forest_, 0, bound_, opt);
  ASSERT_TRUE(o.ok()) << o.status().ToString();
  EXPECT_TRUE(o->budget_exhausted);
  // Degraded runs never retain patchable DP tables.
  EXPECT_EQ(o->dp_state, nullptr);
  // The reported loss is computed on the real polynomials, so it must
  // reconcile with applying the cut.
  EXPECT_EQ(o->loss, ComputeLossNaive(polys_, forest_, o->vvs));
  // Anytime expiry preserves feasibility exactly: the degraded root array
  // still carries the tree-maximal ML, so adequacy matches the full run.
  auto full = OptimalSingleTree(polys_, forest_, 0, bound_);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->budget_exhausted);
  EXPECT_EQ(o->adequate, full->adequate);
  // Optimality is what the budget traded away: the anytime VL may only be
  // worse (never better) than the optimum.
  EXPECT_GE(o->loss.variable_loss, full->loss.variable_loss);
}

TEST_F(RegistryDifferentialTest, ExpiredDeadlineYieldsAnytimeGreedyCut) {
  GreedyOptions greedy;
  greedy.deadline = Deadline::AfterMillis(0);
  auto g = GreedyMultiTree(polys_, forest_, bound_, greedy);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(g->budget_exhausted);
  // Zero merge rounds ran: the best-so-far cut is the all-leaves VVS with
  // zero loss, inadequate for any nontrivial bound.
  EXPECT_EQ(g->loss.monomial_loss, 0u);
  EXPECT_FALSE(g->adequate);
  EXPECT_EQ(g->loss, ComputeLossNaive(polys_, forest_, g->vvs));
}

// The registry-level contract: every registered algorithm honors
// CompressOptions::time_budget_ms, but the honoring splits by kind.
// "brute" and "prox" have no useful partial answer, so expiry aborts with
// kOutOfRange; the anytime "opt" and "greedy" return their best-so-far
// valid cut flagged budget_exhausted. What must never happen is a silently
// ignored budget — a budgeted run that takes the unbudgeted time and
// reports budget_exhausted = false.
//
// The expiry probes run through the registry adapter (so they also prove
// the adapter actually threads the budget into the algorithm options):
// "brute" and "prox" get a 1ms budget against instances that cost them
// hundreds of milliseconds (hundreds of full-loss cut evaluations /
// O(|V|²) oracle batches) — a 100x+ margin; the polynomial-time "opt" and
// "greedy" are first timed unbudgeted, and the test skips loudly if the
// machine finishes them too fast for a 1ms budget to be distinguishable
// (their zero-work anytime answer is covered deterministically by the
// AfterMillis(0) tests above).
TEST(TimeBudgetBattery, EveryRegisteredAlgorithmHonorsTimeBudget) {
  const CompressorRegistry& registry = CompressorRegistry::Default();
  for (const CompressorInfo& info : registry.Infos()) {
    ASSERT_TRUE(info.supports_time_budget) << info.name;
  }

  // A workload heavy enough that every algorithm needs well over 1ms: 2000
  // customers over 128 plans, abstracted by a 7-level binary tree (255
  // nodes — the opt DP's cost scales with node count and bucket-map size).
  TelephonyConfig config;
  config.num_customers = 2000;
  config.num_plans = 128;
  config.num_months = 12;
  config.num_zip_codes = 8;
  Rng rng(config.seed);
  Database db = GenerateTelephony(config, rng);
  VariableTable vars;
  TelephonyVars tv = MakeTelephonyVars(vars, config);
  PolynomialSet polys = RunTelephonyQuery(db, tv);
  AbstractionForest deep;
  deep.AddTree(BuildUniformTree(vars, tv.plan_vars, {2, 2, 2, 2, 2, 2},
                                "TBdeep_"));
  ASSERT_TRUE(deep.CheckCompatible(polys).ok());

  // brute needs an enumerable cut space; 8 leaves under {2, 2} keep it
  // small, but each cut costs a full loss recount over ~10k monomials —
  // tens of milliseconds unbudgeted, a comfortable margin over 1ms with
  // the deadline checked per cut.
  AbstractionForest small;
  std::vector<VariableId> brute_leaves(tv.plan_vars.begin(),
                                       tv.plan_vars.begin() + 8);
  small.AddTree(BuildUniformTree(vars, brute_leaves, {2, 2}, "TBsmall_"));

  // The exponential/quadratic algorithms: straight 1ms budget.
  for (const char* name : {"brute", "prox"}) {
    CompressOptions options;
    options.bound = polys.SizeM() / 2;
    options.time_budget_ms = 1;
    const AbstractionForest& forest =
        std::string(name) == "brute" ? small : deep;
    auto result = registry.Find(name)->Compress(polys, forest, options);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange) << name;
  }

  // The anytime polynomial-time algorithms: calibrate unbudgeted first. An
  // algorithm the machine finishes too fast for a 1ms budget to expire
  // distinguishably is skipped — per algorithm, so one fast algorithm
  // never drops the other's coverage (their zero-work anytime answer is
  // covered deterministically by the AfterMillis(0) tests above). The skip
  // is surfaced at the end so every eligible algorithm has been probed.
  std::vector<std::string> too_fast;
  for (const char* name : {"greedy", "opt"}) {
    CompressOptions options;
    options.bound = polys.SizeM() / 2;
    Timer timer;
    auto unbudgeted = registry.Find(name)->Compress(polys, deep, options);
    ASSERT_TRUE(unbudgeted.ok())
        << name << ": " << unbudgeted.status().ToString();
    EXPECT_FALSE(unbudgeted->budget_exhausted) << name;
    const double elapsed_ms = timer.ElapsedMillis();
    if (elapsed_ms < 4.0) {
      too_fast.push_back(std::string(name) + " (" +
                         std::to_string(elapsed_ms) + "ms unbudgeted)");
      continue;
    }
    options.time_budget_ms = 1;
    auto budgeted = registry.Find(name)->Compress(polys, deep, options);
    ASSERT_TRUE(budgeted.ok())
        << name << ": " << budgeted.status().ToString();
    EXPECT_TRUE(budgeted->budget_exhausted)
        << name << " ran " << elapsed_ms
        << "ms unbudgeted yet claims a 1ms budget never expired";
    // Anytime answers are still real answers: the reported loss is exact.
    EXPECT_EQ(budgeted->loss,
              ComputeLossNaive(polys, deep, budgeted->vvs))
        << name;
  }
  if (!too_fast.empty()) {
    std::string joined;
    for (const std::string& entry : too_fast) {
      if (!joined.empty()) joined += ", ";
      joined += entry;
    }
    GTEST_SKIP() << "machine too fast to distinguish a 1ms budget for: "
                 << joined;
  }
}

TEST(DeadlineTest, InfiniteNeverExpiresZeroExpiresImmediately) {
  EXPECT_FALSE(Deadline::Infinite().Expired());
  EXPECT_TRUE(Deadline::Infinite().infinite());
  EXPECT_TRUE(Deadline::AfterMillis(0).Expired());
  EXPECT_FALSE(Deadline::AfterMillis(0).infinite());
}

}  // namespace
}  // namespace provabs
