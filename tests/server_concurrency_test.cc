/// The concurrency battery for the serving layer's single-flight
/// compression path (run plain and under ThreadSanitizer in CI):
///
///  - InflightRegistry units: leader/waiter roles, failure non-stickiness.
///  - A 16-way burst of identical compress requests runs the DP exactly
///    once (counted via the injectable compress hook; the leader is held
///    until all 15 waiters have actually joined, so dedup is deterministic,
///    not timing-dependent).
///  - Distinct-key bursts demonstrably overlap: every DP is held at one
///    barrier that only opens when all of them are in flight at once.
///  - A failed DP is shared with concurrent waiters but never poisons the
///    cache: later requests recompute, and a feasible request succeeds.
///  - Randomized differential suite: for seeded random forests/bounds, the
///    responses of a concurrently hammered service (mixed same-key and
///    distinct-key) are byte-identical to a serial service's output — down
///    to the serialized compressed polynomial sets.
///  - A 16-thread mixed load/compress/evaluate/invalidate stress with
///    generation bumps mid-flight (the EvaluateBatcher + ThreadPool
///    invalidation-race soak).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "server/artifact_store.h"
#include "server/inflight_registry.h"
#include "server/provenance_service.h"
#include "server/wire_protocol.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

using Clock = std::chrono::steady_clock;
constexpr std::chrono::seconds kTimeout(30);

/// Blocks until `gauge()` reports `target`, yielding the (single, on CI)
/// CPU between polls; returns false on timeout instead of hanging the
/// suite.
template <typename Fn>
bool AwaitGauge(const Fn& gauge, uint64_t target) {
  auto deadline = Clock::now() + kTimeout;
  while (gauge() != target) {
    if (Clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

/// All-or-timeout rendezvous: ArriveAndWait returns true only if all
/// `expected` participants were inside it simultaneously.
class Barrier {
 public:
  explicit Barrier(size_t expected) : expected_(expected) {}

  bool ArriveAndWait() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (++arrived_ >= expected_) {
      cv_.notify_all();
      return true;
    }
    return cv_.wait_until(lock, Clock::now() + kTimeout,
                          [&] { return arrived_ >= expected_; });
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  size_t arrived_ = 0;
  const size_t expected_;
};

// -------------------------------------------------- InflightRegistry ----

TEST(InflightRegistryTest, SoleCallerComputesAndIsNotDeduped) {
  InflightRegistry registry;
  auto value = std::make_shared<const int>(7);
  bool deduped = true;
  InflightRegistry::Outcome out = registry.DoOrWait(
      "k", [&] { return InflightRegistry::Outcome{Status::OK(), value}; },
      &deduped);
  EXPECT_FALSE(deduped);
  EXPECT_TRUE(out.status.ok());
  EXPECT_EQ(out.value.get(), value.get());
  EXPECT_EQ(registry.stats().computations, 1u);
  EXPECT_EQ(registry.stats().dedup_hits, 0u);
  EXPECT_EQ(registry.KeysNow(), 0u);  // slot erased after publication
}

TEST(InflightRegistryTest, FailureIsNotSticky) {
  InflightRegistry registry;
  int runs = 0;
  auto fail = [&] {
    ++runs;
    return InflightRegistry::Outcome{Status::Internal("boom"), nullptr};
  };
  EXPECT_EQ(registry.DoOrWait("k", fail).status.code(),
            StatusCode::kInternal);
  // The failed slot is gone; a second call computes again.
  EXPECT_EQ(registry.DoOrWait("k", fail).status.code(),
            StatusCode::kInternal);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(registry.stats().computations, 2u);
  EXPECT_EQ(registry.stats().dedup_hits, 0u);
}

TEST(InflightRegistryTest, ConcurrentCallersShareOneComputation) {
  InflightRegistry registry;
  constexpr int kCallers = 8;
  std::atomic<int> runs{0};
  auto value = std::make_shared<const int>(42);
  std::vector<std::thread> threads;
  std::vector<InflightRegistry::Outcome> outcomes(kCallers);
  std::vector<char> dedup(kCallers, 0);
  for (int c = 0; c < kCallers; ++c) {
    threads.emplace_back([&, c] {
      bool deduped = false;
      outcomes[c] = registry.DoOrWait(
          "k",
          [&] {
            runs.fetch_add(1);
            // Hold the slot until every other caller has joined it, so
            // the dedup count below is exact rather than scheduling luck.
            EXPECT_TRUE(AwaitGauge([&] { return registry.WaitersNow(); },
                                   kCallers - 1));
            return InflightRegistry::Outcome{Status::OK(), value};
          },
          &deduped);
      dedup[c] = deduped ? 1 : 0;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(runs.load(), 1);
  int dedup_count = 0;
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(outcomes[c].status.ok());
    EXPECT_EQ(outcomes[c].value.get(), value.get());
    dedup_count += dedup[c];
  }
  EXPECT_EQ(dedup_count, kCallers - 1);
  InflightRegistry::Stats stats = registry.stats();
  EXPECT_EQ(stats.computations, 1u);
  EXPECT_EQ(stats.dedup_hits, static_cast<uint64_t>(kCallers - 1));
  EXPECT_EQ(stats.peak_waiters, static_cast<uint64_t>(kCallers - 1));
  EXPECT_EQ(registry.WaitersNow(), 0u);
  EXPECT_EQ(registry.KeysNow(), 0u);
}

// ------------------------------------------- service-level single-flight --

/// Running-example service fixture with an injectable DP counter.
class SingleFlightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RunningExample ex = MakeRunningExample(vars_);
    polys_ = RunRunningExampleQuery(ex);
    polys_bytes_ = SerializePolynomialSet(polys_, vars_);
    AbstractionForest plans;
    plans.AddTree(MakeFigure2PlansTree(vars_));
    plans_bytes_ = SerializeForest(plans, vars_);
  }

  /// Builds a service whose compress hook runs `hook` after bumping the
  /// DP-execution counter.
  std::unique_ptr<ProvenanceService> MakeService(
      std::function<void(const ArtifactStore::ResultKey&)> hook = nullptr) {
    ServiceOptions options;
    options.eval_threads = 4;
    options.compress_hook = [this, hook](const ArtifactStore::ResultKey& k) {
      dp_runs_.fetch_add(1);
      if (hook) hook(k);
    };
    auto service = std::make_unique<ProvenanceService>(options);
    LoadRequest load;
    load.artifact = "ex";
    load.polys_bytes = polys_bytes_;
    load.forests = {{"plans", plans_bytes_}};
    Response resp = service->Load(load);
    EXPECT_TRUE(resp.ok()) << resp.message;
    return service;
  }

  CompressRequest Request(uint64_t bound, const std::string& algo = "opt") {
    CompressRequest req;
    req.artifact = "ex";
    req.forest = "plans";
    req.algo = algo;
    req.bound = bound;
    return req;
  }

  VariableTable vars_;
  PolynomialSet polys_;
  std::string polys_bytes_;
  std::string plans_bytes_;
  std::atomic<uint64_t> dp_runs_{0};
  /// Set by tests whose hook needs the service's own registry gauges (the
  /// hook closure is built before the service exists).
  ProvenanceService* service_ = nullptr;
};

TEST_F(SingleFlightTest, SameKeyBurstRunsDpExactlyOnce) {
  constexpr int kBurst = 16;
  // The leader parks inside the DP hook until all 15 other requests are
  // blocked on its shared_future — every non-leader is then provably a
  // dedup waiter, not a lucky cache hit.
  auto service = MakeService([&](const ArtifactStore::ResultKey&) {
    EXPECT_TRUE(AwaitGauge(
        [&] { return service_->store().inflight().WaitersNow(); },
        kBurst - 1));
  });
  service_ = service.get();

  const uint64_t bound = polys_.SizeM() - 1;
  std::vector<Response> responses(kBurst);
  std::vector<std::thread> threads;
  for (int c = 0; c < kBurst; ++c) {
    threads.emplace_back(
        [&, c] { responses[c] = service->Compress(Request(bound)); });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(dp_runs_.load(), 1u);
  int leaders = 0;
  int dedup_hits = 0;
  for (const Response& resp : responses) {
    ASSERT_TRUE(resp.ok()) << resp.message;
    if (resp.dedup_hit) {
      ++dedup_hits;
    } else {
      EXPECT_FALSE(resp.cache_hit);
      ++leaders;
    }
  }
  EXPECT_EQ(leaders, 1);
  EXPECT_EQ(dedup_hits, kBurst - 1);

  // Every response carries the result of the single DP run, and that
  // result is identical to a serial service's answer.
  ProvenanceService serial;
  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = polys_bytes_;
  load.forests = {{"plans", plans_bytes_}};
  ASSERT_TRUE(serial.Load(load).ok());
  Response expected = serial.Compress(Request(bound));
  ASSERT_TRUE(expected.ok());
  for (const Response& resp : responses) {
    EXPECT_EQ(resp.monomial_loss, expected.monomial_loss);
    EXPECT_EQ(resp.variable_loss, expected.variable_loss);
    EXPECT_EQ(resp.adequate, expected.adequate);
    EXPECT_EQ(resp.vvs, expected.vvs);
    EXPECT_EQ(resp.compressed_monomials, expected.compressed_monomials);
  }

  // The cumulative counters surfaced on the wire agree: one more identical
  // request is now a plain cache hit on a fully drained registry.
  Response after = service->Compress(Request(bound));
  EXPECT_TRUE(after.cache_hit);
  EXPECT_FALSE(after.dedup_hit);
  EXPECT_EQ(after.stats.dedup_hits, static_cast<uint64_t>(kBurst - 1));
  EXPECT_EQ(after.stats.inflight_waiters, 0u);
  EXPECT_EQ(dp_runs_.load(), 1u);
}

TEST_F(SingleFlightTest, DistinctKeyBurstsOverlap) {
  // Eight requests with eight distinct bounds (eight distinct cache keys).
  // Each DP blocks at a shared barrier that only opens once ALL eight are
  // inside their DP simultaneously — if compression were serialized by a
  // service-wide lock, at most one DP could be in flight and the barrier
  // would time out.
  constexpr int kDistinct = 8;
  Barrier barrier(kDistinct);
  std::atomic<int> overlapped{0};
  auto service = MakeService([&](const ArtifactStore::ResultKey&) {
    if (barrier.ArriveAndWait()) overlapped.fetch_add(1);
  });

  const uint64_t base = polys_.SizeM() - 1;
  std::vector<Response> responses(kDistinct);
  std::vector<std::thread> threads;
  for (int c = 0; c < kDistinct; ++c) {
    threads.emplace_back([&, c] {
      responses[c] = service->Compress(Request(base - c));
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(overlapped.load(), kDistinct);
  EXPECT_EQ(dp_runs_.load(), static_cast<uint64_t>(kDistinct));
  for (const Response& resp : responses) {
    ASSERT_TRUE(resp.ok()) << resp.message;
    EXPECT_FALSE(resp.cache_hit);
    EXPECT_FALSE(resp.dedup_hit);
  }
}

TEST_F(SingleFlightTest, FailedDpSharedWithWaitersButNeverCached) {
  constexpr int kBurst = 8;
  std::atomic<bool> burst_active{true};
  auto service = MakeService([&](const ArtifactStore::ResultKey&) {
    // Only the concurrent burst holds its leader; the sequential requests
    // after the join run straight through.
    if (!burst_active.load()) return;
    EXPECT_TRUE(AwaitGauge(
        [&] { return service_->store().inflight().WaitersNow(); },
        kBurst - 1));
  });
  service_ = service.get();

  // Bound 1 is infeasible for the running example (see server_test.cc).
  std::vector<Response> responses(kBurst);
  std::vector<std::thread> threads;
  for (int c = 0; c < kBurst; ++c) {
    threads.emplace_back(
        [&, c] { responses[c] = service->Compress(Request(1)); });
  }
  for (auto& t : threads) t.join();
  burst_active.store(false);

  // One DP ran; the failure was shared with all concurrent waiters.
  EXPECT_EQ(dp_runs_.load(), 1u);
  for (const Response& resp : responses) {
    EXPECT_EQ(resp.code, StatusCode::kInfeasible);
  }

  // Non-poisoning, part 1: the failure was never published to the cache.
  EXPECT_EQ(service->Compress(Request(1)).code, StatusCode::kInfeasible);
  EXPECT_EQ(dp_runs_.load(), 2u);  // recomputed, not replayed from a slot
  Response stats_probe = service->Info(InfoRequest{});
  EXPECT_EQ(stats_probe.stats.result_count, 0u);

  // Non-poisoning, part 2: a feasible request on the same artifact works.
  Response good = service->Compress(Request(polys_.SizeM() - 1));
  ASSERT_TRUE(good.ok()) << good.message;
  EXPECT_FALSE(good.cache_hit);
}

// ------------------------------------------- randomized differential ----

/// Small seeded telephony instance (not the 2-polynomial running example:
/// randomized forests need a real leaf population).
struct RandomWorkload {
  std::shared_ptr<VariableTable> vars;
  PolynomialSet polys;
  std::string polys_bytes;
  std::vector<std::pair<std::string, std::string>> forests;
  std::vector<VariableId> month_vars;
};

RandomWorkload MakeRandomWorkload(uint64_t seed) {
  RandomWorkload w;
  w.vars = std::make_shared<VariableTable>();
  TelephonyConfig config;
  config.num_customers = 120;
  config.num_plans = 32;
  config.num_months = 6;
  config.num_zip_codes = 12;
  config.seed = seed;
  Rng rng(seed);
  Database db = GenerateTelephony(config, rng);
  TelephonyVars tv = MakeTelephonyVars(*w.vars, config);
  w.polys = RunTelephonyQuery(db, tv);
  w.polys_bytes = SerializePolynomialSet(w.polys, *w.vars);
  w.month_vars = tv.month_vars;

  // Seeded random forests: uniform trees over the plan leaves with
  // random fan-out shapes.
  const std::vector<std::vector<uint32_t>> shapes = {
      {2}, {4}, {8}, {2, 2}, {4, 4}, {2, 8}};
  for (int f = 0; f < 3; ++f) {
    AbstractionForest forest;
    const auto& shape = shapes[rng.Uniform(shapes.size())];
    forest.AddTree(BuildUniformTree(*w.vars, tv.plan_vars, shape,
                                    "R" + std::to_string(f) + "_"));
    w.forests.emplace_back("f" + std::to_string(f),
                           SerializeForest(forest, *w.vars));
  }
  return w;
}

TEST(ServerConcurrencyDifferentialTest, ConcurrentMatchesSerialByteForByte) {
  const RandomWorkload w = MakeRandomWorkload(/*seed=*/20260730);

  // A seeded pool of request keys, mixing forests, algorithms, and bounds
  // (some repeated → same-key collisions, some unique → distinct-key
  // parallelism; a few infeasibly small → shared failures).
  Rng rng(7);
  struct Key {
    std::string forest;
    std::string algo;
    uint64_t bound;
  };
  std::vector<Key> keys;
  const uint64_t size_m = w.polys.SizeM();
  for (int i = 0; i < 10; ++i) {
    keys.push_back(Key{"f" + std::to_string(rng.Uniform(3)),
                       rng.Bernoulli(0.5) ? "opt" : "greedy",
                       rng.Bernoulli(0.2)
                           ? rng.Uniform(3)  // likely infeasible
                           : size_m / 2 + rng.Uniform(size_m / 2)});
  }

  auto load = [&](ProvenanceService& service) {
    LoadRequest req;
    req.artifact = "rnd";
    req.polys_bytes = w.polys_bytes;
    req.forests = w.forests;
    Response resp = service.Load(req);
    ASSERT_TRUE(resp.ok()) << resp.message;
  };
  auto request = [&](const Key& k) {
    CompressRequest req;
    req.artifact = "rnd";
    req.forest = k.forest;
    req.algo = k.algo;
    req.bound = k.bound;
    return req;
  };

  // Serial reference: one thread, each key once.
  ProvenanceService serial;
  load(serial);
  std::vector<Response> expected;
  for (const Key& k : keys) expected.push_back(serial.Compress(request(k)));

  // Concurrent run: 8 threads × 3 rounds over the same key pool, shifted
  // per thread so every moment mixes same-key and distinct-key traffic.
  ProvenanceService concurrent;
  load(concurrent);
  constexpr int kThreads = 8;
  constexpr int kRounds = 3;
  std::vector<std::vector<Response>> responses(
      kThreads, std::vector<Response>(kRounds * keys.size()));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < keys.size(); ++i) {
          const Key& k = keys[(i + t) % keys.size()];
          responses[t][r * keys.size() + i] =
              concurrent.Compress(request(k));
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  // Every concurrent response matches the serial response for its key.
  std::map<std::string, const Response*> by_key;
  for (size_t i = 0; i < keys.size(); ++i) {
    by_key[keys[i].forest + "|" + keys[i].algo + "|" +
           std::to_string(keys[i].bound)] = &expected[i];
  }
  for (int t = 0; t < kThreads; ++t) {
    for (int r = 0; r < kRounds; ++r) {
      for (size_t i = 0; i < keys.size(); ++i) {
        const Key& k = keys[(i + t) % keys.size()];
        const Response& got = responses[t][r * keys.size() + i];
        const Response& want =
            *by_key[k.forest + "|" + k.algo + "|" + std::to_string(k.bound)];
        EXPECT_EQ(got.code, want.code);
        EXPECT_EQ(got.monomial_loss, want.monomial_loss);
        EXPECT_EQ(got.variable_loss, want.variable_loss);
        EXPECT_EQ(got.adequate, want.adequate);
        EXPECT_EQ(got.vvs, want.vvs);
        EXPECT_EQ(got.compressed_monomials, want.compressed_monomials);
      }
    }
  }

  // Byte-identical: for every successful key, the compressed polynomial
  // set cached by the concurrent service serializes to exactly the bytes
  // the serial service produced.
  auto artifact_of = [](ProvenanceService& s) {
    return s.store().Get("rnd");
  };
  auto serial_artifact = artifact_of(serial);
  auto concurrent_artifact = artifact_of(concurrent);
  ASSERT_NE(serial_artifact, nullptr);
  ASSERT_NE(concurrent_artifact, nullptr);
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!expected[i].ok()) continue;
    ArtifactStore::ResultKey rk{"rnd", serial_artifact->generation,
                                keys[i].forest, keys[i].bound,
                                keys[i].algo};
    auto serial_result = serial.store().LookupResult(rk);
    rk.generation = concurrent_artifact->generation;
    auto concurrent_result = concurrent.store().LookupResult(rk);
    ASSERT_NE(serial_result, nullptr) << "key " << i;
    ASSERT_NE(concurrent_result, nullptr) << "key " << i;
    EXPECT_EQ(SerializePolynomialSet(concurrent_result->compressed,
                                     *concurrent_artifact->vars),
              SerializePolynomialSet(serial_result->compressed,
                                     *serial_artifact->vars))
        << "key " << i;
  }

  // Concurrent evaluations under seeded valuations are exact too (the
  // batcher splits work but never changes per-polynomial arithmetic).
  std::vector<Response> eval_responses(kThreads);
  std::vector<std::thread> eval_threads;
  for (int t = 0; t < kThreads; ++t) {
    eval_threads.emplace_back([&, t] {
      EvaluateRequest req;
      req.artifact = "rnd";
      req.assignments = {{"m1", 0.25 * t}, {"m3", 1.5}};
      eval_responses[t] = concurrent.Evaluate(req);
    });
  }
  for (auto& t : eval_threads) t.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(eval_responses[t].ok()) << eval_responses[t].message;
    Valuation val;
    val.Set(w.vars->Find("m1"), 0.25 * t);
    val.Set(w.vars->Find("m3"), 1.5);
    std::vector<double> want = val.EvaluateAll(w.polys);
    ASSERT_EQ(eval_responses[t].values.size(), want.size());
    for (size_t i = 0; i < want.size(); ++i) {
      EXPECT_DOUBLE_EQ(eval_responses[t].values[i], want[i]) << "thread "
                                                             << t;
    }
  }
}

// ------------------------------------------------- mixed-load stress ----

TEST(ServerConcurrencyStressTest, MixedLoadCompressEvaluateInvalidate) {
  // 16 threads hammer one service with a seeded mix of compress (varying
  // bounds/algos), raw and compressed evaluates, info probes, and — from
  // the two "producer" threads — artifact reloads that bump the generation
  // mid-flight and invalidate every cached result under the other threads'
  // feet. The assertions are about invariants, not timing: every response
  // is either OK or one of the statuses the request could legitimately
  // earn, and the service is still coherent afterwards.
  const RandomWorkload w = MakeRandomWorkload(/*seed=*/99);
  ServiceOptions options;
  options.eval_threads = 4;
  options.cache_bytes = size_t{4} << 20;
  ProvenanceService service(options);
  {
    LoadRequest req;
    req.artifact = "soak";
    req.polys_bytes = w.polys_bytes;
    req.forests = w.forests;
    ASSERT_TRUE(service.Load(req).ok());
  }

  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 40;
  const uint64_t size_m = w.polys.SizeM();
  std::atomic<int> violations{0};
  std::mutex violations_mutex;
  std::vector<std::string> violation_messages;
  auto violation = [&](const Response& resp) {
    violations.fetch_add(1);
    std::lock_guard<std::mutex> lock(violations_mutex);
    violation_messages.push_back(resp.ToStatus().ToString());
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int op = 0; op < kOpsPerThread; ++op) {
        Response resp;
        switch (t < 2 && op % 10 == 9 ? 3 : rng.Uniform(3)) {
          case 0: {  // compress, sometimes infeasible
            CompressRequest req;
            req.artifact = "soak";
            req.forest = "f" + std::to_string(rng.Uniform(3));
            req.algo = rng.Bernoulli(0.5) ? "opt" : "greedy";
            req.bound = rng.Bernoulli(0.15)
                            ? 1 + rng.Uniform(2)  // infeasibly small
                            : size_m / 2 + rng.Uniform(size_m / 2);
            resp = service.Compress(req);
            if (!resp.ok() && resp.code != StatusCode::kInfeasible) {
              violation(resp);
            }
            break;
          }
          case 1: {  // evaluate, raw or over a compressed view
            EvaluateRequest req;
            req.artifact = "soak";
            // Month variables survive every plans-forest compression.
            req.assignments = {{"m1", rng.NextDouble()}};
            if (rng.Bernoulli(0.5)) {
              req.compressed = true;
              req.forest = "f" + std::to_string(rng.Uniform(3));
              req.algo = "opt";
              req.bound = size_m / 2 + rng.Uniform(size_m / 2);
            }
            resp = service.Evaluate(req);
            if (!resp.ok() && resp.code != StatusCode::kInfeasible) {
              violation(resp);
            }
            break;
          }
          case 2: {  // info probe (exercises stats under load)
            InfoRequest req;
            req.artifact = "soak";
            resp = service.Info(req);
            if (!resp.ok()) violation(resp);
            break;
          }
          default: {  // reload: generation bump invalidates results
            LoadRequest req;
            req.artifact = "soak";
            req.polys_bytes = w.polys_bytes;
            req.forests = w.forests;
            resp = service.Load(req);
            if (!resp.ok()) violation(resp);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(violations.load(), 0);
  for (const std::string& msg : violation_messages) {
    ADD_FAILURE() << "unexpected response: " << msg;
  }

  // The service is still coherent: the registry drained, stats are sane,
  // and a fresh compress against the final generation succeeds.
  EXPECT_EQ(service.store().inflight().WaitersNow(), 0u);
  EXPECT_EQ(service.store().inflight().KeysNow(), 0u);
  Response info = service.Info(InfoRequest{"soak"});
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.poly_count, w.polys.count());
  CompressRequest final_req;
  final_req.artifact = "soak";
  final_req.forest = "f0";
  final_req.algo = "opt";
  final_req.bound = size_m - 1;
  Response final_resp = service.Compress(final_req);
  ASSERT_TRUE(final_resp.ok()) << final_resp.message;
}

}  // namespace
}  // namespace provabs
