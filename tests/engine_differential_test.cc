#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "core/valuation.h"
#include "engine/query.h"
#include "engine/table.h"

namespace provabs {
namespace {

/// Differential testing of the provenance engine against straight-line
/// reference computations on random data: hash joins vs nested loops,
/// grouped aggregates vs manual accumulation, and the semiring annotation
/// algebra vs per-derivation enumeration.
class EngineDifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    rng_ = std::make_unique<Rng>(80000 + GetParam());

    r_ = Table("R", Schema({{"a", ValueType::kInt64},
                            {"k", ValueType::kInt64},
                            {"x", ValueType::kDouble}}));
    const size_t r_rows = 20 + rng_->Uniform(60);
    for (size_t i = 0; i < r_rows; ++i) {
      r_.Append({static_cast<int64_t>(rng_->Uniform(5)),
                 static_cast<int64_t>(rng_->Uniform(12)),
                 rng_->UniformReal(0.5, 9.5)});
    }
    s_ = Table("S", Schema({{"k", ValueType::kInt64},
                            {"y", ValueType::kDouble}}));
    const size_t s_rows = 8 + rng_->Uniform(20);
    for (size_t i = 0; i < s_rows; ++i) {
      s_.Append({static_cast<int64_t>(rng_->Uniform(12)),
                 rng_->UniformReal(0.5, 9.5)});
    }
  }

  Table r_;
  Table s_;
  std::unique_ptr<Rng> rng_;
};

TEST_P(EngineDifferentialTest, HashJoinMatchesNestedLoops) {
  AnnotatedTable joined = HashJoin(Scan(r_), Scan(s_), {{"k", "k"}});

  // Reference: nested loops.
  size_t expected = 0;
  for (const Row& rr : r_.rows()) {
    for (const Row& sr : s_.rows()) {
      if (rr[1] == sr[0]) ++expected;
    }
  }
  EXPECT_EQ(joined.row_count(), expected);

  // Every output row satisfies the join predicate (k survives from R).
  size_t k_col = joined.schema().IndexOf("k");
  for (const Row& row : joined.rows()) {
    bool found = false;
    for (const Row& sr : s_.rows()) {
      if (sr[0] == row[k_col]) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(EngineDifferentialTest, GroupBySumMatchesManualAccumulation) {
  AnnotatedTable joined = HashJoin(Scan(r_), Scan(s_), {{"k", "k"}});
  size_t x_col = joined.schema().IndexOf("x");
  size_t y_col = joined.schema().IndexOf("y");
  GroupBySumSpec spec;
  spec.group_columns = {"a"};
  spec.coefficient = [=](const Row& row) {
    return AsDouble(row[x_col]) * AsDouble(row[y_col]);
  };
  AnnotatedTable grouped = GroupBySum(joined, spec);

  // Reference: manual nested-loop accumulation per group.
  std::vector<double> expected(5, 0.0);
  std::vector<bool> present(5, false);
  for (const Row& rr : r_.rows()) {
    for (const Row& sr : s_.rows()) {
      if (rr[1] != sr[0]) continue;
      size_t group = static_cast<size_t>(AsInt(rr[0]));
      expected[group] += AsDouble(rr[2]) * AsDouble(sr[1]);
      present[group] = true;
    }
  }
  size_t expected_groups = 0;
  for (bool p : present) expected_groups += p ? 1 : 0;
  ASSERT_EQ(grouped.row_count(), expected_groups);

  Valuation neutral;
  for (size_t i = 0; i < grouped.row_count(); ++i) {
    size_t group = static_cast<size_t>(AsInt(grouped.rows()[i][0]));
    double got = neutral.Evaluate(grouped.annotations()[i]);
    EXPECT_NEAR(got, expected[group], std::abs(expected[group]) * 1e-9);
  }
}

TEST_P(EngineDifferentialTest, SemiringAnnotationsEnumerateDerivations) {
  // Annotate every base row with its own variable; after a join +
  // dedup-projection, each output row's polynomial must have one monomial
  // per derivation (pair of contributing rows), with all variables exp 1.
  VariableTable vars;
  size_t next = 0;
  auto annotator = [&](const std::string& prefix) {
    return [&vars, &next, prefix](const Row&) {
      return VariablePolynomial(
          vars.Intern(prefix + std::to_string(next++)));
    };
  };
  AnnotatedTable ar = Scan(r_, annotator("r"));
  next = 0;
  AnnotatedTable as = Scan(s_, annotator("s"));
  AnnotatedTable joined = HashJoin(ar, as, {{"k", "k"}});
  AnnotatedTable projected = Project(joined, {"a"}, /*dedup=*/true);

  // Reference derivation count per output value of a.
  std::vector<size_t> derivations(5, 0);
  for (const Row& rr : r_.rows()) {
    for (const Row& sr : s_.rows()) {
      if (rr[1] == sr[0]) {
        ++derivations[static_cast<size_t>(AsInt(rr[0]))];
      }
    }
  }
  for (size_t i = 0; i < projected.row_count(); ++i) {
    size_t a = static_cast<size_t>(AsInt(projected.rows()[i][0]));
    EXPECT_EQ(projected.annotations()[i].SizeM(), derivations[a]);
    for (const Monomial& m : projected.annotations()[i].monomials()) {
      EXPECT_EQ(m.degree(), 2u);  // One R variable · one S variable.
      EXPECT_EQ(m.coefficient(), 1.0);
    }
  }
}

TEST_P(EngineDifferentialTest, SelectThenJoinEqualsJoinThenSelect) {
  // Predicate pushdown invariance on a filter over R only.
  auto pred_scan = [&](const Row& row) { return AsInt(row[0]) < 3; };
  AnnotatedTable pushed =
      HashJoin(Select(Scan(r_), pred_scan), Scan(s_), {{"k", "k"}});
  AnnotatedTable joined = HashJoin(Scan(r_), Scan(s_), {{"k", "k"}});
  size_t a_col = joined.schema().IndexOf("a");
  AnnotatedTable late = Select(joined, [=](const Row& row) {
    return AsInt(row[a_col]) < 3;
  });
  EXPECT_EQ(pushed.row_count(), late.row_count());
}

INSTANTIATE_TEST_SUITE_P(RandomData, EngineDifferentialTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace provabs
