#include "sql/planner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/semiring.h"
#include "core/valuation.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "workload/telephony.h"

namespace provabs {
namespace {

using sql::AggregateFn;
using sql::Parse;
using sql::PlanOptions;
using sql::Token;
using sql::TokenKind;
using sql::Tokenize;

// ----------------------------------------------------------------- lexer --

TEST(SqlLexerTest, TokenizesKeywordsCaseInsensitively) {
  auto tokens = Tokenize("select Sum FROM where");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "SUM");
  EXPECT_EQ((*tokens)[2].text, "FROM");
  EXPECT_EQ((*tokens)[3].text, "WHERE");
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kEnd);
}

TEST(SqlLexerTest, TokenizesNumbersAndStrings) {
  auto tokens = Tokenize("3.25 'hello world'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 3.25);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "hello world");
}

TEST(SqlLexerTest, TokenizesQualifiedColumns) {
  auto tokens = Tokenize("Calls.Dur");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDot);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kIdentifier);
}

TEST(SqlLexerTest, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("'oops").ok());
}

TEST(SqlLexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

// ---------------------------------------------------------------- parser --

TEST(SqlParserTest, ParsesPaperRunningExampleQuery) {
  auto stmt = Parse(
      "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
      "FROM Calls, Cust, Plans "
      "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
      "AND Calls.Mo = Plans.Mo "
      "GROUP BY Cust.Zip");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->aggregate, AggregateFn::kSum);
  ASSERT_NE(stmt->aggregate_expr, nullptr);
  EXPECT_EQ(stmt->from_tables.size(), 3u);
  EXPECT_EQ(stmt->where.size(), 3u);
  ASSERT_EQ(stmt->group_by.size(), 1u);
  EXPECT_EQ(stmt->group_by[0].ToString(), "Cust.Zip");
}

TEST(SqlParserTest, ParsesArithmeticPrecedence) {
  auto stmt = Parse("SELECT SUM(a + b * c) FROM t GROUP BY g");
  ASSERT_TRUE(stmt.ok());
  // Root is +, right child is *.
  EXPECT_EQ(stmt->aggregate_expr->kind, sql::Expr::Kind::kAdd);
  EXPECT_EQ(stmt->aggregate_expr->rhs->kind, sql::Expr::Kind::kMul);
}

TEST(SqlParserTest, ParsesParenthesizedDiscountForm) {
  auto stmt = Parse(
      "SELECT SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) FROM LINEITEM "
      "GROUP BY L_RETURNFLAG");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ(stmt->aggregate_expr->kind, sql::Expr::Kind::kMul);
  EXPECT_EQ(stmt->aggregate_expr->rhs->kind, sql::Expr::Kind::kSub);
}

TEST(SqlParserTest, ParsesMinMaxAggregates) {
  auto min_stmt = Parse("SELECT MIN(v) FROM t GROUP BY g");
  ASSERT_TRUE(min_stmt.ok());
  EXPECT_EQ(min_stmt->aggregate, AggregateFn::kMin);
  auto max_stmt = Parse("SELECT MAX(v) FROM t GROUP BY g");
  ASSERT_TRUE(max_stmt.ok());
  EXPECT_EQ(max_stmt->aggregate, AggregateFn::kMax);
}

TEST(SqlParserTest, ParsesLiteralPredicates) {
  auto stmt = Parse(
      "SELECT a FROM t WHERE flag = 'R' AND n = 25");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ(stmt->where.size(), 2u);
  EXPECT_TRUE(stmt->where[0].rhs_literal_is_string);
  EXPECT_FALSE(stmt->where[1].rhs_is_column);
}

TEST(SqlParserTest, RejectsMissingFrom) {
  EXPECT_FALSE(Parse("SELECT a").ok());
}

TEST(SqlParserTest, RejectsTrailingGarbage) {
  EXPECT_FALSE(Parse("SELECT a FROM t xyzzy pqr").ok());
}

TEST(SqlParserTest, RejectsTwoAggregates) {
  EXPECT_FALSE(Parse("SELECT SUM(a), SUM(b) FROM t GROUP BY g").ok());
}

TEST(SqlParserTest, RejectsAggregateWithColumnsButNoGroupBy) {
  EXPECT_FALSE(Parse("SELECT a, SUM(b) FROM t").ok());
}

TEST(SqlParserTest, DeepNestingIsAnErrorNotAStackOverflow) {
  std::string query = "SELECT SUM(";
  for (int i = 0; i < 100000; ++i) query += '(';
  query += '1';
  for (int i = 0; i < 100000; ++i) query += ')';
  query += ") FROM t";
  auto stmt = Parse(query);
  ASSERT_FALSE(stmt.ok());
  EXPECT_NE(stmt.status().message().find("nested"), std::string::npos);
}

// Truncation sweep: every prefix of a valid query must either parse or
// fail with a Status — no hangs, no overreads (caught under ASan in CI).
TEST(SqlParserTest, FuzzEveryPrefixOfAValidQuery) {
  const std::string query =
      "SELECT zip, SUM(calls.dur * (rates.price + 2)) FROM calls, rates "
      "WHERE calls.plan = rates.plan AND calls.zip = '10001' GROUP BY zip";
  for (size_t len = 0; len <= query.size(); ++len) {
    auto stmt = Parse(query.substr(0, len));
    if (len == query.size()) {
      EXPECT_TRUE(stmt.ok());
    }
  }
}

// Seeded random-token-stream fuzz, mirroring the scenario parser's
// battery: random glue of valid SQL tokens must always terminate with a
// value or an in-bounds error offset.
TEST(SqlParserTest, FuzzRandomTokenStreams) {
  const std::vector<std::string> vocab = {
      "SELECT", "FROM", "WHERE", "AND", "GROUP", "BY", "SUM",  "MIN",
      "MAX",    "(",    ")",     ",",   ".",     "*",  "+",    "-",
      "/",      "=",    "t",     "a",   "b1",    "2",  "0.25", "'s'"};
  Rng rng(515151);
  for (int round = 0; round < 3000; ++round) {
    std::string query;
    const int len = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < len; ++i) {
      query += vocab[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(vocab.size()) - 1))];
      query += ' ';
    }
    auto stmt = Parse(query);
    (void)stmt;  // Value or error both fine; crash/hang is the failure.
  }
}

// --------------------------------------------------------------- planner --

class SqlPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override { ex_ = MakeRunningExample(vars_); }

  VariableTable vars_;
  RunningExample ex_;

  static constexpr const char* kRevenueQuery =
      "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
      "FROM Calls, Cust, Plans "
      "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
      "AND Calls.Mo = Plans.Mo "
      "GROUP BY Cust.Zip";
};

TEST_F(SqlPlannerTest, RunsPaperQueryWithoutParameters) {
  auto result = sql::ExecuteSql(kRevenueQuery, ex_.db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->row_count(), 2u);  // Two zip codes.
  // Constant annotations sum to the plain revenue.
  Valuation val;
  double total = 0;
  for (const Polynomial& p : result->annotations()) {
    total += val.Evaluate(p);
  }
  EXPECT_NEAR(total, 208.8 + 240.0 + 127.4 + 114.45 + 75.9 + 72.5 + 42.0 +
                         24.2 + 77.9 + 80.5 + 52.2 + 56.5 + 69.7 + 100.65,
              1e-9);
}

TEST_F(SqlPlannerTest, SqlQueryMatchesHandBuiltPlan) {
  // Parameterize via the hook exactly as RunRunningExampleQuery does; the
  // provenance polynomials must match monomial-for-monomial.
  const VariableId plan_var[] = {ex_.p1, ex_.f1, ex_.b1, ex_.y1,
                                 ex_.v,  ex_.e,  ex_.b2};
  PlanOptions options;
  options.parameters = [&](const Row& row, const Schema& schema)
      -> std::vector<VariableId> {
    int64_t plan = AsInt(row[schema.IndexOf("Cust.Plan")]);
    int64_t mo = AsInt(row[schema.IndexOf("Calls.Mo")]);
    return {plan_var[plan], mo == 1 ? ex_.m1 : ex_.m3};
  };
  auto result = sql::ExecuteSql(kRevenueQuery, ex_.db, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  PolynomialSet from_sql = result->ToPolynomialSet();
  PolynomialSet reference = RunRunningExampleQuery(ex_);
  ASSERT_EQ(from_sql.count(), reference.count());
  EXPECT_EQ(from_sql.SizeM(), reference.SizeM());
  // Same polynomials up to order: compare by matching the p1-mentioning one.
  for (const Polynomial& p : reference.polynomials()) {
    bool matched = false;
    for (const Polynomial& q : from_sql.polynomials()) {
      if (q == p) matched = true;
    }
    EXPECT_TRUE(matched);
  }
}

TEST_F(SqlPlannerTest, LiteralFilterPushdown) {
  auto result = sql::ExecuteSql(
      "SELECT ID FROM Cust WHERE Zip = 10002", ex_.db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_count(), 3u);  // Customers 3, 6, 7.
}

TEST_F(SqlPlannerTest, GlobalAggregateWithoutGroupBy) {
  auto result = sql::ExecuteSql(
      "SELECT SUM(Dur) FROM Calls", ex_.db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->row_count(), 1u);
  Valuation val;
  // Sum of all durations in Figure 1.
  double expected = 522 + 364 + 779 + 253 + 168 + 1044 + 697 + 480 + 327 +
                    805 + 290 + 121 + 1130 + 671;
  EXPECT_NEAR(val.Evaluate(result->annotations()[0]), expected, 1e-9);
}

TEST_F(SqlPlannerTest, MinAggregateOverJoin) {
  auto result = sql::ExecuteSql(
      "SELECT MIN(Dur) FROM Calls, Cust WHERE Cust.ID = Calls.CID "
      "GROUP BY Cust.Zip",
      ex_.db);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->row_count(), 2u);
  std::unordered_map<VariableId, double> neutral;
  for (size_t i = 0; i < result->row_count(); ++i) {
    int64_t zip = AsInt(result->rows()[i][0]);
    double expected = zip == 10001 ? 121.0 : 671.0;
    EXPECT_DOUBLE_EQ(
        EvaluateOver<MinTimesSemiring>(result->annotations()[i], neutral),
        expected);
  }
}

TEST_F(SqlPlannerTest, ResidualEqualityApplied) {
  // Calls.Mo = Plans.Mo becomes a residual filter after the other joins;
  // omitting it would multiply the result by the number of months.
  auto with_residual = sql::ExecuteSql(kRevenueQuery, ex_.db);
  auto without = sql::ExecuteSql(
      "SELECT Zip, SUM(Calls.Dur * Plans.Price) "
      "FROM Calls, Cust, Plans "
      "WHERE Cust.Plan = Plans.Plan AND Cust.ID = Calls.CID "
      "GROUP BY Cust.Zip",
      ex_.db);
  ASSERT_TRUE(with_residual.ok());
  ASSERT_TRUE(without.ok());
  Valuation val;
  double a = 0;
  double b = 0;
  for (const Polynomial& p : with_residual->annotations()) {
    a += val.Evaluate(p);
  }
  for (const Polynomial& p : without->annotations()) {
    b += val.Evaluate(p);
  }
  EXPECT_LT(a, b);  // The unfiltered cross pairs every call with 2 months.
}

TEST_F(SqlPlannerTest, UnknownTableReported) {
  auto result = sql::ExecuteSql("SELECT a FROM Nope", ex_.db);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlPlannerTest, UnknownColumnReported) {
  auto result = sql::ExecuteSql("SELECT Wrong FROM Cust", ex_.db);
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SqlPlannerTest, AmbiguousColumnReported) {
  // "Mo" exists in both Calls and Plans.
  auto result = sql::ExecuteSql(
      "SELECT Mo FROM Calls, Plans WHERE Calls.Mo = Plans.Mo", ex_.db);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(SqlPlannerTest, DisconnectedJoinRejected) {
  auto result = sql::ExecuteSql("SELECT ID FROM Cust, Calls", ex_.db);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SqlPlannerTest, SelfJoinRejected) {
  auto result =
      sql::ExecuteSql("SELECT ID FROM Cust, Cust WHERE ID = ID", ex_.db);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(SqlPlannerTest, ProjectionWithoutAggregate) {
  auto result = sql::ExecuteSql("SELECT Zip FROM Cust", ex_.db);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->row_count(), 7u);  // Bag semantics.
  EXPECT_EQ(result->schema().column_count(), 1u);
}

}  // namespace
}  // namespace provabs
