#include "core/monomial.h"

#include <gtest/gtest.h>

#include "core/variable.h"

namespace provabs {
namespace {

class MonomialTest : public ::testing::Test {
 protected:
  VariableTable vars_;
  VariableId x_ = vars_.Intern("x");
  VariableId y_ = vars_.Intern("y");
  VariableId z_ = vars_.Intern("z");
};

TEST_F(MonomialTest, DefaultIsZeroConstant) {
  Monomial m;
  EXPECT_EQ(m.coefficient(), 0.0);
  EXPECT_TRUE(m.factors().empty());
}

TEST_F(MonomialTest, FactorsSortedOnConstruction) {
  Monomial m(2.0, {{z_, 1}, {x_, 1}, {y_, 1}});
  ASSERT_EQ(m.factors().size(), 3u);
  EXPECT_EQ(m.factors()[0].var, x_);
  EXPECT_EQ(m.factors()[1].var, y_);
  EXPECT_EQ(m.factors()[2].var, z_);
}

TEST_F(MonomialTest, DuplicateVariablesMergeExponents) {
  Monomial m(1.0, {{x_, 1}, {x_, 2}, {y_, 1}});
  ASSERT_EQ(m.factors().size(), 2u);
  EXPECT_EQ(m.ExponentOf(x_), 3u);
  EXPECT_EQ(m.ExponentOf(y_), 1u);
}

TEST_F(MonomialTest, DegreeCountsDistinctVariables) {
  Monomial m(1.0, {{x_, 2}, {y_, 3}});
  EXPECT_EQ(m.degree(), 2u);
  EXPECT_EQ(m.total_degree(), 5u);
}

TEST_F(MonomialTest, ContainsAndExponentOf) {
  Monomial m(1.0, {{x_, 2}});
  EXPECT_TRUE(m.Contains(x_));
  EXPECT_FALSE(m.Contains(y_));
  EXPECT_EQ(m.ExponentOf(x_), 2u);
  EXPECT_EQ(m.ExponentOf(y_), 0u);
}

TEST_F(MonomialTest, SamePowerProductIgnoresCoefficient) {
  Monomial a(1.0, {{x_, 1}, {y_, 1}});
  Monomial b(7.5, {{y_, 1}, {x_, 1}});
  EXPECT_TRUE(a.SamePowerProduct(b));
  EXPECT_EQ(a.PowerProductHash(), b.PowerProductHash());
}

TEST_F(MonomialTest, DifferentExponentsDiffer) {
  Monomial a(1.0, {{x_, 1}});
  Monomial b(1.0, {{x_, 2}});
  EXPECT_FALSE(a.SamePowerProduct(b));
}

TEST_F(MonomialTest, MapVariablesRenames) {
  Monomial m(3.0, {{x_, 1}, {y_, 1}});
  Monomial mapped = m.MapVariables([&](VariableId v) {
    return v == x_ ? z_ : v;
  });
  EXPECT_EQ(mapped.coefficient(), 3.0);
  EXPECT_TRUE(mapped.Contains(z_));
  EXPECT_TRUE(mapped.Contains(y_));
  EXPECT_FALSE(mapped.Contains(x_));
}

TEST_F(MonomialTest, MapVariablesMergesCollisions) {
  // x*y both mapping to z must become z^2 (exponent addition).
  Monomial m(1.0, {{x_, 1}, {y_, 1}});
  Monomial mapped = m.MapVariables([&](VariableId) { return z_; });
  ASSERT_EQ(mapped.factors().size(), 1u);
  EXPECT_EQ(mapped.ExponentOf(z_), 2u);
}

TEST_F(MonomialTest, PowerProductLessIsStrictWeakOrder) {
  Monomial a(1.0, {{x_, 1}});
  Monomial b(1.0, {{x_, 1}, {y_, 1}});
  Monomial c(1.0, {{y_, 1}});
  EXPECT_TRUE(Monomial::PowerProductLess(a, b));   // prefix first
  EXPECT_TRUE(Monomial::PowerProductLess(a, c));   // smaller var id first
  EXPECT_FALSE(Monomial::PowerProductLess(a, a));  // irreflexive
}

TEST_F(MonomialTest, ToStringRendersFactors) {
  Monomial m(2.5, {{x_, 1}, {y_, 2}});
  EXPECT_EQ(m.ToString(vars_), "2.5*x*y^2");
}

TEST_F(MonomialTest, ToStringConstant) {
  Monomial m(4.0, {});
  EXPECT_EQ(m.ToString(vars_), "4");
}

}  // namespace
}  // namespace provabs
