#include <gtest/gtest.h>

#include <limits>
#include <unordered_map>

#include "abstraction/valid_variable_set.h"
#include "common/random.h"
#include "core/semiring.h"
#include "engine/query.h"
#include "engine/table.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// MIN/MAX-aggregate provenance (§2.1: "commutative aggregates (e.g. sum,
/// min, max)"): the polynomial's "+" is the aggregate, evaluated via
/// MinTimesSemiring / MaxTimesSemiring; abstraction combines coefficients
/// with min/max instead of addition.
class MinMaxAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Measurements table: (sensor_group, sensor, reading).
    table_ = Table("Readings", Schema({{"grp", ValueType::kInt64},
                                       {"sensor", ValueType::kInt64},
                                       {"val", ValueType::kDouble}}));
    table_.Append({int64_t{1}, int64_t{0}, 5.0});
    table_.Append({int64_t{1}, int64_t{1}, 3.0});
    table_.Append({int64_t{1}, int64_t{2}, 7.0});
    table_.Append({int64_t{2}, int64_t{0}, 2.0});
    table_.Append({int64_t{2}, int64_t{3}, 9.0});
    for (int i = 0; i < 4; ++i) {
      sensor_vars_.push_back(vars_.Intern("sv" + std::to_string(i)));
    }
  }

  GroupBySumSpec MinSpec() {
    GroupBySumSpec spec;
    spec.group_columns = {"grp"};
    size_t val_col = table_.schema().IndexOf("val");
    size_t sensor_col = table_.schema().IndexOf("sensor");
    spec.coefficient = [=](const Row& row) { return AsDouble(row[val_col]); };
    spec.parameters = [this, sensor_col](const Row& row) {
      return std::vector<VariableId>{
          sensor_vars_[static_cast<size_t>(AsInt(row[sensor_col]))]};
    };
    spec.combine = CoefficientCombine::kMin;
    return spec;
  }

  VariableTable vars_;
  Table table_;
  std::vector<VariableId> sensor_vars_;
};

TEST_F(MinMaxAggregateTest, MinProvenanceEvaluatesToGroupMin) {
  AnnotatedTable g = GroupBySum(Scan(table_), MinSpec());
  ASSERT_EQ(g.row_count(), 2u);
  std::unordered_map<VariableId, double> neutral;
  for (size_t i = 0; i < g.row_count(); ++i) {
    double expected = AsInt(g.rows()[i][0]) == 1 ? 3.0 : 2.0;
    EXPECT_DOUBLE_EQ(
        EvaluateOver<MinTimesSemiring>(g.annotations()[i], neutral),
        expected);
  }
}

TEST_F(MinMaxAggregateTest, ScenarioShiftsTheMinimum) {
  // Scaling sensor 1's readings by 3 moves group 1's minimum to sensor 0.
  AnnotatedTable g = GroupBySum(Scan(table_), MinSpec());
  std::unordered_map<VariableId, double> scenario;
  scenario[sensor_vars_[1]] = 3.0;  // 3.0 * 3 = 9.
  for (size_t i = 0; i < g.row_count(); ++i) {
    if (AsInt(g.rows()[i][0]) != 1) continue;
    EXPECT_DOUBLE_EQ(
        EvaluateOver<MinTimesSemiring>(g.annotations()[i], scenario), 5.0);
  }
}

TEST_F(MinMaxAggregateTest, MaxSemiringSymmetric) {
  GroupBySumSpec spec = MinSpec();
  spec.combine = CoefficientCombine::kMax;
  AnnotatedTable g = GroupBySum(Scan(table_), spec);
  std::unordered_map<VariableId, double> neutral;
  for (size_t i = 0; i < g.row_count(); ++i) {
    double expected = AsInt(g.rows()[i][0]) == 1 ? 7.0 : 9.0;
    EXPECT_DOUBLE_EQ(
        EvaluateOver<MaxTimesSemiring>(g.annotations()[i], neutral),
        expected);
  }
}

TEST_F(MinMaxAggregateTest, MinCombineKeepsZeroCoefficients) {
  // A zero reading is a genuine minimum, not an additive identity.
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(0.0, {{sensor_vars_[0], 1}}),
       Monomial(4.0, {{sensor_vars_[0], 1}})},
      CoefficientCombine::kMin);
  ASSERT_EQ(p.SizeM(), 1u);
  EXPECT_DOUBLE_EQ(p.monomials()[0].coefficient(), 0.0);
}

TEST_F(MinMaxAggregateTest, AbstractionExactForUniformGroups) {
  // Group sensors {0,1} and {2,3} via a tree; for any scenario uniform on
  // each group, the min-abstracted provenance evaluates identically.
  AnnotatedTable g = GroupBySum(Scan(table_), MinSpec());
  PolynomialSet polys = g.ToPolynomialSet();

  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars_, sensor_vars_, {2}, "MM_"));
  ValidVariableSet roots = ValidVariableSet::AllRoots(forest);
  // One cut below the root: the two 2-leaf inner nodes.
  ValidVariableSet mid;
  for (NodeIndex c : forest.tree(0).node(forest.tree(0).root()).children) {
    mid.Add(NodeRef{0, c});
  }
  ASSERT_TRUE(mid.Validate(forest).ok());

  PolynomialSet abstracted =
      mid.Apply(forest, polys, CoefficientCombine::kMin);
  EXPECT_LE(abstracted.SizeM(), polys.SizeM());

  Rng rng(77);
  auto subst = mid.SubstitutionMap(forest);
  for (int trial = 0; trial < 20; ++trial) {
    std::unordered_map<VariableId, double> scenario;
    std::unordered_map<VariableId, double> group_value;
    for (const auto& [leaf, rep] : subst) {
      auto [it, inserted] = group_value.emplace(rep, 0.0);
      if (inserted) it->second = rng.UniformReal(0.5, 2.0);
      scenario[leaf] = it->second;
      scenario[rep] = it->second;
    }
    for (size_t i = 0; i < polys.count(); ++i) {
      EXPECT_NEAR(EvaluateOver<MinTimesSemiring>(polys[i], scenario),
                  EvaluateOver<MinTimesSemiring>(abstracted[i], scenario),
                  1e-9);
    }
  }
  (void)roots;
}

TEST_F(MinMaxAggregateTest, AdditiveAbstractionWouldBeWrongForMin) {
  // Sanity for the design choice: combining by addition would corrupt
  // MIN provenance (3 + 5 != min(3, 5)).
  AnnotatedTable g = GroupBySum(Scan(table_), MinSpec());
  PolynomialSet polys = g.ToPolynomialSet();
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars_, sensor_vars_, {2}, "MW_"));
  ValidVariableSet roots = ValidVariableSet::AllRoots(forest);

  PolynomialSet right = roots.Apply(forest, polys, CoefficientCombine::kMin);
  PolynomialSet wrong = roots.Apply(forest, polys, CoefficientCombine::kAdd);
  std::unordered_map<VariableId, double> neutral;
  // Group 1's true min is 3; kMin keeps it, kAdd sums 5+3+7.
  EXPECT_DOUBLE_EQ(EvaluateOver<MinTimesSemiring>(right[0], neutral), 3.0);
  EXPECT_DOUBLE_EQ(EvaluateOver<MinTimesSemiring>(wrong[0], neutral), 15.0);
}

TEST_F(MinMaxAggregateTest, TropicalVsMinTimesDiffer) {
  // Documented distinction: TropicalSemiring treats factors additively
  // (cost shifts), MinTimesSemiring multiplicatively (discounts).
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(4.0, {{sensor_vars_[0], 1}})});
  std::unordered_map<VariableId, double> two{{sensor_vars_[0], 2.0}};
  EXPECT_DOUBLE_EQ(EvaluateOver<TropicalSemiring>(p, two), 6.0);   // 4 + 2
  EXPECT_DOUBLE_EQ(EvaluateOver<MinTimesSemiring>(p, two), 8.0);   // 4 * 2
}

}  // namespace
}  // namespace provabs
