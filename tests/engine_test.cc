#include "engine/query.h"

#include <gtest/gtest.h>

#include "core/valuation.h"
#include "engine/table.h"

namespace provabs {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    r_ = Table("R", Schema({{"a", ValueType::kInt64},
                            {"b", ValueType::kInt64},
                            {"val", ValueType::kDouble}}));
    r_.Append({int64_t{1}, int64_t{10}, 1.5});
    r_.Append({int64_t{2}, int64_t{10}, 2.5});
    r_.Append({int64_t{3}, int64_t{20}, 3.5});

    s_ = Table("S", Schema({{"b", ValueType::kInt64},
                            {"c", ValueType::kString}}));
    s_.Append({int64_t{10}, std::string("x")});
    s_.Append({int64_t{20}, std::string("y")});
    s_.Append({int64_t{30}, std::string("z")});
  }

  Table r_;
  Table s_;
  VariableTable vars_;
};

TEST_F(EngineTest, SchemaLookup) {
  EXPECT_EQ(r_.schema().IndexOf("val"), 2u);
  EXPECT_TRUE(r_.schema().Has("a"));
  EXPECT_FALSE(r_.schema().Has("zz"));
}

TEST_F(EngineTest, TableValidation) {
  EXPECT_TRUE(r_.ValidateRows().ok());
}

TEST_F(EngineTest, DatabaseRoundTrip) {
  Database db;
  db.Put(r_);
  db.Put(s_);
  EXPECT_TRUE(db.Has("R"));
  EXPECT_EQ(db.Get("R").row_count(), 3u);
  EXPECT_EQ(db.TotalRows(), 6u);
}

TEST_F(EngineTest, ScanDefaultAnnotationIsOne) {
  AnnotatedTable t = Scan(r_);
  ASSERT_EQ(t.row_count(), 3u);
  for (const Polynomial& p : t.annotations()) {
    EXPECT_EQ(p, OnePolynomial());
  }
}

TEST_F(EngineTest, ScanWithSemiringVariables) {
  size_t a_col = r_.schema().IndexOf("a");
  AnnotatedTable t = Scan(r_, [&](const Row& row) {
    return VariablePolynomial(
        vars_.Intern("r" + std::to_string(AsInt(row[a_col]))));
  });
  EXPECT_TRUE(t.annotations()[0].Mentions(vars_.Find("r1")));
  EXPECT_TRUE(t.annotations()[2].Mentions(vars_.Find("r3")));
}

TEST_F(EngineTest, SelectFilters) {
  AnnotatedTable t = Scan(r_);
  size_t b_col = r_.schema().IndexOf("b");
  AnnotatedTable f =
      Select(t, [=](const Row& row) { return AsInt(row[b_col]) == 10; });
  EXPECT_EQ(f.row_count(), 2u);
}

TEST_F(EngineTest, ProjectBagKeepsDuplicates) {
  AnnotatedTable t = Scan(r_);
  AnnotatedTable p = Project(t, {"b"}, /*dedup=*/false);
  EXPECT_EQ(p.row_count(), 3u);
  EXPECT_EQ(p.schema().column_count(), 1u);
}

TEST_F(EngineTest, ProjectDedupAddsAnnotations) {
  // Annotate each row with its own variable; projecting onto b with dedup
  // must sum the annotations of the two b=10 rows.
  size_t a_col = r_.schema().IndexOf("a");
  AnnotatedTable t = Scan(r_, [&](const Row& row) {
    return VariablePolynomial(
        vars_.Intern("r" + std::to_string(AsInt(row[a_col]))));
  });
  AnnotatedTable p = Project(t, {"b"}, /*dedup=*/true);
  ASSERT_EQ(p.row_count(), 2u);
  // Find the b=10 row: its annotation is r1 + r2.
  for (size_t i = 0; i < p.row_count(); ++i) {
    if (AsInt(p.rows()[i][0]) == 10) {
      EXPECT_EQ(p.annotations()[i].SizeM(), 2u);
    } else {
      EXPECT_EQ(p.annotations()[i].SizeM(), 1u);
    }
  }
}

TEST_F(EngineTest, HashJoinMatchesKeysAndMultipliesAnnotations) {
  size_t a_col = r_.schema().IndexOf("a");
  AnnotatedTable tr = Scan(r_, [&](const Row& row) {
    return VariablePolynomial(
        vars_.Intern("r" + std::to_string(AsInt(row[a_col]))));
  });
  size_t sb_col = s_.schema().IndexOf("b");
  AnnotatedTable ts = Scan(s_, [&](const Row& row) {
    return VariablePolynomial(
        vars_.Intern("s" + std::to_string(AsInt(row[sb_col]))));
  });
  AnnotatedTable j = HashJoin(tr, ts, {{"b", "b"}});
  ASSERT_EQ(j.row_count(), 3u);  // Every R row matches one S row.
  // Annotation of the a=1 row is the monomial r1·s10.
  for (size_t i = 0; i < j.row_count(); ++i) {
    if (AsInt(j.rows()[i][j.schema().IndexOf("a")]) == 1) {
      const Polynomial& p = j.annotations()[i];
      ASSERT_EQ(p.SizeM(), 1u);
      EXPECT_TRUE(p.Mentions(vars_.Find("r1")));
      EXPECT_TRUE(p.Mentions(vars_.Find("s10")));
    }
  }
}

TEST_F(EngineTest, HashJoinDropsNonMatching) {
  Table s2("S2", Schema({{"b", ValueType::kInt64}}));
  s2.Append({int64_t{99}});
  AnnotatedTable j = HashJoin(Scan(r_), Scan(s2), {{"b", "b"}});
  EXPECT_EQ(j.row_count(), 0u);
}

TEST_F(EngineTest, HashJoinSchemaDisambiguation) {
  // Self-join: non-key columns of the right side get suffixed names.
  AnnotatedTable j = HashJoin(Scan(r_), Scan(r_), {{"a", "a"}});
  EXPECT_EQ(j.row_count(), 3u);
  EXPECT_TRUE(j.schema().Has("val"));
  EXPECT_TRUE(j.schema().Has("val_2"));
}

TEST_F(EngineTest, UnionConcatenates) {
  AnnotatedTable u = Union(Scan(s_), Scan(s_));
  EXPECT_EQ(u.row_count(), 6u);
}

TEST_F(EngineTest, GroupBySumBuildsPolynomials) {
  // Group R by b; coefficient = val; parameter = variable "g<a>".
  AnnotatedTable t = Scan(r_);
  size_t val_col = r_.schema().IndexOf("val");
  size_t a_col = r_.schema().IndexOf("a");
  GroupBySumSpec spec;
  spec.group_columns = {"b"};
  spec.coefficient = [=](const Row& row) { return AsDouble(row[val_col]); };
  spec.parameters = [&, a_col](const Row& row) {
    return std::vector<VariableId>{
        vars_.Intern("g" + std::to_string(AsInt(row[a_col])))};
  };
  AnnotatedTable g = GroupBySum(t, spec);
  ASSERT_EQ(g.row_count(), 2u);

  PolynomialSet polys = g.ToPolynomialSet();
  EXPECT_EQ(polys.SizeM(), 3u);  // 1.5·g1 + 2.5·g2  |  3.5·g3

  // Neutral valuation recovers the plain SUM per group.
  Valuation val;
  for (size_t i = 0; i < g.row_count(); ++i) {
    double expected = AsInt(g.rows()[i][0]) == 10 ? 4.0 : 3.5;
    EXPECT_DOUBLE_EQ(val.Evaluate(g.annotations()[i]), expected);
  }
}

TEST_F(EngineTest, GroupBySumWithoutParametersYieldsConstants) {
  AnnotatedTable t = Scan(r_);
  size_t val_col = r_.schema().IndexOf("val");
  GroupBySumSpec spec;
  spec.group_columns = {"b"};
  spec.coefficient = [=](const Row& row) { return AsDouble(row[val_col]); };
  AnnotatedTable g = GroupBySum(t, spec);
  ASSERT_EQ(g.row_count(), 2u);
  for (const Polynomial& p : g.annotations()) {
    EXPECT_EQ(p.SizeV(), 0u);
    EXPECT_EQ(p.SizeM(), 1u);
  }
}

TEST_F(EngineTest, GroupBySumComposesWithTupleAnnotations) {
  // Tuple-level semiring annotations multiply into the aggregate monomials.
  VariableId tup = vars_.Intern("t_ann");
  AnnotatedTable t = Scan(r_, [&](const Row&) {
    return VariablePolynomial(tup);
  });
  size_t val_col = r_.schema().IndexOf("val");
  GroupBySumSpec spec;
  spec.group_columns = {"b"};
  spec.coefficient = [=](const Row& row) { return AsDouble(row[val_col]); };
  AnnotatedTable g = GroupBySum(t, spec);
  for (const Polynomial& p : g.annotations()) {
    EXPECT_TRUE(p.Mentions(tup));
  }
}

}  // namespace
}  // namespace provabs
