#include "abstraction/abstraction_tree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "abstraction/abstraction_forest.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "workload/telephony.h"

namespace provabs {
namespace {

class AbstractionTreeTest : public ::testing::Test {
 protected:
  VariableTable vars_;

  /// Figure 2's plans tree (17 nodes, 9 leaves).
  AbstractionTree Fig2() { return MakeFigure2PlansTree(vars_); }
};

TEST_F(AbstractionTreeTest, BuilderProducesDfsPreorder) {
  AbstractionTree t = Fig2();
  EXPECT_EQ(t.node_count(), 18u);
  EXPECT_EQ(t.root(), 0u);
  EXPECT_EQ(vars_.NameOf(t.node(0).label), "Plans");
  // Children indices are always greater than the parent (pre-order).
  for (NodeIndex v = 0; v < t.node_count(); ++v) {
    for (NodeIndex c : t.node(v).children) {
      EXPECT_GT(c, v);
      EXPECT_EQ(t.node(c).parent, v);
    }
  }
}

TEST_F(AbstractionTreeTest, Figure2HasElevenLeaves) {
  AbstractionTree t = Fig2();
  EXPECT_EQ(t.leaves().size(), 11u);
  // Root covers all leaves.
  EXPECT_EQ(t.node(t.root()).leaf_count(), 11u);
  // Every internal node's leaf range equals the union of its children's.
  for (NodeIndex v = 0; v < t.node_count(); ++v) {
    const auto& n = t.node(v);
    if (n.is_leaf()) {
      EXPECT_EQ(n.leaf_count(), 1u);
      continue;
    }
    uint32_t total = 0;
    for (NodeIndex c : n.children) total += t.node(c).leaf_count();
    EXPECT_EQ(n.leaf_count(), total);
  }
}

TEST_F(AbstractionTreeTest, HeightAndWidth) {
  AbstractionTree t = Fig2();
  EXPECT_EQ(t.Height(), 3u);  // Plans -> Business -> SB -> b1
  EXPECT_EQ(t.Width(), 3u);   // root {Business, Special, Standard}; Y has 3.
}

TEST_F(AbstractionTreeTest, FindLabelLocatesNodes) {
  AbstractionTree t = Fig2();
  NodeIndex sb = t.FindLabel(vars_.Find("SB"));
  ASSERT_NE(sb, kInvalidNode);
  EXPECT_EQ(t.node(sb).children.size(), 2u);
  EXPECT_EQ(t.FindLabel(vars_.Intern("nonexistent")), kInvalidNode);
}

TEST_F(AbstractionTreeTest, IsDescendantOrSelf) {
  AbstractionTree t = Fig2();
  NodeIndex root = t.root();
  NodeIndex sb = t.FindLabel(vars_.Find("SB"));
  NodeIndex b1 = t.FindLabel(vars_.Find("b1"));
  NodeIndex standard = t.FindLabel(vars_.Find("Standard"));
  EXPECT_TRUE(t.IsDescendantOrSelf(b1, sb));
  EXPECT_TRUE(t.IsDescendantOrSelf(b1, root));
  EXPECT_TRUE(t.IsDescendantOrSelf(sb, sb));
  EXPECT_FALSE(t.IsDescendantOrSelf(sb, b1));
  EXPECT_FALSE(t.IsDescendantOrSelf(b1, standard));
}

TEST_F(AbstractionTreeTest, LeafLabelsMatchFigure2) {
  AbstractionTree t = Fig2();
  auto labels = t.LeafLabels();
  std::vector<std::string> names;
  for (VariableId id : labels) names.push_back(vars_.NameOf(id));
  std::sort(names.begin(), names.end());
  std::vector<std::string> expected = {"b1", "b2", "e",  "f1", "f2", "p1",
                                       "p2", "v",  "y1", "y2", "y3"};
  EXPECT_EQ(names, expected);
}

TEST_F(AbstractionTreeTest, CompatibleWithDisjointMonomials) {
  AbstractionTree t = Fig2();
  VariableId m1 = vars_.Intern("m1");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}, {m1, 1}}),
       Monomial(2.0, {{vars_.Find("e"), 1}, {m1, 1}})}));
  EXPECT_TRUE(t.CheckCompatible(polys).ok());
}

TEST_F(AbstractionTreeTest, IncompatibleWhenTwoTreeVarsShareMonomial) {
  AbstractionTree t = Fig2();
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}, {vars_.Find("b2"), 1}})}));
  Status s = t.CheckCompatible(polys);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(AbstractionTreeTest, IncompatibleWhenMetaVariableInPolynomial) {
  AbstractionTree t = Fig2();
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("Business"), 1}})}));
  Status s = t.CheckCompatible(polys);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(AbstractionTreeTest, PruneRemovesAbsentLeaves) {
  AbstractionTree t = Fig2();
  // Polynomials mention only b1, b2, e — the Business subtree.
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}}),
       Monomial(1.0, {{vars_.Find("b2"), 1}}),
       Monomial(1.0, {{vars_.Find("e"), 1}})}));
  auto pruned = t.PruneToPolynomials(polys);
  ASSERT_TRUE(pruned.ok());
  auto labels = pruned->LeafLabels();
  EXPECT_EQ(labels.size(), 3u);
  // Special and Standard subtrees are gone.
  EXPECT_EQ(pruned->FindLabel(vars_.Find("f1")), kInvalidNode);
  EXPECT_EQ(pruned->FindLabel(vars_.Find("Standard")), kInvalidNode);
  // The root remains.
  EXPECT_EQ(pruned->node(pruned->root()).label, vars_.Find("Plans"));
}

TEST_F(AbstractionTreeTest, PruneCollapsesUnaryChains) {
  // Only f1 of the F subtree appears: F (single kept child) collapses.
  AbstractionTree t = Fig2();
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("f1"), 1}}),
       Monomial(1.0, {{vars_.Find("v"), 1}})}));
  auto pruned = t.PruneToPolynomials(polys);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->FindLabel(vars_.Find("F")), kInvalidNode);
  EXPECT_NE(pruned->FindLabel(vars_.Find("f1")), kInvalidNode);
}

TEST_F(AbstractionTreeTest, PruneOfDisjointPolynomialsIsInfeasible) {
  AbstractionTree t = Fig2();
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Intern("unrelated"), 1}})}));
  auto pruned = t.PruneToPolynomials(polys);
  EXPECT_FALSE(pruned.ok());
  EXPECT_EQ(pruned.status().code(), StatusCode::kInfeasible);
}

TEST_F(AbstractionTreeTest, PrunePreservesDfsInvariants) {
  AbstractionTree t = Fig2();
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{vars_.Find("b1"), 1}}),
       Monomial(1.0, {{vars_.Find("b2"), 1}}),
       Monomial(1.0, {{vars_.Find("y1"), 1}}),
       Monomial(1.0, {{vars_.Find("p1"), 1}})}));
  auto pruned = t.PruneToPolynomials(polys);
  ASSERT_TRUE(pruned.ok());
  for (NodeIndex v = 0; v < pruned->node_count(); ++v) {
    const auto& n = pruned->node(v);
    for (NodeIndex c : n.children) {
      EXPECT_GT(c, v);
      EXPECT_EQ(pruned->node(c).parent, v);
      EXPECT_EQ(pruned->node(c).depth, n.depth + 1);
    }
    if (!n.is_leaf()) {
      uint32_t total = 0;
      for (NodeIndex c : n.children) total += pruned->node(c).leaf_count();
      EXPECT_EQ(n.leaf_count(), total);
    }
  }
}

// ---------------------------------------------------------------- Forest --

TEST_F(AbstractionTreeTest, ForestValidatesDisjointness) {
  AbstractionForest forest;
  forest.AddTree(Fig2());
  forest.AddTree(MakeFigure3MonthsTree(vars_));
  EXPECT_TRUE(forest.Validate().ok());
}

TEST_F(AbstractionTreeTest, ForestRejectsSharedLabels) {
  AbstractionForest forest;
  forest.AddTree(Fig2());
  forest.AddTree(Fig2());  // Identical labels.
  Status s = forest.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(AbstractionTreeTest, ForestFindLabelAcrossTrees) {
  AbstractionForest forest;
  forest.AddTree(Fig2());
  forest.AddTree(MakeFigure3MonthsTree(vars_));
  NodeRef sb = forest.FindLabel(vars_.Find("SB"));
  EXPECT_EQ(sb.tree, 0u);
  NodeRef q2 = forest.FindLabel(vars_.Find("q2"));
  EXPECT_EQ(q2.tree, 1u);
  NodeRef missing = forest.FindLabel(vars_.Intern("missing"));
  EXPECT_EQ(missing.tree, AbstractionForest::kInvalidTreeIndex);
}

TEST_F(AbstractionTreeTest, ForestTotalNodes) {
  AbstractionForest forest;
  forest.AddTree(Fig2());
  forest.AddTree(MakeFigure3MonthsTree(vars_));  // 1 + 4 + 12 = 17 nodes
  EXPECT_EQ(forest.TotalNodes(), 18u + 17u);
}

TEST_F(AbstractionTreeTest, MonthsTreeStructure) {
  AbstractionTree t = MakeFigure3MonthsTree(vars_, 12);
  EXPECT_EQ(t.node_count(), 17u);
  EXPECT_EQ(t.leaves().size(), 12u);
  EXPECT_EQ(t.Height(), 2u);
  NodeIndex q1 = t.FindLabel(vars_.Find("q1"));
  ASSERT_NE(q1, kInvalidNode);
  EXPECT_EQ(t.node(q1).children.size(), 3u);
}

TEST_F(AbstractionTreeTest, MonthsTreePartialYear) {
  AbstractionTree t = MakeFigure3MonthsTree(vars_, 4);  // m1..m4, q1+q2
  EXPECT_EQ(t.leaves().size(), 4u);
  NodeIndex q2 = t.FindLabel(vars_.Find("q2"));
  ASSERT_NE(q2, kInvalidNode);
  EXPECT_EQ(t.node(q2).children.size(), 1u);
}

}  // namespace
}  // namespace provabs
