#include "core/polynomial.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"
#include "core/polynomial_set.h"
#include "core/semiring.h"
#include "core/valuation.h"
#include "core/variable.h"

namespace provabs {
namespace {

class PolynomialTest : public ::testing::Test {
 protected:
  VariableTable vars_;
  VariableId x_ = vars_.Intern("x");
  VariableId y_ = vars_.Intern("y");
  VariableId z_ = vars_.Intern("z");

  Polynomial MakeXYplusXZ() {
    return Polynomial::FromMonomials({Monomial(2.0, {{x_, 1}, {y_, 1}}),
                                      Monomial(3.0, {{x_, 1}, {z_, 1}})});
  }
};

TEST_F(PolynomialTest, EmptyPolynomial) {
  Polynomial p;
  EXPECT_EQ(p.SizeM(), 0u);
  EXPECT_EQ(p.SizeV(), 0u);
  EXPECT_EQ(p.ToString(vars_), "0");
}

TEST_F(PolynomialTest, FromMonomialsMergesEqualPowerProducts) {
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(2.0, {{x_, 1}}), Monomial(3.0, {{x_, 1}})});
  ASSERT_EQ(p.SizeM(), 1u);
  EXPECT_EQ(p.monomials()[0].coefficient(), 5.0);
}

TEST_F(PolynomialTest, FromMonomialsDropsExactCancellation) {
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(2.0, {{x_, 1}}), Monomial(-2.0, {{x_, 1}})});
  EXPECT_EQ(p.SizeM(), 0u);
}

TEST_F(PolynomialTest, SizeMeasures) {
  Polynomial p = MakeXYplusXZ();
  EXPECT_EQ(p.SizeM(), 2u);   // |P|_M = number of monomials
  EXPECT_EQ(p.SizeV(), 3u);   // |P|_V = distinct variables
}

TEST_F(PolynomialTest, VariablesUnion) {
  Polynomial p = MakeXYplusXZ();
  auto v = p.Variables();
  EXPECT_TRUE(v.count(x_));
  EXPECT_TRUE(v.count(y_));
  EXPECT_TRUE(v.count(z_));
}

TEST_F(PolynomialTest, MentionsChecksAnyMonomial) {
  Polynomial p = MakeXYplusXZ();
  EXPECT_TRUE(p.Mentions(y_));
  EXPECT_FALSE(p.Mentions(vars_.Intern("unused")));
}

TEST_F(PolynomialTest, MapVariablesMergesMonomials) {
  // Mapping y,z -> w turns 2xy + 3xz into 5xw: the central abstraction
  // effect (Example 2 of the paper).
  VariableId w = vars_.Intern("w");
  Polynomial p = MakeXYplusXZ();
  Polynomial q = p.MapVariables(
      [&](VariableId v) { return (v == y_ || v == z_) ? w : v; });
  ASSERT_EQ(q.SizeM(), 1u);
  EXPECT_EQ(q.monomials()[0].coefficient(), 5.0);
  EXPECT_TRUE(q.Mentions(w));
  EXPECT_EQ(q.SizeV(), 2u);
}

TEST_F(PolynomialTest, MapVariablesIdentityIsNoop) {
  Polynomial p = MakeXYplusXZ();
  Polynomial q = p.MapVariables([](VariableId v) { return v; });
  EXPECT_EQ(p, q);
}

TEST_F(PolynomialTest, EqualityDetectsCoefficientChange) {
  Polynomial p = MakeXYplusXZ();
  Polynomial q = Polynomial::FromMonomials({Monomial(2.0, {{x_, 1}, {y_, 1}}),
                                            Monomial(4.0, {{x_, 1}, {z_, 1}})});
  EXPECT_FALSE(p == q);
}

TEST_F(PolynomialTest, AddCombines) {
  Polynomial a = Polynomial::FromMonomials({Monomial(1.0, {{x_, 1}})});
  Polynomial b = Polynomial::FromMonomials(
      {Monomial(2.0, {{x_, 1}}), Monomial(1.0, {{y_, 1}})});
  Polynomial c = Add(a, b);
  EXPECT_EQ(c.SizeM(), 2u);
  Valuation val;
  val.Set(x_, 2.0);
  val.Set(y_, 10.0);
  EXPECT_DOUBLE_EQ(val.Evaluate(c), 3.0 * 2.0 + 10.0);
}

TEST_F(PolynomialTest, MultiplyDistributes) {
  // (x + y)(x + z) = x^2 + xz + xy + yz.
  Polynomial a = Polynomial::FromMonomials(
      {Monomial(1.0, {{x_, 1}}), Monomial(1.0, {{y_, 1}})});
  Polynomial b = Polynomial::FromMonomials(
      {Monomial(1.0, {{x_, 1}}), Monomial(1.0, {{z_, 1}})});
  Polynomial c = Multiply(a, b);
  EXPECT_EQ(c.SizeM(), 4u);
  Valuation val;
  val.Set(x_, 2.0);
  val.Set(y_, 3.0);
  val.Set(z_, 5.0);
  EXPECT_DOUBLE_EQ(val.Evaluate(c), (2.0 + 3.0) * (2.0 + 5.0));
}

TEST_F(PolynomialTest, OneAndVariablePolynomials) {
  EXPECT_EQ(OnePolynomial().SizeM(), 1u);
  EXPECT_EQ(OnePolynomial().SizeV(), 0u);
  Polynomial v = VariablePolynomial(x_, 2.5);
  EXPECT_EQ(v.SizeM(), 1u);
  EXPECT_TRUE(v.Mentions(x_));
  Valuation val;
  val.Set(x_, 4.0);
  EXPECT_DOUBLE_EQ(val.Evaluate(v), 10.0);
}

TEST_F(PolynomialTest, ToStringCanonicalOrder) {
  Polynomial p = MakeXYplusXZ();
  EXPECT_EQ(p.ToString(vars_), "2*x*y + 3*x*z");
}

// ------------------------------------------------------------- Valuation --

TEST_F(PolynomialTest, ValuationDefaultsToOne) {
  Polynomial p = MakeXYplusXZ();
  Valuation val;  // all variables default to 1.0 (the neutral scenario)
  EXPECT_DOUBLE_EQ(val.Evaluate(p), 5.0);
}

TEST_F(PolynomialTest, ValuationAppliesScenario) {
  Polynomial p = MakeXYplusXZ();
  Valuation val;
  val.Set(y_, 0.8);  // "20% discount on y"
  EXPECT_DOUBLE_EQ(val.Evaluate(p), 2.0 * 0.8 + 3.0);
}

TEST_F(PolynomialTest, ValuationHandlesExponents) {
  Polynomial p = Polynomial::FromMonomials({Monomial(1.0, {{x_, 3}})});
  Valuation val;
  val.Set(x_, 2.0);
  EXPECT_DOUBLE_EQ(val.Evaluate(p), 8.0);
}

TEST_F(PolynomialTest, EvaluateAllMatchesPerPolynomial) {
  PolynomialSet set;
  set.Add(MakeXYplusXZ());
  set.Add(VariablePolynomial(y_, 4.0));
  Valuation val;
  val.Set(y_, 0.5);
  auto results = val.EvaluateAll(set);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_DOUBLE_EQ(results[0], val.Evaluate(set[0]));
  EXPECT_DOUBLE_EQ(results[1], 2.0);
}

// -------------------------------------------------- Abstraction semantics --

// The core guarantee of abstraction: if a valuation assigns the same value
// to all variables of a group, the abstracted polynomial evaluates to
// exactly the same number as the original.
TEST_F(PolynomialTest, AbstractionPreservesUniformValuations) {
  Rng rng(31);
  VariableId w = vars_.Intern("w_group");
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Monomial> terms;
    for (int i = 0; i < 20; ++i) {
      std::vector<Factor> f;
      if (rng.Bernoulli(0.7)) f.push_back({x_, 1});
      if (rng.Bernoulli(0.5)) f.push_back({y_, 1});
      if (rng.Bernoulli(0.5)) f.push_back({z_, 1});
      terms.emplace_back(rng.UniformReal(0.1, 10.0), std::move(f));
    }
    Polynomial p = Polynomial::FromMonomials(std::move(terms));
    Polynomial q = p.MapVariables(
        [&](VariableId v) { return (v == y_ || v == z_) ? w : v; });

    double group_value = rng.UniformReal(0.5, 1.5);
    Valuation val;
    val.Set(x_, rng.UniformReal(0.5, 1.5));
    val.Set(y_, group_value);
    val.Set(z_, group_value);
    val.Set(w, group_value);
    EXPECT_NEAR(val.Evaluate(p), val.Evaluate(q), 1e-9);
  }
}

// ------------------------------------------------------------- Semirings --

TEST_F(PolynomialTest, BooleanSemiringTupleExistence) {
  // P = xy + xz: result exists iff x and (y or z) exist.
  Polynomial p = MakeXYplusXZ();
  std::unordered_map<VariableId, bool> assign;
  assign[x_] = true;
  assign[y_] = false;
  assign[z_] = true;
  EXPECT_TRUE(EvaluateOver<BooleanSemiring>(p, assign));
  assign[z_] = false;
  EXPECT_FALSE(EvaluateOver<BooleanSemiring>(p, assign));
  assign[x_] = false;
  assign[y_] = true;
  assign[z_] = true;
  EXPECT_FALSE(EvaluateOver<BooleanSemiring>(p, assign));
}

TEST_F(PolynomialTest, CountingSemiringMultiplicity) {
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(1.0, {{x_, 1}, {y_, 1}}), Monomial(1.0, {{z_, 1}})});
  std::unordered_map<VariableId, int64_t> assign;
  assign[x_] = 2;  // tuple x appears twice
  assign[y_] = 3;
  assign[z_] = 4;
  EXPECT_EQ(EvaluateOver<CountingSemiring>(p, assign), 2 * 3 + 4);
}

TEST_F(PolynomialTest, TropicalSemiringMinCost) {
  // Tropical: + is min, · is +. With unit coefficients (tropical cost 1),
  // P = xy + xz -> min(1 + x + y, 1 + x + z).
  Polynomial p = Polynomial::FromMonomials(
      {Monomial(1.0, {{x_, 1}, {y_, 1}}), Monomial(1.0, {{x_, 1}, {z_, 1}})});
  std::unordered_map<VariableId, double> assign;
  assign[x_] = 1.0;
  assign[y_] = 5.0;
  assign[z_] = 2.0;
  EXPECT_DOUBLE_EQ(EvaluateOver<TropicalSemiring>(p, assign), 4.0);
}

TEST_F(PolynomialTest, RealSemiringMatchesValuation) {
  Polynomial p = MakeXYplusXZ();
  std::unordered_map<VariableId, double> assign{{x_, 2.0}, {y_, 3.0},
                                                {z_, 0.5}};
  Valuation val;
  for (const auto& [k, v] : assign) val.Set(k, v);
  EXPECT_DOUBLE_EQ(EvaluateOver<RealSemiring>(p, assign), val.Evaluate(p));
}

TEST_F(PolynomialTest, SemiringMissingVariableIsNeutral) {
  Polynomial p = VariablePolynomial(x_);
  std::unordered_map<VariableId, bool> empty;
  EXPECT_TRUE(EvaluateOver<BooleanSemiring>(p, empty));
}

}  // namespace
}  // namespace provabs
