#include "abstraction/valid_variable_set.h"

#include <gtest/gtest.h>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "core/polynomial.h"
#include "workload/telephony.h"

namespace provabs {
namespace {

/// Fixture with the Figure 2 plans tree in a single-tree forest, plus the
/// polynomial P of Example 2 (restricted to the variables of Example 13).
class VvsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    forest_.AddTree(MakeFigure2PlansTree(vars_));
    ASSERT_TRUE(forest_.Validate().ok());
    m1_ = vars_.Intern("m1");
    m3_ = vars_.Intern("m3");
  }

  /// Builds a VVS from node labels of the plans tree.
  ValidVariableSet FromLabels(const std::vector<std::string>& labels) {
    ValidVariableSet vvs;
    for (const auto& name : labels) {
      NodeRef ref = forest_.FindLabel(vars_.Find(name));
      EXPECT_NE(ref.tree, AbstractionForest::kInvalidTreeIndex)
          << "label " << name;
      vvs.Add(ref);
    }
    return vvs;
  }

  /// P1 of Example 13 (zip 10001), with the paper's 220.8 typo corrected to
  /// 208.8 (= 522 · 0.4; see telephony_test.cc).
  PolynomialSet ExamplePolys() {
    auto v = [&](const char* n) { return vars_.Find(n); };
    PolynomialSet polys;
    polys.Add(Polynomial::FromMonomials({
        Monomial(208.8, {{v("p1"), 1}, {m1_, 1}}),
        Monomial(240.0, {{v("p1"), 1}, {m3_, 1}}),
        Monomial(127.4, {{v("f1"), 1}, {m1_, 1}}),
        Monomial(114.45, {{v("f1"), 1}, {m3_, 1}}),
        Monomial(75.9, {{v("y1"), 1}, {m1_, 1}}),
        Monomial(72.5, {{v("y1"), 1}, {m3_, 1}}),
        Monomial(42.0, {{v("v"), 1}, {m1_, 1}}),
        Monomial(24.2, {{v("v"), 1}, {m3_, 1}}),
    }));
    polys.Add(Polynomial::FromMonomials({
        Monomial(77.9, {{v("b1"), 1}, {m1_, 1}}),
        Monomial(80.5, {{v("b1"), 1}, {m3_, 1}}),
        Monomial(52.2, {{v("e"), 1}, {m1_, 1}}),
        Monomial(56.5, {{v("e"), 1}, {m3_, 1}}),
        Monomial(69.7, {{v("b2"), 1}, {m1_, 1}}),
        Monomial(100.65, {{v("b2"), 1}, {m3_, 1}}),
    }));
    return polys;
  }

  VariableTable vars_;
  AbstractionForest forest_;
  VariableId m1_, m3_;
};

// The five valid variable sets of Example 5.
TEST_F(VvsTest, Example5Set1IsValid) {
  EXPECT_TRUE(
      FromLabels({"Business", "Special", "Standard"}).Validate(forest_).ok());
}

TEST_F(VvsTest, Example5Set2IsValid) {
  EXPECT_TRUE(FromLabels({"SB", "e", "f1", "f2", "Y", "v", "Standard"})
                  .Validate(forest_)
                  .ok());
}

TEST_F(VvsTest, Example5Set3IsValid) {
  EXPECT_TRUE(FromLabels({"b1", "b2", "e", "Special", "Standard"})
                  .Validate(forest_)
                  .ok());
}

TEST_F(VvsTest, Example5Set4IsValid) {
  EXPECT_TRUE(FromLabels({"SB", "e", "F", "Y", "v", "p1", "p2"})
                  .Validate(forest_)
                  .ok());
}

TEST_F(VvsTest, Example5Set5IsValid) {
  EXPECT_TRUE(FromLabels({"Plans"}).Validate(forest_).ok());
}

TEST_F(VvsTest, RejectsUncoveredLeaves) {
  // Missing the Standard subtree entirely.
  Status s = FromLabels({"Business", "Special"}).Validate(forest_);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(VvsTest, RejectsComparableNodes) {
  // Plans covers everything; SB is its descendant.
  Status s = FromLabels({"Plans", "SB"}).Validate(forest_);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(VvsTest, RejectsDoubleCover) {
  Status s = FromLabels({"Business", "SB", "e", "Special", "Standard"})
                 .Validate(forest_);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(VvsTest, AllLeavesIsValidAndLossless) {
  ValidVariableSet vvs = ValidVariableSet::AllLeaves(forest_);
  EXPECT_TRUE(vvs.Validate(forest_).ok());
  PolynomialSet polys = ExamplePolys();
  LossReport loss = ComputeLossNaive(polys, forest_, vvs);
  EXPECT_EQ(loss.monomial_loss, 0u);
  EXPECT_EQ(loss.variable_loss, 0u);
}

TEST_F(VvsTest, AllRootsIsValid) {
  ValidVariableSet vvs = ValidVariableSet::AllRoots(forest_);
  EXPECT_TRUE(vvs.Validate(forest_).ok());
  EXPECT_EQ(vvs.size(), 1u);
}

TEST_F(VvsTest, SubstitutionMapsLeavesToChosenAncestor) {
  ValidVariableSet vvs = FromLabels({"Business", "Special", "Standard"});
  auto map = vvs.SubstitutionMap(forest_);
  EXPECT_EQ(map.at(vars_.Find("b1")), vars_.Find("Business"));
  EXPECT_EQ(map.at(vars_.Find("e")), vars_.Find("Business"));
  EXPECT_EQ(map.at(vars_.Find("y2")), vars_.Find("Special"));
  EXPECT_EQ(map.at(vars_.Find("p2")), vars_.Find("Standard"));
  // Non-tree variables are absent (identity).
  EXPECT_EQ(map.count(m1_), 0u);
}

TEST_F(VvsTest, LeafChoiceIsIdentity) {
  ValidVariableSet vvs = FromLabels({"b1", "b2", "e", "Special", "Standard"});
  auto map = vvs.SubstitutionMap(forest_);
  EXPECT_EQ(map.at(vars_.Find("b1")), vars_.Find("b1"));
}

// Example 6: |P↓S1|_V = 4 and |P↓S1|_M = 4 for P1 alone; S5 gives 3 and 2.
TEST_F(VvsTest, Example6SizesForS1) {
  PolynomialSet p1_only;
  p1_only.Add(ExamplePolys()[0]);
  ValidVariableSet s1 = FromLabels({"Business", "Special", "Standard"});
  PolynomialSet abstracted = s1.Apply(forest_, p1_only);
  // P1 has plan variables {p1, f1, y1, v} ⊂ Special ∪ Standard: grouping by
  // S1 yields monomials Special·m1, Special·m3, Standard·m1, Standard·m3.
  EXPECT_EQ(abstracted.SizeM(), 4u);
  EXPECT_EQ(abstracted.SizeV(), 4u);  // {Special, Standard, m1, m3}
}

TEST_F(VvsTest, Example6SizesForS5) {
  PolynomialSet p1_only;
  p1_only.Add(ExamplePolys()[0]);
  ValidVariableSet s5 = FromLabels({"Plans"});
  PolynomialSet abstracted = s5.Apply(forest_, p1_only);
  EXPECT_EQ(abstracted.SizeM(), 2u);  // Plans·m1 + Plans·m3
  EXPECT_EQ(abstracted.SizeV(), 3u);  // {Plans, m1, m3}
}

// ML(S1) = 4 and ML(S5) = 6, VL(S1) = 2 and VL(S5) = 3 (§3.1 notations,
// computed on P1 alone which has |P|_M = 8 and |P|_V = 6).
TEST_F(VvsTest, Section31LossNotationsOnP1) {
  PolynomialSet p1_only;
  p1_only.Add(ExamplePolys()[0]);
  LossReport s1 = ComputeLossNaive(
      p1_only, forest_, FromLabels({"Business", "Special", "Standard"}));
  EXPECT_EQ(s1.monomial_loss, 4u);
  EXPECT_EQ(s1.variable_loss, 2u);
  LossReport s5 = ComputeLossNaive(p1_only, forest_, FromLabels({"Plans"}));
  EXPECT_EQ(s5.monomial_loss, 6u);
  EXPECT_EQ(s5.variable_loss, 3u);
}

TEST_F(VvsTest, ApplyMergesCoefficients) {
  // Example 2: replacing m1 and m3 by q1 turns 208.8·p1·m1 + 240·p1·m3
  // into 448.8·p1·q1 (the paper's 460.8 reflects its 220.8 typo).
  AbstractionForest with_months;
  with_months.AddTree(MakeFigure2PlansTree(vars_));
  with_months.AddTree(MakeFigure3MonthsTree(vars_, 3));
  ASSERT_TRUE(with_months.Validate().ok());

  PolynomialSet p1_only;
  p1_only.Add(ExamplePolys()[0]);

  ValidVariableSet vvs;
  // Plans tree: keep all leaves; months tree: q1 over {m1, m2, m3}.
  for (NodeIndex leaf : with_months.tree(0).leaves()) {
    vvs.Add(NodeRef{0, leaf});
  }
  vvs.Add(with_months.FindLabel(vars_.Find("q1")));
  ASSERT_TRUE(vvs.Validate(with_months).ok());

  PolynomialSet abstracted = vvs.Apply(with_months, p1_only);
  EXPECT_EQ(abstracted.SizeM(), 4u);
  // Find the p1·q1 coefficient.
  double p1q1 = 0;
  for (const Monomial& m : abstracted[0].monomials()) {
    if (m.Contains(vars_.Find("p1"))) p1q1 = m.coefficient();
  }
  EXPECT_NEAR(p1q1, 448.8, 1e-9);
}

TEST_F(VvsTest, ToStringListsLabels) {
  ValidVariableSet vvs = FromLabels({"Plans"});
  EXPECT_EQ(vvs.ToString(forest_, vars_), "{Plans}");
}

}  // namespace
}  // namespace provabs
