#include "scenario/lexer.h"

#include <gtest/gtest.h>

#include <string>

#include "common/random.h"

namespace provabs {
namespace {

using scenario::Token;
using scenario::TokenKind;
using scenario::Tokenize;

TEST(ScenarioLexerTest, TokenizesKeywordsCaseInsensitively) {
  auto tokens = Tokenize("let Sweep GRID prefix IN if THEN else AND or NOT "
                         "step SET");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i + 1 < tokens->size(); ++i) {
    EXPECT_EQ((*tokens)[i].kind, TokenKind::kKeyword) << i;
  }
  EXPECT_EQ((*tokens)[0].text, "LET");
  EXPECT_EQ((*tokens)[1].text, "SWEEP");
  EXPECT_EQ((*tokens)[12].text, "SET");
  EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
}

TEST(ScenarioLexerTest, NumberStopsBeforeRangeToken) {
  // "0.1..1.0" must lex as NUMBER DOTDOT NUMBER, not swallow the dots.
  auto tokens = Tokenize("0.1..1.0");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 4u);  // number, .., number, end
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[0].number, 0.1);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kDotDot);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNumber);
  EXPECT_DOUBLE_EQ((*tokens)[2].number, 1.0);
}

TEST(ScenarioLexerTest, TokenizesComparisonOperators) {
  auto tokens = Tokenize("= == != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kAssign);
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kEq);
  EXPECT_EQ((*tokens)[2].kind, TokenKind::kNe);
  EXPECT_EQ((*tokens)[3].kind, TokenKind::kLt);
  EXPECT_EQ((*tokens)[4].kind, TokenKind::kLe);
  EXPECT_EQ((*tokens)[5].kind, TokenKind::kGt);
  EXPECT_EQ((*tokens)[6].kind, TokenKind::kGe);
}

TEST(ScenarioLexerTest, CommentsRunToEndOfLine) {
  auto tokens = Tokenize("x # everything here is ignored ..(!\n y");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "x");
  EXPECT_EQ((*tokens)[1].text, "y");
}

TEST(ScenarioLexerTest, StringsAndIdentifiers) {
  auto tokens = Tokenize("plan_1 'a literal'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "plan_1");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[1].text, "a literal");
}

TEST(ScenarioLexerTest, ErrorsCarryOffsets) {
  size_t offset = 0;
  auto tokens = Tokenize("x @ y", &offset);
  ASSERT_FALSE(tokens.ok());
  EXPECT_EQ(offset, 2u);
  EXPECT_NE(tokens.status().message().find("offset 2"), std::string::npos);
}

TEST(ScenarioLexerTest, UnterminatedStringFails) {
  auto tokens = Tokenize("'never closed");
  EXPECT_FALSE(tokens.ok());
}

TEST(ScenarioLexerTest, BareBangSuggestsNot) {
  auto tokens = Tokenize("!x");
  ASSERT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("NOT"), std::string::npos);
}

TEST(ScenarioLexerTest, EndTokenOffsetIsInputSize) {
  auto tokens = Tokenize("ab cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->back().offset, 5u);
}

// The lexer must terminate and stay in-bounds on arbitrary bytes: every
// outcome is either a token stream or a Status, never a hang or a crash
// (run under ASan/UBSan in CI).
TEST(ScenarioLexerTest, FuzzArbitraryBytesNeverCrash) {
  Rng rng(20260808);
  std::string alphabet = "LETswepgrid.=<>!#'\n\t ()0123456789_xyz,;*+-/";
  alphabet.push_back('\0');
  alphabet.push_back('\x80');
  alphabet.push_back('\xff');
  for (int round = 0; round < 2000; ++round) {
    std::string input;
    const size_t len = static_cast<size_t>(rng.UniformInt(0, 60));
    for (size_t i = 0; i < len; ++i) {
      input.push_back(alphabet[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))]);
    }
    auto tokens = Tokenize(input);
    if (tokens.ok()) {
      ASSERT_FALSE(tokens->empty());
      EXPECT_EQ(tokens->back().kind, TokenKind::kEnd);
    }
  }
}

}  // namespace
}  // namespace provabs
