#include "abstraction/cut_counter.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

std::vector<VariableId> MakeLeaves(VariableTable& vars, size_t n,
                                   const std::string& prefix = "leaf") {
  std::vector<VariableId> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(vars.Intern(prefix + std::to_string(i)));
  }
  return leaves;
}

TEST(CutCounterTest, SingleLeafTreeHasTwoCuts) {
  // Root with one leaf: {leaf} and {root}.
  VariableTable vars;
  AbstractionTreeBuilder b(vars);
  NodeIndex root = b.AddRoot("r");
  b.AddChild(root, "l");
  AbstractionTree t = std::move(b).Build();
  EXPECT_EQ(CountCutsExact(t), 2u);
}

TEST(CutCounterTest, FlatTreeHasTwoCuts) {
  // Root with n leaves: all-leaves or root.
  VariableTable vars;
  AbstractionTreeBuilder b(vars);
  NodeIndex root = b.AddRoot("r");
  for (int i = 0; i < 10; ++i) b.AddChild(root, "l" + std::to_string(i));
  AbstractionTree t = std::move(b).Build();
  EXPECT_EQ(CountCutsExact(t), 2u);
}

TEST(CutCounterTest, Figure2PlansTree) {
  // cuts(SB)=2, cuts(Business)=1+2·1=3, cuts(F)=2, cuts(Y)=2,
  // cuts(Special)=1+2·2·1=5, cuts(Standard)=2,
  // cuts(Plans)=1+3·5·2=31.
  VariableTable vars;
  AbstractionTree t = MakeFigure2PlansTree(vars);
  EXPECT_EQ(CountCutsExact(t), 31u);
  EXPECT_DOUBLE_EQ(CountCutsApprox(t), 31.0);
}

TEST(CutCounterTest, MonthsTree) {
  // Four quarters with 3 leaves each: cuts(q)=2, cuts(Year)=1+2^4=17.
  VariableTable vars;
  AbstractionTree t = MakeFigure3MonthsTree(vars, 12);
  EXPECT_EQ(CountCutsExact(t), 17u);
}

TEST(CutCounterTest, ApproxMatchesExactWhenSmall) {
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 128);
  AbstractionTree t = BuildUniformTree(vars, leaves, {4, 4}, "t");
  EXPECT_DOUBLE_EQ(CountCutsApprox(t),
                   static_cast<double>(CountCutsExact(t)));
}

TEST(CutCounterTest, SaturatesInsteadOfOverflowing) {
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 256);
  // 128 bottom nodes of 2 leaves: cuts(bottom)=2; root=1+2^128 — overflow.
  AbstractionTree t = BuildUniformTree(vars, leaves, {128}, "t");
  EXPECT_EQ(CountCutsExact(t), kSaturated);
  EXPECT_GT(CountCutsApprox(t), 1e38);
}

TEST(CutCounterTest, ForestCutsMultiply) {
  VariableTable vars;
  AbstractionForest forest;
  forest.AddTree(MakeFigure2PlansTree(vars));   // 31 cuts
  forest.AddTree(MakeFigure3MonthsTree(vars));  // 17 cuts
  EXPECT_DOUBLE_EQ(CountForestCutsApprox(forest), 31.0 * 17.0);
}

// ----- Table 2: the VVS column for every tree structure of the paper -----

struct Table2Row {
  int type;
  std::vector<uint32_t> fanouts;
  size_t nodes;
  double vvs;  // Expected cut count (exact for small, ~ for huge).
};

class Table2Test : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2Test, NodeAndCutCountsMatchPaper) {
  const Table2Row& row = GetParam();
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 128);
  AbstractionTree t = BuildUniformTree(vars, leaves, row.fanouts, "t");
  EXPECT_EQ(t.node_count(), row.nodes);
  double cuts = CountCutsApprox(t);
  EXPECT_NEAR(cuts / row.vvs, 1.0, 1e-4)
      << "type " << row.type << " cuts " << cuts;
}

// Every row of Table 2 (nodes and VVS columns).
INSTANTIATE_TEST_SUITE_P(
    AllRows, Table2Test,
    ::testing::Values(
        // Type 1: 2-level trees.
        Table2Row{1, {2}, 131, 5.0}, Table2Row{1, {4}, 133, 17.0},
        Table2Row{1, {8}, 137, 257.0}, Table2Row{1, {16}, 145, 65537.0},
        Table2Row{1, {32}, 161, 4294967297.0},
        Table2Row{1, {64}, 193, 1.8446744073709552e19},
        // Type 2: 3-level, root fan-out 2.
        Table2Row{2, {2, 2}, 135, 26.0}, Table2Row{2, {2, 4}, 139, 290.0},
        Table2Row{2, {2, 8}, 147, 66050.0},
        Table2Row{2, {2, 16}, 163, 4295098370.0},
        Table2Row{2, {2, 32}, 195, 1.8446744073709552e19},
        // Type 3: 3-level, root fan-out 4.
        Table2Row{3, {4, 2}, 141, 626.0}, Table2Row{3, {4, 4}, 149, 83522.0},
        Table2Row{3, {4, 8}, 165, 4362470402.0},
        Table2Row{3, {4, 16}, 197, 1.8447923684701636e19},
        // Type 4: 3-level, root fan-out 8.
        Table2Row{4, {8, 2}, 153, 390626.0},
        Table2Row{4, {8, 4}, 169, 6975757442.0},
        Table2Row{4, {8, 8}, 201, 1.9031100206734375e19},
        // Type 5: 4-level, fan-outs (2, 2, ·).
        Table2Row{5, {2, 2, 2}, 143, 677.0},
        Table2Row{5, {2, 2, 4}, 151, 84101.0},
        Table2Row{5, {2, 2, 8}, 167, 4362602501.0},
        Table2Row{5, {2, 2, 16}, 199, 1.8447923690103203e19},
        // Type 6: 4-level, fan-outs (2, 4, ·).
        Table2Row{6, {2, 4, 2}, 155, 391877.0},
        Table2Row{6, {2, 4, 4}, 171, 6975924485.0},
        Table2Row{6, {2, 4, 8}, 203, 1.9031100207602232e19},
        // Type 7: 4-level, fan-outs (4, 2, ·).
        Table2Row{7, {4, 2, 2}, 157, 456977.0},
        Table2Row{7, {4, 2, 4}, 173, 7072810001.0},
        Table2Row{7, {4, 2, 8}, 205, 1.9032321490575574e19}),
    [](const ::testing::TestParamInfo<Table2Row>& info) {
      std::string name = "Type" + std::to_string(info.param.type);
      for (uint32_t f : info.param.fanouts) {
        name += "_" + std::to_string(f);
      }
      return name;
    });

}  // namespace
}  // namespace provabs
