// Tests for the JIT evaluation tier above the encoder/arena layer: the
// code generator's end-to-end correctness (emitted native code bitwise
// equal to the naive interpreter), the fingerprint-keyed code cache
// (hit/miss accounting, page-rounded budget charge and release, LRU
// eviction that never drops the most recent entry, Invalidate), the
// backend's counted fallback reasons (force knob, env knob, emission
// failure), and concurrent GetOrEmit — the case the cache's locking
// exists for, exercised under TSan in CI.

#include "jit/jit_backend.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "jit/code_cache.h"
#include "jit/code_generator.h"
#include "jit/exec_arena.h"

namespace provabs {
namespace {

using jit::ExecArena;
using jit::GeneratePolynomialSetCode;
using jit::JitCodeCache;
using jit::JitModule;

uint64_t Bits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// A small deterministic set with the shapes that stress the generator:
/// empty polynomial, constant-only monomial, exponents > 1, repeated
/// variables, negative coefficients.
PolynomialSet MakeFixedSet(VariableTable& vars) {
  VariableId x = vars.Intern("x");
  VariableId y = vars.Intern("y");
  VariableId z = vars.Intern("z");
  PolynomialSet polys;
  polys.Add(Polynomial::FromMonomials(
      {Monomial(2.5, {{x, 2}}), Monomial(-1.25, {{y, 1}, {z, 3}})}));
  polys.Add(Polynomial::FromMonomials({}));  // empty: always 0.0
  polys.Add(Polynomial::FromMonomials({Monomial(7.75, {})}));  // constant
  polys.Add(Polynomial::FromMonomials(
      {Monomial(0.5, {{x, 1}, {y, 1}}), Monomial(3.0, {{z, 1}}),
       Monomial(-0.125, {{x, 4}})}));
  return polys;
}

PolynomialSet MakeRandomSet(Rng& rng, VariableTable& vars, size_t num_polys,
                            const std::string& prefix) {
  std::vector<VariableId> ids;
  for (size_t v = 0; v < 12; ++v) {
    ids.push_back(vars.Intern(prefix + std::to_string(v)));
  }
  PolynomialSet polys;
  for (size_t p = 0; p < num_polys; ++p) {
    std::vector<Monomial> terms;
    const size_t n_terms = 1 + rng.Uniform(6);
    for (size_t t = 0; t < n_terms; ++t) {
      std::vector<Factor> factors;
      const size_t n_factors = rng.Uniform(4);
      for (size_t f = 0; f < n_factors; ++f) {
        factors.push_back({ids[rng.Uniform(ids.size())],
                           static_cast<uint32_t>(1 + rng.Uniform(3))});
      }
      terms.emplace_back(rng.UniformReal(-5.0, 5.0), std::move(factors));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  return polys;
}

Valuation MakeScenario(Rng& rng, const VariableTable& vars) {
  Valuation val;
  for (VariableId v = 0; v < vars.size(); ++v) {
    if (rng.Bernoulli(0.7)) val.Set(v, rng.UniformReal(-2.0, 2.0));
  }
  return val;
}

/// Evaluates the whole set through `backend` in one batch and
/// bit-compares against the naive interpreter.
void ExpectBackendMatchesNaive(const EvaluationBackend& backend,
                               const PolynomialSet& polys,
                               const Valuation& val,
                               const std::string& which) {
  auto compiled = polys.Compiled();
  DenseValuation dense = compiled->MaterializeValuation(val);
  std::vector<double> out(compiled->poly_count());
  const DenseValuation* scenario = &dense;
  double* out_ptr = out.data();
  Status status = backend.EvaluateBatch(*compiled, 0, compiled->poly_count(),
                                        &scenario, &out_ptr, 1);
  ASSERT_TRUE(status.ok()) << which << ": " << status.ToString();
  size_t i = 0;
  for (const Polynomial& p : polys.polynomials()) {
    ASSERT_EQ(Bits(val.Evaluate(p)), Bits(out[i]))
        << which << ": polynomial " << i;
    ++i;
  }
}

// ------------------------------------------------ code generator --------

TEST(CodeGeneratorTest, EmitsOneEntryPerPolynomial) {
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  auto compiled = polys.Compiled();
  auto generated = GeneratePolynomialSetCode(*compiled,
                                             JitCodeCache::kDefaultMaxCodeBytes);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  EXPECT_EQ(generated->entry_offsets.size(), compiled->poly_count());
  EXPECT_FALSE(generated->code.empty());
  EXPECT_EQ(generated->entry_offsets[0], 0u);
  for (size_t p = 1; p < generated->entry_offsets.size(); ++p) {
    EXPECT_GT(generated->entry_offsets[p], generated->entry_offsets[p - 1]);
    EXPECT_LT(generated->entry_offsets[p], generated->code.size());
  }
  // The full-set range function sits after every per-polynomial function.
  EXPECT_GT(generated->range_entry, generated->entry_offsets.back());
  EXPECT_LT(generated->range_entry, generated->code.size());
}

TEST(CodeGeneratorTest, CodeCapIsOutOfRange) {
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  auto generated = GeneratePolynomialSetCode(*polys.Compiled(), 4);
  ASSERT_FALSE(generated.ok());
  EXPECT_EQ(generated.status().code(), StatusCode::kOutOfRange);
}

TEST(CodeGeneratorTest, NativeCodeMatchesInterpreterBitwise) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  auto compiled = polys.Compiled();
  auto generated = GeneratePolynomialSetCode(*compiled,
                                             JitCodeCache::kDefaultMaxCodeBytes);
  ASSERT_TRUE(generated.ok()) << generated.status().ToString();
  auto arena =
      ExecArena::Create(generated->code.data(), generated->code.size());
  ASSERT_TRUE(arena.ok()) << arena.status().ToString();
  JitModule module(compiled->fingerprint(), std::move(*arena),
                   std::move(generated->entry_offsets),
                   generated->range_entry);

  Rng rng(20260809);
  for (int round = 0; round < 16; ++round) {
    Valuation val = MakeScenario(rng, vars);
    DenseValuation dense = compiled->MaterializeValuation(val);
    // Per-polynomial entries and the full-set range function must both
    // match the interpreter bit-for-bit.
    std::vector<double> all(compiled->poly_count());
    module.EvalAll(dense.data(), all.data());
    size_t p = 0;
    for (const Polynomial& poly : polys.polynomials()) {
      ASSERT_EQ(Bits(val.Evaluate(poly)), Bits(module.Eval(p, dense.data())))
          << "round " << round << " polynomial " << p;
      ASSERT_EQ(Bits(val.Evaluate(poly)), Bits(all[p]))
          << "round " << round << " range function, polynomial " << p;
      ++p;
    }
  }
}

// ------------------------------------------------ code cache ------------

TEST(JitCodeCacheTest, HitMissAccountingAndBudgetCharge) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  JitCodeCache cache(/*byte_budget=*/size_t{4} << 20);
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  auto compiled = polys.Compiled();

  auto first = cache.GetOrEmit(*compiled);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ((*first)->fingerprint(), compiled->fingerprint());
  JitCodeCache::Stats after_miss = cache.stats();
  EXPECT_EQ(after_miss.misses, 1u);
  EXPECT_EQ(after_miss.hits, 0u);
  EXPECT_EQ(after_miss.resident_modules, 1u);
  // The budget is charged at page granularity, exactly mapped_bytes().
  EXPECT_EQ(after_miss.resident_bytes, (*first)->mapped_bytes());
  EXPECT_GE((*first)->mapped_bytes(), (*first)->code_bytes());

  auto second = cache.GetOrEmit(*compiled);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->get(), first->get());  // same module, not re-emitted
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // Invalidate releases the charge; the caller's shared_ptr stays valid.
  EXPECT_TRUE(cache.Invalidate(compiled->fingerprint()));
  EXPECT_FALSE(cache.Invalidate(compiled->fingerprint()));
  JitCodeCache::Stats after_drop = cache.stats();
  EXPECT_EQ(after_drop.invalidations, 1u);
  EXPECT_EQ(after_drop.resident_modules, 0u);
  EXPECT_EQ(after_drop.resident_bytes, 0u);
  EXPECT_EQ((*first)->fingerprint(), compiled->fingerprint());
}

TEST(JitCodeCacheTest, EvictsLruButNeverTheMostRecent) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  // A budget of one page: every new set's module (>= one page) forces the
  // previous one out, but the newest must always be admitted.
  JitCodeCache cache(/*byte_budget=*/1);
  Rng rng(7);
  VariableTable vars;
  PolynomialSet a = MakeRandomSet(rng, vars, 3, "a");
  PolynomialSet b = MakeRandomSet(rng, vars, 3, "b");

  auto mod_a = cache.GetOrEmit(*a.Compiled());
  ASSERT_TRUE(mod_a.ok()) << mod_a.status().ToString();
  EXPECT_EQ(cache.stats().resident_modules, 1u);  // over budget, but kept

  auto mod_b = cache.GetOrEmit(*b.Compiled());
  ASSERT_TRUE(mod_b.ok()) << mod_b.status().ToString();
  JitCodeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.resident_modules, 1u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_bytes, (*mod_b)->mapped_bytes());

  // The evicted module re-emits on next use (a fresh miss, not a hit).
  auto again = cache.GetOrEmit(*a.Compiled());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().hits, 0u);
  // Evicted-but-held modules keep executing: the shared_ptr owns the
  // mapping, eviction only drops the cache's reference.
  Valuation val;
  DenseValuation dense = b.Compiled()->MaterializeValuation(val);
  (void)(*mod_b)->Eval(0, dense.data());
}

TEST(JitCodeCacheTest, EmitFailureIsCountedAndNotCached) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  // max_code_bytes of 1 makes every non-empty emission fail.
  JitCodeCache cache(JitCodeCache::kDefaultByteBudget, /*max_code_bytes=*/1);
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  auto compiled = polys.Compiled();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto module = cache.GetOrEmit(*compiled);
    ASSERT_FALSE(module.ok());
    EXPECT_EQ(module.status().code(), StatusCode::kOutOfRange);
  }
  JitCodeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.emit_failures, 2u);  // retried, never cached
  EXPECT_EQ(stats.resident_modules, 0u);
  EXPECT_EQ(stats.resident_bytes, 0u);
}

TEST(JitCodeCacheTest, ConcurrentGetOrEmitYieldsOneModule) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  JitCodeCache cache(JitCodeCache::kDefaultByteBudget);
  Rng rng(99);
  VariableTable vars;
  PolynomialSet shared_set = MakeRandomSet(rng, vars, 4, "s");
  auto compiled = shared_set.Compiled();

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const JitModule>> modules(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto module = cache.GetOrEmit(*compiled);
      if (module.ok()) modules[t] = *module;
    });
  }
  for (auto& thread : threads) thread.join();

  // Exactly one emission; every thread got the same module.
  JitCodeCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<uint64_t>(kThreads - 1));
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(modules[t], nullptr) << "thread " << t;
    EXPECT_EQ(modules[t].get(), modules[0].get());
  }
}

// ------------------------------------------------ backend fallbacks -----

TEST(JitBackendTest, ForcedFallbackCountsAndStaysBitwiseEqual) {
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  Rng rng(5);
  Valuation val = MakeScenario(rng, vars);

  JitBackend backend(JitBackend::Mode::kForceFallback);
  EXPECT_FALSE(backend.Available());
  ExpectBackendMatchesNaive(backend, polys, val, "forced fallback");
  JitBackend::Stats stats = backend.stats();
  EXPECT_EQ(stats.native_batches, 0u);
  EXPECT_EQ(stats.fallback_forced, 1u);
  EXPECT_EQ(stats.fallback_emit_failed, 0u);
}

TEST(JitBackendTest, EnvKnobForcesFallbackPerCall) {
  const char* saved = getenv("PROVABS_EVAL_FORCE_NOJIT");
  std::string saved_value = saved ? saved : "";

  setenv("PROVABS_EVAL_FORCE_NOJIT", "1", /*overwrite=*/1);
  EXPECT_TRUE(JitForceDisabled());
  EXPECT_FALSE(JitNativeActive());

  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  Rng rng(6);
  Valuation val = MakeScenario(rng, vars);
  JitBackend backend(JitBackend::Mode::kAuto);
  EXPECT_FALSE(backend.Available());
  ExpectBackendMatchesNaive(backend, polys, val, "env-forced fallback");
  EXPECT_EQ(backend.stats().fallback_forced, 1u);
  EXPECT_EQ(backend.stats().native_batches, 0u);

  // "0" and unset both mean not-forced; the knob is read per call.
  setenv("PROVABS_EVAL_FORCE_NOJIT", "0", /*overwrite=*/1);
  EXPECT_FALSE(JitForceDisabled());
  unsetenv("PROVABS_EVAL_FORCE_NOJIT");
  EXPECT_FALSE(JitForceDisabled());

  if (saved) {
    setenv("PROVABS_EVAL_FORCE_NOJIT", saved_value.c_str(), /*overwrite=*/1);
  }
}

TEST(JitBackendTest, EmitFailureFallsBackBitwiseEqual) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  // A cache whose code cap rejects everything: the backend must degrade to
  // the compiled kernel and count the reason, not fail the batch.
  JitCodeCache cache(JitCodeCache::kDefaultByteBudget, /*max_code_bytes=*/1);
  JitBackend backend(JitBackend::Mode::kAuto, &cache);
  VariableTable vars;
  PolynomialSet polys = MakeFixedSet(vars);
  Rng rng(8);
  Valuation val = MakeScenario(rng, vars);
  ExpectBackendMatchesNaive(backend, polys, val, "emit-failed fallback");
  JitBackend::Stats stats = backend.stats();
  EXPECT_EQ(stats.fallback_emit_failed, 1u);
  EXPECT_EQ(stats.native_batches, 0u);
}

TEST(JitBackendTest, NativeBatchesAreCountedAndBitwiseEqual) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  JitCodeCache cache(JitCodeCache::kDefaultByteBudget);
  JitBackend backend(JitBackend::Mode::kAuto, &cache);
  EXPECT_TRUE(backend.Available());
  Rng rng(11);
  VariableTable vars;
  PolynomialSet polys = MakeRandomSet(rng, vars, 6, "n");
  for (int round = 0; round < 4; ++round) {
    Valuation val = MakeScenario(rng, vars);
    ExpectBackendMatchesNaive(backend, polys, val,
                              "native round " + std::to_string(round));
  }
  JitBackend::Stats stats = backend.stats();
  EXPECT_EQ(stats.native_batches, 4u);
  EXPECT_EQ(stats.fallback_forced, 0u);
  EXPECT_EQ(stats.fallback_emit_failed, 0u);
  // One emission served all four batches.
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(JitBackendTest, PartialRangesUsePerPolynomialEntries) {
  if (!JitNativeActive()) GTEST_SKIP() << "no native jit on this host";
  // Partial [begin, end) ranges — the shape parallel chunking produces —
  // route through the per-polynomial entry points, not the full-set range
  // function; every sub-range must still be bitwise equal to naive.
  JitCodeCache cache(JitCodeCache::kDefaultByteBudget);
  JitBackend backend(JitBackend::Mode::kAuto, &cache);
  Rng rng(13);
  VariableTable vars;
  PolynomialSet polys = MakeRandomSet(rng, vars, 7, "r");
  auto compiled = polys.Compiled();
  Valuation val = MakeScenario(rng, vars);
  DenseValuation dense = compiled->MaterializeValuation(val);

  std::vector<double> expected;
  for (const Polynomial& p : polys.polynomials()) {
    expected.push_back(val.Evaluate(p));
  }
  const size_t count = compiled->poly_count();
  for (size_t begin = 0; begin < count; ++begin) {
    for (size_t end = begin; end <= count; ++end) {
      std::vector<double> out(end - begin);
      const DenseValuation* scenario = &dense;
      double* out_ptr = out.data();
      Status status = backend.EvaluateBatch(*compiled, begin, end, &scenario,
                                            &out_ptr, 1);
      ASSERT_TRUE(status.ok()) << status.ToString();
      for (size_t p = begin; p < end; ++p) {
        ASSERT_EQ(Bits(expected[p]), Bits(out[p - begin]))
            << "range [" << begin << ", " << end << ") polynomial " << p;
      }
    }
  }
}

}  // namespace
}  // namespace provabs
