#include "online/online_compressor.h"

#include <gtest/gtest.h>

#include "io/serializer.h"
#include "online/sampler.h"
#include "online/size_estimator.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

// ---------------------------------------------------------------- sampler

class SamplerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_customers = 500;
    config_.num_plans = 16;
    config_.num_months = 4;
    Rng rng(1);
    db_ = GenerateTelephony(config_, rng);
  }

  TelephonyConfig config_;
  Database db_;
};

TEST_F(SamplerTest, UniformSamplesEveryTable) {
  SampleSpec spec;
  spec.rate = 0.5;
  Rng rng(2);
  Database sampled = SampleDatabase(db_, spec, rng);
  EXPECT_LT(sampled.Get("Cust").row_count(), db_.Get("Cust").row_count());
  EXPECT_LT(sampled.Get("Calls").row_count(), db_.Get("Calls").row_count());
  EXPECT_LT(sampled.Get("Plans").row_count(), db_.Get("Plans").row_count());
}

TEST_F(SamplerTest, GroupAwareLeavesDimensionsIntact) {
  SampleSpec spec;
  spec.rate = 0.3;
  spec.sampled_tables = {"Cust", "Calls"};
  Rng rng(3);
  Database sampled = SampleDatabase(db_, spec, rng);
  EXPECT_LT(sampled.Get("Cust").row_count(), db_.Get("Cust").row_count());
  EXPECT_EQ(sampled.Get("Plans").row_count(), db_.Get("Plans").row_count());
}

TEST_F(SamplerTest, RateZeroKeepsNothingRateOneKeepsAll) {
  Rng rng(4);
  SampleSpec none;
  none.rate = 0.0;
  EXPECT_EQ(SampleDatabase(db_, none, rng).Get("Cust").row_count(), 0u);
  SampleSpec all;
  all.rate = 1.0;
  EXPECT_EQ(SampleDatabase(db_, all, rng).Get("Cust").row_count(),
            db_.Get("Cust").row_count());
}

TEST_F(SamplerTest, DeterministicForSeed) {
  SampleSpec spec;
  spec.rate = 0.4;
  Rng r1(9);
  Rng r2(9);
  Database a = SampleDatabase(db_, spec, r1);
  Database b = SampleDatabase(db_, spec, r2);
  EXPECT_EQ(a.Get("Calls").row_count(), b.Get("Calls").row_count());
}

TEST_F(SamplerTest, RateRoughlyRespected) {
  SampleSpec spec;
  spec.rate = 0.25;
  spec.sampled_tables = {"Calls"};
  Rng rng(5);
  Database sampled = SampleDatabase(db_, spec, rng);
  double fraction = static_cast<double>(sampled.Get("Calls").row_count()) /
                    static_cast<double>(db_.Get("Calls").row_count());
  EXPECT_NEAR(fraction, 0.25, 0.05);
}

// ---------------------------------------------------------- size estimator

TEST(SizeEstimatorTest, LinearGrowthExtrapolates) {
  // size = 1000 · rate exactly.
  std::vector<SizeObservation> obs = {{0.1, 100}, {0.2, 200}, {0.4, 400}};
  auto estimate = EstimateFullSize(obs);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(static_cast<double>(*estimate), 1000.0, 10.0);
}

TEST(SizeEstimatorTest, SublinearGrowthExtrapolates) {
  // size = 1000 · rate^0.5.
  std::vector<SizeObservation> obs = {
      {0.04, 200}, {0.16, 400}, {0.64, 800}};
  auto estimate = EstimateFullSize(obs);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(static_cast<double>(*estimate), 1000.0, 20.0);
}

TEST(SizeEstimatorTest, RejectsSingleRate) {
  std::vector<SizeObservation> obs = {{0.1, 100}, {0.1, 110}};
  EXPECT_EQ(EstimateFullSize(obs).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SizeEstimatorTest, RejectsEmptyOrDegenerate) {
  EXPECT_FALSE(EstimateFullSize({}).ok());
  std::vector<SizeObservation> zeros = {{0.1, 0}, {0.2, 0}};
  EXPECT_FALSE(EstimateFullSize(zeros).ok());
}

TEST(SizeEstimatorTest, BoundAdaptationScalesProportionally) {
  // Sample is 10% of the estimated full size -> bound shrinks 10x.
  EXPECT_EQ(AdaptBoundToSample(5000, 100, 1000), 500u);
  EXPECT_EQ(AdaptBoundToSample(10, 1, 1000), 1u);  // Clamped to >= 1.
}

// ------------------------------------------------------- online pipeline

class OnlineCompressorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_.num_customers = 1500;
    config_.num_plans = 32;
    config_.num_months = 12;
    config_.num_zip_codes = 10;
    Rng rng(11);
    db_ = GenerateTelephony(config_, rng);
    tv_ = MakeTelephonyVars(vars_, config_);
    forest_.AddTree(BuildUniformTree(vars_, tv_.plan_vars, {4, 2}, "OC_"));
    query_ = [this](const Database& d) {
      return RunTelephonyQuery(d, tv_);
    };
  }

  TelephonyConfig config_;
  Database db_;
  VariableTable vars_;
  TelephonyVars tv_;
  AbstractionForest forest_;
  ProvenanceQuery query_;
};

TEST_F(OnlineCompressorTest, PipelineProducesValidCut) {
  size_t full_size = query_(db_).SizeM();
  auto result = CompressOnline(db_, query_, forest_, full_size / 2);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
  EXPECT_GT(result->sample_size_m, 0u);
  EXPECT_EQ(result->actual_full_size_m, full_size);
}

TEST_F(OnlineCompressorTest, GroupAwareSamplingUsesCallsTable) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};  // Fact table only (§6 heuristic).
  auto result = CompressOnline(db_, query_, forest_, full_size / 2, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // With dimensions intact, the sample provenance mirrors the full shape,
  // so the extrapolated size should be in the right ballpark.
  double ratio = static_cast<double>(result->estimated_full_size_m) /
                 static_cast<double>(result->actual_full_size_m);
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 3.0);
}

TEST_F(OnlineCompressorTest, CompressedSizeNearBound) {
  size_t full_size = query_(db_).SizeM();
  size_t bound = full_size / 2;
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  opts.sample_rates = {0.1, 0.2, 0.4};
  auto result = CompressOnline(db_, query_, forest_, bound, opts);
  ASSERT_TRUE(result.ok());
  // The sample-chosen VVS need not be optimal for the full data, but it
  // should land within a reasonable factor of the bound.
  EXPECT_LT(result->compressed.SizeM(),
            full_size);  // Some compression happened.
  EXPECT_LT(static_cast<double>(result->compressed.SizeM()),
            2.0 * static_cast<double>(bound));
}

TEST_F(OnlineCompressorTest, RejectsBadRates) {
  OnlineOptions opts;
  opts.sample_rates = {};
  EXPECT_EQ(CompressOnline(db_, query_, forest_, 100, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.sample_rates = {0.0, 0.5};
  EXPECT_EQ(CompressOnline(db_, query_, forest_, 100, opts).status().code(),
            StatusCode::kInvalidArgument);
  opts.sample_rates = {0.5, 1.5};
  EXPECT_EQ(CompressOnline(db_, query_, forest_, 100, opts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(OnlineCompressorTest, RejectsZeroBound) {
  EXPECT_EQ(CompressOnline(db_, query_, forest_, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(OnlineCompressorTest, UnreachableBoundFallsBackToMaxCompression) {
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  auto result = CompressOnline(db_, query_, forest_, 1, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Fallback = all roots: plan variables fully grouped.
  EXPECT_FALSE(result->met_bound);
  PolynomialSet full = query_(db_);
  EXPECT_LT(result->compressed.SizeM(), full.SizeM());
}

TEST_F(OnlineCompressorTest, RegistryAlgoSelectsCompressor) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};

  // Unknown names fail with the registry's enumerating error.
  opts.algo = "quantum";
  EXPECT_EQ(CompressOnline(db_, query_, forest_, full_size / 2, opts)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // An explicit greedy routes through the registry and behaves like the
  // default multi-tree path.
  opts.algo = "greedy";
  auto greedy = CompressOnline(db_, query_, forest_, full_size / 2, opts);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  EXPECT_TRUE(greedy->vvs.Validate(forest_).ok());
  EXPECT_FALSE(greedy->abstraction.grouping);
}

TEST_F(OnlineCompressorTest, ProxAlgoRequiresTableAndSerializes) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  opts.algo = "prox";

  // Without a table to intern group representatives into, the grouping
  // path is rejected before any algorithm runs.
  EXPECT_EQ(CompressOnline(db_, query_, forest_, full_size / 2, opts)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  opts.vars = &vars_;
  auto result = CompressOnline(db_, query_, forest_, full_size / 2, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->abstraction.grouping);
  EXPECT_LT(result->compressed.SizeM(), full_size);
  // The interned grouping serializes like any other artifact — no
  // out-of-table synthesized ids survive.
  std::string bytes = SerializePolynomialSet(result->compressed, vars_);
  VariableTable fresh;
  auto decoded = DeserializePolynomialSet(bytes, fresh);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->SizeM(), result->compressed.SizeM());
}

// ------------------------------------------------- incremental append path

TEST_F(OnlineCompressorTest, AnytimeBudgetSurfacesThroughPipeline) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  opts.time_budget_ms = 1;
  // A pre-expired budget still yields a usable pipeline result: the
  // anytime DP returns its best-so-far cut instead of kOutOfRange.
  auto result = CompressOnline(db_, query_, forest_, full_size / 2, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
  EXPECT_EQ(result->budget_exhausted, result->abstraction.budget_exhausted);
}

TEST_F(OnlineCompressorTest, AppendOnlinePatchesLocalizedAdd) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  // A loose bound keeps most leaves in the cut, so a leaf-level append
  // exists that does not cross the abstracted interior.
  auto result = CompressOnline(db_, query_, forest_, full_size - 8, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_NE(result->abstraction.dp_state, nullptr)
      << "single-tree pipeline should retain the optimal DP tables";

  // Append over a variable the cut kept as a leaf: patchable by contract.
  VariableId leaf_var = kInvalidVariable;
  for (const NodeRef& ref : result->vvs.nodes()) {
    const auto& node = forest_.tree(ref.tree).node(ref.node);
    if (node.is_leaf()) {
      leaf_var = node.label;
      break;
    }
  }
  ASSERT_NE(leaf_var, kInvalidVariable);
  PolynomialSet added;
  added.Add(Polynomial::FromMonomials({Monomial(1.5, {{leaf_var, 1}})}));

  size_t compressed_before = result->compressed.SizeM();
  OnlineAppendInfo extra;
  Status s = AppendOnline(forest_, added, full_size - 8, &*result, opts,
                          &extra);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(extra.patched);
  EXPECT_EQ(extra.fallback, RecompressFallback::kNone);
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
  EXPECT_GT(result->compressed.SizeM(), compressed_before);

  // Differential: the patched cut is field-equal to a cold DP over the
  // grown sample at the same (adapted) bound.
  auto cold = OptimalSingleTree(result->decision_sample, forest_, 0,
                                result->adapted_bound);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(result->abstraction.loss.monomial_loss, cold->loss.monomial_loss);
  EXPECT_EQ(result->abstraction.loss.variable_loss, cold->loss.variable_loss);
  EXPECT_EQ(result->abstraction.vvs.nodes().size(), cold->vvs.nodes().size());
}

TEST_F(OnlineCompressorTest, AppendOnlineFallsBackAcrossTheCut) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  auto result = CompressOnline(db_, query_, forest_, full_size / 2, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Find a leaf strictly below a chosen internal node; appending there
  // changes the abstracted interior, so patching must decline and the full
  // algorithm re-runs.
  VariableId inner_leaf = kInvalidVariable;
  const AbstractionTree& tree = forest_.tree(0);
  for (const NodeRef& ref : result->vvs.nodes()) {
    const auto& node = forest_.tree(ref.tree).node(ref.node);
    if (!node.is_leaf()) {
      inner_leaf = tree.node(tree.leaves()[node.leaf_begin]).label;
      break;
    }
  }
  if (inner_leaf == kInvalidVariable) {
    GTEST_SKIP() << "cut kept every leaf; no interior to cross";
  }
  PolynomialSet added;
  added.Add(Polynomial::FromMonomials({Monomial(2.0, {{inner_leaf, 1}})}));

  OnlineAppendInfo extra;
  Status s = AppendOnline(forest_, added, full_size / 2, &*result, opts,
                          &extra);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_FALSE(extra.patched);
  EXPECT_NE(extra.fallback, RecompressFallback::kNone);
  EXPECT_TRUE(result->vvs.Validate(forest_).ok());
}

TEST_F(OnlineCompressorTest, AppendOnlineRejectsGroupings) {
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  opts.algo = "prox";
  opts.vars = &vars_;
  auto result = CompressOnline(db_, query_, forest_, full_size / 2, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  PolynomialSet added;
  added.Add(Polynomial::FromMonomials(
      {Monomial(1.0, {{tv_.plan_vars.front(), 1}})}));
  EXPECT_EQ(AppendOnline(forest_, added, full_size / 2, &*result, opts)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(OnlineCompressorTest, MultiTreeForestUsesGreedy) {
  AbstractionForest forest2;
  forest2.AddTree(BuildUniformTree(vars_, tv_.plan_vars, {4, 2}, "OC2_"));
  forest2.AddTree(MakeFigure3MonthsTree(vars_, 12));
  ASSERT_TRUE(forest2.Validate().ok());
  size_t full_size = query_(db_).SizeM();
  OnlineOptions opts;
  opts.sampled_tables = {"Calls"};
  auto result = CompressOnline(db_, query_, forest2, full_size / 3, opts);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->vvs.Validate(forest2).ok());
}

}  // namespace
}  // namespace provabs
