#include "workload/tree_gen.h"

#include <gtest/gtest.h>

#include <string>

#include "abstraction/abstraction_forest.h"

namespace provabs {
namespace {

std::vector<VariableId> MakeLeaves(VariableTable& vars, size_t n) {
  std::vector<VariableId> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(vars.Intern("s" + std::to_string(i)));
  }
  return leaves;
}

TEST(TreeGenTest, TwoLevelStructure) {
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 128);
  AbstractionTree t = BuildUniformTree(vars, leaves, {4}, "x");
  EXPECT_EQ(t.node_count(), 1u + 4u + 128u);
  EXPECT_EQ(t.leaves().size(), 128u);
  EXPECT_EQ(t.Height(), 2u);
  EXPECT_EQ(t.node(t.root()).children.size(), 4u);
  // Even distribution: each inner node holds 32 leaves.
  for (NodeIndex c : t.node(t.root()).children) {
    EXPECT_EQ(t.node(c).leaf_count(), 32u);
  }
}

TEST(TreeGenTest, UnevenLeavesDistributedWithRemainder) {
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 10);
  AbstractionTree t = BuildUniformTree(vars, leaves, {3}, "x");
  std::vector<uint32_t> counts;
  for (NodeIndex c : t.node(t.root()).children) {
    counts.push_back(t.node(c).leaf_count());
  }
  EXPECT_EQ(counts, (std::vector<uint32_t>{4, 3, 3}));
}

TEST(TreeGenTest, LeavesKeepOriginalLabels) {
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 8);
  AbstractionTree t = BuildUniformTree(vars, leaves, {2, 2}, "x");
  auto labels = t.LeafLabels();
  std::unordered_set<VariableId> set(labels.begin(), labels.end());
  for (VariableId v : leaves) {
    EXPECT_TRUE(set.count(v)) << vars.NameOf(v);
  }
}

TEST(TreeGenTest, PrefixKeepsForestsDisjoint) {
  VariableTable vars;
  auto a_leaves = MakeLeaves(vars, 16);
  std::vector<VariableId> b_leaves;
  for (size_t i = 0; i < 16; ++i) {
    b_leaves.push_back(vars.Intern("p" + std::to_string(i)));
  }
  AbstractionForest forest;
  forest.AddTree(BuildUniformTree(vars, a_leaves, {2, 2}, "A_"));
  forest.AddTree(BuildUniformTree(vars, b_leaves, {2, 2}, "B_"));
  EXPECT_TRUE(forest.Validate().ok());
}

TEST(TreeGenTest, FourLevelDepth) {
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 128);
  AbstractionTree t = BuildUniformTree(vars, leaves, {2, 2, 2}, "x");
  EXPECT_EQ(t.Height(), 4u);
}

TEST(TreeGenTest, SpecTableCoverage) {
  EXPECT_EQ(TreeSpecsOfType(1).size(), 6u);
  EXPECT_EQ(TreeSpecsOfType(2).size(), 5u);
  EXPECT_EQ(TreeSpecsOfType(3).size(), 4u);
  EXPECT_EQ(TreeSpecsOfType(4).size(), 3u);
  EXPECT_EQ(TreeSpecsOfType(5).size(), 4u);
  EXPECT_EQ(TreeSpecsOfType(6).size(), 3u);
  EXPECT_EQ(TreeSpecsOfType(7).size(), 3u);
  EXPECT_EQ(AllTreeSpecs().size(), 28u);
}

// Node counts of every Table 2 row, via the analytic formula AND the
// actually-built tree.
class SpecNodeCountTest : public ::testing::TestWithParam<TreeTypeSpec> {};

TEST_P(SpecNodeCountTest, BuiltTreeMatchesFormula) {
  const TreeTypeSpec& spec = GetParam();
  VariableTable vars;
  auto leaves = MakeLeaves(vars, 128);
  AbstractionTree t = BuildUniformTree(vars, leaves, spec.fanouts, "x");
  EXPECT_EQ(t.node_count(), SpecNodeCount(spec));
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecs, SpecNodeCountTest, ::testing::ValuesIn(AllTreeSpecs()),
    [](const ::testing::TestParamInfo<TreeTypeSpec>& info) {
      std::string name = "Type" + std::to_string(info.param.type);
      for (uint32_t f : info.param.fanouts) name += "_" + std::to_string(f);
      return name;
    });

}  // namespace
}  // namespace provabs
