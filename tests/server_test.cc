#include "server/provenance_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "algo/optimal_single_tree.h"
#include "core/evaluation_backend.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "scenario/program.h"
#include "server/artifact_store.h"
#include "server/evaluate_batcher.h"
#include "server/wire_protocol.h"
#include "workload/telephony.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Serialized running-example buffers shared by the store/service tests:
/// the paper's P1/P2 polynomials, the Figure 2 plans tree and the Figure 3
/// months tree (label-disjoint, so they can coexist in one artifact).
class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    RunningExample ex = MakeRunningExample(vars_);
    polys_ = RunRunningExampleQuery(ex);
    polys_bytes_ = SerializePolynomialSet(polys_, vars_);
    AbstractionForest plans;
    plans.AddTree(MakeFigure2PlansTree(vars_));
    plans_bytes_ = SerializeForest(plans, vars_);
    AbstractionForest months;
    months.AddTree(MakeFigure3MonthsTree(vars_));
    months_bytes_ = SerializeForest(months, vars_);
  }

  VariableTable vars_;
  PolynomialSet polys_;
  std::string polys_bytes_;
  std::string plans_bytes_;
  std::string months_bytes_;
};

// ------------------------------------------------------- ArtifactStore --

using StoreTest = ServerFixture;

TEST_F(StoreTest, LoadAndGet) {
  ArtifactStore store(1 << 20);
  auto loaded = store.Load("ex", polys_bytes_, {{"plans", plans_bytes_}});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->polys.count(), polys_.count());
  EXPECT_EQ((*loaded)->polys.SizeM(), polys_.SizeM());
  EXPECT_NE((*loaded)->FindForest("plans"), nullptr);
  EXPECT_EQ((*loaded)->FindForest("nope"), nullptr);

  auto got = store.Get("ex");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->generation, (*loaded)->generation);
  EXPECT_EQ(store.Get("missing"), nullptr);
}

TEST_F(StoreTest, LoadRejectsMalformedBytes) {
  ArtifactStore store(1 << 20);
  EXPECT_FALSE(store.Load("bad", "garbage", {}).ok());
  // A forest buffer in the polynomial slot is an artifact-kind error.
  EXPECT_FALSE(store.Load("bad", plans_bytes_, {}).ok());
  EXPECT_FALSE(store.Load("bad", polys_bytes_, {{"f", "junk"}}).ok());
}

TEST_F(StoreTest, ForestOnlyLoadMergesAndBumpsGeneration) {
  ArtifactStore store(1 << 20);
  auto first = store.Load("ex", polys_bytes_, {{"plans", plans_bytes_}});
  ASSERT_TRUE(first.ok());
  uint64_t gen1 = (*first)->generation;

  auto second = store.Load("ex", "", {{"months", months_bytes_}});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT((*second)->generation, gen1);
  EXPECT_NE((*second)->FindForest("plans"), nullptr);
  EXPECT_NE((*second)->FindForest("months"), nullptr);
  EXPECT_EQ((*second)->polys.SizeM(), polys_.SizeM());

  // Forest-only load without a prior artifact is an error.
  EXPECT_EQ(store.Load("fresh", "", {{"months", months_bytes_}})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(StoreTest, ResultCacheCountsHitsAndMisses) {
  ArtifactStore store(1 << 20);
  ArtifactStore::ResultKey key{"ex", 1, "plans", 10, "opt"};
  EXPECT_EQ(store.LookupResult(key), nullptr);
  EXPECT_EQ(store.stats().result_misses, 1u);

  ArtifactStore::CompressedResult result;
  result.loss.monomial_loss = 3;
  result.vvs_names = "{Plans}";
  store.InsertResult(key, result);
  auto hit = store.LookupResult(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->loss.monomial_loss, 3u);
  EXPECT_EQ(hit->vvs_names, "{Plans}");
  EXPECT_EQ(store.stats().result_hits, 1u);

  // A different bound (or generation) is a different entry.
  ArtifactStore::ResultKey other = key;
  other.bound = 11;
  EXPECT_EQ(store.LookupResult(other), nullptr);
  other = key;
  other.generation = 2;
  EXPECT_EQ(store.LookupResult(other), nullptr);
  EXPECT_EQ(store.stats().result_misses, 3u);
}

TEST_F(StoreTest, LruEvictsUnderByteBudget) {
  // Budget fits roughly one artifact: loading a second evicts the first.
  // One shard, so both names share a budget and a recency list (with the
  // default sharding each name would own its own slice and both survive).
  ArtifactStore tiny(ApproxPolynomialSetBytes(polys_) + polys_bytes_.size(),
                     /*shards=*/1);
  ASSERT_TRUE(tiny.Load("a", polys_bytes_, {}).ok());
  ASSERT_TRUE(tiny.Load("b", polys_bytes_, {}).ok());
  EXPECT_GT(tiny.stats().evictions, 0u);
  EXPECT_EQ(tiny.Get("a"), nullptr);
  // The most recently used entry always survives, even over budget.
  EXPECT_NE(tiny.Get("b"), nullptr);
}

TEST_F(StoreTest, ShardedStoreServesAllShards) {
  // With many shards, entries land in per-shard partitions but the store
  // behaves as one cache: all loads visible, stats aggregate across shards.
  ArtifactStore store(64 << 20, /*shards=*/8);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        store.Load("art" + std::to_string(i), polys_bytes_, {}).ok());
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(store.Get("art" + std::to_string(i)), nullptr) << i;
  }
  ArtifactStore::Stats stats = store.stats();
  EXPECT_EQ(stats.artifact_count, 16u);
  EXPECT_GT(stats.cached_bytes, 0u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST_F(StoreTest, GetOrComputePublishesOnlyCompletedResults) {
  ArtifactStore store(1 << 20);
  ArtifactStore::ResultKey key{"ex", 1, "plans", 10, "opt"};

  // A failing compute returns its Status and leaves the cache untouched.
  int runs = 0;
  auto failing = [&]() -> StatusOr<ArtifactStore::CompressedResult> {
    ++runs;
    return Status::Infeasible("no adequate VVS");
  };
  ArtifactStore::GetOrComputeInfo info;
  auto failed = store.GetOrCompute(key, failing, &info);
  EXPECT_EQ(failed.status().code(), StatusCode::kInfeasible);
  EXPECT_FALSE(info.cache_hit);
  EXPECT_FALSE(info.dedup_hit);
  EXPECT_EQ(store.stats().result_count, 0u);

  // Not poisoned: the next call recomputes, succeeds, and caches.
  auto succeeding = [&]() -> StatusOr<ArtifactStore::CompressedResult> {
    ++runs;
    ArtifactStore::CompressedResult result;
    result.loss.monomial_loss = 5;
    result.vvs_names = "{Plans}";
    return result;
  };
  auto ok = store.GetOrCompute(key, succeeding, &info);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ((*ok)->loss.monomial_loss, 5u);
  EXPECT_FALSE(info.cache_hit);
  EXPECT_EQ(runs, 2);
  EXPECT_EQ(store.stats().result_count, 1u);

  // A third call is a pure cache hit; the compute fn never runs.
  auto hit = store.GetOrCompute(key, failing, &info);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(info.cache_hit);
  EXPECT_EQ((*hit)->loss.monomial_loss, 5u);
  EXPECT_EQ(runs, 2);
}

TEST_F(StoreTest, BudgetSmallerThanOneArtifactStillServesIt) {
  ArtifactStore store(1);
  ASSERT_TRUE(store.Load("only", polys_bytes_, {}).ok());
  EXPECT_NE(store.Get("only"), nullptr);
}

// ----------------------------------------------------- EvaluateBatcher --

using BatcherTest = ServerFixture;

TEST_F(BatcherTest, MatchesSerialEvaluation) {
  ThreadPool pool(4);
  EvaluateBatcher batcher(pool);
  Valuation val;
  val.Set(vars_.Find("m1"), 0.5);
  val.Set(vars_.Find("b1"), 0.25);
  auto shared = std::make_shared<PolynomialSet>(polys_);
  StatusOr<std::vector<double>> batched_or = batcher.Evaluate(shared, val);
  ASSERT_TRUE(batched_or.ok()) << batched_or.status().ToString();
  std::vector<double> batched = std::move(*batched_or);
  std::vector<double> serial = val.EvaluateAll(polys_);
  ASSERT_EQ(batched.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(batched[i], serial[i]);
  }
}

TEST_F(BatcherTest, ConcurrentCallersAllGetTheirOwnAnswers) {
  ThreadPool pool(4);
  EvaluateBatcher batcher(pool);
  auto shared = std::make_shared<PolynomialSet>(polys_);
  constexpr int kCallers = 16;
  std::vector<std::vector<double>> results(kCallers);
  std::vector<std::thread> threads;
  for (int c = 0; c < kCallers; ++c) {
    threads.emplace_back([&, c] {
      Valuation val;
      val.Set(vars_.Find("m1"), 0.1 * c);
      StatusOr<std::vector<double>> got = batcher.Evaluate(shared, val);
      if (got.ok()) results[c] = std::move(*got);
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kCallers; ++c) {
    Valuation val;
    val.Set(vars_.Find("m1"), 0.1 * c);
    std::vector<double> expected = val.EvaluateAll(polys_);
    ASSERT_EQ(results[c].size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(results[c][i], expected[i]) << "caller " << c;
    }
  }
  EvaluateBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.requests, static_cast<uint64_t>(kCallers));
  EXPECT_GE(stats.batches, 1u);
  EXPECT_LE(stats.batches, static_cast<uint64_t>(kCallers));
  EXPECT_GE(stats.max_batch, 1u);
}

TEST_F(BatcherTest, ReusesPoolAcrossManyRounds) {
  // The satellite ThreadPool concern: one pool must survive many batching
  // rounds (the server's steady state) without wedging or leaking work.
  ThreadPool pool(2);
  EvaluateBatcher batcher(pool);
  auto shared = std::make_shared<PolynomialSet>(polys_);
  for (int round = 0; round < 50; ++round) {
    Valuation val;
    val.Set(vars_.Find("m3"), 0.01 * round);
    StatusOr<std::vector<double>> got = batcher.Evaluate(shared, val);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    ASSERT_EQ(got->size(), polys_.count());
  }
  EXPECT_EQ(batcher.stats().requests, 50u);
  // Sequential callers never coalesce, so each round is its own batch.
  EXPECT_EQ(batcher.stats().batches, 50u);
}

// -------------------------------------------------- ProvenanceService --

class ServiceTest : public ServerFixture {
 protected:
  void SetUp() override {
    ServerFixture::SetUp();
    service_ = std::make_unique<ProvenanceService>(ServiceOptions{});
    LoadRequest load;
    load.artifact = "ex";
    load.polys_bytes = polys_bytes_;
    load.forests = {{"plans", plans_bytes_}};
    Response resp = service_->Load(load);
    ASSERT_TRUE(resp.ok()) << resp.message;
    ASSERT_EQ(resp.poly_count, polys_.count());
  }

  std::unique_ptr<ProvenanceService> service_;
};

TEST_F(ServiceTest, CompressThenCacheHit) {
  CompressRequest req;
  req.artifact = "ex";
  req.forest = "plans";
  req.algo = "opt";
  req.bound = polys_.SizeM() - 1;
  Response first = service_->Compress(req);
  ASSERT_TRUE(first.ok()) << first.message;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(first.adequate);
  EXPECT_GT(first.vvs.size(), 0u);

  Response second = service_->Compress(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.monomial_loss, first.monomial_loss);
  EXPECT_EQ(second.variable_loss, first.variable_loss);
  EXPECT_EQ(second.vvs, first.vvs);
  EXPECT_EQ(second.stats.result_hits, 1u);
  EXPECT_EQ(second.stats.result_misses, 1u);
}

TEST_F(ServiceTest, ReloadInvalidatesResultCache) {
  CompressRequest req;
  req.artifact = "ex";
  req.forest = "plans";
  req.bound = polys_.SizeM() - 1;
  ASSERT_FALSE(service_->Compress(req).cache_hit);
  ASSERT_TRUE(service_->Compress(req).cache_hit);

  LoadRequest reload;
  reload.artifact = "ex";
  reload.polys_bytes = polys_bytes_;
  reload.forests = {{"plans", plans_bytes_}};
  ASSERT_TRUE(service_->Load(reload).ok());

  // Same request, fresh generation: the DP must run again.
  EXPECT_FALSE(service_->Compress(req).cache_hit);
}

TEST_F(ServiceTest, EvaluateRawAndCompressed) {
  EvaluateRequest req;
  req.artifact = "ex";
  req.assignments = {{"m1", 0.5}, {"b1", 0.0}};
  Response raw = service_->Evaluate(req);
  ASSERT_TRUE(raw.ok()) << raw.message;

  Valuation val;
  val.Set(vars_.Find("m1"), 0.5);
  val.Set(vars_.Find("b1"), 0.0);
  std::vector<double> expected = val.EvaluateAll(polys_);
  ASSERT_EQ(raw.values.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_DOUBLE_EQ(raw.values[i], expected[i]);
  }

  req.compressed = true;
  req.forest = "plans";
  req.algo = "opt";
  req.bound = polys_.SizeM() - 1;
  // b1 was merged into a meta-variable by the compression; assigning it
  // would silently change nothing, so the compressed view rejects it.
  Response rejected = service_->Evaluate(req);
  EXPECT_EQ(rejected.code, StatusCode::kNotFound);

  // Month variables are outside the plans forest and survive compression.
  req.assignments = {{"m1", 0.5}};
  Response compressed = service_->Evaluate(req);
  ASSERT_TRUE(compressed.ok()) << compressed.message;
  EXPECT_EQ(compressed.values.size(), polys_.count());
  // The evaluate populated the compression cache; a repeat is a hit.
  Response again = service_->Evaluate(req);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.cache_hit);
  ASSERT_EQ(again.values.size(), compressed.values.size());
  for (size_t i = 0; i < compressed.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(again.values[i], compressed.values[i]);
  }
}

TEST_F(ServiceTest, ErrorsCarryStatusCodes) {
  CompressRequest missing;
  missing.artifact = "nope";
  missing.bound = 10;
  EXPECT_EQ(service_->Compress(missing).code, StatusCode::kNotFound);

  CompressRequest bad_forest;
  bad_forest.artifact = "ex";
  bad_forest.forest = "nope";
  bad_forest.bound = 10;
  EXPECT_EQ(service_->Compress(bad_forest).code, StatusCode::kNotFound);

  CompressRequest bad_algo;
  bad_algo.artifact = "ex";
  bad_algo.forest = "plans";
  bad_algo.algo = "quantum";
  bad_algo.bound = 10;
  EXPECT_EQ(service_->Compress(bad_algo).code, StatusCode::kInvalidArgument);

  CompressRequest infeasible;
  infeasible.artifact = "ex";
  infeasible.forest = "plans";
  infeasible.bound = 1;
  EXPECT_EQ(service_->Compress(infeasible).code, StatusCode::kInfeasible);

  EvaluateRequest bad_var;
  bad_var.artifact = "ex";
  bad_var.assignments = {{"no_such_var", 2.0}};
  EXPECT_EQ(service_->Evaluate(bad_var).code, StatusCode::kNotFound);

  // A variable that exists in the table (it labels a forest node) but does
  // not occur in the polynomials: assigning it would silently change
  // nothing, so it is rejected rather than ignored.
  EvaluateRequest absent_var;
  absent_var.artifact = "ex";
  absent_var.assignments = {{"Business", 0.5}};
  EXPECT_EQ(service_->Evaluate(absent_var).code, StatusCode::kNotFound);

  LoadRequest bad_load;
  bad_load.artifact = "bad";
  bad_load.polys_bytes = "not a buffer";
  EXPECT_FALSE(service_->Load(bad_load).ok());

  LoadRequest unnamed;
  EXPECT_EQ(service_->Load(unnamed).code, StatusCode::kInvalidArgument);
}

TEST_F(ServiceTest, TradeoffReturnsParetoFrontier) {
  TradeoffRequest req;
  req.artifact = "ex";
  req.forest = "plans";
  Response resp = service_->Tradeoff(req);
  ASSERT_TRUE(resp.ok()) << resp.message;
  ASSERT_GT(resp.points.size(), 0u);
  EXPECT_EQ(resp.points.front().variable_loss, 0u);
  for (size_t i = 1; i < resp.points.size(); ++i) {
    EXPECT_LT(resp.points[i].size_m, resp.points[i - 1].size_m);
    EXPECT_GT(resp.points[i].variable_loss, resp.points[i - 1].variable_loss);
  }
}

TEST_F(ServiceTest, UnknownAlgoErrorEnumeratesRegisteredNames) {
  CompressRequest req;
  req.artifact = "ex";
  req.forest = "plans";
  req.algo = "quantum";
  req.bound = 10;
  Response resp = service_->Compress(req);
  EXPECT_EQ(resp.code, StatusCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("quantum"), std::string::npos);
  EXPECT_NE(resp.message.find("brute, greedy, opt, prox"),
            std::string::npos);
}

TEST_F(ServiceTest, BruteAndProxAreServable) {
  // Every registered algorithm is reachable through the same request path
  // and composes with the result cache (the key carries the algo string).
  for (const std::string algo : {"brute", "prox"}) {
    CompressRequest req;
    req.artifact = "ex";
    req.forest = "plans";
    req.algo = algo;
    req.bound = polys_.SizeM() - 1;
    Response first = service_->Compress(req);
    ASSERT_TRUE(first.ok()) << algo << ": " << first.message;
    EXPECT_FALSE(first.cache_hit) << algo;
    EXPECT_TRUE(first.adequate) << algo;
    EXPECT_FALSE(first.vvs.empty()) << algo;

    Response second = service_->Compress(req);
    ASSERT_TRUE(second.ok()) << algo;
    EXPECT_TRUE(second.cache_hit) << algo;
    EXPECT_EQ(second.vvs, first.vvs) << algo;
    EXPECT_EQ(second.monomial_loss, first.monomial_loss) << algo;
  }
}

TEST_F(ServiceTest, EvaluateOverProxCompressedView) {
  EvaluateRequest req;
  req.artifact = "ex";
  req.compressed = true;
  req.forest = "plans";
  req.algo = "prox";
  req.bound = polys_.SizeM() - 1;
  Response resp = service_->Evaluate(req);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.values.size(), polys_.count());
  // All-ones valuation: every polynomial evaluates to its monomial count
  // weighted by coefficients, unchanged by variable renaming — so the
  // compressed view must agree with the raw artifact.
  EvaluateRequest raw;
  raw.artifact = "ex";
  Response raw_resp = service_->Evaluate(raw);
  ASSERT_TRUE(raw_resp.ok());
  ASSERT_EQ(raw_resp.values.size(), resp.values.size());
  for (size_t i = 0; i < resp.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(resp.values[i], raw_resp.values[i]) << i;
  }
}

TEST_F(ServiceTest, ListAlgosReturnsCapabilityRecords) {
  Response resp = service_->ListAlgos(ListAlgosRequest{});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.request_kind, MessageKind::kListAlgosRequest);
  ASSERT_EQ(resp.algos.size(), 4u);
  EXPECT_EQ(resp.algos[0].name, "brute");
  EXPECT_TRUE(resp.algos[0].exact);
  EXPECT_TRUE(resp.algos[0].produces_cut);
  EXPECT_EQ(resp.algos[1].name, "greedy");
  EXPECT_EQ(resp.algos[2].name, "opt");
  EXPECT_TRUE(resp.algos[2].supports_tradeoff);
  EXPECT_TRUE(resp.algos[2].produces_cut);
  EXPECT_EQ(resp.algos[3].name, "prox");
  EXPECT_FALSE(resp.algos[3].produces_cut);
  for (const AlgoCapability& a : resp.algos) {
    EXPECT_TRUE(a.deterministic) << a.name;
    EXPECT_FALSE(a.summary.empty()) << a.name;
    EXPECT_TRUE(a.supports_time_budget) << a.name;
  }

  // And over the frame path: request 22 round-trips through HandleFrame.
  bool shutdown = false;
  std::string reply = service_->HandleFrame(
      EncodeListAlgosRequest(ListAlgosRequest{}), &shutdown);
  auto decoded = DecodeResponse(reply);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok());
  ASSERT_EQ(decoded->algos.size(), 4u);
  EXPECT_EQ(decoded->algos[2].name, "opt");
  EXPECT_FALSE(shutdown);
}

TEST_F(ServiceTest, ListBackendsReturnsCapabilityRecords) {
  Response resp = service_->ListBackends(ListBackendsRequest{});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp.request_kind, MessageKind::kListBackendsRequest);
  ASSERT_EQ(resp.backends.size(), 4u);
  EXPECT_EQ(resp.backends[0].name, "compiled");
  EXPECT_FALSE(resp.backends[0].vectorized);
  EXPECT_EQ(resp.backends[1].name, "jit");
  EXPECT_FALSE(resp.backends[1].vectorized);
  EXPECT_EQ(resp.backends[2].name, "naive");
  EXPECT_EQ(resp.backends[3].name, "simd_batch");
  EXPECT_TRUE(resp.backends[3].vectorized);
  EXPECT_GT(resp.backends[3].preferred_batch, 1u);
  // Tiers travel over the wire so clients can route by speed preference.
  EXPECT_GT(resp.backends[1].tier, resp.backends[3].tier);  // jit > simd
  EXPECT_GT(resp.backends[3].tier, resp.backends[0].tier);  // simd > compiled
  for (const EvalBackendCapability& b : resp.backends) {
    EXPECT_TRUE(b.deterministic) << b.name;
    EXPECT_FALSE(b.summary.empty()) << b.name;
  }

  // And over the frame path: request 23 round-trips through HandleFrame.
  bool shutdown = false;
  std::string reply = service_->HandleFrame(
      EncodeListBackendsRequest(ListBackendsRequest{}), &shutdown);
  auto decoded = DecodeResponse(reply);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->ok());
  ASSERT_EQ(decoded->backends.size(), 4u);
  EXPECT_EQ(decoded->backends[3].name, "simd_batch");
  EXPECT_FALSE(shutdown);
}

TEST_F(ServiceTest, EvaluateRoutesThroughNamedBackend) {
  EvaluateRequest req;
  req.artifact = "ex";
  req.assignments = {{"m1", 0.5}, {"b1", 0.0}};
  Response reference = service_->Evaluate(req);
  ASSERT_TRUE(reference.ok()) << reference.message;
  EXPECT_TRUE(reference.eval_backend.empty());  // auto policy echoed as ""

  // Every registered backend returns bitwise-identical values and echoes
  // its name.
  for (const std::string& name :
       EvaluationBackendRegistry::Default().Names()) {
    req.eval_backend = name;
    Response got = service_->Evaluate(req);
    ASSERT_TRUE(got.ok()) << name << ": " << got.message;
    EXPECT_EQ(got.eval_backend, name);
    ASSERT_EQ(got.values.size(), reference.values.size()) << name;
    for (size_t i = 0; i < reference.values.size(); ++i) {
      uint64_t want, have;
      std::memcpy(&want, &reference.values[i], sizeof(want));
      std::memcpy(&have, &got.values[i], sizeof(have));
      EXPECT_EQ(want, have) << name << " polynomial " << i;
    }
  }

  // Unknown names fail up front with the registry's name-listing error.
  req.eval_backend = "turbo";
  Response bad = service_->Evaluate(req);
  EXPECT_EQ(bad.code, StatusCode::kInvalidArgument);
  EXPECT_NE(bad.message.find("unknown evaluation backend 'turbo'"),
            std::string::npos)
      << bad.message;
  EXPECT_NE(bad.message.find("simd_batch"), std::string::npos) << bad.message;
}

// ------------------------------------------- scenario programs ----------

/// Scenario-program service tests. The acceptance bar for the subsystem:
/// one EvaluateScenarioProgram request must be observationally identical —
/// bitwise, not approximately — to issuing every expanded scenario as its
/// own Evaluate request.
class ScenarioServiceTest : public ServiceTest {
 protected:
  /// Per-scenario reference arm: expands `program_source` locally against
  /// the raw polynomials and issues one Evaluate request per scenario with
  /// the scenario's variable assignments, concatenating the results
  /// scenario-major (exactly the kValues layout).
  std::vector<double> EvaluatePerScenario(const std::string& program_source) {
    auto compiled = polys_.Compiled();
    auto program =
        scenario::ScenarioProgram::Compile(program_source, compiled, vars_);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    std::vector<DenseValuation> dense;
    EXPECT_TRUE(
        program->ExpandChunk(0, program->scenario_count(), &dense).ok());
    const std::vector<VariableId>& slots = compiled->slot_variables();
    std::vector<double> out;
    for (const DenseValuation& d : dense) {
      EvaluateRequest req;
      req.artifact = "ex";
      for (uint32_t s = 0; s < slots.size(); ++s) {
        req.assignments.emplace_back(vars_.NameOf(slots[s]), d[s]);
      }
      Response resp = service_->Evaluate(req);
      EXPECT_TRUE(resp.ok()) << resp.message;
      out.insert(out.end(), resp.values.begin(), resp.values.end());
    }
    return out;
  }
};

/// A values-shaped family whose response cannot fit the frame budget is
/// refused up front with a structured kOutOfRange naming the --shape top-k
/// workaround — before any valuation is computed, and never by dying in
/// the transport's frame-size check.
TEST_F(ScenarioServiceTest, OversizedValuesResponseRejectedStructured) {
  ServiceOptions small;
  small.max_response_bytes = 4096 + 100;  // fits the envelope, not 10k values
  ProvenanceService service(small);
  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = polys_bytes_;
  load.forests = {{"plans", plans_bytes_}};
  ASSERT_TRUE(service.Load(load).ok());

  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program =
      "LET a = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "LET b = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "LET c = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "SET PREFIX(m) = a; SET PREFIX(b) = b; SET * = c;";
  Response resp = service.EvaluateScenarioProgram(req);
  EXPECT_EQ(resp.code, StatusCode::kOutOfRange);
  EXPECT_NE(resp.message.find("--shape top-k"), std::string::npos)
      << resp.message;
  EXPECT_TRUE(resp.values.empty());

  // The suggested workaround actually works on the same service: top-k
  // keeps the response bounded regardless of family size.
  req.shape = ScenarioShape::kTopK;
  req.top_k = 3;
  Response shaped = service.EvaluateScenarioProgram(req);
  ASSERT_TRUE(shaped.ok()) << shaped.message;
  EXPECT_EQ(shaped.scenario_indices.size(), 3u);
}

/// The HandleFrame backstop: any handler whose encoded response outgrows
/// the budget is replaced by a structured error on a healthy connection.
TEST_F(ScenarioServiceTest, HandleFrameReplacesOversizedResponse) {
  ServiceOptions tiny;
  tiny.max_response_bytes = 8;  // every real response exceeds this
  ProvenanceService service(tiny);
  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = polys_bytes_;
  load.forests = {{"plans", plans_bytes_}};
  ASSERT_TRUE(service.Load(load).ok());

  bool shutdown = false;
  std::string encoded =
      service.HandleFrame(EncodeInfoRequest(InfoRequest{"ex"}), &shutdown);
  auto decoded = DecodeResponse(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->code, StatusCode::kOutOfRange);
  EXPECT_NE(decoded->message.find("response limit"), std::string::npos)
      << decoded->message;
  EXPECT_FALSE(shutdown);
}

// The acceptance check: a three-parameter sweep family (10^3 = 1000
// scenarios) answered in ONE request, bitwise identical to 1000 individual
// Evaluate round trips.
TEST_F(ScenarioServiceTest, ThousandScenarioRequestMatchesIndividualEvaluates) {
  const std::string program_source =
      "LET a = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "LET b = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "LET c = SWEEP(0.5 .. 1.4 STEP 0.1);"
      "SET PREFIX(m) = a; SET PREFIX(b) = b; SET * = c;";

  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program = program_source;
  Response resp = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.scenario_count, 1000u);
  EXPECT_FALSE(resp.program_cache_hit);
  EXPECT_TRUE(resp.scenario_indices.empty());  // kValues: full vectors

  std::vector<double> expected = EvaluatePerScenario(program_source);
  ASSERT_EQ(resp.values.size(), expected.size());
  ASSERT_EQ(resp.values.size(), 1000 * polys_.count());
  for (size_t i = 0; i < expected.size(); ++i) {
    uint64_t want, have;
    std::memcpy(&want, &expected[i], sizeof(want));
    std::memcpy(&have, &resp.values[i], sizeof(have));
    ASSERT_EQ(want, have) << "value " << i;
  }

  // Chunking is an implementation detail: a service slicing the family
  // into tiny chunks returns the identical byte stream.
  ServiceOptions tiny_chunks;
  tiny_chunks.scenario_chunk = 7;
  ProvenanceService chunked(tiny_chunks);
  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = polys_bytes_;
  load.forests = {{"plans", plans_bytes_}};
  ASSERT_TRUE(chunked.Load(load).ok());
  Response chunked_resp = chunked.EvaluateScenarioProgram(req);
  ASSERT_TRUE(chunked_resp.ok()) << chunked_resp.message;
  ASSERT_EQ(chunked_resp.values.size(), resp.values.size());
  for (size_t i = 0; i < resp.values.size(); ++i) {
    uint64_t want, have;
    std::memcpy(&want, &resp.values[i], sizeof(want));
    std::memcpy(&have, &chunked_resp.values[i], sizeof(have));
    ASSERT_EQ(want, have) << "chunked value " << i;
  }
}

TEST_F(ScenarioServiceTest, ShapedResponsesPickByObjective) {
  // One parameter, 4 scenarios. Objective = sum of polynomial values; the
  // catch-all scales every variable by d, so the objective is monotone in
  // d and the extremes are the first and last scenarios.
  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program = "LET d = GRID(0.5, 1, 2, 4); SET * = d;";
  req.shape = ScenarioShape::kValues;
  Response all = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(all.ok()) << all.message;
  ASSERT_EQ(all.scenario_count, 4u);
  const size_t poly_count = polys_.count();
  std::vector<double> objectives(4, 0.0);
  for (size_t s = 0; s < 4; ++s) {
    for (size_t p = 0; p < poly_count; ++p) {
      objectives[s] += all.values[s * poly_count + p];
    }
  }

  req.shape = ScenarioShape::kArgmin;
  Response argmin = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(argmin.ok()) << argmin.message;
  ASSERT_EQ(argmin.scenario_indices.size(), 1u);
  ASSERT_EQ(argmin.objectives.size(), 1u);
  EXPECT_EQ(argmin.scenario_indices[0], 0u);  // d = 0.5 minimizes
  EXPECT_DOUBLE_EQ(argmin.objectives[0], objectives[0]);
  ASSERT_EQ(argmin.values.size(), poly_count);
  for (size_t p = 0; p < poly_count; ++p) {
    EXPECT_EQ(argmin.values[p], all.values[p]) << p;
  }

  req.shape = ScenarioShape::kArgmax;
  Response argmax = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(argmax.ok());
  ASSERT_EQ(argmax.scenario_indices.size(), 1u);
  EXPECT_EQ(argmax.scenario_indices[0], 3u);  // d = 4 maximizes
  EXPECT_DOUBLE_EQ(argmax.objectives[0], objectives[3]);

  req.shape = ScenarioShape::kTopK;
  req.top_k = 3;
  Response topk = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(topk.ok());
  ASSERT_EQ(topk.scenario_indices.size(), 3u);
  EXPECT_EQ(topk.scenario_indices,
            (std::vector<uint64_t>{3, 2, 1}));  // descending objective
  EXPECT_DOUBLE_EQ(topk.objectives[0], objectives[3]);
  EXPECT_DOUBLE_EQ(topk.objectives[2], objectives[1]);
  ASSERT_EQ(topk.values.size(), 3 * poly_count);

  // top_k larger than the family returns the whole family, ranked.
  req.top_k = 100;
  Response topall = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(topall.ok());
  EXPECT_EQ(topall.scenario_indices.size(), 4u);
}

TEST_F(ScenarioServiceTest, TiesBreakTowardTheEarlierScenario) {
  // Every scenario produces identical values (the parameter is unused by
  // the catch-all), so argmin/argmax must both pick index 0.
  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program = "LET d = GRID(1, 2, 3); SET * = 1;";
  for (ScenarioShape shape : {ScenarioShape::kArgmin, ScenarioShape::kArgmax}) {
    req.shape = shape;
    Response resp = service_->EvaluateScenarioProgram(req);
    ASSERT_TRUE(resp.ok()) << resp.message;
    ASSERT_EQ(resp.scenario_indices.size(), 1u);
    EXPECT_EQ(resp.scenario_indices[0], 0u);
  }
}

TEST_F(ScenarioServiceTest, ProgramCacheHitsAndGenerationInvalidation) {
  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program = "LET d = GRID(1, 2); SET PREFIX(m) = d;";
  Response first = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(first.ok()) << first.message;
  EXPECT_FALSE(first.program_cache_hit);
  EXPECT_EQ(first.stats.program_misses, 1u);
  EXPECT_EQ(first.stats.program_count, 1u);

  Response second = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.program_cache_hit);
  EXPECT_EQ(second.stats.program_hits, 1u);
  for (size_t i = 0; i < first.values.size(); ++i) {
    uint64_t want, have;
    std::memcpy(&want, &first.values[i], sizeof(want));
    std::memcpy(&have, &second.values[i], sizeof(have));
    ASSERT_EQ(want, have) << i;
  }

  // A different program text is its own cache entry.
  EvaluateScenarioProgramRequest other = req;
  other.program = "LET d = GRID(1, 2); SET PREFIX(b) = d;";
  EXPECT_FALSE(service_->EvaluateScenarioProgram(other).program_cache_hit);

  // Reloading bumps the generation: the old compiled program is stale.
  LoadRequest reload;
  reload.artifact = "ex";
  reload.polys_bytes = polys_bytes_;
  reload.forests = {{"plans", plans_bytes_}};
  ASSERT_TRUE(service_->Load(reload).ok());
  Response after_reload = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(after_reload.ok());
  EXPECT_FALSE(after_reload.program_cache_hit);
}

TEST_F(ScenarioServiceTest, CompressedViewProgramsEvaluateAndCache) {
  // Programs against a compressed view select over meta-variables; the
  // whole pipeline (compress -> compile -> expand -> batch) must work and
  // the program key must include the view.
  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.compressed = true;
  req.forest = "plans";
  req.algo = "opt";
  req.bound = polys_.SizeM() - 1;
  req.program = "LET d = GRID(0.5, 2); SET * = d;";
  Response resp = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_EQ(resp.scenario_count, 2u);
  EXPECT_EQ(resp.values.size(), 2 * polys_.count());
  EXPECT_FALSE(resp.program_cache_hit);

  // Same text against the RAW view is a distinct program cache entry.
  EvaluateScenarioProgramRequest raw = req;
  raw.compressed = false;
  Response raw_resp = service_->EvaluateScenarioProgram(raw);
  ASSERT_TRUE(raw_resp.ok()) << raw_resp.message;
  EXPECT_FALSE(raw_resp.program_cache_hit);

  Response again = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.program_cache_hit);
}

TEST_F(ScenarioServiceTest, ScenarioErrorsAreStructured) {
  EvaluateScenarioProgramRequest req;
  req.program = "SET * = 1;";
  req.artifact = "nope";
  Response missing = service_->EvaluateScenarioProgram(req);
  EXPECT_EQ(missing.code, StatusCode::kNotFound);

  req.artifact = "ex";
  req.program = "LET d = SWEEP(1 .. 2 STEP);";  // parse error
  Response parse_err = service_->EvaluateScenarioProgram(req);
  EXPECT_EQ(parse_err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(parse_err.message.find("at offset"), std::string::npos)
      << parse_err.message;

  req.program = "SET ghost = 1;";  // semantic error
  Response sema_err = service_->EvaluateScenarioProgram(req);
  EXPECT_EQ(sema_err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(sema_err.message.find("'ghost'"), std::string::npos);

  req.program = "LET d = GRID(1); SET * = d < 1;";  // type error
  Response type_err = service_->EvaluateScenarioProgram(req);
  EXPECT_EQ(type_err.code, StatusCode::kInvalidArgument);
  EXPECT_NE(type_err.message.find("type error"), std::string::npos);

  req.program = "SET * = 1;";
  req.shape = ScenarioShape::kTopK;
  req.top_k = 0;
  Response zero_k = service_->EvaluateScenarioProgram(req);
  EXPECT_EQ(zero_k.code, StatusCode::kInvalidArgument);
  EXPECT_NE(zero_k.message.find("top_k"), std::string::npos);

  req.shape = ScenarioShape::kValues;
  req.eval_backend = "turbo";
  Response bad_backend = service_->EvaluateScenarioProgram(req);
  EXPECT_EQ(bad_backend.code, StatusCode::kInvalidArgument);
  EXPECT_NE(bad_backend.message.find("unknown evaluation backend"),
            std::string::npos);

  // Failed compiles must not poison the cache.
  req.eval_backend.clear();
  Response fine = service_->EvaluateScenarioProgram(req);
  ASSERT_TRUE(fine.ok()) << fine.message;
}

TEST_F(ScenarioServiceTest, OversizedFamilyIsRejectedUpFront) {
  ServiceOptions small;
  small.max_scenarios_per_request = 10;
  ProvenanceService capped(small);
  LoadRequest load;
  load.artifact = "ex";
  load.polys_bytes = polys_bytes_;
  ASSERT_TRUE(capped.Load(load).ok());

  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program = "LET a = GRID(1, 2, 3, 4); LET b = GRID(1, 2, 3); SET * = a;";
  Response resp = capped.EvaluateScenarioProgram(req);
  EXPECT_EQ(resp.code, StatusCode::kInvalidArgument);
  EXPECT_NE(resp.message.find("12 scenarios"), std::string::npos)
      << resp.message;
  EXPECT_NE(resp.message.find("limit of 10"), std::string::npos)
      << resp.message;

  // At the limit it still runs.
  req.program = "LET a = GRID(1, 2); LET b = GRID(1, 2, 3, 4, 5); SET * = a;";
  EXPECT_TRUE(capped.EvaluateScenarioProgram(req).ok());
}

TEST_F(ScenarioServiceTest, ScenarioFrameRoundTripsThroughHandleFrame) {
  EvaluateScenarioProgramRequest req;
  req.artifact = "ex";
  req.program = "LET d = GRID(1, 2); SET PREFIX(m) = d;";
  bool shutdown = false;
  std::string reply = service_->HandleFrame(
      EncodeEvaluateScenarioProgramRequest(req), &shutdown);
  auto resp = DecodeResponse(reply);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_TRUE(resp->ok()) << resp->message;
  EXPECT_EQ(resp->request_kind, MessageKind::kEvaluateScenarioProgramRequest);
  EXPECT_EQ(resp->scenario_count, 2u);
  EXPECT_EQ(resp->values.size(), 2 * polys_.count());
  EXPECT_FALSE(shutdown);

  // Truncated scenario frames decode-fail into error responses.
  std::string full = EncodeEvaluateScenarioProgramRequest(req);
  for (size_t len : {size_t{0}, size_t{7}, full.size() - 1}) {
    auto err = DecodeResponse(
        service_->HandleFrame(full.substr(0, len), &shutdown));
    ASSERT_TRUE(err.ok());
    EXPECT_FALSE(err->ok());
  }
}

TEST_F(ServiceTest, HandleFrameDispatchesAndSurvivesGarbage) {
  InfoRequest info;
  info.artifact = "ex";
  bool shutdown = false;
  std::string reply =
      service_->HandleFrame(EncodeInfoRequest(info), &shutdown);
  auto resp = DecodeResponse(reply);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  EXPECT_EQ(resp->poly_count, polys_.count());
  EXPECT_FALSE(shutdown);

  // Garbage and truncated payloads produce decodable error responses.
  for (std::string bad :
       {std::string("XXXX"), std::string(),
        EncodeInfoRequest(info).substr(0, 7)}) {
    std::string err = service_->HandleFrame(bad, &shutdown);
    auto decoded = DecodeResponse(err);
    ASSERT_TRUE(decoded.ok());
    EXPECT_FALSE(decoded->ok());
  }
  EXPECT_FALSE(shutdown);

  std::string bye =
      service_->HandleFrame(EncodeShutdownRequest(ShutdownRequest{}),
                            &shutdown);
  EXPECT_TRUE(shutdown);
  auto bye_resp = DecodeResponse(bye);
  ASSERT_TRUE(bye_resp.ok());
  EXPECT_TRUE(bye_resp->ok());
}

// ------------------------------------------- incremental append path --

/// A workload designed so the opt cut abstracts exactly one mid node and
/// keeps six leaves chosen as themselves: appending over a kept leaf is
/// guaranteed patchable, and the compress_hook (which fires only on FULL
/// runs) proves the DP was skipped.
class IncrementalServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (int i = 0; i < 8; ++i) {
      leaves_.push_back(vars_.Intern("il" + std::to_string(i)));
    }
    forest_.AddTree(BuildUniformTree(vars_, leaves_, {4, 2}, "INC_"));
    for (int p = 0; p < 6; ++p) {
      std::vector<Monomial> terms;
      for (int m = 0; m < 8; ++m) {
        terms.emplace_back(1.0 + p + 0.25 * m,
                           std::vector<Factor>{{leaves_[m], 1}});
      }
      polys_.Add(Polynomial::FromMonomials(std::move(terms)));
    }
    bound_ = polys_.SizeM() - 4;
    polys_bytes_ = SerializePolynomialSet(polys_, vars_);
    forest_bytes_ = SerializeForest(forest_, vars_);

    auto base = OptimalSingleTree(polys_, forest_, 0, bound_);
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    const AbstractionTree& tree = forest_.tree(0);
    for (const NodeRef& ref : base->vvs.nodes()) {
      if (tree.node(ref.node).is_leaf()) {
        kept_leaf_ = tree.node(ref.node).label;
        break;
      }
    }
    ASSERT_NE(kept_leaf_, kInvalidVariable);

    ServiceOptions sopts;
    sopts.compress_hook = [this](const ArtifactStore::ResultKey&) {
      full_runs_.fetch_add(1);
    };
    service_ = std::make_unique<ProvenanceService>(sopts);
    LoadRequest load;
    load.artifact = "inc";
    load.polys_bytes = polys_bytes_;
    load.forests = {{"t", forest_bytes_}};
    Response resp = service_->Load(load);
    ASSERT_TRUE(resp.ok()) << resp.message;
  }

  /// One appended polynomial over the kept leaf, serialized for the wire.
  std::string AppendBytes() {
    PolynomialSet extra;
    extra.Add(Polynomial::FromMonomials({Monomial(2.5, {{kept_leaf_, 1}})}));
    return SerializePolynomialSet(extra, vars_);
  }

  VariableTable vars_;
  std::vector<VariableId> leaves_;
  AbstractionForest forest_;
  PolynomialSet polys_;
  size_t bound_ = 0;
  std::string polys_bytes_;
  std::string forest_bytes_;
  VariableId kept_leaf_ = kInvalidVariable;
  std::atomic<int> full_runs_{0};
  std::unique_ptr<ProvenanceService> service_;
};

TEST_F(IncrementalServiceTest, AppendThenCompressSkipsTheFullDp) {
  CompressRequest creq;
  creq.artifact = "inc";
  creq.forest = "t";
  creq.algo = "opt";
  creq.bound = bound_;
  Response first = service_->Compress(creq);
  ASSERT_TRUE(first.ok()) << first.message;
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(first.delta_patched);
  EXPECT_EQ(full_runs_.load(), 1);

  AppendRequest areq;
  areq.artifact = "inc";
  areq.polys_bytes = AppendBytes();
  Response appended = service_->Append(areq);
  ASSERT_TRUE(appended.ok()) << appended.message;
  EXPECT_EQ(appended.poly_count, polys_.count() + 1);
  EXPECT_EQ(appended.monomial_count, polys_.SizeM() + 1);

  // Fresh generation: not a cache hit, but answered by patching the
  // cached predecessor — the hook (full runs only) must NOT fire.
  Response second = service_->Compress(creq);
  ASSERT_TRUE(second.ok()) << second.message;
  EXPECT_FALSE(second.cache_hit);
  EXPECT_TRUE(second.delta_patched);
  EXPECT_EQ(full_runs_.load(), 1) << "patched compress ran the full DP";
  EXPECT_EQ(second.stats.delta_patched, 1u);
  EXPECT_EQ(second.stats.delta_fallback_full, 0u);

  // Field equality against a local cold DP over the appended set.
  PolynomialSet grown = polys_;
  grown.Add(Polynomial::FromMonomials({Monomial(2.5, {{kept_leaf_, 1}})}));
  auto cold = OptimalSingleTree(grown, forest_, 0, bound_);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(second.monomial_loss, cold->loss.monomial_loss);
  EXPECT_EQ(second.variable_loss, cold->loss.variable_loss);
  EXPECT_EQ(second.adequate, cold->adequate);
  EXPECT_EQ(second.compressed_monomials,
            cold->Apply(forest_, grown).SizeM());

  // The patched result is cached like any other fill.
  Response third = service_->Compress(creq);
  ASSERT_TRUE(third.ok());
  EXPECT_TRUE(third.cache_hit);
  EXPECT_FALSE(third.delta_patched);
  EXPECT_EQ(full_runs_.load(), 1);
}

TEST_F(IncrementalServiceTest, GreedyAppendFallsBackToTheFullRun) {
  CompressRequest creq;
  creq.artifact = "inc";
  creq.forest = "t";
  creq.algo = "greedy";
  creq.bound = bound_;
  ASSERT_TRUE(service_->Compress(creq).ok());
  EXPECT_EQ(full_runs_.load(), 1);

  AppendRequest areq;
  areq.artifact = "inc";
  areq.polys_bytes = AppendBytes();
  ASSERT_TRUE(service_->Append(areq).ok());

  // Greedy results retain no DP state, so the nearest cached ancestor
  // settles it: fall back to a full run, counted as such.
  Response resp = service_->Compress(creq);
  ASSERT_TRUE(resp.ok()) << resp.message;
  EXPECT_FALSE(resp.delta_patched);
  EXPECT_EQ(full_runs_.load(), 2);
  EXPECT_EQ(resp.stats.delta_fallback_full, 1u);
  EXPECT_EQ(resp.stats.delta_patched, 0u);
}

TEST_F(IncrementalServiceTest, AppendErrorsAreStructured) {
  AppendRequest missing;
  missing.artifact = "nope";
  missing.polys_bytes = AppendBytes();
  EXPECT_EQ(service_->Append(missing).code, StatusCode::kNotFound);

  AppendRequest empty;
  empty.artifact = "inc";
  EXPECT_EQ(service_->Append(empty).code, StatusCode::kInvalidArgument);

  AppendRequest garbage;
  garbage.artifact = "inc";
  garbage.polys_bytes = "not a polynomial buffer";
  EXPECT_FALSE(service_->Append(garbage).ok());
}

TEST_F(IncrementalServiceTest, AppendRoundTripsThroughHandleFrame) {
  AppendRequest areq;
  areq.artifact = "inc";
  areq.polys_bytes = AppendBytes();
  bool shutdown = false;
  std::string reply =
      service_->HandleFrame(EncodeAppendRequest(areq), &shutdown);
  auto resp = DecodeResponse(reply);
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok()) << resp->message;
  EXPECT_EQ(resp->poly_count, polys_.count() + 1);
  EXPECT_FALSE(shutdown);
}

}  // namespace
}  // namespace provabs
