/// provabs_cli — command-line front end for the provenance-abstraction
/// pipeline, mirroring the paper's deployment story: a producer generates
/// provenance once (`generate`), compresses it under a bound (`compress`),
/// and ships compact binary artifacts to analysts, who inspect (`info`,
/// `tradeoff`) and run what-if scenarios (`evaluate`) locally — or, with
/// the `remote-*` subcommands, against a long-lived `provabs_server` that
/// keeps artifacts and compressed results resident (see docs/SERVER.md).

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algo/compressor.h"
#include "algo/optimal_single_tree.h"
#include "algo/tradeoff_curve.h"
#include "common/timer.h"
#include "core/evaluation_backend.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "online/online_compressor.h"
#include "scenario/parser.h"
#include "scenario/program.h"
#include "server/client.h"
#include "server/wire_protocol.h"
#include "workload/telephony.h"
#include "workload/tpch.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

const char kUsage[] =
    "usage: provabs_cli <command> [flags]\n"
    "\n"
    "offline pipeline:\n"
    "  generate --workload telephony|tpch-q1|tpch-q5|tpch-q10\n"
    "      [--scale S] [--fanouts 8 | 4,4 | 2,2,8] --out P.bin\n"
    "      [--forest-out F.bin]\n"
    "  info --in P.bin\n"
    "  compress --in P.bin --forest F.bin --bound N\n"
    "      [--algo NAME] [--budget-ms MS] [--vvs-out V.bin] [--out C.bin]\n"
    "  append --in P.bin --add EXTRA.bin [--out MERGED.bin]\n"
    "      [--forest F.bin --bound N]   (with a forest and bound, the\n"
    "       compression is re-derived incrementally from the pre-append\n"
    "       DP state, falling back to the full DP only when it must)\n"
    "  tradeoff --in P.bin --forest F.bin\n"
    "  evaluate --in P.bin [--set var=value]... [--eval-backend NAME]\n"
    "  scenario --in P.bin (--expr TEXT | --expr-file F.scn)\n"
    "      [--shape values|argmin|argmax|topk [--top-k K]]\n"
    "      [--eval-backend NAME]\n"
    "\n"
    "serving (against a running provabs_server):\n"
    "  remote-load --port P --name A --in P.bin [--forest F.bin]\n"
    "      [--forest-name N] [--host H]\n"
    "  remote-append --port P --name A --in EXTRA.bin [--host H]\n"
    "  remote-info --port P [--name A] [--host H]\n"
    "  remote-compress --port P --name A --bound N\n"
    "      [--algo NAME] [--forest-name N] [--host H]\n"
    "  remote-evaluate --port P --name A [--set var=value]...\n"
    "      [--eval-backend NAME]\n"
    "      [--bound N [--algo NAME] [--forest-name N]] [--host H]\n"
    "  remote-scenario --port P --name A (--expr TEXT | --expr-file F.scn)\n"
    "      [--shape values|argmin|argmax|topk [--top-k K]]\n"
    "      [--eval-backend NAME]\n"
    "      [--bound N [--algo NAME] [--forest-name N]] [--host H]\n"
    "  remote-tradeoff --port P --name A [--forest-name N] [--host H]\n"
    "  remote-shutdown --port P [--host H]\n"
    "  (every remote-* accepts --timeout-ms MS: bound the connect and "
    "each RPC,\n"
    "   failing with DeadlineExceeded instead of hanging)\n"
    "\n"
    "run 'provabs_cli <command> --help' for the command's flags.\n";

/// One line of an algorithm listing: name, summary, capability suffixes.
/// Shared by --help (local registry) and remote-info (the server's
/// ListAlgos records) so the two renderings cannot drift.
void PrintAlgoLine(std::FILE* out, const std::string& name,
                   const std::string& summary, bool deterministic,
                   bool supports_tradeoff, bool exact, bool produces_cut,
                   bool supports_time_budget) {
  std::string caps;
  if (exact) caps += ", exact";
  if (supports_tradeoff) caps += ", tradeoff";
  if (!produces_cut) caps += ", grouping";
  if (!deterministic) caps += ", randomized";
  // Only the absence is worth a caller's attention: --budget-ms against
  // such an algorithm would be silently ignored.
  if (!supports_time_budget) caps += ", no-time-budget";
  std::fprintf(out, "  %-8s %s%s\n", name.c_str(), summary.c_str(),
               caps.c_str());
}

/// One line of an evaluation-backend listing: name, summary, capability
/// suffixes. Shared by --help (local registry) and remote-info (the
/// server's ListBackends records) so the two renderings cannot drift.
void PrintBackendLine(std::FILE* out, const std::string& name,
                      const std::string& summary, bool vectorized,
                      bool deterministic, uint64_t preferred_batch,
                      uint32_t tier) {
  std::string caps;
  if (vectorized) caps += ", simd";
  if (!deterministic) caps += ", nondeterministic";
  if (preferred_batch > 1) {
    caps += ", batch>=" + std::to_string(preferred_batch);
  }
  // Auto-routing prefers the highest tier, so the listing shows it.
  caps += ", tier=" + std::to_string(tier);
  std::fprintf(out, "  %-10s %s%s\n", name.c_str(), summary.c_str(),
               caps.c_str());
}

/// Usage text plus the live registries, so --help never drifts from what
/// --algo / --eval-backend actually accept.
void PrintUsage(std::FILE* out) {
  std::fputs(kUsage, out);
  std::fprintf(out, "registered algorithms (--algo):\n");
  for (const CompressorInfo& info : CompressorRegistry::Default().Infos()) {
    PrintAlgoLine(out, info.name, info.summary, info.deterministic,
                  info.supports_tradeoff, info.exact, info.produces_cut,
                  info.supports_time_budget);
  }
  std::fprintf(out, "registered evaluation backends (--eval-backend):\n");
  for (const EvaluationBackendInfo& info :
       EvaluationBackendRegistry::Default().Infos()) {
    PrintBackendLine(out, info.name, info.summary, info.vectorized,
                     info.deterministic, info.preferred_batch, info.tier);
  }
}

/// Strict --algo validation shared by the local and remote subcommands:
/// a name outside the registry is a usage error (exit 2) that lists what is
/// registered, the same "typos fail loudly" contract the flag parser has.
bool ValidateAlgo(const std::string& algo, const char* cmd) {
  if (CompressorRegistry::Default().Find(algo) != nullptr) return true;
  std::fprintf(stderr, "%s: unknown algorithm '%s' (registered: %s)\n", cmd,
               algo.c_str(),
               CompressorRegistry::Default().NamesCsv().c_str());
  return false;
}

/// Strict --eval-backend validation, same contract as ValidateAlgo. An
/// empty name (flag absent) is valid: the registry's auto policy routes.
bool ValidateEvalBackend(const std::string& backend, const char* cmd) {
  if (backend.empty() ||
      EvaluationBackendRegistry::Default().Find(backend) != nullptr) {
    return true;
  }
  std::fprintf(stderr,
               "%s: unknown evaluation backend '%s' (registered: %s)\n", cmd,
               backend.c_str(),
               EvaluationBackendRegistry::Default().NamesCsv().c_str());
  return false;
}

/// Minimal strict flag parser: --name value pairs plus repeated --set
/// entries. Flags outside `allowed` (and bare non-flag words) are usage
/// errors — a typo must never be silently ignored.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> sets;
  bool help = false;

  const char* Get(const std::string& name,
                  const char* fallback = nullptr) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second.c_str();
  }
};

bool ParseArgs(int argc, char** argv, int start, const char* cmd,
               std::initializer_list<const char*> allowed, Args* out) {
  for (int i = start; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      out->help = true;
      return true;
    }
    if (flag.rfind("--", 0) != 0) {
      std::fprintf(stderr, "%s: unexpected argument '%s'\n", cmd,
                   flag.c_str());
      return false;
    }
    std::string name = flag.substr(2);
    bool known = false;
    for (const char* a : allowed) {
      if (name == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", cmd, flag.c_str());
      return false;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s: flag '%s' needs a value\n", cmd,
                   flag.c_str());
      return false;
    }
    std::string value = argv[++i];
    if (name == "set") {
      out->sets.push_back(value);
    } else {
      out->flags[name] = value;
    }
  }
  return true;
}

/// Strict numeric parses: garbage, trailing junk, or a sign on an unsigned
/// flag is a usage error — the same "a typo must fail loudly" contract the
/// flag names follow (atoi/atof would silently truncate "15oo" to 15).
bool ParseUint64(const char* text, uint64_t* out) {
  char* end = nullptr;
  errno = 0;
  unsigned long long value = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE ||
      std::strchr(text, '-') != nullptr) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseDouble(const char* text, double* out) {
  char* end = nullptr;
  double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

bool ParseFanouts(const std::string& spec, std::vector<uint32_t>* fanouts) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    uint64_t value = 0;
    if (!ParseUint64(spec.substr(pos, comma - pos).c_str(), &value) ||
        value < 1 || value > (1u << 20)) {
      return false;
    }
    fanouts->push_back(static_cast<uint32_t>(value));
    pos = comma + 1;
  }
  return !fanouts->empty();
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// --------------------------------------------------- scenario front end --

/// Reads the scenario program source from --expr (literal text) or
/// --expr-file (a path); exactly one of the two is required. Returns 0 and
/// fills `out` on success; otherwise the exit code (2 usage, 1 I/O).
int ReadProgramSource(const Args& args, const char* cmd, std::string* out) {
  const char* expr = args.Get("expr");
  const char* expr_file = args.Get("expr-file");
  if ((expr == nullptr) == (expr_file == nullptr)) {
    std::fprintf(stderr, "%s requires exactly one of --expr / --expr-file\n",
                 cmd);
    return 2;
  }
  if (expr != nullptr) {
    *out = expr;
    return 0;
  }
  auto data = ReadFileToString(expr_file);
  if (!data.ok()) return Fail(data.status());
  *out = std::move(*data);
  return 0;
}

/// Parses --shape / --top-k. Default shape is values; --top-k is only
/// meaningful (and then mandatory, >= 1) with --shape topk.
bool ParseShapeArgs(const Args& args, const char* cmd, ScenarioShape* shape,
                    uint64_t* top_k) {
  const char* name = args.Get("shape", "values");
  std::string s = name;
  if (s == "values") {
    *shape = ScenarioShape::kValues;
  } else if (s == "argmin") {
    *shape = ScenarioShape::kArgmin;
  } else if (s == "argmax") {
    *shape = ScenarioShape::kArgmax;
  } else if (s == "topk") {
    *shape = ScenarioShape::kTopK;
  } else {
    std::fprintf(stderr,
                 "%s: bad --shape '%s' (want values|argmin|argmax|topk)\n",
                 cmd, name);
    return false;
  }
  const char* k = args.Get("top-k");
  if (*shape != ScenarioShape::kTopK) {
    if (k != nullptr) {
      std::fprintf(stderr, "%s: --top-k requires --shape topk\n", cmd);
      return false;
    }
    *top_k = 0;
    return true;
  }
  if (k == nullptr || !ParseUint64(k, top_k) || *top_k == 0) {
    std::fprintf(stderr,
                 "%s: --shape topk needs --top-k K (a positive integer)\n",
                 cmd);
    return false;
  }
  return true;
}

/// Prints a compile/parse failure with the caret diagnostic the offset
/// points at, matching compiler convention; callers exit 2 (usage error:
/// the program text is an argument, and it is malformed).
void PrintScenarioError(const char* cmd, const Status& status,
                        std::string_view source, size_t offset) {
  std::fprintf(stderr, "%s: %s\n%s\n", cmd, status.message().c_str(),
               scenario::CaretDiagnostic(source, offset).c_str());
}

void PrintValueRow(const double* values, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    std::printf(i == 0 ? "%.6f" : " %.6f", values[i]);
  }
  std::printf("\n");
}

// ----------------------------------------------------- offline pipeline --

int CmdGenerate(const Args& args) {
  const char* workload = args.Get("workload");
  const char* out = args.Get("out");
  if (workload == nullptr || out == nullptr) {
    std::fprintf(stderr, "generate requires --workload and --out\n");
    return 2;
  }
  double scale = 0;
  if (!ParseDouble(args.Get("scale", "0.2"), &scale) || scale <= 0) {
    std::fprintf(stderr, "generate: bad --scale '%s' (want a number > 0)\n",
                 args.Get("scale", "0.2"));
    return 2;
  }
  std::vector<uint32_t> fanouts;
  if (!ParseFanouts(args.Get("fanouts", "8"), &fanouts)) {
    std::fprintf(stderr,
                 "generate: bad --fanouts '%s' (want e.g. 8 or 4,4)\n",
                 args.Get("fanouts", "8"));
    return 2;
  }

  VariableTable vars;
  PolynomialSet polys;
  std::vector<VariableId> tree_leaves;
  std::string name = workload;
  if (name == "telephony") {
    TelephonyConfig config;
    config.num_customers = static_cast<size_t>(10000 * scale);
    Rng rng(config.seed);
    TelephonyVars tv = MakeTelephonyVars(vars, config);
    polys = RunTelephonyQuery(GenerateTelephony(config, rng), tv);
    tree_leaves = tv.plan_vars;
  } else if (name.rfind("tpch-", 0) == 0) {
    TpchConfig config;
    config.scale_factor = scale;
    Rng rng(config.seed);
    Database db = GenerateTpch(config, rng);
    TpchVars tv = MakeTpchVars(vars, 128);
    TpchQuery q;
    if (name == "tpch-q1") {
      q = TpchQuery::kQ1;
    } else if (name == "tpch-q5") {
      q = TpchQuery::kQ5;
    } else if (name == "tpch-q10") {
      q = TpchQuery::kQ10;
    } else {
      std::fprintf(stderr, "unknown TPC-H workload %s\n", workload);
      return 2;
    }
    polys = RunTpchQuery(q, db, tv);
    tree_leaves = tv.supplier_vars;
  } else {
    std::fprintf(stderr, "unknown workload %s\n", workload);
    return 2;
  }

  Status write = WriteFile(out, SerializePolynomialSet(polys, vars));
  if (!write.ok()) return Fail(write);
  std::printf("wrote %s: %zu polynomials, %zu monomials, %zu variables\n",
              out, polys.count(), polys.SizeM(), polys.SizeV());

  if (const char* forest_out = args.Get("forest-out")) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(vars, tree_leaves, fanouts, "T_"));
    Status fw = WriteFile(forest_out, SerializeForest(forest, vars));
    if (!fw.ok()) return Fail(fw);
    std::printf("wrote %s: 1 tree, %zu nodes\n", forest_out,
                forest.TotalNodes());
  }
  return 0;
}

int CmdInfo(const Args& args) {
  const char* in = args.Get("in");
  if (in == nullptr) {
    std::fprintf(stderr, "info requires --in\n");
    return 2;
  }
  auto data = ReadFileToString(in);
  if (!data.ok()) return Fail(data.status());
  VariableTable vars;
  auto polys = DeserializePolynomialSet(*data, vars);
  if (!polys.ok()) return Fail(polys.status());
  std::printf("%s: %zu bytes\n", in, data->size());
  std::printf("  polynomials : %zu\n", polys->count());
  std::printf("  monomials   : %zu (|P|_M)\n", polys->SizeM());
  std::printf("  variables   : %zu (|P|_V)\n", polys->SizeV());
  size_t max_m = 0;
  size_t min_m = SIZE_MAX;
  for (const Polynomial& p : polys->polynomials()) {
    max_m = std::max(max_m, p.SizeM());
    min_m = std::min(min_m, p.SizeM());
  }
  if (polys->count() > 0) {
    std::printf("  per polynomial: min %zu, max %zu, avg %.2f monomials\n",
                min_m, max_m,
                static_cast<double>(polys->SizeM()) /
                    static_cast<double>(polys->count()));
  }
  return 0;
}

int CmdCompress(const Args& args) {
  const char* in = args.Get("in");
  const char* forest_path = args.Get("forest");
  const char* bound_str = args.Get("bound");
  if (in == nullptr || forest_path == nullptr || bound_str == nullptr) {
    std::fprintf(stderr, "compress requires --in, --forest, --bound\n");
    return 2;
  }
  // Validate flags before touching the (possibly large) artifact files, so
  // usage errors surface as usage errors — and before the compression
  // runs, so an impossible flag combination never costs an algorithm run.
  std::string algo = args.Get("algo", "opt");
  if (!ValidateAlgo(algo, "compress")) return 2;
  const Compressor* compressor = CompressorRegistry::Default().Find(algo);
  if (args.Get("vvs-out") != nullptr && !compressor->info().produces_cut) {
    std::fprintf(stderr,
                 "compress: --vvs-out requires a cut-based algorithm "
                 "('%s' produces a variable grouping)\n",
                 algo.c_str());
    return 2;
  }
  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());
  auto forest_data = ReadFileToString(forest_path);
  if (!forest_data.ok()) return Fail(forest_data.status());
  auto forest = DeserializeForest(*forest_data, vars);
  if (!forest.ok()) return Fail(forest.status());

  uint64_t bound = 0;
  if (!ParseUint64(bound_str, &bound)) {
    std::fprintf(stderr,
                 "compress: bad --bound '%s' (want a non-negative integer)\n",
                 bound_str);
    return 2;
  }
  CompressOptions copts;
  copts.bound = bound;
  if (const char* budget_str = args.Get("budget-ms")) {
    if (!ParseUint64(budget_str, &copts.time_budget_ms) ||
        copts.time_budget_ms == 0) {
      std::fprintf(stderr,
                   "compress: bad --budget-ms '%s' (want a positive integer)\n",
                   budget_str);
      return 2;
    }
  }
  Timer timer;
  StatusOr<CompressionResult> result =
      compressor->Compress(*polys, *forest, copts);
  if (!result.ok()) return Fail(result.status());
  // An exhausted budget is not an error for the anytime algorithms: the
  // cut is valid and its loss exact, only optimality was traded — but the
  // caller must be able to see the trade happened.
  std::string caveats;
  if (result->budget_exhausted) caveats += " (budget exhausted: best-so-far)";
  if (!result->adequate) caveats += " (bound not reached)";
  std::printf("%s: ML=%zu VL=%zu%s in %.3fs\n", algo.c_str(),
              result->loss.monomial_loss, result->loss.variable_loss,
              caveats.c_str(), timer.ElapsedSeconds());
  std::printf("VVS: %s\n", result->Describe(*forest, vars).c_str());

  if (const char* vvs_out = args.Get("vvs-out")) {
    if (result->grouping) {
      // Unreachable for the built-ins (caught pre-run via produces_cut);
      // guards third-party compressors whose metadata lies.
      std::fprintf(stderr,
                   "compress: --vvs-out requires a cut-based algorithm "
                   "('%s' produced a variable grouping)\n",
                   algo.c_str());
      return 2;
    }
    Status w = WriteFile(vvs_out, SerializeVvs(result->vvs, *forest, vars));
    if (!w.ok()) return Fail(w);
  }
  if (const char* out = args.Get("out")) {
    // Grouping results synthesize group representatives outside the
    // variable table; intern them so the compressed set serializes.
    result->InternGrouping(vars);
    PolynomialSet compressed = result->Apply(*forest, *polys);
    Status w = WriteFile(out, SerializePolynomialSet(compressed, vars));
    if (!w.ok()) return Fail(w);
    std::printf("wrote %s: %zu monomials\n", out, compressed.SizeM());
  }
  return 0;
}

/// Offline mirror of the server's incremental-update path: compress the
/// base artifact once (retaining the DP state on the result), append the
/// extra polynomials through the delta log, then re-derive the compression
/// with OptimalRecompress — the full DP runs again only when a patch gate
/// declines (the printed fallback reason names which one).
int CmdAppend(const Args& args) {
  const char* in = args.Get("in");
  const char* add = args.Get("add");
  if (in == nullptr || add == nullptr) {
    std::fprintf(stderr, "append requires --in and --add\n");
    return 2;
  }
  const char* forest_path = args.Get("forest");
  const char* bound_str = args.Get("bound");
  if ((forest_path == nullptr) != (bound_str == nullptr)) {
    std::fprintf(stderr, "append: --forest and --bound go together\n");
    return 2;
  }
  uint64_t bound = 0;
  if (bound_str != nullptr && !ParseUint64(bound_str, &bound)) {
    std::fprintf(stderr,
                 "append: bad --bound '%s' (want a non-negative integer)\n",
                 bound_str);
    return 2;
  }

  VariableTable vars;
  auto base_data = ReadFileToString(in);
  if (!base_data.ok()) return Fail(base_data.status());
  auto polys = DeserializePolynomialSet(*base_data, vars);
  if (!polys.ok()) return Fail(polys.status());
  auto add_data = ReadFileToString(add);
  if (!add_data.ok()) return Fail(add_data.status());
  auto extra = DeserializePolynomialSet(*add_data, vars);
  if (!extra.ok()) return Fail(extra.status());

  std::optional<CompressionResult> before;
  AbstractionForest forest;
  if (forest_path != nullptr) {
    auto forest_data = ReadFileToString(forest_path);
    if (!forest_data.ok()) return Fail(forest_data.status());
    auto parsed = DeserializeForest(*forest_data, vars);
    if (!parsed.ok()) return Fail(parsed.status());
    forest = std::move(*parsed);
    auto pre = OptimalSingleTree(*polys, forest, 0, bound);
    if (!pre.ok()) return Fail(pre.status());
    before = std::move(*pre);
  }

  const uint64_t base_revision = polys->revision();
  for (const Polynomial& p : extra->polynomials()) polys->Add(p);
  std::printf("appended %zu polynomials: now %zu polynomials, %zu "
              "monomials, %zu variables\n",
              extra->count(), polys->count(), polys->SizeM(),
              polys->SizeV());

  if (forest_path != nullptr) {
    PolynomialSetDelta delta = polys->DeltaSince(base_revision);
    Timer timer;
    RecompressFallback fallback = RecompressFallback::kNone;
    StatusOr<CompressionResult> result = OptimalRecompress(
        *polys, forest, *before, delta, bound, &fallback);
    if (fallback != RecompressFallback::kNone) {
      std::printf("recompress: fallback to the full DP (%s)\n",
                  RecompressFallbackName(fallback));
      timer = Timer();
      result = OptimalSingleTree(*polys, forest, 0, bound);
    }
    if (!result.ok()) return Fail(result.status());
    std::printf("%s: ML=%zu VL=%zu%s in %.3fs\n",
                fallback == RecompressFallback::kNone ? "opt (patched)"
                                                      : "opt (full)",
                result->loss.monomial_loss, result->loss.variable_loss,
                result->adequate ? "" : " (bound not reached)",
                timer.ElapsedSeconds());
    std::printf("VVS: %s\n", result->Describe(forest, vars).c_str());
  }

  if (const char* out = args.Get("out")) {
    Status w = WriteFile(out, SerializePolynomialSet(*polys, vars));
    if (!w.ok()) return Fail(w);
    std::printf("wrote %s: %zu monomials\n", out, polys->SizeM());
  }
  return 0;
}

int CmdTradeoff(const Args& args) {
  const char* in = args.Get("in");
  const char* forest_path = args.Get("forest");
  if (in == nullptr || forest_path == nullptr) {
    std::fprintf(stderr, "tradeoff requires --in and --forest\n");
    return 2;
  }
  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());
  auto forest_data = ReadFileToString(forest_path);
  if (!forest_data.ok()) return Fail(forest_data.status());
  auto forest = DeserializeForest(*forest_data, vars);
  if (!forest.ok()) return Fail(forest.status());

  auto curve = OptimalTradeoffCurve(*polys, *forest, 0);
  if (!curve.ok()) return Fail(curve.status());
  std::printf("%12s %14s\n", "size |P'|_M", "variable loss");
  for (const TradeoffPoint& p : *curve) {
    std::printf("%12zu %14zu\n", p.size_m, p.variable_loss);
  }
  return 0;
}

int CmdEvaluate(const Args& args) {
  const char* in = args.Get("in");
  if (in == nullptr) {
    std::fprintf(stderr, "evaluate requires --in\n");
    return 2;
  }
  std::string backend = args.Get("eval-backend", "");
  if (!ValidateEvalBackend(backend, "evaluate")) return 2;
  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());

  Valuation val;
  for (const std::string& assignment : args.sets) {
    size_t eq = assignment.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --set '%s' (want var=value)\n",
                   assignment.c_str());
      return 2;
    }
    std::string name = assignment.substr(0, eq);
    VariableId id = vars.Find(name);
    if (id == kInvalidVariable) {
      std::fprintf(stderr, "unknown variable '%s'\n", name.c_str());
      return 2;
    }
    double value = 0;
    if (!ParseDouble(assignment.substr(eq + 1).c_str(), &value)) {
      std::fprintf(stderr, "bad --set '%s' (value is not a number)\n",
                   assignment.c_str());
      return 2;
    }
    val.Set(id, value);
  }

  Timer timer;
  // Routed through the evaluation-backend registry; all backends return
  // bitwise identical values, so --eval-backend only selects a strategy.
  StatusOr<std::vector<std::vector<double>>> results =
      EvaluateScenarios(*polys, {val}, backend);
  if (!results.ok()) return Fail(results.status());
  double elapsed = timer.ElapsedSeconds();
  const std::vector<double>& answers = results->front();
  for (size_t i = 0; i < answers.size(); ++i) {
    std::printf("polynomial %zu: %.6f\n", i, answers[i]);
  }
  std::printf("(%zu polynomials in %.4fs%s%s)\n", answers.size(), elapsed,
              backend.empty() ? "" : ", backend: ",
              backend.c_str());
  return 0;
}

int CmdScenario(const Args& args) {
  const char* in = args.Get("in");
  if (in == nullptr) {
    std::fprintf(stderr, "scenario requires --in\n");
    return 2;
  }
  std::string backend = args.Get("eval-backend", "");
  if (!ValidateEvalBackend(backend, "scenario")) return 2;
  ScenarioShape shape = ScenarioShape::kValues;
  uint64_t top_k = 0;
  if (!ParseShapeArgs(args, "scenario", &shape, &top_k)) return 2;
  std::string source;
  if (int rc = ReadProgramSource(args, "scenario", &source)) return rc;

  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());
  auto compiled = polys->Compiled();

  size_t error_offset = 0;
  auto program =
      scenario::ScenarioProgram::Compile(source, compiled, vars,
                                         &error_offset);
  if (!program.ok()) {
    PrintScenarioError("scenario", program.status(), source, error_offset);
    return 2;
  }
  const uint64_t total = program->scenario_count();
  const size_t poly_count = compiled->poly_count();

  struct Pick {
    uint64_t index;
    double objective;
    std::vector<double> values;
  };
  const bool shaped = shape != ScenarioShape::kValues;
  const uint64_t keep = shape == ScenarioShape::kTopK ? top_k : 1;
  auto better = [shape](const Pick& a, const Pick& b) {
    if (a.objective != b.objective) {
      return shape == ScenarioShape::kArgmin ? a.objective < b.objective
                                             : a.objective > b.objective;
    }
    return a.index < b.index;
  };
  std::vector<Pick> picks;

  Timer timer;
  constexpr uint64_t kChunk = 1024;
  for (uint64_t begin = 0; begin < total; begin += kChunk) {
    const uint64_t end = std::min(total, begin + kChunk);
    std::vector<DenseValuation> chunk;
    Status expand = program->ExpandChunk(begin, end, &chunk);
    if (!expand.ok()) return Fail(expand);
    const size_t n = chunk.size();
    StatusOr<const EvaluationBackend*> resolved =
        EvaluationBackendRegistry::Default().ResolveForBatch(backend, n);
    if (!resolved.ok()) return Fail(resolved.status());
    std::vector<const DenseValuation*> ptrs(n);
    std::vector<std::vector<double>> outs(n,
                                          std::vector<double>(poly_count));
    std::vector<double*> out_ptrs(n);
    for (size_t i = 0; i < n; ++i) {
      ptrs[i] = &chunk[i];
      out_ptrs[i] = outs[i].data();
    }
    Status eval = (*resolved)->EvaluateBatch(*compiled, 0, poly_count,
                                             ptrs.data(), out_ptrs.data(), n);
    if (!eval.ok()) return Fail(eval);
    for (size_t i = 0; i < n; ++i) {
      if (!shaped) {
        std::printf("scenario %llu: ",
                    static_cast<unsigned long long>(begin + i));
        PrintValueRow(outs[i].data(), poly_count);
        continue;
      }
      double objective = 0.0;
      for (double v : outs[i]) objective += v;
      picks.push_back(Pick{begin + i, objective, std::move(outs[i])});
    }
    if (shaped && picks.size() > keep) {
      std::sort(picks.begin(), picks.end(), better);
      picks.resize(static_cast<size_t>(keep));
    }
  }
  double elapsed = timer.ElapsedSeconds();
  if (shaped) {
    std::sort(picks.begin(), picks.end(), better);
    for (const Pick& pick : picks) {
      std::printf("scenario %llu: objective %.6f\n",
                  static_cast<unsigned long long>(pick.index),
                  pick.objective);
      // The parameter assignments that produced this scenario — the
      // answer an analyst actually wants from argmin/argmax.
      std::vector<double> params = program->ParamValues(pick.index);
      for (size_t p = 0; p < params.size(); ++p) {
        std::printf("  %s = %.6f\n", program->param_names()[p].c_str(),
                    params[p]);
      }
      std::printf("  values: ");
      PrintValueRow(pick.values.data(), pick.values.size());
    }
  }
  std::printf("(%llu scenarios x %zu polynomials in %.4fs%s%s)\n",
              static_cast<unsigned long long>(total), poly_count, elapsed,
              backend.empty() ? "" : ", backend: ", backend.c_str());
  return 0;
}

// ---------------------------------------------------- remote subcommands --

/// Parses the required --port flag strictly: missing, non-numeric, or
/// out-of-range values are usage errors (-1 after a message), consistent
/// with the "nothing is silently ignored" flag-parsing contract.
long ParsePortArg(const Args& args, const char* cmd) {
  const char* port = args.Get("port");
  if (port == nullptr) {
    std::fprintf(stderr, "%s requires --port\n", cmd);
    return -1;
  }
  uint64_t value = 0;
  if (!ParseUint64(port, &value) || value < 1 || value > 65535) {
    std::fprintf(stderr, "%s: bad --port '%s' (want 1-65535)\n", cmd, port);
    return -1;
  }
  return static_cast<long>(value);
}

/// Connects using --host (default 127.0.0.1) and a validated port.
/// --timeout-ms, when given, bounds both the connect and every RPC on the
/// connection; expiry surfaces as a DeadlineExceeded error, not a hang.
StatusOr<Client> ConnectFromArgs(const Args& args, long port) {
  ClientOptions options;
  const char* timeout = args.Get("timeout-ms");
  if (timeout != nullptr) {
    uint64_t ms = 0;
    if (!ParseUint64(timeout, &ms) || ms < 1 ||
        ms > uint64_t{1} << 40) {
      return Status::InvalidArgument(std::string("bad --timeout-ms '") +
                                     timeout +
                                     "' (want a positive millisecond count)");
    }
    options.connect_timeout_ms = static_cast<int64_t>(ms);
    options.rpc_timeout_ms = static_cast<int64_t>(ms);
  }
  return Client::Connect(args.Get("host", "127.0.0.1"),
                         static_cast<uint16_t>(port), options);
}

/// Prints a server-side error, if any; returns 0 when the response is OK.
int CheckResponse(const Response& resp) {
  if (resp.ok()) return 0;
  std::fprintf(stderr, "server error: %s\n", resp.ToStatus().ToString().c_str());
  return 1;
}

void PrintServerStats(const ServerStats& stats) {
  std::printf("server: %llu artifacts, %llu cached results, %llu bytes "
              "cached (budget %llu)\n",
              static_cast<unsigned long long>(stats.artifact_count),
              static_cast<unsigned long long>(stats.result_count),
              static_cast<unsigned long long>(stats.cached_bytes),
              static_cast<unsigned long long>(stats.byte_budget));
  std::printf("cache: %llu hits, %llu misses, %llu evictions\n",
              static_cast<unsigned long long>(stats.result_hits),
              static_cast<unsigned long long>(stats.result_misses),
              static_cast<unsigned long long>(stats.evictions));
  std::printf("single-flight: %llu dedup hits, %llu waiters in flight\n",
              static_cast<unsigned long long>(stats.dedup_hits),
              static_cast<unsigned long long>(stats.inflight_waiters));
  std::printf("batching: %llu batches (%llu lane groups, %llu backend "
              "calls) for %llu evaluate requests\n",
              static_cast<unsigned long long>(stats.eval_batches),
              static_cast<unsigned long long>(stats.eval_groups),
              static_cast<unsigned long long>(stats.eval_backend_calls),
              static_cast<unsigned long long>(stats.eval_requests));
  std::printf("programs: %llu cached, %llu hits, %llu misses\n",
              static_cast<unsigned long long>(stats.program_count),
              static_cast<unsigned long long>(stats.program_hits),
              static_cast<unsigned long long>(stats.program_misses));
  std::printf("connections: %llu active, %llu rejected, %llu idle-reaped "
              "(%llu loop wakeups)\n",
              static_cast<unsigned long long>(stats.active_connections),
              static_cast<unsigned long long>(stats.rejected_connections),
              static_cast<unsigned long long>(stats.idle_reaped),
              static_cast<unsigned long long>(stats.loop_wakeups));
  std::printf("incremental: %llu compressions delta-patched, %llu fell "
              "back to the full algorithm\n",
              static_cast<unsigned long long>(stats.delta_patched),
              static_cast<unsigned long long>(stats.delta_fallback_full));
}

int CmdRemoteLoad(const Args& args) {
  const char* name = args.Get("name");
  const char* in = args.Get("in");
  const char* forest = args.Get("forest");
  if (name == nullptr || (in == nullptr && forest == nullptr)) {
    std::fprintf(stderr,
                 "remote-load requires --name and --in and/or --forest\n");
    return 2;
  }
  if (forest == nullptr && args.Get("forest-name") != nullptr) {
    // Without --forest the name would be silently dropped; refuse.
    std::fprintf(stderr, "remote-load: --forest-name requires --forest\n");
    return 2;
  }
  // Validate the port before touching the (possibly large) artifact files,
  // so usage errors surface as usage errors.
  long port = ParsePortArg(args, "remote-load");
  if (port < 0) return 2;
  LoadRequest req;
  req.artifact = name;
  if (in != nullptr) {
    auto data = ReadFileToString(in);
    if (!data.ok()) return Fail(data.status());
    req.polys_bytes = std::move(*data);
  }
  if (forest != nullptr) {
    auto data = ReadFileToString(forest);
    if (!data.ok()) return Fail(data.status());
    req.forests.emplace_back(args.Get("forest-name", "default"),
                             std::move(*data));
  }
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  auto resp = client->Load(req);
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  std::printf("loaded '%s' (generation %llu): %llu polynomials, %llu "
              "monomials, %llu variables\n",
              name, static_cast<unsigned long long>(resp->generation),
              static_cast<unsigned long long>(resp->poly_count),
              static_cast<unsigned long long>(resp->monomial_count),
              static_cast<unsigned long long>(resp->variable_count));
  return 0;
}

int CmdRemoteAppend(const Args& args) {
  const char* name = args.Get("name");
  const char* in = args.Get("in");
  if (name == nullptr || in == nullptr) {
    std::fprintf(stderr, "remote-append requires --name and --in\n");
    return 2;
  }
  long port = ParsePortArg(args, "remote-append");
  if (port < 0) return 2;
  AppendRequest req;
  req.artifact = name;
  auto data = ReadFileToString(in);
  if (!data.ok()) return Fail(data.status());
  req.polys_bytes = std::move(*data);
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  auto resp = client->Append(req);
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  std::printf("appended to '%s' (generation %llu): now %llu polynomials, "
              "%llu monomials, %llu variables\n",
              name, static_cast<unsigned long long>(resp->generation),
              static_cast<unsigned long long>(resp->poly_count),
              static_cast<unsigned long long>(resp->monomial_count),
              static_cast<unsigned long long>(resp->variable_count));
  return 0;
}

int CmdRemoteInfo(const Args& args) {
  long port = ParsePortArg(args, "remote-info");
  if (port < 0) return 2;
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  InfoRequest req;
  req.artifact = args.Get("name", "");
  auto resp = client->Info(req);
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  if (!req.artifact.empty()) {
    std::printf("artifact '%s' (generation %llu):\n", req.artifact.c_str(),
                static_cast<unsigned long long>(resp->generation));
    std::printf("  polynomials : %llu\n",
                static_cast<unsigned long long>(resp->poly_count));
    std::printf("  monomials   : %llu (|P|_M)\n",
                static_cast<unsigned long long>(resp->monomial_count));
    std::printf("  variables   : %llu (|P|_V)\n",
                static_cast<unsigned long long>(resp->variable_count));
  }
  PrintServerStats(resp->stats);
  // The server's algorithm registry, so analysts discover what --algo
  // accepts without consulting the server's build.
  auto algos = client->ListAlgos(ListAlgosRequest{});
  if (!algos.ok()) return Fail(algos.status());
  if (int rc = CheckResponse(*algos)) return rc;
  std::printf("algorithms:\n");
  for (const AlgoCapability& a : algos->algos) {
    PrintAlgoLine(stdout, a.name, a.summary, a.deterministic,
                  a.supports_tradeoff, a.exact, a.produces_cut,
                  a.supports_time_budget);
  }
  // Likewise the evaluation-backend registry, for --eval-backend.
  auto backends = client->ListBackends(ListBackendsRequest{});
  if (!backends.ok()) return Fail(backends.status());
  if (int rc = CheckResponse(*backends)) return rc;
  std::printf("evaluation backends:\n");
  for (const EvalBackendCapability& b : backends->backends) {
    PrintBackendLine(stdout, b.name, b.summary, b.vectorized,
                     b.deterministic, b.preferred_batch, b.tier);
  }
  return 0;
}

int CmdRemoteCompress(const Args& args) {
  const char* name = args.Get("name");
  const char* bound = args.Get("bound");
  if (name == nullptr || bound == nullptr) {
    std::fprintf(stderr, "remote-compress requires --name and --bound\n");
    return 2;
  }
  CompressRequest req;
  req.artifact = name;
  req.forest = args.Get("forest-name", "default");
  req.algo = args.Get("algo", "opt");
  if (!ValidateAlgo(req.algo, "remote-compress")) return 2;
  if (!ParseUint64(bound, &req.bound)) {
    std::fprintf(
        stderr,
        "remote-compress: bad --bound '%s' (want a non-negative integer)\n",
        bound);
    return 2;
  }
  long port = ParsePortArg(args, "remote-compress");
  if (port < 0) return 2;
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  Timer timer;
  auto resp = client->Compress(req);
  double elapsed = timer.ElapsedSeconds();
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  std::printf("%s: ML=%llu VL=%llu%s in %.3fs\n", req.algo.c_str(),
              static_cast<unsigned long long>(resp->monomial_loss),
              static_cast<unsigned long long>(resp->variable_loss),
              resp->adequate ? "" : " (bound not reached)", elapsed);
  std::printf("VVS: %s\n", resp->vvs.c_str());
  std::printf("compressed size: %llu monomials\n",
              static_cast<unsigned long long>(resp->compressed_monomials));
  std::printf("cache: %s (%llu hits, %llu misses)\n",
              resp->cache_hit ? "hit" : "miss",
              static_cast<unsigned long long>(resp->stats.result_hits),
              static_cast<unsigned long long>(resp->stats.result_misses));
  // Four disjoint outcomes: answered from cache, waited on an identical
  // request's in-flight run (dedup), patched a cached predecessor
  // generation's DP state, or ran the full DP on the server thread.
  std::printf("single-flight: %s (%llu dedup hits total)\n",
              resp->cache_hit     ? "cache hit, no DP involved"
              : resp->dedup_hit   ? "waited on an in-flight DP"
              : resp->delta_patched
                  ? "patched a predecessor generation (full DP skipped)"
                  : "ran the DP",
              static_cast<unsigned long long>(resp->stats.dedup_hits));
  return 0;
}

int CmdRemoteEvaluate(const Args& args) {
  const char* name = args.Get("name");
  if (name == nullptr) {
    std::fprintf(stderr, "remote-evaluate requires --name\n");
    return 2;
  }
  EvaluateRequest req;
  req.artifact = name;
  req.eval_backend = args.Get("eval-backend", "");
  if (!ValidateEvalBackend(req.eval_backend, "remote-evaluate")) return 2;
  for (const std::string& assignment : args.sets) {
    size_t eq = assignment.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --set '%s' (want var=value)\n",
                   assignment.c_str());
      return 2;
    }
    double value = 0;
    if (!ParseDouble(assignment.substr(eq + 1).c_str(), &value)) {
      std::fprintf(stderr, "bad --set '%s' (value is not a number)\n",
                   assignment.c_str());
      return 2;
    }
    req.assignments.emplace_back(assignment.substr(0, eq), value);
  }
  if (const char* bound = args.Get("bound")) {
    req.compressed = true;
    if (!ParseUint64(bound, &req.bound)) {
      std::fprintf(
          stderr,
          "remote-evaluate: bad --bound '%s' (want a non-negative integer)\n",
          bound);
      return 2;
    }
    req.forest = args.Get("forest-name", "default");
    req.algo = args.Get("algo", "opt");
    if (!ValidateAlgo(req.algo, "remote-evaluate")) return 2;
  } else if (args.Get("algo") != nullptr ||
             args.Get("forest-name") != nullptr) {
    // Without --bound these flags would be silently dropped; refuse.
    std::fprintf(stderr,
                 "remote-evaluate: --algo/--forest-name require --bound\n");
    return 2;
  }
  long port = ParsePortArg(args, "remote-evaluate");
  if (port < 0) return 2;
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  Timer timer;
  auto resp = client->Evaluate(req);
  double elapsed = timer.ElapsedSeconds();
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  for (size_t i = 0; i < resp->values.size(); ++i) {
    std::printf("polynomial %zu: %.6f\n", i, resp->values[i]);
  }
  std::printf("(%zu polynomials in %.4fs%s)\n", resp->values.size(), elapsed,
              !req.compressed      ? ""
              : resp->cache_hit    ? ", compressed, cache: hit"
              : resp->dedup_hit    ? ", compressed, cache: dedup"
                                   : ", compressed, cache: miss");
  return 0;
}

int CmdRemoteScenario(const Args& args) {
  const char* name = args.Get("name");
  if (name == nullptr) {
    std::fprintf(stderr, "remote-scenario requires --name\n");
    return 2;
  }
  EvaluateScenarioProgramRequest req;
  req.artifact = name;
  req.eval_backend = args.Get("eval-backend", "");
  if (!ValidateEvalBackend(req.eval_backend, "remote-scenario")) return 2;
  if (!ParseShapeArgs(args, "remote-scenario", &req.shape, &req.top_k)) {
    return 2;
  }
  if (int rc = ReadProgramSource(args, "remote-scenario", &req.program)) {
    return rc;
  }
  // Syntax is checked locally for the caret-diagnostic contract (exit 2
  // like the offline `scenario` command); semantic analysis needs the
  // artifact's variables, which live server-side.
  size_t error_offset = 0;
  auto ast = scenario::Parse(req.program, &error_offset);
  if (!ast.ok()) {
    PrintScenarioError("remote-scenario", ast.status(), req.program,
                       error_offset);
    return 2;
  }
  if (const char* bound = args.Get("bound")) {
    req.compressed = true;
    if (!ParseUint64(bound, &req.bound)) {
      std::fprintf(
          stderr,
          "remote-scenario: bad --bound '%s' (want a non-negative integer)\n",
          bound);
      return 2;
    }
    req.forest = args.Get("forest-name", "default");
    req.algo = args.Get("algo", "opt");
    if (!ValidateAlgo(req.algo, "remote-scenario")) return 2;
  } else if (args.Get("algo") != nullptr ||
             args.Get("forest-name") != nullptr) {
    std::fprintf(stderr,
                 "remote-scenario: --algo/--forest-name require --bound\n");
    return 2;
  }
  long port = ParsePortArg(args, "remote-scenario");
  if (port < 0) return 2;
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  Timer timer;
  auto resp = client->EvaluateScenarioProgram(req);
  double elapsed = timer.ElapsedSeconds();
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  if (req.shape == ScenarioShape::kValues) {
    const size_t poly_count =
        resp->scenario_count == 0
            ? 0
            : resp->values.size() / static_cast<size_t>(resp->scenario_count);
    for (uint64_t s = 0; s < resp->scenario_count; ++s) {
      std::printf("scenario %llu: ", static_cast<unsigned long long>(s));
      PrintValueRow(resp->values.data() + s * poly_count, poly_count);
    }
  } else {
    const size_t poly_count =
        resp->scenario_indices.empty()
            ? 0
            : resp->values.size() / resp->scenario_indices.size();
    for (size_t i = 0; i < resp->scenario_indices.size(); ++i) {
      std::printf("scenario %llu: objective %.6f\n",
                  static_cast<unsigned long long>(resp->scenario_indices[i]),
                  resp->objectives[i]);
      std::printf("  values: ");
      PrintValueRow(resp->values.data() + i * poly_count, poly_count);
    }
  }
  std::printf("(%llu scenarios in %.4fs, program cache: %s%s)\n",
              static_cast<unsigned long long>(resp->scenario_count), elapsed,
              resp->program_cache_hit ? "hit" : "miss",
              !req.compressed      ? ""
              : resp->cache_hit    ? ", compressed, cache: hit"
              : resp->dedup_hit    ? ", compressed, cache: dedup"
                                   : ", compressed, cache: miss");
  return 0;
}

int CmdRemoteTradeoff(const Args& args) {
  const char* name = args.Get("name");
  if (name == nullptr) {
    std::fprintf(stderr, "remote-tradeoff requires --name\n");
    return 2;
  }
  TradeoffRequest req;
  req.artifact = name;
  req.forest = args.Get("forest-name", "default");
  long port = ParsePortArg(args, "remote-tradeoff");
  if (port < 0) return 2;
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  auto resp = client->Tradeoff(req);
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  std::printf("%12s %14s\n", "size |P'|_M", "variable loss");
  for (const TradeoffPoint& p : resp->points) {
    std::printf("%12zu %14zu\n", p.size_m, p.variable_loss);
  }
  return 0;
}

int CmdRemoteShutdown(const Args& args) {
  long port = ParsePortArg(args, "remote-shutdown");
  if (port < 0) return 2;
  auto client = ConnectFromArgs(args, port);
  if (!client.ok()) return Fail(client.status());
  auto resp = client->Shutdown(ShutdownRequest{});
  if (!resp.ok()) return Fail(resp.status());
  if (int rc = CheckResponse(*resp)) return rc;
  std::printf("server shutting down\n");
  return 0;
}

// ------------------------------------------------------------ dispatch ---

struct Command {
  const char* name;
  int (*fn)(const Args&);
  std::initializer_list<const char*> flags;
};

const Command kCommands[] = {
    {"generate", CmdGenerate, {"workload", "scale", "fanouts", "out",
                               "forest-out"}},
    {"info", CmdInfo, {"in"}},
    {"compress", CmdCompress, {"in", "forest", "bound", "algo", "budget-ms",
                               "vvs-out", "out"}},
    {"append", CmdAppend, {"in", "add", "out", "forest", "bound"}},
    {"tradeoff", CmdTradeoff, {"in", "forest"}},
    {"evaluate", CmdEvaluate, {"in", "set", "eval-backend"}},
    {"scenario", CmdScenario, {"in", "expr", "expr-file", "shape", "top-k",
                               "eval-backend"}},
    {"remote-load", CmdRemoteLoad, {"host", "port", "name", "in", "forest",
                                    "forest-name", "timeout-ms"}},
    {"remote-append", CmdRemoteAppend, {"host", "port", "name", "in",
                                        "timeout-ms"}},
    {"remote-info", CmdRemoteInfo, {"host", "port", "name", "timeout-ms"}},
    {"remote-compress", CmdRemoteCompress, {"host", "port", "name", "bound",
                                            "algo", "forest-name",
                                            "timeout-ms"}},
    {"remote-evaluate", CmdRemoteEvaluate, {"host", "port", "name", "set",
                                            "bound", "algo", "forest-name",
                                            "eval-backend", "timeout-ms"}},
    {"remote-scenario", CmdRemoteScenario, {"host", "port", "name", "expr",
                                            "expr-file", "shape", "top-k",
                                            "bound", "algo", "forest-name",
                                            "eval-backend", "timeout-ms"}},
    {"remote-tradeoff", CmdRemoteTradeoff, {"host", "port", "name",
                                            "forest-name", "timeout-ms"}},
    {"remote-shutdown", CmdRemoteShutdown, {"host", "port", "timeout-ms"}},
};

int Run(int argc, char** argv) {
  if (argc < 2) {
    PrintUsage(stderr);
    return 2;
  }
  std::string cmd = argv[1];
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintUsage(stdout);
    return 0;
  }
  for (const Command& command : kCommands) {
    if (cmd != command.name) continue;
    Args args;
    if (!ParseArgs(argc, argv, 2, command.name, command.flags, &args)) {
      return 2;
    }
    if (args.help) {
      PrintUsage(stdout);
      return 0;
    }
    return command.fn(args);
  }
  std::fprintf(stderr, "unknown command '%s'\n\n", cmd.c_str());
  PrintUsage(stderr);
  return 2;
}

}  // namespace
}  // namespace provabs

int main(int argc, char** argv) { return provabs::Run(argc, argv); }
