/// provabs_cli — command-line front end for the provenance-abstraction
/// pipeline, mirroring the paper's deployment story: a producer generates
/// provenance once (`generate`), compresses it under a bound (`compress`),
/// and ships compact binary artifacts to analysts, who inspect (`info`,
/// `tradeoff`) and run what-if scenarios (`evaluate`) locally.
///
/// Usage:
///   provabs_cli generate --workload telephony|tpch-q1|tpch-q5|tpch-q10
///       [--scale S] [--fanouts 8 | 4,4 | 2,2,8] --out P.bin
///       [--forest-out F.bin]
///   provabs_cli info --in P.bin
///   provabs_cli compress --in P.bin --forest F.bin --bound N
///       [--algo opt|greedy] [--vvs-out V.bin] [--out C.bin]
///   provabs_cli tradeoff --in P.bin --forest F.bin
///   provabs_cli evaluate --in P.bin [--set var=value]...

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "algo/greedy_multi_tree.h"
#include "algo/optimal_single_tree.h"
#include "algo/tradeoff_curve.h"
#include "common/timer.h"
#include "core/valuation.h"
#include "io/serializer.h"
#include "online/online_compressor.h"
#include "workload/telephony.h"
#include "workload/tpch.h"
#include "workload/tree_gen.h"

namespace provabs {
namespace {

/// Minimal flag parser: --name value pairs plus repeated --set entries.
struct Args {
  std::map<std::string, std::string> flags;
  std::vector<std::string> sets;

  const char* Get(const std::string& name,
                  const char* fallback = nullptr) const {
    auto it = flags.find(name);
    return it == flags.end() ? fallback : it->second.c_str();
  }
};

Args ParseArgs(int argc, char** argv, int start) {
  Args args;
  for (int i = start; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag.rfind("--", 0) != 0 || i + 1 >= argc) continue;
    std::string value = argv[++i];
    if (flag == "--set") {
      args.sets.push_back(value);
    } else {
      args.flags[flag.substr(2)] = value;
    }
  }
  return args;
}

std::vector<uint32_t> ParseFanouts(const std::string& spec) {
  std::vector<uint32_t> fanouts;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    fanouts.push_back(
        static_cast<uint32_t>(std::atoi(spec.substr(pos, comma - pos).c_str())));
    pos = comma + 1;
  }
  return fanouts;
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdGenerate(const Args& args) {
  const char* workload = args.Get("workload");
  const char* out = args.Get("out");
  if (workload == nullptr || out == nullptr) {
    std::fprintf(stderr, "generate requires --workload and --out\n");
    return 2;
  }
  double scale = std::atof(args.Get("scale", "0.2"));
  std::vector<uint32_t> fanouts = ParseFanouts(args.Get("fanouts", "8"));

  VariableTable vars;
  PolynomialSet polys;
  std::vector<VariableId> tree_leaves;
  std::string name = workload;
  if (name == "telephony") {
    TelephonyConfig config;
    config.num_customers = static_cast<size_t>(10000 * scale);
    Rng rng(config.seed);
    TelephonyVars tv = MakeTelephonyVars(vars, config);
    polys = RunTelephonyQuery(GenerateTelephony(config, rng), tv);
    tree_leaves = tv.plan_vars;
  } else if (name.rfind("tpch-", 0) == 0) {
    TpchConfig config;
    config.scale_factor = scale;
    Rng rng(config.seed);
    Database db = GenerateTpch(config, rng);
    TpchVars tv = MakeTpchVars(vars, 128);
    TpchQuery q;
    if (name == "tpch-q1") {
      q = TpchQuery::kQ1;
    } else if (name == "tpch-q5") {
      q = TpchQuery::kQ5;
    } else if (name == "tpch-q10") {
      q = TpchQuery::kQ10;
    } else {
      std::fprintf(stderr, "unknown TPC-H workload %s\n", workload);
      return 2;
    }
    polys = RunTpchQuery(q, db, tv);
    tree_leaves = tv.supplier_vars;
  } else {
    std::fprintf(stderr, "unknown workload %s\n", workload);
    return 2;
  }

  Status write = WriteFile(out, SerializePolynomialSet(polys, vars));
  if (!write.ok()) return Fail(write);
  std::printf("wrote %s: %zu polynomials, %zu monomials, %zu variables\n",
              out, polys.count(), polys.SizeM(), polys.SizeV());

  if (const char* forest_out = args.Get("forest-out")) {
    AbstractionForest forest;
    forest.AddTree(BuildUniformTree(vars, tree_leaves, fanouts, "T_"));
    Status fw = WriteFile(forest_out, SerializeForest(forest, vars));
    if (!fw.ok()) return Fail(fw);
    std::printf("wrote %s: 1 tree, %zu nodes\n", forest_out,
                forest.TotalNodes());
  }
  return 0;
}

int CmdInfo(const Args& args) {
  const char* in = args.Get("in");
  if (in == nullptr) {
    std::fprintf(stderr, "info requires --in\n");
    return 2;
  }
  auto data = ReadFileToString(in);
  if (!data.ok()) return Fail(data.status());
  VariableTable vars;
  auto polys = DeserializePolynomialSet(*data, vars);
  if (!polys.ok()) return Fail(polys.status());
  std::printf("%s: %zu bytes\n", in, data->size());
  std::printf("  polynomials : %zu\n", polys->count());
  std::printf("  monomials   : %zu (|P|_M)\n", polys->SizeM());
  std::printf("  variables   : %zu (|P|_V)\n", polys->SizeV());
  size_t max_m = 0;
  size_t min_m = SIZE_MAX;
  for (const Polynomial& p : polys->polynomials()) {
    max_m = std::max(max_m, p.SizeM());
    min_m = std::min(min_m, p.SizeM());
  }
  if (polys->count() > 0) {
    std::printf("  per polynomial: min %zu, max %zu, avg %.2f monomials\n",
                min_m, max_m,
                static_cast<double>(polys->SizeM()) /
                    static_cast<double>(polys->count()));
  }
  return 0;
}

int CmdCompress(const Args& args) {
  const char* in = args.Get("in");
  const char* forest_path = args.Get("forest");
  const char* bound_str = args.Get("bound");
  if (in == nullptr || forest_path == nullptr || bound_str == nullptr) {
    std::fprintf(stderr, "compress requires --in, --forest, --bound\n");
    return 2;
  }
  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());
  auto forest_data = ReadFileToString(forest_path);
  if (!forest_data.ok()) return Fail(forest_data.status());
  auto forest = DeserializeForest(*forest_data, vars);
  if (!forest.ok()) return Fail(forest.status());

  size_t bound = static_cast<size_t>(std::atoll(bound_str));
  std::string algo = args.Get("algo", "opt");

  Timer timer;
  StatusOr<CompressionResult> result =
      algo == "greedy"
          ? GreedyMultiTree(*polys, *forest, bound)
          : OptimalSingleTree(*polys, *forest, 0, bound);
  if (!result.ok()) return Fail(result.status());
  std::printf("%s: ML=%zu VL=%zu%s in %.3fs\n", algo.c_str(),
              result->loss.monomial_loss, result->loss.variable_loss,
              result->adequate ? "" : " (bound not reached)",
              timer.ElapsedSeconds());
  std::printf("VVS: %s\n", result->vvs.ToString(*forest, vars).c_str());

  if (const char* vvs_out = args.Get("vvs-out")) {
    Status w = WriteFile(vvs_out, SerializeVvs(result->vvs, *forest, vars));
    if (!w.ok()) return Fail(w);
  }
  if (const char* out = args.Get("out")) {
    PolynomialSet compressed = result->vvs.Apply(*forest, *polys);
    Status w = WriteFile(out, SerializePolynomialSet(compressed, vars));
    if (!w.ok()) return Fail(w);
    std::printf("wrote %s: %zu monomials\n", out, compressed.SizeM());
  }
  return 0;
}

int CmdTradeoff(const Args& args) {
  const char* in = args.Get("in");
  const char* forest_path = args.Get("forest");
  if (in == nullptr || forest_path == nullptr) {
    std::fprintf(stderr, "tradeoff requires --in and --forest\n");
    return 2;
  }
  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());
  auto forest_data = ReadFileToString(forest_path);
  if (!forest_data.ok()) return Fail(forest_data.status());
  auto forest = DeserializeForest(*forest_data, vars);
  if (!forest.ok()) return Fail(forest.status());

  auto curve = OptimalTradeoffCurve(*polys, *forest, 0);
  if (!curve.ok()) return Fail(curve.status());
  std::printf("%12s %14s\n", "size |P'|_M", "variable loss");
  for (const TradeoffPoint& p : *curve) {
    std::printf("%12zu %14zu\n", p.size_m, p.variable_loss);
  }
  return 0;
}

int CmdEvaluate(const Args& args) {
  const char* in = args.Get("in");
  if (in == nullptr) {
    std::fprintf(stderr, "evaluate requires --in\n");
    return 2;
  }
  VariableTable vars;
  auto polys_data = ReadFileToString(in);
  if (!polys_data.ok()) return Fail(polys_data.status());
  auto polys = DeserializePolynomialSet(*polys_data, vars);
  if (!polys.ok()) return Fail(polys.status());

  Valuation val;
  for (const std::string& assignment : args.sets) {
    size_t eq = assignment.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --set '%s' (want var=value)\n",
                   assignment.c_str());
      return 2;
    }
    std::string name = assignment.substr(0, eq);
    VariableId id = vars.Find(name);
    if (id == kInvalidVariable) {
      std::fprintf(stderr, "unknown variable '%s'\n", name.c_str());
      return 2;
    }
    val.Set(id, std::atof(assignment.substr(eq + 1).c_str()));
  }

  Timer timer;
  std::vector<double> answers = val.EvaluateAll(*polys);
  double elapsed = timer.ElapsedSeconds();
  for (size_t i = 0; i < answers.size(); ++i) {
    std::printf("polynomial %zu: %.6f\n", i, answers[i]);
  }
  std::printf("(%zu polynomials in %.4fs)\n", answers.size(), elapsed);
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: provabs_cli generate|info|compress|tradeoff|"
                 "evaluate [flags]\n");
    return 2;
  }
  std::string cmd = argv[1];
  Args args = ParseArgs(argc, argv, 2);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "info") return CmdInfo(args);
  if (cmd == "compress") return CmdCompress(args);
  if (cmd == "tradeoff") return CmdTradeoff(args);
  if (cmd == "evaluate") return CmdEvaluate(args);
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}

}  // namespace
}  // namespace provabs

int main(int argc, char** argv) { return provabs::Run(argc, argv); }
