/// provabs_server — the long-lived serving daemon of the provenance
/// pipeline. Loads artifacts shipped by a producer, keeps them (and their
/// compressed forms) resident in a byte-budgeted LRU cache, and answers
/// load/compress/tradeoff/evaluate requests from `provabs_cli remote-*`
/// clients over a length-prefixed TCP protocol (see docs/SERVER.md).
///
/// Usage:
///   provabs_server [--host 127.0.0.1] [--port 0] [--threads N]
///       [--cache-mb MB] [--port-file PATH] [--workers N]
///       [--max-connections N] [--idle-timeout-ms MS]
///       [--drain-timeout-ms MS]
///
/// With --port 0 (the default) an ephemeral port is chosen; the bound port
/// is printed on stdout and, with --port-file, written to PATH so scripts
/// and tests can discover it race-free. The server runs until a client
/// sends `remote-shutdown` (or the process is killed).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/serializer.h"
#include "server/provenance_service.h"
#include "server/server.h"

namespace provabs {
namespace {

/// Strict non-negative integer parse; false on garbage or overflow.
bool ParseSize(const std::string& text, long long max, long long* out) {
  char* end = nullptr;
  errno = 0;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE || value < 0 ||
      value > max) {
    return false;
  }
  *out = value;
  return true;
}

int Usage(int code) {
  std::fprintf(stderr,
               "usage: provabs_server [--host H] [--port P] [--threads N]\n"
               "                      [--cache-mb MB] [--port-file PATH]\n"
               "                      [--workers N] [--max-connections N]\n"
               "                      [--idle-timeout-ms MS] "
               "[--drain-timeout-ms MS]\n"
               "  --host H         numeric IPv4 bind address (default "
               "127.0.0.1)\n"
               "  --port P         TCP port; 0 = ephemeral (default 0)\n"
               "  --threads N      evaluation worker threads (default: all "
               "cores)\n"
               "  --cache-mb MB    artifact/result cache budget (default "
               "256)\n"
               "  --port-file PATH write the bound port to PATH once "
               "listening\n"
               "  --workers N      request worker threads off the event "
               "loop (default: all cores)\n"
               "  --max-connections N   admission limit; later connections "
               "get a\n"
               "                   structured Unavailable error (default "
               "1024)\n"
               "  --idle-timeout-ms MS  close connections idle this long; "
               "0 = never\n"
               "                   (default 300000)\n"
               "  --drain-timeout-ms MS force-close stragglers this long "
               "after\n"
               "                   shutdown begins (default 5000)\n");
  return code;
}

int Run(int argc, char** argv) {
  ServiceOptions service_options;
  ServerOptions server_options;
  std::string port_file;
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") return Usage(0);
    if (flag.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::fprintf(stderr, "unknown or valueless flag '%s'\n", flag.c_str());
      return Usage(2);
    }
    std::string value = argv[++i];
    if (flag == "--host") {
      server_options.host = value;
    } else if (flag == "--port") {
      long long port = 0;
      if (!ParseSize(value, 65535, &port)) {
        std::fprintf(stderr, "bad --port '%s' (want 0-65535)\n",
                     value.c_str());
        return Usage(2);
      }
      server_options.port = static_cast<uint16_t>(port);
    } else if (flag == "--threads") {
      long long threads = 0;
      if (!ParseSize(value, 1 << 16, &threads)) {
        std::fprintf(stderr, "bad --threads '%s'\n", value.c_str());
        return Usage(2);
      }
      service_options.eval_threads = static_cast<size_t>(threads);
    } else if (flag == "--cache-mb") {
      long long mb = 0;
      if (!ParseSize(value, 1 << 24, &mb)) {
        std::fprintf(stderr, "bad --cache-mb '%s'\n", value.c_str());
        return Usage(2);
      }
      service_options.cache_bytes = static_cast<size_t>(mb) << 20;
    } else if (flag == "--port-file") {
      port_file = value;
    } else if (flag == "--workers") {
      long long workers = 0;
      if (!ParseSize(value, 1 << 16, &workers)) {
        std::fprintf(stderr, "bad --workers '%s'\n", value.c_str());
        return Usage(2);
      }
      server_options.worker_threads = static_cast<size_t>(workers);
    } else if (flag == "--max-connections") {
      long long max_conns = 0;
      if (!ParseSize(value, 1 << 24, &max_conns) || max_conns == 0) {
        std::fprintf(stderr, "bad --max-connections '%s'\n", value.c_str());
        return Usage(2);
      }
      server_options.max_connections = static_cast<size_t>(max_conns);
    } else if (flag == "--idle-timeout-ms") {
      long long idle_ms = 0;
      if (!ParseSize(value, 1LL << 40, &idle_ms)) {
        std::fprintf(stderr, "bad --idle-timeout-ms '%s'\n", value.c_str());
        return Usage(2);
      }
      server_options.idle_timeout_ms = static_cast<uint64_t>(idle_ms);
    } else if (flag == "--drain-timeout-ms") {
      long long drain_ms = 0;
      if (!ParseSize(value, 1LL << 40, &drain_ms)) {
        std::fprintf(stderr, "bad --drain-timeout-ms '%s'\n", value.c_str());
        return Usage(2);
      }
      server_options.drain_timeout_ms = static_cast<uint64_t>(drain_ms);
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", flag.c_str());
      return Usage(2);
    }
  }

  ProvenanceService service(service_options);
  Server server(service, server_options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("provabs_server listening on %s:%u (cache %zu MiB)\n",
              server_options.host.c_str(), server.port(),
              service_options.cache_bytes >> 20);
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Written via a temp file + rename so a polling reader never observes a
    // partially written port number.
    std::string tmp = port_file + ".tmp";
    Status w = WriteFile(tmp, std::to_string(server.port()) + "\n");
    if (w.ok() && std::rename(tmp.c_str(), port_file.c_str()) != 0) {
      w = Status::Internal("rename failed: " + std::string(strerror(errno)));
    }
    if (!w.ok()) {
      std::fprintf(stderr, "error writing port file: %s\n",
                   w.ToString().c_str());
      return 1;
    }
  }

  server.Wait();
  std::printf("provabs_server shut down cleanly\n");
  return 0;
}

}  // namespace
}  // namespace provabs

int main(int argc, char** argv) { return provabs::Run(argc, argv); }
