#!/usr/bin/env bash
# Bench smoke: run every bench driver once at minimal sizes and fail on any
# nonzero exit. Benches are not part of ctest, so without this they only
# ever compile in CI and can bit-rot at runtime (stale flags, renamed
# registry algorithms, workload API drift). This is a liveness check, not a
# measurement: timings printed here are meaningless.
#
# Usage: tools/bench_smoke.sh [BUILD_DIR]   (default: build)
set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: no such directory: $BENCH_DIR" >&2
  exit 2
fi

# Minimal sizes: tiny workload scale, a low brute-force cut ceiling, and a
# short benchmark_min_time for the Google Benchmark ablation drivers (which
# ignore the env vars' scale only partially — the flag keeps them fast).
export PROVABS_BENCH_SCALE="${PROVABS_BENCH_SCALE:-0.05}"
export PROVABS_BRUTE_MAX_CUTS="${PROVABS_BRUTE_MAX_CUTS:-300}"

failures=0
count=0
for bench in "$BENCH_DIR"/bench_*; do
  [ -x "$bench" ] || continue
  [ -f "$bench" ] || continue
  name=$(basename "$bench")
  count=$((count + 1))
  args=()
  # Google Benchmark drivers accept --benchmark_min_time; the self-timed
  # drivers would reject unknown flags, so sniff by name.
  case "$name" in
    bench_ablation_mlcompute|bench_ablation_sparse_dp)
      args=(--benchmark_min_time=0.01) ;;
  esac
  echo "== $name ${args[*]:-}"
  "$bench" "${args[@]}" > /dev/null 2> /tmp/bench_smoke_err.$$
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAILED: $name (exit $rc)" >&2
    sed 's/^/    /' /tmp/bench_smoke_err.$$ >&2
    failures=$((failures + 1))
  fi
  rm -f /tmp/bench_smoke_err.$$
done

if [ "$count" -eq 0 ]; then
  echo "bench_smoke: no bench binaries found under $BENCH_DIR" >&2
  exit 2
fi

echo "bench_smoke: $count drivers, $failures failures"
[ "$failures" -eq 0 ]
