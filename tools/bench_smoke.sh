#!/usr/bin/env bash
# Bench smoke: run every bench driver once at minimal sizes and fail on any
# nonzero exit. Benches are not part of ctest, so without this they only
# ever compile in CI and can bit-rot at runtime (stale flags, renamed
# registry algorithms, workload API drift). This is a liveness check, not a
# measurement: timings printed here are meaningless — with ONE exception:
# when bench_evaluate_kernel runs on the machine BENCH_evaluate.json was
# recorded on (matched by MACHINEKEY cpu model), its BATCHSTAT lines are
# thresholded — the simd_batch backend must not fall below 1.0x the
# single-scenario compiled loop at the recorded batch width. A vectorized
# backend slower than the scalar loop it batches is a regression even at
# smoke scale. On other machines the threshold is skipped (noise).
#
# Usage: tools/bench_smoke.sh [BUILD_DIR]   (default: build)
set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: no such directory: $BENCH_DIR" >&2
  exit 2
fi

# Minimal sizes: tiny workload scale, a low brute-force cut ceiling, and a
# short benchmark_min_time for the Google Benchmark ablation drivers (which
# ignore the env vars' scale only partially — the flag keeps them fast).
export PROVABS_BENCH_SCALE="${PROVABS_BENCH_SCALE:-0.05}"
export PROVABS_BRUTE_MAX_CUTS="${PROVABS_BRUTE_MAX_CUTS:-300}"

failures=0
count=0
for bench in "$BENCH_DIR"/bench_*; do
  [ -x "$bench" ] || continue
  [ -f "$bench" ] || continue
  name=$(basename "$bench")
  count=$((count + 1))
  args=()
  # Google Benchmark drivers accept --benchmark_min_time; the self-timed
  # drivers would reject unknown flags, so sniff by name.
  case "$name" in
    bench_ablation_mlcompute|bench_ablation_sparse_dp)
      args=(--benchmark_min_time=0.01) ;;
  esac
  echo "== $name ${args[*]:-}"
  # bench_evaluate_kernel's stdout carries the MACHINEKEY/BATCHSTAT lines
  # the threshold check below parses; every other driver's is discarded.
  out=/dev/null
  if [ "$name" = "bench_evaluate_kernel" ]; then
    out=/tmp/bench_smoke_eval.$$
  fi
  "$bench" "${args[@]}" > "$out" 2> /tmp/bench_smoke_err.$$
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAILED: $name (exit $rc)" >&2
    sed 's/^/    /' /tmp/bench_smoke_err.$$ >&2
    failures=$((failures + 1))
  fi
  rm -f /tmp/bench_smoke_err.$$
done

# Threshold the batched-arm ratios, keyed by machine: only meaningful on
# the CPU the reference numbers were recorded on.
EVAL_OUT=/tmp/bench_smoke_eval.$$
REFERENCE_JSON="$(cd "$(dirname "$0")/.." && pwd)/BENCH_evaluate.json"
if [ -s "$EVAL_OUT" ] && [ -f "$REFERENCE_JSON" ]; then
  recorded_cpu=$(sed -n 's/^[[:space:]]*"cpu": "\(.*\)",*$/\1/p' "$REFERENCE_JSON" | head -1)
  this_cpu=$(sed -n 's/^MACHINEKEY cpu=//p' "$EVAL_OUT" | head -1)
  if [ -n "$recorded_cpu" ] && [ "$recorded_cpu" = "$this_cpu" ]; then
    slow=$(awk '/^BATCHSTAT / && /backend=simd_batch/ {
      for (i = 1; i <= NF; i++) {
        if ($i ~ /^ratio=/) { sub("ratio=", "", $i); if ($i + 0 < 1.0) print }
      }
    }' "$EVAL_OUT")
    if [ -n "$slow" ]; then
      echo "FAILED: simd_batch below 1.0x compiled on the recorded machine ($this_cpu):" >&2
      grep 'backend=simd_batch' "$EVAL_OUT" | sed 's/^/    /' >&2
      failures=$((failures + 1))
    else
      echo "bench_smoke: simd_batch batched-arm ratios >= 1.0x compiled (machine key matched)"
    fi
  else
    echo "bench_smoke: skipping simd_batch threshold (machine key '$this_cpu' != recorded '$recorded_cpu')"
  fi
fi
rm -f "$EVAL_OUT"

if [ "$count" -eq 0 ]; then
  echo "bench_smoke: no bench binaries found under $BENCH_DIR" >&2
  exit 2
fi

echo "bench_smoke: $count drivers, $failures failures"
[ "$failures" -eq 0 ]
