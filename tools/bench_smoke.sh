#!/usr/bin/env bash
# Bench smoke: run every bench driver once at minimal sizes and fail on any
# nonzero exit. Benches are not part of ctest, so without this they only
# ever compile in CI and can bit-rot at runtime (stale flags, renamed
# registry algorithms, workload API drift). This is a liveness check, not a
# measurement: timings printed here are meaningless — with SIX machine-
# keyed exceptions, each only checked when the current MACHINEKEY (cpu
# model) matches the cpu recorded in the reference JSON; on other machines
# the thresholds are skipped (noise):
#   - bench_evaluate_kernel (vs BENCH_evaluate.json): the simd_batch
#     backend must not fall below 1.0x the single-scenario compiled loop at
#     the recorded batch width. A vectorized backend slower than the scalar
#     loop it batches is a regression even at smoke scale.
#   - bench_evaluate_kernel (vs BENCH_evaluate.json): the jit arm's
#     single-scenario sweep must not fall below 1.0x the compiled loop —
#     but only JITSTAT lines with mode=native; hosts where the jit fell
#     back (forced off, no executable memory) skip cleanly, since the
#     fallback IS the compiled kernel and its ratio is just noise.
#   - bench_server_throughput (vs BENCH_baseline.json): the cached-compress
#     ratio (cold DP / cache hit) must stay >= 100x. The hot serving path
#     is a mutex + hash probe; two orders of magnitude of headroom under
#     the ~2000x recorded means the path grew real work.
#   - bench_server_throughput (vs BENCH_baseline.json): foreground Info
#     RPC latency with 64 idle connections parked must stay >= 0.5x the
#     lone-client latency. Idle connections are bare fds on the epoll
#     loop; if they drag request latency, per-connection threads, busy
#     wakeups, or O(conns) scans crept back into the front end.
#   - bench_scenario_expand (vs BENCH_baseline.json): one scenario-program
#     request must stay >= 5.0x faster than the same 1000 scenarios as
#     individual RPCs (the subsystem's raison d'etre), and its built-in
#     bitwise-identity check must pass (enforced by the driver's exit
#     code on every machine).
#   - bench_incremental_update (vs BENCH_baseline.json): patching a
#     retained DP after a localized append must stay >= 2.0x faster than
#     the cold full DP on every standard workload (min ratio). The
#     driver's built-in patched-vs-full differential (field equality +
#     byte-identical serialization) is enforced by its exit code on every
#     machine; only the latency ratio is machine-keyed.
#
# Usage: tools/bench_smoke.sh [BUILD_DIR]   (default: build)
set -u

BUILD_DIR="${1:-build}"
BENCH_DIR="$BUILD_DIR/bench"

if [ ! -d "$BENCH_DIR" ]; then
  echo "bench_smoke: no such directory: $BENCH_DIR" >&2
  exit 2
fi

# Minimal sizes: tiny workload scale, a low brute-force cut ceiling, and a
# short benchmark_min_time for the Google Benchmark ablation drivers (which
# ignore the env vars' scale only partially — the flag keeps them fast).
export PROVABS_BENCH_SCALE="${PROVABS_BENCH_SCALE:-0.05}"
export PROVABS_BRUTE_MAX_CUTS="${PROVABS_BRUTE_MAX_CUTS:-300}"

failures=0
count=0
for bench in "$BENCH_DIR"/bench_*; do
  [ -x "$bench" ] || continue
  [ -f "$bench" ] || continue
  name=$(basename "$bench")
  count=$((count + 1))
  args=()
  # Google Benchmark drivers accept --benchmark_min_time; the self-timed
  # drivers would reject unknown flags, so sniff by name.
  case "$name" in
    bench_ablation_mlcompute|bench_ablation_sparse_dp)
      args=(--benchmark_min_time=0.01) ;;
  esac
  echo "== $name ${args[*]:-}"
  # These drivers' stdout carries the MACHINEKEY/stat lines the threshold
  # checks below parse; every other driver's is discarded.
  out=/dev/null
  case "$name" in
    bench_evaluate_kernel)    out=/tmp/bench_smoke_eval.$$ ;;
    bench_server_throughput)  out=/tmp/bench_smoke_srv.$$ ;;
    bench_scenario_expand)    out=/tmp/bench_smoke_scn.$$ ;;
    bench_incremental_update) out=/tmp/bench_smoke_incr.$$ ;;
  esac
  "$bench" "${args[@]}" > "$out" 2> /tmp/bench_smoke_err.$$
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "FAILED: $name (exit $rc)" >&2
    sed 's/^/    /' /tmp/bench_smoke_err.$$ >&2
    failures=$((failures + 1))
  fi
  rm -f /tmp/bench_smoke_err.$$
done

# Threshold the batched-arm ratios, keyed by machine: only meaningful on
# the CPU the reference numbers were recorded on.
EVAL_OUT=/tmp/bench_smoke_eval.$$
REFERENCE_JSON="$(cd "$(dirname "$0")/.." && pwd)/BENCH_evaluate.json"
if [ -s "$EVAL_OUT" ] && [ -f "$REFERENCE_JSON" ]; then
  recorded_cpu=$(sed -n 's/^[[:space:]]*"cpu": "\(.*\)",*$/\1/p' "$REFERENCE_JSON" | head -1)
  this_cpu=$(sed -n 's/^MACHINEKEY cpu=//p' "$EVAL_OUT" | head -1)
  if [ -n "$recorded_cpu" ] && [ "$recorded_cpu" = "$this_cpu" ]; then
    slow=$(awk '/^BATCHSTAT / && /backend=simd_batch/ {
      for (i = 1; i <= NF; i++) {
        if ($i ~ /^ratio=/) { sub("ratio=", "", $i); if ($i + 0 < 1.0) print }
      }
    }' "$EVAL_OUT")
    if [ -n "$slow" ]; then
      echo "FAILED: simd_batch below 1.0x compiled on the recorded machine ($this_cpu):" >&2
      grep 'backend=simd_batch' "$EVAL_OUT" | sed 's/^/    /' >&2
      failures=$((failures + 1))
    else
      echo "bench_smoke: simd_batch batched-arm ratios >= 1.0x compiled (machine key matched)"
    fi
    # The jit arm: native code must beat the compiled loop it replaces.
    # Only mode=native lines are thresholded — a fallback line measures
    # the compiled kernel against itself plus dispatch overhead.
    jit_slow=$(awk '/^JITSTAT / && /mode=native/ {
      for (i = 1; i <= NF; i++) {
        if ($i ~ /^ratio=/) { sub("ratio=", "", $i); if ($i + 0 < 1.0) print }
      }
    }' "$EVAL_OUT")
    if [ -n "$jit_slow" ]; then
      echo "FAILED: jit below 1.0x compiled on the recorded machine ($this_cpu):" >&2
      grep '^JITSTAT ' "$EVAL_OUT" | sed 's/^/    /' >&2
      failures=$((failures + 1))
    elif grep -q 'mode=native' "$EVAL_OUT"; then
      echo "bench_smoke: jit single-scenario ratios >= 1.0x compiled (machine key matched)"
    else
      echo "bench_smoke: skipping jit threshold (jit arm ran in fallback mode)"
    fi
  else
    echo "bench_smoke: skipping simd_batch/jit thresholds (machine key '$this_cpu' != recorded '$recorded_cpu')"
  fi
fi
rm -f "$EVAL_OUT"

# Serving-layer ratios, keyed against the machine BENCH_baseline.json was
# recorded on (same skip-on-foreign-machine policy as above).
BASELINE_JSON="$(cd "$(dirname "$0")/.." && pwd)/BENCH_baseline.json"
baseline_cpu=""
if [ -f "$BASELINE_JSON" ]; then
  baseline_cpu=$(sed -n 's/^[[:space:]]*"cpu": "\(.*\)",*$/\1/p' "$BASELINE_JSON" | head -1)
fi

check_ratio() {
  # check_ratio <out-file> <stat-prefix> <min-ratio> <label> [metric]
  # A driver may print several <stat-prefix> lines, distinguished by a
  # metric=NAME field; pass [metric] to threshold only that line (empty
  # matches every line, the pre-multi-metric behaviour).
  local out="$1" prefix="$2" min="$3" label="$4" metric="${5:-}"
  [ -s "$out" ] && [ -n "$baseline_cpu" ] || return 0
  local this_cpu
  this_cpu=$(sed -n 's/^MACHINEKEY cpu=//p' "$out" | head -1)
  if [ "$this_cpu" != "$baseline_cpu" ]; then
    echo "bench_smoke: skipping $label threshold (machine key '$this_cpu' != recorded '$baseline_cpu')"
    return 0
  fi
  local bad
  bad=$(awk -v prefix="$prefix" -v min="$min" -v metric="$metric" \
    '$1 == prefix && (metric == "" || $2 == "metric=" metric) {
    for (i = 1; i <= NF; i++) {
      if ($i ~ /^ratio=/) { sub("ratio=", "", $i); if ($i + 0 < min) print }
    }
  }' "$out")
  if [ -n "$bad" ]; then
    echo "FAILED: $label ratio below ${min}x on the recorded machine ($this_cpu):" >&2
    grep "^$prefix " "$out" | sed 's/^/    /' >&2
    failures=$((failures + 1))
  else
    echo "bench_smoke: $label ratio >= ${min}x (machine key matched)"
  fi
}

check_ratio /tmp/bench_smoke_srv.$$ SRVSTAT 100 "cached-compress" cached_compress
check_ratio /tmp/bench_smoke_srv.$$ SRVSTAT 0.5 "idle-connection latency" concurrent_connections
check_ratio /tmp/bench_smoke_scn.$$ SCENARIOSTAT 5.0 "scenario fan-out"
check_ratio /tmp/bench_smoke_incr.$$ PATCHSTAT 2.0 "incremental patch" patched_vs_full
rm -f /tmp/bench_smoke_srv.$$ /tmp/bench_smoke_scn.$$ /tmp/bench_smoke_incr.$$

if [ "$count" -eq 0 ]; then
  echo "bench_smoke: no bench binaries found under $BENCH_DIR" >&2
  exit 2
fi

echo "bench_smoke: $count drivers, $failures failures"
[ "$failures" -eq 0 ]
