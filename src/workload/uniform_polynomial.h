#ifndef PROVABS_WORKLOAD_UNIFORM_POLYNOMIAL_H_
#define PROVABS_WORKLOAD_UNIFORM_POLYNOMIAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "core/polynomial.h"
#include "core/variable.h"

namespace provabs {

/// Appendix A artifacts: the NP-hardness reduction from vertex cover.
///
/// A uniformly partitioned polynomial P⟨X, n, I⟩ (Definition 16) has, for
/// every pair (a, b) ∈ I, the n×n block Σ_{i,j} x^(a)_i · x^(b)_j. Its flat
/// abstraction (Definition 20) is the forest of |X| depth-1 trees with the
/// meta-variable x^(a) over leaves x^(a)_1..x^(a)_n.

/// Instance bundle tying the polynomial to its variables and abstraction.
struct UniformInstance {
  Polynomial polynomial;
  /// metavars[a] = id of x^(a); leaf_vars[a][i] = id of x^(a)_{i+1}.
  std::vector<VariableId> metavars;
  std::vector<std::vector<VariableId>> leaf_vars;
  AbstractionForest flat_abstraction;
  uint32_t blowup_n = 0;
  std::vector<std::pair<uint32_t, uint32_t>> index_pairs;  ///< I (0-based).
};

/// Builds P⟨X, n, I⟩ and its flat abstraction. `num_metavars` = |X|;
/// `pairs` must satisfy a < b < num_metavars.
UniformInstance MakeUniformInstance(
    VariableTable& vars, uint32_t num_metavars, uint32_t n,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs);

/// Claim 23: sizes of P↓S for a flat abstraction, where `abstracted[a]`
/// says whether metavariable x^(a) ∈ Y (its tree is cut at the root).
/// Returns {|P↓S|_M, |P↓S|_V}.
std::pair<size_t, size_t> PredictAbstractedSizes(
    const UniformInstance& instance, const std::vector<bool>& abstracted);

/// Decision problem (Definition 10) specialized to flat abstractions:
/// determines whether some subset Y of metavariables yields exactly
/// |P↓S|_M = B and |P↓S|_V = K. Exhaustive over 2^|X| — for tests and for
/// solving vertex cover through the reduction. |X| must be ≤ 30.
bool ExistsPreciseFlatAbstraction(const UniformInstance& instance, size_t b,
                                  size_t k,
                                  std::vector<bool>* witness = nullptr);

/// An undirected graph for the vertex-cover side of the reduction.
struct Graph {
  uint32_t num_vertices = 0;
  std::vector<std::pair<uint32_t, uint32_t>> edges;  ///< (u, v), u < v.
};

/// Lemma 29's forward construction: from G (and a blow-up factor n, the
/// lemma uses n = |V|³ but any n ≥ 2 preserves the argument for testing)
/// build the uniformly partitioned polynomial whose precise abstractions
/// encode vertex covers.
UniformInstance ReduceVertexCover(VariableTable& vars, const Graph& g,
                                  uint32_t blowup_n);

/// Lemma 29's granularity target for a cover of size `k`:
/// K = (|V| − k)·n + k.
size_t ReductionGranularityTarget(const Graph& g, uint32_t blowup_n,
                                  uint32_t k);

/// Decides "G has a vertex cover of size exactly k" by invoking the
/// decision problem over the reduction (searching all admissible size
/// bounds B), i.e., the reverse direction of Lemma 29. Exponential in |V|;
/// used to validate the reduction on small graphs.
bool HasVertexCoverViaReduction(VariableTable& vars, const Graph& g,
                                uint32_t k, uint32_t blowup_n = 2);

}  // namespace provabs

#endif  // PROVABS_WORKLOAD_UNIFORM_POLYNOMIAL_H_
