#ifndef PROVABS_WORKLOAD_TREE_GEN_H_
#define PROVABS_WORKLOAD_TREE_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "abstraction/abstraction_tree.h"
#include "core/variable.h"

namespace provabs {

/// Builds a uniform abstraction tree over `leaf_labels` (already-interned
/// variables) with the given internal fan-outs per level: `fanouts[0]` is
/// the root's fan-out, `fanouts[1]` the fan-out of each level-1 node, etc.
/// The bottom internal layer divides the leaves evenly. Internal nodes are
/// named "<prefix>L<level>_<index>" to keep forests disjoint.
///
/// fanouts = {m} reproduces Figure 4a (2-level, m inner nodes);
/// fanouts = {r, c} reproduces Figure 4b (3-level);
/// fanouts = {r, c, d} reproduces Figure 4c (4-level).
AbstractionTree BuildUniformTree(VariableTable& vars,
                                 const std::vector<VariableId>& leaf_labels,
                                 const std::vector<uint32_t>& fanouts,
                                 const std::string& prefix);

/// One row of Table 2: an abstraction-tree structure used in the paper's
/// experiments.
struct TreeTypeSpec {
  int type = 1;                    ///< Paper's type id, 1..7.
  std::vector<uint32_t> fanouts;   ///< Internal fan-outs, root first.
};

/// All Table 2 configurations for trees of the given paper type (1..7),
/// assuming 128 leaves. E.g. type 1 yields {2},{4},{8},{16},{32},{64}.
std::vector<TreeTypeSpec> TreeSpecsOfType(int type);

/// All 27 Table 2 configurations, types 1..7.
std::vector<TreeTypeSpec> AllTreeSpecs();

/// Expected node count of a spec over `num_leaves` leaves
/// (cross-checked against Table 2's "Nodes" column in tests).
size_t SpecNodeCount(const TreeTypeSpec& spec, size_t num_leaves = 128);

}  // namespace provabs

#endif  // PROVABS_WORKLOAD_TREE_GEN_H_
