#include "workload/tpch.h"

#include <string>

#include "common/macros.h"
#include "engine/query.h"

namespace provabs {

TpchVars MakeTpchVars(VariableTable& vars, size_t groups) {
  TpchVars v;
  v.supplier_vars.reserve(groups);
  v.part_vars.reserve(groups);
  for (size_t i = 0; i < groups; ++i) {
    v.supplier_vars.push_back(vars.Intern("s" + std::to_string(i)));
    v.part_vars.push_back(vars.Intern("p" + std::to_string(i)));
  }
  return v;
}

Database GenerateTpch(const TpchConfig& config, Rng& rng) {
  Database db;

  Table region("REGION", Schema({{"R_REGIONKEY", ValueType::kInt64},
                                 {"R_NAME", ValueType::kString}}));
  const char* region_names[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                                "MIDDLE EAST"};
  for (size_t r = 0; r < TpchConfig::kNumRegions; ++r) {
    region.Append({static_cast<int64_t>(r), std::string(region_names[r])});
  }

  Table nation("NATION", Schema({{"N_NATIONKEY", ValueType::kInt64},
                                 {"N_REGIONKEY", ValueType::kInt64},
                                 {"N_NAME", ValueType::kString}}));
  for (size_t n = 0; n < TpchConfig::kNumNations; ++n) {
    nation.Append({static_cast<int64_t>(n),
                   static_cast<int64_t>(n % TpchConfig::kNumRegions),
                   "NATION" + std::to_string(n)});
  }

  Table supplier("SUPPLIER", Schema({{"S_SUPPKEY", ValueType::kInt64},
                                     {"S_NATIONKEY", ValueType::kInt64},
                                     {"S_NAME", ValueType::kString}}));
  for (size_t s = 0; s < config.NumSuppliers(); ++s) {
    supplier.Append({static_cast<int64_t>(s),
                     static_cast<int64_t>(rng.Uniform(TpchConfig::kNumNations)),
                     "Supplier#" + std::to_string(s)});
  }

  Table part("PART", Schema({{"P_PARTKEY", ValueType::kInt64},
                             {"P_NAME", ValueType::kString},
                             {"P_RETAILPRICE", ValueType::kDouble}}));
  for (size_t p = 0; p < config.NumParts(); ++p) {
    part.Append({static_cast<int64_t>(p), "Part#" + std::to_string(p),
                 900.0 + rng.NextDouble() * 1200.0});
  }

  Table customer("CUSTOMER", Schema({{"C_CUSTKEY", ValueType::kInt64},
                                     {"C_NATIONKEY", ValueType::kInt64},
                                     {"C_NAME", ValueType::kString}}));
  for (size_t c = 0; c < config.NumCustomers(); ++c) {
    customer.Append({static_cast<int64_t>(c),
                     static_cast<int64_t>(rng.Uniform(TpchConfig::kNumNations)),
                     "Customer#" + std::to_string(c)});
  }

  Table orders("ORDERS", Schema({{"O_ORDERKEY", ValueType::kInt64},
                                 {"O_CUSTKEY", ValueType::kInt64},
                                 {"O_ORDERDATE", ValueType::kInt64}}));
  for (size_t o = 0; o < config.NumOrders(); ++o) {
    orders.Append({static_cast<int64_t>(o),
                   static_cast<int64_t>(rng.Uniform(config.NumCustomers())),
                   rng.UniformInt(19920101, 19981231)});
  }

  // Index suppliers by nation so lineitems can prefer "local" suppliers.
  // Real dbgen draws suppliers uniformly, which at multi-gigabyte scale
  // still leaves Q5's nation-equality join with a large result; at laptop
  // scale a uniform draw would starve Q5, so we bias half the lineitems
  // toward a supplier sharing the ordering customer's nation — preserving
  // the paper's Q5 provenance shape (few nations, dense polynomials).
  std::vector<std::vector<int64_t>> suppliers_by_nation(
      TpchConfig::kNumNations);
  for (size_t s = 0; s < supplier.row_count(); ++s) {
    suppliers_by_nation[static_cast<size_t>(AsInt(supplier.rows()[s][1]))]
        .push_back(static_cast<int64_t>(s));
  }

  Table lineitem("LINEITEM",
                 Schema({{"L_ORDERKEY", ValueType::kInt64},
                         {"L_PARTKEY", ValueType::kInt64},
                         {"L_SUPPKEY", ValueType::kInt64},
                         {"L_EXTENDEDPRICE", ValueType::kDouble},
                         {"L_DISCOUNT", ValueType::kDouble},
                         {"L_RETURNFLAG", ValueType::kString},
                         {"L_LINESTATUS", ValueType::kString}}));
  const char* flags[] = {"A", "N", "R"};
  const char* statuses[] = {"F", "O"};
  for (size_t l = 0; l < config.NumLineitems(); ++l) {
    int64_t orderkey = static_cast<int64_t>(rng.Uniform(config.NumOrders()));
    int64_t suppkey;
    int64_t custkey = AsInt(orders.rows()[static_cast<size_t>(orderkey)][1]);
    size_t cust_nation = static_cast<size_t>(
        AsInt(customer.rows()[static_cast<size_t>(custkey)][1]));
    if (rng.Bernoulli(0.5) && !suppliers_by_nation[cust_nation].empty()) {
      const auto& local = suppliers_by_nation[cust_nation];
      suppkey = local[rng.Uniform(local.size())];
    } else {
      suppkey = static_cast<int64_t>(rng.Uniform(config.NumSuppliers()));
    }
    // Real dbgen correlates R with F; we keep flags independent but with
    // TPC-H-like proportions (~25% returns).
    size_t flag = rng.Uniform(4);
    lineitem.Append(
        {orderkey, static_cast<int64_t>(rng.Uniform(config.NumParts())),
         suppkey, 1000.0 + rng.NextDouble() * 90000.0,
         0.01 * rng.UniformInt(0, 10),
         std::string(flags[flag < 3 ? flag : 1]),
         std::string(statuses[rng.Uniform(2)])});
  }

  db.Put(std::move(region));
  db.Put(std::move(nation));
  db.Put(std::move(supplier));
  db.Put(std::move(part));
  db.Put(std::move(customer));
  db.Put(std::move(orders));
  db.Put(std::move(lineitem));
  return db;
}

namespace {

/// Builds the (s_i, p_j) parameter hook over a joined relation containing
/// L_SUPPKEY and L_PARTKEY.
GroupBySumSpec MakeRevenueSpec(const Schema& schema, const TpchVars& vars,
                               std::vector<std::string> group_columns) {
  const size_t price_col = schema.IndexOf("L_EXTENDEDPRICE");
  const size_t discount_col = schema.IndexOf("L_DISCOUNT");
  const size_t supp_col = schema.IndexOf("L_SUPPKEY");
  const size_t part_col = schema.IndexOf("L_PARTKEY");
  const size_t groups_s = vars.supplier_vars.size();
  const size_t groups_p = vars.part_vars.size();

  GroupBySumSpec spec;
  spec.group_columns = std::move(group_columns);
  spec.coefficient = [=](const Row& row) {
    return AsDouble(row[price_col]) * (1.0 - AsDouble(row[discount_col]));
  };
  spec.parameters = [=, &vars](const Row& row) {
    return std::vector<VariableId>{
        vars.supplier_vars[static_cast<size_t>(AsInt(row[supp_col])) %
                           groups_s],
        vars.part_vars[static_cast<size_t>(AsInt(row[part_col])) %
                       groups_p]};
  };
  return spec;
}

}  // namespace

PolynomialSet RunTpchQ1(const Database& db, const TpchVars& vars) {
  AnnotatedTable lineitem = Scan(db.Get("LINEITEM"));
  GroupBySumSpec spec = MakeRevenueSpec(lineitem.schema(), vars,
                                        {"L_RETURNFLAG", "L_LINESTATUS"});
  return GroupBySum(lineitem, spec).ToPolynomialSet();
}

PolynomialSet RunTpchQ5(const Database& db, const TpchVars& vars) {
  AnnotatedTable lineitem = Scan(db.Get("LINEITEM"));
  AnnotatedTable orders = Scan(db.Get("ORDERS"));
  AnnotatedTable customer = Scan(db.Get("CUSTOMER"));
  AnnotatedTable supplier = Scan(db.Get("SUPPLIER"));
  AnnotatedTable nation = Scan(db.Get("NATION"));

  AnnotatedTable j = HashJoin(lineitem, orders, {{"L_ORDERKEY", "O_ORDERKEY"}});
  j = HashJoin(j, customer, {{"O_CUSTKEY", "C_CUSTKEY"}});
  j = HashJoin(j, supplier, {{"L_SUPPKEY", "S_SUPPKEY"}});

  // Q5 requires the customer and the supplier to share a nation.
  const size_t c_nation = j.schema().IndexOf("C_NATIONKEY");
  const size_t s_nation = j.schema().IndexOf("S_NATIONKEY");
  j = Select(j, [=](const Row& row) {
    return AsInt(row[c_nation]) == AsInt(row[s_nation]);
  });
  j = HashJoin(j, nation, {{"S_NATIONKEY", "N_NATIONKEY"}});

  GroupBySumSpec spec = MakeRevenueSpec(j.schema(), vars, {"N_NAME"});
  return GroupBySum(j, spec).ToPolynomialSet();
}

PolynomialSet RunTpchQ10(const Database& db, const TpchVars& vars) {
  AnnotatedTable lineitem = Scan(db.Get("LINEITEM"));
  const size_t flag_col = lineitem.schema().IndexOf("L_RETURNFLAG");
  lineitem = Select(lineitem, [=](const Row& row) {
    return AsString(row[flag_col]) == "R";
  });

  AnnotatedTable orders = Scan(db.Get("ORDERS"));
  AnnotatedTable customer = Scan(db.Get("CUSTOMER"));
  AnnotatedTable j = HashJoin(lineitem, orders, {{"L_ORDERKEY", "O_ORDERKEY"}});
  j = HashJoin(j, customer, {{"O_CUSTKEY", "C_CUSTKEY"}});

  GroupBySumSpec spec = MakeRevenueSpec(j.schema(), vars, {"O_CUSTKEY"});
  return GroupBySum(j, spec).ToPolynomialSet();
}

PolynomialSet RunTpchQuery(TpchQuery q, const Database& db,
                           const TpchVars& vars) {
  switch (q) {
    case TpchQuery::kQ1:
      return RunTpchQ1(db, vars);
    case TpchQuery::kQ5:
      return RunTpchQ5(db, vars);
    case TpchQuery::kQ10:
      return RunTpchQ10(db, vars);
  }
  PROVABS_CHECK(false);
  return PolynomialSet();
}

}  // namespace provabs
