#include "workload/uniform_polynomial.h"

#include <string>

#include "common/macros.h"

namespace provabs {

UniformInstance MakeUniformInstance(
    VariableTable& vars, uint32_t num_metavars, uint32_t n,
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  PROVABS_CHECK(n >= 1);
  UniformInstance inst;
  inst.blowup_n = n;
  inst.index_pairs = pairs;
  inst.metavars.reserve(num_metavars);
  inst.leaf_vars.resize(num_metavars);

  std::vector<AbstractionTree> trees;
  trees.reserve(num_metavars);
  for (uint32_t a = 0; a < num_metavars; ++a) {
    std::string meta = "x(" + std::to_string(a + 1) + ")";
    AbstractionTreeBuilder b(vars);
    NodeIndex root = b.AddRoot(meta);
    inst.metavars.push_back(vars.Find(meta));
    inst.leaf_vars[a].reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      std::string leaf = "x(" + std::to_string(a + 1) + ")_" +
                         std::to_string(i + 1);
      b.AddChild(root, leaf);
      inst.leaf_vars[a].push_back(vars.Find(leaf));
    }
    trees.push_back(std::move(b).Build());
  }
  inst.flat_abstraction = AbstractionForest(std::move(trees));

  std::vector<Monomial> terms;
  terms.reserve(static_cast<size_t>(pairs.size()) * n * n);
  for (const auto& [a, b] : pairs) {
    PROVABS_CHECK(a < b && b < num_metavars);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = 0; j < n; ++j) {
        terms.emplace_back(
            1.0, std::vector<Factor>{Factor{inst.leaf_vars[a][i], 1},
                                     Factor{inst.leaf_vars[b][j], 1}});
      }
    }
  }
  inst.polynomial = Polynomial::FromMonomials(std::move(terms));
  return inst;
}

std::pair<size_t, size_t> PredictAbstractedSizes(
    const UniformInstance& instance, const std::vector<bool>& abstracted) {
  const size_t n = instance.blowup_n;
  size_t size_m = 0;
  for (const auto& [a, b] : instance.index_pairs) {
    bool ya = abstracted[a];
    bool yb = abstracted[b];
    if (ya && yb) {
      size_m += 1;
    } else if (!ya && !yb) {
      size_m += n * n;
    } else {
      size_m += n;
    }
  }
  size_t num_abstracted = 0;
  for (bool y : abstracted) {
    if (y) ++num_abstracted;
  }
  size_t size_v =
      num_abstracted + (abstracted.size() - num_abstracted) * n;
  return {size_m, size_v};
}

bool ExistsPreciseFlatAbstraction(const UniformInstance& instance, size_t b,
                                  size_t k, std::vector<bool>* witness) {
  const size_t x = instance.metavars.size();
  PROVABS_CHECK(x <= 30);
  for (uint64_t mask = 0; mask < (1ull << x); ++mask) {
    std::vector<bool> abstracted(x);
    for (size_t a = 0; a < x; ++a) abstracted[a] = (mask >> a) & 1;
    auto [size_m, size_v] = PredictAbstractedSizes(instance, abstracted);
    if (size_m == b && size_v == k) {
      if (witness) *witness = abstracted;
      return true;
    }
  }
  return false;
}

UniformInstance ReduceVertexCover(VariableTable& vars, const Graph& g,
                                  uint32_t blowup_n) {
  return MakeUniformInstance(vars, g.num_vertices, blowup_n, g.edges);
}

size_t ReductionGranularityTarget(const Graph& g, uint32_t blowup_n,
                                  uint32_t k) {
  return static_cast<size_t>(g.num_vertices - k) * blowup_n + k;
}

bool HasVertexCoverViaReduction(VariableTable& vars, const Graph& g,
                                uint32_t k, uint32_t blowup_n) {
  // Lemma 29's argument needs the blow-up n to dominate |E| so that a
  // single uncovered edge (an n² block) already exceeds every admissible
  // bound B ≤ |E|·n. The lemma achieves this with n = |V|³ ≥ |E|·|V|; for
  // small test graphs any n > |E| suffices, so clamp upward.
  uint32_t n = blowup_n;
  if (n <= g.edges.size()) n = static_cast<uint32_t>(g.edges.size()) + 1;

  UniformInstance inst = ReduceVertexCover(vars, g, n);
  const size_t target_k = ReductionGranularityTarget(g, n, k);
  // Admissible bounds: a cover abstraction yields |P↓S|_M ≤ |E|·n < n², so
  // searching B in [1, |E|·n] finds a precise witness iff a size-k cover
  // exists.
  const size_t b_limit = g.edges.size() * n;
  for (size_t b = 1; b <= b_limit; ++b) {
    if (ExistsPreciseFlatAbstraction(inst, b, target_k)) return true;
  }
  return false;
}

}  // namespace provabs
