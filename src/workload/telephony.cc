#include "workload/telephony.h"

#include <string>

#include "common/macros.h"
#include "engine/query.h"

namespace provabs {

TelephonyVars MakeTelephonyVars(VariableTable& vars,
                                const TelephonyConfig& config) {
  TelephonyVars v;
  v.plan_vars.reserve(config.num_plans);
  for (size_t i = 0; i < config.num_plans; ++i) {
    v.plan_vars.push_back(vars.Intern("plan" + std::to_string(i)));
  }
  v.month_vars.reserve(config.num_months);
  for (size_t j = 0; j < config.num_months; ++j) {
    v.month_vars.push_back(vars.Intern("m" + std::to_string(j + 1)));
  }
  return v;
}

Database GenerateTelephony(const TelephonyConfig& config, Rng& rng) {
  Database db;

  Table cust("Cust", Schema({{"ID", ValueType::kInt64},
                             {"Plan", ValueType::kInt64},
                             {"Zip", ValueType::kInt64}}));
  Table calls("Calls", Schema({{"CID", ValueType::kInt64},
                               {"Mo", ValueType::kInt64},
                               {"Dur", ValueType::kInt64}}));
  Table plans("Plans", Schema({{"Plan", ValueType::kInt64},
                               {"Mo", ValueType::kInt64},
                               {"Price", ValueType::kDouble}}));

  for (size_t c = 0; c < config.num_customers; ++c) {
    int64_t plan = static_cast<int64_t>(rng.Uniform(config.num_plans));
    int64_t zip = 10000 + static_cast<int64_t>(
                              rng.Uniform(config.num_zip_codes));
    cust.Append({static_cast<int64_t>(c), plan, zip});
    for (size_t mo = 1; mo <= config.num_months; ++mo) {
      calls.Append({static_cast<int64_t>(c), static_cast<int64_t>(mo),
                    rng.UniformInt(10, 2000)});
    }
  }
  for (size_t p = 0; p < config.num_plans; ++p) {
    for (size_t mo = 1; mo <= config.num_months; ++mo) {
      // Price-per-minute in [0.05, 0.55], varying by month as in Figure 1.
      plans.Append({static_cast<int64_t>(p), static_cast<int64_t>(mo),
                    0.05 + 0.5 * rng.NextDouble()});
    }
  }

  db.Put(std::move(cust));
  db.Put(std::move(calls));
  db.Put(std::move(plans));
  return db;
}

PolynomialSet RunTelephonyQuery(const Database& db,
                                const TelephonyVars& vars) {
  AnnotatedTable calls = Scan(db.Get("Calls"));
  AnnotatedTable cust = Scan(db.Get("Cust"));
  AnnotatedTable plans = Scan(db.Get("Plans"));

  // Calls ⋈ Cust on CID = ID, then ⋈ Plans on (Plan, Mo).
  AnnotatedTable joined =
      HashJoin(calls, cust, {{"CID", "ID"}});
  joined = HashJoin(joined, plans, {{"Plan", "Plan"}, {"Mo", "Mo"}});

  const Schema& schema = joined.schema();
  const size_t dur_col = schema.IndexOf("Dur");
  const size_t price_col = schema.IndexOf("Price");
  const size_t plan_col = schema.IndexOf("Plan");
  const size_t mo_col = schema.IndexOf("Mo");

  GroupBySumSpec spec;
  spec.group_columns = {"Zip"};
  spec.coefficient = [=](const Row& row) {
    return AsDouble(row[dur_col]) * AsDouble(row[price_col]);
  };
  spec.parameters = [=, &vars](const Row& row) {
    return std::vector<VariableId>{
        vars.plan_vars[static_cast<size_t>(AsInt(row[plan_col]))],
        vars.month_vars[static_cast<size_t>(AsInt(row[mo_col])) - 1]};
  };
  return GroupBySum(joined, spec).ToPolynomialSet();
}

RunningExample MakeRunningExample(VariableTable& vars) {
  RunningExample ex;
  ex.p1 = vars.Intern("p1");
  ex.f1 = vars.Intern("f1");
  ex.y1 = vars.Intern("y1");
  ex.v = vars.Intern("v");
  ex.b1 = vars.Intern("b1");
  ex.b2 = vars.Intern("b2");
  ex.e = vars.Intern("e");
  ex.m1 = vars.Intern("m1");
  ex.m3 = vars.Intern("m3");

  // Plan ids: 0=A, 1=F1, 2=SB1, 3=Y1, 4=V, 5=E, 6=SB2 (Figure 1).
  Table cust("Cust", Schema({{"ID", ValueType::kInt64},
                             {"Plan", ValueType::kInt64},
                             {"Zip", ValueType::kInt64}}));
  cust.Append({int64_t{1}, int64_t{0}, int64_t{10001}});
  cust.Append({int64_t{2}, int64_t{1}, int64_t{10001}});
  cust.Append({int64_t{3}, int64_t{2}, int64_t{10002}});
  cust.Append({int64_t{4}, int64_t{3}, int64_t{10001}});
  cust.Append({int64_t{5}, int64_t{4}, int64_t{10001}});
  cust.Append({int64_t{6}, int64_t{5}, int64_t{10002}});
  cust.Append({int64_t{7}, int64_t{6}, int64_t{10002}});

  Table calls("Calls", Schema({{"CID", ValueType::kInt64},
                               {"Mo", ValueType::kInt64},
                               {"Dur", ValueType::kInt64}}));
  const int64_t dur_m1[] = {522, 364, 779, 253, 168, 1044, 697};
  const int64_t dur_m3[] = {480, 327, 805, 290, 121, 1130, 671};
  for (int64_t c = 1; c <= 7; ++c) {
    calls.Append({c, int64_t{1}, dur_m1[c - 1]});
    calls.Append({c, int64_t{3}, dur_m3[c - 1]});
  }

  Table plans("Plans", Schema({{"Plan", ValueType::kInt64},
                               {"Mo", ValueType::kInt64},
                               {"Price", ValueType::kDouble}}));
  const double price_m1[] = {0.4, 0.35, 0.1, 0.3, 0.25, 0.05, 0.1};
  const double price_m3[] = {0.5, 0.35, 0.1, 0.25, 0.2, 0.05, 0.15};
  for (int64_t p = 0; p < 7; ++p) {
    plans.Append({p, int64_t{1}, price_m1[p]});
    plans.Append({p, int64_t{3}, price_m3[p]});
  }

  ex.db.Put(std::move(cust));
  ex.db.Put(std::move(calls));
  ex.db.Put(std::move(plans));
  return ex;
}

PolynomialSet RunRunningExampleQuery(const RunningExample& ex) {
  AnnotatedTable calls = Scan(ex.db.Get("Calls"));
  AnnotatedTable cust = Scan(ex.db.Get("Cust"));
  AnnotatedTable plans = Scan(ex.db.Get("Plans"));

  AnnotatedTable joined = HashJoin(calls, cust, {{"CID", "ID"}});
  joined = HashJoin(joined, plans, {{"Plan", "Plan"}, {"Mo", "Mo"}});

  const Schema& schema = joined.schema();
  const size_t dur_col = schema.IndexOf("Dur");
  const size_t price_col = schema.IndexOf("Price");
  const size_t plan_col = schema.IndexOf("Plan");
  const size_t mo_col = schema.IndexOf("Mo");

  // Plan id -> the paper's per-plan variable.
  const VariableId plan_var[] = {ex.p1, ex.f1, ex.b1, ex.y1,
                                 ex.v,  ex.e,  ex.b2};

  GroupBySumSpec spec;
  spec.group_columns = {"Zip"};
  spec.coefficient = [=](const Row& row) {
    return AsDouble(row[dur_col]) * AsDouble(row[price_col]);
  };
  spec.parameters = [=, &ex](const Row& row) {
    VariableId month = AsInt(row[mo_col]) == 1 ? ex.m1 : ex.m3;
    return std::vector<VariableId>{
        plan_var[static_cast<size_t>(AsInt(row[plan_col]))], month};
  };
  return GroupBySum(joined, spec).ToPolynomialSet();
}

AbstractionTree MakeFigure2PlansTree(VariableTable& vars) {
  AbstractionTreeBuilder b(vars);
  NodeIndex root = b.AddRoot("Plans");
  NodeIndex business = b.AddChild(root, "Business");
  NodeIndex sb = b.AddChild(business, "SB");
  b.AddChild(sb, "b1");
  b.AddChild(sb, "b2");
  b.AddChild(business, "e");
  NodeIndex special = b.AddChild(root, "Special");
  NodeIndex f = b.AddChild(special, "F");
  b.AddChild(f, "f1");
  b.AddChild(f, "f2");
  NodeIndex y = b.AddChild(special, "Y");
  b.AddChild(y, "y1");
  b.AddChild(y, "y2");
  b.AddChild(y, "y3");
  b.AddChild(special, "v");
  NodeIndex standard = b.AddChild(root, "Standard");
  b.AddChild(standard, "p1");
  b.AddChild(standard, "p2");
  return std::move(b).Build();
}

AbstractionTree MakeFigure3MonthsTree(VariableTable& vars,
                                      size_t num_months) {
  PROVABS_CHECK(num_months >= 1 && num_months <= 12);
  AbstractionTreeBuilder b(vars);
  NodeIndex root = b.AddRoot("Year");
  size_t num_quarters = (num_months + 2) / 3;
  for (size_t q = 0; q < num_quarters; ++q) {
    NodeIndex quarter = b.AddChild(root, "q" + std::to_string(q + 1));
    for (size_t m = 3 * q + 1; m <= std::min(num_months, 3 * q + 3); ++m) {
      b.AddChild(quarter, "m" + std::to_string(m));
    }
  }
  return std::move(b).Build();
}

}  // namespace provabs
