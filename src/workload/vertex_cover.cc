#include "workload/vertex_cover.h"

#include "common/macros.h"

namespace provabs {

bool IsVertexCover(const Graph& g, const std::vector<bool>& cover) {
  for (const auto& [u, v] : g.edges) {
    if (!cover[u] && !cover[v]) return false;
  }
  return true;
}

bool HasVertexCoverOfSize(const Graph& g, uint32_t k) {
  PROVABS_CHECK(g.num_vertices <= 30);
  if (k > g.num_vertices) return false;
  for (uint64_t mask = 0; mask < (1ull << g.num_vertices); ++mask) {
    if (static_cast<uint32_t>(__builtin_popcountll(mask)) != k) continue;
    std::vector<bool> cover(g.num_vertices);
    for (uint32_t i = 0; i < g.num_vertices; ++i) {
      cover[i] = (mask >> i) & 1;
    }
    if (IsVertexCover(g, cover)) return true;
  }
  return false;
}

uint32_t MinVertexCoverSize(const Graph& g) {
  for (uint32_t k = 0; k <= g.num_vertices; ++k) {
    if (HasVertexCoverOfSize(g, k)) return k;
  }
  return g.num_vertices;
}

Graph RandomGraph(uint32_t num_vertices, double edge_prob, Rng& rng) {
  Graph g;
  g.num_vertices = num_vertices;
  for (uint32_t u = 0; u < num_vertices; ++u) {
    for (uint32_t v = u + 1; v < num_vertices; ++v) {
      if (rng.Bernoulli(edge_prob)) g.edges.emplace_back(u, v);
    }
  }
  return g;
}

}  // namespace provabs
