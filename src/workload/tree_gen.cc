#include "workload/tree_gen.h"

#include "common/macros.h"

namespace provabs {

AbstractionTree BuildUniformTree(VariableTable& vars,
                                 const std::vector<VariableId>& leaf_labels,
                                 const std::vector<uint32_t>& fanouts,
                                 const std::string& prefix) {
  PROVABS_CHECK(!leaf_labels.empty());
  AbstractionTreeBuilder b(vars);
  NodeIndex root = b.AddRoot(prefix + "root");

  // Build the internal levels breadth-first.
  std::vector<NodeIndex> frontier = {root};
  uint64_t counter = 0;
  for (size_t level = 0; level < fanouts.size(); ++level) {
    PROVABS_CHECK(fanouts[level] >= 1);
    std::vector<NodeIndex> next;
    next.reserve(frontier.size() * fanouts[level]);
    for (NodeIndex parent : frontier) {
      for (uint32_t c = 0; c < fanouts[level]; ++c) {
        next.push_back(b.AddChild(
            parent, prefix + "L" + std::to_string(level + 1) + "_" +
                        std::to_string(counter++)));
      }
    }
    frontier = std::move(next);
  }

  // Distribute leaves evenly over the bottom internal layer: the first
  // (leaves mod width) nodes get one extra leaf.
  const size_t width = frontier.size();
  const size_t base = leaf_labels.size() / width;
  const size_t extra = leaf_labels.size() % width;
  PROVABS_CHECK(base >= 1);  // Every bottom node must own at least one leaf.
  size_t next_leaf = 0;
  for (size_t i = 0; i < width; ++i) {
    size_t take = base + (i < extra ? 1 : 0);
    for (size_t j = 0; j < take; ++j) {
      // Leaf labels are pre-interned variables; AddChild interns the name.
      b.AddChild(frontier[i], /*label=*/
                 // NameOf round-trips the existing id.
                 vars.NameOf(leaf_labels[next_leaf++]));
    }
  }
  PROVABS_CHECK(next_leaf == leaf_labels.size());
  return std::move(b).Build();
}

std::vector<TreeTypeSpec> TreeSpecsOfType(int type) {
  // The fan-out columns of Table 2 (128 leaves assumed throughout).
  switch (type) {
    case 1:
      return {{1, {2}}, {1, {4}}, {1, {8}}, {1, {16}}, {1, {32}}, {1, {64}}};
    case 2:
      return {{2, {2, 2}}, {2, {2, 4}}, {2, {2, 8}}, {2, {2, 16}},
              {2, {2, 32}}};
    case 3:
      return {{3, {4, 2}}, {3, {4, 4}}, {3, {4, 8}}, {3, {4, 16}}};
    case 4:
      return {{4, {8, 2}}, {4, {8, 4}}, {4, {8, 8}}};
    case 5:
      return {{5, {2, 2, 2}}, {5, {2, 2, 4}}, {5, {2, 2, 8}},
              {5, {2, 2, 16}}};
    case 6:
      return {{6, {2, 4, 2}}, {6, {2, 4, 4}}, {6, {2, 4, 8}}};
    case 7:
      return {{7, {4, 2, 2}}, {7, {4, 2, 4}}, {7, {4, 2, 8}}};
    default:
      PROVABS_CHECK(false);
      return {};
  }
}

std::vector<TreeTypeSpec> AllTreeSpecs() {
  std::vector<TreeTypeSpec> all;
  for (int type = 1; type <= 7; ++type) {
    auto specs = TreeSpecsOfType(type);
    all.insert(all.end(), specs.begin(), specs.end());
  }
  return all;
}

size_t SpecNodeCount(const TreeTypeSpec& spec, size_t num_leaves) {
  size_t internal = 1;  // root
  size_t layer = 1;
  for (uint32_t f : spec.fanouts) {
    layer *= f;
    internal += layer;
  }
  return internal + num_leaves;
}

}  // namespace provabs
