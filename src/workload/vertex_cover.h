#ifndef PROVABS_WORKLOAD_VERTEX_COVER_H_
#define PROVABS_WORKLOAD_VERTEX_COVER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "workload/uniform_polynomial.h"

namespace provabs {

/// Exact (exponential) vertex-cover decisions on small graphs, used as
/// ground truth when validating the Appendix A reduction.

/// True iff some vertex subset of size exactly `k` covers every edge.
/// Requires num_vertices ≤ 30.
bool HasVertexCoverOfSize(const Graph& g, uint32_t k);

/// Size of a minimum vertex cover (0 for edgeless graphs).
uint32_t MinVertexCoverSize(const Graph& g);

/// True iff `cover` (as a vertex set) covers every edge of `g`.
bool IsVertexCover(const Graph& g, const std::vector<bool>& cover);

/// Generates a random graph with `num_vertices` vertices where each of the
/// C(n,2) candidate edges is present with probability `edge_prob`.
Graph RandomGraph(uint32_t num_vertices, double edge_prob, Rng& rng);

}  // namespace provabs

#endif  // PROVABS_WORKLOAD_VERTEX_COVER_H_
