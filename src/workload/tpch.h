#ifndef PROVABS_WORKLOAD_TPCH_H_
#define PROVABS_WORKLOAD_TPCH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "core/polynomial_set.h"
#include "core/variable.h"
#include "engine/table.h"

namespace provabs {

/// Synthetic TPC-H-shaped generator (schema, key distributions and join
/// structure of the official dbgen, scaled to laptop sizes). See DESIGN.md,
/// "Substitutions": the compression algorithms consume provenance
/// polynomials, so what must be preserved is each query's provenance shape —
/// Q1: few polynomials, each with up to 128×128 (supplier, part) monomials;
/// Q5: ~25 nation-level polynomials; Q10: very many small per-customer
/// polynomials — which this generator reproduces at any scale factor.
struct TpchConfig {
  double scale_factor = 1.0;
  uint64_t seed = 42;

  size_t NumSuppliers() const { return Scaled(1000); }
  size_t NumParts() const { return Scaled(2000); }
  size_t NumCustomers() const { return Scaled(3000); }
  size_t NumOrders() const { return Scaled(10000); }
  size_t NumLineitems() const { return Scaled(40000); }
  static constexpr size_t kNumNations = 25;
  static constexpr size_t kNumRegions = 5;

 private:
  size_t Scaled(size_t base) const {
    size_t n = static_cast<size_t>(static_cast<double>(base) * scale_factor);
    return n < 1 ? 1 : n;
  }
};

/// The provenance parameterization of §4.2: the discount attribute of
/// LINEITEM is parameterized by supplier variable s_{suppkey mod G} and part
/// variable p_{partkey mod G}, with G = 128 groups by default.
struct TpchVars {
  std::vector<VariableId> supplier_vars;  ///< "s0".."s{G-1}"
  std::vector<VariableId> part_vars;      ///< "p0".."p{G-1}"
};

TpchVars MakeTpchVars(VariableTable& vars, size_t groups = 128);

/// Generates the eight-table database.
Database GenerateTpch(const TpchConfig& config, Rng& rng);

/// Q1 (pricing summary): GROUP BY (returnflag, linestatus) over LINEITEM,
/// SUM(extendedprice·(1−discount)) parameterized by (s_i, p_j). Yields at
/// most 8 polynomials, each with up to G×G monomials (the paper reports 8
/// polynomials of 11,265 monomials at 10 GB).
PolynomialSet RunTpchQ1(const Database& db, const TpchVars& vars);

/// Q5 (local supplier volume): LINEITEM ⋈ ORDERS ⋈ CUSTOMER ⋈ SUPPLIER ⋈
/// NATION with c_nationkey = s_nationkey, GROUP BY nation. Yields ≤25
/// polynomials of up to G×G monomials (paper: 25 polynomials, ~10,840
/// monomials each).
PolynomialSet RunTpchQ5(const Database& db, const TpchVars& vars);

/// Q10 (returned items): LINEITEM(returnflag='R') ⋈ ORDERS ⋈ CUSTOMER,
/// GROUP BY customer. Yields one polynomial per customer with returns —
/// many polynomials with few monomials each (paper: 993,306 polynomials,
/// 15.78 monomials on average).
PolynomialSet RunTpchQ10(const Database& db, const TpchVars& vars);

/// Identifier for the workloads shared by the benchmark harnesses.
enum class TpchQuery { kQ1, kQ5, kQ10 };

/// Dispatches to one of the three queries.
PolynomialSet RunTpchQuery(TpchQuery q, const Database& db,
                           const TpchVars& vars);

}  // namespace provabs

#endif  // PROVABS_WORKLOAD_TPCH_H_
