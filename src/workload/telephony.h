#ifndef PROVABS_WORKLOAD_TELEPHONY_H_
#define PROVABS_WORKLOAD_TELEPHONY_H_

#include <cstdint>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/abstraction_tree.h"
#include "common/random.h"
#include "core/polynomial_set.h"
#include "core/variable.h"
#include "engine/table.h"

namespace provabs {

/// The telephony-company benchmark of §4.2 (and the paper's running
/// example): Cust(ID, Plan, Zip), Calls(CID, Mo, Dur), Plans(Plan, Mo,
/// Price), and the revenue-per-zip query whose provenance is parameterized
/// by per-plan and per-month discount variables.
struct TelephonyConfig {
  size_t num_customers = 10'000;
  size_t num_plans = 128;
  size_t num_months = 12;
  size_t num_zip_codes = 100;  ///< 5-digit zips drawn from this many codes.
  uint64_t seed = 42;
};

/// Handles to the parameter variables of a telephony instance.
struct TelephonyVars {
  std::vector<VariableId> plan_vars;   ///< plan_vars[i] controls plan i.
  std::vector<VariableId> month_vars;  ///< month_vars[j] controls month j+1.
};

/// Interns "plan0..planN-1" and "m1..mN" parameter variables.
TelephonyVars MakeTelephonyVars(VariableTable& vars,
                                const TelephonyConfig& config);

/// Generates a random telephony database per §4.2: each customer has one of
/// `num_plans` plans, a zip code, and a per-month total call duration.
Database GenerateTelephony(const TelephonyConfig& config, Rng& rng);

/// Runs the revenue-per-zip query of Example 1 with provenance
/// parameterization by (plan, month); returns one polynomial per zip code.
PolynomialSet RunTelephonyQuery(const Database& db,
                                const TelephonyVars& vars);

/// Builds the small database fragment of Figure 1 exactly (customers 1–7,
/// months 1 and 3), for tests and the quickstart example. Interns the
/// paper's variable names p1, f1, y1, v, b1, b2, e, m1, m3.
struct RunningExample {
  Database db;
  /// The paper's per-plan parameter variable for each plan name.
  VariableId p1, f1, y1, v, b1, b2, e;
  VariableId m1, m3;
};
RunningExample MakeRunningExample(VariableTable& vars);

/// Runs the revenue query on the running example with the paper's
/// parameterization; yields the polynomials P1 (zip 10001) and P2
/// (zip 10002) of Example 13.
PolynomialSet RunRunningExampleQuery(const RunningExample& ex);

/// The plans abstraction tree of Figure 2:
///   Plans → { Business → {SB → {b1,b2}, e},
///             Special  → {F → {f1,f2}, Y → {y1,y2,y3}, v},
///             Standard → {p1,p2} }.
/// Leaves absent from the running example (f2, y2, y3) are included, as in
/// the figure; callers may prune to a polynomial set.
AbstractionTree MakeFigure2PlansTree(VariableTable& vars);

/// The months abstraction tree of Figure 3: Year → quarters → months.
AbstractionTree MakeFigure3MonthsTree(VariableTable& vars,
                                      size_t num_months = 12);

}  // namespace provabs

#endif  // PROVABS_WORKLOAD_TELEPHONY_H_
