#include "circuit/circuit.h"

#include <cstdio>

#include "common/macros.h"

namespace provabs {

ProvenanceCircuit::GateId ProvenanceCircuit::AddConstant(double value) {
  GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = GateKind::kConstant;
  g.constant = value;
  gates_.push_back(std::move(g));
  return id;
}

ProvenanceCircuit::GateId ProvenanceCircuit::AddVariable(VariableId var) {
  GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = GateKind::kVariable;
  g.variable = var;
  gates_.push_back(std::move(g));
  return id;
}

ProvenanceCircuit::GateId ProvenanceCircuit::AddSum(
    std::vector<GateId> children) {
  for (GateId c : children) PROVABS_CHECK(c < gates_.size());
  GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = GateKind::kAdd;
  g.children = std::move(children);
  gates_.push_back(std::move(g));
  return id;
}

ProvenanceCircuit::GateId ProvenanceCircuit::AddProduct(
    std::vector<GateId> children) {
  for (GateId c : children) PROVABS_CHECK(c < gates_.size());
  GateId id = static_cast<GateId>(gates_.size());
  Gate g;
  g.kind = GateKind::kMul;
  g.children = std::move(children);
  gates_.push_back(std::move(g));
  return id;
}

size_t ProvenanceCircuit::EdgeCount() const {
  size_t edges = 0;
  for (const Gate& g : gates_) edges += g.children.size();
  return edges;
}

double ProvenanceCircuit::Evaluate(const Valuation& valuation) const {
  PROVABS_CHECK(output_ != kNoGate);
  std::vector<double> value(gates_.size(), 0.0);
  for (GateId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kConstant:
        value[i] = g.constant;
        break;
      case GateKind::kVariable:
        value[i] = valuation.Get(g.variable);
        break;
      case GateKind::kAdd: {
        double sum = 0.0;
        for (GateId c : g.children) sum += value[c];
        value[i] = sum;
        break;
      }
      case GateKind::kMul: {
        double product = 1.0;
        for (GateId c : g.children) product *= value[c];
        value[i] = product;
        break;
      }
    }
  }
  return value[output_];
}

Polynomial ProvenanceCircuit::ToPolynomial() const {
  PROVABS_CHECK(output_ != kNoGate);
  std::vector<Polynomial> value(gates_.size());
  for (GateId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kConstant:
        value[i] = Polynomial::FromMonomials({Monomial(g.constant, {})});
        break;
      case GateKind::kVariable:
        value[i] = VariablePolynomial(g.variable);
        break;
      case GateKind::kAdd: {
        Polynomial sum;
        for (GateId c : g.children) sum = Add(sum, value[c]);
        value[i] = std::move(sum);
        break;
      }
      case GateKind::kMul: {
        Polynomial product = OnePolynomial();
        for (GateId c : g.children) product = Multiply(product, value[c]);
        value[i] = std::move(product);
        break;
      }
    }
  }
  return value[output_];
}

ProvenanceCircuit ProvenanceCircuit::ApplySubstitution(
    const std::unordered_map<VariableId, VariableId>& map) const {
  ProvenanceCircuit out = *this;
  for (Gate& g : out.gates_) {
    if (g.kind == GateKind::kVariable) {
      auto it = map.find(g.variable);
      if (it != map.end()) g.variable = it->second;
    }
  }
  return out;
}

Status ProvenanceCircuit::Validate() const {
  if (output_ == kNoGate) {
    return Status::FailedPrecondition("circuit has no output gate");
  }
  if (output_ >= gates_.size()) {
    return Status::Internal("output gate out of range");
  }
  for (GateId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kConstant:
        if (!g.children.empty()) {
          return Status::Internal("constant gate has children");
        }
        break;
      case GateKind::kVariable:
        if (g.variable == kInvalidVariable) {
          return Status::Internal("variable gate without a variable");
        }
        break;
      case GateKind::kAdd:
      case GateKind::kMul:
        if (g.children.empty()) {
          return Status::Internal("operator gate without children");
        }
        for (GateId c : g.children) {
          if (c >= i) {
            return Status::Internal(
                "gate children must precede it (topological order)");
          }
        }
        break;
    }
  }
  return Status::OK();
}

std::string ProvenanceCircuit::ToString(const VariableTable& vars) const {
  PROVABS_CHECK(output_ != kNoGate);
  std::vector<std::string> text(gates_.size());
  for (GateId i = 0; i < gates_.size(); ++i) {
    const Gate& g = gates_[i];
    switch (g.kind) {
      case GateKind::kConstant: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%g", g.constant);
        text[i] = buf;
        break;
      }
      case GateKind::kVariable:
        text[i] = vars.NameOf(g.variable);
        break;
      case GateKind::kAdd:
      case GateKind::kMul: {
        std::string s = "(";
        const char* op = g.kind == GateKind::kAdd ? " + " : "*";
        for (size_t c = 0; c < g.children.size(); ++c) {
          if (c > 0) s += op;
          s += text[g.children[c]];
        }
        s += ")";
        text[i] = std::move(s);
        break;
      }
    }
  }
  return text[output_];
}

}  // namespace provabs
