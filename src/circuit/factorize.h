#ifndef PROVABS_CIRCUIT_FACTORIZE_H_
#define PROVABS_CIRCUIT_FACTORIZE_H_

#include <vector>

#include "circuit/circuit.h"
#include "core/polynomial.h"
#include "core/polynomial_set.h"

namespace provabs {

/// Conversions between flat provenance polynomials and circuits.

/// The trivial sum-of-products encoding: one product gate per monomial,
/// one top-level sum. Size is proportional to |P|_M — the baseline the
/// factorized form is measured against.
ProvenanceCircuit FlatCircuit(const Polynomial& poly);

/// Greedy recursive factorization: repeatedly pulls out the variable power
/// occurring in the most monomials (Horner-style),
///   P  =  v^e · Q + R,
/// recursing on Q and R. For the paper's workloads — monomials of the form
/// c·s_i·p_j — this factors each polynomial into Σ_i s_i·(Σ_j c·p_j),
/// roughly halving the edge count; in general it never does worse than the
/// flat encoding by more than a constant. Lossless: ToPolynomial() returns
/// the input exactly.
ProvenanceCircuit FactorizePolynomial(const Polynomial& poly);

/// Factorizes every polynomial of a set.
std::vector<ProvenanceCircuit> FactorizeSet(const PolynomialSet& polys);

/// Size accounting for storage comparisons (Fig. "storage" discussions of
/// §5): gates + edges of a circuit collection.
struct CircuitStats {
  size_t gates = 0;
  size_t edges = 0;
};
CircuitStats StatsOf(const std::vector<ProvenanceCircuit>& circuits);

}  // namespace provabs

#endif  // PROVABS_CIRCUIT_FACTORIZE_H_
