#ifndef PROVABS_CIRCUIT_CIRCUIT_H_
#define PROVABS_CIRCUIT_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "core/polynomial.h"
#include "core/valuation.h"
#include "core/variable.h"

namespace provabs {

/// Arithmetic provenance circuits — the lossless factorized representation
/// of provenance discussed in §5 of the paper (Deutch et al. "Circuits for
/// datalog provenance", Olteanu & Závodný on factorized representations).
/// The paper names combining its lossy abstraction with such lossless
/// storage "an important goal for future work"; this module provides that
/// substrate: polynomials can be factorized into circuits for storage and
/// shipped, and abstraction composes (substitute leaves, §ApplySubstitution)
/// without expanding back to a flat polynomial.
///
/// Gates live in one arena vector and reference children by index — the
/// polynomial DAG needs no per-node allocation or manual pointer management
/// and is trivially serializable/copyable.
class ProvenanceCircuit {
 public:
  enum class GateKind : uint8_t {
    kConstant,  ///< Leaf: a rational coefficient.
    kVariable,  ///< Leaf: a provenance variable.
    kAdd,       ///< Sum of children.
    kMul,       ///< Product of children.
  };

  using GateId = uint32_t;
  static constexpr GateId kNoGate = 0xFFFFFFFFu;

  struct Gate {
    GateKind kind = GateKind::kConstant;
    double constant = 0.0;                 ///< kConstant only.
    VariableId variable = kInvalidVariable;  ///< kVariable only.
    std::vector<GateId> children;          ///< kAdd / kMul only.
  };

  ProvenanceCircuit() = default;

  /// Gate constructors; children must already exist (indices are always
  /// topologically ordered: children precede parents).
  GateId AddConstant(double value);
  GateId AddVariable(VariableId var);
  GateId AddSum(std::vector<GateId> children);
  GateId AddProduct(std::vector<GateId> children);

  /// Designates the output gate. Must be called before evaluation.
  void SetOutput(GateId gate) { output_ = gate; }
  GateId output() const { return output_; }

  size_t gate_count() const { return gates_.size(); }
  const Gate& gate(GateId id) const { return gates_[id]; }

  /// Total number of edges (Σ fan-ins) — the circuit size measure used when
  /// comparing against the flat polynomial's monomial count.
  size_t EdgeCount() const;

  /// Evaluates the circuit bottom-up under `valuation` (variables default
  /// to 1.0, as in Valuation). O(gates + edges).
  double Evaluate(const Valuation& valuation) const;

  /// Expands the circuit back into a canonical polynomial. Exponential in
  /// the worst case (that is the point of factorization); intended for
  /// tests and for small circuits.
  Polynomial ToPolynomial() const;

  /// Rewrites every variable leaf through `map` (identity for absent
  /// entries) — abstraction applied WITHOUT expanding the circuit. The
  /// result represents P↓S whenever `map` comes from a VVS.
  ProvenanceCircuit ApplySubstitution(
      const std::unordered_map<VariableId, VariableId>& map) const;

  /// Structural validation: children indices in range and topologically
  /// ordered, output set, leaves well-formed.
  Status Validate() const;

  /// Debug rendering, e.g. "((2 + x)*y)".
  std::string ToString(const VariableTable& vars) const;

 private:
  std::vector<Gate> gates_;
  GateId output_ = kNoGate;
};

}  // namespace provabs

#endif  // PROVABS_CIRCUIT_CIRCUIT_H_
