#include "circuit/factorize.h"

#include <algorithm>
#include <unordered_map>

#include "common/macros.h"

namespace provabs {

namespace {

/// Emits a product gate for one monomial (coefficient folded in; the
/// coefficient-only case emits a constant gate).
ProvenanceCircuit::GateId EmitMonomial(ProvenanceCircuit& circuit,
                                       const Monomial& m) {
  std::vector<ProvenanceCircuit::GateId> parts;
  if (m.coefficient() != 1.0 || m.factors().empty()) {
    parts.push_back(circuit.AddConstant(m.coefficient()));
  }
  for (const Factor& f : m.factors()) {
    for (uint32_t e = 0; e < f.exp; ++e) {
      parts.push_back(circuit.AddVariable(f.var));
    }
  }
  if (parts.size() == 1) return parts[0];
  return circuit.AddProduct(std::move(parts));
}

/// A working monomial during factorization: coefficient + mutable factors.
struct Term {
  double coefficient;
  std::vector<Factor> factors;
};

/// Recursive greedy factoring over `terms`; emits gates into `circuit` and
/// returns the gate computing their sum.
ProvenanceCircuit::GateId FactorizeTerms(ProvenanceCircuit& circuit,
                                         std::vector<Term> terms) {
  PROVABS_CHECK(!terms.empty());
  if (terms.size() == 1) {
    return EmitMonomial(circuit,
                        Monomial(terms[0].coefficient, terms[0].factors));
  }

  // Most frequent variable across terms.
  std::unordered_map<VariableId, uint32_t> occurrences;
  for (const Term& t : terms) {
    for (const Factor& f : t.factors) ++occurrences[f.var];
  }
  VariableId best = kInvalidVariable;
  uint32_t best_count = 1;  // Require at least two occurrences to factor.
  for (const auto& [var, count] : occurrences) {
    if (count > best_count || (count == best_count && var < best)) {
      if (count >= 2) {
        best = var;
        best_count = count;
      }
    }
  }

  if (best == kInvalidVariable) {
    // No sharing: flat sum of the remaining terms.
    std::vector<ProvenanceCircuit::GateId> parts;
    parts.reserve(terms.size());
    for (const Term& t : terms) {
      parts.push_back(
          EmitMonomial(circuit, Monomial(t.coefficient, t.factors)));
    }
    return circuit.AddSum(std::move(parts));
  }

  // Split: terms containing `best` (with one power of it removed) vs rest.
  std::vector<Term> with;
  std::vector<Term> without;
  for (Term& t : terms) {
    bool contains = false;
    for (Factor& f : t.factors) {
      if (f.var == best) {
        contains = true;
        if (--f.exp == 0) {
          f = t.factors.back();
          t.factors.pop_back();
        }
        break;
      }
    }
    (contains ? with : without).push_back(std::move(t));
  }
  PROVABS_CHECK(with.size() >= 2);

  ProvenanceCircuit::GateId var_gate = circuit.AddVariable(best);
  ProvenanceCircuit::GateId quotient =
      FactorizeTerms(circuit, std::move(with));
  ProvenanceCircuit::GateId product =
      circuit.AddProduct({var_gate, quotient});
  if (without.empty()) return product;
  ProvenanceCircuit::GateId rest =
      FactorizeTerms(circuit, std::move(without));
  return circuit.AddSum({product, rest});
}

}  // namespace

ProvenanceCircuit FlatCircuit(const Polynomial& poly) {
  ProvenanceCircuit circuit;
  if (poly.monomials().empty()) {
    circuit.SetOutput(circuit.AddConstant(0.0));
    return circuit;
  }
  std::vector<ProvenanceCircuit::GateId> parts;
  parts.reserve(poly.SizeM());
  for (const Monomial& m : poly.monomials()) {
    parts.push_back(EmitMonomial(circuit, m));
  }
  circuit.SetOutput(parts.size() == 1 ? parts[0]
                                      : circuit.AddSum(std::move(parts)));
  return circuit;
}

ProvenanceCircuit FactorizePolynomial(const Polynomial& poly) {
  ProvenanceCircuit circuit;
  if (poly.monomials().empty()) {
    circuit.SetOutput(circuit.AddConstant(0.0));
    return circuit;
  }
  std::vector<Term> terms;
  terms.reserve(poly.SizeM());
  for (const Monomial& m : poly.monomials()) {
    terms.push_back(Term{m.coefficient(), m.factors()});
  }
  circuit.SetOutput(FactorizeTerms(circuit, std::move(terms)));
  return circuit;
}

std::vector<ProvenanceCircuit> FactorizeSet(const PolynomialSet& polys) {
  std::vector<ProvenanceCircuit> circuits;
  circuits.reserve(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    circuits.push_back(FactorizePolynomial(p));
  }
  return circuits;
}

CircuitStats StatsOf(const std::vector<ProvenanceCircuit>& circuits) {
  CircuitStats stats;
  for (const ProvenanceCircuit& c : circuits) {
    stats.gates += c.gate_count();
    stats.edges += c.EdgeCount();
  }
  return stats;
}

}  // namespace provabs
