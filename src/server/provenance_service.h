#ifndef PROVABS_SERVER_PROVENANCE_SERVICE_H_
#define PROVABS_SERVER_PROVENANCE_SERVICE_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "parallel/thread_pool.h"
#include "server/artifact_store.h"
#include "server/evaluate_batcher.h"
#include "server/wire_protocol.h"

namespace provabs {

struct ServiceOptions {
  /// Byte budget of the artifact + result cache.
  size_t cache_bytes = size_t{256} << 20;  // 256 MiB
  /// Worker threads for batched evaluation; 0 = hardware concurrency.
  size_t eval_threads = 0;
  /// Cache shards (independent mutex + LRU partitions); 0 = store default.
  size_t cache_shards = 0;
  /// Upper bound on the scenarios a single EvaluateScenarioProgram request
  /// may expand to. A family's size is known after compilation and before
  /// any expansion, so an oversized program is rejected without
  /// materializing a single valuation.
  uint64_t max_scenarios_per_request = uint64_t{1} << 20;
  /// Scenarios expanded and fed to the batcher per chunk; bounds the
  /// transient dense-valuation memory of huge families.
  uint64_t scenario_chunk = 1024;
  /// Upper bound on an encoded response payload. A request whose response
  /// would exceed it (a `values`-shaped scenario sweep over a large
  /// family, say) gets a structured kOutOfRange error instead of dying in
  /// the transport's frame-size check. 0 = the protocol's kMaxFrameBytes.
  uint64_t max_response_bytes = 0;
  /// Test-only hook, invoked on the computing thread at the start of every
  /// FULL compression run that single-flight actually executes — not for
  /// cache hits, not for deduplicated waiters, and not for fills answered
  /// by the delta-patch path (which is exactly how the incremental tests
  /// assert an append skipped the full DP). The concurrency test battery
  /// uses it to count DP executions and to hold leaders at a barrier;
  /// production leaves it empty.
  std::function<void(const ArtifactStore::ResultKey&)> compress_hook;
};

/// The serving core: load / compress / tradeoff / evaluate over named
/// artifacts, decoupled from any transport so it is unit-testable without
/// sockets. `tools/provabs_server` wraps it in a socket accept loop; the
/// CLI's offline pipeline and the server share the same algorithm layer
/// underneath (algo/, core/, io/).
///
/// All handlers are thread-safe and may be called concurrently from many
/// connection threads. Application errors never surface as C++ failures:
/// every handler returns a Response whose code/message carry the Status.
class ProvenanceService {
 public:
  explicit ProvenanceService(const ServiceOptions& options = {});

  ProvenanceService(const ProvenanceService&) = delete;
  ProvenanceService& operator=(const ProvenanceService&) = delete;

  Response Load(const LoadRequest& req);
  Response Append(const AppendRequest& req);
  Response Compress(const CompressRequest& req);
  Response Evaluate(const EvaluateRequest& req);
  Response EvaluateScenarioProgram(const EvaluateScenarioProgramRequest& req);
  Response Info(const InfoRequest& req);
  Response Tradeoff(const TradeoffRequest& req);
  Response ListAlgos(const ListAlgosRequest& req);
  Response ListBackends(const ListBackendsRequest& req);

  /// Decodes one request payload, dispatches it, and encodes the response.
  /// Malformed payloads yield an encoded error response (the connection can
  /// keep going). Sets `*shutdown` when the payload was a shutdown request.
  std::string HandleFrame(std::string_view payload, bool* shutdown);

  ArtifactStore& store() { return store_; }
  EvaluateBatcher& batcher() { return batcher_; }

  /// Installed by the socket front end (Server) so every response's stats
  /// block carries the transport counters; pass nullptr to uninstall.
  /// Serving without a server simply leaves the counters at zero.
  void SetTransportStatsProvider(std::function<void(ServerStats&)> provider);

 private:
  /// HandleFrame's decode/dispatch/encode core, before the response-size
  /// guard is applied.
  std::string HandleFrameImpl(std::string_view payload, bool* shutdown);
  /// Fills the stats section of `resp` from store + batcher counters.
  void AttachStats(Response& resp);
  /// The single compress dispatch shared by Compress and
  /// Evaluate-over-compressed: resolves `algo` through the process-wide
  /// CompressorRegistry (unknown names fail listing the registered set),
  /// then returns the cached result, waits on an identical in-flight
  /// request, or runs the algorithm and caches it (single-flight; see
  /// ArtifactStore::GetOrCompute) — against
  /// the caller's `artifact` snapshot (never re-fetched, so a concurrent
  /// reload cannot swap the VariableTable out from under ids the caller
  /// already resolved). On success fills the compress section of `resp`
  /// (including cache_hit/dedup_hit) and returns the result; on failure
  /// fills code/message and returns nullptr.
  std::shared_ptr<const ArtifactStore::CompressedResult> CompressInternal(
      const std::shared_ptr<const Artifact>& artifact,
      const std::string& artifact_name, const std::string& forest_name,
      const std::string& algo, uint64_t bound, Response& resp);

  /// The compute function CompressInternal hands to GetOrCompute: tries
  /// the delta-patch path against cached ancestor generations first (sets
  /// `*patched` and bumps the delta counters), then falls back to the full
  /// algorithm run (which is when compress_hook_ fires).
  StatusOr<ArtifactStore::CompressedResult> ComputeCompression(
      const std::shared_ptr<const Artifact>& artifact,
      const AbstractionForest& forest, const Compressor& compressor,
      const ArtifactStore::ResultKey& key);

  ArtifactStore store_;
  ThreadPool pool_;
  EvaluateBatcher batcher_;
  std::function<void(const ArtifactStore::ResultKey&)> compress_hook_;
  uint64_t max_scenarios_per_request_;
  uint64_t scenario_chunk_;
  uint64_t max_response_bytes_;
  /// Incremental-update telemetry (see ServerStats for the taxonomy).
  std::atomic<uint64_t> delta_patched_{0};
  std::atomic<uint64_t> delta_fallback_full_{0};

  std::mutex transport_mutex_;
  std::function<void(ServerStats&)> transport_stats_;  // guarded above
};

}  // namespace provabs

#endif  // PROVABS_SERVER_PROVENANCE_SERVICE_H_
