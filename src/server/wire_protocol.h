#ifndef PROVABS_SERVER_WIRE_PROTOCOL_H_
#define PROVABS_SERVER_WIRE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "algo/tradeoff_curve.h"
#include "common/status.h"
#include "common/statusor.h"

namespace provabs {

/// Wire protocol of the provenance-serving subsystem.
///
/// The paper's deployment story (§1, "Offline vs. Online Compression")
/// compresses provenance once on strong hardware; analysts then run
/// interactive what-if evaluations against the compact artifact. The
/// long-lived `provabs_server` keeps deserialized artifacts and compressed
/// results resident so those interactions never pay process startup or the
/// compression DP again. This header defines the messages exchanged between
/// `provabs_cli` remote subcommands and the server.
///
/// Framing on the socket:
///
///   [u32 little-endian payload length] [payload]
///
/// Each payload reuses the `io/serializer.h` "PVAB" conventions:
///
///   [magic "PVAB"] [version u8] [kind u8] [body]
///
/// Request kinds occupy 16..31 and responses 32..47, disjoint from the
/// artifact kinds (1..4) of io/serializer.cc, so a stored artifact can never
/// be mistaken for a protocol message. All decoders are bounds-checked and
/// return `Status` errors on malformed input; they never abort (the bytes
/// come from the network).

/// Protocol version byte. Bump whenever any message layout changes so a
/// version-skewed peer gets a clean "unsupported protocol version" error
/// instead of silently misparsing fields. History: 1 = PR 2 initial
/// protocol; 2 = single-flight counters (dedup_hits/inflight_waiters in
/// the stats block, per-response dedup_hit byte); 3 = ListAlgos request
/// (kind 22) and the per-algorithm capability records in the response;
/// 4 = ListBackends request (kind 23), the per-backend capability records
/// and eval_backend echo in the response, and the eval_backend field of
/// EvaluateRequest; 5 = EvaluateScenarioProgram request (kind 24), the
/// batcher/program-cache counters in the stats block, and the
/// scenario-result fields (scenario_count, program_cache_hit,
/// scenario_indices, objectives) in the response; 6 = event-loop transport
/// counters (active/rejected connections, idle reaps, loop wakeups) in the
/// stats block plus the kDeadlineExceeded/kUnavailable status codes used by
/// admission rejection and client RPC deadlines; 7 = Append request
/// (kind 25), the delta_patched/delta_fallback_full counters in the stats
/// block (no spare fields remained in the fixed-order sequence), and the
/// per-response delta_patched byte.
inline constexpr uint8_t kWireVersion = 7;

enum class MessageKind : uint8_t {
  kLoadRequest = 16,
  kCompressRequest = 17,
  kEvaluateRequest = 18,
  kInfoRequest = 19,
  kTradeoffRequest = 20,
  kShutdownRequest = 21,
  kListAlgosRequest = 22,
  kListBackendsRequest = 23,
  kEvaluateScenarioProgramRequest = 24,
  kAppendRequest = 25,
  kResponse = 32,
};

/// Installs (or replaces) a named artifact on the server. `polys_bytes` is a
/// serialized PolynomialSet buffer (SerializePolynomialSet); `forests` pairs
/// a forest name with a serialized AbstractionForest buffer. When
/// `polys_bytes` is empty the artifact must already exist and the forests
/// are merged into it (the server rebuilds from its retained raw bytes).
struct LoadRequest {
  std::string artifact;
  std::string polys_bytes;
  std::vector<std::pair<std::string, std::string>> forests;
};

/// Compresses a loaded artifact under monomial bound `bound` using forest
/// `forest` ("default" when loaded unnamed). `algo` names any registered
/// compressor (built-ins: "opt", "greedy", "brute", "prox"; discover the
/// live set with ListAlgos). Results are cached server-side keyed by
/// (artifact generation, forest, bound, algo); a repeat request is answered
/// without re-running the algorithm and the response carries
/// `cache_hit = true`.
struct CompressRequest {
  std::string artifact;
  std::string forest = "default";
  std::string algo = "opt";
  uint64_t bound = 0;
};

/// Evaluates the artifact's polynomials under a valuation (variable name →
/// value; unassigned variables default to 1.0). When `compressed` is true
/// the evaluation runs over P↓S for the (forest, bound, algo) compression
/// instead, reusing (or populating) the server's result cache.
struct EvaluateRequest {
  std::string artifact;
  std::vector<std::pair<std::string, double>> assignments;
  bool compressed = false;
  std::string forest = "default";
  std::string algo = "opt";
  uint64_t bound = 0;
  /// Evaluation backend to route through (core/evaluation_backend.h).
  /// Empty = the registry's auto policy for whatever batch this request is
  /// coalesced into; unknown names fail listing the registered set
  /// (discover them with ListBackends). All backends return bitwise
  /// identical values — this selects a strategy, never a result.
  std::string eval_backend;
};

/// How EvaluateScenarioProgram folds the per-scenario value vectors into
/// the response. A scenario's OBJECTIVE is the sum of its polynomial
/// values in polynomial order (left to right) — for the paper's telephony
/// workload, total revenue under that what-if.
enum class ScenarioShape : uint8_t {
  kValues = 0,  ///< every scenario's full value vector, scenario-major
  kArgmin = 1,  ///< the scenario minimizing the objective (first on ties)
  kArgmax = 2,  ///< the scenario maximizing the objective (first on ties)
  kTopK = 3,    ///< the top_k scenarios by descending objective
};

/// Evaluates a whole scenario FAMILY in one round trip: `program` is
/// scenario-expression source text (src/scenario/parser.h grammar),
/// compiled server-side against the artifact (or its compressed view, like
/// EvaluateRequest) and expanded into batched dense valuations. Compiled
/// programs are cached keyed by (artifact generation, target view, source
/// hash), so repeat analyses skip parse + analysis.
struct EvaluateScenarioProgramRequest {
  std::string artifact;
  std::string program;
  bool compressed = false;
  std::string forest = "default";
  std::string algo = "opt";
  uint64_t bound = 0;
  /// Same contract as EvaluateRequest::eval_backend.
  std::string eval_backend;
  ScenarioShape shape = ScenarioShape::kValues;
  uint64_t top_k = 0;  ///< kTopK only; must be >= 1 there.
};

/// Appends polynomials to a loaded artifact WITHOUT replacing it:
/// `polys_bytes` is a serialized PolynomialSet over the SAME variable
/// table whose polynomials are added to the artifact's set in order. The
/// artifact's generation bumps, but unlike Load the server records the
/// update in the artifact's delta chain, so a later Compress against the
/// new generation can patch a cached predecessor's DP state instead of
/// re-running the full algorithm (response/stat field `delta_patched`).
struct AppendRequest {
  std::string artifact;
  std::string polys_bytes;
};

/// Queries artifact statistics (`artifact` empty = server-wide stats only).
struct InfoRequest {
  std::string artifact;
};

/// Requests the full size/granularity Pareto frontier (§2.4) for tree 0 of
/// the named forest.
struct TradeoffRequest {
  std::string artifact;
  std::string forest = "default";
};

/// Asks the server to stop accepting connections and exit cleanly.
struct ShutdownRequest {};

/// Asks for the server's registered compression algorithms and their
/// capability records, so clients route by data instead of hardcoding
/// names (`provabs_cli remote-info` surfaces the list).
struct ListAlgosRequest {};

/// Asks for the server's registered evaluation backends and their
/// capability records (`provabs_cli remote-info` surfaces the list next to
/// the algorithms).
struct ListBackendsRequest {};

/// One registered algorithm's capability record, mirroring CompressorInfo
/// (src/algo/compressor.h) on the wire.
struct AlgoCapability {
  std::string name;
  std::string summary;
  bool deterministic = false;
  bool supports_tradeoff = false;
  bool exact = false;
  /// Results are tree cuts (serializable VVS); false for grouping
  /// algorithms like "prox".
  bool produces_cut = false;
  /// CompressOptions::time_budget_ms is enforced rather than silently
  /// ignored (flag bit 4; absent in records from pre-bit-4 servers, which
  /// decodes as false — the conservative reading).
  bool supports_time_budget = false;
};

/// One registered evaluation backend's capability record, mirroring
/// EvaluationBackendInfo (src/core/evaluation_backend.h) on the wire.
struct EvalBackendCapability {
  std::string name;
  std::string summary;
  /// Evaluates several scenarios per instruction (SIMD lanes).
  bool vectorized = false;
  /// Same inputs always yield the same bits.
  bool deterministic = false;
  /// Batch width from which this backend beats the single-scenario kernel.
  uint64_t preferred_batch = 1;
  /// Speed tier for auto-routing (higher wins): naive=0, compiled=1,
  /// simd_batch=2, jit=3. Travels in bits 2-3 of the record's flags byte —
  /// spare bits, so the wire version is unchanged and pre-tier peers (which
  /// only read bits 0/1) interoperate; their records decode here as tier 0.
  uint32_t tier = 0;
};

/// Server-side cache and batching counters, included in every response so
/// clients (and the end-to-end tests) can observe cache behaviour without a
/// second round trip.
struct ServerStats {
  uint64_t artifact_count = 0;
  uint64_t result_count = 0;
  uint64_t cached_bytes = 0;
  uint64_t byte_budget = 0;
  uint64_t result_hits = 0;
  uint64_t result_misses = 0;
  uint64_t evictions = 0;
  uint64_t eval_batches = 0;
  uint64_t eval_requests = 0;
  /// Compression requests answered by waiting on another request's
  /// in-flight DP run (single-flight dedup; cumulative).
  uint64_t dedup_hits = 0;
  /// Requests blocked on an in-flight DP right now (a gauge, sampled when
  /// the response was built).
  uint64_t inflight_waiters = 0;
  /// (compiled form, backend) lane groups the EvaluateBatcher formed, and
  /// EvaluateBatch calls it dispatched (cumulative). batches/requests say
  /// how well coalescing works; these say how full the lanes were:
  /// requests/groups is the average lane width, backend_calls/groups the
  /// pool chunking per group.
  uint64_t eval_groups = 0;
  uint64_t eval_backend_calls = 0;
  /// Compiled scenario programs resident in the store, and cumulative
  /// cache hits/misses for them.
  uint64_t program_count = 0;
  uint64_t program_hits = 0;
  uint64_t program_misses = 0;
  /// Event-loop transport counters (zero when the service is driven
  /// without a socket front end, e.g. in unit tests). `active_connections`
  /// is a gauge of admitted connections; `rejected_connections` counts
  /// admission rejections (connection limit, fd exhaustion, drain);
  /// `idle_reaped` counts connections the timer wheel closed for idling
  /// past ServerOptions::idle_timeout_ms; `loop_wakeups` counts event-loop
  /// iterations (epoll_wait returns) — cumulative except the gauge.
  uint64_t active_connections = 0;
  uint64_t rejected_connections = 0;
  uint64_t idle_reaped = 0;
  uint64_t loop_wakeups = 0;
  /// Incremental-update path (cumulative): compress requests answered by
  /// patching a cached predecessor-generation DP state against the
  /// artifact's delta chain, and requests that found a usable predecessor
  /// but had to fall back to the full algorithm (frontier crossed, budget
  /// headroom exhausted, delta log truncated, ...). Requests with no
  /// cached predecessor at all count in neither.
  uint64_t delta_patched = 0;
  uint64_t delta_fallback_full = 0;
};

/// The single response envelope: `request_kind` echoes the request it
/// answers, `code`/`message` carry the `Status` error model across the wire,
/// and the remaining fields are populated per verb (zero/empty otherwise).
struct Response {
  MessageKind request_kind = MessageKind::kResponse;
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  /// Reconstructs the Status carried by `code`/`message`.
  Status ToStatus() const {
    return ok() ? Status::OK() : Status(code, message);
  }

  ServerStats stats;

  // load / info.
  uint64_t generation = 0;
  uint64_t poly_count = 0;
  uint64_t monomial_count = 0;
  uint64_t variable_count = 0;

  // compress (and evaluate over a compressed view).
  bool cache_hit = false;
  /// True when this request neither hit the cache nor ran the DP itself:
  /// it blocked on an identical request's in-flight run and shares its
  /// result (single-flight dedup).
  bool dedup_hit = false;
  /// True when this compression was produced by patching a cached
  /// predecessor generation's DP state rather than running the algorithm
  /// from scratch (see AppendRequest). Implies cache_hit == false.
  bool delta_patched = false;
  uint64_t monomial_loss = 0;
  uint64_t variable_loss = 0;
  bool adequate = false;
  std::string vvs;
  uint64_t compressed_monomials = 0;

  // evaluate.
  std::vector<double> values;
  /// Echo of the validated backend the request asked for ("" = the
  /// registry's auto policy routed it).
  std::string eval_backend;

  // tradeoff.
  std::vector<TradeoffPoint> points;

  // list-algos.
  std::vector<AlgoCapability> algos;

  // list-backends.
  std::vector<EvalBackendCapability> backends;

  // evaluate-scenario-program.
  /// Scenarios the program expanded to server-side (regardless of shape).
  uint64_t scenario_count = 0;
  /// True when the compiled program came from the store's program cache.
  bool program_cache_hit = false;
  /// Indices (into the family's expansion order) of the scenarios whose
  /// values are returned, with their objectives. For ScenarioShape::kValues
  /// both stay empty — `values` then holds every scenario's vector
  /// scenario-major (scenario i's values at [i*poly_count, (i+1)*poly_count)).
  /// For argmin/argmax/top-k, `values` holds the selected scenarios'
  /// vectors in `scenario_indices` order.
  std::vector<uint64_t> scenario_indices;
  std::vector<double> objectives;
};

/// Reads the message kind of an encoded payload without decoding the body.
StatusOr<MessageKind> PeekMessageKind(std::string_view payload);

std::string EncodeLoadRequest(const LoadRequest& req);
std::string EncodeCompressRequest(const CompressRequest& req);
std::string EncodeEvaluateRequest(const EvaluateRequest& req);
std::string EncodeInfoRequest(const InfoRequest& req);
std::string EncodeTradeoffRequest(const TradeoffRequest& req);
std::string EncodeShutdownRequest(const ShutdownRequest& req);
std::string EncodeListAlgosRequest(const ListAlgosRequest& req);
std::string EncodeListBackendsRequest(const ListBackendsRequest& req);
std::string EncodeEvaluateScenarioProgramRequest(
    const EvaluateScenarioProgramRequest& req);
std::string EncodeAppendRequest(const AppendRequest& req);
std::string EncodeResponse(const Response& resp);

StatusOr<LoadRequest> DecodeLoadRequest(std::string_view payload);
StatusOr<CompressRequest> DecodeCompressRequest(std::string_view payload);
StatusOr<EvaluateRequest> DecodeEvaluateRequest(std::string_view payload);
StatusOr<InfoRequest> DecodeInfoRequest(std::string_view payload);
StatusOr<TradeoffRequest> DecodeTradeoffRequest(std::string_view payload);
StatusOr<ShutdownRequest> DecodeShutdownRequest(std::string_view payload);
StatusOr<ListAlgosRequest> DecodeListAlgosRequest(std::string_view payload);
StatusOr<ListBackendsRequest> DecodeListBackendsRequest(
    std::string_view payload);
StatusOr<EvaluateScenarioProgramRequest> DecodeEvaluateScenarioProgramRequest(
    std::string_view payload);
StatusOr<AppendRequest> DecodeAppendRequest(std::string_view payload);
StatusOr<Response> DecodeResponse(std::string_view payload);

/// Frames larger than this are rejected before any allocation, so a corrupt
/// or hostile length prefix cannot OOM the server.
inline constexpr size_t kMaxFrameBytes = size_t{1} << 30;  // 1 GiB

/// Writes one [u32 length][payload] frame to `fd`, retrying on partial
/// writes, EINTR, and (via poll) EAGAIN, so it works on blocking and
/// non-blocking sockets alike. With `timeout_ms` > 0 the whole frame must
/// be written within that budget or kDeadlineExceeded is returned;
/// `timeout_ms` <= 0 waits forever.
Status WriteFrame(int fd, std::string_view payload, int64_t timeout_ms = 0);

/// Reads one frame from `fd`. A clean EOF on the frame boundary yields
/// kNotFound ("connection closed"); EOF mid-frame yields kOutOfRange. With
/// `timeout_ms` > 0 the whole frame must arrive within that budget or
/// kDeadlineExceeded is returned; `timeout_ms` <= 0 waits forever.
StatusOr<std::string> ReadFrame(int fd, int64_t timeout_ms = 0);

}  // namespace provabs

#endif  // PROVABS_SERVER_WIRE_PROTOCOL_H_
