#include "server/wire_protocol.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <limits>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/macros.h"
#include "io/byte_stream.h"

namespace provabs {

namespace {

constexpr char kMagic[4] = {'P', 'V', 'A', 'B'};
constexpr uint8_t kVersion = kWireVersion;

void WriteHeader(ByteWriter& w, MessageKind kind) {
  w.PutBytes(kMagic, 4);
  w.PutU8(kVersion);
  w.PutU8(static_cast<uint8_t>(kind));
}

Status CheckHeader(ByteReader& r, MessageKind expected_kind) {
  for (char expected : kMagic) {
    auto byte = r.GetU8();
    if (!byte.ok()) return byte.status();
    if (static_cast<char>(*byte) != expected) {
      return Status::InvalidArgument("bad magic (not a provabs message)");
    }
  }
  auto version = r.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind != static_cast<uint8_t>(expected_kind)) {
    return Status::InvalidArgument("payload holds a different message kind");
  }
  return Status::OK();
}

/// Same hardening as io/serializer.cc: a parsed element count must be
/// plausible for the bytes left (every element occupies at least
/// `min_bytes`), checked BEFORE reserving memory.
Status CheckCount(uint64_t count, size_t min_bytes, const ByteReader& r) {
  if (count > r.remaining() / min_bytes + 1) {
    return Status::InvalidArgument("corrupt element count in message");
  }
  return Status::OK();
}

}  // namespace

StatusOr<MessageKind> PeekMessageKind(std::string_view payload) {
  ByteReader r(payload);
  for (char expected : kMagic) {
    auto byte = r.GetU8();
    if (!byte.ok()) return byte.status();
    if (static_cast<char>(*byte) != expected) {
      return Status::InvalidArgument("bad magic (not a provabs message)");
    }
  }
  auto version = r.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::InvalidArgument("unsupported protocol version");
  }
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  switch (static_cast<MessageKind>(*kind)) {
    case MessageKind::kLoadRequest:
    case MessageKind::kCompressRequest:
    case MessageKind::kEvaluateRequest:
    case MessageKind::kInfoRequest:
    case MessageKind::kTradeoffRequest:
    case MessageKind::kShutdownRequest:
    case MessageKind::kListAlgosRequest:
    case MessageKind::kListBackendsRequest:
    case MessageKind::kEvaluateScenarioProgramRequest:
    case MessageKind::kAppendRequest:
    case MessageKind::kResponse:
      return static_cast<MessageKind>(*kind);
  }
  return Status::InvalidArgument("unknown message kind");
}

// ----------------------------------------------------------- requests ----

std::string EncodeLoadRequest(const LoadRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kLoadRequest);
  w.PutString(req.artifact);
  w.PutString(req.polys_bytes);
  w.PutVarint(req.forests.size());
  for (const auto& [name, bytes] : req.forests) {
    w.PutString(name);
    w.PutString(bytes);
  }
  return std::move(w).Release();
}

StatusOr<LoadRequest> DecodeLoadRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kLoadRequest));
  LoadRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  auto polys = r.GetString();
  if (!polys.ok()) return polys.status();
  req.polys_bytes = std::move(*polys);
  auto count = r.GetVarint();
  if (!count.ok()) return count.status();
  PROVABS_RETURN_IF_ERROR(CheckCount(*count, 2, r));
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    auto bytes = r.GetString();
    if (!bytes.ok()) return bytes.status();
    req.forests.emplace_back(std::move(*name), std::move(*bytes));
  }
  return req;
}

std::string EncodeCompressRequest(const CompressRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kCompressRequest);
  w.PutString(req.artifact);
  w.PutString(req.forest);
  w.PutString(req.algo);
  w.PutVarint(req.bound);
  return std::move(w).Release();
}

StatusOr<CompressRequest> DecodeCompressRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kCompressRequest));
  CompressRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  auto forest = r.GetString();
  if (!forest.ok()) return forest.status();
  req.forest = std::move(*forest);
  auto algo = r.GetString();
  if (!algo.ok()) return algo.status();
  req.algo = std::move(*algo);
  auto bound = r.GetVarint();
  if (!bound.ok()) return bound.status();
  req.bound = *bound;
  return req;
}

std::string EncodeEvaluateRequest(const EvaluateRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kEvaluateRequest);
  w.PutString(req.artifact);
  w.PutVarint(req.assignments.size());
  for (const auto& [name, value] : req.assignments) {
    w.PutString(name);
    w.PutDouble(value);
  }
  w.PutU8(req.compressed ? 1 : 0);
  w.PutString(req.forest);
  w.PutString(req.algo);
  w.PutVarint(req.bound);
  w.PutString(req.eval_backend);
  return std::move(w).Release();
}

StatusOr<EvaluateRequest> DecodeEvaluateRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kEvaluateRequest));
  EvaluateRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  auto count = r.GetVarint();
  if (!count.ok()) return count.status();
  // An assignment is at least a 1-byte name length plus an 8-byte double.
  PROVABS_RETURN_IF_ERROR(CheckCount(*count, 9, r));
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    auto value = r.GetDouble();
    if (!value.ok()) return value.status();
    req.assignments.emplace_back(std::move(*name), *value);
  }
  auto compressed = r.GetU8();
  if (!compressed.ok()) return compressed.status();
  req.compressed = *compressed != 0;
  auto forest = r.GetString();
  if (!forest.ok()) return forest.status();
  req.forest = std::move(*forest);
  auto algo = r.GetString();
  if (!algo.ok()) return algo.status();
  req.algo = std::move(*algo);
  auto bound = r.GetVarint();
  if (!bound.ok()) return bound.status();
  req.bound = *bound;
  auto eval_backend = r.GetString();
  if (!eval_backend.ok()) return eval_backend.status();
  req.eval_backend = std::move(*eval_backend);
  return req;
}

std::string EncodeInfoRequest(const InfoRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kInfoRequest);
  w.PutString(req.artifact);
  return std::move(w).Release();
}

StatusOr<InfoRequest> DecodeInfoRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kInfoRequest));
  InfoRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  return req;
}

std::string EncodeTradeoffRequest(const TradeoffRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kTradeoffRequest);
  w.PutString(req.artifact);
  w.PutString(req.forest);
  return std::move(w).Release();
}

StatusOr<TradeoffRequest> DecodeTradeoffRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kTradeoffRequest));
  TradeoffRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  auto forest = r.GetString();
  if (!forest.ok()) return forest.status();
  req.forest = std::move(*forest);
  return req;
}

std::string EncodeShutdownRequest(const ShutdownRequest&) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kShutdownRequest);
  return std::move(w).Release();
}

StatusOr<ShutdownRequest> DecodeShutdownRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kShutdownRequest));
  return ShutdownRequest{};
}

std::string EncodeListAlgosRequest(const ListAlgosRequest&) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kListAlgosRequest);
  return std::move(w).Release();
}

StatusOr<ListAlgosRequest> DecodeListAlgosRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kListAlgosRequest));
  return ListAlgosRequest{};
}

std::string EncodeListBackendsRequest(const ListBackendsRequest&) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kListBackendsRequest);
  return std::move(w).Release();
}

StatusOr<ListBackendsRequest> DecodeListBackendsRequest(
    std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kListBackendsRequest));
  return ListBackendsRequest{};
}

std::string EncodeEvaluateScenarioProgramRequest(
    const EvaluateScenarioProgramRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kEvaluateScenarioProgramRequest);
  w.PutString(req.artifact);
  w.PutString(req.program);
  w.PutU8(req.compressed ? 1 : 0);
  w.PutString(req.forest);
  w.PutString(req.algo);
  w.PutVarint(req.bound);
  w.PutString(req.eval_backend);
  w.PutU8(static_cast<uint8_t>(req.shape));
  w.PutVarint(req.top_k);
  return std::move(w).Release();
}

StatusOr<EvaluateScenarioProgramRequest> DecodeEvaluateScenarioProgramRequest(
    std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(
      CheckHeader(r, MessageKind::kEvaluateScenarioProgramRequest));
  EvaluateScenarioProgramRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  auto program = r.GetString();
  if (!program.ok()) return program.status();
  req.program = std::move(*program);
  auto compressed = r.GetU8();
  if (!compressed.ok()) return compressed.status();
  req.compressed = *compressed != 0;
  auto forest = r.GetString();
  if (!forest.ok()) return forest.status();
  req.forest = std::move(*forest);
  auto algo = r.GetString();
  if (!algo.ok()) return algo.status();
  req.algo = std::move(*algo);
  auto bound = r.GetVarint();
  if (!bound.ok()) return bound.status();
  req.bound = *bound;
  auto eval_backend = r.GetString();
  if (!eval_backend.ok()) return eval_backend.status();
  req.eval_backend = std::move(*eval_backend);
  auto shape = r.GetU8();
  if (!shape.ok()) return shape.status();
  if (*shape > static_cast<uint8_t>(ScenarioShape::kTopK)) {
    return Status::InvalidArgument("unknown scenario result shape");
  }
  req.shape = static_cast<ScenarioShape>(*shape);
  auto top_k = r.GetVarint();
  if (!top_k.ok()) return top_k.status();
  req.top_k = *top_k;
  return req;
}

std::string EncodeAppendRequest(const AppendRequest& req) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kAppendRequest);
  w.PutString(req.artifact);
  w.PutString(req.polys_bytes);
  return std::move(w).Release();
}

StatusOr<AppendRequest> DecodeAppendRequest(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kAppendRequest));
  AppendRequest req;
  auto artifact = r.GetString();
  if (!artifact.ok()) return artifact.status();
  req.artifact = std::move(*artifact);
  auto polys = r.GetString();
  if (!polys.ok()) return polys.status();
  req.polys_bytes = std::move(*polys);
  return req;
}

// ----------------------------------------------------------- response ----

std::string EncodeResponse(const Response& resp) {
  ByteWriter w;
  WriteHeader(w, MessageKind::kResponse);
  w.PutU8(static_cast<uint8_t>(resp.request_kind));
  w.PutU8(static_cast<uint8_t>(resp.code));
  w.PutString(resp.message);

  w.PutVarint(resp.stats.artifact_count);
  w.PutVarint(resp.stats.result_count);
  w.PutVarint(resp.stats.cached_bytes);
  w.PutVarint(resp.stats.byte_budget);
  w.PutVarint(resp.stats.result_hits);
  w.PutVarint(resp.stats.result_misses);
  w.PutVarint(resp.stats.evictions);
  w.PutVarint(resp.stats.eval_batches);
  w.PutVarint(resp.stats.eval_requests);
  w.PutVarint(resp.stats.dedup_hits);
  w.PutVarint(resp.stats.inflight_waiters);
  w.PutVarint(resp.stats.eval_groups);
  w.PutVarint(resp.stats.eval_backend_calls);
  w.PutVarint(resp.stats.program_count);
  w.PutVarint(resp.stats.program_hits);
  w.PutVarint(resp.stats.program_misses);
  w.PutVarint(resp.stats.active_connections);
  w.PutVarint(resp.stats.rejected_connections);
  w.PutVarint(resp.stats.idle_reaped);
  w.PutVarint(resp.stats.loop_wakeups);
  w.PutVarint(resp.stats.delta_patched);
  w.PutVarint(resp.stats.delta_fallback_full);

  w.PutVarint(resp.generation);
  w.PutVarint(resp.poly_count);
  w.PutVarint(resp.monomial_count);
  w.PutVarint(resp.variable_count);

  w.PutU8(resp.cache_hit ? 1 : 0);
  w.PutU8(resp.dedup_hit ? 1 : 0);
  w.PutU8(resp.delta_patched ? 1 : 0);
  w.PutVarint(resp.monomial_loss);
  w.PutVarint(resp.variable_loss);
  w.PutU8(resp.adequate ? 1 : 0);
  w.PutString(resp.vvs);
  w.PutVarint(resp.compressed_monomials);

  w.PutVarint(resp.values.size());
  for (double v : resp.values) w.PutDouble(v);

  w.PutVarint(resp.points.size());
  for (const TradeoffPoint& p : resp.points) {
    w.PutVarint(p.size_m);
    w.PutVarint(p.variable_loss);
  }

  w.PutVarint(resp.algos.size());
  for (const AlgoCapability& a : resp.algos) {
    w.PutString(a.name);
    w.PutString(a.summary);
    uint8_t flags = 0;
    if (a.deterministic) flags |= 1;
    if (a.supports_tradeoff) flags |= 2;
    if (a.exact) flags |= 4;
    if (a.produces_cut) flags |= 8;
    if (a.supports_time_budget) flags |= 16;
    w.PutU8(flags);
  }

  w.PutString(resp.eval_backend);
  w.PutVarint(resp.backends.size());
  for (const EvalBackendCapability& b : resp.backends) {
    w.PutString(b.name);
    w.PutString(b.summary);
    uint8_t flags = 0;
    if (b.vectorized) flags |= 1;
    if (b.deterministic) flags |= 2;
    // Tier rides in the spare bits 2-3 (values 0-3 cover the built-ins);
    // pre-tier decoders ignore them, so no wire-version bump.
    flags |= static_cast<uint8_t>((b.tier & 0x3u) << 2);
    w.PutU8(flags);
    w.PutVarint(b.preferred_batch);
  }

  w.PutVarint(resp.scenario_count);
  w.PutU8(resp.program_cache_hit ? 1 : 0);
  w.PutVarint(resp.scenario_indices.size());
  for (uint64_t index : resp.scenario_indices) w.PutVarint(index);
  w.PutVarint(resp.objectives.size());
  for (double objective : resp.objectives) w.PutDouble(objective);
  return std::move(w).Release();
}

StatusOr<Response> DecodeResponse(std::string_view payload) {
  ByteReader r(payload);
  PROVABS_RETURN_IF_ERROR(CheckHeader(r, MessageKind::kResponse));
  Response resp;

  auto request_kind = r.GetU8();
  if (!request_kind.ok()) return request_kind.status();
  resp.request_kind = static_cast<MessageKind>(*request_kind);
  auto code = r.GetU8();
  if (!code.ok()) return code.status();
  if (*code > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("unknown status code in response");
  }
  resp.code = static_cast<StatusCode>(*code);
  auto message = r.GetString();
  if (!message.ok()) return message.status();
  resp.message = std::move(*message);

  uint64_t* stat_fields[] = {
      &resp.stats.artifact_count, &resp.stats.result_count,
      &resp.stats.cached_bytes,   &resp.stats.byte_budget,
      &resp.stats.result_hits,    &resp.stats.result_misses,
      &resp.stats.evictions,      &resp.stats.eval_batches,
      &resp.stats.eval_requests,  &resp.stats.dedup_hits,
      &resp.stats.inflight_waiters, &resp.stats.eval_groups,
      &resp.stats.eval_backend_calls, &resp.stats.program_count,
      &resp.stats.program_hits,   &resp.stats.program_misses,
      &resp.stats.active_connections, &resp.stats.rejected_connections,
      &resp.stats.idle_reaped,    &resp.stats.loop_wakeups,
      &resp.stats.delta_patched,  &resp.stats.delta_fallback_full,
      &resp.generation,           &resp.poly_count,
      &resp.monomial_count,       &resp.variable_count};
  for (uint64_t* field : stat_fields) {
    auto v = r.GetVarint();
    if (!v.ok()) return v.status();
    *field = *v;
  }

  auto cache_hit = r.GetU8();
  if (!cache_hit.ok()) return cache_hit.status();
  resp.cache_hit = *cache_hit != 0;
  auto dedup_hit = r.GetU8();
  if (!dedup_hit.ok()) return dedup_hit.status();
  resp.dedup_hit = *dedup_hit != 0;
  auto delta_patched = r.GetU8();
  if (!delta_patched.ok()) return delta_patched.status();
  resp.delta_patched = *delta_patched != 0;
  auto ml = r.GetVarint();
  if (!ml.ok()) return ml.status();
  resp.monomial_loss = *ml;
  auto vl = r.GetVarint();
  if (!vl.ok()) return vl.status();
  resp.variable_loss = *vl;
  auto adequate = r.GetU8();
  if (!adequate.ok()) return adequate.status();
  resp.adequate = *adequate != 0;
  auto vvs = r.GetString();
  if (!vvs.ok()) return vvs.status();
  resp.vvs = std::move(*vvs);
  auto compressed_m = r.GetVarint();
  if (!compressed_m.ok()) return compressed_m.status();
  resp.compressed_monomials = *compressed_m;

  auto value_count = r.GetVarint();
  if (!value_count.ok()) return value_count.status();
  PROVABS_RETURN_IF_ERROR(CheckCount(*value_count, 8, r));
  resp.values.reserve(*value_count);
  for (uint64_t i = 0; i < *value_count; ++i) {
    auto v = r.GetDouble();
    if (!v.ok()) return v.status();
    resp.values.push_back(*v);
  }

  auto point_count = r.GetVarint();
  if (!point_count.ok()) return point_count.status();
  PROVABS_RETURN_IF_ERROR(CheckCount(*point_count, 2, r));
  resp.points.reserve(*point_count);
  for (uint64_t i = 0; i < *point_count; ++i) {
    auto size_m = r.GetVarint();
    if (!size_m.ok()) return size_m.status();
    auto vloss = r.GetVarint();
    if (!vloss.ok()) return vloss.status();
    resp.points.push_back(TradeoffPoint{static_cast<size_t>(*size_m),
                                        static_cast<size_t>(*vloss)});
  }

  auto algo_count = r.GetVarint();
  if (!algo_count.ok()) return algo_count.status();
  // An algo record is at least two 1-byte string lengths plus a flags byte.
  PROVABS_RETURN_IF_ERROR(CheckCount(*algo_count, 3, r));
  resp.algos.reserve(*algo_count);
  for (uint64_t i = 0; i < *algo_count; ++i) {
    AlgoCapability a;
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    a.name = std::move(*name);
    auto summary = r.GetString();
    if (!summary.ok()) return summary.status();
    a.summary = std::move(*summary);
    auto flags = r.GetU8();
    if (!flags.ok()) return flags.status();
    a.deterministic = (*flags & 1) != 0;
    a.supports_tradeoff = (*flags & 2) != 0;
    a.exact = (*flags & 4) != 0;
    a.produces_cut = (*flags & 8) != 0;
    a.supports_time_budget = (*flags & 16) != 0;
    resp.algos.push_back(std::move(a));
  }

  auto eval_backend = r.GetString();
  if (!eval_backend.ok()) return eval_backend.status();
  resp.eval_backend = std::move(*eval_backend);
  auto backend_count = r.GetVarint();
  if (!backend_count.ok()) return backend_count.status();
  // A backend record is at least two 1-byte string lengths, a flags byte,
  // and a 1-byte preferred-batch varint.
  PROVABS_RETURN_IF_ERROR(CheckCount(*backend_count, 4, r));
  resp.backends.reserve(*backend_count);
  for (uint64_t i = 0; i < *backend_count; ++i) {
    EvalBackendCapability b;
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    b.name = std::move(*name);
    auto summary = r.GetString();
    if (!summary.ok()) return summary.status();
    b.summary = std::move(*summary);
    auto flags = r.GetU8();
    if (!flags.ok()) return flags.status();
    b.vectorized = (*flags & 1) != 0;
    b.deterministic = (*flags & 2) != 0;
    b.tier = (*flags >> 2) & 0x3u;
    auto preferred = r.GetVarint();
    if (!preferred.ok()) return preferred.status();
    b.preferred_batch = *preferred;
    resp.backends.push_back(std::move(b));
  }

  auto scenario_count = r.GetVarint();
  if (!scenario_count.ok()) return scenario_count.status();
  resp.scenario_count = *scenario_count;
  auto program_cache_hit = r.GetU8();
  if (!program_cache_hit.ok()) return program_cache_hit.status();
  resp.program_cache_hit = *program_cache_hit != 0;
  auto index_count = r.GetVarint();
  if (!index_count.ok()) return index_count.status();
  PROVABS_RETURN_IF_ERROR(CheckCount(*index_count, 1, r));
  resp.scenario_indices.reserve(*index_count);
  for (uint64_t i = 0; i < *index_count; ++i) {
    auto index = r.GetVarint();
    if (!index.ok()) return index.status();
    resp.scenario_indices.push_back(*index);
  }
  auto objective_count = r.GetVarint();
  if (!objective_count.ok()) return objective_count.status();
  PROVABS_RETURN_IF_ERROR(CheckCount(*objective_count, 8, r));
  resp.objectives.reserve(*objective_count);
  for (uint64_t i = 0; i < *objective_count; ++i) {
    auto objective = r.GetDouble();
    if (!objective.ok()) return objective.status();
    resp.objectives.push_back(*objective);
  }
  return resp;
}

// ------------------------------------------------------------ framing ----

namespace {

/// Absolute deadline for one frame operation. `timeout_ms` <= 0 = infinite.
struct FrameDeadline {
  explicit FrameDeadline(int64_t timeout_ms)
      : infinite(timeout_ms <= 0),
        at(std::chrono::steady_clock::now() +
           std::chrono::milliseconds(timeout_ms > 0 ? timeout_ms : 0)),
        budget_ms(timeout_ms) {}

  /// Blocks until `fd` is ready for `events` or the deadline passes.
  /// Returns kDeadlineExceeded on expiry, kInternal on poll failure.
  Status PollFor(int fd, short events, const char* what) const {
    for (;;) {
      int wait_ms = -1;
      if (!infinite) {
        auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            at - std::chrono::steady_clock::now());
        if (remaining.count() <= 0) return Expired(what);
        wait_ms = static_cast<int>(std::min<int64_t>(
            remaining.count() + 1, std::numeric_limits<int>::max()));
      }
      pollfd p{};
      p.fd = fd;
      p.events = events;
      int r = ::poll(&p, 1, wait_ms);
      if (r > 0) return Status::OK();
      if (r == 0) return Expired(what);
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll failed: ") +
                              std::strerror(errno));
    }
  }

  Status Expired(const char* what) const {
    return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                    std::to_string(budget_ms) + " ms");
  }

  bool infinite;
  std::chrono::steady_clock::time_point at;
  int64_t budget_ms;
};

}  // namespace

Status WriteFrame(int fd, std::string_view payload, int64_t timeout_ms) {
  if (payload.size() > kMaxFrameBytes) {
    return Status::InvalidArgument("frame exceeds the 1 GiB protocol limit");
  }
  FrameDeadline deadline(timeout_ms);
  uint32_t len = static_cast<uint32_t>(payload.size());
  char header[4] = {static_cast<char>(len & 0xFF),
                    static_cast<char>((len >> 8) & 0xFF),
                    static_cast<char>((len >> 16) & 0xFF),
                    static_cast<char>((len >> 24) & 0xFF)};
  const char* chunks[] = {header, payload.data()};
  size_t sizes[] = {sizeof(header), payload.size()};
  for (int c = 0; c < 2; ++c) {
    size_t sent = 0;
    while (sent < sizes[c]) {
      // MSG_NOSIGNAL: a peer that disconnected mid-response must surface
      // as EPIPE here, not kill the whole server with SIGPIPE.
      ssize_t n =
          ::send(fd, chunks[c] + sent, sizes[c] - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // Non-blocking socket with a full buffer (a stalled peer): wait
          // for writability within the deadline instead of spinning.
          PROVABS_RETURN_IF_ERROR(
              deadline.PollFor(fd, POLLOUT, "rpc write"));
          continue;
        }
        return Status::Internal(std::string("socket write failed: ") +
                                std::strerror(errno));
      }
      sent += static_cast<size_t>(n);
    }
  }
  return Status::OK();
}

namespace {

/// Reads exactly `n` bytes into `out`; distinguishes EOF-before-anything
/// (`*clean_eof = true`) from EOF mid-read. Honors `deadline` across
/// blocking waits (poll-before-read on EAGAIN and, when a deadline is set,
/// before every read so a hung peer cannot park a blocking socket forever).
Status ReadExactly(int fd, char* out, size_t n, bool* clean_eof,
                   const FrameDeadline& deadline) {
  size_t got = 0;
  while (got < n) {
    if (!deadline.infinite) {
      PROVABS_RETURN_IF_ERROR(deadline.PollFor(fd, POLLIN, "rpc read"));
    }
    ssize_t r = ::read(fd, out + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        PROVABS_RETURN_IF_ERROR(deadline.PollFor(fd, POLLIN, "rpc read"));
        continue;
      }
      return Status::Internal(std::string("socket read failed: ") +
                              std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && clean_eof != nullptr) {
        *clean_eof = true;
        return Status::NotFound("connection closed");
      }
      return Status::OutOfRange("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> ReadFrame(int fd, int64_t timeout_ms) {
  FrameDeadline deadline(timeout_ms);
  char header[4];
  bool clean_eof = false;
  Status s = ReadExactly(fd, header, sizeof(header), &clean_eof, deadline);
  if (!s.ok()) return s;
  uint32_t len = static_cast<uint32_t>(static_cast<unsigned char>(header[0])) |
                 static_cast<uint32_t>(static_cast<unsigned char>(header[1]))
                     << 8 |
                 static_cast<uint32_t>(static_cast<unsigned char>(header[2]))
                     << 16 |
                 static_cast<uint32_t>(static_cast<unsigned char>(header[3]))
                     << 24;
  if (len > kMaxFrameBytes) {
    return Status::InvalidArgument("frame length exceeds the protocol limit");
  }
  std::string payload(len, '\0');
  if (len > 0) {
    s = ReadExactly(fd, payload.data(), len, nullptr, deadline);
    if (!s.ok()) return s;
  }
  return payload;
}

}  // namespace provabs
