#ifndef PROVABS_SERVER_EVALUATE_BATCHER_H_
#define PROVABS_SERVER_EVALUATE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/compiled_polynomial_set.h"
#include "core/evaluation_backend.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "parallel/thread_pool.h"

namespace provabs {

/// Coalesces concurrent what-if evaluations onto one ThreadPool.
///
/// The serving workload is many analysts firing small valuation requests at
/// a resident compressed artifact (the Fig. 10 interaction, repeated). Run
/// naively, each request would wake the pool for a single pass over the
/// polynomials — and ThreadPool::Wait() waits for *all* in-flight tasks, so
/// concurrent ParallelFor calls from different connection threads would
/// stall on each other's work. The batcher turns that interference into
/// throughput: the first caller becomes the batch leader, drains every
/// request queued so far (its own included), and runs their union as a
/// single ParallelFor round; callers that arrive while a batch is running
/// queue up for the next leader. Followers block until their slot is
/// filled.
///
/// Within a round, requests are grouped by (compiled form, requested
/// backend) and each group is routed through the evaluation-backend
/// registry (core/evaluation_backend.h) as ONE batch: concurrent analysts
/// probing the same artifact become structure-of-arrays lanes for the
/// simd_batch backend once the group reaches its preferred width. Each
/// group's polynomial range is chunked across the pool with every chunk
/// carrying the whole scenario group, so lanes stay full at any pool
/// width.
///
/// The caller thread resolves the compiled form (cached on the set — for
/// server artifacts it is warmed at load/insert time, so this never
/// compiles on the request path) and materializes its valuation into a
/// dense slot array before queueing, so pool workers run pure flat-array
/// walks. Results are bitwise identical to naive `Valuation::Evaluate` per
/// polynomial, whichever backend serves the group.
class EvaluateBatcher {
 public:
  /// `registry` selects evaluation backends (Default() when null); tests
  /// inject counting/failing registries through it.
  explicit EvaluateBatcher(ThreadPool& pool,
                           const EvaluationBackendRegistry* registry = nullptr)
      : pool_(pool),
        registry_(registry != nullptr ? registry
                                      : &EvaluationBackendRegistry::Default()) {
  }

  EvaluateBatcher(const EvaluateBatcher&) = delete;
  EvaluateBatcher& operator=(const EvaluateBatcher&) = delete;

  /// Evaluates every polynomial of `polys` under `val`; blocks until done.
  /// `backend` names an evaluation backend ("" = registry auto policy for
  /// the group this request lands in); unknown names fail with the
  /// registry's name-listing error. Thread-safe; concurrent callers are
  /// coalesced. The shared_ptr keeps the polynomial set alive across the
  /// batch even if the artifact store evicts it mid-request.
  StatusOr<std::vector<double>> Evaluate(
      std::shared_ptr<const PolynomialSet> polys, Valuation val,
      const std::string& backend = "");

  /// Evaluates every polynomial of `polys` under each of `scenarios` — the
  /// scenario-program fan-out entry point (scenario/program.h expands
  /// chunks of DenseValuations already stamped with `compiled`'s
  /// fingerprint). The scenarios enter the queue as individual pending
  /// items, so they form one full-width (compiled, backend) lane group and
  /// coalesce with any concurrent Evaluate() traffic against the same
  /// artifact. Returns one value vector per scenario, in order; counts as
  /// scenarios.size() requests in stats(). Fails fast with
  /// kInvalidArgument if any scenario carries a foreign fingerprint.
  StatusOr<std::vector<std::vector<double>>> EvaluateDense(
      std::shared_ptr<const PolynomialSet> polys,
      std::shared_ptr<const CompiledPolynomialSet> compiled,
      std::vector<DenseValuation> scenarios, const std::string& backend = "");

  struct Stats {
    uint64_t requests = 0;       ///< Evaluate() calls served.
    uint64_t batches = 0;        ///< Leader rounds run.
    uint64_t max_batch = 0;      ///< Largest number of requests in one round.
    uint64_t groups = 0;         ///< (compiled form, backend) groups formed.
    uint64_t backend_calls = 0;  ///< EvaluateBatch invocations dispatched.
  };
  Stats stats() const;

 private:
  /// Concurrency audit (TSan'd by tests/server_concurrency_test.cc and
  /// tests/evaluate_batcher_test.cc): a Pending crosses threads only
  /// through `mutex_` and the pool's own synchronization. The caller fills
  /// `compiled`/`dense`/`backend` before publishing the item into `queue_`
  /// under the lock; the leader takes the queue under the lock and sizes
  /// `out` before any Submit (the pool's queue mutex orders those writes
  /// before worker reads); workers only read `compiled`/`dense` and write
  /// disjoint `out` ranges; the leader's post-round lock re-acquire orders
  /// those writes (and any `status` the leader recorded) before `done`
  /// flips; and the owner only reads `out`/`status` after observing `done`
  /// under the lock. `stats_` is only ever touched under `mutex_`.
  struct Pending {
    std::shared_ptr<const PolynomialSet> polys;
    std::shared_ptr<const CompiledPolynomialSet> compiled;
    DenseValuation dense;
    std::string backend;  ///< Requested backend name ("" = auto).
    std::vector<double> out;
    Status status;  ///< Set by the leader on resolution/evaluation failure.
    bool done = false;
  };

  /// Leader-side: groups `batch`, resolves backends, runs one ParallelFor
  /// over all chunks, records per-item status. Returns counters for the
  /// leader to fold into stats_ under the lock.
  void RunBatch(const std::vector<std::shared_ptr<Pending>>& batch,
                uint64_t* groups, uint64_t* backend_calls);

  /// Claims leadership, drains the queue, and runs it as one batch.
  /// Requires `lock` held on mutex_ and leader_active_ == false; returns
  /// with the lock re-held, all drained items marked done, and waiters
  /// notified.
  void LeadOneBatch(std::unique_lock<std::mutex>& lock);

  ThreadPool& pool_;
  const EvaluationBackendRegistry* registry_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<std::shared_ptr<Pending>> queue_;
  bool leader_active_ = false;
  Stats stats_;
};

}  // namespace provabs

#endif  // PROVABS_SERVER_EVALUATE_BATCHER_H_
