#ifndef PROVABS_SERVER_EVALUATE_BATCHER_H_
#define PROVABS_SERVER_EVALUATE_BATCHER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/compiled_polynomial_set.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "parallel/thread_pool.h"

namespace provabs {

/// Coalesces concurrent what-if evaluations onto one ThreadPool.
///
/// The serving workload is many analysts firing small valuation requests at
/// a resident compressed artifact (the Fig. 10 interaction, repeated). Run
/// naively, each request would wake the pool for a single pass over the
/// polynomials — and ThreadPool::Wait() waits for *all* in-flight tasks, so
/// concurrent ParallelFor calls from different connection threads would
/// stall on each other's work. The batcher turns that interference into
/// throughput: the first caller becomes the batch leader, drains every
/// request queued so far (its own included), and runs their union as a
/// single ParallelFor over all (request, polynomial) pairs; callers that
/// arrive while a batch is running queue up for the next leader. Followers
/// block until their slot is filled.
///
/// One pool wake-up and one contiguous work split amortize scheduling over
/// the whole batch, and requests against the same polynomial set share
/// cache locality within a chunk.
///
/// Each request evaluates through its set's compiled CSR form
/// (core/compiled_polynomial_set.h): the caller thread resolves the
/// compiled form (cached on the set — for server artifacts it is warmed at
/// load/insert time, so this never compiles on the request path) and
/// materializes its valuation into a dense slot array before queueing, so
/// pool workers run pure flat-array walks. Results are bitwise identical
/// to naive `Valuation::Evaluate` per polynomial.
class EvaluateBatcher {
 public:
  explicit EvaluateBatcher(ThreadPool& pool) : pool_(pool) {}

  EvaluateBatcher(const EvaluateBatcher&) = delete;
  EvaluateBatcher& operator=(const EvaluateBatcher&) = delete;

  /// Evaluates every polynomial of `polys` under `val`; blocks until done.
  /// Thread-safe; concurrent callers are coalesced. The shared_ptr keeps
  /// the polynomial set alive across the batch even if the artifact store
  /// evicts it mid-request.
  std::vector<double> Evaluate(std::shared_ptr<const PolynomialSet> polys,
                               Valuation val);

  struct Stats {
    uint64_t requests = 0;  ///< Evaluate() calls served.
    uint64_t batches = 0;   ///< ParallelFor rounds run.
    uint64_t max_batch = 0; ///< Largest number of requests in one round.
  };
  Stats stats() const;

 private:
  /// Concurrency audit (TSan'd by tests/server_concurrency_test.cc): a
  /// Pending crosses threads only through `mutex_` and the pool's own
  /// synchronization. The caller fills `compiled`/`dense` before
  /// publishing the item into `queue_` under the lock; the leader takes
  /// the queue under the lock and sizes `out` before any Submit (the
  /// pool's queue mutex orders those writes before worker reads); workers
  /// only read `compiled`/`dense` and write disjoint `out` slots; the
  /// leader's post-ParallelFor lock re-acquire orders those writes before
  /// `done` flips; and the owner only reads `out` after observing `done`
  /// under the lock. `stats_` is only ever touched under `mutex_`.
  struct Pending {
    std::shared_ptr<const PolynomialSet> polys;
    std::shared_ptr<const CompiledPolynomialSet> compiled;
    DenseValuation dense;
    std::vector<double> out;
    bool done = false;
  };

  ThreadPool& pool_;
  mutable std::mutex mutex_;
  std::condition_variable done_cv_;
  std::vector<std::shared_ptr<Pending>> queue_;
  bool leader_active_ = false;
  Stats stats_;
};

}  // namespace provabs

#endif  // PROVABS_SERVER_EVALUATE_BATCHER_H_
