#ifndef PROVABS_SERVER_INFLIGHT_REGISTRY_H_
#define PROVABS_SERVER_INFLIGHT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/status.h"

namespace provabs {

/// Single-flight deduplication of concurrent identical computations.
///
/// The serving workload is many analysts hitting the same hot compression
/// keys: without coordination, a burst of identical requests runs the
/// expensive DP once per request. The registry collapses the burst to one
/// execution: the first caller for a key claims the in-flight slot and runs
/// the computation on its own thread; every caller that arrives while it
/// runs blocks on a `std::shared_future` of the same outcome. Distinct keys
/// never synchronize with each other — the registry lock is only held for
/// map bookkeeping, never across a computation.
///
/// Failure is not sticky: the slot is erased before the outcome is
/// published, so a failed computation is shared only with the callers that
/// were already waiting on it — the next arrival claims a fresh slot and
/// retries. Nothing is cached here; durable storage of successful results
/// is the caller's job (see ArtifactStore::GetOrCompute).
class InflightRegistry {
 public:
  /// What one computation produced: a Status plus an opaque shared value.
  /// The value is type-erased so the registry does not depend on what it
  /// transports; the single caller that casts it back (ArtifactStore)
  /// erased it in the first place.
  struct Outcome {
    Status status = Status::OK();
    std::shared_ptr<const void> value;
  };

  using ComputeFn = std::function<Outcome()>;

  InflightRegistry() = default;
  InflightRegistry(const InflightRegistry&) = delete;
  InflightRegistry& operator=(const InflightRegistry&) = delete;

  /// Single-flight entry point. If no computation for `key` is in flight,
  /// the caller becomes the leader: it runs `compute` (outside the registry
  /// lock) and its outcome is published to every waiter. Otherwise the
  /// caller blocks until the leader publishes and returns that shared
  /// outcome. `*deduped` (optional) is set to true iff this call waited
  /// instead of computing.
  Outcome DoOrWait(const std::string& key, const ComputeFn& compute,
                   bool* deduped = nullptr);

  struct Stats {
    uint64_t computations = 0;  ///< Leader runs (actual executions).
    uint64_t dedup_hits = 0;    ///< Calls answered by waiting on a leader.
    uint64_t peak_waiters = 0;  ///< Max callers ever blocked at once.
    uint64_t waiters_now = 0;   ///< Callers blocked right now (gauge).
  };
  /// Lock-free (counters are atomics): stats() feeds every response
  /// envelope, so it must not serialize the request path at all.
  Stats stats() const;

  /// Callers currently blocked on some leader's outcome (a gauge; the
  /// concurrency tests use it to release a leader only once every expected
  /// waiter has actually joined).
  uint64_t WaitersNow() const;

  /// Keys with a computation currently in flight (a gauge).
  uint64_t KeysNow() const;

 private:
  /// One in-flight computation. Waiters hold the slot via shared_ptr, so
  /// erasing the map entry never invalidates a future being waited on.
  struct Slot {
    std::promise<Outcome> promise;
    std::shared_future<Outcome> future;
  };

  /// Guards the slot map only; the counters are atomics so stats() (run on
  /// every response) and waiter arrival/departure bookkeeping never take
  /// this lock beyond the claim/join itself.
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Slot>> inflight_;
  std::atomic<uint64_t> computations_{0};
  std::atomic<uint64_t> dedup_hits_{0};
  std::atomic<uint64_t> peak_waiters_{0};
  std::atomic<uint64_t> waiters_now_{0};
};

}  // namespace provabs

#endif  // PROVABS_SERVER_INFLIGHT_REGISTRY_H_
