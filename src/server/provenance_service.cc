#include "server/provenance_service.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "algo/compressor.h"
#include "algo/optimal_single_tree.h"
#include "algo/tradeoff_curve.h"
#include "scenario/program.h"

namespace provabs {

namespace {

void SetError(Response& resp, const Status& status) {
  resp.code = status.code();
  resp.message = status.message();
}

}  // namespace

ProvenanceService::ProvenanceService(const ServiceOptions& options)
    : store_(options.cache_bytes, options.cache_shards),
      pool_(options.eval_threads != 0
                ? options.eval_threads
                : static_cast<size_t>(std::thread::hardware_concurrency())),
      batcher_(pool_),
      compress_hook_(options.compress_hook),
      max_scenarios_per_request_(options.max_scenarios_per_request),
      scenario_chunk_(options.scenario_chunk != 0 ? options.scenario_chunk
                                                  : 1024),
      max_response_bytes_(options.max_response_bytes != 0
                              ? options.max_response_bytes
                              : kMaxFrameBytes) {}

void ProvenanceService::SetTransportStatsProvider(
    std::function<void(ServerStats&)> provider) {
  std::lock_guard<std::mutex> lock(transport_mutex_);
  transport_stats_ = std::move(provider);
}

void ProvenanceService::AttachStats(Response& resp) {
  ArtifactStore::Stats store_stats = store_.stats();
  resp.stats.artifact_count = store_stats.artifact_count;
  resp.stats.result_count = store_stats.result_count;
  resp.stats.cached_bytes = store_stats.cached_bytes;
  resp.stats.byte_budget = store_stats.byte_budget;
  resp.stats.result_hits = store_stats.result_hits;
  resp.stats.result_misses = store_stats.result_misses;
  resp.stats.evictions = store_stats.evictions;
  resp.stats.dedup_hits = store_stats.dedup_hits;
  resp.stats.inflight_waiters = store_stats.inflight_waiters;
  resp.stats.program_count = store_stats.program_count;
  resp.stats.program_hits = store_stats.program_hits;
  resp.stats.program_misses = store_stats.program_misses;
  resp.stats.delta_patched =
      delta_patched_.load(std::memory_order_relaxed);
  resp.stats.delta_fallback_full =
      delta_fallback_full_.load(std::memory_order_relaxed);
  EvaluateBatcher::Stats batch_stats = batcher_.stats();
  resp.stats.eval_batches = batch_stats.batches;
  resp.stats.eval_requests = batch_stats.requests;
  resp.stats.eval_groups = batch_stats.groups;
  resp.stats.eval_backend_calls = batch_stats.backend_calls;
  {
    std::lock_guard<std::mutex> lock(transport_mutex_);
    if (transport_stats_) transport_stats_(resp.stats);
  }
}

Response ProvenanceService::Load(const LoadRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kLoadRequest;
  if (req.artifact.empty()) {
    SetError(resp, Status::InvalidArgument("artifact name must be non-empty"));
    AttachStats(resp);
    return resp;
  }
  auto artifact = store_.Load(req.artifact, req.polys_bytes, req.forests);
  if (!artifact.ok()) {
    SetError(resp, artifact.status());
    AttachStats(resp);
    return resp;
  }
  resp.generation = (*artifact)->generation;
  resp.poly_count = (*artifact)->polys.count();
  resp.monomial_count = (*artifact)->polys.SizeM();
  resp.variable_count = (*artifact)->polys.SizeV();
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::Append(const AppendRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kAppendRequest;
  if (req.artifact.empty()) {
    SetError(resp, Status::InvalidArgument("artifact name must be non-empty"));
    AttachStats(resp);
    return resp;
  }
  auto artifact = store_.Append(req.artifact, req.polys_bytes);
  if (!artifact.ok()) {
    SetError(resp, artifact.status());
    AttachStats(resp);
    return resp;
  }
  resp.generation = (*artifact)->generation;
  resp.poly_count = (*artifact)->polys.count();
  resp.monomial_count = (*artifact)->polys.SizeM();
  resp.variable_count = (*artifact)->polys.SizeV();
  AttachStats(resp);
  return resp;
}

StatusOr<ArtifactStore::CompressedResult>
ProvenanceService::ComputeCompression(
    const std::shared_ptr<const Artifact>& artifact,
    const AbstractionForest& forest, const Compressor& compressor,
    const ArtifactStore::ResultKey& key) {
  std::optional<CompressionResult> result;
  // Delta-patch path: probe cached ancestor generations (newest first) for
  // a result under the same (forest, bound, algo) whose retained DP tables
  // can be patched against the polynomials' delta log. A patched result is
  // field-identical to a full re-run by construction, so the cache entry
  // it fills is indistinguishable from a cold one.
  for (auto it = artifact->ancestry.rbegin(); it != artifact->ancestry.rend();
       ++it) {
    ArtifactStore::ResultKey prev_key = key;
    prev_key.generation = it->generation;
    std::shared_ptr<const ArtifactStore::CompressedResult> prev =
        store_.PeekResult(prev_key);
    if (prev == nullptr) continue;  // Older ancestors may still be cached.
    if (prev->algo_result.dp_state == nullptr) {
      // A predecessor exists but carries nothing patchable (non-opt algo,
      // or a budget-exhausted run). Deeper ancestors ran the same
      // algorithm, so probing further cannot help.
      delta_fallback_full_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    PolynomialSetDelta delta = artifact->polys.DeltaSince(it->revision);
    RecompressFallback fallback = RecompressFallback::kNone;
    StatusOr<CompressionResult> attempt = OptimalRecompress(
        artifact->polys, forest, prev->algo_result, delta,
        static_cast<size_t>(key.bound), &fallback);
    if (fallback != RecompressFallback::kNone) {
      delta_fallback_full_.fetch_add(1, std::memory_order_relaxed);
      break;  // A declined patch at the nearest ancestor settles it.
    }
    // The patch path answered authoritatively — including kInfeasible,
    // which the full DP would report identically.
    delta_patched_.fetch_add(1, std::memory_order_relaxed);
    if (!attempt.ok()) return attempt.status();
    result = std::move(*attempt);
    break;
  }
  const bool patched = result.has_value();
  if (!patched) {
    if (compress_hook_) compress_hook_(key);
    CompressOptions copts;
    copts.bound = key.bound;
    StatusOr<CompressionResult> full =
        compressor.Compress(artifact->polys, forest, copts);
    if (!full.ok()) return full.status();
    result = std::move(*full);
  }
  ArtifactStore::CompressedResult computed;
  computed.loss = result->loss;
  computed.adequate = result->adequate;
  computed.vvs_names = result->Describe(forest, *artifact->vars);
  computed.compressed = result->Apply(forest, artifact->polys);
  computed.algo_result = std::move(*result);
  computed.delta_patched = patched;
  return computed;
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ProvenanceService::CompressInternal(
    const std::shared_ptr<const Artifact>& artifact,
    const std::string& artifact_name, const std::string& forest_name,
    const std::string& algo, uint64_t bound, Response& resp) {
  const AbstractionForest* forest = artifact->FindForest(forest_name);
  if (forest == nullptr) {
    SetError(resp, Status::NotFound("artifact '" + artifact_name +
                                    "' has no forest '" + forest_name + "'"));
    return nullptr;
  }
  StatusOr<const Compressor*> compressor =
      CompressorRegistry::Default().Resolve(algo);
  if (!compressor.ok()) {
    SetError(resp, compressor.status());
    return nullptr;
  }

  ArtifactStore::ResultKey key{artifact_name, artifact->generation,
                               forest_name, bound, algo};
  // Single-flight: the first request for this key runs the algorithm on
  // this thread; concurrent identical requests block on its outcome instead
  // of computing twice; distinct keys proceed fully in parallel. A failed
  // run is reported to every waiter and never cached.
  ArtifactStore::GetOrComputeInfo info;
  StatusOr<std::shared_ptr<const ArtifactStore::CompressedResult>> cached =
      store_.GetOrCompute(
          key,
          [&]() -> StatusOr<ArtifactStore::CompressedResult> {
            return ComputeCompression(artifact, *forest, **compressor, key);
          },
          &info);
  resp.cache_hit = info.cache_hit;
  resp.dedup_hit = info.dedup_hit;
  if (!cached.ok()) {
    SetError(resp, cached.status());
    return nullptr;
  }
  resp.delta_patched = (*cached)->delta_patched && !resp.cache_hit;
  resp.monomial_loss = (*cached)->loss.monomial_loss;
  resp.variable_loss = (*cached)->loss.variable_loss;
  resp.adequate = (*cached)->adequate;
  resp.vvs = (*cached)->vvs_names;
  resp.compressed_monomials = (*cached)->compressed.SizeM();
  return *cached;
}

Response ProvenanceService::Compress(const CompressRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kCompressRequest;
  std::shared_ptr<const Artifact> artifact = store_.Get(req.artifact);
  if (artifact == nullptr) {
    SetError(resp,
             Status::NotFound("artifact '" + req.artifact + "' not loaded"));
  } else {
    CompressInternal(artifact, req.artifact, req.forest, req.algo, req.bound,
                     resp);
  }
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::Evaluate(const EvaluateRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kEvaluateRequest;
  std::shared_ptr<const Artifact> artifact = store_.Get(req.artifact);
  if (artifact == nullptr) {
    SetError(resp,
             Status::NotFound("artifact '" + req.artifact + "' not loaded"));
    AttachStats(resp);
    return resp;
  }

  // Aliasing shared_ptrs keep the owning object (artifact or cached
  // result) alive for the duration of the batched evaluation.
  std::shared_ptr<const PolynomialSet> target;
  if (req.compressed) {
    std::shared_ptr<const ArtifactStore::CompressedResult> result =
        CompressInternal(artifact, req.artifact, req.forest, req.algo,
                         req.bound, resp);
    if (result == nullptr) {
      AttachStats(resp);
      return resp;
    }
    target = std::shared_ptr<const PolynomialSet>(result,
                                                  &result->compressed);
  } else {
    target =
        std::shared_ptr<const PolynomialSet>(artifact, &artifact->polys);
  }

  // Assignments are validated against the polynomials actually being
  // evaluated: setting a variable the compression abstracted away would
  // silently have no effect, and a silently wrong what-if answer is worse
  // than an error (the offline CLI rejects it the same way, because a
  // compressed artifact's buffer only carries surviving variables).
  Valuation val;
  std::unordered_set<VariableId> present;
  if (!req.assignments.empty()) present = target->Variables();
  for (const auto& [name, value] : req.assignments) {
    VariableId id = artifact->vars->Find(name);
    if (id == kInvalidVariable || present.count(id) == 0) {
      SetError(resp,
               Status::NotFound(
                   req.compressed
                       ? "variable '" + name +
                             "' does not occur in the compressed view "
                             "(set its surviving meta-variable instead)"
                       : "unknown variable '" + name + "'"));
      AttachStats(resp);
      return resp;
    }
    val.Set(id, value);
  }

  // An explicit backend name is validated up front so a typo fails with
  // the registry's name-listing error before any work is queued; "" keeps
  // the registry's auto policy, which picks per coalesced batch.
  if (!req.eval_backend.empty()) {
    StatusOr<const EvaluationBackend*> backend =
        EvaluationBackendRegistry::Default().Resolve(req.eval_backend);
    if (!backend.ok()) {
      SetError(resp, backend.status());
      AttachStats(resp);
      return resp;
    }
  }
  StatusOr<std::vector<double>> values =
      batcher_.Evaluate(std::move(target), std::move(val), req.eval_backend);
  if (!values.ok()) {
    SetError(resp, values.status());
    AttachStats(resp);
    return resp;
  }
  resp.values = std::move(*values);
  resp.eval_backend = req.eval_backend;
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::EvaluateScenarioProgram(
    const EvaluateScenarioProgramRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kEvaluateScenarioProgramRequest;
  std::shared_ptr<const Artifact> artifact = store_.Get(req.artifact);
  if (artifact == nullptr) {
    SetError(resp,
             Status::NotFound("artifact '" + req.artifact + "' not loaded"));
    AttachStats(resp);
    return resp;
  }
  if (req.shape == ScenarioShape::kTopK && req.top_k == 0) {
    SetError(resp, Status::InvalidArgument(
                       "top_k must be at least 1 for the top-k shape"));
    AttachStats(resp);
    return resp;
  }
  if (!req.eval_backend.empty()) {
    StatusOr<const EvaluationBackend*> backend =
        EvaluationBackendRegistry::Default().Resolve(req.eval_backend);
    if (!backend.ok()) {
      SetError(resp, backend.status());
      AttachStats(resp);
      return resp;
    }
  }

  // Resolve the target view exactly like Evaluate: plain polynomials, or
  // the (single-flight, cached) compressed result.
  std::shared_ptr<const PolynomialSet> target;
  if (req.compressed) {
    std::shared_ptr<const ArtifactStore::CompressedResult> result =
        CompressInternal(artifact, req.artifact, req.forest, req.algo,
                         req.bound, resp);
    if (result == nullptr) {
      AttachStats(resp);
      return resp;
    }
    target = std::shared_ptr<const PolynomialSet>(result,
                                                  &result->compressed);
  } else {
    target =
        std::shared_ptr<const PolynomialSet>(artifact, &artifact->polys);
  }

  ArtifactStore::ProgramKey key;
  key.artifact = req.artifact;
  key.generation = artifact->generation;
  key.compressed = req.compressed;
  if (req.compressed) {
    key.forest = req.forest;
    key.bound = req.bound;
    key.algo = req.algo;
  }
  key.source_hash = ArtifactStore::HashProgramSource(req.program);
  std::shared_ptr<const scenario::ScenarioProgram> program =
      store_.LookupProgram(key);
  resp.program_cache_hit = program != nullptr;
  if (program == nullptr) {
    StatusOr<scenario::ScenarioProgram> compiled_program =
        scenario::ScenarioProgram::Compile(req.program, target->Compiled(),
                                           *artifact->vars);
    if (!compiled_program.ok()) {
      SetError(resp, compiled_program.status());
      AttachStats(resp);
      return resp;
    }
    program = store_.InsertProgram(key, std::move(*compiled_program));
  }
  const uint64_t total = program->scenario_count();
  if (total > max_scenarios_per_request_) {
    SetError(resp,
             Status::InvalidArgument(
                 "scenario program expands to " + std::to_string(total) +
                 " scenarios, over the server limit of " +
                 std::to_string(max_scenarios_per_request_)));
    AttachStats(resp);
    return resp;
  }
  resp.scenario_count = total;

  // Evaluation runs against the compiled snapshot the program was analyzed
  // with (program->compiled(), not target->Compiled()): a cached program
  // whose compressed result was evicted and recomputed since keeps its own
  // snapshot alive, and its materialized valuations carry that snapshot's
  // fingerprint. Both snapshots evaluate to identical values — the
  // compression key is identical and the DP is deterministic — so this is
  // purely a lifetime/fingerprint concern, never a semantic one.
  const std::shared_ptr<const CompiledPolynomialSet>& compiled =
      program->compiled();

  // Shaped responses keep the current best `keep` scenarios (values
  // included) while streaming chunks, ordered by objective with ties
  // broken toward the earlier expansion index so every backend and chunk
  // size selects the same scenarios.
  struct Pick {
    uint64_t index;
    double objective;
    std::vector<double> values;
  };
  const bool shaped = req.shape != ScenarioShape::kValues;
  const uint64_t keep = req.shape == ScenarioShape::kTopK ? req.top_k : 1;
  auto better = [&req](const Pick& a, const Pick& b) {
    if (a.objective != b.objective) {
      return req.shape == ScenarioShape::kArgmin
                 ? a.objective < b.objective
                 : a.objective > b.objective;
    }
    return a.index < b.index;
  };
  std::vector<Pick> picks;
  if (!shaped) {
    // A values-shaped response carries total * poly_count doubles (8 bytes
    // each on the wire). Refuse up front when that cannot fit in one
    // response frame — computing a gigabyte of valuations only to die in
    // WriteFrame would waste the work and kill the connection.
    const uint64_t value_bytes =
        total * static_cast<uint64_t>(compiled->poly_count()) * 8;
    constexpr uint64_t kEnvelopeSlack = 4096;  // header, stats, varints
    if (value_bytes > max_response_bytes_ ||
        value_bytes + kEnvelopeSlack > max_response_bytes_) {
      SetError(resp,
               Status::OutOfRange(
                   "values-shaped response would be about " +
                   std::to_string(value_bytes) + " bytes, over the " +
                   std::to_string(max_response_bytes_) +
                   "-byte response limit; use --shape top-k to request "
                   "only the best scenarios"));
      AttachStats(resp);
      return resp;
    }
    resp.values.reserve(static_cast<size_t>(total) * compiled->poly_count());
  }

  for (uint64_t begin = 0; begin < total; begin += scenario_chunk_) {
    const uint64_t end = std::min(total, begin + scenario_chunk_);
    std::vector<DenseValuation> chunk;
    Status expand = program->ExpandChunk(begin, end, &chunk);
    if (!expand.ok()) {
      SetError(resp, expand);
      AttachStats(resp);
      return resp;
    }
    StatusOr<std::vector<std::vector<double>>> values = batcher_.EvaluateDense(
        target, compiled, std::move(chunk), req.eval_backend);
    if (!values.ok()) {
      SetError(resp, values.status());
      AttachStats(resp);
      return resp;
    }
    if (!shaped) {
      for (const std::vector<double>& v : *values) {
        resp.values.insert(resp.values.end(), v.begin(), v.end());
      }
      continue;
    }
    for (size_t i = 0; i < values->size(); ++i) {
      // The objective folds polynomial values left to right, matching the
      // order clients would sum a kValues response in.
      double objective = 0.0;
      for (double v : (*values)[i]) objective += v;
      picks.push_back(Pick{begin + i, objective, std::move((*values)[i])});
    }
    if (picks.size() > keep) {
      std::sort(picks.begin(), picks.end(), better);
      picks.resize(static_cast<size_t>(keep));
    }
  }
  if (shaped) {
    std::sort(picks.begin(), picks.end(), better);
    for (Pick& pick : picks) {
      resp.scenario_indices.push_back(pick.index);
      resp.objectives.push_back(pick.objective);
      resp.values.insert(resp.values.end(), pick.values.begin(),
                         pick.values.end());
    }
  }
  resp.eval_backend = req.eval_backend;
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::Info(const InfoRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kInfoRequest;
  if (!req.artifact.empty()) {
    std::shared_ptr<const Artifact> artifact = store_.Get(req.artifact);
    if (artifact == nullptr) {
      SetError(resp,
               Status::NotFound("artifact '" + req.artifact + "' not loaded"));
      AttachStats(resp);
      return resp;
    }
    resp.generation = artifact->generation;
    resp.poly_count = artifact->polys.count();
    resp.monomial_count = artifact->polys.SizeM();
    resp.variable_count = artifact->polys.SizeV();
  }
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::Tradeoff(const TradeoffRequest& req) {
  Response resp;
  resp.request_kind = MessageKind::kTradeoffRequest;
  std::shared_ptr<const Artifact> artifact = store_.Get(req.artifact);
  if (artifact == nullptr) {
    SetError(resp,
             Status::NotFound("artifact '" + req.artifact + "' not loaded"));
    AttachStats(resp);
    return resp;
  }
  const AbstractionForest* forest = artifact->FindForest(req.forest);
  if (forest == nullptr) {
    SetError(resp, Status::NotFound("artifact '" + req.artifact +
                                    "' has no forest '" + req.forest + "'"));
    AttachStats(resp);
    return resp;
  }
  auto curve = OptimalTradeoffCurve(artifact->polys, *forest, 0);
  if (!curve.ok()) {
    SetError(resp, curve.status());
    AttachStats(resp);
    return resp;
  }
  resp.points = std::move(*curve);
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::ListAlgos(const ListAlgosRequest&) {
  Response resp;
  resp.request_kind = MessageKind::kListAlgosRequest;
  for (const CompressorInfo& info : CompressorRegistry::Default().Infos()) {
    AlgoCapability a;
    a.name = info.name;
    a.summary = info.summary;
    a.deterministic = info.deterministic;
    a.supports_tradeoff = info.supports_tradeoff;
    a.exact = info.exact;
    a.produces_cut = info.produces_cut;
    a.supports_time_budget = info.supports_time_budget;
    resp.algos.push_back(std::move(a));
  }
  AttachStats(resp);
  return resp;
}

Response ProvenanceService::ListBackends(const ListBackendsRequest&) {
  Response resp;
  resp.request_kind = MessageKind::kListBackendsRequest;
  for (const EvaluationBackendInfo& info :
       EvaluationBackendRegistry::Default().Infos()) {
    EvalBackendCapability b;
    b.name = info.name;
    b.summary = info.summary;
    b.vectorized = info.vectorized;
    b.deterministic = info.deterministic;
    b.preferred_batch = info.preferred_batch;
    b.tier = info.tier;
    resp.backends.push_back(std::move(b));
  }
  AttachStats(resp);
  return resp;
}

std::string ProvenanceService::HandleFrame(std::string_view payload,
                                           bool* shutdown) {
  std::string encoded = HandleFrameImpl(payload, shutdown);
  if (encoded.size() <= max_response_bytes_ &&
      encoded.size() <= kMaxFrameBytes) {
    return encoded;
  }
  // Backstop for any handler whose response outgrew the frame budget:
  // the client gets a structured error on a healthy connection instead of
  // the transport killing the write (and with it the connection).
  Response err;
  StatusOr<MessageKind> kind = PeekMessageKind(payload);
  if (kind.ok()) err.request_kind = *kind;
  SetError(err, Status::OutOfRange(
                    "encoded response of " + std::to_string(encoded.size()) +
                    " bytes exceeds the " +
                    std::to_string(std::min<uint64_t>(max_response_bytes_,
                                                      kMaxFrameBytes)) +
                    "-byte response limit; narrow the request (for scenario "
                    "sweeps, use --shape top-k)"));
  AttachStats(err);
  return EncodeResponse(err);
}

std::string ProvenanceService::HandleFrameImpl(std::string_view payload,
                                               bool* shutdown) {
  Response resp;
  StatusOr<MessageKind> kind = PeekMessageKind(payload);
  if (!kind.ok()) {
    SetError(resp, kind.status());
    return EncodeResponse(resp);
  }
  // On a decode failure the decoder's Status is forwarded to the client —
  // "corrupt element count" vs "buffer truncated" matters when debugging
  // version skew or a mangled frame.
  Status decode_error = Status::OK();
  switch (*kind) {
    case MessageKind::kLoadRequest: {
      auto req = DecodeLoadRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(Load(*req));
    }
    case MessageKind::kAppendRequest: {
      auto req = DecodeAppendRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(Append(*req));
    }
    case MessageKind::kCompressRequest: {
      auto req = DecodeCompressRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(Compress(*req));
    }
    case MessageKind::kEvaluateRequest: {
      auto req = DecodeEvaluateRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(Evaluate(*req));
    }
    case MessageKind::kEvaluateScenarioProgramRequest: {
      auto req = DecodeEvaluateScenarioProgramRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(EvaluateScenarioProgram(*req));
    }
    case MessageKind::kInfoRequest: {
      auto req = DecodeInfoRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(Info(*req));
    }
    case MessageKind::kTradeoffRequest: {
      auto req = DecodeTradeoffRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(Tradeoff(*req));
    }
    case MessageKind::kListAlgosRequest: {
      auto req = DecodeListAlgosRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(ListAlgos(*req));
    }
    case MessageKind::kListBackendsRequest: {
      auto req = DecodeListBackendsRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      return EncodeResponse(ListBackends(*req));
    }
    case MessageKind::kShutdownRequest: {
      auto req = DecodeShutdownRequest(payload);
      if (!req.ok()) {
        decode_error = req.status();
        break;
      }
      if (shutdown != nullptr) *shutdown = true;
      resp.request_kind = MessageKind::kShutdownRequest;
      AttachStats(resp);
      return EncodeResponse(resp);
    }
    case MessageKind::kResponse:
      SetError(resp, Status::InvalidArgument(
                         "a response message is not a valid request"));
      return EncodeResponse(resp);
  }
  resp.request_kind = *kind;
  SetError(resp, Status::InvalidArgument("malformed request payload: " +
                                         decode_error.ToString()));
  return EncodeResponse(resp);
}

}  // namespace provabs
