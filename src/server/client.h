#ifndef PROVABS_SERVER_CLIENT_H_
#define PROVABS_SERVER_CLIENT_H_

#include <cstdint>
#include <string>

#include "common/statusor.h"
#include "server/wire_protocol.h"

namespace provabs {

struct ClientOptions {
  /// Give up on connect() after this long (a firewalled host can
  /// otherwise black-hole the SYN for minutes). <= 0 blocks.
  int64_t connect_timeout_ms = 0;
  /// Per-RPC budget covering the request write and the response read; a
  /// hung server yields kDeadlineExceeded instead of blocking forever.
  /// <= 0 blocks. After a deadline failure the connection is closed —
  /// a late response arriving for an abandoned request would otherwise
  /// desynchronize every later RPC on the stream.
  int64_t rpc_timeout_ms = 0;
};

/// Blocking client for the provabs wire protocol: one TCP connection,
/// synchronous request/response. Used by the `provabs_cli remote-*`
/// subcommands and the end-to-end tests.
///
/// Transport and decode failures surface as the StatusOr error; application
/// errors (unknown artifact, infeasible bound, ...) arrive as a decoded
/// Response whose `code`/`message` carry the server-side Status.
class Client {
 public:
  /// Connects to `host`:`port`. `host` must be a numeric IPv4 address, or
  /// "localhost" (mapped to 127.0.0.1).
  static StatusOr<Client> Connect(const std::string& host, uint16_t port,
                                  const ClientOptions& options = {});

  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  StatusOr<Response> Load(const LoadRequest& req);
  StatusOr<Response> Append(const AppendRequest& req);
  StatusOr<Response> Compress(const CompressRequest& req);
  StatusOr<Response> Evaluate(const EvaluateRequest& req);
  StatusOr<Response> EvaluateScenarioProgram(
      const EvaluateScenarioProgramRequest& req);
  StatusOr<Response> Info(const InfoRequest& req);
  StatusOr<Response> Tradeoff(const TradeoffRequest& req);
  StatusOr<Response> Shutdown(const ShutdownRequest& req);
  StatusOr<Response> ListAlgos(const ListAlgosRequest& req);
  StatusOr<Response> ListBackends(const ListBackendsRequest& req);

 private:
  Client(int fd, int64_t rpc_timeout_ms)
      : fd_(fd), rpc_timeout_ms_(rpc_timeout_ms) {}

  /// Writes one encoded request frame and reads back the response,
  /// honoring rpc_timeout_ms across both halves.
  StatusOr<Response> Call(const std::string& payload);

  int fd_ = -1;
  int64_t rpc_timeout_ms_ = 0;
};

}  // namespace provabs

#endif  // PROVABS_SERVER_CLIENT_H_
