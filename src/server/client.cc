#include "server/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace provabs {

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port) {
  std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Status::NotFound("cannot connect to " + numeric + ":" +
                                std::to_string(port) + ": " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  // The protocol is strict request/response with small frames; Nagle's
  // algorithm interacting with delayed ACKs would add tens of milliseconds
  // of idle stall to every round trip after the first.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Response> Client::Call(const std::string& payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  PROVABS_RETURN_IF_ERROR(WriteFrame(fd_, payload));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  return DecodeResponse(*reply);
}

StatusOr<Response> Client::Load(const LoadRequest& req) {
  return Call(EncodeLoadRequest(req));
}

StatusOr<Response> Client::Compress(const CompressRequest& req) {
  return Call(EncodeCompressRequest(req));
}

StatusOr<Response> Client::Evaluate(const EvaluateRequest& req) {
  return Call(EncodeEvaluateRequest(req));
}

StatusOr<Response> Client::EvaluateScenarioProgram(
    const EvaluateScenarioProgramRequest& req) {
  return Call(EncodeEvaluateScenarioProgramRequest(req));
}

StatusOr<Response> Client::Info(const InfoRequest& req) {
  return Call(EncodeInfoRequest(req));
}

StatusOr<Response> Client::Tradeoff(const TradeoffRequest& req) {
  return Call(EncodeTradeoffRequest(req));
}

StatusOr<Response> Client::Shutdown(const ShutdownRequest& req) {
  return Call(EncodeShutdownRequest(req));
}

StatusOr<Response> Client::ListAlgos(const ListAlgosRequest& req) {
  return Call(EncodeListAlgosRequest(req));
}

StatusOr<Response> Client::ListBackends(const ListBackendsRequest& req) {
  return Call(EncodeListBackendsRequest(req));
}

}  // namespace provabs
