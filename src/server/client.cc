#include "server/client.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace provabs {

namespace {

/// Connects with a deadline: flip the socket non-blocking, start the
/// connect, poll for writability, then read the outcome via SO_ERROR.
/// The socket is restored to blocking mode on success (frame-level
/// deadlines use poll and work on blocking sockets).
Status ConnectWithTimeout(int fd, const sockaddr_in& addr,
                          int64_t timeout_ms, const std::string& where) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl() failed: ") +
                            std::strerror(errno));
  }
  int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS && errno != EINTR) {
    return Status::NotFound("cannot connect to " + where + ": " +
                            std::strerror(errno));
  }
  if (rc != 0) {
    pollfd p{};
    p.fd = fd;
    p.events = POLLOUT;
    for (;;) {
      int pr = ::poll(&p, 1, static_cast<int>(timeout_ms));
      if (pr > 0) break;
      if (pr == 0) {
        return Status::DeadlineExceeded("connect to " + where +
                                        " timed out after " +
                                        std::to_string(timeout_ms) + " ms");
      }
      if (errno == EINTR) continue;
      return Status::Internal(std::string("poll failed: ") +
                              std::strerror(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      return Status::NotFound("cannot connect to " + where + ": " +
                              std::strerror(err != 0 ? err : errno));
    }
  }
  if (::fcntl(fd, F_SETFL, flags) < 0) {
    return Status::Internal(std::string("fcntl() failed: ") +
                            std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace

StatusOr<Client> Client::Connect(const std::string& host, uint16_t port,
                                 const ClientOptions& options) {
  std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  std::string where = numeric + ":" + std::to_string(port);
  if (options.connect_timeout_ms > 0) {
    Status s = ConnectWithTimeout(fd, addr, options.connect_timeout_ms,
                                  where);
    if (!s.ok()) {
      ::close(fd);
      return s;
    }
  } else if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                       sizeof(addr)) != 0) {
    Status s = Status::NotFound("cannot connect to " + where + ": " +
                                std::strerror(errno));
    ::close(fd);
    return s;
  }
  // The protocol is strict request/response with small frames; Nagle's
  // algorithm interacting with delayed ACKs would add tens of milliseconds
  // of idle stall to every round trip after the first.
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Client(fd, options.rpc_timeout_ms);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_), rpc_timeout_ms_(other.rpc_timeout_ms_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    rpc_timeout_ms_ = other.rpc_timeout_ms_;
    other.fd_ = -1;
  }
  return *this;
}

StatusOr<Response> Client::Call(const std::string& payload) {
  if (fd_ < 0) {
    return Status::FailedPrecondition("client is not connected");
  }
  Status written = WriteFrame(fd_, payload, rpc_timeout_ms_);
  if (!written.ok()) {
    if (written.code() == StatusCode::kDeadlineExceeded) {
      ::close(fd_);
      fd_ = -1;
    }
    return written;
  }
  auto reply = ReadFrame(fd_, rpc_timeout_ms_);
  if (!reply.ok()) {
    if (reply.status().code() == StatusCode::kDeadlineExceeded) {
      ::close(fd_);
      fd_ = -1;
    }
    return reply.status();
  }
  return DecodeResponse(*reply);
}

StatusOr<Response> Client::Load(const LoadRequest& req) {
  return Call(EncodeLoadRequest(req));
}

StatusOr<Response> Client::Append(const AppendRequest& req) {
  return Call(EncodeAppendRequest(req));
}

StatusOr<Response> Client::Compress(const CompressRequest& req) {
  return Call(EncodeCompressRequest(req));
}

StatusOr<Response> Client::Evaluate(const EvaluateRequest& req) {
  return Call(EncodeEvaluateRequest(req));
}

StatusOr<Response> Client::EvaluateScenarioProgram(
    const EvaluateScenarioProgramRequest& req) {
  return Call(EncodeEvaluateScenarioProgramRequest(req));
}

StatusOr<Response> Client::Info(const InfoRequest& req) {
  return Call(EncodeInfoRequest(req));
}

StatusOr<Response> Client::Tradeoff(const TradeoffRequest& req) {
  return Call(EncodeTradeoffRequest(req));
}

StatusOr<Response> Client::Shutdown(const ShutdownRequest& req) {
  return Call(EncodeShutdownRequest(req));
}

StatusOr<Response> Client::ListAlgos(const ListAlgosRequest& req) {
  return Call(EncodeListAlgosRequest(req));
}

StatusOr<Response> Client::ListBackends(const ListBackendsRequest& req) {
  return Call(EncodeListBackendsRequest(req));
}

}  // namespace provabs
