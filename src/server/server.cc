#include "server/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "server/wire_protocol.h"

namespace provabs {

Server::Server(ProvenanceService& service, const ServerOptions& options)
    : service_(service), options_(options) {}

Server::~Server() {
  Shutdown();
  Wait();
}

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("not a numeric IPv4 address: " +
                                   options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status s = Status::Internal("bind(" + options_.host + ":" +
                                std::to_string(options_.port) +
                                ") failed: " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    Status s = Status::Internal(std::string("getsockname() failed: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 64) != 0) {
    Status s = Status::Internal(std::string("listen() failed: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::AcceptLoop() {
  while (!shutting_down_.load()) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Transient pressure (fd exhaustion, client reset mid-handshake)
      // must not permanently kill the accept loop — back off and retry.
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
          errno == ENOBUFS || errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // Listener was shut down (or is irrecoverably broken).
    }
    // Responses are written as soon as they are ready; letting Nagle hold
    // them for a delayed ACK stalls every strict request/response client.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutting_down_.load()) {
        ::close(fd);
        break;
      }
      open_fds_.insert(fd);
      uint64_t conn_id = next_conn_id_++;
      conn_threads_.emplace(
          conn_id, std::thread([this, fd, conn_id] {
            ServeConnection(fd, conn_id);
          }));
    }
    ReapFinishedThreads();
  }
}

void Server::ReapFinishedThreads() {
  std::vector<std::thread> finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    finished.swap(finished_threads_);
  }
  for (std::thread& t : finished) t.join();
}

void Server::ServeConnection(int fd, uint64_t conn_id) {
  for (;;) {
    StatusOr<std::string> frame = ReadFrame(fd);
    if (!frame.ok()) break;  // Clean close, mid-frame EOF, or socket error.
    bool shutdown = false;
    std::string reply = service_.HandleFrame(*frame, &shutdown);
    Status written = WriteFrame(fd, reply);
    if (shutdown) {
      // Honor the shutdown even when the goodbye response failed to send.
      Shutdown();
      break;
    }
    if (!written.ok()) break;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  open_fds_.erase(fd);
  ::close(fd);
  // Park this thread's own handle for the reaper; Wait() may already have
  // claimed it (the map entry is then gone), in which case Wait joins us.
  auto self = conn_threads_.find(conn_id);
  if (self != conn_threads_.end()) {
    finished_threads_.push_back(std::move(self->second));
    conn_threads_.erase(self);
  }
}

void Server::Shutdown() {
  if (shutting_down_.exchange(true)) return;
  // Unblock accept(); the fd itself is closed after the accept thread has
  // been joined (closing here would race a concurrent accept()).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  // Unblock connection threads parked in ReadFrame. Only ::shutdown, never
  // ::close — each fd is closed exactly once by its owning thread.
  std::lock_guard<std::mutex> lock(mutex_);
  for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
}

void Server::Wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    threads.swap(finished_threads_);
    for (auto& [id, thread] : conn_threads_) {
      threads.push_back(std::move(thread));
    }
    conn_threads_.clear();
  }
  for (std::thread& t : threads) t.join();
  std::lock_guard<std::mutex> lock(mutex_);
  if (!joined_) {
    joined_ = true;
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
}

}  // namespace provabs
