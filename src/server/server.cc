#include "server/server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "server/wire_protocol.h"

namespace provabs {

namespace {

// epoll_event.data.u64 keys for the two loop-owned fds; connection ids
// start at 2 and never collide.
constexpr uint64_t kListenKey = 0;
constexpr uint64_t kWakeKey = 1;

uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void AppendFrameHeader(std::string& out, size_t payload_size) {
  uint32_t len = static_cast<uint32_t>(payload_size);
  out.push_back(static_cast<char>(len & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
}

uint32_t ReadFrameLength(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

Server::Server(ProvenanceService& service, const ServerOptions& options)
    : service_(service), options_(options) {}

Server::~Server() {
  Shutdown();
  Wait();
}

std::string Server::BuildRejectionFrame(const std::string& reason) const {
  Response resp;
  resp.code = StatusCode::kUnavailable;
  resp.message = reason;
  std::string payload = EncodeResponse(resp);
  std::string frame;
  frame.reserve(payload.size() + 4);
  AppendFrameHeader(frame, payload.size());
  frame += payload;
  return frame;
}

Status Server::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("Start() may only be called once");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket() failed: ") +
                            std::strerror(errno));
  }
  auto fail = [this](Status s) {
    if (listen_fd_ >= 0) ::close(listen_fd_);
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (reserve_fd_ >= 0) ::close(reserve_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = reserve_fd_ = -1;
    return s;
  };
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return fail(Status::InvalidArgument("not a numeric IPv4 address: " +
                                        options_.host));
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail(Status::Internal("bind(" + options_.host + ":" +
                                 std::to_string(options_.port) +
                                 ") failed: " + std::strerror(errno)));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0) {
    return fail(Status::Internal(std::string("getsockname() failed: ") +
                                 std::strerror(errno)));
  }
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 128) != 0) {
    return fail(Status::Internal(std::string("listen() failed: ") +
                                 std::strerror(errno)));
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return fail(Status::Internal(std::string("epoll_create1() failed: ") +
                                 std::strerror(errno)));
  }
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) {
    return fail(Status::Internal(std::string("eventfd() failed: ") +
                                 std::strerror(errno)));
  }
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return fail(Status::Internal(std::string("epoll_ctl(listen) failed: ") +
                                 std::strerror(errno)));
  }
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeKey;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return fail(Status::Internal(std::string("epoll_ctl(wake) failed: ") +
                                 std::strerror(errno)));
  }

  if (options_.idle_timeout_ms > 0) {
    wheel_tick_ms_ = std::min<uint64_t>(
        std::max<uint64_t>(options_.idle_timeout_ms / 8, 10), 1000);
    wheel_last_tick_ = NowMs() / wheel_tick_ms_;
  }

  size_t workers = options_.worker_threads != 0
                       ? options_.worker_threads
                       : std::max(1u, std::thread::hardware_concurrency());
  workers_ = std::make_unique<ThreadPool>(workers);

  service_.SetTransportStatsProvider([this](ServerStats& s) {
    s.active_connections = active_connections_.load();
    s.rejected_connections = rejected_connections_.load();
    s.idle_reaped = idle_reaped_.load();
    s.loop_wakeups = loop_wakeups_.load();
  });

  loop_thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Server::WakeLoop() {
  if (wake_fd_ < 0) return;
  uint64_t one = 1;
  // EAGAIN (counter saturated) still wakes the loop; nothing to handle.
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::Shutdown() {
  if (shutting_down_.exchange(true)) return;
  WakeLoop();
}

Server::TransportStats Server::transport_stats() const {
  TransportStats s;
  s.active_connections = active_connections_.load();
  s.rejected_connections = rejected_connections_.load();
  s.idle_reaped = idle_reaped_.load();
  s.loop_wakeups = loop_wakeups_.load();
  return s;
}

void Server::Loop() {
  std::vector<epoll_event> events(64);
  for (;;) {
    int timeout = -1;
    uint64_t now = NowMs();
    if (shutting_down_.load() && !draining_) BeginDrain(now);
    if (draining_ && conns_.empty()) break;
    if (draining_) {
      timeout = drain_deadline_ms_ > now
                    ? static_cast<int>(drain_deadline_ms_ - now)
                    : 0;
    } else if (wheel_tick_ms_ > 0 && !conns_.empty()) {
      timeout = static_cast<int>(wheel_tick_ms_);
    }
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), timeout);
    loop_wakeups_.fetch_add(1, std::memory_order_relaxed);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd is irrecoverably broken; exit and clean up.
    }
    now = NowMs();
    for (int i = 0; i < n; ++i) {
      uint64_t key = events[i].data.u64;
      if (key == kListenKey) {
        AcceptAll(now);
      } else if (key == kWakeKey) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
      } else {
        HandleConnEvent(key, events[i].events, now);
      }
    }
    ProcessCompletions(now);
    if (shutting_down_.load() && !draining_) BeginDrain(now);
    WheelAdvance(now);
    if (draining_) {
      if (conns_.empty()) break;
      if (now >= drain_deadline_ms_) break;  // drain budget exhausted
    }
  }
  // Force-close whatever survived the drain window.
  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConn(id);
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::AcceptAll(uint64_t now_ms) {
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // fd exhaustion: free the reserve descriptor, accept the waiting
        // connection, tell it why, and close — the backlog must not
        // silently fill while clients see neither accept nor error.
        if (reserve_fd_ >= 0) {
          ::close(reserve_fd_);
          reserve_fd_ = -1;
        }
        int victim = ::accept4(listen_fd_, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
        if (victim >= 0) {
          std::string frame = BuildRejectionFrame(
              "server out of file descriptors; retry later");
          // Best effort: the frame is smaller than any socket buffer, so
          // a single send normally delivers it whole.
          [[maybe_unused]] ssize_t sent =
              ::send(victim, frame.data(), frame.size(), MSG_NOSIGNAL);
          ::shutdown(victim, SHUT_WR);
          ::close(victim);
          rejected_connections_.fetch_add(1, std::memory_order_relaxed);
        }
        reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
        if (victim < 0) break;
        continue;
      }
      break;  // Listener closed or irrecoverably broken.
    }
    // Responses are written as soon as they are ready; letting Nagle hold
    // them for a delayed ACK stalls every strict request/response client.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (draining_) {
      ::close(fd);
      continue;
    }
    if (admitted_ >= options_.max_connections) {
      RejectConnection(
          fd, now_ms,
          "server at its connection limit (" +
              std::to_string(options_.max_connections) + "); retry later");
      continue;
    }
    uint64_t id = next_conn_id_++;
    Conn conn;
    conn.fd = fd;
    conn.id = id;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    auto it = conns_.emplace(id, std::move(conn)).first;
    ++admitted_;
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    WheelInsert(it->second, now_ms);
  }
}

void Server::RejectConnection(int fd, uint64_t now_ms,
                              const std::string& reason) {
  rejected_connections_.fetch_add(1, std::memory_order_relaxed);
  uint64_t id = next_conn_id_++;
  Conn conn;
  conn.fd = fd;
  conn.id = id;
  conn.rejected = true;
  conn.close_after_flush = true;
  conn.out = BuildRejectionFrame(reason);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  auto it = conns_.emplace(id, std::move(conn)).first;
  WheelInsert(it->second, now_ms);
  if (!FlushWrites(it->second)) return;
  MaybeCloseFlushed(it->second);
}

void Server::HandleConnEvent(uint64_t id, uint32_t events, uint64_t now_ms) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;  // Closed earlier this iteration.
  Conn& conn = it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    CloseConn(id);
    return;
  }
  if (events & EPOLLIN) {
    if (!ReadAvailable(conn, now_ms)) return;
  }
  if (events & EPOLLOUT) {
    if (!FlushWrites(conn)) return;
  }
  MaybeCloseFlushed(conn);
}

bool Server::ReadAvailable(Conn& conn, uint64_t now_ms) {
  char buf[64 * 1024];
  bool got_bytes = false;
  for (;;) {
    ssize_t r = ::read(conn.fd, buf, sizeof(buf));
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseConn(conn.id);
      return false;
    }
    if (r == 0) {
      conn.eof = true;
      break;
    }
    got_bytes = true;
    // Rejected connections and draining servers read-drain only: the
    // bytes keep level-triggered EPOLLIN quiet and let us detect EOF.
    if (conn.rejected || draining_) continue;
    conn.in.append(buf, static_cast<size_t>(r));
  }
  if (!conn.rejected && !draining_) {
    if (!ExtractFrames(conn)) {
      CloseConn(conn.id);
      return false;
    }
    if (got_bytes) WheelInsert(conn, now_ms);
    DispatchNext(conn);
  }
  if (conn.eof) {
    // Peer sent FIN. Finish what is already in flight / queued (a
    // half-closed peer may still read responses), then close. A partial
    // inbound frame is simply abandoned — it can never complete.
    conn.close_after_flush = true;
    conn.in.clear();
  }
  return true;
}

bool Server::ExtractFrames(Conn& conn) {
  size_t off = 0;
  while (conn.in.size() - off >= 4) {
    uint32_t len = ReadFrameLength(conn.in.data() + off);
    if (len > kMaxFrameBytes) return false;  // Protocol violation.
    if (conn.in.size() - off - 4 < len) break;
    conn.pending.emplace_back(conn.in.substr(off + 4, len));
    off += 4 + len;
  }
  conn.in.erase(0, off);
  return true;
}

void Server::DispatchNext(Conn& conn) {
  if (conn.in_flight || conn.pending.empty() || draining_) return;
  conn.in_flight = true;
  std::string payload = std::move(conn.pending.front());
  conn.pending.pop_front();
  uint64_t id = conn.id;
  workers_->Submit([this, id, payload = std::move(payload)]() mutable {
    bool shutdown = false;
    std::string reply = service_.HandleFrame(payload, &shutdown);
    {
      std::lock_guard<std::mutex> lock(comp_mutex_);
      completions_.push_back(Completion{id, std::move(reply), shutdown});
    }
    WakeLoop();
  });
}

void Server::ProcessCompletions(uint64_t now_ms) {
  std::vector<Completion> done;
  {
    std::lock_guard<std::mutex> lock(comp_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    if (c.shutdown) shutting_down_.store(true);
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // Peer vanished mid-request.
    Conn& conn = it->second;
    conn.in_flight = false;
    QueueFrame(conn, c.reply);
    if (c.shutdown) conn.close_after_flush = true;
    WheelInsert(conn, now_ms);
    if (!FlushWrites(conn)) continue;
    DispatchNext(conn);
    MaybeCloseFlushed(conn);
  }
}

void Server::QueueFrame(Conn& conn, std::string_view payload) {
  AppendFrameHeader(conn.out, payload.size());
  conn.out.append(payload.data(), payload.size());
}

bool Server::FlushWrites(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                       conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        UpdateEpollOut(conn, true);
        return true;
      }
      CloseConn(conn.id);
      return false;
    }
    conn.out_off += static_cast<size_t>(n);
  }
  conn.out.clear();
  conn.out_off = 0;
  UpdateEpollOut(conn, false);
  return true;
}

void Server::UpdateEpollOut(Conn& conn, bool want) {
  if (conn.epollout == want) return;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.epollout = want;
}

void Server::MaybeCloseFlushed(Conn& conn) {
  if (!conn.close_after_flush) return;
  if (conn.in_flight || !conn.pending.empty()) return;
  if (conn.out_off < conn.out.size()) return;
  if (conn.rejected && !conn.eof) {
    // The rejection frame is flushed; half-close and wait for the peer's
    // EOF so closing cannot turn the frame into a lost RST.
    if (!conn.shut_wr) {
      ::shutdown(conn.fd, SHUT_WR);
      conn.shut_wr = true;
    }
    return;
  }
  CloseConn(conn.id);
}

void Server::CloseConn(uint64_t id) {
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  ::close(conn.fd);
  if (!conn.rejected) {
    --admitted_;
    active_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
  conns_.erase(it);  // Stale wheel entries are skipped lazily.
}

void Server::WheelInsert(Conn& conn, uint64_t now_ms) {
  if (wheel_tick_ms_ == 0) return;
  // Rejected connections only wait for the peer to read the error frame;
  // give them a short leash independent of the configured idle budget.
  uint64_t budget = conn.rejected
                        ? std::min<uint64_t>(options_.idle_timeout_ms, 5000)
                        : options_.idle_timeout_ms;
  conn.idle_deadline_ms = now_ms + budget;
  size_t bucket =
      static_cast<size_t>((conn.idle_deadline_ms / wheel_tick_ms_) %
                          kWheelBuckets);
  wheel_[bucket].push_back(conn.id);
}

void Server::WheelAdvance(uint64_t now_ms) {
  if (wheel_tick_ms_ == 0) return;
  uint64_t cur = now_ms / wheel_tick_ms_;
  if (cur <= wheel_last_tick_) return;
  uint64_t steps = cur - wheel_last_tick_;
  // After a long quiet stretch one revolution visits every bucket; any
  // expired entry is found because expiry checks absolute deadlines.
  if (steps > kWheelBuckets) steps = kWheelBuckets;
  for (uint64_t s = 1; s <= steps; ++s) {
    size_t bucket = static_cast<size_t>((wheel_last_tick_ + s) %
                                        kWheelBuckets);
    std::vector<uint64_t> ids;
    ids.swap(wheel_[bucket]);
    for (uint64_t id : ids) {
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;  // Closed since scheduling: stale.
      Conn& conn = it->second;
      if (conn.idle_deadline_ms > now_ms) {
        // Activity pushed the deadline out; re-home to its current slot.
        size_t dest = static_cast<size_t>(
            (conn.idle_deadline_ms / wheel_tick_ms_) % kWheelBuckets);
        wheel_[dest].push_back(id);
        continue;
      }
      if (conn.in_flight) {
        // A request is still executing; not idle. Check again next lap.
        wheel_[bucket].push_back(id);
        continue;
      }
      idle_reaped_.fetch_add(1, std::memory_order_relaxed);
      CloseConn(id);
    }
  }
  wheel_last_tick_ = cur;
}

void Server::BeginDrain(uint64_t now_ms) {
  draining_ = true;
  drain_deadline_ms_ = now_ms + options_.drain_timeout_ms;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<uint64_t> ids;
  ids.reserve(conns_.size());
  for (auto& [id, conn] : conns_) {
    // Finish what is executing, flush what is queued; never start more.
    conn.pending.clear();
    conn.in.clear();
    conn.close_after_flush = true;
    ids.push_back(id);
  }
  for (uint64_t id : ids) {
    auto it = conns_.find(id);
    if (it != conns_.end()) MaybeCloseFlushed(it->second);
  }
}

void Server::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mutex_);
  if (loop_thread_.joinable()) loop_thread_.join();
  if (joined_) return;
  joined_ = true;
  // Workers may still be finishing handler tasks whose connections are
  // gone; they only touch the completion queue and the wakeup eventfd,
  // both still alive here. Destroying the pool joins them.
  workers_.reset();
  if (started_.load()) service_.SetTransportStatsProvider(nullptr);
  if (wake_fd_ >= 0) {
    ::close(wake_fd_);
    wake_fd_ = -1;
  }
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (reserve_fd_ >= 0) {
    ::close(reserve_fd_);
    reserve_fd_ = -1;
  }
}

}  // namespace provabs
