#ifndef PROVABS_SERVER_ARTIFACT_STORE_H_
#define PROVABS_SERVER_ARTIFACT_STORE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// A named, immutable-after-load provenance artifact resident in the server:
/// the deserialized polynomial set, the abstraction forests defined over it,
/// and the VariableTable both share (compression requires polynomials and
/// forest to agree on ids). The raw serialized buffers are retained so a
/// later forest-only load can rebuild the bundle into a fresh table.
///
/// Artifacts are exposed as `shared_ptr<const Artifact>`: once handed out
/// they are never mutated, so concurrent request threads may read them
/// without locks, and LRU eviction cannot invalidate an in-flight request.
struct Artifact {
  /// Monotonic store-wide load counter; cached compression results embed it
  /// in their key, so reloading an artifact implicitly invalidates them.
  uint64_t generation = 0;
  std::shared_ptr<VariableTable> vars;
  PolynomialSet polys;
  std::string polys_bytes;
  std::map<std::string, AbstractionForest> forests;
  std::map<std::string, std::string> forest_bytes;
  size_t approx_bytes = 0;

  /// nullptr when no forest of that name was loaded.
  const AbstractionForest* FindForest(const std::string& name) const {
    auto it = forests.find(name);
    return it == forests.end() ? nullptr : &it->second;
  }
};

/// Rough resident-size estimate of a deserialized polynomial set, used for
/// byte-budget accounting (exact heap accounting is not worth the
/// bookkeeping; the estimate is within a small constant of malloc reality).
size_t ApproxPolynomialSetBytes(const PolynomialSet& polys);

/// Byte-budgeted LRU cache over two kinds of entries: deserialized
/// artifacts (keyed by name) and compression results (keyed by artifact
/// generation + forest + bound + algo). Repeat loads skip deserialization;
/// repeat compressions skip the DP entirely — the heart of the paper's
/// "compress once, evaluate interactively" deployment story.
///
/// Eviction walks a single recency list across both entry kinds, dropping
/// the least-recently-used entry until the budget is met; the most recent
/// entry is never evicted, so a budget smaller than one artifact still
/// serves that artifact (it just caches nothing else). All methods are
/// thread-safe.
class ArtifactStore {
 public:
  explicit ArtifactStore(size_t byte_budget) : byte_budget_(byte_budget) {}

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Deserializes and installs artifact `name`, replacing any previous
  /// version. `forests` pairs forest names with serialized forest buffers.
  /// When `polys_bytes` is empty, the artifact must already exist: its
  /// polynomials and previously loaded forests are rebuilt into a fresh
  /// VariableTable and the new forests merged in.
  StatusOr<std::shared_ptr<const Artifact>> Load(
      const std::string& name, std::string polys_bytes,
      const std::vector<std::pair<std::string, std::string>>& forests);

  /// Fetches a loaded artifact (refreshing its recency), or nullptr.
  std::shared_ptr<const Artifact> Get(const std::string& name);

  /// Identity of one compression run; `generation` ties the entry to the
  /// artifact version it was computed from.
  struct ResultKey {
    std::string artifact;
    uint64_t generation = 0;
    std::string forest;
    uint64_t bound = 0;
    std::string algo;
  };

  /// A cached compression: the loss report plus the compressed polynomial
  /// set (kept so evaluate-over-compressed requests skip both the DP and
  /// the substitution).
  struct CompressedResult {
    LossReport loss;
    bool adequate = false;
    std::string vvs_names;
    PolynomialSet compressed;
    size_t approx_bytes = 0;
  };

  /// Cache lookup; counts a hit or miss. nullptr on miss.
  std::shared_ptr<const CompressedResult> LookupResult(const ResultKey& key);

  /// Inserts a computed result (last-writer-wins on racing identical keys)
  /// and returns the cached object, so the caller shares the allocation
  /// instead of copying the compressed polynomial set.
  std::shared_ptr<const CompressedResult> InsertResult(
      const ResultKey& key, CompressedResult result);

  struct Stats {
    uint64_t artifact_count = 0;
    uint64_t result_count = 0;
    uint64_t cached_bytes = 0;
    uint64_t byte_budget = 0;
    uint64_t result_hits = 0;
    uint64_t result_misses = 0;
    uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  /// Cache slots are keyed by a tag byte + encoded identity so artifact and
  /// result entries share one map and one recency list.
  struct Slot {
    std::shared_ptr<const Artifact> artifact;        // exactly one of these
    std::shared_ptr<const CompressedResult> result;  // two is non-null
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  static std::string ArtifactSlotKey(const std::string& name);
  static std::string ResultSlotKey(const ResultKey& key);

  /// Moves `it`'s slot to the front of the recency list. Requires mutex_.
  void Touch(std::unordered_map<std::string, Slot>::iterator it);
  /// Installs/replaces a slot and evicts down to budget. Requires mutex_.
  void InsertSlot(const std::string& slot_key, Slot slot);
  /// Evicts LRU entries until within budget (keeping ≥1 entry). Requires
  /// mutex_.
  void EvictToBudget();

  /// Serializes whole Load() cycles (read existing → deserialize → install)
  /// so concurrent loads of one artifact cannot lose each other's forest
  /// merges. Distinct from mutex_ on purpose: deserialization is slow, and
  /// Get/LookupResult traffic must not stall behind it.
  std::mutex load_mutex_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;  // front = most recently used slot key
  std::unordered_map<std::string, Slot> slots_;
  size_t byte_budget_;
  size_t used_bytes_ = 0;
  // Counts are maintained incrementally: stats() runs on every response,
  // so it must not walk the slot map under the global mutex.
  uint64_t artifact_count_ = 0;
  uint64_t result_count_ = 0;
  uint64_t next_generation_ = 1;
  uint64_t result_hits_ = 0;
  uint64_t result_misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace provabs

#endif  // PROVABS_SERVER_ARTIFACT_STORE_H_
