#ifndef PROVABS_SERVER_ARTIFACT_STORE_H_
#define PROVABS_SERVER_ARTIFACT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "abstraction/abstraction_forest.h"
#include "abstraction/loss.h"
#include "algo/compressor.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"
#include "core/variable.h"
#include "scenario/program.h"
#include "server/inflight_registry.h"

namespace provabs {

/// A named, immutable-after-load provenance artifact resident in the server:
/// the deserialized polynomial set, the abstraction forests defined over it,
/// and the VariableTable both share (compression requires polynomials and
/// forest to agree on ids). The raw serialized buffers are retained so a
/// later forest-only load can rebuild the bundle into a fresh table.
///
/// Artifacts are exposed as `shared_ptr<const Artifact>`: once handed out
/// they are never mutated, so concurrent request threads may read them
/// without locks, and LRU eviction cannot invalidate an in-flight request.
/// `polys` carries its compiled CSR evaluation form (warmed at load by the
/// byte estimator below), so evaluate requests go straight to flat-array
/// walks; reloading produces a fresh Artifact and therefore a fresh
/// compiled form — generation-keyed invalidation for free.
struct Artifact {
  /// Monotonic store-wide load counter; cached compression results embed it
  /// in their key, so reloading an artifact implicitly invalidates them.
  uint64_t generation = 0;
  std::shared_ptr<VariableTable> vars;
  PolynomialSet polys;
  std::string polys_bytes;
  std::map<std::string, AbstractionForest> forests;
  std::map<std::string, std::string> forest_bytes;
  size_t approx_bytes = 0;

  /// One predecessor generation this artifact's polynomials grew from by
  /// appends alone: the generation number and the polys.revision() snapshot
  /// it corresponds to, so `polys.DeltaSince(revision)` reconstructs the
  /// exact update between the two versions.
  struct Ancestor {
    uint64_t generation = 0;
    uint64_t revision = 0;
  };
  /// Patchable predecessors, oldest first (recorded by Append; empty after
  /// a full (re)load, which severs the chain). Bounded by kMaxAncestry —
  /// the PolynomialSet delta log is itself bounded, so deep chains would
  /// mostly resolve to "delta incomplete" anyway.
  std::vector<Ancestor> ancestry;
  static constexpr size_t kMaxAncestry = 8;

  /// nullptr when no forest of that name was loaded.
  const AbstractionForest* FindForest(const std::string& name) const {
    auto it = forests.find(name);
    return it == forests.end() ? nullptr : &it->second;
  }
};

/// Rough resident-size estimate of a deserialized polynomial set, used for
/// byte-budget accounting (exact heap accounting is not worth the
/// bookkeeping; the estimate is within a small constant of malloc reality).
/// Includes — and warms — the set's compiled CSR evaluation form
/// (core/compiled_polynomial_set.h): both artifact loads and compressed-
/// result inserts pass through this estimator, so every cached set is
/// compiled before it is ever served and evaluate requests never compile.
/// The compiled form is keyed by the artifact's lifetime itself (it lives
/// inside the cached set), so generation bumps and LRU eviction invalidate
/// it together with the entry whose budget it was charged to.
size_t ApproxPolynomialSetBytes(const PolynomialSet& polys);

/// Byte-budgeted LRU cache over two kinds of entries: deserialized
/// artifacts (keyed by name) and compression results (keyed by artifact
/// generation + forest + bound + algo). Repeat loads skip deserialization;
/// repeat compressions skip the DP entirely — the heart of the paper's
/// "compress once, evaluate interactively" deployment story.
///
/// The cache is sharded: slot keys hash to one of `shards` independent
/// (mutex, map, recency list) triples, so concurrent requests for distinct
/// keys usually take different locks (keys hashing into the same shard
/// still share one — sharding reduces contention, it cannot eliminate it). Each shard owns an equal fraction of the
/// byte budget and evicts its own least-recently-used entries; a shard's
/// most recent entry is never evicted, so a budget smaller than one
/// artifact still serves that artifact (it just caches nothing else). The
/// static slicing trades capacity precision for lock independence: the
/// worst-case overshoot is `shards` oversized most-recent entries (the
/// global LRU's bound times the shard count), and keys hashing unevenly
/// see less usable budget than the configured total. Deployments that care
/// more about the byte bound than about lock contention can construct with
/// `shards = 1` and get the old global-LRU behavior exactly. All methods
/// are thread-safe.
///
/// On top of the cache sits a single-flight layer (`GetOrCompute`): the
/// first request for an uncached key runs the compute function, concurrent
/// identical requests wait for that run's outcome, and only *completed*
/// results are ever published to the cache — a failed computation returns
/// its Status to everyone waiting and leaves no trace.
class ArtifactStore {
 public:
  /// Shard count used when the constructor argument is 0. Eight shards keep
  /// lock contention negligible for tens of connection threads without
  /// fragmenting small byte budgets into uselessly tiny slices.
  static constexpr size_t kDefaultShards = 8;

  explicit ArtifactStore(size_t byte_budget, size_t shards = 0);

  ArtifactStore(const ArtifactStore&) = delete;
  ArtifactStore& operator=(const ArtifactStore&) = delete;

  /// Deserializes and installs artifact `name`, replacing any previous
  /// version. `forests` pairs forest names with serialized forest buffers.
  /// When `polys_bytes` is empty, the artifact must already exist: its
  /// polynomials and previously loaded forests are rebuilt into a fresh
  /// VariableTable and the new forests merged in.
  StatusOr<std::shared_ptr<const Artifact>> Load(
      const std::string& name, std::string polys_bytes,
      const std::vector<std::pair<std::string, std::string>>& forests);

  /// Appends the polynomials of a serialized PolynomialSet buffer to the
  /// loaded artifact `name`, producing (and installing) a NEW immutable
  /// Artifact at a bumped generation whose delta log and ancestry record
  /// the update — so a later compression of the new generation can patch a
  /// cached predecessor's DP state instead of re-running (see
  /// ProvenanceService::CompressInternal). The previous Artifact object is
  /// untouched; in-flight requests holding it are unaffected.
  StatusOr<std::shared_ptr<const Artifact>> Append(
      const std::string& name, const std::string& polys_bytes);

  /// Fetches a loaded artifact (refreshing its recency), or nullptr.
  std::shared_ptr<const Artifact> Get(const std::string& name);

  /// Identity of one compression run; `generation` ties the entry to the
  /// artifact version it was computed from.
  struct ResultKey {
    std::string artifact;
    uint64_t generation = 0;
    std::string forest;
    uint64_t bound = 0;
    std::string algo;
  };

  /// A cached compression: the loss report plus the compressed polynomial
  /// set (kept so evaluate-over-compressed requests skip both the
  /// algorithm run and the substitution). `algo` in the key names any
  /// registered compressor, so caching and single-flight dedup compose
  /// identically for all of them — including the exponential "brute" and
  /// "prox", where skipping a repeat run matters most.
  struct CompressedResult {
    LossReport loss;
    bool adequate = false;
    std::string vvs_names;
    PolynomialSet compressed;
    size_t approx_bytes = 0;
    /// The algorithm-layer result this entry was built from, retained in
    /// memory only (its dp_state is never serialized). When the algorithm
    /// produced retained DP tables, a later generation's compression can
    /// hand them to OptimalRecompress instead of re-running the full DP.
    CompressionResult algo_result;
    /// True when this entry itself was produced by the patch path.
    bool delta_patched = false;
  };

  /// Cache lookup; counts a hit or miss. nullptr on miss.
  std::shared_ptr<const CompressedResult> LookupResult(const ResultKey& key);

  /// Cache lookup that records neither a hit nor a miss — the delta-patch
  /// path probes ancestor generations with it, and a probe is telemetry
  /// about the PATCH path, not about serving (the new generation's own
  /// miss was already counted). Still refreshes recency.
  std::shared_ptr<const CompressedResult> PeekResult(const ResultKey& key);

  /// Inserts a computed result (last-writer-wins on racing identical keys)
  /// and returns the cached object, so the caller shares the allocation
  /// instead of copying the compressed polynomial set.
  std::shared_ptr<const CompressedResult> InsertResult(
      const ResultKey& key, CompressedResult result);

  /// Produces the result to publish for an uncached key. Runs on the
  /// calling thread with no store or registry lock held.
  using ResultComputeFn = std::function<StatusOr<CompressedResult>()>;

  /// How one GetOrCompute call was answered, for per-response reporting.
  struct GetOrComputeInfo {
    bool cache_hit = false;  ///< Answered from the result cache (no wait).
    bool dedup_hit = false;  ///< Waited on another request's computation.
  };

  /// Single-flight cache fill: returns the cached result for `key` if
  /// present; otherwise the first caller runs `compute` while concurrent
  /// identical callers block on its outcome (distinct keys proceed in
  /// parallel). A successful result is inserted into the cache *before*
  /// being published to waiters; a failure is returned as its Status to the
  /// leader and every waiter, and is never cached — the next non-concurrent
  /// request retries from scratch.
  StatusOr<std::shared_ptr<const CompressedResult>> GetOrCompute(
      const ResultKey& key, const ResultComputeFn& compute,
      GetOrComputeInfo* info = nullptr);

  /// Identity of one compiled scenario program: the target view it was
  /// analyzed against (artifact + generation, and for compressed targets
  /// the full compression key) plus a hash of the source text. A reload
  /// bumps the generation and implicitly invalidates cached programs, the
  /// same mechanism ResultKey uses.
  struct ProgramKey {
    std::string artifact;
    uint64_t generation = 0;
    bool compressed = false;
    std::string forest;
    uint64_t bound = 0;
    std::string algo;
    uint64_t source_hash = 0;
  };

  /// FNV-1a 64 of the program source, for ProgramKey::source_hash.
  static uint64_t HashProgramSource(std::string_view source);

  /// Cache lookup for a compiled scenario program; counts a program hit or
  /// miss. nullptr on miss.
  std::shared_ptr<const scenario::ScenarioProgram> LookupProgram(
      const ProgramKey& key);

  /// Caches a compiled program (last-writer-wins on racing identical keys).
  /// Programs share the byte budget and LRU with artifacts and results —
  /// they hold a shared_ptr to their compiled form, so an evicted or
  /// reloaded artifact stays alive for any program still cached against it.
  std::shared_ptr<const scenario::ScenarioProgram> InsertProgram(
      const ProgramKey& key, scenario::ScenarioProgram program);

  struct Stats {
    uint64_t artifact_count = 0;
    uint64_t result_count = 0;
    uint64_t program_count = 0;
    uint64_t cached_bytes = 0;
    uint64_t byte_budget = 0;
    uint64_t result_hits = 0;
    uint64_t result_misses = 0;
    uint64_t evictions = 0;
    uint64_t dedup_hits = 0;        ///< Requests served by waiting (total).
    uint64_t inflight_waiters = 0;  ///< Requests blocked right now (gauge).
    uint64_t program_hits = 0;
    uint64_t program_misses = 0;
  };
  Stats stats() const;

  /// Single-flight internals, exposed for tests and the stats block.
  const InflightRegistry& inflight() const { return inflight_; }

 private:
  /// Cache slots are keyed by a tag byte + encoded identity so artifact,
  /// result, and program entries share one map and one recency list per
  /// shard.
  struct Slot {
    std::shared_ptr<const Artifact> artifact;  // exactly one of these
    std::shared_ptr<const CompressedResult> result;  // three is non-null
    std::shared_ptr<const scenario::ScenarioProgram> program;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// One independently locked cache partition.
  struct Shard {
    mutable std::mutex mutex;
    std::list<std::string> lru;  // front = most recently used slot key
    std::unordered_map<std::string, Slot> slots;
    size_t byte_budget = 0;
    size_t used_bytes = 0;
  };

  static std::string ArtifactSlotKey(const std::string& name);
  static std::string ResultSlotKey(const ResultKey& key);
  static std::string ProgramSlotKey(const ProgramKey& key);

  Shard& ShardFor(const std::string& slot_key);

  /// The per-kind count a slot contributes to (artifact_count_,
  /// result_count_, or program_count_).
  std::atomic<uint64_t>& CountFor(const Slot& slot);

  /// What the hit/miss counters should record for one lookup.
  /// GetOrCompute's post-claim re-check counts a hit (its response reports
  /// cache_hit=true, and the cumulative counters on the same envelope must
  /// agree) but never a miss (the caller's original lookup already
  /// recorded that miss).
  enum class CountMode { kHitsAndMisses, kHitsOnly, kNone };

  /// Result lookup by pre-encoded slot key; the public LookupResult and
  /// GetOrCompute share it so a cold fill encodes the key only once.
  std::shared_ptr<const CompressedResult> LookupSlot(
      const std::string& slot_key, CountMode mode);
  std::shared_ptr<const CompressedResult> InsertResultSlot(
      const std::string& slot_key, CompressedResult result);

  /// Moves `it`'s slot to the front of the shard's recency list. Requires
  /// shard.mutex.
  static void Touch(Shard& shard,
                    std::unordered_map<std::string, Slot>::iterator it);
  /// Installs/replaces a slot and evicts the shard down to its budget.
  /// Requires shard.mutex.
  void InsertSlot(Shard& shard, const std::string& slot_key, Slot slot);
  /// Evicts the shard's LRU entries until within budget (keeping ≥1
  /// entry). Requires shard.mutex.
  void EvictToBudget(Shard& shard);

  /// Serializes whole Load() cycles (read existing → deserialize → install)
  /// so concurrent loads of one artifact cannot lose each other's forest
  /// merges. Distinct from the shard mutexes on purpose: deserialization is
  /// slow, and Get/LookupResult traffic must not stall behind it.
  std::mutex load_mutex_;
  const size_t byte_budget_;
  std::vector<Shard> shards_;
  InflightRegistry inflight_;
  // Store-wide counters are plain atomics (not per-shard fields) so stats()
  // — which runs on every response — reads them without taking a single
  // shard lock, and so TSan-clean increments never require widening a
  // critical section. `used_bytes_total_` mirrors the sum of the shards'
  // `used_bytes` (each shard's own field, guarded by its mutex, stays
  // authoritative for eviction decisions).
  std::atomic<uint64_t> used_bytes_total_{0};
  std::atomic<uint64_t> artifact_count_{0};
  std::atomic<uint64_t> result_count_{0};
  std::atomic<uint64_t> next_generation_{1};
  std::atomic<uint64_t> result_hits_{0};
  std::atomic<uint64_t> result_misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> program_count_{0};
  std::atomic<uint64_t> program_hits_{0};
  std::atomic<uint64_t> program_misses_{0};
};

}  // namespace provabs

#endif  // PROVABS_SERVER_ARTIFACT_STORE_H_
