#include "server/evaluate_batcher.h"

#include <algorithm>
#include <map>
#include <utility>

namespace provabs {

namespace {

/// Polynomials per pool chunk within a group; each chunk carries the whole
/// scenario group so the backend keeps full lanes.
constexpr size_t kPolysPerChunk = 64;

}  // namespace

StatusOr<std::vector<double>> EvaluateBatcher::Evaluate(
    std::shared_ptr<const PolynomialSet> polys, Valuation val,
    const std::string& backend) {
  auto item = std::make_shared<Pending>();
  item->polys = std::move(polys);
  // Resolve the compiled form and materialize the valuation on the caller
  // thread, outside the batcher lock: the compiled form is cached on the
  // set (pre-warmed for server artifacts), and materialization is one hash
  // probe per distinct variable. Workers then touch only flat arrays.
  item->compiled = item->polys->Compiled();
  item->dense = item->compiled->MaterializeValuation(val);
  item->backend = backend;

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(item);
  ++stats_.requests;
  while (!item->done) {
    if (leader_active_) {
      // A leader is running a batch; wait until our slot is filled, or
      // until leadership frees up and it is our turn to run the next
      // batch (a leader serves exactly one batch, so a continuous stream
      // of arrivals cannot trap one caller in the leader role).
      done_cv_.wait(lock, [&] { return item->done || !leader_active_; });
      continue;
    }
    LeadOneBatch(lock);
  }
  if (!item->status.ok()) return item->status;
  return std::move(item->out);
}

StatusOr<std::vector<std::vector<double>>> EvaluateBatcher::EvaluateDense(
    std::shared_ptr<const PolynomialSet> polys,
    std::shared_ptr<const CompiledPolynomialSet> compiled,
    std::vector<DenseValuation> scenarios, const std::string& backend) {
  if (compiled == nullptr) {
    return Status::InvalidArgument("EvaluateDense needs a compiled form");
  }
  if (scenarios.empty()) return std::vector<std::vector<double>>{};
  for (const DenseValuation& dense : scenarios) {
    if (dense.source_fingerprint() != compiled->fingerprint()) {
      return Status::InvalidArgument(
          "scenario valuation was materialized against a different compiled "
          "form (fingerprint mismatch)");
    }
  }
  std::vector<std::shared_ptr<Pending>> items;
  items.reserve(scenarios.size());
  for (DenseValuation& dense : scenarios) {
    auto item = std::make_shared<Pending>();
    item->polys = polys;
    item->compiled = compiled;
    item->dense = std::move(dense);
    item->backend = backend;
    items.push_back(std::move(item));
  }

  // All items are published under one lock hold, so whichever leader next
  // drains the queue takes the whole family as one lane group; waiting on
  // the last item therefore waits for all of them.
  Pending& last = *items.back();
  std::unique_lock<std::mutex> lock(mutex_);
  for (auto& item : items) queue_.push_back(item);
  stats_.requests += items.size();
  while (!last.done) {
    if (leader_active_) {
      done_cv_.wait(lock, [&] { return last.done || !leader_active_; });
      continue;
    }
    LeadOneBatch(lock);
  }
  std::vector<std::vector<double>> results;
  results.reserve(items.size());
  for (const auto& item : items) {
    if (!item->status.ok()) return item->status;
    results.push_back(std::move(item->out));
  }
  return results;
}

void EvaluateBatcher::LeadOneBatch(std::unique_lock<std::mutex>& lock) {
  leader_active_ = true;
  std::vector<std::shared_ptr<Pending>> batch = std::move(queue_);
  queue_.clear();
  ++stats_.batches;
  stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
  lock.unlock();

  uint64_t groups = 0;
  uint64_t backend_calls = 0;
  RunBatch(batch, &groups, &backend_calls);

  lock.lock();
  stats_.groups += groups;
  stats_.backend_calls += backend_calls;
  for (const auto& done : batch) done->done = true;
  leader_active_ = false;
  done_cv_.notify_all();
}

void EvaluateBatcher::RunBatch(
    const std::vector<std::shared_ptr<Pending>>& batch, uint64_t* groups,
    uint64_t* backend_calls) {
  // Group by (compiled form, requested backend): same artifact + same
  // strategy = shareable scenario lanes. Keyed by the compiled SNAPSHOT
  // pointer (not the set), so a request materialized before a concurrent
  // mutation recompiled its set still evaluates against the snapshot it
  // was materialized from — the fingerprint contract holds by
  // construction.
  struct Group {
    const EvaluationBackend* backend = nullptr;
    std::vector<Pending*> items;
    std::vector<const DenseValuation*> scenarios;
  };
  std::map<std::pair<const CompiledPolynomialSet*, std::string>, Group>
      by_key;
  for (const auto& item : batch) {
    by_key[{item->compiled.get(), item->backend}].items.push_back(item.get());
  }
  *groups = by_key.size();

  // Resolve each group's backend and lay out chunks. Chunking is
  // min(ceil(P / 64), pool width): wide enough to use the pool on large
  // artifacts, and exactly ONE EvaluateBatch call per group on a 1-thread
  // pool (asserted by tests via a counting backend).
  struct Chunk {
    Group* group;
    size_t poly_begin;
    size_t poly_end;
  };
  std::vector<Chunk> chunks;
  for (auto& [key, group] : by_key) {
    const CompiledPolynomialSet* compiled = key.first;
    StatusOr<const EvaluationBackend*> resolved =
        registry_->ResolveForBatch(key.second, group.items.size());
    if (!resolved.ok()) {
      for (Pending* item : group.items) item->status = resolved.status();
      continue;
    }
    group.backend = *resolved;
    group.scenarios.reserve(group.items.size());
    for (Pending* item : group.items) {
      item->out.resize(compiled->poly_count());
      group.scenarios.push_back(&item->dense);
    }
    const size_t poly_count = compiled->poly_count();
    if (poly_count == 0) continue;
    const size_t by_size = (poly_count + kPolysPerChunk - 1) / kPolysPerChunk;
    const size_t n_chunks =
        std::max<size_t>(1, std::min(by_size, pool_.thread_count()));
    const size_t per_chunk = (poly_count + n_chunks - 1) / n_chunks;
    for (size_t c = 0; c < n_chunks; ++c) {
      const size_t begin = c * per_chunk;
      const size_t end = std::min(poly_count, begin + per_chunk);
      if (begin < end) chunks.push_back(Chunk{&group, begin, end});
    }
  }
  *backend_calls = chunks.size();
  if (chunks.empty()) return;

  std::vector<Status> chunk_status(chunks.size());
  pool_.ParallelFor(chunks.size(), [&](size_t c) {
    const Chunk& chunk = chunks[c];
    const Group& group = *chunk.group;
    const CompiledPolynomialSet& compiled =
        *group.items.front()->compiled;
    std::vector<double*> out_ptrs(group.items.size());
    for (size_t s = 0; s < group.items.size(); ++s) {
      out_ptrs[s] = group.items[s]->out.data() + chunk.poly_begin;
    }
    chunk_status[c] = group.backend->EvaluateBatch(
        compiled, chunk.poly_begin, chunk.poly_end, group.scenarios.data(),
        out_ptrs.data(), group.scenarios.size());
  });
  for (size_t c = 0; c < chunks.size(); ++c) {
    if (chunk_status[c].ok()) continue;
    for (Pending* item : chunks[c].group->items) {
      if (item->status.ok()) item->status = chunk_status[c];
    }
  }
}

EvaluateBatcher::Stats EvaluateBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace provabs
