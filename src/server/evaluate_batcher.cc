#include "server/evaluate_batcher.h"

#include <algorithm>

namespace provabs {

std::vector<double> EvaluateBatcher::Evaluate(
    std::shared_ptr<const PolynomialSet> polys, Valuation val) {
  auto item = std::make_shared<Pending>();
  item->polys = std::move(polys);
  // Resolve the compiled form and materialize the valuation on the caller
  // thread, outside the batcher lock: the compiled form is cached on the
  // set (pre-warmed for server artifacts), and materialization is one hash
  // probe per distinct variable. Workers then touch only flat arrays.
  item->compiled = item->polys->Compiled();
  item->dense = item->compiled->MaterializeValuation(val);

  std::unique_lock<std::mutex> lock(mutex_);
  queue_.push_back(item);
  ++stats_.requests;
  while (!item->done) {
    if (leader_active_) {
      // A leader is running a batch; wait until our slot is filled, or
      // until leadership frees up and it is our turn to run the next
      // batch (a leader serves exactly one batch, so a continuous stream
      // of arrivals cannot trap one caller in the leader role).
      done_cv_.wait(lock, [&] { return item->done || !leader_active_; });
      continue;
    }
    leader_active_ = true;
    std::vector<std::shared_ptr<Pending>> batch = std::move(queue_);
    queue_.clear();
    ++stats_.batches;
    stats_.max_batch = std::max<uint64_t>(stats_.max_batch, batch.size());
    lock.unlock();

    // Flatten the batch into (request, polynomial) work units so the pool
    // splits the union contiguously regardless of per-request sizes.
    std::vector<size_t> offsets(batch.size() + 1, 0);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i]->out.resize(batch[i]->polys->count());
      offsets[i + 1] = offsets[i] + batch[i]->polys->count();
    }
    pool_.ParallelFor(offsets.back(), [&](size_t unit) {
      size_t req = static_cast<size_t>(
          std::upper_bound(offsets.begin(), offsets.end(), unit) -
          offsets.begin() - 1);
      size_t poly = unit - offsets[req];
      batch[req]->out[poly] =
          batch[req]->compiled->EvaluateOne(poly, batch[req]->dense);
    });

    lock.lock();
    for (const auto& done : batch) done->done = true;
    leader_active_ = false;
    done_cv_.notify_all();
  }
  return std::move(item->out);
}

EvaluateBatcher::Stats EvaluateBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace provabs
