#include "server/artifact_store.h"

#include "io/byte_stream.h"
#include "io/serializer.h"

namespace provabs {

size_t ApproxPolynomialSetBytes(const PolynomialSet& polys) {
  size_t bytes = sizeof(PolynomialSet);
  for (const Polynomial& p : polys.polynomials()) {
    bytes += 64;  // Polynomial object + vector headers.
    for (const Monomial& m : p.monomials()) {
      bytes += 48 + m.factors().size() * sizeof(Factor);
    }
  }
  return bytes;
}

namespace {

size_t ApproxArtifactBytes(const Artifact& artifact) {
  size_t bytes = ApproxPolynomialSetBytes(artifact.polys);
  bytes += artifact.polys_bytes.size();
  bytes += artifact.vars->size() * 48;  // interner strings + index entries
  for (const auto& [name, forest] : artifact.forests) {
    bytes += name.size() + forest.TotalNodes() * 64;
  }
  for (const auto& [name, raw] : artifact.forest_bytes) {
    bytes += name.size() + raw.size();
  }
  return bytes;
}

}  // namespace

std::string ArtifactStore::ArtifactSlotKey(const std::string& name) {
  return "a" + name;
}

std::string ArtifactStore::ResultSlotKey(const ResultKey& key) {
  // Length-prefixed fields make the encoding injective even when names
  // contain arbitrary bytes.
  ByteWriter w;
  w.PutU8('r');
  w.PutString(key.artifact);
  w.PutVarint(key.generation);
  w.PutString(key.forest);
  w.PutVarint(key.bound);
  w.PutString(key.algo);
  return std::move(w).Release();
}

StatusOr<std::shared_ptr<const Artifact>> ArtifactStore::Load(
    const std::string& name, std::string polys_bytes,
    const std::vector<std::pair<std::string, std::string>>& forests) {
  // One load at a time: the read-merge-install cycle below must not
  // interleave with another load of the same artifact (lost update).
  std::lock_guard<std::mutex> load_lock(load_mutex_);
  // Forest-only loads rebuild on top of the existing artifact's raw bytes.
  std::map<std::string, std::string> forest_bytes;
  if (polys_bytes.empty()) {
    std::shared_ptr<const Artifact> existing = Get(name);
    if (existing == nullptr) {
      return Status::NotFound("artifact '" + name +
                              "' not loaded (a first load needs polynomials)");
    }
    polys_bytes = existing->polys_bytes;
    forest_bytes = existing->forest_bytes;
  }
  for (const auto& [forest_name, bytes] : forests) {
    forest_bytes[forest_name] = bytes;
  }

  // Deserialization happens outside the lock: loads are rare but heavy, and
  // must not stall concurrent evaluate traffic on other artifacts.
  auto artifact = std::make_shared<Artifact>();
  artifact->vars = std::make_shared<VariableTable>();
  auto polys = DeserializePolynomialSet(polys_bytes, *artifact->vars);
  if (!polys.ok()) return polys.status();
  artifact->polys = std::move(*polys);
  artifact->polys_bytes = std::move(polys_bytes);
  for (auto& [forest_name, bytes] : forest_bytes) {
    auto forest = DeserializeForest(bytes, *artifact->vars);
    if (!forest.ok()) return forest.status();
    artifact->forests.emplace(forest_name, std::move(*forest));
  }
  artifact->forest_bytes = std::move(forest_bytes);
  artifact->approx_bytes = ApproxArtifactBytes(*artifact);

  std::lock_guard<std::mutex> lock(mutex_);
  artifact->generation = next_generation_++;
  Slot slot;
  slot.artifact = artifact;
  slot.bytes = artifact->approx_bytes;
  InsertSlot(ArtifactSlotKey(name), std::move(slot));
  return std::shared_ptr<const Artifact>(artifact);
}

std::shared_ptr<const Artifact> ArtifactStore::Get(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(ArtifactSlotKey(name));
  if (it == slots_.end()) return nullptr;
  Touch(it);
  return it->second.artifact;
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::LookupResult(const ResultKey& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = slots_.find(ResultSlotKey(key));
  if (it == slots_.end()) {
    ++result_misses_;
    return nullptr;
  }
  ++result_hits_;
  Touch(it);
  return it->second.result;
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::InsertResult(const ResultKey& key, CompressedResult result) {
  auto shared = std::make_shared<CompressedResult>(std::move(result));
  shared->approx_bytes =
      ApproxPolynomialSetBytes(shared->compressed) + shared->vvs_names.size();
  std::lock_guard<std::mutex> lock(mutex_);
  Slot slot;
  slot.result = shared;
  slot.bytes = shared->approx_bytes;
  InsertSlot(ResultSlotKey(key), std::move(slot));
  return shared;
}

ArtifactStore::Stats ArtifactStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.artifact_count = artifact_count_;
  stats.result_count = result_count_;
  stats.cached_bytes = used_bytes_;
  stats.byte_budget = byte_budget_;
  stats.result_hits = result_hits_;
  stats.result_misses = result_misses_;
  stats.evictions = evictions_;
  return stats;
}

void ArtifactStore::Touch(
    std::unordered_map<std::string, Slot>::iterator it) {
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
}

void ArtifactStore::InsertSlot(const std::string& slot_key, Slot slot) {
  auto it = slots_.find(slot_key);
  if (it != slots_.end()) {
    used_bytes_ -= it->second.bytes;
    (it->second.artifact != nullptr ? artifact_count_ : result_count_)--;
    lru_.erase(it->second.lru_it);
    slots_.erase(it);
  }
  lru_.push_front(slot_key);
  slot.lru_it = lru_.begin();
  used_bytes_ += slot.bytes;
  (slot.artifact != nullptr ? artifact_count_ : result_count_)++;
  slots_.emplace(slot_key, std::move(slot));
  EvictToBudget();
}

void ArtifactStore::EvictToBudget() {
  while (used_bytes_ > byte_budget_ && slots_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = slots_.find(victim);
    used_bytes_ -= it->second.bytes;
    (it->second.artifact != nullptr ? artifact_count_ : result_count_)--;
    slots_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace provabs
