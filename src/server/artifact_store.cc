#include "server/artifact_store.h"

#include <algorithm>

#include "algo/optimal_single_tree.h"
#include "core/compiled_polynomial_set.h"
#include "io/byte_stream.h"
#include "io/serializer.h"

namespace provabs {

size_t ApproxPolynomialSetBytes(const PolynomialSet& polys) {
  size_t bytes = sizeof(PolynomialSet);
  for (const Polynomial& p : polys.polynomials()) {
    bytes += 64;  // Polynomial object + vector headers.
    for (const Monomial& m : p.monomials()) {
      bytes += 48 + m.factors().size() * sizeof(Factor);
    }
  }
  // Every cached set is served to evaluate requests through its compiled
  // CSR form, which lives inside the set (lazy cache) and is evicted and
  // invalidated with it — so its bytes belong to the same budget entry.
  // Calling Compiled() here also WARMS the form: anything whose bytes the
  // store accounts is compile-free on the request path by construction.
  bytes += polys.Compiled()->ApproxBytes();
  return bytes;
}

namespace {

size_t ApproxArtifactBytes(const Artifact& artifact) {
  size_t bytes = ApproxPolynomialSetBytes(artifact.polys);
  bytes += artifact.polys_bytes.size();
  bytes += artifact.vars->size() * 48;  // interner strings + index entries
  for (const auto& [name, forest] : artifact.forests) {
    bytes += name.size() + forest.TotalNodes() * 64;
  }
  for (const auto& [name, raw] : artifact.forest_bytes) {
    bytes += name.size() + raw.size();
  }
  return bytes;
}

/// Rough resident size of retained DP tables, so patchable entries are
/// charged for the state they keep alive (it can rival the compressed set).
size_t ApproxDpStateBytes(const internal::RetainedDpState& state) {
  size_t bytes = sizeof(internal::RetainedDpState);
  bytes += state.leaf_labels.size() * sizeof(VariableId);
  bytes += state.index.TotalKeys() * 12;  // CSR keys + offsets share
  // Per-node arrays are shared across patched generations; charging each
  // entry the full size over-counts aliased tables, which errs toward
  // evicting sooner — acceptable for a rough budget.
  for (const auto& a : state.arrays) {
    bytes += 64 + a->vl.size() * 48;  // two hash maps' nodes
  }
  for (const auto& p : state.prefixes) {
    if (p == nullptr) continue;
    bytes += 32;
    for (const auto& prefix : *p) bytes += 24 + prefix.size() * 16;
  }
  bytes += state.self_loss.size() * sizeof(LossReport);
  bytes += state.chosen.size() * sizeof(NodeIndex);
  return bytes;
}

}  // namespace

ArtifactStore::ArtifactStore(size_t byte_budget, size_t shards)
    : byte_budget_(byte_budget),
      shards_(std::max<size_t>(1, shards == 0 ? kDefaultShards : shards)) {
  // Each shard owns an equal slice of the budget; a slice is never zero so
  // the "most recent entry survives" guarantee holds per shard.
  const size_t per_shard = std::max<size_t>(1, byte_budget / shards_.size());
  for (Shard& shard : shards_) shard.byte_budget = per_shard;
}

std::string ArtifactStore::ArtifactSlotKey(const std::string& name) {
  return "a" + name;
}

std::string ArtifactStore::ResultSlotKey(const ResultKey& key) {
  // Length-prefixed fields make the encoding injective even when names
  // contain arbitrary bytes.
  ByteWriter w;
  w.PutU8('r');
  w.PutString(key.artifact);
  w.PutVarint(key.generation);
  w.PutString(key.forest);
  w.PutVarint(key.bound);
  w.PutString(key.algo);
  return std::move(w).Release();
}

std::string ArtifactStore::ProgramSlotKey(const ProgramKey& key) {
  ByteWriter w;
  w.PutU8('p');
  w.PutString(key.artifact);
  w.PutVarint(key.generation);
  w.PutU8(key.compressed ? 1 : 0);
  w.PutString(key.forest);
  w.PutVarint(key.bound);
  w.PutString(key.algo);
  w.PutVarint(key.source_hash);
  return std::move(w).Release();
}

uint64_t ArtifactStore::HashProgramSource(std::string_view source) {
  uint64_t hash = 14695981039346656037ull;  // FNV-1a 64
  for (char c : source) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

ArtifactStore::Shard& ArtifactStore::ShardFor(const std::string& slot_key) {
  return shards_[std::hash<std::string>{}(slot_key) % shards_.size()];
}

StatusOr<std::shared_ptr<const Artifact>> ArtifactStore::Load(
    const std::string& name, std::string polys_bytes,
    const std::vector<std::pair<std::string, std::string>>& forests) {
  // One load at a time: the read-merge-install cycle below must not
  // interleave with another load of the same artifact (lost update).
  std::lock_guard<std::mutex> load_lock(load_mutex_);
  // Forest-only loads rebuild on top of the existing artifact's raw bytes.
  std::map<std::string, std::string> forest_bytes;
  if (polys_bytes.empty()) {
    std::shared_ptr<const Artifact> existing = Get(name);
    if (existing == nullptr) {
      return Status::NotFound("artifact '" + name +
                              "' not loaded (a first load needs polynomials)");
    }
    polys_bytes = existing->polys_bytes;
    forest_bytes = existing->forest_bytes;
  }
  for (const auto& [forest_name, bytes] : forests) {
    forest_bytes[forest_name] = bytes;
  }

  // Deserialization happens outside any shard lock: loads are rare but
  // heavy, and must not stall concurrent evaluate traffic.
  auto artifact = std::make_shared<Artifact>();
  artifact->vars = std::make_shared<VariableTable>();
  auto polys = DeserializePolynomialSet(polys_bytes, *artifact->vars);
  if (!polys.ok()) return polys.status();
  artifact->polys = std::move(*polys);
  artifact->polys_bytes = std::move(polys_bytes);
  for (auto& [forest_name, bytes] : forest_bytes) {
    auto forest = DeserializeForest(bytes, *artifact->vars);
    if (!forest.ok()) return forest.status();
    artifact->forests.emplace(forest_name, std::move(*forest));
  }
  artifact->forest_bytes = std::move(forest_bytes);
  artifact->approx_bytes = ApproxArtifactBytes(*artifact);
  artifact->generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);

  const std::string slot_key = ArtifactSlotKey(name);
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot slot;
  slot.artifact = artifact;
  slot.bytes = artifact->approx_bytes;
  InsertSlot(shard, slot_key, std::move(slot));
  return std::shared_ptr<const Artifact>(artifact);
}

StatusOr<std::shared_ptr<const Artifact>> ArtifactStore::Append(
    const std::string& name, const std::string& polys_bytes) {
  // Serialized against Load for the same reason: read-extend-install of one
  // artifact must not interleave with another writer.
  std::lock_guard<std::mutex> load_lock(load_mutex_);
  if (polys_bytes.empty()) {
    return Status::InvalidArgument("append needs a non-empty polynomial set");
  }
  std::shared_ptr<const Artifact> existing = Get(name);
  if (existing == nullptr) {
    return Status::NotFound("artifact '" + name +
                            "' not loaded (append needs a loaded artifact)");
  }

  // Artifacts are immutable once published, so the append builds a fresh
  // one. The VariableTable is move-only; re-interning the predecessor's
  // names in id order reproduces the exact same dense ids, so the copied
  // polynomials and the re-deserialized forests stay consistent.
  auto artifact = std::make_shared<Artifact>();
  artifact->vars = std::make_shared<VariableTable>();
  for (VariableId id = 0; id < existing->vars->size(); ++id) {
    artifact->vars->Intern(existing->vars->NameOf(id));
  }
  artifact->polys = existing->polys;  // carries revision + delta log
  auto added = DeserializePolynomialSet(polys_bytes, *artifact->vars);
  if (!added.ok()) return added.status();
  for (const Polynomial& p : added->polynomials()) {
    artifact->polys.Add(p);
  }
  for (const auto& [forest_name, bytes] : existing->forest_bytes) {
    auto forest = DeserializeForest(bytes, *artifact->vars);
    if (!forest.ok()) return forest.status();
    artifact->forests.emplace(forest_name, std::move(*forest));
  }
  artifact->forest_bytes = existing->forest_bytes;
  // Re-serialize the combined set so forest-only Loads (which rebuild from
  // raw bytes) keep working on top of appended artifacts.
  artifact->polys_bytes =
      SerializePolynomialSet(artifact->polys, *artifact->vars);
  artifact->ancestry = existing->ancestry;
  artifact->ancestry.push_back(
      Artifact::Ancestor{existing->generation, existing->polys.revision()});
  if (artifact->ancestry.size() > Artifact::kMaxAncestry) {
    artifact->ancestry.erase(artifact->ancestry.begin());
  }
  artifact->approx_bytes = ApproxArtifactBytes(*artifact);
  artifact->generation =
      next_generation_.fetch_add(1, std::memory_order_relaxed);

  const std::string slot_key = ArtifactSlotKey(name);
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot slot;
  slot.artifact = artifact;
  slot.bytes = artifact->approx_bytes;
  InsertSlot(shard, slot_key, std::move(slot));
  return std::shared_ptr<const Artifact>(artifact);
}

std::shared_ptr<const Artifact> ArtifactStore::Get(const std::string& name) {
  const std::string slot_key = ArtifactSlotKey(name);
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.slots.find(slot_key);
  if (it == shard.slots.end()) return nullptr;
  Touch(shard, it);
  return it->second.artifact;
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::LookupSlot(const std::string& slot_key, CountMode mode) {
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.slots.find(slot_key);
  if (it == shard.slots.end()) {
    if (mode == CountMode::kHitsAndMisses) {
      result_misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return nullptr;
  }
  if (mode != CountMode::kNone) {
    result_hits_.fetch_add(1, std::memory_order_relaxed);
  }
  Touch(shard, it);
  return it->second.result;
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::LookupResult(const ResultKey& key) {
  return LookupSlot(ResultSlotKey(key), CountMode::kHitsAndMisses);
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::PeekResult(const ResultKey& key) {
  return LookupSlot(ResultSlotKey(key), CountMode::kNone);
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::InsertResultSlot(const std::string& slot_key,
                                CompressedResult result) {
  auto shared = std::make_shared<CompressedResult>(std::move(result));
  shared->approx_bytes =
      ApproxPolynomialSetBytes(shared->compressed) + shared->vvs_names.size();
  if (shared->algo_result.dp_state != nullptr) {
    shared->approx_bytes += ApproxDpStateBytes(*shared->algo_result.dp_state);
  }
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot slot;
  slot.result = shared;
  slot.bytes = shared->approx_bytes;
  InsertSlot(shard, slot_key, std::move(slot));
  return shared;
}

std::shared_ptr<const ArtifactStore::CompressedResult>
ArtifactStore::InsertResult(const ResultKey& key, CompressedResult result) {
  return InsertResultSlot(ResultSlotKey(key), std::move(result));
}

std::shared_ptr<const scenario::ScenarioProgram> ArtifactStore::LookupProgram(
    const ProgramKey& key) {
  const std::string slot_key = ProgramSlotKey(key);
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.slots.find(slot_key);
  if (it == shard.slots.end()) {
    program_misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  program_hits_.fetch_add(1, std::memory_order_relaxed);
  Touch(shard, it);
  return it->second.program;
}

std::shared_ptr<const scenario::ScenarioProgram> ArtifactStore::InsertProgram(
    const ProgramKey& key, scenario::ScenarioProgram program) {
  auto shared =
      std::make_shared<const scenario::ScenarioProgram>(std::move(program));
  const std::string slot_key = ProgramSlotKey(key);
  Shard& shard = ShardFor(slot_key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  Slot slot;
  slot.program = shared;
  slot.bytes = shared->ApproxBytes();
  InsertSlot(shard, slot_key, std::move(slot));
  return shared;
}

StatusOr<std::shared_ptr<const ArtifactStore::CompressedResult>>
ArtifactStore::GetOrCompute(const ResultKey& key,
                            const ResultComputeFn& compute,
                            GetOrComputeInfo* info) {
  // One key encoding serves the lookup, the in-flight slot, the post-claim
  // re-check, and the insert — this is the serving hot path.
  const std::string slot_key = ResultSlotKey(key);
  if (auto cached = LookupSlot(slot_key, CountMode::kHitsAndMisses)) {
    if (info != nullptr) info->cache_hit = true;
    return cached;
  }

  bool deduped = false;
  bool recheck_hit = false;
  InflightRegistry::Outcome outcome = inflight_.DoOrWait(
      slot_key,
      [&]() -> InflightRegistry::Outcome {
        // Double-check after claiming the slot: a previous leader may have
        // published between our miss above and the claim.
        if (auto again = LookupSlot(slot_key, CountMode::kHitsOnly)) {
          recheck_hit = true;
          return {Status::OK(), std::move(again)};
        }
        StatusOr<CompressedResult> computed = compute();
        if (!computed.ok()) return {computed.status(), nullptr};
        return {Status::OK(),
                InsertResultSlot(slot_key, std::move(*computed))};
      },
      &deduped);
  if (info != nullptr) {
    info->cache_hit = recheck_hit;
    info->dedup_hit = deduped;
  }
  if (!outcome.status.ok()) return outcome.status;
  return std::static_pointer_cast<const CompressedResult>(outcome.value);
}

ArtifactStore::Stats ArtifactStore::stats() const {
  Stats stats;
  stats.artifact_count = artifact_count_.load(std::memory_order_relaxed);
  stats.result_count = result_count_.load(std::memory_order_relaxed);
  stats.program_count = program_count_.load(std::memory_order_relaxed);
  stats.program_hits = program_hits_.load(std::memory_order_relaxed);
  stats.program_misses = program_misses_.load(std::memory_order_relaxed);
  stats.cached_bytes = used_bytes_total_.load(std::memory_order_relaxed);
  stats.byte_budget = byte_budget_;
  stats.result_hits = result_hits_.load(std::memory_order_relaxed);
  stats.result_misses = result_misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  InflightRegistry::Stats inflight_stats = inflight_.stats();
  stats.dedup_hits = inflight_stats.dedup_hits;
  stats.inflight_waiters = inflight_stats.waiters_now;
  return stats;
}

void ArtifactStore::Touch(
    Shard& shard, std::unordered_map<std::string, Slot>::iterator it) {
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
}

std::atomic<uint64_t>& ArtifactStore::CountFor(const Slot& slot) {
  if (slot.artifact != nullptr) return artifact_count_;
  if (slot.program != nullptr) return program_count_;
  return result_count_;
}

void ArtifactStore::InsertSlot(Shard& shard, const std::string& slot_key,
                               Slot slot) {
  auto it = shard.slots.find(slot_key);
  if (it != shard.slots.end()) {
    shard.used_bytes -= it->second.bytes;
    used_bytes_total_.fetch_sub(it->second.bytes,
                                std::memory_order_relaxed);
    CountFor(it->second).fetch_sub(1, std::memory_order_relaxed);
    shard.lru.erase(it->second.lru_it);
    shard.slots.erase(it);
  }
  shard.lru.push_front(slot_key);
  slot.lru_it = shard.lru.begin();
  shard.used_bytes += slot.bytes;
  used_bytes_total_.fetch_add(slot.bytes, std::memory_order_relaxed);
  CountFor(slot).fetch_add(1, std::memory_order_relaxed);
  shard.slots.emplace(slot_key, std::move(slot));
  EvictToBudget(shard);
}

void ArtifactStore::EvictToBudget(Shard& shard) {
  while (shard.used_bytes > shard.byte_budget && shard.slots.size() > 1) {
    const std::string& victim = shard.lru.back();
    auto it = shard.slots.find(victim);
    shard.used_bytes -= it->second.bytes;
    used_bytes_total_.fetch_sub(it->second.bytes,
                                std::memory_order_relaxed);
    CountFor(it->second).fetch_sub(1, std::memory_order_relaxed);
    shard.slots.erase(it);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace provabs
