#include "server/inflight_registry.h"

#include <exception>
#include <utility>

namespace provabs {

InflightRegistry::Outcome InflightRegistry::DoOrWait(
    const std::string& key, const ComputeFn& compute, bool* deduped) {
  std::shared_ptr<Slot> slot;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_.find(key);
    if (it == inflight_.end()) {
      slot = std::make_shared<Slot>();
      slot->future = slot->promise.get_future().share();
      inflight_.emplace(key, slot);
      leader = true;
    } else {
      slot = it->second;
    }
  }
  if (deduped != nullptr) *deduped = !leader;

  if (!leader) {
    dedup_hits_.fetch_add(1, std::memory_order_relaxed);
    uint64_t now = waiters_now_.fetch_add(1, std::memory_order_relaxed) + 1;
    uint64_t peak = peak_waiters_.load(std::memory_order_relaxed);
    while (now > peak && !peak_waiters_.compare_exchange_weak(
                             peak, now, std::memory_order_relaxed)) {
    }
    Outcome outcome = slot->future.get();
    waiters_now_.fetch_sub(1, std::memory_order_relaxed);
    return outcome;
  }
  computations_.fetch_add(1, std::memory_order_relaxed);

  // The library reports errors through Status, but a computation could
  // still throw (bad_alloc, a test hook): without the catch, the slot
  // would stay in the map with an unfulfilled promise and every present
  // and future caller for the key would block forever.
  Outcome outcome;
  try {
    outcome = compute();
  } catch (const std::exception& e) {
    outcome.status =
        Status::Internal(std::string("in-flight computation threw: ") +
                         e.what());
  } catch (...) {
    outcome.status = Status::Internal("in-flight computation threw");
  }
  {
    // Erase BEFORE publishing: once the future is ready, no new caller may
    // join this slot — an arrival strictly after completion must re-check
    // the durable cache and, on a miss (e.g. the outcome was a failure),
    // start a fresh computation. This is what makes failures non-sticky.
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_.erase(key);
  }
  slot->promise.set_value(outcome);
  return outcome;
}

InflightRegistry::Stats InflightRegistry::stats() const {
  Stats stats;
  stats.computations = computations_.load(std::memory_order_relaxed);
  stats.dedup_hits = dedup_hits_.load(std::memory_order_relaxed);
  stats.peak_waiters = peak_waiters_.load(std::memory_order_relaxed);
  stats.waiters_now = waiters_now_.load(std::memory_order_relaxed);
  return stats;
}

uint64_t InflightRegistry::WaitersNow() const {
  return waiters_now_.load(std::memory_order_relaxed);
}

uint64_t InflightRegistry::KeysNow() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return inflight_.size();
}

}  // namespace provabs
