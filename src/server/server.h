#ifndef PROVABS_SERVER_SERVER_H_
#define PROVABS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "server/provenance_service.h"

namespace provabs {

struct ServerOptions {
  /// Numeric IPv4 address to bind; analysts connect over loopback in the
  /// paper's single-site deployment, wider binds are for LAN serving.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
};

/// Socket front end of the serving subsystem: accepts connections on a
/// loopback (or LAN) TCP port and speaks the length-prefixed wire protocol,
/// one thread per connection, all dispatching into a shared
/// ProvenanceService. The service owns all state; the server owns only
/// sockets and threads, so unit tests can exercise the service without any
/// of this file.
class Server {
 public:
  /// `service` must outlive the server.
  Server(ProvenanceService& service, const ServerOptions& options);

  /// Shuts down and joins all threads.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the accept loop. Call once.
  Status Start();

  /// The actually bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Blocks until the server has shut down (via Shutdown() or a wire
  /// shutdown request) and all connection threads have exited.
  void Wait();

  /// Stops accepting, unblocks in-flight reads, and marks the server
  /// stopped. Idempotent; safe to call from a connection thread.
  void Shutdown();

 private:
  void AcceptLoop();
  void ServeConnection(int fd, uint64_t conn_id);
  /// Joins threads whose connections have already ended (they park their
  /// handles in finished_threads_ — a thread cannot join itself). Called
  /// from the accept loop so a long-lived daemon does not accumulate one
  /// exited-but-joinable thread per past connection. Requires mutex_ NOT
  /// held.
  void ReapFinishedThreads();

  ProvenanceService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> shutting_down_{false};

  std::mutex mutex_;
  std::thread accept_thread_;
  uint64_t next_conn_id_ = 0;                         // guarded by mutex_
  std::unordered_map<uint64_t, std::thread> conn_threads_;  // guarded
  std::vector<std::thread> finished_threads_;         // guarded by mutex_
  std::unordered_set<int> open_fds_;                  // guarded by mutex_
  bool joined_ = false;                               // guarded by mutex_
};

}  // namespace provabs

#endif  // PROVABS_SERVER_SERVER_H_
