#ifndef PROVABS_SERVER_SERVER_H_
#define PROVABS_SERVER_SERVER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "parallel/thread_pool.h"
#include "server/provenance_service.h"

namespace provabs {

struct ServerOptions {
  /// Numeric IPv4 address to bind; analysts connect over loopback in the
  /// paper's single-site deployment, wider binds are for LAN serving.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Admission limit: connection #(max+1) receives a structured
  /// kUnavailable response and is closed instead of being served.
  size_t max_connections = 1024;
  /// A connection with no completed request activity for this long is
  /// closed by the timer wheel. 0 disables idle reaping.
  uint64_t idle_timeout_ms = 300000;
  /// On shutdown the server stops accepting, finishes in-flight requests
  /// and flushes their responses, but force-closes everything after this
  /// long so a stalled peer cannot hold the process open.
  uint64_t drain_timeout_ms = 5000;
  /// Worker threads executing decoded requests off the event loop;
  /// 0 = hardware concurrency.
  size_t worker_threads = 0;
};

/// Socket front end of the serving subsystem: a single epoll event loop
/// owns every socket (the listener, a wakeup eventfd, and all client
/// connections) and runs the framed-I/O state machine — non-blocking
/// accept, incremental reads assembling length-prefixed frames, buffered
/// partial writes flushed on EPOLLOUT. Decoded requests execute on a fixed
/// worker pool so a long compression DP never blocks other connections;
/// workers hand finished responses back to the loop through a completion
/// queue and an eventfd kick. N idle connections therefore cost N file
/// descriptors and zero threads: the process runs exactly 1 loop thread +
/// `worker_threads` workers regardless of connection count.
///
/// The service owns all state; the server owns only sockets and threads,
/// so unit tests can exercise the service without any of this file.
class Server {
 public:
  /// Snapshot of the transport counters (also surfaced in every response's
  /// stats block via the service's transport-stats provider).
  struct TransportStats {
    uint64_t active_connections = 0;   ///< gauge of admitted connections
    uint64_t rejected_connections = 0; ///< admission + fd-exhaustion rejects
    uint64_t idle_reaped = 0;          ///< closes by the idle timer wheel
    uint64_t loop_wakeups = 0;         ///< epoll_wait returns
  };

  /// `service` must outlive the server.
  Server(ProvenanceService& service, const ServerOptions& options);

  /// Shuts down and joins all threads.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event loop + worker pool. Call once.
  Status Start();

  /// The actually bound port (useful with options.port = 0).
  uint16_t port() const { return port_; }

  /// Blocks until the server has shut down (via Shutdown() or a wire
  /// shutdown request) and the loop + worker threads have exited.
  void Wait();

  /// Begins a graceful drain: stop accepting, finish in-flight requests,
  /// flush their responses, then close (force-closing at
  /// drain_timeout_ms). Idempotent; safe from any thread, including
  /// workers.
  void Shutdown();

  TransportStats transport_stats() const;

 private:
  /// Per-connection framed-I/O state machine. Bytes accumulate in `in`
  /// until a full [u32 length][payload] frame is available; encoded
  /// responses append to `out` and drain opportunistically, falling back
  /// to EPOLLOUT when the socket buffer fills.
  struct Conn {
    int fd = -1;
    uint64_t id = 0;
    std::string in;
    std::string out;
    size_t out_off = 0;
    /// Complete request payloads not yet dispatched. One request per
    /// connection executes at a time so responses keep request order.
    std::deque<std::string> pending;
    bool in_flight = false;
    /// Close once `out` drains and no request is in flight (EOF seen,
    /// rejection sent, or shutdown goodbye queued).
    bool close_after_flush = false;
    /// Admission rejection: after the error frame flushes we SHUT_WR and
    /// read-drain until peer EOF so the frame is never lost to a RST.
    bool rejected = false;
    bool shut_wr = false;
    bool eof = false;
    bool epollout = false;
    uint64_t idle_deadline_ms = 0;
  };

  struct Completion {
    uint64_t conn_id;
    std::string reply;
    bool shutdown;
  };

  void Loop();
  void AcceptAll(uint64_t now_ms);
  void RejectConnection(int fd, uint64_t now_ms, const std::string& reason);
  void HandleConnEvent(uint64_t id, uint32_t events, uint64_t now_ms);
  /// Reads until EAGAIN/EOF, assembling frames and dispatching. Returns
  /// false when the connection was closed (error or protocol violation).
  bool ReadAvailable(Conn& conn, uint64_t now_ms);
  /// Extracts complete frames from conn.in into conn.pending; returns
  /// false on a protocol violation (oversized frame) — caller closes.
  bool ExtractFrames(Conn& conn);
  void DispatchNext(Conn& conn);
  /// Writes as much of conn.out as the socket accepts; arms/disarms
  /// EPOLLOUT; returns false when the connection died mid-write.
  bool FlushWrites(Conn& conn);
  void QueueFrame(Conn& conn, std::string_view payload);
  void ProcessCompletions(uint64_t now_ms);
  void CloseConn(uint64_t id);
  void MaybeCloseFlushed(Conn& conn);
  void UpdateEpollOut(Conn& conn, bool want);

  // -- idle timer wheel --------------------------------------------------
  void WheelInsert(Conn& conn, uint64_t now_ms);
  void WheelAdvance(uint64_t now_ms);

  void BeginDrain(uint64_t now_ms);
  void WakeLoop();
  std::string BuildRejectionFrame(const std::string& reason) const;

  ProvenanceService& service_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  /// Held open so the accept loop can free one descriptor under
  /// EMFILE/ENFILE, accept the waiting connection, send it a structured
  /// error, and close it — instead of letting the backlog silently fill.
  int reserve_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> shutting_down_{false};
  std::atomic<bool> started_{false};

  std::thread loop_thread_;
  std::unique_ptr<ThreadPool> workers_;

  std::mutex comp_mutex_;
  std::vector<Completion> completions_;  // guarded by comp_mutex_

  // Loop-thread state (no locking: only Loop() and its callees touch it).
  std::unordered_map<uint64_t, Conn> conns_;
  uint64_t next_conn_id_ = 2;  // 0 = listener, 1 = wakeup eventfd
  size_t admitted_ = 0;
  bool draining_ = false;
  uint64_t drain_deadline_ms_ = 0;
  static constexpr size_t kWheelBuckets = 256;
  std::array<std::vector<uint64_t>, kWheelBuckets> wheel_;
  uint64_t wheel_tick_ms_ = 0;
  uint64_t wheel_last_tick_ = 0;

  std::atomic<uint64_t> active_connections_{0};
  std::atomic<uint64_t> rejected_connections_{0};
  std::atomic<uint64_t> idle_reaped_{0};
  std::atomic<uint64_t> loop_wakeups_{0};

  std::mutex lifecycle_mutex_;
  bool joined_ = false;  // guarded by lifecycle_mutex_
};

}  // namespace provabs

#endif  // PROVABS_SERVER_SERVER_H_
