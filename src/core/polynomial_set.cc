#include "core/polynomial_set.h"

namespace provabs {

size_t PolynomialSet::SizeM() const {
  size_t total = 0;
  for (const Polynomial& p : polys_) total += p.SizeM();
  return total;
}

std::unordered_set<VariableId> PolynomialSet::Variables() const {
  std::unordered_set<VariableId> vars;
  for (const Polynomial& p : polys_) p.CollectVariables(vars);
  return vars;
}

size_t PolynomialSet::SizeV() const { return Variables().size(); }

PolynomialSet PolynomialSet::MapVariables(
    const std::function<VariableId(VariableId)>& map,
    CoefficientCombine combine) const {
  PolynomialSet result;
  result.polys_.reserve(polys_.size());
  for (const Polynomial& p : polys_) {
    result.Add(p.MapVariables(map, combine));
  }
  return result;
}

}  // namespace provabs
