#include "core/polynomial_set.h"

#include <atomic>
#include <utility>

#include "core/compiled_polynomial_set.h"

namespace provabs {

PolynomialSet::PolynomialSet(const PolynomialSet& other)
    : polys_(other.polys_),
      compiled_(std::atomic_load_explicit(&other.compiled_,
                                          std::memory_order_acquire)) {}

PolynomialSet& PolynomialSet::operator=(const PolynomialSet& other) {
  if (this == &other) return *this;
  polys_ = other.polys_;
  std::atomic_store_explicit(
      &compiled_,
      std::atomic_load_explicit(&other.compiled_, std::memory_order_acquire),
      std::memory_order_release);
  return *this;
}

PolynomialSet::PolynomialSet(PolynomialSet&& other) noexcept
    : polys_(std::move(other.polys_)),
      compiled_(std::atomic_load_explicit(&other.compiled_,
                                          std::memory_order_acquire)) {
  // The moved-from set's polynomials are gone; a retained compiled cache
  // would describe contents it no longer has.
  std::atomic_store_explicit(&other.compiled_,
                             std::shared_ptr<const CompiledPolynomialSet>(),
                             std::memory_order_release);
}

PolynomialSet& PolynomialSet::operator=(PolynomialSet&& other) noexcept {
  if (this == &other) return *this;
  polys_ = std::move(other.polys_);
  std::atomic_store_explicit(
      &compiled_,
      std::atomic_load_explicit(&other.compiled_, std::memory_order_acquire),
      std::memory_order_release);
  std::atomic_store_explicit(&other.compiled_,
                             std::shared_ptr<const CompiledPolynomialSet>(),
                             std::memory_order_release);
  return *this;
}

void PolynomialSet::Add(Polynomial p) {
  polys_.push_back(std::move(p));
  std::atomic_store_explicit(
      &compiled_, std::shared_ptr<const CompiledPolynomialSet>(),
      std::memory_order_release);
}

std::shared_ptr<const CompiledPolynomialSet> PolynomialSet::Compiled() const {
  std::shared_ptr<const CompiledPolynomialSet> cached =
      std::atomic_load_explicit(&compiled_, std::memory_order_acquire);
  if (cached != nullptr) return cached;
  // Racing compilers each build an identical (deterministic) form; the last
  // store wins and the losers' snapshots remain valid. Compilation is one
  // linear pass, so duplicate work on a race is cheaper than a per-set
  // mutex on the hot path.
  auto built = std::make_shared<const CompiledPolynomialSet>(
      CompiledPolynomialSet::Compile(*this));
  std::atomic_store_explicit(
      &compiled_, std::shared_ptr<const CompiledPolynomialSet>(built),
      std::memory_order_release);
  return built;
}

size_t PolynomialSet::SizeM() const {
  size_t total = 0;
  for (const Polynomial& p : polys_) total += p.SizeM();
  return total;
}

std::unordered_set<VariableId> PolynomialSet::Variables() const {
  std::unordered_set<VariableId> vars;
  for (const Polynomial& p : polys_) p.CollectVariables(vars);
  return vars;
}

size_t PolynomialSet::SizeV() const { return Variables().size(); }

PolynomialSet PolynomialSet::MapVariables(
    const std::function<VariableId(VariableId)>& map,
    CoefficientCombine combine) const {
  PolynomialSet result;
  result.polys_.reserve(polys_.size());
  for (const Polynomial& p : polys_) {
    result.Add(p.MapVariables(map, combine));
  }
  return result;
}

}  // namespace provabs
