#include "core/polynomial_set.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "core/compiled_polynomial_set.h"

namespace provabs {

PolynomialSet::PolynomialSet(const PolynomialSet& other)
    : polys_(other.polys_),
      compiled_(std::atomic_load_explicit(&other.compiled_,
                                          std::memory_order_acquire)),
      revision_(other.revision_),
      delta_log_(other.delta_log_) {}

PolynomialSet& PolynomialSet::operator=(const PolynomialSet& other) {
  if (this == &other) return *this;
  polys_ = other.polys_;
  std::atomic_store_explicit(
      &compiled_,
      std::atomic_load_explicit(&other.compiled_, std::memory_order_acquire),
      std::memory_order_release);
  revision_ = other.revision_;
  delta_log_ = other.delta_log_;
  return *this;
}

PolynomialSet::PolynomialSet(PolynomialSet&& other) noexcept
    : polys_(std::move(other.polys_)),
      compiled_(std::atomic_load_explicit(&other.compiled_,
                                          std::memory_order_acquire)),
      revision_(other.revision_),
      delta_log_(std::move(other.delta_log_)) {
  // The moved-from set's polynomials are gone; a retained compiled cache
  // would describe contents it no longer has.
  std::atomic_store_explicit(&other.compiled_,
                             std::shared_ptr<const CompiledPolynomialSet>(),
                             std::memory_order_release);
  other.revision_ = 0;
  other.delta_log_.clear();
}

PolynomialSet& PolynomialSet::operator=(PolynomialSet&& other) noexcept {
  if (this == &other) return *this;
  polys_ = std::move(other.polys_);
  std::atomic_store_explicit(
      &compiled_,
      std::atomic_load_explicit(&other.compiled_, std::memory_order_acquire),
      std::memory_order_release);
  std::atomic_store_explicit(&other.compiled_,
                             std::shared_ptr<const CompiledPolynomialSet>(),
                             std::memory_order_release);
  revision_ = other.revision_;
  delta_log_ = std::move(other.delta_log_);
  other.revision_ = 0;
  other.delta_log_.clear();
  return *this;
}

void PolynomialSet::Add(Polynomial p) {
  DeltaLogEntry entry;
  entry.revision = ++revision_;
  entry.poly_index = static_cast<uint32_t>(polys_.size());
  entry.monomials = static_cast<uint32_t>(p.SizeM());
  std::unordered_set<VariableId> vars;
  p.CollectVariables(vars);
  entry.vars.assign(vars.begin(), vars.end());
  if (delta_log_.size() == kDeltaLogCapacity) {
    delta_log_.erase(delta_log_.begin());
  }
  delta_log_.push_back(std::move(entry));
  polys_.push_back(std::move(p));
  std::atomic_store_explicit(
      &compiled_, std::shared_ptr<const CompiledPolynomialSet>(),
      std::memory_order_release);
}

PolynomialSetDelta PolynomialSet::DeltaSince(uint64_t from_revision) const {
  PolynomialSetDelta delta;
  delta.from_revision = from_revision;
  delta.to_revision = revision_;
  delta.first_added_index = polys_.size();
  if (from_revision > revision_) return delta;  // Incoherent observer.
  if (from_revision == revision_) {
    delta.complete = true;
    return delta;
  }
  // The log holds the last kDeltaLogCapacity appends; revisions in
  // (from, to] must all still be present. The oldest retained revision is
  // delta_log_.front().revision, so the log reaches back to
  // front().revision - 1.
  if (delta_log_.empty() || delta_log_.front().revision > from_revision + 1) {
    return delta;  // Truncated: complete stays false.
  }
  std::unordered_set<VariableId> touched;
  for (const DeltaLogEntry& entry : delta_log_) {
    if (entry.revision <= from_revision) continue;
    delta.first_added_index =
        std::min(delta.first_added_index, size_t{entry.poly_index});
    delta.added_monomials += entry.monomials;
    touched.insert(entry.vars.begin(), entry.vars.end());
  }
  delta.touched_vars.assign(touched.begin(), touched.end());
  std::sort(delta.touched_vars.begin(), delta.touched_vars.end());
  delta.complete = true;
  return delta;
}

std::shared_ptr<const CompiledPolynomialSet> PolynomialSet::Compiled() const {
  std::shared_ptr<const CompiledPolynomialSet> cached =
      std::atomic_load_explicit(&compiled_, std::memory_order_acquire);
  if (cached != nullptr) return cached;
  // Racing compilers each build an identical (deterministic) form; the last
  // store wins and the losers' snapshots remain valid. Compilation is one
  // linear pass, so duplicate work on a race is cheaper than a per-set
  // mutex on the hot path.
  auto built = std::make_shared<const CompiledPolynomialSet>(
      CompiledPolynomialSet::Compile(*this));
  std::atomic_store_explicit(
      &compiled_, std::shared_ptr<const CompiledPolynomialSet>(built),
      std::memory_order_release);
  return built;
}

size_t PolynomialSet::SizeM() const {
  size_t total = 0;
  for (const Polynomial& p : polys_) total += p.SizeM();
  return total;
}

std::unordered_set<VariableId> PolynomialSet::Variables() const {
  std::unordered_set<VariableId> vars;
  for (const Polynomial& p : polys_) p.CollectVariables(vars);
  return vars;
}

size_t PolynomialSet::SizeV() const { return Variables().size(); }

PolynomialSet PolynomialSet::MapVariables(
    const std::function<VariableId(VariableId)>& map,
    CoefficientCombine combine) const {
  PolynomialSet result;
  result.polys_.reserve(polys_.size());
  for (const Polynomial& p : polys_) {
    // Direct push, not Add: the mapped set is a fresh baseline (revision 0,
    // empty delta log), not a sequence of appends to an empty set.
    result.polys_.push_back(p.MapVariables(map, combine));
  }
  return result;
}

}  // namespace provabs
