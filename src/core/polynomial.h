#ifndef PROVABS_CORE_POLYNOMIAL_H_
#define PROVABS_CORE_POLYNOMIAL_H_

#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/monomial.h"
#include "core/variable.h"

namespace provabs {

/// How coefficients of colliding power products combine when a polynomial
/// is canonicalized or abstracted. `kAdd` is the SUM-aggregate (and
/// semiring-polynomial) case of §2.1; `kMin`/`kMax` support MIN/MAX
/// aggregates, whose "+" is min/max — for non-negative valuations,
/// min(c1·v, c2·v) = min(c1, c2)·v, so combining coefficients by min keeps
/// abstraction exact for group-uniform scenarios.
enum class CoefficientCombine { kAdd, kMin, kMax };

/// A provenance polynomial: a canonical sum of monomials (§2.1 of the
/// paper). Canonical means the monomial list is sorted by power product and
/// contains no two monomials with the same power product; `|P|_M` is then
/// simply the list length and `V(P)` the union of factor variables.
class Polynomial {
 public:
  Polynomial() = default;

  /// Builds a canonical polynomial from arbitrary terms: monomials with
  /// equal power products are merged (coefficients combined per `combine`).
  /// Under kAdd, zero-coefficient monomials produced by exact cancellation
  /// are dropped (a zero term is the additive identity); under kMin/kMax
  /// zeros are meaningful values and are kept.
  static Polynomial FromMonomials(
      std::vector<Monomial> terms,
      CoefficientCombine combine = CoefficientCombine::kAdd);

  /// The canonical monomial list M(P).
  const std::vector<Monomial>& monomials() const { return monomials_; }

  /// |P|_M — the number of monomials, the paper's size measure.
  size_t SizeM() const { return monomials_.size(); }

  /// V(P) — the set of distinct variables.
  std::unordered_set<VariableId> Variables() const;

  /// |P|_V — the number of distinct variables, the granularity measure.
  size_t SizeV() const;

  /// Appends the variables of this polynomial into `out`.
  void CollectVariables(std::unordered_set<VariableId>& out) const;

  /// Returns P with every variable replaced through `map` and the result
  /// re-canonicalized; this implements P↓S for a substitution map derived
  /// from a valid variable set. `combine` selects how the coefficients of
  /// monomials identified by the abstraction merge (kAdd for SUM/semiring
  /// provenance, kMin/kMax for MIN/MAX-aggregate provenance).
  Polynomial MapVariables(
      const std::function<VariableId(VariableId)>& map,
      CoefficientCombine combine = CoefficientCombine::kAdd) const;

  /// True if some monomial mentions `var`.
  bool Mentions(VariableId var) const;

  /// Structural equality (same canonical monomials, exact coefficients).
  friend bool operator==(const Polynomial& a, const Polynomial& b);

  /// Renders e.g. "220.8*p1*m1 + 240*p1*m3" using names from `vars`.
  std::string ToString(const VariableTable& vars) const;

 private:
  std::vector<Monomial> monomials_;
};

/// Polynomial ring operations, used by the provenance-annotated query
/// engine (join multiplies annotations, projection/union adds them).
Polynomial Add(const Polynomial& a, const Polynomial& b);
Polynomial Multiply(const Polynomial& a, const Polynomial& b);

/// The polynomial "1" (single coefficient-1 monomial, no variables).
Polynomial OnePolynomial();

/// The polynomial "coefficient * var".
Polynomial VariablePolynomial(VariableId var, double coefficient = 1.0);

}  // namespace provabs

#endif  // PROVABS_CORE_POLYNOMIAL_H_
