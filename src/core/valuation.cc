#include "core/valuation.h"

#include <cmath>
#include <memory>

#include "common/macros.h"
#include "core/compiled_polynomial_set.h"
#include "core/evaluation_backend.h"

namespace provabs {

double Valuation::Evaluate(const Polynomial& poly) const {
  double total = 0.0;
  for (const Monomial& m : poly.monomials()) {
    double term = m.coefficient();
    for (const Factor& f : m.factors()) {
      double v = Get(f.var);
      // Exponents are small (bounded by the query's join arity), so repeated
      // multiplication beats std::pow here.
      for (uint32_t e = 0; e < f.exp; ++e) term *= v;
    }
    total += term;
  }
  return total;
}

std::vector<double> Valuation::EvaluateAll(const PolynomialSet& polys) const {
  // Routed through the backend registry so a single scenario and a served
  // batch exercise the same entry point; the registry's auto policy picks
  // the highest available tier (the per-artifact "jit" code when
  // executable memory is usable, the "compiled" kernel otherwise) — every
  // backend is bitwise identical by contract, so the choice never changes
  // the result.
  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  DenseValuation dense = compiled->MaterializeValuation(*this);
  std::vector<double> out(compiled->poly_count());
  StatusOr<const EvaluationBackend*> backend =
      EvaluationBackendRegistry::Default().ResolveForBatch("", 1);
  PROVABS_CHECK(backend.ok());
  const DenseValuation* scenario = &dense;
  double* out_ptr = out.data();
  Status status = (*backend)->EvaluateBatch(*compiled, 0,
                                            compiled->poly_count(), &scenario,
                                            &out_ptr, 1);
  PROVABS_CHECK(status.ok());
  return out;
}

}  // namespace provabs
