#include "core/valuation.h"

#include <cmath>
#include <memory>

#include "core/compiled_polynomial_set.h"

namespace provabs {

double Valuation::Evaluate(const Polynomial& poly) const {
  double total = 0.0;
  for (const Monomial& m : poly.monomials()) {
    double term = m.coefficient();
    for (const Factor& f : m.factors()) {
      double v = Get(f.var);
      // Exponents are small (bounded by the query's join arity), so repeated
      // multiplication beats std::pow here.
      for (uint32_t e = 0; e < f.exp; ++e) term *= v;
    }
    total += term;
  }
  return total;
}

std::vector<double> Valuation::EvaluateAll(const PolynomialSet& polys) const {
  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  return compiled->EvaluateAll(compiled->MaterializeValuation(*this));
}

}  // namespace provabs
