#ifndef PROVABS_CORE_MONOMIAL_H_
#define PROVABS_CORE_MONOMIAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/variable.h"

namespace provabs {

/// One `variable^exponent` factor of a monomial.
struct Factor {
  VariableId var = kInvalidVariable;
  uint32_t exp = 1;

  friend bool operator==(const Factor& a, const Factor& b) {
    return a.var == b.var && a.exp == b.exp;
  }
};

/// A monomial: a rational coefficient times a product of variable powers.
/// The factor list is kept sorted by variable id with no duplicates; this
/// canonical "power product" is the identity of the monomial when merging
/// (two monomials with equal power products are one monomial whose
/// coefficient is the sum).
class Monomial {
 public:
  Monomial() = default;

  /// Builds a canonical monomial from an arbitrary factor list: factors are
  /// sorted and duplicate variables have their exponents added.
  Monomial(double coefficient, std::vector<Factor> factors);

  double coefficient() const { return coefficient_; }
  void set_coefficient(double c) { coefficient_ = c; }
  void add_to_coefficient(double c) { coefficient_ += c; }

  /// Sorted, duplicate-free factor list.
  const std::vector<Factor>& factors() const { return factors_; }

  /// Number of distinct variables in the monomial.
  size_t degree() const { return factors_.size(); }

  /// Total degree (sum of exponents).
  uint64_t total_degree() const;

  /// True if the monomial mentions `var`.
  bool Contains(VariableId var) const;

  /// Exponent of `var`, or 0 if absent.
  uint32_t ExponentOf(VariableId var) const;

  /// Returns a copy with every variable mapped through `map(var)`;
  /// exponents of variables that collide after mapping are added.
  /// Coefficient is preserved.
  Monomial MapVariables(
      const std::function<VariableId(VariableId)>& map) const;

  /// True iff the power products are identical (coefficients ignored).
  bool SamePowerProduct(const Monomial& other) const {
    return factors_ == other.factors_;
  }

  /// Hash of the power product only (coefficients ignored), so that monomials
  /// that must be merged hash identically.
  size_t PowerProductHash() const;

  /// Total order on power products (lexicographic on (var, exp) pairs);
  /// used to keep polynomials canonical.
  static bool PowerProductLess(const Monomial& a, const Monomial& b);

  /// Renders e.g. "220.8*p1*m1" using names from `vars`.
  std::string ToString(const VariableTable& vars) const;

 private:
  double coefficient_ = 0.0;
  std::vector<Factor> factors_;
};

}  // namespace provabs

#endif  // PROVABS_CORE_MONOMIAL_H_
