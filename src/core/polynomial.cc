#include "core/polynomial.h"

#include <algorithm>

namespace provabs {

Polynomial Polynomial::FromMonomials(std::vector<Monomial> terms,
                                     CoefficientCombine combine) {
  std::sort(terms.begin(), terms.end(), Monomial::PowerProductLess);
  Polynomial p;
  p.monomials_.reserve(terms.size());
  for (Monomial& m : terms) {
    if (!p.monomials_.empty() &&
        p.monomials_.back().SamePowerProduct(m)) {
      Monomial& acc = p.monomials_.back();
      switch (combine) {
        case CoefficientCombine::kAdd:
          acc.add_to_coefficient(m.coefficient());
          break;
        case CoefficientCombine::kMin:
          acc.set_coefficient(std::min(acc.coefficient(), m.coefficient()));
          break;
        case CoefficientCombine::kMax:
          acc.set_coefficient(std::max(acc.coefficient(), m.coefficient()));
          break;
      }
    } else {
      p.monomials_.push_back(std::move(m));
    }
  }
  if (combine == CoefficientCombine::kAdd) {
    // Drop monomials whose coefficients cancelled exactly to zero. With the
    // positive coefficients arising from provenance this never fires
    // (Claim 25 in the paper), but the polynomial algebra stays correct in
    // general. Under kMin/kMax a zero coefficient is a real value.
    p.monomials_.erase(
        std::remove_if(
            p.monomials_.begin(), p.monomials_.end(),
            [](const Monomial& m) { return m.coefficient() == 0.0; }),
        p.monomials_.end());
  }
  return p;
}

std::unordered_set<VariableId> Polynomial::Variables() const {
  std::unordered_set<VariableId> vars;
  CollectVariables(vars);
  return vars;
}

size_t Polynomial::SizeV() const { return Variables().size(); }

void Polynomial::CollectVariables(std::unordered_set<VariableId>& out) const {
  for (const Monomial& m : monomials_) {
    for (const Factor& f : m.factors()) out.insert(f.var);
  }
}

Polynomial Polynomial::MapVariables(
    const std::function<VariableId(VariableId)>& map,
    CoefficientCombine combine) const {
  std::vector<Monomial> mapped;
  mapped.reserve(monomials_.size());
  for (const Monomial& m : monomials_) mapped.push_back(m.MapVariables(map));
  return FromMonomials(std::move(mapped), combine);
}

bool Polynomial::Mentions(VariableId var) const {
  for (const Monomial& m : monomials_) {
    if (m.Contains(var)) return true;
  }
  return false;
}

bool operator==(const Polynomial& a, const Polynomial& b) {
  if (a.monomials_.size() != b.monomials_.size()) return false;
  for (size_t i = 0; i < a.monomials_.size(); ++i) {
    if (!a.monomials_[i].SamePowerProduct(b.monomials_[i])) return false;
    if (a.monomials_[i].coefficient() != b.monomials_[i].coefficient()) {
      return false;
    }
  }
  return true;
}

Polynomial Add(const Polynomial& a, const Polynomial& b) {
  std::vector<Monomial> terms = a.monomials();
  terms.insert(terms.end(), b.monomials().begin(), b.monomials().end());
  return Polynomial::FromMonomials(std::move(terms));
}

Polynomial Multiply(const Polynomial& a, const Polynomial& b) {
  std::vector<Monomial> terms;
  terms.reserve(a.monomials().size() * b.monomials().size());
  for (const Monomial& ma : a.monomials()) {
    for (const Monomial& mb : b.monomials()) {
      std::vector<Factor> factors = ma.factors();
      factors.insert(factors.end(), mb.factors().begin(),
                     mb.factors().end());
      terms.emplace_back(ma.coefficient() * mb.coefficient(),
                         std::move(factors));
    }
  }
  return Polynomial::FromMonomials(std::move(terms));
}

Polynomial OnePolynomial() {
  return Polynomial::FromMonomials({Monomial(1.0, {})});
}

Polynomial VariablePolynomial(VariableId var, double coefficient) {
  return Polynomial::FromMonomials(
      {Monomial(coefficient, {Factor{var, 1}})});
}

std::string Polynomial::ToString(const VariableTable& vars) const {
  if (monomials_.empty()) return "0";
  std::string s;
  for (size_t i = 0; i < monomials_.size(); ++i) {
    if (i > 0) s += " + ";
    s += monomials_[i].ToString(vars);
  }
  return s;
}

}  // namespace provabs
