#include "core/monomial.h"

#include <algorithm>
#include <cstdio>

namespace provabs {

namespace {

// Sorts factors by variable id and merges duplicates by adding exponents.
void Canonicalize(std::vector<Factor>& factors) {
  std::sort(factors.begin(), factors.end(),
            [](const Factor& a, const Factor& b) { return a.var < b.var; });
  size_t out = 0;
  for (size_t i = 0; i < factors.size(); ++i) {
    if (out > 0 && factors[out - 1].var == factors[i].var) {
      factors[out - 1].exp += factors[i].exp;
    } else {
      factors[out++] = factors[i];
    }
  }
  factors.resize(out);
}

}  // namespace

Monomial::Monomial(double coefficient, std::vector<Factor> factors)
    : coefficient_(coefficient), factors_(std::move(factors)) {
  Canonicalize(factors_);
}

uint64_t Monomial::total_degree() const {
  uint64_t d = 0;
  for (const Factor& f : factors_) d += f.exp;
  return d;
}

bool Monomial::Contains(VariableId var) const {
  return ExponentOf(var) != 0;
}

uint32_t Monomial::ExponentOf(VariableId var) const {
  auto it = std::lower_bound(
      factors_.begin(), factors_.end(), var,
      [](const Factor& f, VariableId v) { return f.var < v; });
  if (it != factors_.end() && it->var == var) return it->exp;
  return 0;
}

Monomial Monomial::MapVariables(
    const std::function<VariableId(VariableId)>& map) const {
  std::vector<Factor> mapped;
  mapped.reserve(factors_.size());
  for (const Factor& f : factors_) {
    mapped.push_back(Factor{map(f.var), f.exp});
  }
  return Monomial(coefficient_, std::move(mapped));
}

size_t Monomial::PowerProductHash() const {
  // FNV-1a over the (var, exp) pairs.
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
  };
  for (const Factor& f : factors_) {
    mix(f.var);
    mix(f.exp);
  }
  return static_cast<size_t>(h);
}

bool Monomial::PowerProductLess(const Monomial& a, const Monomial& b) {
  const auto& fa = a.factors_;
  const auto& fb = b.factors_;
  const size_t n = std::min(fa.size(), fb.size());
  for (size_t i = 0; i < n; ++i) {
    if (fa[i].var != fb[i].var) return fa[i].var < fb[i].var;
    if (fa[i].exp != fb[i].exp) return fa[i].exp < fb[i].exp;
  }
  return fa.size() < fb.size();
}

std::string Monomial::ToString(const VariableTable& vars) const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", coefficient_);
  std::string s = buf;
  for (const Factor& f : factors_) {
    s += "*";
    s += vars.NameOf(f.var);
    if (f.exp != 1) {
      std::snprintf(buf, sizeof(buf), "^%u", f.exp);
      s += buf;
    }
  }
  return s;
}

}  // namespace provabs
