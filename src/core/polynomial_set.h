#ifndef PROVABS_CORE_POLYNOMIAL_SET_H_
#define PROVABS_CORE_POLYNOMIAL_SET_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/polynomial.h"

namespace provabs {

class CompiledPolynomialSet;

/// Everything appended to a PolynomialSet after some observed revision, as
/// reconstructed from the bounded delta log. Downstream caches pair a
/// retained result with the revision it was computed at and ask for the
/// delta to decide between patching and full recomputation; `complete`
/// false means the log no longer reaches back that far (too many appends)
/// and the only sound answer is a full recompute.
struct PolynomialSetDelta {
  uint64_t from_revision = 0;
  uint64_t to_revision = 0;
  /// Polynomials [first_added_index, count()) are the appended ones; the
  /// prefix before it is untouched (Add is append-only).
  size_t first_added_index = 0;
  /// Total monomials across the appended polynomials (the |P|_M growth).
  size_t added_monomials = 0;
  /// Union of the appended polynomials' variables, sorted and deduplicated.
  /// Downstream code intersects this with abstraction-tree leaf sets to
  /// find the touched trees.
  std::vector<VariableId> touched_vars;
  /// True iff the log covered every revision in (from, to]; when false all
  /// other fields are meaningless.
  bool complete = false;

  bool empty() const { return complete && from_revision == to_revision; }
};

/// A multiset of provenance polynomials — the provenance-aware result of a
/// query, one polynomial per output tuple/group. The paper's measures lift
/// pointwise: |P|_M is the total monomial count, V(P) the union of variable
/// sets (§2.1, Notations).
class PolynomialSet {
 public:
  PolynomialSet() = default;

  /// Takes ownership of `polys`; order is preserved (polynomial i stays
  /// the annotation of output tuple i).
  explicit PolynomialSet(std::vector<Polynomial> polys)
      : polys_(std::move(polys)) {}

  // Value semantics are preserved; the lazily compiled evaluation form is
  // immutable and valid for any set with identical polynomials, so copies
  // share it and moves carry it.
  PolynomialSet(const PolynomialSet& other);
  PolynomialSet& operator=(const PolynomialSet& other);
  PolynomialSet(PolynomialSet&& other) noexcept;
  PolynomialSet& operator=(PolynomialSet&& other) noexcept;

  /// Appends one polynomial (one more output tuple's annotation).
  /// Invalidates any previously compiled evaluation form, bumps the
  /// revision, and records the append in the bounded delta log.
  void Add(Polynomial p);

  /// Monotone mutation counter: 0 for a freshly constructed set (including
  /// the vector constructor — the initial contents ARE revision 0), +1 per
  /// Add. Copies carry the revision; a moved-from set resets to empty.
  uint64_t revision() const { return revision_; }

  /// Reconstructs everything appended after `from_revision` from the delta
  /// log. The log keeps the last kDeltaLogCapacity appends; asking further
  /// back returns `complete == false`, the caller's signal to recompute
  /// from scratch instead of patching.
  PolynomialSetDelta DeltaSince(uint64_t from_revision) const;

  /// Delta-log depth: how many appends back DeltaSince can reach.
  static constexpr size_t kDeltaLogCapacity = 128;

  const std::vector<Polynomial>& polynomials() const { return polys_; }
  /// Number of polynomials (query output tuples), NOT monomials — see
  /// SizeM() for the paper's |P|_M measure.
  size_t count() const { return polys_.size(); }
  const Polynomial& operator[](size_t i) const { return polys_[i]; }

  /// |P|_M — total number of monomials across all polynomials.
  size_t SizeM() const;

  /// V(P) — union of the variable sets.
  std::unordered_set<VariableId> Variables() const;

  /// |P|_V — number of distinct variables across all polynomials.
  size_t SizeV() const;

  /// Applies a variable substitution pointwise (P↓S lifted to sets).
  PolynomialSet MapVariables(
      const std::function<VariableId(VariableId)>& map,
      CoefficientCombine combine = CoefficientCombine::kAdd) const;

  /// The set flattened into the CSR evaluation form
  /// (core/compiled_polynomial_set.h), compiled on first call and cached;
  /// `Add` invalidates the cache. Thread-safe: concurrent callers may race
  /// to compile, but compilation is deterministic, every caller gets a
  /// valid snapshot, and the returned shared_ptr stays alive independently
  /// of this set's further mutation or destruction.
  std::shared_ptr<const CompiledPolynomialSet> Compiled() const;

 private:
  /// One Add in the delta log.
  struct DeltaLogEntry {
    uint64_t revision;            ///< revision_ after this Add.
    uint32_t poly_index;          ///< Index of the appended polynomial.
    uint32_t monomials;           ///< Its monomial count.
    std::vector<VariableId> vars; ///< Its variable set (unsorted).
  };

  std::vector<Polynomial> polys_;
  /// Lazily compiled evaluation form; accessed only through the
  /// std::atomic_* shared_ptr free functions (C++17's pre-atomic<shared_ptr>
  /// idiom) so readers never see a torn pointer.
  mutable std::shared_ptr<const CompiledPolynomialSet> compiled_;
  uint64_t revision_ = 0;
  /// Ring of the last kDeltaLogCapacity appends, oldest first.
  std::vector<DeltaLogEntry> delta_log_;
};

}  // namespace provabs

#endif  // PROVABS_CORE_POLYNOMIAL_SET_H_
