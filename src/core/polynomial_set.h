#ifndef PROVABS_CORE_POLYNOMIAL_SET_H_
#define PROVABS_CORE_POLYNOMIAL_SET_H_

#include <functional>
#include <unordered_set>
#include <vector>

#include "core/polynomial.h"

namespace provabs {

/// A multiset of provenance polynomials — the provenance-aware result of a
/// query, one polynomial per output tuple/group. The paper's measures lift
/// pointwise: |P|_M is the total monomial count, V(P) the union of variable
/// sets (§2.1, Notations).
class PolynomialSet {
 public:
  PolynomialSet() = default;

  /// Takes ownership of `polys`; order is preserved (polynomial i stays
  /// the annotation of output tuple i).
  explicit PolynomialSet(std::vector<Polynomial> polys)
      : polys_(std::move(polys)) {}

  /// Appends one polynomial (one more output tuple's annotation).
  void Add(Polynomial p) { polys_.push_back(std::move(p)); }

  const std::vector<Polynomial>& polynomials() const { return polys_; }
  /// Number of polynomials (query output tuples), NOT monomials — see
  /// SizeM() for the paper's |P|_M measure.
  size_t count() const { return polys_.size(); }
  const Polynomial& operator[](size_t i) const { return polys_[i]; }

  /// |P|_M — total number of monomials across all polynomials.
  size_t SizeM() const;

  /// V(P) — union of the variable sets.
  std::unordered_set<VariableId> Variables() const;

  /// |P|_V — number of distinct variables across all polynomials.
  size_t SizeV() const;

  /// Applies a variable substitution pointwise (P↓S lifted to sets).
  PolynomialSet MapVariables(
      const std::function<VariableId(VariableId)>& map,
      CoefficientCombine combine = CoefficientCombine::kAdd) const;

 private:
  std::vector<Polynomial> polys_;
};

}  // namespace provabs

#endif  // PROVABS_CORE_POLYNOMIAL_SET_H_
