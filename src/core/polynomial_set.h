#ifndef PROVABS_CORE_POLYNOMIAL_SET_H_
#define PROVABS_CORE_POLYNOMIAL_SET_H_

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/polynomial.h"

namespace provabs {

class CompiledPolynomialSet;

/// A multiset of provenance polynomials — the provenance-aware result of a
/// query, one polynomial per output tuple/group. The paper's measures lift
/// pointwise: |P|_M is the total monomial count, V(P) the union of variable
/// sets (§2.1, Notations).
class PolynomialSet {
 public:
  PolynomialSet() = default;

  /// Takes ownership of `polys`; order is preserved (polynomial i stays
  /// the annotation of output tuple i).
  explicit PolynomialSet(std::vector<Polynomial> polys)
      : polys_(std::move(polys)) {}

  // Value semantics are preserved; the lazily compiled evaluation form is
  // immutable and valid for any set with identical polynomials, so copies
  // share it and moves carry it.
  PolynomialSet(const PolynomialSet& other);
  PolynomialSet& operator=(const PolynomialSet& other);
  PolynomialSet(PolynomialSet&& other) noexcept;
  PolynomialSet& operator=(PolynomialSet&& other) noexcept;

  /// Appends one polynomial (one more output tuple's annotation).
  /// Invalidates any previously compiled evaluation form.
  void Add(Polynomial p);

  const std::vector<Polynomial>& polynomials() const { return polys_; }
  /// Number of polynomials (query output tuples), NOT monomials — see
  /// SizeM() for the paper's |P|_M measure.
  size_t count() const { return polys_.size(); }
  const Polynomial& operator[](size_t i) const { return polys_[i]; }

  /// |P|_M — total number of monomials across all polynomials.
  size_t SizeM() const;

  /// V(P) — union of the variable sets.
  std::unordered_set<VariableId> Variables() const;

  /// |P|_V — number of distinct variables across all polynomials.
  size_t SizeV() const;

  /// Applies a variable substitution pointwise (P↓S lifted to sets).
  PolynomialSet MapVariables(
      const std::function<VariableId(VariableId)>& map,
      CoefficientCombine combine = CoefficientCombine::kAdd) const;

  /// The set flattened into the CSR evaluation form
  /// (core/compiled_polynomial_set.h), compiled on first call and cached;
  /// `Add` invalidates the cache. Thread-safe: concurrent callers may race
  /// to compile, but compilation is deterministic, every caller gets a
  /// valid snapshot, and the returned shared_ptr stays alive independently
  /// of this set's further mutation or destruction.
  std::shared_ptr<const CompiledPolynomialSet> Compiled() const;

 private:
  std::vector<Polynomial> polys_;
  /// Lazily compiled evaluation form; accessed only through the
  /// std::atomic_* shared_ptr free functions (C++17's pre-atomic<shared_ptr>
  /// idiom) so readers never see a torn pointer.
  mutable std::shared_ptr<const CompiledPolynomialSet> compiled_;
};

}  // namespace provabs

#endif  // PROVABS_CORE_POLYNOMIAL_SET_H_
