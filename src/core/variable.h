#ifndef PROVABS_CORE_VARIABLE_H_
#define PROVABS_CORE_VARIABLE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/interner.h"

namespace provabs {

/// Dense integer handle for a provenance variable or meta-variable.
/// All polynomial and abstraction-tree structures store `VariableId`s;
/// the owning `VariableTable` maps them back to names for display.
using VariableId = uint32_t;

/// Sentinel for "no variable".
inline constexpr VariableId kInvalidVariable = 0xFFFFFFFFu;

/// Registry of variable names. One `VariableTable` is shared by a set of
/// polynomials and the abstraction forest defined over them, so that ids are
/// comparable across both. Variables (polynomial indeterminates) and
/// meta-variables (internal abstraction-tree nodes) live in the same id
/// space, mirroring the paper's convention of not distinguishing them after
/// §2.2.
class VariableTable {
 public:
  VariableTable() = default;

  VariableTable(const VariableTable&) = delete;
  VariableTable& operator=(const VariableTable&) = delete;
  VariableTable(VariableTable&&) = default;
  VariableTable& operator=(VariableTable&&) = default;

  /// Returns the id for `name`, creating it if necessary.
  VariableId Intern(std::string_view name) { return interner_.Intern(name); }

  /// Returns the id for `name`, or `kInvalidVariable` if unknown.
  VariableId Find(std::string_view name) const {
    uint32_t id = interner_.Find(name);
    return id == StringInterner::kNotFound ? kInvalidVariable : id;
  }

  /// Name of an interned variable.
  const std::string& NameOf(VariableId id) const { return interner_.NameOf(id); }

  /// Number of interned variables (including meta-variables).
  size_t size() const { return interner_.size(); }

 private:
  StringInterner interner_;
};

}  // namespace provabs

#endif  // PROVABS_CORE_VARIABLE_H_
