#include "core/evaluation_backend.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "common/macros.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"
#include "jit/jit_backend.h"

#if defined(__x86_64__) || defined(__i386__)
#define PROVABS_EVAL_X86 1
#include <immintrin.h>
#endif

namespace provabs {

// ------------------------------------------------- base validation ------

Status EvaluationBackend::EvaluateBatch(const CompiledPolynomialSet& compiled,
                                        size_t poly_begin, size_t poly_end,
                                        const DenseValuation* const* scenarios,
                                        double* const* outs,
                                        size_t scenario_count) const {
  if (poly_begin > poly_end || poly_end > compiled.poly_count()) {
    return Status::InvalidArgument("polynomial range out of bounds");
  }
  if (scenario_count == 0 || poly_begin == poly_end) return Status::OK();
  if (scenarios == nullptr || outs == nullptr) {
    return Status::InvalidArgument("null scenario/output arrays");
  }
  for (size_t s = 0; s < scenario_count; ++s) {
    if (scenarios[s] == nullptr || outs[s] == nullptr) {
      return Status::InvalidArgument("null scenario/output in batch");
    }
    // The slot-mapping guard (the bug the differential harness surfaced):
    // a DenseValuation materialized against another compiled form — e.g.
    // before a copied set was mutated and recompiled — has a different (or
    // shorter) slot array, and indexing it with THIS form's slots would
    // silently produce wrong answers or read out of bounds. Fingerprints
    // make the mismatch a recoverable error instead.
    if (scenarios[s]->source_fingerprint() != compiled.fingerprint()) {
      return Status::InvalidArgument(
          "scenario " + std::to_string(s) +
          " was materialized against a different compiled form (the set was "
          "mutated or the valuation belongs to another set) — "
          "re-materialize it against the form being evaluated");
    }
  }
  DoEvaluateBatch(compiled, poly_begin, poly_end, scenarios, outs,
                  scenario_count);
  return Status::OK();
}

// ------------------------------------------------- builtin: naive ------

namespace {

/// Scalar reference interpreter: scenario-major, one polynomial at a time,
/// written out longhand (not delegating to EvaluateOne) so the registry
/// always contains an independent implementation of the canonical
/// summation order for the differential battery to compare against.
class NaiveBackend : public EvaluationBackend {
 public:
  const EvaluationBackendInfo& info() const override {
    static const EvaluationBackendInfo kInfo{
        "naive", "scalar reference interpreter, one scenario at a time",
        /*vectorized=*/false, /*deterministic=*/true, /*preferred_batch=*/1,
        /*tier=*/0};
    return kInfo;
  }

 protected:
  void DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                       size_t poly_begin, size_t poly_end,
                       const DenseValuation* const* scenarios,
                       double* const* outs,
                       size_t scenario_count) const override {
    const CompiledPolynomialSet::CsrView csr = compiled.csr();
    for (size_t s = 0; s < scenario_count; ++s) {
      const double* values = scenarios[s]->data();
      double* out = outs[s];
      for (size_t p = poly_begin; p < poly_end; ++p) {
        double total = 0.0;
        for (uint32_t m = csr.poly_offsets[p]; m < csr.poly_offsets[p + 1];
             ++m) {
          double term = csr.coefficients[m];
          for (uint32_t f = csr.mono_offsets[m]; f < csr.mono_offsets[m + 1];
               ++f) {
            const double v = values[csr.factor_slots[f]];
            for (uint32_t e = 0; e < csr.factor_exps[f]; ++e) term *= v;
          }
          total += term;
        }
        out[p - poly_begin] = total;
      }
    }
  }
};

// ------------------------------------------------- builtin: compiled ----

/// PR 5's kernel behind the registry interface: per-scenario flat-array
/// walks (CompiledPolynomialSet::EvaluateRange). The single-scenario
/// baseline every batched backend is measured against.
class CompiledBackend : public EvaluationBackend {
 public:
  const EvaluationBackendInfo& info() const override {
    static const EvaluationBackendInfo kInfo{
        "compiled", "single-scenario CSR kernel (compiled evaluation)",
        /*vectorized=*/false, /*deterministic=*/true, /*preferred_batch=*/1,
        /*tier=*/1};
    return kInfo;
  }

 protected:
  void DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                       size_t poly_begin, size_t poly_end,
                       const DenseValuation* const* scenarios,
                       double* const* outs,
                       size_t scenario_count) const override {
    for (size_t s = 0; s < scenario_count; ++s) {
      compiled.EvaluateRange(poly_begin, poly_end, *scenarios[s], outs[s]);
    }
  }
};

// ------------------------------------------------- builtin: simd_batch --

/// Lane width of the SoA layout: one AVX2 register of doubles. The scalar
/// fallback keeps the identical 4-lane structure (and is compiled
/// unconditionally), so a scalar-forced differential run still covers the
/// vector path's transpose/lane/remainder logic.
constexpr size_t kLaneWidth = 4;

/// Evaluates polynomials [poly_begin, poly_end) for one lane group.
/// `lanes` is the SoA transpose (lanes[slot * kLaneWidth + j] = slot value
/// of lane j); `outs[j]` receives lane j's values indexed from the range
/// start; only the first `live` lanes are written (remainder groups pad
/// with duplicated scenarios whose outputs are discarded).
///
/// Per lane this performs exactly the canonical operation sequence —
/// term = coefficient, term *= value (exponent times), total += term — so
/// every lane is bitwise identical to the scalar paths. No FMA: mul and
/// add stay separate operations in both implementations.
void EvalLaneGroupScalar(const CompiledPolynomialSet::CsrView& csr,
                         size_t poly_begin, size_t poly_end,
                         const double* lanes, double* const* outs,
                         size_t live) {
  for (size_t p = poly_begin; p < poly_end; ++p) {
    double total[kLaneWidth] = {0.0, 0.0, 0.0, 0.0};
    for (uint32_t m = csr.poly_offsets[p]; m < csr.poly_offsets[p + 1]; ++m) {
      const double c = csr.coefficients[m];
      double term[kLaneWidth] = {c, c, c, c};
      for (uint32_t f = csr.mono_offsets[m]; f < csr.mono_offsets[m + 1];
           ++f) {
        const double* v = lanes + size_t{csr.factor_slots[f]} * kLaneWidth;
        for (uint32_t e = 0; e < csr.factor_exps[f]; ++e) {
          for (size_t j = 0; j < kLaneWidth; ++j) term[j] *= v[j];
        }
      }
      for (size_t j = 0; j < kLaneWidth; ++j) total[j] += term[j];
    }
    for (size_t j = 0; j < live; ++j) outs[j][p - poly_begin] = total[j];
  }
}

#if defined(PROVABS_EVAL_X86) && defined(__GNUC__)
#define PROVABS_EVAL_HAVE_AVX2 1

/// AVX2 twin of EvalLaneGroupScalar: one vmulpd/vaddpd per lane-group
/// operation. Per-element IEEE-754 semantics of packed mul/add are
/// identical to scalar mul/add (and intrinsics never contract into FMA),
/// so the bits match the scalar paths exactly. Compiled with a function-
/// level target attribute so the rest of the binary stays baseline-ISA;
/// only reached after __builtin_cpu_supports("avx2") at runtime.
__attribute__((target("avx2"))) void EvalLaneGroupAvx2(
    const CompiledPolynomialSet::CsrView& csr, size_t poly_begin,
    size_t poly_end, const double* lanes, double* const* outs, size_t live) {
  for (size_t p = poly_begin; p < poly_end; ++p) {
    __m256d total = _mm256_setzero_pd();
    for (uint32_t m = csr.poly_offsets[p]; m < csr.poly_offsets[p + 1]; ++m) {
      __m256d term = _mm256_set1_pd(csr.coefficients[m]);
      for (uint32_t f = csr.mono_offsets[m]; f < csr.mono_offsets[m + 1];
           ++f) {
        const __m256d v = _mm256_loadu_pd(
            lanes + size_t{csr.factor_slots[f]} * kLaneWidth);
        for (uint32_t e = 0; e < csr.factor_exps[f]; ++e) {
          term = _mm256_mul_pd(term, v);
        }
      }
      total = _mm256_add_pd(total, term);
    }
    double values[kLaneWidth];
    _mm256_storeu_pd(values, total);
    for (size_t j = 0; j < live; ++j) outs[j][p - poly_begin] = values[j];
  }
}
#endif  // PROVABS_EVAL_HAVE_AVX2

bool CpuHasAvx2() {
#if defined(PROVABS_EVAL_HAVE_AVX2)
  static const bool has = __builtin_cpu_supports("avx2") != 0;
  return has;
#else
  return false;
#endif
}

}  // namespace

bool SimdBatchAvx2Active() {
  const char* env = std::getenv("PROVABS_EVAL_FORCE_SCALAR");
  if (env != nullptr && env[0] != '\0' &&
      !(env[0] == '0' && env[1] == '\0')) {
    return false;
  }
  return CpuHasAvx2();
}

const EvaluationBackendInfo& SimdBatchBackend::info() const {
  static const EvaluationBackendInfo kInfo{
      "simd_batch",
      "structure-of-arrays scenario lanes over the CSR arrays "
      "(AVX2 when available, scalar lanes otherwise)",
      /*vectorized=*/true, /*deterministic=*/true, /*preferred_batch=*/8,
      /*tier=*/2};
  return kInfo;
}

bool SimdBatchBackend::using_avx2() const {
  return mode_ == Mode::kAuto && SimdBatchAvx2Active();
}

void SimdBatchBackend::DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                                       size_t poly_begin, size_t poly_end,
                                       const DenseValuation* const* scenarios,
                                       double* const* outs,
                                       size_t scenario_count) const {
  const CompiledPolynomialSet::CsrView csr = compiled.csr();
  const size_t slots = compiled.slot_count();
#if defined(PROVABS_EVAL_HAVE_AVX2)
  const bool avx2 = using_avx2();
#endif
  // One SoA transpose buffer, refilled per lane group: lanes[slot*W + j].
  // Remainder groups duplicate the group's first scenario into the dead
  // lanes (their outputs are discarded), so the kernels never branch on
  // lane liveness in the inner loops.
  std::vector<double> lanes(slots * kLaneWidth);
  for (size_t g = 0; g < scenario_count; g += kLaneWidth) {
    const size_t live = std::min(kLaneWidth, scenario_count - g);
    for (size_t j = 0; j < kLaneWidth; ++j) {
      const double* src = scenarios[g + (j < live ? j : 0)]->data();
      for (size_t slot = 0; slot < slots; ++slot) {
        lanes[slot * kLaneWidth + j] = src[slot];
      }
    }
    double* group_outs[kLaneWidth] = {nullptr, nullptr, nullptr, nullptr};
    for (size_t j = 0; j < live; ++j) group_outs[j] = outs[g + j];
#if defined(PROVABS_EVAL_HAVE_AVX2)
    if (avx2) {
      EvalLaneGroupAvx2(csr, poly_begin, poly_end, lanes.data(), group_outs,
                        live);
      continue;
    }
#endif
    EvalLaneGroupScalar(csr, poly_begin, poly_end, lanes.data(), group_outs,
                        live);
  }
}

// ------------------------------------------------- registry -------------

EvaluationBackendRegistry& EvaluationBackendRegistry::Default() {
  static EvaluationBackendRegistry* registry = [] {
    auto* r = new EvaluationBackendRegistry();
    // The built-ins carry distinct hardcoded names; registration cannot
    // fail on a fresh registry.
    Status s = RegisterBuiltinEvaluationBackends(*r);
    (void)s;
    return r;
  }();
  return *registry;
}

Status EvaluationBackendRegistry::Register(
    std::unique_ptr<EvaluationBackend> backend) {
  if (backend == nullptr) {
    return Status::InvalidArgument("cannot register a null backend");
  }
  const std::string& name = backend->info().name;
  if (name.empty()) {
    return Status::InvalidArgument("backend name must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = by_name_.emplace(name, std::move(backend));
  (void)it;
  if (!inserted) {
    return Status::InvalidArgument("evaluation backend '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

const EvaluationBackend* EvaluationBackendRegistry::Find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second.get();
}

StatusOr<const EvaluationBackend*> EvaluationBackendRegistry::Resolve(
    const std::string& name) const {
  const EvaluationBackend* backend = Find(name);
  if (backend == nullptr) {
    return Status::InvalidArgument("unknown evaluation backend '" + name +
                                   "' (registered: " + NamesCsv() + ")");
  }
  return backend;
}

StatusOr<const EvaluationBackend*> EvaluationBackendRegistry::ResolveForBatch(
    const std::string& name, size_t batch_size) const {
  if (!name.empty()) return Resolve(name);
  std::lock_guard<std::mutex> lock(mutex_);
  if (by_name_.empty()) {
    return Status::InvalidArgument("no evaluation backends registered");
  }
  // Highest available tier among backends that already pay off at this
  // batch size: jit > simd_batch > compiled > naive with the built-ins.
  // (The old policy considered only vectorized backends, which would
  // leave the jit tier unreachable by auto-routing.) Ties break toward
  // the larger preferred width, then the lexicographically smallest name,
  // so routing never depends on map iteration order of future backends.
  const EvaluationBackend* best = nullptr;
  const std::string* best_name = nullptr;
  for (const auto& [key, backend] : by_name_) {
    const EvaluationBackendInfo& info = backend->info();
    if (info.preferred_batch > batch_size || !backend->Available()) continue;
    if (best == nullptr) {
      best = backend.get();
      best_name = &key;
      continue;
    }
    const EvaluationBackendInfo& incumbent = best->info();
    if (info.tier != incumbent.tier) {
      if (info.tier > incumbent.tier) {
        best = backend.get();
        best_name = &key;
      }
      continue;
    }
    if (info.preferred_batch != incumbent.preferred_batch) {
      if (info.preferred_batch > incumbent.preferred_batch) {
        best = backend.get();
        best_name = &key;
      }
      continue;
    }
    if (key < *best_name) {
      best = backend.get();
      best_name = &key;
    }
  }
  if (best != nullptr) return best;
  auto it = by_name_.find("compiled");
  if (it != by_name_.end()) return static_cast<const EvaluationBackend*>(
      it->second.get());
  return static_cast<const EvaluationBackend*>(by_name_.begin()->second.get());
}

std::vector<std::string> EvaluationBackendRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(by_name_.size());
  for (const auto& [name, backend] : by_name_) names.push_back(name);
  return names;  // std::map iterates in sorted order.
}

std::vector<EvaluationBackendInfo> EvaluationBackendRegistry::Infos() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<EvaluationBackendInfo> infos;
  infos.reserve(by_name_.size());
  for (const auto& [name, backend] : by_name_) {
    infos.push_back(backend->info());
  }
  return infos;
}

std::string EvaluationBackendRegistry::NamesCsv() const {
  std::vector<std::string> names = Names();
  std::string csv;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) csv += ", ";
    csv += names[i];
  }
  return csv;
}

Status RegisterBuiltinEvaluationBackends(
    EvaluationBackendRegistry& registry) {
  Status s = registry.Register(std::make_unique<NaiveBackend>());
  if (!s.ok()) return s;
  s = registry.Register(std::make_unique<CompiledBackend>());
  if (!s.ok()) return s;
  s = registry.Register(std::make_unique<SimdBatchBackend>());
  if (!s.ok()) return s;
  return registry.Register(MakeJitBackend());
}

// ------------------------------------------------- convenience ----------

StatusOr<std::vector<std::vector<double>>> EvaluateScenarios(
    const PolynomialSet& polys, const std::vector<Valuation>& scenarios,
    const std::string& backend_name,
    const EvaluationBackendRegistry* registry) {
  const EvaluationBackendRegistry& reg =
      registry != nullptr ? *registry : EvaluationBackendRegistry::Default();
  StatusOr<const EvaluationBackend*> backend =
      reg.ResolveForBatch(backend_name, scenarios.size());
  if (!backend.ok()) return backend.status();

  std::shared_ptr<const CompiledPolynomialSet> compiled = polys.Compiled();
  const size_t n = scenarios.size();
  std::vector<std::vector<double>> out(
      n, std::vector<double>(compiled->poly_count()));
  std::vector<DenseValuation> dense;
  dense.reserve(n);
  std::vector<const DenseValuation*> dense_ptrs(n);
  std::vector<double*> out_ptrs(n);
  for (size_t s = 0; s < n; ++s) {
    dense.push_back(compiled->MaterializeValuation(scenarios[s]));
    dense_ptrs[s] = &dense[s];
    out_ptrs[s] = out[s].data();
  }
  Status status =
      (*backend)->EvaluateBatch(*compiled, 0, compiled->poly_count(),
                                dense_ptrs.data(), out_ptrs.data(), n);
  if (!status.ok()) return status;
  return out;
}

}  // namespace provabs
