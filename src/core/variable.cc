#include "core/variable.h"

// VariableTable is a thin header-only wrapper over StringInterner; this file
// anchors the translation unit for the core library.
