#ifndef PROVABS_CORE_VALUATION_H_
#define PROVABS_CORE_VALUATION_H_

#include <unordered_map>
#include <vector>

#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// A hypothetical scenario: an assignment of numeric values to provenance
/// variables. Variables not mentioned default to 1.0, which for the
/// multiplicative discount parameters of the paper's running example means
/// "no change". Evaluating a polynomial under a valuation yields the query
/// answer under the scenario — this is the operation abstraction speeds up
/// (Fig. 10).
class Valuation {
 public:
  Valuation() = default;

  /// Sets `var := value`, overwriting any previous assignment.
  void Set(VariableId var, double value) { values_[var] = value; }

  /// Value of `var` (default 1.0 when unassigned).
  double Get(VariableId var) const {
    auto it = values_.find(var);
    return it == values_.end() ? 1.0 : it->second;
  }

  /// Number of explicitly assigned variables.
  size_t size() const { return values_.size(); }

  /// Evaluates a single polynomial under this valuation.
  ///
  /// This defines the CANONICAL summation order every other evaluation path
  /// must reproduce operation-for-operation: monomials are accumulated left
  /// to right in the polynomial's canonical order (total starts at 0.0 and
  /// gains one `+= term` per monomial), each term starts from the
  /// coefficient and multiplies factor values left to right in the
  /// monomial's canonical factor order, and exponents expand to repeated
  /// multiplication. Floating-point addition and multiplication are not
  /// associative, so any reordering would change last-ulp results; pinning
  /// the order makes the compiled kernel (core/compiled_polynomial_set.h)
  /// and the parallel/batched paths bitwise identical to this reference —
  /// differential tests assert exact equality.
  double Evaluate(const Polynomial& poly) const;

  /// Evaluates each polynomial in the set; `out[i]` is the value of poly i.
  /// Routes through the set's lazily compiled CSR form (flat arrays, dense
  /// slot valuation — see core/compiled_polynomial_set.h); per-polynomial
  /// results are bitwise identical to calling `Evaluate(polys[i])`, per the
  /// canonical summation order above.
  std::vector<double> EvaluateAll(const PolynomialSet& polys) const;

 private:
  std::unordered_map<VariableId, double> values_;
};

}  // namespace provabs

#endif  // PROVABS_CORE_VALUATION_H_
