#ifndef PROVABS_CORE_EVALUATION_BACKEND_H_
#define PROVABS_CORE_EVALUATION_BACKEND_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/compiled_polynomial_set.h"

namespace provabs {

class PolynomialSet;
class Valuation;

/// The unified scenario-evaluation API. PR 5's compiled kernel made a
/// single scenario fast; the serving workload is MANY scenarios against one
/// resident artifact (the Fig. 10 interaction repeated per analyst), and the
/// cheapest way to go faster is to amortize one pass over the CSR arrays
/// across a batch of scenarios — structure-of-arrays DenseValuation lanes,
/// the batched-evaluation shape the incremental-maintenance literature uses
/// to make per-answer work sublinear. This header is the seam through which
/// every evaluation path (Valuation::EvaluateAll, ParallelEvaluateAll, the
/// serving EvaluateBatcher, the CLI, the benches) selects a strategy by
/// name, exactly how algo/compressor.h routes compression: adding a backend
/// means registering one adapter, and the cross-backend differential
/// battery gates it for free — the route the per-artifact JIT
/// (jit/jit_backend.h) arrived through.
///
/// Every backend MUST reproduce the canonical summation order documented on
/// Valuation::Evaluate operation-for-operation, so results are BITWISE
/// identical across all registered backends — tests and the
/// bench_evaluate_kernel batched arm assert IEEE-754 bit equality, not
/// tolerance, and the bench exits nonzero on any divergence.

/// Capability record advertised by an evaluation backend, served over the
/// wire by the ListBackends request so clients route without hardcoding
/// backend names.
struct EvaluationBackendInfo {
  std::string name;
  /// One-line description for --help / remote-info output.
  std::string summary;
  /// Uses SIMD lanes (evaluates several scenarios per instruction).
  bool vectorized = false;
  /// Same inputs always yield the same bits (all built-ins).
  bool deterministic = false;
  /// Batch width from which this backend beats the single-scenario kernel;
  /// auto-routing only considers it for batches >= this width. 1 = no
  /// batching requirement.
  uint32_t preferred_batch = 1;
  /// Speed tier for auto-routing: among eligible (preferred_batch) and
  /// available backends the HIGHEST tier wins. Built-ins: naive=0,
  /// compiled=1, simd_batch=2, jit=3 — the jit > simd_batch > compiled
  /// preference order ResolveForBatch documents.
  uint32_t tier = 0;
};

/// One evaluation strategy. Implementations must be stateless and
/// thread-safe: the serving layer calls a single instance from many pool
/// workers concurrently, each on a disjoint polynomial range.
class EvaluationBackend {
 public:
  virtual ~EvaluationBackend() = default;

  virtual const EvaluationBackendInfo& info() const = 0;

  /// Whether this backend can currently deliver its advertised tier. The
  /// auto policy skips unavailable backends; explicit selection by name
  /// still works (an unavailable backend must degrade internally, not
  /// fail). The jit backend reports false when executable memory is
  /// unavailable or PROVABS_EVAL_FORCE_NOJIT is set; everything else is
  /// unconditionally available.
  virtual bool Available() const { return true; }

  /// Evaluates polynomials [poly_begin, poly_end) of `compiled` under each
  /// of `scenarios[0..scenario_count)`; writes
  /// `outs[s][i] = value of polynomial (poly_begin + i) under scenario s`.
  /// Every output buffer must hold at least `poly_end - poly_begin` slots.
  ///
  /// Fails with kInvalidArgument when the range is out of bounds or any
  /// scenario was materialized against a DIFFERENT compiled form
  /// (fingerprint mismatch — a stale valuation from before a set was
  /// mutated would silently mis-index otherwise). Validation happens here,
  /// once per batch; implementations receive pre-validated input.
  Status EvaluateBatch(const CompiledPolynomialSet& compiled,
                       size_t poly_begin, size_t poly_end,
                       const DenseValuation* const* scenarios,
                       double* const* outs, size_t scenario_count) const;

 protected:
  /// The actual kernel, called with validated arguments.
  virtual void DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                               size_t poly_begin, size_t poly_end,
                               const DenseValuation* const* scenarios,
                               double* const* outs,
                               size_t scenario_count) const = 0;
};

/// Name -> backend registry, mirroring CompressorRegistry. `Default()` is
/// the process-wide instance pre-populated with the four built-ins:
///
///   naive      — scalar reference interpreter, one scenario at a time
///   compiled   — PR 5's CSR kernel (flat-array walks), one scenario at a
///                time; the single-scenario baseline
///   simd_batch — transposes the batch into structure-of-arrays lanes and
///                walks the CSR arrays ONCE per polynomial for all lanes;
///                AVX2 when the CPU has it (runtime-detected), with a
///                portable scalar-lane fallback compiled unconditionally
///   jit        — emits one straight-line native function per polynomial
///                of the compiled artifact (jit/jit_backend.h), cached by
///                compiled-form fingerprint; degrades to the compiled
///                kernel where executable memory is unavailable
///
/// Thread-safe; registered backends live for the registry's lifetime.
class EvaluationBackendRegistry {
 public:
  /// An empty registry (for tests and embedders composing their own set).
  EvaluationBackendRegistry() = default;

  EvaluationBackendRegistry(const EvaluationBackendRegistry&) = delete;
  EvaluationBackendRegistry& operator=(const EvaluationBackendRegistry&) =
      delete;

  /// The process-wide registry with the built-ins registered. Constructed
  /// on first use (no static-init-order hazards).
  static EvaluationBackendRegistry& Default();

  /// Registers a backend under its info().name. Duplicate names are
  /// rejected (kInvalidArgument) — silently replacing a backend another
  /// subsystem already resolved would change the bits under its feet.
  Status Register(std::unique_ptr<EvaluationBackend> backend);

  /// nullptr when no backend of that name is registered.
  const EvaluationBackend* Find(const std::string& name) const;

  /// Find() with a useful failure: the error lists every registered name.
  StatusOr<const EvaluationBackend*> Resolve(const std::string& name) const;

  /// Auto-routing policy shared by every evaluation path: an explicit
  /// `name` resolves strictly; an empty name picks the HIGHEST-tier
  /// backend among those that are Available() and whose preferred_batch
  /// <= `batch_size` — with the built-ins, jit > simd_batch > compiled
  /// (and jit force-disabled or without executable memory degrades to
  /// simd_batch for batches, compiled for single scenarios). Ties break
  /// toward the larger preferred_batch, then lexicographically smallest
  /// name, so routing is deterministic. Falls back to "compiled" when
  /// nothing is eligible (and to any registered backend if "compiled" was
  /// not registered — an empty registry is the only hard failure).
  StatusOr<const EvaluationBackend*> ResolveForBatch(const std::string& name,
                                                     size_t batch_size) const;

  /// Registered names in sorted order.
  std::vector<std::string> Names() const;

  /// Capability records in name-sorted order (the ListBackends payload).
  std::vector<EvaluationBackendInfo> Infos() const;

  /// "compiled, naive, simd_batch" — for error and usage text.
  std::string NamesCsv() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<EvaluationBackend>> by_name_;
};

/// Registers the built-in backends into `registry`. Default() calls this on
/// construction; exposed so tests can compose a fresh registry with the
/// same contents.
Status RegisterBuiltinEvaluationBackends(EvaluationBackendRegistry& registry);

/// True when the running CPU supports AVX2 and the PROVABS_EVAL_FORCE_SCALAR
/// environment variable is unset/0 — the condition under which the
/// registered "simd_batch" backend takes its vector path. Exposed so tests
/// and CI can tell which lane implementation the differential actually
/// covered (a scalar-forced job still gates the vector path's lane logic,
/// which the fallback shares).
bool SimdBatchAvx2Active();

/// The SIMD-batched backend, constructible directly so the differential
/// battery can pin each lane implementation regardless of the host CPU:
/// kForceScalar always takes the portable scalar-lane path; kAuto follows
/// SimdBatchAvx2Active(). Registered in Default() as "simd_batch" (kAuto).
class SimdBatchBackend : public EvaluationBackend {
 public:
  enum class Mode { kAuto, kForceScalar };
  explicit SimdBatchBackend(Mode mode = Mode::kAuto) : mode_(mode) {}

  const EvaluationBackendInfo& info() const override;

  /// True when this instance will execute AVX2 lanes.
  bool using_avx2() const;

 protected:
  void DoEvaluateBatch(const CompiledPolynomialSet& compiled,
                       size_t poly_begin, size_t poly_end,
                       const DenseValuation* const* scenarios,
                       double* const* outs,
                       size_t scenario_count) const override;

 private:
  Mode mode_;
};

/// Convenience entry point for multi-scenario evaluation: compiles (cached
/// on the set), materializes every scenario, and routes the whole batch
/// through `ResolveForBatch(backend_name, scenarios.size())` against
/// `registry` (Default() when null). Returns one value vector per scenario,
/// each bitwise identical to Valuation::Evaluate per polynomial. Unknown
/// backend names fail listing the registered set.
StatusOr<std::vector<std::vector<double>>> EvaluateScenarios(
    const PolynomialSet& polys, const std::vector<Valuation>& scenarios,
    const std::string& backend_name = "",
    const EvaluationBackendRegistry* registry = nullptr);

}  // namespace provabs

#endif  // PROVABS_CORE_EVALUATION_BACKEND_H_
