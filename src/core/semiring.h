#ifndef PROVABS_CORE_SEMIRING_H_
#define PROVABS_CORE_SEMIRING_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "core/polynomial.h"
#include "core/variable.h"

namespace provabs {

/// §2.1 of the paper notes that the polynomial model is generic over the
/// semiring interpretation of + and ·: Boolean valuations capture tuple
/// existence scenarios, counting captures bag semantics, tropical captures
/// min-cost, and the real semiring captures the aggregate setting of the
/// running example. Each semiring below supplies the (Zero, One, Add, Mul)
/// structure plus a mapping of the stored rational coefficient into the
/// carrier. `EvaluateOver<S>` then evaluates any provenance polynomial in
/// that semiring, demonstrating that abstraction is model-agnostic.

/// Standard (R, +, ·) — numeric what-if analysis.
struct RealSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value FromCoefficient(double c) { return c; }
};

/// ({false,true}, ∨, ∧) — tuple existence / possibility.
struct BooleanSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Add(Value a, Value b) { return a || b; }
  static Value Mul(Value a, Value b) { return a && b; }
  static Value FromCoefficient(double c) { return c != 0.0; }
};

/// (N, +, ·) — bag multiplicity counting.
struct CountingSemiring {
  using Value = int64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Add(Value a, Value b) { return a + b; }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value FromCoefficient(double c) {
    return static_cast<int64_t>(std::llround(c));
  }
};

/// (R ∪ {∞}, min, +) — minimal cost of derivation.
struct TropicalSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Add(Value a, Value b) { return std::min(a, b); }
  static Value Mul(Value a, Value b) { return a + b; }
  static Value FromCoefficient(double c) { return c; }
};

/// (R≥0 ∪ {∞}, min, ·) — MIN aggregates with multiplicative scenario
/// factors (§2.1 case 2: the polynomial's "+" is the aggregate). min
/// distributes over · on the non-negative reals, so this is a semiring and
/// abstraction with CoefficientCombine::kMin stays exact.
struct MinTimesSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return std::min(a, b); }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value FromCoefficient(double c) { return c; }
};

/// (R≥0 ∪ {−∞}, max, ·) — MAX aggregates with multiplicative factors.
struct MaxTimesSemiring {
  using Value = double;
  static Value Zero() { return -std::numeric_limits<double>::infinity(); }
  static Value One() { return 1.0; }
  static Value Add(Value a, Value b) { return std::max(a, b); }
  static Value Mul(Value a, Value b) { return a * b; }
  static Value FromCoefficient(double c) { return c; }
};

/// Evaluates `poly` in semiring `S` under `assignment`. Variables absent
/// from the assignment evaluate to `S::One()` (the neutral scenario).
template <typename S>
typename S::Value EvaluateOver(
    const Polynomial& poly,
    const std::unordered_map<VariableId, typename S::Value>& assignment) {
  typename S::Value total = S::Zero();
  for (const Monomial& m : poly.monomials()) {
    typename S::Value term = S::FromCoefficient(m.coefficient());
    for (const Factor& f : m.factors()) {
      auto it = assignment.find(f.var);
      typename S::Value v = (it == assignment.end()) ? S::One() : it->second;
      for (uint32_t e = 0; e < f.exp; ++e) term = S::Mul(term, v);
    }
    total = S::Add(total, term);
  }
  return total;
}

}  // namespace provabs

#endif  // PROVABS_CORE_SEMIRING_H_
