#ifndef PROVABS_CORE_COMPILED_POLYNOMIAL_SET_H_
#define PROVABS_CORE_COMPILED_POLYNOMIAL_SET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/variable.h"

namespace provabs {

class PolynomialSet;
class Valuation;
class CompiledPolynomialSet;

/// A Valuation materialized against one CompiledPolynomialSet: a flat
/// slot-indexed value array, so the evaluation inner loop reads values by
/// array index instead of probing a hash map per factor. Slots are the
/// compiled set's dense variable indices; a DenseValuation is only
/// meaningful together with the compiled set that produced it — it carries
/// that set's fingerprint so batch entry points can reject a stale or
/// foreign valuation (e.g. one materialized before a copied set was
/// mutated and recompiled) instead of silently mis-indexing.
class DenseValuation {
 public:
  DenseValuation() = default;

  /// Value of slot `s` (variables the source Valuation did not assign hold
  /// the default 1.0).
  double operator[](uint32_t slot) const { return values_[slot]; }

  size_t slot_count() const { return values_.size(); }

  /// Raw slot array, for batched backends that transpose valuations into
  /// structure-of-arrays lanes (core/evaluation_backend.h).
  const double* data() const { return values_.data(); }

  /// Fingerprint of the CompiledPolynomialSet this was materialized
  /// against (0 for a default-constructed valuation). Evaluating under any
  /// other compiled form is a slot-mapping mismatch.
  uint64_t source_fingerprint() const { return source_fingerprint_; }

 private:
  friend class CompiledPolynomialSet;
  std::vector<double> values_;
  uint64_t source_fingerprint_ = 0;
};

/// A PolynomialSet flattened into CSR-style contiguous arrays for fast
/// repeated evaluation — the operation the paper's abstraction exists to
/// speed up (Fig. 10). The nested
/// `vector<Polynomial> → vector<Monomial> → vector<Factor>` representation
/// pointer-chases three levels and hashes once per factor; the compiled
/// form walks four flat arrays sequentially:
///
///   poly_offsets_[p] .. poly_offsets_[p+1]   — monomial range of poly p
///   mono_offsets_[m] .. mono_offsets_[m+1]   — factor range of monomial m
///   coefficients_[m]                          — monomial coefficient
///   factor_slots_[f], factor_exps_[f]         — dense variable slot + exp
///
/// Slots are dense indices assigned at compile time in first-appearance
/// order; `MaterializeValuation` resolves a scenario's hash map into a
/// slot-indexed array once per valuation instead of once per factor.
///
/// Evaluation reproduces the canonical summation order of
/// `Valuation::Evaluate` operation-for-operation (monomials left to right,
/// factors left to right, exponents by repeated multiplication), so results
/// are bitwise identical to the naive path — differential tests assert
/// exact equality, not tolerance.
///
/// Instances are immutable after `Compile` and safe to share across
/// threads.
class CompiledPolynomialSet {
 public:
  CompiledPolynomialSet() = default;

  /// Flattens `polys`. The compiled form is a snapshot: later mutation of
  /// `polys` is not reflected (PolynomialSet's lazy `Compiled()` cache
  /// handles invalidation for the common route).
  static CompiledPolynomialSet Compile(const PolynomialSet& polys);

  /// Number of polynomials (matches the source set's count()).
  size_t poly_count() const {
    return poly_offsets_.empty() ? 0 : poly_offsets_.size() - 1;
  }

  /// Total monomials (|P|_M) and factors across the set.
  size_t monomial_count() const { return coefficients_.size(); }
  size_t factor_count() const { return factor_slots_.size(); }

  /// Number of distinct variables (= slots) in the set.
  size_t slot_count() const { return slot_vars_.size(); }

  /// slot -> VariableId, in slot order.
  const std::vector<VariableId>& slot_variables() const { return slot_vars_; }

  /// Process-unique id of this compiled form, assigned by `Compile` (0 only
  /// for a default-constructed instance). Two forms compiled from
  /// identical polynomials still get distinct fingerprints: the fingerprint
  /// identifies the slot mapping a DenseValuation was materialized against,
  /// and "same mapping" is only guaranteed for the SAME compiled snapshot
  /// (which copies of a PolynomialSet share — see PolynomialSet::Compiled).
  uint64_t fingerprint() const { return fingerprint_; }

  /// Borrowed pointers into the CSR arrays, for evaluation backends
  /// (core/evaluation_backend.h) and the future JIT that walk the layout
  /// directly. Valid for this object's lifetime.
  struct CsrView {
    const uint32_t* poly_offsets;  ///< size poly_count()+1
    const uint32_t* mono_offsets;  ///< size monomial_count()+1
    const double* coefficients;    ///< per monomial
    const uint32_t* factor_slots;  ///< per factor
    const uint32_t* factor_exps;   ///< per factor
  };
  CsrView csr() const {
    return CsrView{poly_offsets_.data(), mono_offsets_.data(),
                   coefficients_.data(), factor_slots_.data(),
                   factor_exps_.data()};
  }

  /// Resolves `valuation` into a slot-indexed array: one hash probe per
  /// distinct variable of the set, 1.0 for unassigned slots. Variables the
  /// valuation assigns but the set never mentions have no slot and are
  /// ignored — exactly the naive path's behaviour.
  DenseValuation MaterializeValuation(const Valuation& valuation) const;

  /// Builds a DenseValuation directly from a per-slot value array (entry i
  /// is the value of slot_variables()[i]) — the batch-expansion entry point
  /// for generated scenario families (scenario/program.h), which produce
  /// slot-ordered values natively and should not pay a hash probe per
  /// variable. Checks (aborts) that `values` has exactly slot_count()
  /// entries.
  DenseValuation MaterializeSlots(std::vector<double> values) const;

  /// Evaluates polynomial `p` under `dense`; bitwise identical to
  /// `Valuation::Evaluate` on the source polynomial.
  double EvaluateOne(size_t p, const DenseValuation& dense) const {
    double total = 0.0;
    for (uint32_t m = poly_offsets_[p]; m < poly_offsets_[p + 1]; ++m) {
      double term = coefficients_[m];
      for (uint32_t f = mono_offsets_[m]; f < mono_offsets_[m + 1]; ++f) {
        const double v = dense[factor_slots_[f]];
        // Exponents are small (bounded by the query's join arity); repeated
        // multiplication beats std::pow AND matches the naive path's
        // operation order exactly.
        for (uint32_t e = 0; e < factor_exps_[f]; ++e) term *= v;
      }
      total += term;
    }
    return total;
  }

  /// Evaluates polynomials [begin, end) into out[0..end-begin); the chunked
  /// entry point for parallel and batched evaluation (a contiguous
  /// polynomial range is a contiguous walk of the flat arrays).
  void EvaluateRange(size_t begin, size_t end, const DenseValuation& dense,
                     double* out) const {
    for (size_t p = begin; p < end; ++p) {
      out[p - begin] = EvaluateOne(p, dense);
    }
  }

  /// Evaluates every polynomial; out[i] is the value of polynomial i.
  /// Checks (aborts) that `dense` was materialized from THIS compiled form;
  /// backends report the same condition as a recoverable Status instead.
  std::vector<double> EvaluateAll(const DenseValuation& dense) const;

  /// Rough resident size, for the serving layer's byte-budget accounting.
  size_t ApproxBytes() const;

 private:
  std::vector<uint32_t> poly_offsets_;  // size poly_count()+1
  std::vector<uint32_t> mono_offsets_;  // size monomial_count()+1
  std::vector<double> coefficients_;    // per monomial
  std::vector<uint32_t> factor_slots_;  // per factor
  std::vector<uint32_t> factor_exps_;   // per factor
  std::vector<VariableId> slot_vars_;   // slot -> variable
  uint64_t fingerprint_ = 0;            // see fingerprint()
};

}  // namespace provabs

#endif  // PROVABS_CORE_COMPILED_POLYNOMIAL_SET_H_
