#include "core/compiled_polynomial_set.h"

#include <atomic>
#include <unordered_map>

#include "common/macros.h"
#include "core/polynomial_set.h"
#include "core/valuation.h"

namespace provabs {

CompiledPolynomialSet CompiledPolynomialSet::Compile(
    const PolynomialSet& polys) {
  // Fingerprints start at 1 so 0 unambiguously means "never compiled"
  // (default-constructed forms and valuations).
  static std::atomic<uint64_t> next_fingerprint{1};
  CompiledPolynomialSet out;
  out.fingerprint_ = next_fingerprint.fetch_add(1, std::memory_order_relaxed);
  const size_t size_m = polys.SizeM();
  // The CSR offsets are 32-bit; provenance sets here are far below 4G
  // monomials (the serving layer's byte budget caps them long before).
  PROVABS_CHECK(size_m < 0xFFFFFFFFu);

  out.poly_offsets_.reserve(polys.count() + 1);
  out.mono_offsets_.reserve(size_m + 1);
  out.coefficients_.reserve(size_m);

  out.poly_offsets_.push_back(0);
  out.mono_offsets_.push_back(0);
  // Build-time only: slots resolve through slot_vars_ afterwards, so the
  // inverse map is not retained (cached compiled forms stay lean).
  std::unordered_map<VariableId, uint32_t> var_slots;
  for (const Polynomial& poly : polys.polynomials()) {
    for (const Monomial& m : poly.monomials()) {
      out.coefficients_.push_back(m.coefficient());
      for (const Factor& f : m.factors()) {
        auto [it, inserted] = var_slots.emplace(
            f.var, static_cast<uint32_t>(out.slot_vars_.size()));
        if (inserted) out.slot_vars_.push_back(f.var);
        out.factor_slots_.push_back(it->second);
        out.factor_exps_.push_back(f.exp);
      }
      PROVABS_CHECK(out.factor_slots_.size() < 0xFFFFFFFFu);
      out.mono_offsets_.push_back(
          static_cast<uint32_t>(out.factor_slots_.size()));
    }
    out.poly_offsets_.push_back(
        static_cast<uint32_t>(out.coefficients_.size()));
  }
  return out;
}

DenseValuation CompiledPolynomialSet::MaterializeValuation(
    const Valuation& valuation) const {
  DenseValuation dense;
  dense.source_fingerprint_ = fingerprint_;
  dense.values_.reserve(slot_vars_.size());
  for (VariableId var : slot_vars_) {
    dense.values_.push_back(valuation.Get(var));
  }
  return dense;
}

DenseValuation CompiledPolynomialSet::MaterializeSlots(
    std::vector<double> values) const {
  PROVABS_CHECK(values.size() == slot_vars_.size());
  DenseValuation dense;
  dense.source_fingerprint_ = fingerprint_;
  dense.values_ = std::move(values);
  return dense;
}

std::vector<double> CompiledPolynomialSet::EvaluateAll(
    const DenseValuation& dense) const {
  // A valuation materialized against a different compiled form (a mutated
  // copy, another set) would read wrong slots — or past the end of its
  // array. Mixing them is a programming error, caught here rather than
  // surfacing as silently wrong what-if answers.
  PROVABS_CHECK(dense.source_fingerprint() == fingerprint_);
  std::vector<double> out(poly_count());
  EvaluateRange(0, poly_count(), dense, out.data());
  return out;
}

size_t CompiledPolynomialSet::ApproxBytes() const {
  size_t bytes = sizeof(CompiledPolynomialSet);
  bytes += poly_offsets_.capacity() * sizeof(uint32_t);
  bytes += mono_offsets_.capacity() * sizeof(uint32_t);
  bytes += coefficients_.capacity() * sizeof(double);
  bytes += factor_slots_.capacity() * sizeof(uint32_t);
  bytes += factor_exps_.capacity() * sizeof(uint32_t);
  bytes += slot_vars_.capacity() * sizeof(VariableId);
  return bytes;
}

}  // namespace provabs
