#include "common/interner.h"

#include "common/macros.h"

namespace provabs {

uint32_t StringInterner::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(names_.size());
  PROVABS_CHECK(id != kNotFound);
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

uint32_t StringInterner::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  if (it == ids_.end()) return kNotFound;
  return it->second;
}

const std::string& StringInterner::NameOf(uint32_t id) const {
  PROVABS_CHECK(id < names_.size());
  return names_[id];
}

}  // namespace provabs
