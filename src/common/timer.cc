#include "common/timer.h"

// Timer is header-only; this translation unit exists so the common library
// has a stable archive member for it (and to catch ODR issues early).
