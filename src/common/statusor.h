#ifndef PROVABS_COMMON_STATUSOR_H_
#define PROVABS_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"

namespace provabs {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Accessing the value of a non-OK `StatusOr` aborts.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Aborts if `status` is OK (an OK
  /// StatusOr must carry a value).
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    PROVABS_CHECK(!status_.ok());
  }

  /// Constructs an OK result carrying `value`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    PROVABS_CHECK(ok());
    return *value_;
  }
  T& value() & {
    PROVABS_CHECK(ok());
    return *value_;
  }
  T&& value() && {
    PROVABS_CHECK(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a `StatusOr` expression to `lhs`, or returns its
/// status from the enclosing function on failure.
#define PROVABS_ASSIGN_OR_RETURN(lhs, expr)         \
  auto PROVABS_CONCAT_(statusor_, __LINE__) = (expr);  \
  if (!PROVABS_CONCAT_(statusor_, __LINE__).ok())      \
    return PROVABS_CONCAT_(statusor_, __LINE__).status(); \
  lhs = std::move(PROVABS_CONCAT_(statusor_, __LINE__)).value()

#define PROVABS_CONCAT_IMPL_(a, b) a##b
#define PROVABS_CONCAT_(a, b) PROVABS_CONCAT_IMPL_(a, b)

}  // namespace provabs

#endif  // PROVABS_COMMON_STATUSOR_H_
