#ifndef PROVABS_COMMON_STATUS_H_
#define PROVABS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace provabs {

/// Error categories used across the library. Modeled after the
/// RocksDB/Abseil status idiom: functions that can fail return a `Status`
/// (or `StatusOr<T>`); exceptions are not used.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kInfeasible = 5,   ///< No adequate abstraction exists for the given bound.
  kInternal = 6,
  kUnimplemented = 7,
  /// A caller-supplied timeout expired before the operation finished
  /// (client RPC deadlines, connect timeouts).
  kDeadlineExceeded = 8,
  /// The service exists but refuses new work right now (connection limit,
  /// fd exhaustion, draining for shutdown). Retryable, unlike kInternal.
  kUnavailable = 9,
};

/// Human-readable name of a status code, e.g. "InvalidArgument".
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. OK statuses carry no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace provabs

#endif  // PROVABS_COMMON_STATUS_H_
