#ifndef PROVABS_COMMON_MACROS_H_
#define PROVABS_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// \file
/// Internal invariant-checking macros. Following the project's no-exceptions
/// policy, violated invariants abort the process with a source location; they
/// indicate programming errors, never data-dependent failures (which are
/// reported via `provabs::Status`).

#define PROVABS_CHECK(condition)                                            \
  do {                                                                      \
    if (!(condition)) {                                                     \
      std::fprintf(stderr, "PROVABS_CHECK failed at %s:%d: %s\n", __FILE__, \
                   __LINE__, #condition);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (false)

#define PROVABS_DCHECK(condition) PROVABS_CHECK(condition)

/// No-alias pointer qualifier for hot loops the compiler should vectorize.
#if defined(__GNUC__) || defined(__clang__)
#define PROVABS_RESTRICT __restrict__
#elif defined(_MSC_VER)
#define PROVABS_RESTRICT __restrict
#else
#define PROVABS_RESTRICT
#endif

/// Propagates a non-OK `provabs::Status` to the caller.
#define PROVABS_RETURN_IF_ERROR(expr)               \
  do {                                              \
    ::provabs::Status _status = (expr);             \
    if (!_status.ok()) return _status;              \
  } while (false)

#endif  // PROVABS_COMMON_MACROS_H_
