#ifndef PROVABS_COMMON_RANDOM_H_
#define PROVABS_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace provabs {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). Workload
/// generators take an explicit `Rng` so every benchmark and test is
/// reproducible from a seed; we never use global random state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t NextU64();

  /// Uniform in [0, bound). `bound` must be positive.
  uint64_t Uniform(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// Uniform real in [lo, hi).
  double UniformReal(double lo, double hi);

  /// Flips a coin with probability `p` of true.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = Uniform(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace provabs

#endif  // PROVABS_COMMON_RANDOM_H_
