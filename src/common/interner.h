#ifndef PROVABS_COMMON_INTERNER_H_
#define PROVABS_COMMON_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace provabs {

/// Maps strings to dense 32-bit ids and back. Used to intern variable and
/// meta-variable names so that polynomials and abstraction trees store plain
/// integers instead of heap strings (the polynomial "DAG" becomes flat
/// vectors of ids — no manual pointer management).
class StringInterner {
 public:
  StringInterner() = default;

  StringInterner(const StringInterner&) = delete;
  StringInterner& operator=(const StringInterner&) = delete;
  StringInterner(StringInterner&&) = default;
  StringInterner& operator=(StringInterner&&) = default;

  /// Returns the id for `name`, inserting it if new. Ids are assigned
  /// consecutively from 0.
  uint32_t Intern(std::string_view name);

  /// Returns the id for `name` or `kNotFound` if it was never interned.
  uint32_t Find(std::string_view name) const;

  /// Returns the string for `id`. `id` must have been returned by Intern().
  const std::string& NameOf(uint32_t id) const;

  /// Number of distinct interned strings.
  size_t size() const { return names_.size(); }

  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  std::unordered_map<std::string, uint32_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace provabs

#endif  // PROVABS_COMMON_INTERNER_H_
