#ifndef PROVABS_COMMON_TIMER_H_
#define PROVABS_COMMON_TIMER_H_

#include <chrono>

namespace provabs {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  /// Starts timing immediately on construction.
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last `Reset()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last `Reset()`.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace provabs

#endif  // PROVABS_COMMON_TIMER_H_
