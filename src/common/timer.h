#ifndef PROVABS_COMMON_TIMER_H_
#define PROVABS_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace provabs {

/// Wall-clock stopwatch used by the benchmark harnesses.
class Timer {
 public:
  /// Starts timing immediately on construction.
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last `Reset()`.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or last `Reset()`.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A wall-clock cutoff for best-effort time budgets. The default-constructed
/// deadline never expires; `Expired()` costs one steady_clock read, cheap
/// enough for the inner loops of the exponential algorithms (brute force
/// checks it per cut, Prox per oracle-call batch).
class Deadline {
 public:
  /// Never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (0 = already expired).
  static Deadline AfterMillis(uint64_t ms) {
    Deadline d;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const {
    return at_ == std::chrono::steady_clock::time_point::max();
  }

  bool Expired() const {
    return !infinite() && std::chrono::steady_clock::now() >= at_;
  }

 private:
  std::chrono::steady_clock::time_point at_ =
      std::chrono::steady_clock::time_point::max();
};

}  // namespace provabs

#endif  // PROVABS_COMMON_TIMER_H_
