#include "common/random.h"

#include "common/macros.h"

namespace provabs {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t state = seed;
  s0_ = SplitMix64(state);
  s1_ = SplitMix64(state);
  if (s0_ == 0 && s1_ == 0) s1_ = 1;  // xorshift must not be all-zero.
}

uint64_t Rng::NextU64() {
  uint64_t x = s0_;
  const uint64_t y = s1_;
  s0_ = y;
  x ^= x << 23;
  s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s1_ + y;
}

uint64_t Rng::Uniform(uint64_t bound) {
  PROVABS_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  PROVABS_CHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  // 53 random bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::UniformReal(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

}  // namespace provabs
