#ifndef PROVABS_ENGINE_TABLE_H_
#define PROVABS_ENGINE_TABLE_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/value.h"

namespace provabs {

/// A row is a flat value vector positionally matching the schema.
using Row = std::vector<Value>;

/// Ordered list of named, typed columns.
class Schema {
 public:
  struct Column {
    std::string name;
    ValueType type;
  };

  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t column_count() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

  /// Index of the column named `name`; aborts if absent (schema errors are
  /// programming errors in this embedded engine).
  size_t IndexOf(std::string_view name) const;

  /// True if a column named `name` exists.
  bool Has(std::string_view name) const;

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

/// An in-memory relation: schema + rows. Base relations carry no provenance;
/// annotations are attached when a table enters a provenance-aware query
/// (see engine/query.h).
class Table {
 public:
  Table() = default;
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  /// Appends a row; the row must match the schema arity (checked).
  void Append(Row row);

  /// Row type/arity validation (used by tests and loaders).
  Status ValidateRows() const;

 private:
  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
};

/// A named collection of tables.
class Database {
 public:
  /// Adds `table` (replacing any previous table of the same name).
  void Put(Table table);

  /// Returns the table named `name`; aborts if absent.
  const Table& Get(std::string_view name) const;

  bool Has(std::string_view name) const;
  size_t table_count() const { return tables_.size(); }

  /// Names of all tables (unordered).
  std::vector<std::string> Names() const;

  /// Total row count across tables (the "input data size" axis of Fig. 8).
  size_t TotalRows() const;

 private:
  std::unordered_map<std::string, Table> tables_;
};

}  // namespace provabs

#endif  // PROVABS_ENGINE_TABLE_H_
