#include "engine/table.h"

#include "common/macros.h"

namespace provabs {

std::string ValueToString(const Value& v) {
  switch (TypeOf(v)) {
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(v));
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
      return buf;
    }
    case ValueType::kString:
      return std::get<std::string>(v);
  }
  return "?";
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    auto [it, inserted] = index_.emplace(columns_[i].name, i);
    PROVABS_CHECK(inserted);  // Duplicate column names are programming errors.
  }
}

size_t Schema::IndexOf(std::string_view name) const {
  auto it = index_.find(std::string(name));
  PROVABS_CHECK(it != index_.end());
  return it->second;
}

bool Schema::Has(std::string_view name) const {
  return index_.count(std::string(name)) > 0;
}

void Table::Append(Row row) {
  PROVABS_CHECK(row.size() == schema_.column_count());
  rows_.push_back(std::move(row));
}

Status Table::ValidateRows() const {
  for (const Row& row : rows_) {
    if (row.size() != schema_.column_count()) {
      return Status::Internal("row arity mismatch in table " + name_);
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (TypeOf(row[i]) != schema_.column(i).type) {
        return Status::Internal("type mismatch in table " + name_ +
                                " column " + schema_.column(i).name);
      }
    }
  }
  return Status::OK();
}

void Database::Put(Table table) {
  std::string name = table.name();
  tables_.insert_or_assign(std::move(name), std::move(table));
}

const Table& Database::Get(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  PROVABS_CHECK(it != tables_.end());
  return it->second;
}

bool Database::Has(std::string_view name) const {
  return tables_.count(std::string(name)) > 0;
}

std::vector<std::string> Database::Names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

size_t Database::TotalRows() const {
  size_t total = 0;
  for (const auto& [name, table] : tables_) total += table.row_count();
  return total;
}

}  // namespace provabs
