#include "engine/query.h"

#include <unordered_map>

#include "common/macros.h"

namespace provabs {

namespace {

// Hash of a row (used by project-dedup, join keys, and group-by).
uint64_t HashRow(const Row& row, const std::vector<size_t>& columns) {
  uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001B3ULL;
  };
  std::hash<std::string> shash;
  for (size_t c : columns) {
    const Value& v = row[c];
    mix(static_cast<uint64_t>(v.index()));
    switch (TypeOf(v)) {
      case ValueType::kInt64:
        mix(static_cast<uint64_t>(std::get<int64_t>(v)));
        break;
      case ValueType::kDouble: {
        double d = std::get<double>(v);
        uint64_t bits;
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        mix(bits);
        break;
      }
      case ValueType::kString:
        mix(shash(std::get<std::string>(v)));
        break;
    }
  }
  return h;
}

bool RowsEqualOn(const Row& a, const Row& b,
                 const std::vector<size_t>& cols_a,
                 const std::vector<size_t>& cols_b) {
  for (size_t i = 0; i < cols_a.size(); ++i) {
    if (a[cols_a[i]] != b[cols_b[i]]) return false;
  }
  return true;
}

std::vector<size_t> ResolveColumns(const Schema& schema,
                                   const std::vector<std::string>& names) {
  std::vector<size_t> idx;
  idx.reserve(names.size());
  for (const std::string& n : names) idx.push_back(schema.IndexOf(n));
  return idx;
}

}  // namespace

void AnnotatedTable::Append(Row row, Polynomial annotation) {
  PROVABS_CHECK(row.size() == schema_.column_count());
  rows_.push_back(std::move(row));
  annotations_.push_back(std::move(annotation));
}

PolynomialSet AnnotatedTable::ToPolynomialSet() const {
  return PolynomialSet(annotations_);
}

AnnotatedTable Scan(const Table& table, const RowAnnotator& annotator) {
  AnnotatedTable out(table.schema());
  for (const Row& row : table.rows()) {
    out.Append(row, annotator ? annotator(row) : OnePolynomial());
  }
  return out;
}

AnnotatedTable Select(const AnnotatedTable& input,
                      const RowPredicate& predicate) {
  AnnotatedTable out(input.schema());
  for (size_t i = 0; i < input.row_count(); ++i) {
    if (predicate(input.rows()[i])) {
      out.Append(input.rows()[i], input.annotations()[i]);
    }
  }
  return out;
}

AnnotatedTable Project(const AnnotatedTable& input,
                       const std::vector<std::string>& columns, bool dedup) {
  std::vector<size_t> idx = ResolveColumns(input.schema(), columns);
  std::vector<Schema::Column> out_columns;
  out_columns.reserve(idx.size());
  for (size_t i : idx) out_columns.push_back(input.schema().column(i));
  AnnotatedTable out{Schema(std::move(out_columns))};

  if (!dedup) {
    for (size_t r = 0; r < input.row_count(); ++r) {
      Row projected;
      projected.reserve(idx.size());
      for (size_t i : idx) projected.push_back(input.rows()[r][i]);
      out.Append(std::move(projected), input.annotations()[r]);
    }
    return out;
  }

  // Set semantics: merge duplicates, adding annotations.
  std::vector<size_t> all_out(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) all_out[i] = i;
  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<Row> out_rows;
  std::vector<Polynomial> out_annots;
  for (size_t r = 0; r < input.row_count(); ++r) {
    Row projected;
    projected.reserve(idx.size());
    for (size_t i : idx) projected.push_back(input.rows()[r][i]);
    uint64_t h = HashRow(projected, all_out);
    bool merged = false;
    for (size_t slot : buckets[h]) {
      if (RowsEqualOn(out_rows[slot], projected, all_out, all_out)) {
        out_annots[slot] = Add(out_annots[slot], input.annotations()[r]);
        merged = true;
        break;
      }
    }
    if (!merged) {
      buckets[h].push_back(out_rows.size());
      out_rows.push_back(std::move(projected));
      out_annots.push_back(input.annotations()[r]);
    }
  }
  for (size_t i = 0; i < out_rows.size(); ++i) {
    out.Append(std::move(out_rows[i]), std::move(out_annots[i]));
  }
  return out;
}

AnnotatedTable HashJoin(
    const AnnotatedTable& left, const AnnotatedTable& right,
    const std::vector<std::pair<std::string, std::string>>& keys) {
  std::vector<size_t> lkeys;
  std::vector<size_t> rkeys;
  for (const auto& [l, r] : keys) {
    lkeys.push_back(left.schema().IndexOf(l));
    rkeys.push_back(right.schema().IndexOf(r));
  }

  // Output schema: all left columns + right columns that are not join keys.
  std::vector<Schema::Column> out_columns;
  for (size_t i = 0; i < left.schema().column_count(); ++i) {
    out_columns.push_back(left.schema().column(i));
  }
  std::vector<size_t> right_keep;
  for (size_t i = 0; i < right.schema().column_count(); ++i) {
    bool is_key = false;
    for (size_t rk : rkeys) {
      if (rk == i) is_key = true;
    }
    if (is_key) continue;
    right_keep.push_back(i);
    Schema::Column col = right.schema().column(i);
    // Disambiguate duplicate names from the left side.
    std::string base = col.name;
    int suffix = 1;
    while (true) {
      bool clash = false;
      for (const auto& c : out_columns) {
        if (c.name == col.name) clash = true;
      }
      if (!clash) break;
      col.name = base + "_" + std::to_string(++suffix);
    }
    out_columns.push_back(col);
  }
  AnnotatedTable out{Schema(std::move(out_columns))};

  // Build side: right.
  std::unordered_map<uint64_t, std::vector<size_t>> build;
  for (size_t r = 0; r < right.row_count(); ++r) {
    build[HashRow(right.rows()[r], rkeys)].push_back(r);
  }
  // Probe side: left.
  for (size_t l = 0; l < left.row_count(); ++l) {
    uint64_t h = HashRow(left.rows()[l], lkeys);
    auto it = build.find(h);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      if (!RowsEqualOn(left.rows()[l], right.rows()[r], lkeys, rkeys)) {
        continue;
      }
      Row joined = left.rows()[l];
      for (size_t i : right_keep) joined.push_back(right.rows()[r][i]);
      out.Append(std::move(joined),
                 Multiply(left.annotations()[l], right.annotations()[r]));
    }
  }
  return out;
}

AnnotatedTable Union(const AnnotatedTable& a, const AnnotatedTable& b) {
  PROVABS_CHECK(a.schema().column_count() == b.schema().column_count());
  AnnotatedTable out(a.schema());
  for (size_t i = 0; i < a.row_count(); ++i) {
    out.Append(a.rows()[i], a.annotations()[i]);
  }
  for (size_t i = 0; i < b.row_count(); ++i) {
    out.Append(b.rows()[i], b.annotations()[i]);
  }
  return out;
}

AnnotatedTable GroupBySum(const AnnotatedTable& input,
                          const GroupBySumSpec& spec) {
  PROVABS_CHECK(spec.coefficient != nullptr);
  std::vector<size_t> gcols =
      ResolveColumns(input.schema(), spec.group_columns);

  std::vector<Schema::Column> out_columns;
  for (size_t i : gcols) out_columns.push_back(input.schema().column(i));
  AnnotatedTable out{Schema(std::move(out_columns))};

  std::unordered_map<uint64_t, std::vector<size_t>> buckets;
  std::vector<Row> group_rows;
  std::vector<std::vector<Monomial>> group_terms;
  std::vector<size_t> gcols_out(gcols.size());
  for (size_t i = 0; i < gcols.size(); ++i) gcols_out[i] = i;

  for (size_t r = 0; r < input.row_count(); ++r) {
    const Row& row = input.rows()[r];
    double coeff = spec.coefficient(row);
    std::vector<Factor> factors;
    if (spec.parameters) {
      for (VariableId v : spec.parameters(row)) {
        factors.push_back(Factor{v, 1});
      }
    }
    // The row's own semiring annotation multiplies in as well, so that
    // tuple-annotated inputs compose with aggregate parameterization.
    Monomial term(coeff, std::move(factors));

    uint64_t h = HashRow(row, gcols);
    size_t slot = SIZE_MAX;
    for (size_t s : buckets[h]) {
      if (RowsEqualOn(group_rows[s], row, gcols_out, gcols)) {
        slot = s;
        break;
      }
    }
    if (slot == SIZE_MAX) {
      slot = group_rows.size();
      buckets[h].push_back(slot);
      Row key;
      key.reserve(gcols.size());
      for (size_t i : gcols) key.push_back(row[i]);
      group_rows.push_back(std::move(key));
      group_terms.emplace_back();
    }
    // Incorporate the input annotation (polynomial) times the term.
    const Polynomial& annot = input.annotations()[r];
    if (annot.SizeM() == 1 && annot.monomials()[0].factors().empty() &&
        annot.monomials()[0].coefficient() == 1.0) {
      group_terms[slot].push_back(std::move(term));
    } else {
      Polynomial contribution = Multiply(
          Polynomial::FromMonomials({std::move(term)}), annot);
      for (const Monomial& m : contribution.monomials()) {
        group_terms[slot].push_back(m);
      }
    }
  }

  for (size_t s = 0; s < group_rows.size(); ++s) {
    out.Append(std::move(group_rows[s]),
               Polynomial::FromMonomials(std::move(group_terms[s]),
                                         spec.combine));
  }
  return out;
}

}  // namespace provabs
