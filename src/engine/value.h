#ifndef PROVABS_ENGINE_VALUE_H_
#define PROVABS_ENGINE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/macros.h"

namespace provabs {

/// A database cell value. The engine is deliberately small: three scalar
/// types cover the paper's workloads (TPC-H keys/amounts and telephony
/// identifiers/durations/prices).
using Value = std::variant<int64_t, double, std::string>;

/// Column data types matching the Value alternatives.
enum class ValueType { kInt64 = 0, kDouble = 1, kString = 2 };

/// The ValueType corresponding to the alternative `v` currently holds.
inline ValueType TypeOf(const Value& v) {
  return static_cast<ValueType>(v.index());
}

/// Extracts the int64 alternative. CHECK-fails on any other type.
inline int64_t AsInt(const Value& v) {
  PROVABS_CHECK(std::holds_alternative<int64_t>(v));
  return std::get<int64_t>(v);
}

/// Extracts a numeric value, widening int64 to double (the one implicit
/// conversion the engine permits — aggregation sums mixed columns).
/// CHECK-fails on strings.
inline double AsDouble(const Value& v) {
  if (std::holds_alternative<double>(v)) return std::get<double>(v);
  PROVABS_CHECK(std::holds_alternative<int64_t>(v));
  return static_cast<double>(std::get<int64_t>(v));
}

/// Extracts the string alternative. CHECK-fails on any other type.
inline const std::string& AsString(const Value& v) {
  PROVABS_CHECK(std::holds_alternative<std::string>(v));
  return std::get<std::string>(v);
}

/// Renders a value for debugging output.
std::string ValueToString(const Value& v);

}  // namespace provabs

#endif  // PROVABS_ENGINE_VALUE_H_
