#ifndef PROVABS_ENGINE_QUERY_H_
#define PROVABS_ENGINE_QUERY_H_

#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/polynomial.h"
#include "core/polynomial_set.h"
#include "core/variable.h"
#include "engine/table.h"

namespace provabs {

/// An intermediate relation in a provenance-aware query plan: rows plus one
/// provenance polynomial per row. Base-table rows start with annotation "1"
/// (or a fresh/assigned variable in the semiring model, §2.1 case 1);
/// operators combine annotations with polynomial + and · per the semiring
/// framework of Green et al. [36]:
///   select  — filters rows, keeps annotations;
///   project — merges duplicate rows, adding annotations;
///   join    — concatenates rows, multiplying annotations;
///   union   — concatenates relations (adding on dedup via project).
/// Aggregate provenance (§2.1 case 2) is produced by GroupBySum, which sums
/// per-row monomials built from cell values and parameter variables.
class AnnotatedTable {
 public:
  AnnotatedTable() = default;
  explicit AnnotatedTable(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  const std::vector<Polynomial>& annotations() const { return annotations_; }
  size_t row_count() const { return rows_.size(); }

  void Append(Row row, Polynomial annotation);

  /// Extracts the annotations as a polynomial multiset — the provenance-
  /// aware query answer fed to the compression algorithms.
  PolynomialSet ToPolynomialSet() const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
  std::vector<Polynomial> annotations_;
};

/// Assigns the provenance annotation of a base-table row. Return
/// OnePolynomial() for unannotated rows, or VariablePolynomial(v) to tag
/// the row with semiring variable v.
using RowAnnotator = std::function<Polynomial(const Row&)>;

/// Row predicate for Select.
using RowPredicate = std::function<bool(const Row&)>;

/// Lifts a base table into the annotated model. When `annotator` is null,
/// every row is annotated "1".
AnnotatedTable Scan(const Table& table, const RowAnnotator& annotator = {});

/// σ — keeps rows satisfying `predicate`.
AnnotatedTable Select(const AnnotatedTable& input,
                      const RowPredicate& predicate);

/// π — projects onto `columns` (by name). With `dedup`, equal projected rows
/// are merged and their annotations added (set semantics, the + of the
/// semiring); without, bag semantics.
AnnotatedTable Project(const AnnotatedTable& input,
                       const std::vector<std::string>& columns, bool dedup);

/// ⋈ — hash equi-join on `keys` (pairs of column names from left/right).
/// Output schema is left's columns followed by right's non-key columns;
/// annotations multiply.
AnnotatedTable HashJoin(
    const AnnotatedTable& left, const AnnotatedTable& right,
    const std::vector<std::pair<std::string, std::string>>& keys);

/// ∪ — bag union of two relations with identical schemas.
AnnotatedTable Union(const AnnotatedTable& a, const AnnotatedTable& b);

/// Specification of an aggregate-provenance query (§2.1 case 2): each
/// input row contributes the monomial  coefficient(row) · Π parameters(row),
/// and rows are grouped by `group_columns`. The result has one output row
/// per group, annotated with the group's provenance polynomial — the exact
/// shape of Examples 1–2 of the paper. The polynomial's "+" is the
/// aggregate function: addition for SUM, min/max for MIN/MAX (`combine`),
/// evaluated via Valuation or Min/MaxTimesSemiring respectively.
struct GroupBySumSpec {
  std::vector<std::string> group_columns;
  /// Numeric contribution of a row (e.g. Calls.Dur * Plans.Price).
  std::function<double(const Row&)> coefficient;
  /// Parameter variables attached to a row (e.g. {plan var, month var}).
  std::function<std::vector<VariableId>(const Row&)> parameters;
  /// kAdd = SUM (default), kMin = MIN, kMax = MAX.
  CoefficientCombine combine = CoefficientCombine::kAdd;
};

/// γ — grouped SUM/MIN/MAX with provenance parameterization.
AnnotatedTable GroupBySum(const AnnotatedTable& input,
                          const GroupBySumSpec& spec);

}  // namespace provabs

#endif  // PROVABS_ENGINE_QUERY_H_
