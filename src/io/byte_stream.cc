#include "io/byte_stream.h"

#include <cstring>

namespace provabs {

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<uint8_t>(v));
}

void ByteWriter::PutDouble(double v) {
  static_assert(sizeof(double) == 8);
  char bytes[8];
  std::memcpy(bytes, &v, 8);
  buffer_.append(bytes, 8);
}

void ByteWriter::PutString(std::string_view s) {
  PutVarint(s.size());
  buffer_.append(s.data(), s.size());
}

void ByteWriter::PutBytes(const void* data, size_t n) {
  buffer_.append(static_cast<const char*>(data), n);
}

StatusOr<uint8_t> ByteReader::GetU8() {
  if (pos_ >= data_.size()) {
    return Status::OutOfRange("truncated buffer (u8)");
  }
  return static_cast<uint8_t>(data_[pos_++]);
}

StatusOr<uint64_t> ByteReader::GetVarint() {
  uint64_t result = 0;
  int shift = 0;
  for (;;) {
    if (pos_ >= data_.size()) {
      return Status::OutOfRange("truncated buffer (varint)");
    }
    uint8_t byte = static_cast<uint8_t>(data_[pos_++]);
    if (shift >= 63 && (byte & 0x7F) > 1) {
      return Status::InvalidArgument("varint overflows 64 bits");
    }
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return result;
    shift += 7;
  }
}

StatusOr<double> ByteReader::GetDouble() {
  if (pos_ + 8 > data_.size()) {
    return Status::OutOfRange("truncated buffer (double)");
  }
  double v;
  std::memcpy(&v, data_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

StatusOr<std::string> ByteReader::GetString() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  if (pos_ + *len > data_.size()) {
    return Status::OutOfRange("truncated buffer (string)");
  }
  std::string s(data_.substr(pos_, *len));
  pos_ += *len;
  return s;
}

}  // namespace provabs
