#ifndef PROVABS_IO_BYTE_STREAM_H_
#define PROVABS_IO_BYTE_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"

namespace provabs {

/// Append-only byte buffer with varint and fixed-width primitives, used by
/// the provenance serialization format. Little-endian, LEB128 varints.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void PutVarint(uint64_t v);
  void PutDouble(double v);
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t n);

  const std::string& buffer() const { return buffer_; }
  std::string Release() && { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a serialized buffer. All getters return a
/// Status error (never abort) on truncated or malformed input, since the
/// bytes may come from disk or the network.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  StatusOr<uint8_t> GetU8();
  StatusOr<uint64_t> GetVarint();
  StatusOr<double> GetDouble();
  StatusOr<std::string> GetString();

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace provabs

#endif  // PROVABS_IO_BYTE_STREAM_H_
