#ifndef PROVABS_IO_BYTE_STREAM_H_
#define PROVABS_IO_BYTE_STREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "common/statusor.h"

namespace provabs {

/// Append-only byte buffer with varint and fixed-width primitives, used by
/// the provenance serialization format. Little-endian, LEB128 varints.
class ByteWriter {
 public:
  /// Appends one raw byte.
  void PutU8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  /// Appends `v` as an LEB128 varint (1–10 bytes).
  void PutVarint(uint64_t v);
  /// Appends the 8-byte little-endian IEEE-754 encoding of `v`.
  void PutDouble(double v);
  /// Appends a varint length prefix followed by the bytes of `s`.
  void PutString(std::string_view s);
  /// Appends `n` raw bytes from `data`.
  void PutBytes(const void* data, size_t n);

  /// The bytes written so far.
  const std::string& buffer() const { return buffer_; }
  /// Moves the buffer out; the writer is empty afterwards.
  std::string Release() && { return std::move(buffer_); }
  /// Number of bytes written so far.
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Bounds-checked reader over a serialized buffer. All getters return a
/// Status error (never abort) on truncated or malformed input, since the
/// bytes may come from disk or the network.
class ByteReader {
 public:
  /// Reads from `data`, which must outlive the reader (no copy is taken).
  explicit ByteReader(std::string_view data) : data_(data) {}

  /// Reads one raw byte.
  StatusOr<uint8_t> GetU8();
  /// Reads an LEB128 varint; kOutOfRange on truncation, kInvalidArgument
  /// on encodings overflowing 64 bits.
  StatusOr<uint64_t> GetVarint();
  /// Reads an 8-byte little-endian IEEE-754 double.
  StatusOr<double> GetDouble();
  /// Reads a varint length prefix and that many bytes.
  StatusOr<std::string> GetString();

  /// Bytes left between the cursor and the end of the buffer.
  size_t remaining() const { return data_.size() - pos_; }
  /// True once every byte has been consumed.
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace provabs

#endif  // PROVABS_IO_BYTE_STREAM_H_
