#include "io/serializer.h"

#include <cstdio>
#include <unordered_map>
#include <vector>

#include "io/byte_stream.h"

namespace provabs {

namespace {

constexpr char kMagic[4] = {'P', 'V', 'A', 'B'};
constexpr uint8_t kVersion = 1;
constexpr uint8_t kKindPolynomialSet = 1;
constexpr uint8_t kKindForest = 2;
constexpr uint8_t kKindVvs = 3;
constexpr uint8_t kKindCircuits = 4;

/// Collects the variables of a polynomial set in first-use order and
/// writes the dictionary; returns old-id -> dictionary-slot.
std::unordered_map<VariableId, uint64_t> WriteDictionary(
    ByteWriter& w, const std::vector<VariableId>& ids,
    const VariableTable& vars) {
  std::unordered_map<VariableId, uint64_t> slots;
  std::vector<VariableId> order;
  for (VariableId id : ids) {
    if (slots.emplace(id, slots.size()).second) order.push_back(id);
  }
  w.PutVarint(order.size());
  for (VariableId id : order) w.PutString(vars.NameOf(id));
  return slots;
}

void WriteHeader(ByteWriter& w, uint8_t kind) {
  w.PutBytes(kMagic, 4);
  w.PutU8(kVersion);
  w.PutU8(kind);
}

Status CheckHeader(ByteReader& r, uint8_t expected_kind) {
  for (char expected : kMagic) {
    auto byte = r.GetU8();
    if (!byte.ok()) return byte.status();
    if (static_cast<char>(*byte) != expected) {
      return Status::InvalidArgument("bad magic (not a provabs buffer)");
    }
  }
  auto version = r.GetU8();
  if (!version.ok()) return version.status();
  if (*version != kVersion) {
    return Status::InvalidArgument("unsupported format version");
  }
  auto kind = r.GetU8();
  if (!kind.ok()) return kind.status();
  if (*kind != expected_kind) {
    return Status::InvalidArgument("buffer holds a different artifact kind");
  }
  return Status::OK();
}

/// Validates that a parsed element count is plausible for the bytes left:
/// every element of the collection occupies at least `min_bytes` in the
/// buffer, so a larger count proves corruption — checked BEFORE reserving
/// memory (a fuzzer-found hardening; a corrupt count must not OOM).
Status CheckCount(uint64_t count, size_t min_bytes, const ByteReader& r) {
  if (count > r.remaining() / min_bytes + 1) {
    return Status::InvalidArgument("corrupt element count in buffer");
  }
  return Status::OK();
}

/// Reads the dictionary, interning each name; returns slot -> new id.
StatusOr<std::vector<VariableId>> ReadDictionary(ByteReader& r,
                                                 VariableTable& vars) {
  auto count = r.GetVarint();
  if (!count.ok()) return count.status();
  if (Status s = CheckCount(*count, 1, r); !s.ok()) return s;
  std::vector<VariableId> ids;
  ids.reserve(*count);
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    ids.push_back(vars.Intern(*name));
  }
  return ids;
}

}  // namespace

std::string SerializePolynomialSet(const PolynomialSet& polys,
                                   const VariableTable& vars) {
  ByteWriter w;
  WriteHeader(w, kKindPolynomialSet);

  std::vector<VariableId> ids;
  for (const Polynomial& p : polys.polynomials()) {
    for (const Monomial& m : p.monomials()) {
      for (const Factor& f : m.factors()) ids.push_back(f.var);
    }
  }
  auto slots = WriteDictionary(w, ids, vars);

  w.PutVarint(polys.count());
  for (const Polynomial& p : polys.polynomials()) {
    w.PutVarint(p.SizeM());
    for (const Monomial& m : p.monomials()) {
      w.PutDouble(m.coefficient());
      w.PutVarint(m.factors().size());
      for (const Factor& f : m.factors()) {
        w.PutVarint(slots.at(f.var));
        w.PutVarint(f.exp);
      }
    }
  }
  return std::move(w).Release();
}

StatusOr<PolynomialSet> DeserializePolynomialSet(std::string_view data,
                                                 VariableTable& vars) {
  ByteReader r(data);
  Status header = CheckHeader(r, kKindPolynomialSet);
  if (!header.ok()) return header;
  auto dict = ReadDictionary(r, vars);
  if (!dict.ok()) return dict.status();

  auto poly_count = r.GetVarint();
  if (!poly_count.ok()) return poly_count.status();
  if (Status s = CheckCount(*poly_count, 1, r); !s.ok()) return s;
  PolynomialSet polys;
  for (uint64_t p = 0; p < *poly_count; ++p) {
    auto mono_count = r.GetVarint();
    if (!mono_count.ok()) return mono_count.status();
    // A serialized monomial is at least a double + factor count.
    if (Status s = CheckCount(*mono_count, 9, r); !s.ok()) return s;
    std::vector<Monomial> terms;
    terms.reserve(*mono_count);
    for (uint64_t m = 0; m < *mono_count; ++m) {
      auto coeff = r.GetDouble();
      if (!coeff.ok()) return coeff.status();
      auto factor_count = r.GetVarint();
      if (!factor_count.ok()) return factor_count.status();
      // A factor is at least two varint bytes.
      if (Status s = CheckCount(*factor_count, 2, r); !s.ok()) return s;
      std::vector<Factor> factors;
      factors.reserve(*factor_count);
      for (uint64_t f = 0; f < *factor_count; ++f) {
        auto slot = r.GetVarint();
        if (!slot.ok()) return slot.status();
        if (*slot >= dict->size()) {
          return Status::InvalidArgument("factor references unknown slot");
        }
        auto exp = r.GetVarint();
        if (!exp.ok()) return exp.status();
        if (*exp == 0 || *exp > 0xFFFFFFFFull) {
          return Status::InvalidArgument("exponent out of range");
        }
        factors.push_back(
            Factor{(*dict)[*slot], static_cast<uint32_t>(*exp)});
      }
      terms.emplace_back(*coeff, std::move(factors));
    }
    polys.Add(Polynomial::FromMonomials(std::move(terms)));
  }
  return polys;
}

std::string SerializeForest(const AbstractionForest& forest,
                            const VariableTable& vars) {
  ByteWriter w;
  WriteHeader(w, kKindForest);

  std::vector<VariableId> ids;
  for (const AbstractionTree& t : forest.trees()) {
    for (NodeIndex n = 0; n < t.node_count(); ++n) {
      ids.push_back(t.node(n).label);
    }
  }
  auto slots = WriteDictionary(w, ids, vars);

  w.PutVarint(forest.tree_count());
  for (const AbstractionTree& t : forest.trees()) {
    w.PutVarint(t.node_count());
    // Nodes are in DFS pre-order; parents precede children, so storing
    // (label slot, parent+1) per node reconstructs the tree exactly.
    for (NodeIndex n = 0; n < t.node_count(); ++n) {
      w.PutVarint(slots.at(t.node(n).label));
      NodeIndex parent = t.node(n).parent;
      w.PutVarint(parent == kInvalidNode ? 0 : parent + 1ull);
    }
  }
  return std::move(w).Release();
}

StatusOr<AbstractionForest> DeserializeForest(std::string_view data,
                                              VariableTable& vars) {
  ByteReader r(data);
  Status header = CheckHeader(r, kKindForest);
  if (!header.ok()) return header;
  auto dict = ReadDictionary(r, vars);
  if (!dict.ok()) return dict.status();

  auto tree_count = r.GetVarint();
  if (!tree_count.ok()) return tree_count.status();
  if (Status s = CheckCount(*tree_count, 1, r); !s.ok()) return s;
  std::vector<AbstractionTree> trees;
  for (uint64_t t = 0; t < *tree_count; ++t) {
    auto node_count = r.GetVarint();
    if (!node_count.ok()) return node_count.status();
    if (*node_count == 0) {
      return Status::InvalidArgument("empty tree in forest buffer");
    }
    // A serialized node is at least two varint bytes.
    if (Status s = CheckCount(*node_count, 2, r); !s.ok()) return s;
    // First pass: collect (label, parent).
    std::vector<std::pair<VariableId, uint64_t>> proto;
    proto.reserve(*node_count);
    for (uint64_t n = 0; n < *node_count; ++n) {
      auto slot = r.GetVarint();
      if (!slot.ok()) return slot.status();
      if (*slot >= dict->size()) {
        return Status::InvalidArgument("node references unknown slot");
      }
      auto parent = r.GetVarint();
      if (!parent.ok()) return parent.status();
      if (n == 0) {
        if (*parent != 0) {
          return Status::InvalidArgument("first node must be the root");
        }
      } else if (*parent == 0 || *parent > n) {
        return Status::InvalidArgument(
            "node parent must precede it in pre-order");
      }
      proto.emplace_back((*dict)[*slot], *parent);
    }
    AbstractionTreeBuilder builder(vars);
    std::vector<NodeIndex> built(proto.size());
    built[0] = builder.AddRoot(vars.NameOf(proto[0].first));
    for (size_t n = 1; n < proto.size(); ++n) {
      built[n] = builder.AddChild(built[proto[n].second - 1],
                                  vars.NameOf(proto[n].first));
    }
    trees.push_back(std::move(builder).Build());
  }
  AbstractionForest forest(std::move(trees));
  Status valid = forest.Validate();
  if (!valid.ok()) return valid;
  return forest;
}

std::string SerializeVvs(const ValidVariableSet& vvs,
                         const AbstractionForest& forest,
                         const VariableTable& vars) {
  ByteWriter w;
  WriteHeader(w, kKindVvs);
  w.PutVarint(vvs.size());
  for (const NodeRef& ref : vvs.nodes()) {
    w.PutString(vars.NameOf(forest.tree(ref.tree).node(ref.node).label));
  }
  return std::move(w).Release();
}

StatusOr<ValidVariableSet> DeserializeVvs(std::string_view data,
                                          const AbstractionForest& forest,
                                          VariableTable& vars) {
  ByteReader r(data);
  Status header = CheckHeader(r, kKindVvs);
  if (!header.ok()) return header;
  auto count = r.GetVarint();
  if (!count.ok()) return count.status();
  if (Status s = CheckCount(*count, 1, r); !s.ok()) return s;
  ValidVariableSet vvs;
  for (uint64_t i = 0; i < *count; ++i) {
    auto name = r.GetString();
    if (!name.ok()) return name.status();
    VariableId label = vars.Find(*name);
    NodeRef ref = label == kInvalidVariable
                      ? NodeRef{AbstractionForest::kInvalidTreeIndex,
                                kInvalidNode}
                      : forest.FindLabel(label);
    if (ref.tree == AbstractionForest::kInvalidTreeIndex) {
      return Status::NotFound("VVS label '" + *name +
                              "' is not a node of the forest");
    }
    vvs.Add(ref);
  }
  return vvs;
}

std::string SerializeCircuits(const std::vector<ProvenanceCircuit>& circuits,
                              const VariableTable& vars) {
  ByteWriter w;
  WriteHeader(w, kKindCircuits);

  std::vector<VariableId> ids;
  for (const ProvenanceCircuit& c : circuits) {
    for (ProvenanceCircuit::GateId g = 0; g < c.gate_count(); ++g) {
      if (c.gate(g).kind == ProvenanceCircuit::GateKind::kVariable) {
        ids.push_back(c.gate(g).variable);
      }
    }
  }
  auto slots = WriteDictionary(w, ids, vars);

  w.PutVarint(circuits.size());
  for (const ProvenanceCircuit& c : circuits) {
    w.PutVarint(c.gate_count());
    w.PutVarint(c.output());
    for (ProvenanceCircuit::GateId g = 0; g < c.gate_count(); ++g) {
      const auto& gate = c.gate(g);
      w.PutU8(static_cast<uint8_t>(gate.kind));
      switch (gate.kind) {
        case ProvenanceCircuit::GateKind::kConstant:
          w.PutDouble(gate.constant);
          break;
        case ProvenanceCircuit::GateKind::kVariable:
          w.PutVarint(slots.at(gate.variable));
          break;
        case ProvenanceCircuit::GateKind::kAdd:
        case ProvenanceCircuit::GateKind::kMul:
          w.PutVarint(gate.children.size());
          for (ProvenanceCircuit::GateId child : gate.children) {
            w.PutVarint(child);
          }
          break;
      }
    }
  }
  return std::move(w).Release();
}

StatusOr<std::vector<ProvenanceCircuit>> DeserializeCircuits(
    std::string_view data, VariableTable& vars) {
  ByteReader r(data);
  Status header = CheckHeader(r, kKindCircuits);
  if (!header.ok()) return header;
  auto dict = ReadDictionary(r, vars);
  if (!dict.ok()) return dict.status();

  auto count = r.GetVarint();
  if (!count.ok()) return count.status();
  if (Status s = CheckCount(*count, 2, r); !s.ok()) return s;
  std::vector<ProvenanceCircuit> circuits;
  circuits.reserve(*count);
  for (uint64_t ci = 0; ci < *count; ++ci) {
    auto gates = r.GetVarint();
    if (!gates.ok()) return gates.status();
    // Every gate occupies at least 2 bytes (kind + payload).
    if (Status s = CheckCount(*gates, 2, r); !s.ok()) return s;
    auto output = r.GetVarint();
    if (!output.ok()) return output.status();
    if (*output >= *gates) {
      return Status::InvalidArgument("circuit output gate out of range");
    }
    ProvenanceCircuit circuit;
    for (uint64_t g = 0; g < *gates; ++g) {
      auto kind = r.GetU8();
      if (!kind.ok()) return kind.status();
      switch (static_cast<ProvenanceCircuit::GateKind>(*kind)) {
        case ProvenanceCircuit::GateKind::kConstant: {
          auto value = r.GetDouble();
          if (!value.ok()) return value.status();
          circuit.AddConstant(*value);
          break;
        }
        case ProvenanceCircuit::GateKind::kVariable: {
          auto slot = r.GetVarint();
          if (!slot.ok()) return slot.status();
          if (*slot >= dict->size()) {
            return Status::InvalidArgument("gate references unknown slot");
          }
          circuit.AddVariable((*dict)[*slot]);
          break;
        }
        case ProvenanceCircuit::GateKind::kAdd:
        case ProvenanceCircuit::GateKind::kMul: {
          auto arity = r.GetVarint();
          if (!arity.ok()) return arity.status();
          if (Status s = CheckCount(*arity, 1, r); !s.ok()) return s;
          std::vector<ProvenanceCircuit::GateId> children;
          children.reserve(*arity);
          for (uint64_t c = 0; c < *arity; ++c) {
            auto child = r.GetVarint();
            if (!child.ok()) return child.status();
            if (*child >= g) {
              return Status::InvalidArgument(
                  "gate child does not precede it");
            }
            children.push_back(
                static_cast<ProvenanceCircuit::GateId>(*child));
          }
          if (static_cast<ProvenanceCircuit::GateKind>(*kind) ==
              ProvenanceCircuit::GateKind::kAdd) {
            circuit.AddSum(std::move(children));
          } else {
            circuit.AddProduct(std::move(children));
          }
          break;
        }
        default:
          return Status::InvalidArgument("unknown gate kind");
      }
    }
    circuit.SetOutput(static_cast<ProvenanceCircuit::GateId>(*output));
    Status valid = circuit.Validate();
    if (!valid.ok()) return valid;
    circuits.push_back(std::move(circuit));
  }
  return circuits;
}

Status WriteFile(const std::string& path, std::string_view data) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) {
    return Status::Internal("short write to " + path);
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open for reading: " + path);
  }
  std::string data;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    data.append(buf, n);
  }
  std::fclose(f);
  return data;
}

}  // namespace provabs
