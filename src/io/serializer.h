#ifndef PROVABS_IO_SERIALIZER_H_
#define PROVABS_IO_SERIALIZER_H_

#include <string>
#include <string_view>

#include "abstraction/abstraction_forest.h"
#include "abstraction/valid_variable_set.h"
#include "circuit/circuit.h"
#include "common/statusor.h"
#include "core/polynomial_set.h"
#include "core/variable.h"

namespace provabs {

/// Binary serialization of provenance artifacts. The paper's deployment
/// model (§1, "Offline vs. Online Compression") generates provenance once
/// on a strong machine and ships it to analysts; these routines define the
/// wire/storage format:
///
///   [magic "PVAB"] [version u8] [kind u8] [payload]
///
/// Variable names travel in a per-buffer dictionary, so ids are remapped
/// into the reader's own VariableTable on load — two processes never need
/// to agree on integer ids, only on names.
///
/// All readers are bounds-checked and return Status errors on malformed
/// input; they never abort.

/// Serializes the polynomial multiset (with its variable names).
std::string SerializePolynomialSet(const PolynomialSet& polys,
                                   const VariableTable& vars);

/// Parses a buffer produced by SerializePolynomialSet, interning names
/// into `vars`.
StatusOr<PolynomialSet> DeserializePolynomialSet(std::string_view data,
                                                 VariableTable& vars);

/// Serializes an abstraction forest (tree structures + labels).
std::string SerializeForest(const AbstractionForest& forest,
                            const VariableTable& vars);

/// Parses a buffer produced by SerializeForest.
StatusOr<AbstractionForest> DeserializeForest(std::string_view data,
                                              VariableTable& vars);

/// Serializes a chosen abstraction as the list of chosen node labels
/// (robust to node renumbering across processes).
std::string SerializeVvs(const ValidVariableSet& vvs,
                         const AbstractionForest& forest,
                         const VariableTable& vars);

/// Parses a VVS against `forest`: every stored label must name a node of
/// the forest.
StatusOr<ValidVariableSet> DeserializeVvs(std::string_view data,
                                          const AbstractionForest& forest,
                                          VariableTable& vars);

/// Convenience file I/O (whole-buffer).
Status WriteFile(const std::string& path, std::string_view data);
StatusOr<std::string> ReadFileToString(const std::string& path);

/// Serializes a factorized provenance circuit collection (one circuit per
/// output polynomial) — the compact artifact of the §5 "abstraction +
/// lossless storage" combination.
std::string SerializeCircuits(const std::vector<ProvenanceCircuit>& circuits,
                              const VariableTable& vars);

/// Parses a buffer produced by SerializeCircuits; validates every circuit.
StatusOr<std::vector<ProvenanceCircuit>> DeserializeCircuits(
    std::string_view data, VariableTable& vars);

}  // namespace provabs

#endif  // PROVABS_IO_SERIALIZER_H_
