#include "scenario/lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_set>

namespace provabs::scenario {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const auto* keywords = new std::unordered_set<std::string>{
      "LET", "SET",  "SWEEP", "GRID", "PREFIX", "IN",
      "IF",  "THEN", "ELSE",  "AND",  "OR",     "NOT",
      "STEP"};
  return *keywords;
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out.push_back(static_cast<char>(std::toupper(c)));
  return out;
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view input,
                                      size_t* error_offset) {
  auto fail = [&](size_t offset, std::string message) -> Status {
    if (error_offset != nullptr) *error_offset = offset;
    return Status::InvalidArgument(std::move(message) + " at offset " +
                                   std::to_string(offset));
  };
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // Comment to end of line.
      while (i < input.size() && input[i] != '\n') ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < input.size() &&
             (std::isalnum(static_cast<unsigned char>(input[i])) ||
              input[i] == '_')) {
        ++i;
      }
      std::string word(input.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper) > 0) {
        token.kind = TokenKind::kKeyword;
        token.text = upper;
      } else {
        token.kind = TokenKind::kIdentifier;
        token.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < input.size() &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      // A '.' ends the number when it starts a `..` range token, so
      // "0.1..1.0" lexes as NUMBER DOTDOT NUMBER.
      while (i < input.size() &&
             (std::isdigit(static_cast<unsigned char>(input[i])) ||
              (input[i] == '.' &&
               !(i + 1 < input.size() && input[i + 1] == '.')))) {
        ++i;
      }
      token.kind = TokenKind::kNumber;
      token.text = std::string(input.substr(start, i - start));
      token.number = std::atof(token.text.c_str());
    } else if (c == '\'') {
      size_t start = ++i;
      while (i < input.size() && input[i] != '\'') ++i;
      if (i == input.size()) {
        return fail(token.offset, "unterminated string literal");
      }
      token.kind = TokenKind::kString;
      token.text = std::string(input.substr(start, i - start));
      ++i;  // Closing quote.
    } else if (c == '=') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        token.kind = TokenKind::kEq;
        token.text = "==";
        i += 2;
      } else {
        token.kind = TokenKind::kAssign;
        token.text = "=";
        ++i;
      }
    } else if (c == '!') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        token.kind = TokenKind::kNe;
        token.text = "!=";
        i += 2;
      } else {
        return fail(i, "unexpected character '!' (use NOT for negation)");
      }
    } else if (c == '<') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        token.kind = TokenKind::kLe;
        token.text = "<=";
        i += 2;
      } else {
        token.kind = TokenKind::kLt;
        token.text = "<";
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < input.size() && input[i + 1] == '=') {
        token.kind = TokenKind::kGe;
        token.text = ">=";
        i += 2;
      } else {
        token.kind = TokenKind::kGt;
        token.text = ">";
        ++i;
      }
    } else if (c == '.') {
      if (i + 1 < input.size() && input[i + 1] == '.') {
        token.kind = TokenKind::kDotDot;
        token.text = "..";
        i += 2;
      } else {
        return fail(i, "unexpected character '.'");
      }
    } else {
      switch (c) {
        case ',':
          token.kind = TokenKind::kComma;
          break;
        case ';':
          token.kind = TokenKind::kSemicolon;
          break;
        case '*':
          token.kind = TokenKind::kStar;
          break;
        case '+':
          token.kind = TokenKind::kPlus;
          break;
        case '-':
          token.kind = TokenKind::kMinus;
          break;
        case '/':
          token.kind = TokenKind::kSlash;
          break;
        case '(':
          token.kind = TokenKind::kLParen;
          break;
        case ')':
          token.kind = TokenKind::kRParen;
          break;
        default:
          return fail(i, std::string("unexpected character '") + c + "'");
      }
      token.text = std::string(1, c);
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = input.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace provabs::scenario
