#ifndef PROVABS_SCENARIO_LEXER_H_
#define PROVABS_SCENARIO_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"

namespace provabs::scenario {

/// Token kinds of the scenario expression language (see parser.h for the
/// grammar). The shape follows sql::TokenKind — byte offsets on every token
/// so parse and analysis errors can point at the exact source position.
enum class TokenKind {
  kIdentifier,   ///< parameter / variable names
  kNumber,       ///< numeric literal
  kString,       ///< 'single-quoted' variable name or prefix pattern
  kKeyword,      ///< LET SET SWEEP GRID PREFIX IN IF THEN ELSE AND OR NOT STEP
  kComma,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kAssign,       ///< =
  kEq,           ///< ==
  kNe,           ///< !=
  kLt,           ///< <
  kLe,           ///< <=
  kGt,           ///< >
  kGe,           ///< >=
  kLParen,
  kRParen,
  kDotDot,       ///< .. (sweep range)
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    ///< Identifier/keyword (upper-cased for keywords) or
                       ///< literal spelling.
  double number = 0.0; ///< kNumber only.
  size_t offset = 0;   ///< Byte offset in the input (for error messages).
};

/// Tokenizes `input`. Keywords are recognized case-insensitively. Returns
/// kInvalidArgument (with a byte offset in the message) for unterminated
/// strings or unexpected characters; when `error_offset` is non-null it
/// also receives the offset, for caret diagnostics.
StatusOr<std::vector<Token>> Tokenize(std::string_view input,
                                      size_t* error_offset = nullptr);

}  // namespace provabs::scenario

#endif  // PROVABS_SCENARIO_LEXER_H_
